// BufferPool unit tests: the three flush gates (DC-log WAL, TC-log
// causality, page-sync strategy), LWM folding, the trailer round trip,
// and the LWM-validity arming protocol — exercised directly, without a
// DataComponent on top.
#include "dc/buffer_pool.h"

#include <gtest/gtest.h>

#include "dc/dc_log.h"
#include "storage/stable_store.h"

namespace untx {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : store_(), dc_log_() {}

  BufferPool MakePool(PageSyncStrategy strategy,
                      uint32_t hybrid_cap = 4) {
    BufferPoolOptions options;
    options.strategy = strategy;
    options.hybrid_cap = hybrid_cap;
    return BufferPool(&store_, &dc_log_, options);
  }

  /// Creates a formatted, dirty page with one op from tc at lsn.
  Frame* MakeDirtyPage(BufferPool* pool, PageId pid, TcId tc, Lsn lsn) {
    Frame* frame = pool->Create(pid);
    SlottedPage page = frame->Page(pool->page_size(),
                                   pool->trailer_capacity());
    page.Init(pid, PageType::kLeaf, 0, 1);
    frame->ablsn.Add(tc, lsn);
    frame->first_op_lsn = lsn;
    return frame;  // still pinned
  }

  StableStore store_;
  DcLog dc_log_;
};

TEST_F(BufferPoolTest, CausalityGateBlocksUntilEosl) {
  BufferPool pool = MakePool(PageSyncStrategy::kStoreFull);
  const PageId pid = store_.Allocate();
  Frame* frame = MakeDirtyPage(&pool, pid, /*tc=*/1, /*lsn=*/10);
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).IsBusy())
        << "op 10 is beyond the (empty) stable TC log";
  }
  pool.OnEndOfStableLog(1, 9);
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).IsBusy()) << "EOSL 9 < op 10";
  }
  pool.OnEndOfStableLog(1, 10);
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).ok());
  }
  EXPECT_FALSE(frame->dirty);
  EXPECT_TRUE(store_.Exists(pid));
  pool.Unpin(frame);
}

TEST_F(BufferPoolTest, CausalityGateIsPerTc) {
  BufferPool pool = MakePool(PageSyncStrategy::kStoreFull);
  const PageId pid = store_.Allocate();
  Frame* frame = MakeDirtyPage(&pool, pid, 1, 10);
  frame->ablsn.Add(2, 20);  // second TC on the same page (§6.1.1)
  pool.OnEndOfStableLog(1, 100);
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).IsBusy())
        << "tc 2's op 20 is not on tc 2's stable log";
  }
  pool.OnEndOfStableLog(2, 20);
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).ok());
  }
  pool.Unpin(frame);
}

TEST_F(BufferPoolTest, WalGateBlocksUntilDcLogStable) {
  BufferPool pool = MakePool(PageSyncStrategy::kStoreFull);
  const PageId pid = store_.Allocate();
  Frame* frame = MakeDirtyPage(&pool, pid, 1, 5);
  // Stamp a page dLSN for an SMO whose batch cannot be forced yet
  // (causality floor above the TC's EOSL).
  std::vector<DcLogRecord> recs(1);
  recs[0].type = DcLogRecordType::kPageImage;
  recs[0].pid = pid;
  recs[0].body = "x";
  dc_log_.AppendBatch(&recs, {{1, 50}});
  {
    ExclusiveLatchGuard latch(&frame->latch);
    frame->Page(pool.page_size(), pool.trailer_capacity())
        .set_dlsn(recs[0].dlsn);
  }
  pool.OnEndOfStableLog(1, 5);  // op 5 stable, but the SMO floor is 50
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).IsBusy())
        << "page's SMO record is not on the stable DC log";
  }
  pool.OnEndOfStableLog(1, 50);  // floor met -> batch forcible
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).ok());
  }
  pool.Unpin(frame);
}

TEST_F(BufferPoolTest, WaitForLwmStrategyNeedsCollapse) {
  BufferPool pool = MakePool(PageSyncStrategy::kWaitForLwm);
  pool.AllowLwm(1);
  const PageId pid = store_.Allocate();
  Frame* frame = MakeDirtyPage(&pool, pid, 1, 10);
  pool.OnEndOfStableLog(1, 10);
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).IsBusy());
  }
  EXPECT_TRUE(frame->flush_waiting);
  // LWM reaches the op: abLSN collapses, the parked flush completes
  // (OnLowWaterMark retries it).
  pool.OnLowWaterMark(1, 10);
  EXPECT_FALSE(frame->dirty);
  EXPECT_FALSE(frame->flush_waiting);
  pool.Unpin(frame);
}

TEST_F(BufferPoolTest, HybridStrategyRespectsCap) {
  BufferPool pool = MakePool(PageSyncStrategy::kHybrid, /*hybrid_cap=*/2);
  pool.AllowLwm(1);
  const PageId pid = store_.Allocate();
  Frame* frame = MakeDirtyPage(&pool, pid, 1, 10);
  frame->ablsn.Add(1, 12);
  frame->ablsn.Add(1, 14);  // in-set size 3 > cap 2
  pool.OnEndOfStableLog(1, 14);
  {
    ExclusiveLatchGuard latch(&frame->latch);
    EXPECT_TRUE(pool.TryFlushLocked(frame).IsBusy());
  }
  pool.OnLowWaterMark(1, 12);  // prunes to {14}: size 1 <= cap
  EXPECT_FALSE(frame->dirty);
  pool.Unpin(frame);
}

TEST_F(BufferPoolTest, TrailerRoundTripThroughStore) {
  BufferPool pool = MakePool(PageSyncStrategy::kStoreFull);
  const PageId pid = store_.Allocate();
  Frame* frame = MakeDirtyPage(&pool, pid, 3, 77);
  frame->ablsn.Add(3, 99);
  pool.OnEndOfStableLog(3, 99);
  {
    ExclusiveLatchGuard latch(&frame->latch);
    ASSERT_TRUE(pool.TryFlushLocked(frame).ok());
  }
  pool.Unpin(frame);
  // A second pool (fresh cache) must recover the abLSN from the trailer.
  BufferPool pool2 = MakePool(PageSyncStrategy::kStoreFull);
  Frame* reloaded = nullptr;
  ASSERT_TRUE(pool2.Fetch(pid, &reloaded).ok());
  EXPECT_TRUE(reloaded->ablsn.Covers(3, 77));
  EXPECT_TRUE(reloaded->ablsn.Covers(3, 99));
  EXPECT_FALSE(reloaded->ablsn.Covers(3, 100));
  pool2.Unpin(reloaded);
}

TEST_F(BufferPoolTest, LwmIgnoredUntilArmed) {
  BufferPool pool = MakePool(PageSyncStrategy::kStoreFull);
  const PageId pid = store_.Allocate();
  Frame* frame = MakeDirtyPage(&pool, pid, 1, 10);
  pool.OnLowWaterMark(1, 100);
  EXPECT_EQ(pool.lwm_for(1), 0u) << "un-armed LWM must be dropped";
  pool.AllowLwm(1);
  pool.OnLowWaterMark(1, 100);
  EXPECT_EQ(pool.lwm_for(1), 100u);
  pool.DisallowLwm(1);
  EXPECT_EQ(pool.lwm_for(1), 0u) << "disarming revokes the stored LWM";
  pool.Unpin(frame);
}

TEST_F(BufferPoolTest, ConsolidationSafetyTracksArming) {
  BufferPool pool = MakePool(PageSyncStrategy::kStoreFull);
  EXPECT_TRUE(pool.ConsolidationSafe()) << "no TCs known yet";
  pool.OnEndOfStableLog(1, 5);
  EXPECT_FALSE(pool.ConsolidationSafe())
      << "tc 1 has spoken but not re-armed: its redo may be in flight";
  pool.AllowLwm(1);
  EXPECT_TRUE(pool.ConsolidationSafe());
  pool.OnEndOfStableLog(2, 5);  // a second, un-armed TC appears
  EXPECT_FALSE(pool.ConsolidationSafe());
  pool.AllowLwm(2);
  EXPECT_TRUE(pool.ConsolidationSafe());
}

TEST_F(BufferPoolTest, EvictionPrefersCleanLru) {
  BufferPoolOptions options;
  options.capacity = 2;
  options.strategy = PageSyncStrategy::kStoreFull;
  BufferPool pool(&store_, &dc_log_, options);
  pool.OnEndOfStableLog(1, 100);
  // Two clean pages, then a third triggers eviction of the oldest.
  std::vector<PageId> pids;
  for (int i = 0; i < 3; ++i) {
    const PageId pid = store_.Allocate();
    pids.push_back(pid);
    Frame* frame = MakeDirtyPage(&pool, pid, 1, 10 + i);
    {
      ExclusiveLatchGuard latch(&frame->latch);
      ASSERT_TRUE(pool.TryFlushLocked(frame).ok());
    }
    pool.Unpin(frame);
  }
  EXPECT_LE(pool.FrameCount(), 2u);
  EXPECT_GT(pool.stats().evictions, 0u);
  // The evicted page is still fetchable from the store.
  Frame* back = nullptr;
  ASSERT_TRUE(pool.Fetch(pids[0], &back).ok());
  pool.Unpin(back);
}

TEST_F(BufferPoolTest, ClearDropsEverything) {
  BufferPool pool = MakePool(PageSyncStrategy::kStoreFull);
  pool.AllowLwm(1);
  pool.OnEndOfStableLog(1, 50);
  pool.OnLowWaterMark(1, 50);
  const PageId pid = store_.Allocate();
  Frame* frame = MakeDirtyPage(&pool, pid, 1, 10);
  pool.Unpin(frame);
  pool.Clear();
  EXPECT_EQ(pool.FrameCount(), 0u);
  EXPECT_EQ(pool.eosl_for(1), 0u);
  EXPECT_EQ(pool.lwm_for(1), 0u);
  EXPECT_FALSE(pool.LwmAllowed(1)) << "crash disarms every TC's LWM";
}

}  // namespace
}  // namespace untx
