// In-process exercise of the real-network transport: a Cluster opened
// with TransportKind::kSocket runs every TC↔DC binding over loopback TCP
// through the shared-pool SocketServer — same daemons' machinery the
// separate-process deployment uses (process_cluster_test covers that),
// same bytes as the simulated channels (frame_codec_test proves the
// codec identity). Covers: transactions + scans over sockets, crash /
// recovery through the socket path, wire-counter parity with the channel
// transport, and DC-side scan-cursor eviction when a session drops.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dc/dc_api.h"
#include "kernel/cluster.h"
#include "net/frame.h"
#include "net/socket_server.h"

namespace untx {
namespace {

constexpr TableId kTableA = 1;  // routed to DC 1 (table % 2)
constexpr TableId kTableB = 2;  // routed to DC 0

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

ClusterOptions BaseOptions(TransportKind transport) {
  ClusterOptions options;
  options.num_dcs = 2;
  options.transport = transport;
  options.store.page_size = 1024;
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    // Loopback is reliable: a resend would only fire if the machine
    // stalls, keeping the wire counters deterministic for the parity
    // check below.
    spec.options.resend_interval_ms = 500;
    spec.options.control_interval_ms = 20;
    spec.options.scan_stream_chunk = 8;
    spec.options.scan_credit_chunks = 2;
    spec.options.insert_phantom_protection = false;
    options.tcs.push_back(spec);
  }
  return options;
}

std::unique_ptr<Cluster> OpenCluster(TransportKind transport) {
  auto cluster = std::move(Cluster::Open(BaseOptions(transport))).ValueOrDie();
  for (int t = 0; t < 2; ++t) {
    EXPECT_TRUE(cluster->tc(t)->CreateTable(kTableA).ok());
    EXPECT_TRUE(cluster->tc(t)->CreateTable(kTableB).ok());
  }
  return cluster;
}

/// The same small deterministic workload on any cluster; returns the
/// expected final state.
std::map<std::pair<TableId, std::string>, std::string> RunWorkload(
    Cluster* cluster) {
  std::map<std::pair<TableId, std::string>, std::string> model;
  for (int step = 0; step < 40; ++step) {
    const int t = step % 2;
    TransactionComponent* tc = cluster->tc(t);
    StatusOr<TxnId> txn = tc->Begin();
    EXPECT_TRUE(txn.ok());
    const TableId table = step % 4 < 2 ? kTableA : kTableB;
    // Writer-partitioned keys: TC t owns indices ≡ t (mod 2).
    const std::string key = Key(2 * (step % 10) + t);
    const std::string value = "v" + std::to_string(step);
    EXPECT_TRUE(tc->Upsert(*txn, table, key, value).ok()) << "step " << step;
    EXPECT_TRUE(tc->Commit(*txn).ok()) << "step " << step;
    model[{table, key}] = value;
  }
  return model;
}

void ExpectState(
    Cluster* cluster,
    const std::map<std::pair<TableId, std::string>, std::string>& model) {
  for (TableId table : {kTableA, kTableB}) {
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(cluster->tc(0)
                    ->ScanShared(table, "", "", 0, ReadFlavor::kDirty, &rows)
                    .ok());
    std::map<std::pair<TableId, std::string>, std::string> got;
    for (const auto& [k, v] : rows) got[{table, k}] = v;
    for (const auto& [tk, v] : model) {
      if (tk.first != table) continue;
      auto it = got.find(tk);
      ASSERT_TRUE(it != got.end()) << "lost " << tk.second;
      EXPECT_EQ(it->second, v) << tk.second;
    }
    for (const auto& [tk, v] : got) {
      EXPECT_TRUE(model.count(tk)) << "resurrected " << tk.second << "=" << v;
    }
  }
}

TEST(SocketTransportTest, CommitsReadsAndScansOverLoopbackTcp) {
  auto cluster = OpenCluster(TransportKind::kSocket);
  // Socket bindings have no SimChannel behind them.
  EXPECT_EQ(cluster->channel(0, 0), nullptr);
  ASSERT_NE(cluster->socket_server(0), nullptr);
  ASSERT_NE(cluster->socket_server(1), nullptr);
  // Both TCs share each DC's server: 2 TC sessions per DC.
  EXPECT_EQ(cluster->socket_server(0)->session_count(), 2u);
  EXPECT_EQ(cluster->socket_server(1)->session_count(), 2u);

  auto model = RunWorkload(cluster.get());
  ExpectState(cluster.get(), model);

  // The wire was actually used, and batching kept ops >= messages.
  EXPECT_GT(cluster->TotalOpMessages(), 0u);
  EXPECT_GE(cluster->TotalOpsCarried(), cluster->TotalOpMessages());
  EXPECT_GT(cluster->TotalScanMessages(), 0u);
  EXPECT_GT(cluster->TotalScanRowsCarried(), 0u);
}

TEST(SocketTransportTest, WireCountersMatchChannelTransport) {
  auto channel_cluster = OpenCluster(TransportKind::kChannel);
  auto socket_cluster = OpenCluster(TransportKind::kSocket);
  auto channel_model = RunWorkload(channel_cluster.get());
  auto socket_model = RunWorkload(socket_cluster.get());
  ExpectState(channel_cluster.get(), channel_model);
  ExpectState(socket_cluster.get(), socket_model);
  // Identical workload, reliable wires, identical coalescing knobs: the
  // operation and row payload counts must agree exactly — msgs/txn
  // comparisons across the two transports measure the wire, not
  // accounting skew. (Message counts can differ by coalescing timing;
  // the carried totals cannot.)
  EXPECT_EQ(channel_cluster->TotalOpsCarried(),
            socket_cluster->TotalOpsCarried());
  EXPECT_EQ(channel_cluster->TotalScanRowsCarried(),
            socket_cluster->TotalScanRowsCarried());
  EXPECT_EQ(channel_cluster->TotalPromoteOpsCarried(),
            socket_cluster->TotalPromoteOpsCarried());
}

TEST(SocketTransportTest, DcCrashRecoverOverSockets) {
  auto cluster = OpenCluster(TransportKind::kSocket);
  auto model = RunWorkload(cluster.get());
  ASSERT_TRUE(cluster->CrashAndRecoverDc(0).ok());
  ExpectState(cluster.get(), model);
  // And the cluster keeps working after recovery.
  TransactionComponent* tc = cluster->tc(0);
  StatusOr<TxnId> txn = tc->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(tc->Upsert(*txn, kTableB, Key(90), "post-recovery").ok());
  ASSERT_TRUE(tc->Commit(*txn).ok());
  std::string value;
  StatusOr<TxnId> txn2 = tc->Begin();
  ASSERT_TRUE(txn2.ok());
  EXPECT_TRUE(tc->Read(*txn2, kTableB, Key(90), &value).ok());
  EXPECT_EQ(value, "post-recovery");
  tc->Commit(*txn2);
}

TEST(SocketTransportTest, TcCrashRestartOverSockets) {
  auto cluster = OpenCluster(TransportKind::kSocket);
  auto model = RunWorkload(cluster.get());
  ASSERT_TRUE(cluster->CrashAndRestartTc(1).ok());
  ExpectState(cluster.get(), model);
  TransactionComponent* tc = cluster->tc(1);
  StatusOr<TxnId> txn = tc->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(tc->Upsert(*txn, kTableA, Key(91), "post-restart").ok());
  ASSERT_TRUE(tc->Commit(*txn).ok());
}

/// Satellite invariant: a dropped session evicts the DC-side scan
/// cursors of the TC it served. Drives a raw TCP client speaking the
/// shared frame codec — the DC cannot tell it from a real TC — parks a
/// credited cursor, then slams the connection shut.
TEST(SocketTransportTest, SessionDropEvictsParkedScanCursor) {
  auto cluster = OpenCluster(TransportKind::kSocket);
  auto model = RunWorkload(cluster.get());
  (void)model;
  SocketServer* server = cluster->socket_server(0);
  ASSERT_NE(server, nullptr);
  DataComponent* dc = cluster->dc(0);
  ASSERT_EQ(dc->ScanCursorCount(), 0u);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // A credited probe stream over the whole of kTableB (on DC 0) with a
  // 1-chunk window: after the first chunk the cursor parks.
  const TcId kForeignTc = 55;
  ScanStreamRequest sreq;
  sreq.base.op = OpType::kScanRange;
  sreq.base.tc_id = kForeignTc;
  sreq.base.lsn = 1;  // stream id
  sreq.base.table_id = kTableB;
  sreq.base.read_flavor = ReadFlavor::kDirty;
  sreq.chunk_rows = 2;
  sreq.credit_chunks = 1;
  std::string body;
  sreq.EncodeTo(&body);
  const std::string wire =
      EncodeFrame(static_cast<uint8_t>(MessageKind::kScanStreamRequest), body);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  // Read until the first chunk arrives (the codec is the shared one, so
  // FrameReader parses the server's bytes directly).
  FrameReader reader;
  bool got_chunk = false;
  char buf[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!got_chunk && std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      reader.Feed(buf, static_cast<size_t>(n));
      uint8_t kind = 0;
      std::string frame_body;
      while (reader.Next(&kind, &frame_body) == FrameDecode::kOk) {
        if (kind == static_cast<uint8_t>(MessageKind::kScanStreamChunk)) {
          got_chunk = true;
        }
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(got_chunk) << "no scan chunk within 5s";
  EXPECT_EQ(dc->ScanCursorCount(), 1u) << "cursor should be parked";

  // Hard drop — no close credit. The server must evict the cursor.
  ::close(fd);
  const auto evict_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (dc->ScanCursorCount() > 0 &&
         std::chrono::steady_clock::now() < evict_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(dc->ScanCursorCount(), 0u)
      << "session drop must evict the parked cursor";
  // The REAL TC sessions are untouched: the cluster still works.
  TransactionComponent* tc = cluster->tc(0);
  StatusOr<TxnId> txn = tc->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(tc->Upsert(*txn, kTableB, Key(92), "still-alive").ok());
  ASSERT_TRUE(tc->Commit(*txn).ok());
}

/// Garbage on the wire must kill only the offending session, never the
/// server (frame corruption robustness end to end).
TEST(SocketTransportTest, GarbageBytesKillSessionNotServer) {
  auto cluster = OpenCluster(TransportKind::kSocket);
  SocketServer* server = cluster->socket_server(0);
  ASSERT_NE(server, nullptr);
  const size_t before = server->session_count();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string garbage(256, '\xff');
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((server->corrupt_frames() == 0 ||
          server->session_count() > before) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server->corrupt_frames(), 1u);
  EXPECT_EQ(server->session_count(), before);
  ::close(fd);
  // Real sessions unaffected.
  TransactionComponent* tc = cluster->tc(0);
  StatusOr<TxnId> txn = tc->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(tc->Upsert(*txn, kTableB, Key(93), "unaffected").ok());
  ASSERT_TRUE(tc->Commit(*txn).ok());
}

}  // namespace
}  // namespace untx
