// The batched TC→DC wire protocol: OperationBatch / OperationBatchReply
// encode-decode, the DcService::PerformBatch contract, and end-to-end
// exactly-once application of resent batches (reply cache + abLSN).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dc/data_component.h"
#include "dc/dc_api.h"
#include "kernel/unbundled_db.h"
#include "storage/stable_store.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

OperationRequest MakeOp(OpType op, Lsn lsn, const std::string& key,
                        const std::string& value = "") {
  OperationRequest req;
  req.tc_id = 1;
  req.lsn = lsn;
  req.op = op;
  req.table_id = kTable;
  req.key = key;
  req.value = value;
  return req;
}

TEST(BatchWireTest, BatchRoundTrip) {
  OperationBatch batch;
  batch.ops.push_back(MakeOp(OpType::kInsert, 7, "a", "va"));
  batch.ops.push_back(MakeOp(OpType::kRead, 8, "b"));
  batch.ops.back().read_flavor = ReadFlavor::kReadCommitted;
  batch.ops.push_back(MakeOp(OpType::kScanRange, 9, "c", ""));
  batch.ops.back().end_key = "z";
  batch.ops.back().limit = 42;

  std::string buf;
  batch.EncodeTo(&buf);
  Slice in(buf);
  OperationBatch out;
  ASSERT_TRUE(OperationBatch::DecodeFrom(&in, &out));
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(out.ops.size(), 3u);
  EXPECT_EQ(out.ops[0].op, OpType::kInsert);
  EXPECT_EQ(out.ops[0].lsn, 7u);
  EXPECT_EQ(out.ops[0].key, "a");
  EXPECT_EQ(out.ops[0].value, "va");
  EXPECT_EQ(out.ops[1].read_flavor, ReadFlavor::kReadCommitted);
  EXPECT_EQ(out.ops[2].end_key, "z");
  EXPECT_EQ(out.ops[2].limit, 42u);
}

TEST(BatchWireTest, EmptyBatchRoundTrip) {
  OperationBatch batch;
  std::string buf;
  batch.EncodeTo(&buf);
  Slice in(buf);
  OperationBatch out;
  ASSERT_TRUE(OperationBatch::DecodeFrom(&in, &out));
  EXPECT_TRUE(out.ops.empty());
}

TEST(BatchWireTest, BatchReplyRoundTrip) {
  OperationBatchReply batch;
  OperationReply r1;
  r1.tc_id = 1;
  r1.lsn = 7;
  r1.status = Status::OK();
  r1.value = "before";
  r1.has_before = true;
  batch.replies.push_back(r1);
  OperationReply r2;
  r2.tc_id = 1;
  r2.lsn = 8;
  r2.status = Status::NotFound("missing");
  r2.was_duplicate = true;
  batch.replies.push_back(r2);

  std::string buf;
  batch.EncodeTo(&buf);
  Slice in(buf);
  OperationBatchReply out;
  ASSERT_TRUE(OperationBatchReply::DecodeFrom(&in, &out));
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(out.replies.size(), 2u);
  EXPECT_TRUE(out.replies[0].status.ok());
  EXPECT_EQ(out.replies[0].value, "before");
  EXPECT_TRUE(out.replies[0].has_before);
  EXPECT_TRUE(out.replies[1].status.IsNotFound());
  EXPECT_TRUE(out.replies[1].was_duplicate);
}

TEST(BatchWireTest, BatchDecodeRejectsTruncation) {
  OperationBatch batch;
  batch.ops.push_back(MakeOp(OpType::kInsert, 1, "key-1", "value-1"));
  batch.ops.push_back(MakeOp(OpType::kUpdate, 2, "key-2", "value-2"));
  std::string buf;
  batch.EncodeTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    OperationBatch out;
    EXPECT_FALSE(OperationBatch::DecodeFrom(&in, &out)) << "cut=" << cut;
  }
}

TEST(BatchWireTest, BatchReplyDecodeRejectsTruncation) {
  OperationBatchReply batch;
  OperationReply r;
  r.tc_id = 3;
  r.lsn = 11;
  r.status = Status::OK();
  r.value = "payload";
  batch.replies.push_back(r);
  std::string buf;
  batch.EncodeTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    OperationBatchReply out;
    EXPECT_FALSE(OperationBatchReply::DecodeFrom(&in, &out)) << "cut=" << cut;
  }
}

TEST(BatchWireTest, BatchEnvelopeRoundTrip) {
  OperationBatch batch;
  batch.ops.push_back(MakeOp(OpType::kDelete, 5, "k"));
  std::string body;
  batch.EncodeTo(&body);
  std::string wire = WrapMessage(MessageKind::kOperationBatch, body);
  MessageKind kind;
  Slice in;
  ASSERT_TRUE(UnwrapMessage(wire, &kind, &in));
  EXPECT_EQ(kind, MessageKind::kOperationBatch);
  OperationBatch out;
  ASSERT_TRUE(OperationBatch::DecodeFrom(&in, &out));
  ASSERT_EQ(out.ops.size(), 1u);
  EXPECT_EQ(out.ops[0].op, OpType::kDelete);
}

/// The default PerformBatch must degrade to a per-op loop in order.
TEST(BatchWireTest, DefaultPerformBatchLoops) {
  class EchoService : public DcService {
   public:
    OperationReply Perform(const OperationRequest& req) override {
      OperationReply reply;
      reply.tc_id = req.tc_id;
      reply.lsn = req.lsn;
      reply.value = req.key;
      order.push_back(req.lsn);
      return reply;
    }
    ControlReply Control(const ControlRequest&) override { return {}; }
    std::vector<Lsn> order;
  } service;

  std::vector<OperationRequest> reqs;
  reqs.push_back(MakeOp(OpType::kRead, 3, "x"));
  reqs.push_back(MakeOp(OpType::kRead, 1, "y"));
  reqs.push_back(MakeOp(OpType::kRead, 2, "z"));
  std::vector<OperationReply> replies = service.PerformBatch(reqs);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].lsn, 3u);
  EXPECT_EQ(replies[1].lsn, 1u);
  EXPECT_EQ(replies[2].lsn, 2u);
  EXPECT_EQ(service.order, (std::vector<Lsn>{3, 1, 2}));
}

/// A resent batch is answered wholesale from the reply cache: same
/// replies, flagged as duplicates, nothing re-executed.
TEST(BatchWireTest, ResentBatchServedFromReplyCache) {
  StableStore store((StableStoreOptions()));
  DataComponent dc(&store);
  ASSERT_TRUE(dc.Initialize().ok());
  ControlRequest arm;
  arm.type = ControlType::kRestartEnd;
  arm.tc_id = 1;
  dc.Control(arm);
  ASSERT_TRUE(dc.Perform(MakeOp(OpType::kCreateTable, 1, "")).status.ok());

  std::vector<OperationRequest> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(MakeOp(OpType::kInsert, 10 + i, "k" + std::to_string(i),
                           "v" + std::to_string(i)));
  }
  std::vector<OperationReply> first = dc.PerformBatch(batch);
  ASSERT_EQ(first.size(), batch.size());
  for (const auto& reply : first) {
    EXPECT_TRUE(reply.status.ok());
    EXPECT_FALSE(reply.was_duplicate);
  }

  const uint64_t writes_before = dc.stats().writes.load();
  std::vector<OperationReply> resent = dc.PerformBatch(batch);
  ASSERT_EQ(resent.size(), batch.size());
  for (const auto& reply : resent) {
    EXPECT_TRUE(reply.status.ok());
    EXPECT_TRUE(reply.was_duplicate);
  }
  // Every resent op was a reply-cache hit; none re-entered the tree.
  EXPECT_EQ(dc.stats().reply_cache_hits.load(), batch.size());
  EXPECT_EQ(dc.stats().writes.load(), writes_before + batch.size());

  // The data is there exactly once.
  OperationReply read = dc.Perform(MakeOp(OpType::kRead, 100, "k3"));
  ASSERT_TRUE(read.status.ok());
  EXPECT_EQ(read.value, "v3");
}

/// End to end over the channel transport: a pipelined transaction's batch
/// survives a DC crash; after recovery the TC's redo-resend re-applies it
/// and a direct resend of the original batch is absorbed idempotently.
TEST(BatchWireTest, BatchedPipelineExactlyOnceAcrossDcCrash) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 40;
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());

  // One pipelined transaction: 16 inserts, one batched flush, commit.
  {
    Txn txn(db->tc());
    for (int i = 0; i < 16; ++i) {
      txn.InsertAsync(kTable, "key" + std::to_string(i),
                      "val" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_GT(db->dc(0)->stats().batches.load(), 0u);

  // Crash the DC (reply caches and cached pages die) and recover: the TC
  // redo-resends from the RSSP; every insert must land exactly once.
  db->CrashDc(0);
  ASSERT_TRUE(db->RecoverDc(0).ok());

  {
    Txn txn(db->tc());
    std::vector<std::string> keys;
    for (int i = 0; i < 16; ++i) keys.push_back("key" + std::to_string(i));
    std::vector<std::string> values;
    ASSERT_TRUE(txn.MultiRead(kTable, keys, &values).ok());
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(values[i], "val" + std::to_string(i)) << "key" << i;
    }
    ASSERT_TRUE(txn.Commit().ok());
  }

  // A duplicate insert of an existing key still fails cleanly — the
  // recovery did not double-apply or lose anything.
  {
    Txn txn(db->tc());
    EXPECT_TRUE(txn.Insert(kTable, "key3", "clobber").IsAlreadyExists());
    txn.Abort();
  }
}

/// A duplicating request channel re-delivers whole batches; the DC's
/// idempotence machinery absorbs them and the TC counts the hits.
TEST(BatchWireTest, DuplicatedBatchesCountedAsDupReplies) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 40;
  options.tc.insert_phantom_protection = false;
  options.channel.request_channel.dup_prob = 0.5;
  options.channel.request_channel.seed = 11;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());

  for (int t = 0; t < 10; ++t) {
    Txn txn(db->tc());
    for (int i = 0; i < 8; ++i) {
      txn.UpsertAsync(kTable, "dup" + std::to_string(i),
                      "round" + std::to_string(t));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // With dup_prob 0.5 over 20+ batch messages, duplicates are certain;
  // each duplicated batch is served from the reply cache and surfaces in
  // the TC's dup_replies counter.
  EXPECT_GT(db->tc()->stats().dup_replies.load(), 0u);
  EXPECT_GT(db->dc(0)->stats().reply_cache_hits.load(), 0u);

  // Data correct despite the duplication.
  Txn txn(db->tc());
  std::string value;
  ASSERT_TRUE(txn.Read(kTable, "dup0", &value).ok());
  EXPECT_EQ(value, "round9");
  txn.Commit();
}

}  // namespace
}  // namespace untx
