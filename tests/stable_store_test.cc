#include "storage/stable_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace untx {
namespace {

std::vector<char> MakePageData(uint32_t page_size, char fill) {
  std::vector<char> data(page_size, fill);
  return data;
}

TEST(StableStoreTest, WriteReadRoundTrip) {
  StableStore store;
  const PageId pid = store.Allocate();
  auto data = MakePageData(store.page_size(), 'a');
  ASSERT_TRUE(store.Write(pid, data.data()).ok());
  std::vector<char> out(store.page_size());
  ASSERT_TRUE(store.Read(pid, out.data()).ok());
  // Bytes [4, end) must match (bytes [0,4) hold the store-stamped CRC).
  EXPECT_EQ(memcmp(data.data() + 4, out.data() + 4, store.page_size() - 4),
            0);
}

TEST(StableStoreTest, ReadMissingPageFails) {
  StableStore store;
  std::vector<char> out(store.page_size());
  EXPECT_TRUE(store.Read(999, out.data()).IsNotFound());
}

TEST(StableStoreTest, AllocateIsMonotonicThenRecycles) {
  StableStore store;
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  EXPECT_NE(a, b);
  store.Free(a);
  const PageId c = store.Allocate();
  EXPECT_EQ(c, a);  // recycled
}

TEST(StableStoreTest, FreeIsIdempotent) {
  StableStore store;
  const PageId a = store.Allocate();
  store.Free(a);
  store.Free(a);
  const PageId b = store.Allocate();
  const PageId c = store.Allocate();
  EXPECT_NE(b, c);  // the double-free must not hand out `a` twice
}

TEST(StableStoreTest, FreeDropsContents) {
  StableStore store;
  const PageId a = store.Allocate();
  auto data = MakePageData(store.page_size(), 'x');
  ASSERT_TRUE(store.Write(a, data.data()).ok());
  store.Free(a);
  std::vector<char> out(store.page_size());
  EXPECT_TRUE(store.Read(a, out.data()).IsNotFound());
}

TEST(StableStoreTest, CorruptionDetected) {
  StableStore store;
  const PageId pid = store.Allocate();
  auto data = MakePageData(store.page_size(), 'q');
  ASSERT_TRUE(store.Write(pid, data.data()).ok());
  store.CorruptForTest(pid, 100);
  std::vector<char> out(store.page_size());
  EXPECT_TRUE(store.Read(pid, out.data()).IsCorruption());
}

TEST(StableStoreTest, OverwriteReplacesContents) {
  StableStore store;
  const PageId pid = store.Allocate();
  auto v1 = MakePageData(store.page_size(), '1');
  auto v2 = MakePageData(store.page_size(), '2');
  ASSERT_TRUE(store.Write(pid, v1.data()).ok());
  ASSERT_TRUE(store.Write(pid, v2.data()).ok());
  std::vector<char> out(store.page_size());
  ASSERT_TRUE(store.Read(pid, out.data()).ok());
  EXPECT_EQ(out[10], '2');
}

TEST(StableStoreTest, WriteFaultInjection) {
  StableStoreOptions options;
  options.write_fail_prob = 1.0;
  StableStore store(options);
  const PageId pid = store.Allocate();
  auto data = MakePageData(store.page_size(), 'f');
  EXPECT_TRUE(store.Write(pid, data.data()).IsIOError());
}

TEST(StableStoreTest, StatsCount) {
  StableStore store;
  const PageId pid = store.Allocate();
  auto data = MakePageData(store.page_size(), 's');
  ASSERT_TRUE(store.Write(pid, data.data()).ok());
  std::vector<char> out(store.page_size());
  ASSERT_TRUE(store.Read(pid, out.data()).ok());
  ASSERT_TRUE(store.Read(pid, out.data()).ok());
  EXPECT_EQ(store.writes(), 1u);
  EXPECT_EQ(store.reads(), 2u);
  EXPECT_EQ(store.LivePageCount(), 1u);
}

TEST(StableStoreTest, CustomPageSize) {
  StableStoreOptions options;
  options.page_size = 512;
  StableStore store(options);
  EXPECT_EQ(store.page_size(), 512u);
  const PageId pid = store.Allocate();
  auto data = MakePageData(512, 'z');
  ASSERT_TRUE(store.Write(pid, data.data()).ok());
  std::vector<char> out(512);
  ASSERT_TRUE(store.Read(pid, out.data()).ok());
}

TEST(StableStoreTest, RewriteOfFreedPageRevives) {
  StableStore store;
  const PageId pid = store.Allocate();
  store.Free(pid);
  auto data = MakePageData(store.page_size(), 'r');
  ASSERT_TRUE(store.Write(pid, data.data()).ok());
  std::vector<char> out(store.page_size());
  EXPECT_TRUE(store.Read(pid, out.data()).ok());
  // The page must no longer be handed out by Allocate.
  const PageId other = store.Allocate();
  EXPECT_NE(other, pid);
}

}  // namespace
}  // namespace untx
