// Divergence testing: the unbundled kernel and the monolithic baseline
// run the same scripted workload (including crashes) and must reach the
// same logical state. Any divergence is a bug in one of the two recovery
// schemes — this is the strongest cross-check the repo has, because the
// two engines share almost no recovery code.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "kernel/unbundled_db.h"
#include "monolithic/engine.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

struct ScriptOp {
  enum Kind { kInsert, kUpdate, kDelete, kAbortTxn, kCrash } kind;
  std::string key;
  std::string value;
};

std::vector<ScriptOp> MakeScript(uint64_t seed, int length) {
  Random rng(seed);
  std::vector<ScriptOp> script;
  for (int i = 0; i < length; ++i) {
    const double r = rng.NextDouble();
    ScriptOp op;
    op.key = Key(static_cast<int>(rng.Uniform(80)));
    op.value = rng.Bytes(10);
    if (r < 0.45) {
      op.kind = ScriptOp::kInsert;
    } else if (r < 0.7) {
      op.kind = ScriptOp::kUpdate;
    } else if (r < 0.85) {
      op.kind = ScriptOp::kDelete;
    } else if (r < 0.95) {
      op.kind = ScriptOp::kAbortTxn;
    } else {
      op.kind = ScriptOp::kCrash;
    }
    script.push_back(op);
  }
  return script;
}

// Runs the script on the unbundled kernel; returns the final state.
std::map<std::string, std::string> RunUnbundled(
    const std::vector<ScriptOp>& script) {
  UnbundledDbOptions options;
  options.store.page_size = 1024;
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  options.tc.control_interval_ms = 2;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  EXPECT_TRUE(db->CreateTable(kTable).ok());
  for (const ScriptOp& op : script) {
    switch (op.kind) {
      case ScriptOp::kInsert: {
        Txn txn(db->tc());
        if (txn.Insert(kTable, op.key, op.value).ok()) {
          txn.Commit();
        }
        break;
      }
      case ScriptOp::kUpdate: {
        Txn txn(db->tc());
        if (txn.Update(kTable, op.key, op.value).ok()) {
          txn.Commit();
        }
        break;
      }
      case ScriptOp::kDelete: {
        Txn txn(db->tc());
        if (txn.Delete(kTable, op.key).ok()) {
          txn.Commit();
        }
        break;
      }
      case ScriptOp::kAbortTxn: {
        Txn txn(db->tc());
        txn.Update(kTable, op.key, "aborted-write");
        txn.Insert(kTable, op.key + "-tmp", "aborted-insert");
        txn.Abort();
        break;
      }
      case ScriptOp::kCrash: {
        db->CrashDc(0);
        EXPECT_TRUE(db->RecoverDc(0).ok());
        break;
      }
    }
  }
  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  EXPECT_TRUE(txn.Scan(kTable, "", "", 0, &rows).ok());
  txn.Commit();
  return {rows.begin(), rows.end()};
}

std::map<std::string, std::string> RunMonolithic(
    const std::vector<ScriptOp>& script) {
  StableStoreOptions store_options;
  store_options.page_size = 1024;
  store_options.trailer_capacity = 128;
  StableStore store(store_options);
  monolithic::MonolithicEngine engine(&store);
  EXPECT_TRUE(engine.Initialize().ok());
  EXPECT_TRUE(engine.CreateTable(kTable).ok());
  for (const ScriptOp& op : script) {
    switch (op.kind) {
      case ScriptOp::kInsert:
      case ScriptOp::kUpdate:
      case ScriptOp::kDelete: {
        TxnId txn = std::move(engine.Begin()).ValueOrDie();
        Status s;
        if (op.kind == ScriptOp::kInsert) {
          s = engine.Insert(txn, kTable, op.key, op.value);
        } else if (op.kind == ScriptOp::kUpdate) {
          s = engine.Update(txn, kTable, op.key, op.value);
        } else {
          s = engine.Delete(txn, kTable, op.key);
        }
        if (s.ok()) {
          engine.Commit(txn);
        } else {
          engine.Abort(txn);
        }
        break;
      }
      case ScriptOp::kAbortTxn: {
        TxnId txn = std::move(engine.Begin()).ValueOrDie();
        engine.Update(txn, kTable, op.key, "aborted-write");
        engine.Insert(txn, kTable, op.key + "-tmp", "aborted-insert");
        engine.Abort(txn);
        break;
      }
      case ScriptOp::kCrash: {
        engine.Crash();
        EXPECT_TRUE(engine.Recover().ok());
        break;
      }
    }
  }
  TxnId txn = std::move(engine.Begin()).ValueOrDie();
  std::vector<std::pair<std::string, std::string>> rows;
  EXPECT_TRUE(engine.Scan(txn, kTable, "", "", 0, &rows).ok());
  engine.Commit(txn);
  return {rows.begin(), rows.end()};
}

class DivergenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DivergenceTest, UnbundledAndMonolithicAgree) {
  const auto script = MakeScript(GetParam(), 250);
  auto unbundled = RunUnbundled(script);
  auto monolithic = RunMonolithic(script);
  ASSERT_EQ(unbundled.size(), monolithic.size());
  for (const auto& [k, v] : unbundled) {
    ASSERT_TRUE(monolithic.count(k)) << "only unbundled has " << k;
    ASSERT_EQ(monolithic[k], v) << "value divergence at " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivergenceTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace untx
