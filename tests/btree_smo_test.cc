// B-tree structure-modification tests at the BTree level: multi-level
// splits, consolidation, height shrink, replay idempotence, and random
// SMO storms checked against tree invariants.
#include "dc/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "dc/data_component.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

class BTreeSmoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StableStoreOptions store_options;
    store_options.page_size = 512;  // tiny pages: deep trees fast
    store_options.trailer_capacity = 96;
    store_ = std::make_unique<StableStore>(store_options);
    DataComponentOptions options;
    options.max_value_size = 64;
    dc_ = std::make_unique<DataComponent>(store_.get(), options);
    ASSERT_TRUE(dc_->Initialize().ok());
    // Arm + create through the op interface so dLSN bookkeeping is real.
    ControlRequest arm;
    arm.type = ControlType::kRestartEnd;
    arm.tc_id = 1;
    dc_->Control(arm);
    OperationRequest create;
    create.tc_id = 1;
    create.lsn = next_lsn_++;
    create.op = OpType::kCreateTable;
    create.table_id = kTable;
    ASSERT_TRUE(dc_->Perform(create).status.ok());
  }

  OperationReply Write(OpType op, const std::string& key,
                       const std::string& value = "") {
    OperationRequest req;
    req.tc_id = 1;
    req.lsn = next_lsn_++;
    req.op = op;
    req.table_id = kTable;
    req.key = key;
    req.value = value;
    return dc_->Perform(req);
  }

  void PushDurability() {
    ControlRequest eosl;
    eosl.type = ControlType::kEndOfStableLog;
    eosl.tc_id = 1;
    eosl.lsn = next_lsn_ - 1;
    dc_->Control(eosl);
    ControlRequest lwm;
    lwm.type = ControlType::kLowWaterMark;
    lwm.tc_id = 1;
    lwm.lsn = next_lsn_ - 1;
    dc_->Control(lwm);
  }

  std::unique_ptr<StableStore> store_;
  std::unique_ptr<DataComponent> dc_;
  Lsn next_lsn_ = 1;
};

TEST_F(BTreeSmoTest, DeepTreeFromSequentialInserts) {
  for (int i = 0; i < 1200; ++i) {
    ASSERT_TRUE(Write(OpType::kInsert, Key(i), "vvvvvvvv").status.ok()) << i;
  }
  const auto& stats = dc_->btree()->stats();
  EXPECT_GT(stats.splits, 20u);
  EXPECT_GT(stats.root_splits, 1u) << "tiny pages must grow height > 2";
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
}

TEST_F(BTreeSmoTest, ReverseOrderInserts) {
  for (int i = 1200; i > 0; --i) {
    ASSERT_TRUE(Write(OpType::kInsert, Key(i), "vvvvvvvv").status.ok()) << i;
  }
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
  // Every key present.
  for (int i = 1; i <= 1200; i += 13) {
    OperationRequest req;
    req.tc_id = 1;
    req.lsn = next_lsn_++;
    req.op = OpType::kRead;
    req.table_id = kTable;
    req.key = Key(i);
    ASSERT_TRUE(dc_->Perform(req).status.ok()) << i;
  }
}

TEST_F(BTreeSmoTest, ConsolidationShrinksHeight) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(Write(OpType::kInsert, Key(i), "vvvvvvvv").status.ok());
  }
  const uint64_t height_shrinks_before =
      dc_->btree()->stats().height_shrinks;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(Write(OpType::kDelete, Key(i)).status.ok()) << i;
  }
  EXPECT_GT(dc_->btree()->stats().consolidates, 5u);
  EXPECT_GE(dc_->btree()->stats().height_shrinks, height_shrinks_before);
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
}

TEST_F(BTreeSmoTest, ReplayIsIdempotent) {
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(Write(OpType::kInsert, Key(i), "vvvvvvvv").status.ok());
  }
  PushDurability();
  dc_->pool()->ForceDcLog();
  // Replaying the stable batches on a LIVE tree must change nothing
  // (every record is dLSN-guarded).
  ASSERT_TRUE(dc_->btree()->ReplayStableSmoBatches().ok());
  ASSERT_TRUE(dc_->btree()->ReplayStableSmoBatches().ok());
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
  for (int i = 0; i < 600; i += 17) {
    OperationRequest req;
    req.tc_id = 1;
    req.lsn = next_lsn_++;
    req.op = OpType::kRead;
    req.table_id = kTable;
    req.key = Key(i);
    auto reply = dc_->Perform(req);
    ASSERT_TRUE(reply.status.ok()) << i;
    ASSERT_EQ(reply.value, "vvvvvvvv");
  }
}

TEST_F(BTreeSmoTest, FreedPagesAreRecycled) {
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(Write(OpType::kInsert, Key(i), "vvvvvvvv").status.ok());
  }
  PushDurability();
  const uint64_t high_water_full = store_->allocated_high_water();
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(Write(OpType::kDelete, Key(i)).status.ok());
  }
  PushDurability();
  dc_->pool()->ForceDcLog();  // executes deferred frees
  // Re-inserting must reuse freed pages instead of growing the store.
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(Write(OpType::kInsert, Key(i), "vvvvvvvv").status.ok());
  }
  EXPECT_LE(store_->allocated_high_water(), high_water_full + 20)
      << "consolidated pages must return to the allocator";
}

class BTreeStormTest : public BTreeSmoTest,
                       public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BTreeStormTest, RandomSmoStormKeepsInvariantsAndModel) {
  Random rng(GetParam());
  std::map<std::string, std::string> model;
  for (int step = 0; step < 4000; ++step) {
    const std::string key = Key(static_cast<int>(rng.Uniform(700)));
    if (rng.Bernoulli(0.6)) {
      const std::string value = rng.Bytes(4 + rng.Uniform(30));
      auto reply = Write(OpType::kUpsert, key, value);
      ASSERT_TRUE(reply.status.ok());
      model[key] = value;
    } else {
      auto reply = Write(OpType::kDelete, key);
      if (model.count(key)) {
        ASSERT_TRUE(reply.status.ok());
        model.erase(key);
      } else {
        ASSERT_TRUE(reply.status.IsNotFound());
      }
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(dc_->btree()->CheckInvariants(kTable).ok())
          << "step " << step;
    }
  }
  // Full-scan equivalence.
  OperationRequest scan;
  scan.tc_id = 1;
  scan.lsn = next_lsn_++;
  scan.op = OpType::kScanRange;
  scan.table_id = kTable;
  scan.limit = 100000;
  auto reply = dc_->Perform(scan);
  ASSERT_TRUE(reply.status.ok());
  ASSERT_EQ(reply.keys.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(reply.keys[i], k);
    ASSERT_EQ(reply.values[i], v);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeStormTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace untx
