#include "common/random.h"

#include <gtest/gtest.h>

#include <map>

namespace untx {
namespace {

TEST(RandomTest, Deterministic) {
  Random a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, SeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformInRange) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomTest, BytesHasRequestedLength) {
  Random rng(9);
  EXPECT_EQ(rng.Bytes(0).size(), 0u);
  EXPECT_EQ(rng.Bytes(37).size(), 37u);
}

TEST(ZipfianTest, StaysInRange) {
  Zipfian z(1000, 0.99, 11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Next(), 1000u);
  }
}

TEST(ZipfianTest, SkewsTowardSmallValues) {
  Zipfian z(10000, 0.99, 13);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Next()];
  // The most popular item must appear far more often than the uniform
  // expectation (n / 10000 = 5).
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 500);
}

TEST(ZipfianTest, ZeroThetaIsRoughlyUniform) {
  Zipfian z(100, 0.01, 17);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.Next()];
  // With near-zero skew every item should appear.
  EXPECT_GT(counts.size(), 95u);
}

}  // namespace
}  // namespace untx
