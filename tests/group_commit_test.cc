// Group-commit granularity (C9 extension): the forcer daemon is
// microsecond-granular and woken ON DEMAND by waiting committers, so a
// sub-millisecond group_commit_interval_us no longer silently rounds up
// to a 1ms tick — and a huge interval no longer stalls commits at all.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "kernel/unbundled_db.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

// The regression guard: with the old ms-rounded periodic tick, a 400ms
// interval meant every commit waited for the next tick (~400ms). The
// on-demand wake makes commit latency independent of the interval.
TEST(GroupCommitTest, CommitterWakesForcerOnDemand) {
  UnbundledDbOptions options;
  options.tc.group_commit = true;
  options.tc.group_commit_interval_us = 400000;  // 400ms idle backstop
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Three commits under the old code: >= 3 * ~400ms. With on-demand
  // wakes they complete promptly (generous bound for loaded CI).
  EXPECT_LT(elapsed.count(), 300) << "commit waited for the interval tick";
  EXPECT_GE(db->tc()->stats().group_commit_wakes.load(), 3u);
}

// Concurrent committers still amortize: one force covers the group that
// accumulated while the previous force was in flight.
TEST(GroupCommitTest, ConcurrentCommittersShareForces) {
  UnbundledDbOptions options;
  options.tc.group_commit = true;
  options.tc.group_commit_interval_us = 200;
  options.tc.log.force_delay_us = 300;  // forces are expensive
  options.tc.control_interval_ms = 1000;  // keep daemon forces out
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  for (int i = 0; i < 64; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  const uint64_t forces_before = db->tc()->log()->force_count();
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 16;
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        Txn txn(db->tc());
        if (!txn.Update(kTable, Key((t * kCommitsPerThread + i) % 64), "w")
                 .ok()) {
          continue;
        }
        if (txn.Commit().ok()) commits.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(commits.load(), static_cast<uint64_t>(kThreads *
                                                  kCommitsPerThread));
  const uint64_t forces = db->tc()->log()->force_count() - forces_before;
  // Strictly fewer forces than commits proves grouping happened; with 4
  // concurrent committers and a 300µs force, batches of 2+ are constant.
  EXPECT_LT(forces, commits.load());
  EXPECT_GT(forces, 0u);
}

}  // namespace
}  // namespace untx
