// Cluster-wide chaos/consistency sweep (PR 4): a seeded random workload
// — reads, writes, multi-DC transactions, scans, aborts, checkpoints —
// runs against a 2-TC x 2-DC channel Cluster whose wires drop, duplicate
// and reorder messages, with DC crashes, TC crashes (including mid-
// transaction) and restarts interleaved. The op log of transactions that
// COMMITTED is then replayed against monolithic::MonolithicEngine (which
// shares almost no recovery code with the unbundled kernel) and the
// final key/value state of both engines must be identical. This extends
// divergence_test's idea from one UnbundledDb to the full Cluster fault
// surface.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "kernel/cluster.h"
#include "monolithic/engine.h"

namespace untx {
namespace {

// Two tables so the default router (table % num_dcs) spreads the
// workload over both DCs; multi-key transactions span them.
//
// Write ownership is PARTITIONED per TC (§6: TCs share DCs for storage
// and cross-TC reads, but each record has one writer TC): TC t writes
// only keys with index ≡ t (mod 2). Cross-TC conflicting writes are
// outside the §1.2/§6.1 contract — per-TC redo cannot order them.
constexpr TableId kTableA = 1;  // routed to DC 1
constexpr TableId kTableB = 2;  // routed to DC 0
constexpr int kKeySpace = 40;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

struct LoggedOp {
  enum Kind { kUpsert, kDelete } kind;
  TableId table;
  std::string key;
  std::string value;
};

/// One committed transaction of the chaos run, replayable elsewhere.
struct LoggedTxn {
  std::vector<LoggedOp> ops;
};

struct ChaosConfig {
  uint64_t seed;
  double drop;
  double dup;
  uint32_t delay_us;
  int length;
  /// Hot standbys per DC; > 0 arms the failover drill in the DC-crash
  /// fault arm (promote a standby instead of recovering the primary).
  int replicas = 0;
};

class ClusterChaosTest : public ::testing::TestWithParam<ChaosConfig> {};

std::unique_ptr<Cluster> OpenChaosCluster(const ChaosConfig& config) {
  ClusterOptions options;
  options.num_dcs = 2;
  options.transport = TransportKind::kChannel;
  options.store.page_size = 1024;
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  options.replicas_per_dc = config.replicas;
  options.channel.request_channel.drop_prob = config.drop;
  options.channel.request_channel.dup_prob = config.dup;
  options.channel.request_channel.max_delay_us = config.delay_us;
  options.channel.request_channel.seed = config.seed * 31 + 7;
  options.channel.reply_channel.drop_prob = config.drop;
  options.channel.reply_channel.dup_prob = config.dup;
  options.channel.reply_channel.max_delay_us = config.delay_us;
  options.channel.reply_channel.seed = config.seed * 37 + 11;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.resend_interval_ms = 5;
    spec.options.control_interval_ms = 5;
    spec.options.scan_stream_chunk = 8;
    spec.options.scan_credit_chunks = 2;  // tiny window: max flow control
    spec.options.insert_phantom_protection = false;
    options.tcs.push_back(spec);
  }
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  EXPECT_TRUE(cluster->tc(0)->CreateTable(kTableA).ok());
  EXPECT_TRUE(cluster->tc(0)->CreateTable(kTableB).ok());
  EXPECT_TRUE(cluster->tc(1)->CreateTable(kTableA).ok());
  EXPECT_TRUE(cluster->tc(1)->CreateTable(kTableB).ok());
  return cluster;
}

using Model = std::map<std::pair<TableId, std::string>, std::string>;

TEST_P(ClusterChaosTest, MatchesMonolithicReplay) {
  const ChaosConfig& config = GetParam();
  auto cluster = OpenChaosCluster(config);
  Random rng(config.seed);
  Model model;               // expected state, maintained by the driver
  std::vector<LoggedTxn> committed;  // replayed against the monolith
  std::map<std::pair<TableId, std::string>, std::string> history;
  auto note = [&](TableId table, const std::string& key,
                  const std::string& what) {
    history[{table, key}] += what + "; ";
  };

  auto pick_table = [&] { return rng.Bernoulli(0.5) ? kTableA : kTableB; };
  // Any key, for reads/scans (cross-TC reads are fair game).
  auto pick_key = [&] {
    return Key(static_cast<int>(rng.Uniform(kKeySpace)));
  };
  // A key OWNED by TC t, for writes.
  auto pick_owned_key = [&](int t) {
    return Key(2 * static_cast<int>(rng.Uniform(kKeySpace / 2)) + t);
  };

  auto full_check = [&](int step, const char* what) {
    if (getenv("CHAOS_STEPWISE") == nullptr) return;
    for (TableId table : {kTableA, kTableB}) {
      std::vector<std::pair<std::string, std::string>> rows;
      ASSERT_TRUE(cluster->tc(0)
                      ->ScanShared(table, "", "", 0, ReadFlavor::kDirty,
                                   &rows)
                      .ok());
      Model got;
      for (const auto& [k, v] : rows) got[{table, k}] = v;
      for (const auto& [tk, v] : model) {
        if (tk.first != table) continue;
        auto it = got.find(tk);
        ASSERT_TRUE(it != got.end())
            << "step " << step << " (" << what << "): lost " << tk.second
            << "\n  hist: " << history[tk]
            << "\n  faults: " << history[{0, "faults"}];
        ASSERT_EQ(it->second, v)
            << "step " << step << " (" << what << "): " << tk.second
            << "\n  hist: " << history[tk]
            << "\n  faults: " << history[{0, "faults"}];
      }
      for (const auto& [tk, v] : got) {
        if (tk.first != table) continue;
        ASSERT_TRUE(model.count(tk))
            << "step " << step << " (" << what << "): resurrected "
            << tk.second << " = " << v << "\n  hist: " << history[tk]
            << "\n  faults: " << history[{0, "faults"}];
      }
    }
  };

  for (int step = 0; step < config.length; ++step) {
    full_check(step, "pre");
    const int t = static_cast<int>(rng.Uniform(2));
    TransactionComponent* tc = cluster->tc(t);
    const double r = rng.NextDouble();
    if (r < 0.40) {
      // Single-key upsert-or-delete transaction on an owned key.
      const TableId table = pick_table();
      const std::string key = pick_owned_key(t);
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok()) << "step " << step;
      LoggedTxn logged;
      bool ok;
      if (model.count({table, key}) != 0 && rng.Bernoulli(0.4)) {
        ok = tc->Delete(*txn, table, key).ok();
        if (ok) logged.ops.push_back({LoggedOp::kDelete, table, key, ""});
      } else {
        const std::string value = "v" + std::to_string(step);
        ok = tc->Upsert(*txn, table, key, value).ok();
        if (ok) logged.ops.push_back({LoggedOp::kUpsert, table, key, value});
      }
      if (ok && tc->Commit(*txn).ok()) {
        for (const auto& op : logged.ops) {
          note(op.table, op.key,
               std::to_string(step) + (op.kind == LoggedOp::kDelete
                                           ? ":del"
                                           : ":ups=" + op.value));
          if (op.kind == LoggedOp::kDelete) {
            model.erase({op.table, op.key});
          } else {
            model[{op.table, op.key}] = op.value;
          }
        }
        committed.push_back(std::move(logged));
      } else {
        note(table, key, std::to_string(step) + ":failed-abort");
        tc->Abort(*txn);
      }
    } else if (r < 0.55) {
      // Multi-key transaction spanning both tables (and therefore both
      // DCs) — commits atomically with no distributed coordination.
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok()) << "step " << step;
      LoggedTxn logged;
      bool ok = true;
      const int nops = 2 + static_cast<int>(rng.Uniform(3));
      for (int o = 0; o < nops && ok; ++o) {
        const TableId table = o % 2 == 0 ? kTableA : kTableB;
        const std::string key = pick_owned_key(t);
        const std::string value =
            "m" + std::to_string(step) + "-" + std::to_string(o);
        ok = tc->Upsert(*txn, table, key, value).ok();
        if (ok) logged.ops.push_back({LoggedOp::kUpsert, table, key, value});
      }
      if (ok && tc->Commit(*txn).ok()) {
        for (const auto& op : logged.ops) {
          note(op.table, op.key, std::to_string(step) + ":ups=" + op.value);
          model[{op.table, op.key}] = op.value;
        }
        committed.push_back(std::move(logged));
      } else {
        for (const auto& op : logged.ops) {
          note(op.table, op.key, std::to_string(step) + ":multi-abort");
        }
        tc->Abort(*txn);
      }
    } else if (r < 0.65) {
      // Aborted transaction: its writes must leave no trace.
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok()) << "step " << step;
      for (int o = 0; o < 2; ++o) {
        const TableId table = pick_table();
        const std::string key = pick_owned_key(t);
        Status us = tc->Upsert(*txn, table, key, "aborted");
        note(table, key, std::to_string(step) + ":aborted-ups(" +
                             us.ToString() + ")");
      }
      ASSERT_TRUE(tc->Abort(*txn).ok()) << "step " << step;
    } else if (r < 0.75) {
      // Mid-flight consistency check: a serializable read must agree
      // with the driver's model exactly (the driver is serial).
      const TableId table = pick_table();
      const std::string key = pick_key();
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok()) << "step " << step;
      std::string value;
      Status s = tc->Read(*txn, table, key, &value);
      auto it = model.find({table, key});
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound())
            << "step " << step << ": phantom value for " << key << ": "
            << s.ToString();
      } else {
        ASSERT_TRUE(s.ok()) << "step " << step << ": lost " << key << ": "
                            << s.ToString() << "\n  table " << table
                            << "\n  hist: " << history[{table, key}]
                            << "\n  faults: " << history[{0, "faults"}];
        ASSERT_EQ(value, it->second)
            << "step " << step << " table " << table << " key " << key
            << "\n  hist: " << history[{table, key}]
            << "\n  faults: " << history[{0, "faults"}];
      }
      tc->Commit(*txn);
    } else if (r < 0.85) {
      // Mid-flight credited streamed scan (the fetch-ahead fold under
      // chaos): a random range must match the model range exactly.
      const TableId table = pick_table();
      const int lo = static_cast<int>(rng.Uniform(kKeySpace));
      const int hi = lo + 1 + static_cast<int>(rng.Uniform(kKeySpace));
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok()) << "step " << step;
      std::vector<std::pair<std::string, std::string>> rows;
      ASSERT_TRUE(tc->Scan(*txn, table, Key(lo), Key(hi), 0, &rows).ok())
          << "step " << step;
      tc->Commit(*txn);
      std::vector<std::pair<std::string, std::string>> expect;
      for (const auto& [tk, v] : model) {
        if (tk.first == table && tk.second >= Key(lo) && tk.second < Key(hi)) {
          expect.emplace_back(tk.second, v);
        }
      }
      if (rows != expect) {
        // Diagnose before failing: is the row truly gone at the DC
        // (recovery bug) or did only this scan miss it (scan bug)?
        std::string diag = "scan [" + Key(lo) + ", " + Key(hi) +
                           ") via tc" + std::to_string(t) + ":";
        for (const auto& [k, v] : expect) {
          std::string direct;
          Status rs = tc->ReadShared(table, k, ReadFlavor::kDirty, &direct);
          diag += "\n  " + k + " model=" + v + " readshared=" +
                  (rs.ok() ? direct : rs.ToString());
        }
        std::vector<std::pair<std::string, std::string>> again;
        tc->ScanShared(table, Key(lo), Key(hi), 0, ReadFlavor::kDirty,
                       &again);
        diag += "\n  rescan(shared) rows=" + std::to_string(again.size());
        for (const auto& [k, v] : rows) {
          diag += "\n  hist " + k + ": " + history[{table, k}];
        }
        diag += "\n  faults: " + history[{0, "faults"}];
        ASSERT_EQ(rows, expect)
            << "scan divergence at step " << step << "\n" << diag;
      }
    } else if (r < 0.90) {
      const int d = static_cast<int>(rng.Uniform(2));
      if (cluster->num_replicas(d) > 0 && rng.Bernoulli(0.5)) {
        // Failover drill: kill the primary, promote a standby, then
        // revive every parked replica (the ex-primary included) so the
        // standby pool never dwindles.
        note(0, "faults", std::to_string(step) + ":fo" + std::to_string(d));
        cluster->CrashDc(d);
        Status fs = cluster->FailoverDc(d);
        ASSERT_TRUE(fs.ok()) << "step " << step << ": " << fs.ToString();
        for (int rr = 0; rr < cluster->num_replicas(d); ++rr) {
          if (!cluster->replica(d, rr)->crashed()) continue;
          Status js = cluster->RejoinReplica(d, rr);
          ASSERT_TRUE(js.ok()) << "step " << step << " replica " << rr << ": "
                               << js.ToString();
        }
      } else {
        // DC crash + recovery: every TC redo-resends to the revived DC.
        note(0, "faults", std::to_string(step) + ":dc" + std::to_string(d));
        cluster->CrashDc(d);
        ASSERT_TRUE(cluster->RecoverDc(d).ok()) << "step " << step;
      }
    } else if (r < 0.94) {
      // TC crash + restart (runs the §6.1.2 escalation when shared
      // pages were reset).
      const int victim_t = static_cast<int>(rng.Uniform(2));
      note(0, "faults", std::to_string(step) + ":tc" + std::to_string(victim_t));
      cluster->CrashTc(victim_t);
      ASSERT_TRUE(cluster->RestartTc(victim_t).ok()) << "step " << step;
    } else if (r < 0.97) {
      // TC crash with a transaction OPEN: the restart must undo it.
      const int victim_t = static_cast<int>(rng.Uniform(2));
      TransactionComponent* victim = cluster->tc(victim_t);
      StatusOr<TxnId> txn = victim->Begin();
      if (txn.ok()) {
        for (int o = 0; o < 2; ++o) {
          const TableId table = pick_table();
          const std::string key = pick_owned_key(victim_t);
          victim->Upsert(*txn, table, key, "lost-in-crash");
          note(table, key, std::to_string(step) + ":lost-in-crash");
        }
      }
      note(0, "faults",
           std::to_string(step) + ":midtxn-tc" + std::to_string(victim_t));
      cluster->CrashTc(victim_t);
      ASSERT_TRUE(cluster->RestartTc(victim_t).ok()) << "step " << step;
    } else {
      // Checkpoint: advances the RSSP and truncates the log under chaos.
      tc->TakeCheckpoint();  // best effort; timing out is not a failure
    }
  }

  // Final state of the cluster, per table, via a serializable scan.
  Model final_state;
  for (TableId table : {kTableA, kTableB}) {
    StatusOr<TxnId> txn = cluster->tc(0)->Begin();
    ASSERT_TRUE(txn.ok());
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(
        cluster->tc(0)->Scan(*txn, table, "", "", 0, &rows).ok());
    cluster->tc(0)->Commit(*txn);
    for (const auto& [k, v] : rows) final_state[{table, k}] = v;
  }

  // Replay the committed op log against the monolithic engine.
  StableStoreOptions store_options;
  store_options.page_size = 1024;
  store_options.trailer_capacity = 128;
  StableStore store(store_options);
  monolithic::MonolithicEngine engine(&store);
  ASSERT_TRUE(engine.Initialize().ok());
  ASSERT_TRUE(engine.CreateTable(kTableA).ok());
  ASSERT_TRUE(engine.CreateTable(kTableB).ok());
  for (const LoggedTxn& logged : committed) {
    TxnId txn = std::move(engine.Begin()).ValueOrDie();
    for (const auto& op : logged.ops) {
      if (op.kind == LoggedOp::kDelete) {
        ASSERT_TRUE(engine.Delete(txn, op.table, op.key).ok());
      } else {
        // Monolith has no upsert; emulate.
        std::string existing;
        if (engine.Read(txn, op.table, op.key, &existing).ok()) {
          ASSERT_TRUE(engine.Update(txn, op.table, op.key, op.value).ok());
        } else {
          ASSERT_TRUE(engine.Insert(txn, op.table, op.key, op.value).ok());
        }
      }
    }
    ASSERT_TRUE(engine.Commit(txn).ok());
  }
  Model replay_state;
  for (TableId table : {kTableA, kTableB}) {
    TxnId txn = std::move(engine.Begin()).ValueOrDie();
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(engine.Scan(txn, table, "", "", 0, &rows).ok());
    engine.Commit(txn);
    for (const auto& [k, v] : rows) replay_state[{table, k}] = v;
  }

  // The three views — live cluster, monolithic replay, driver model —
  // must agree key for key, value for value.
  EXPECT_EQ(replay_state.size(), model.size())
      << "harness bug: replay and model disagree";
  ASSERT_EQ(final_state.size(), replay_state.size())
      << "cluster and monolithic replay diverged in row count";
  for (const auto& [tk, v] : replay_state) {
    auto it = final_state.find(tk);
    ASSERT_TRUE(it != final_state.end())
        << "table " << tk.first << " key " << tk.second
        << " only in the monolithic replay";
    ASSERT_EQ(it->second, v) << "value divergence at table " << tk.first
                             << " key " << tk.second;
  }

  // No §1.2 contract violations anywhere in the topology.
  EXPECT_EQ(cluster->dc(0)->stats().conflicts_detected.load(), 0u);
  EXPECT_EQ(cluster->dc(1)->stats().conflicts_detected.load(), 0u);
}

std::string ChaosName(const ::testing::TestParamInfo<ChaosConfig>& info) {
  return "seed" + std::to_string(info.param.seed) + "drop" +
         std::to_string(static_cast<int>(info.param.drop * 1000)) + "dup" +
         std::to_string(static_cast<int>(info.param.dup * 1000));
}

INSTANTIATE_TEST_SUITE_P(
    FaultConfigs, ClusterChaosTest,
    ::testing::Values(
        // Reorder-only, drop-heavy, dup-heavy, everything at once, and
        // a heavy-loss soak.
        ChaosConfig{11, 0.0, 0.0, 400, 260},
        ChaosConfig{22, 0.02, 0.0, 200, 220},
        ChaosConfig{33, 0.0, 0.04, 200, 220},
        ChaosConfig{44, 0.03, 0.03, 500, 220},
        ChaosConfig{55, 0.05, 0.03, 600, 160},
        // Failover soak: one hot standby per DC; the DC-crash arm
        // flips between promote-a-standby and recover-the-primary.
        ChaosConfig{66, 0.02, 0.02, 300, 200, 1}),
    ChaosName);

}  // namespace
}  // namespace untx
