#include "net/sim_channel.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace untx {
namespace {

TEST(SimChannelTest, DeliversInOrderWithoutFaults) {
  SimChannel ch;
  ch.Send("a");
  ch.Send("b");
  ch.Send("c");
  std::string out;
  ASSERT_TRUE(ch.Receive(&out, 100));
  EXPECT_EQ(out, "a");
  ASSERT_TRUE(ch.Receive(&out, 100));
  EXPECT_EQ(out, "b");
  ASSERT_TRUE(ch.Receive(&out, 100));
  EXPECT_EQ(out, "c");
}

TEST(SimChannelTest, ReceiveTimesOutWhenEmpty) {
  SimChannel ch;
  std::string out;
  EXPECT_FALSE(ch.Receive(&out, 10));
}

TEST(SimChannelTest, TryReceiveNonBlocking) {
  SimChannel ch;
  std::string out;
  EXPECT_FALSE(ch.TryReceive(&out));
  ch.Send("x");
  EXPECT_TRUE(ch.TryReceive(&out));
  EXPECT_EQ(out, "x");
}

TEST(SimChannelTest, DropAllMessages) {
  ChannelOptions options;
  options.drop_prob = 1.0;
  SimChannel ch(options);
  ch.Send("gone");
  std::string out;
  EXPECT_FALSE(ch.Receive(&out, 10));
  EXPECT_EQ(ch.dropped(), 1u);
}

TEST(SimChannelTest, DuplicationDeliversTwice) {
  ChannelOptions options;
  options.dup_prob = 1.0;
  SimChannel ch(options);
  ch.Send("twin");
  std::string a, b;
  ASSERT_TRUE(ch.Receive(&a, 100));
  ASSERT_TRUE(ch.Receive(&b, 100));
  EXPECT_EQ(a, "twin");
  EXPECT_EQ(b, "twin");
  EXPECT_EQ(ch.duplicated(), 1u);
}

TEST(SimChannelTest, RandomDelayReordersMessages) {
  ChannelOptions options;
  options.min_delay_us = 0;
  options.max_delay_us = 3000;
  options.seed = 99;
  SimChannel ch(options);
  const int n = 200;
  for (int i = 0; i < n; ++i) ch.Send(std::to_string(i));
  std::vector<std::string> got;
  std::string out;
  while (ch.Receive(&out, 50)) got.push_back(out);
  ASSERT_EQ(got.size(), static_cast<size_t>(n));
  bool reordered = false;
  for (int i = 1; i < n; ++i) {
    if (std::stoi(got[i]) < std::stoi(got[i - 1])) {
      reordered = true;
      break;
    }
  }
  EXPECT_TRUE(reordered) << "random delays should reorder some messages";
}

TEST(SimChannelTest, ClearDiscardsInFlight) {
  SimChannel ch;
  ch.Send("a");
  ch.Send("b");
  ch.Clear();
  std::string out;
  EXPECT_FALSE(ch.Receive(&out, 10));
  EXPECT_EQ(ch.InFlight(), 0u);
}

TEST(SimChannelTest, CloseStopsSends) {
  SimChannel ch;
  ch.Close();
  ch.Send("ignored");
  EXPECT_EQ(ch.sent(), 0u);
  EXPECT_TRUE(ch.closed());
}

TEST(SimChannelTest, ConcurrentProducersConsumers) {
  SimChannel ch;
  const int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.Send(std::to_string(p * kPerProducer + i));
      }
    });
  }
  std::set<std::string> received;
  std::mutex mu;
  std::vector<std::thread> consumers;
  std::atomic<int> count{0};
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      std::string out;
      while (count.load() < 4 * kPerProducer) {
        if (ch.Receive(&out, 50)) {
          std::lock_guard<std::mutex> guard(mu);
          received.insert(out);
          count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(received.size(), static_cast<size_t>(4 * kPerProducer));
}

TEST(SimChannelTest, StatsConsistent) {
  ChannelOptions options;
  options.drop_prob = 0.5;
  options.seed = 1;
  SimChannel ch(options);
  for (int i = 0; i < 1000; ++i) ch.Send("m");
  std::string out;
  uint64_t drained = 0;
  while (ch.Receive(&out, 5)) ++drained;
  EXPECT_EQ(ch.sent(), 1000u);
  EXPECT_EQ(ch.delivered(), drained);
  EXPECT_EQ(ch.delivered() + ch.dropped(), 1000u);
  EXPECT_GT(ch.dropped(), 300u);
  EXPECT_LT(ch.dropped(), 700u);
}

}  // namespace
}  // namespace untx
