// Partial-failure tests (§5.3): DC crash, TC crash, combined, and crash
// storms checked against an in-memory model.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "kernel/unbundled_db.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

UnbundledDbOptions Options() {
  UnbundledDbOptions options;
  options.store.page_size = 1024;
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 20;
  return options;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void Open(UnbundledDbOptions options) {
    auto db = UnbundledDb::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).ValueOrDie();
    ASSERT_TRUE(db_->CreateTable(kTable).ok());
  }

  Status Put(const std::string& key, const std::string& value) {
    Txn txn(db_->tc());
    Status s = txn.Insert(kTable, key, value);
    if (!s.ok()) {
      txn.Abort();
      return s;
    }
    return txn.Commit();
  }

  StatusOr<std::string> Get(const std::string& key) {
    Txn txn(db_->tc());
    std::string value;
    Status s = txn.Read(kTable, key, &value);
    txn.Commit();
    if (!s.ok()) return s;
    return value;
  }

  std::map<std::string, std::string> ScanAll() {
    Txn txn(db_->tc());
    std::vector<std::pair<std::string, std::string>> rows;
    Status s = txn.Scan(kTable, "", "", 0, &rows);
    txn.Commit();
    std::map<std::string, std::string> out;
    if (s.ok()) {
      for (auto& [k, v] : rows) out[k] = v;
    }
    return out;
  }

  std::unique_ptr<UnbundledDb> db_;
};

TEST_F(RecoveryTest, DcCrashCommittedDataSurvives) {
  Open(Options());
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(Put(Key(i), "v" + std::to_string(i)).ok()) << i;
  }
  db_->CrashDc(0);
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  for (int i = 0; i < n; ++i) {
    auto v = Get(Key(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
    ASSERT_EQ(*v, "v" + std::to_string(i));
  }
  EXPECT_TRUE(db_->dc(0)->btree()->CheckInvariants(kTable).ok());
}

TEST_F(RecoveryTest, DcCrashMidTransactionOpsResume) {
  Open(Options());
  ASSERT_TRUE(Put("pre", "1").ok());
  // Crash the DC, then recover it; committed data must be intact and new
  // transactions must work.
  db_->CrashDc(0);
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  ASSERT_TRUE(Put("post", "2").ok());
  EXPECT_EQ(*Get("pre"), "1");
  EXPECT_EQ(*Get("post"), "2");
}

TEST_F(RecoveryTest, TcCrashLosesUncommittedKeepsCommitted) {
  Open(Options());
  ASSERT_TRUE(Put("committed", "yes").ok());

  // A transaction that never commits: its effects must vanish.
  StatusOr<TxnId> txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->tc()->Insert(*txn, kTable, "uncommitted", "x").ok());

  db_->CrashTc();
  ASSERT_TRUE(db_->RestartTc().ok());

  EXPECT_EQ(*Get("committed"), "yes");
  EXPECT_TRUE(Get("uncommitted").status().IsNotFound())
      << "loser transactions must be undone or their effects reset";
}

TEST_F(RecoveryTest, TcCrashAfterCommitIsDurable) {
  Open(Options());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(Put(Key(i), "durable").ok());
  }
  db_->CrashTc();
  ASSERT_TRUE(db_->RestartTc().ok());
  for (int i = 0; i < 50; ++i) {
    auto v = Get(Key(i));
    ASSERT_TRUE(v.ok()) << i;
    ASSERT_EQ(*v, "durable");
  }
}

TEST_F(RecoveryTest, TcCrashResetsDcCachePages) {
  Open(Options());
  ASSERT_TRUE(Put("stable", "s").ok());
  // Give the control daemon a beat to push EOSL/LWM, then force pages out.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  db_->dc(0)->pool()->FlushAllEligible();

  // Uncommitted write sits only in the DC cache (beyond the stable log
  // after the crash wipes the tail... commit was never issued).
  StatusOr<TxnId> txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->tc()->Update(*txn, kTable, "stable", "dirty").ok());

  db_->CrashTc();
  ASSERT_TRUE(db_->RestartTc().ok());

  auto v = Get("stable");
  ASSERT_TRUE(v.ok());
  // Depending on whether the update's log record was forced before the
  // crash, recovery either redoes it and undoes it (loser txn) or the
  // reset discarded it. Either way the committed value is back.
  EXPECT_EQ(*v, "s");
}

TEST_F(RecoveryTest, DoubleCrashDuringRecoveryWindow) {
  Open(Options());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Put(Key(i), "v").ok());
  }
  db_->CrashDc(0);
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  db_->CrashDc(0);  // crash again immediately
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Get(Key(i)).ok()) << i;
  }
}

TEST_F(RecoveryTest, TcThenDcCrash) {
  Open(Options());
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(Put(Key(i), "both").ok());
  }
  db_->CrashTc();
  ASSERT_TRUE(db_->RestartTc().ok());
  db_->CrashDc(0);
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  for (int i = 0; i < 80; ++i) {
    auto v = Get(Key(i));
    ASSERT_TRUE(v.ok()) << i;
    ASSERT_EQ(*v, "both");
  }
}

TEST_F(RecoveryTest, CompleteFailureBothComponents) {
  // "The complete failure of both TC and DC returns us to the current
  // fail-together situation" (§5.3.2).
  Open(Options());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(Put(Key(i), "v").ok());
  }
  db_->CrashTc();
  db_->CrashDc(0);
  db_->dc(0)->Restore();
  ASSERT_TRUE(db_->dc(0)->Recover().ok());
  ASSERT_TRUE(db_->RestartTc().ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(Get(Key(i)).ok()) << i;
  }
}

TEST_F(RecoveryTest, CheckpointBoundsRedoWork) {
  Open(Options());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Put(Key(i), "v").ok());
  }
  ASSERT_TRUE(db_->tc()->TakeCheckpoint().ok());
  const Lsn rssp = db_->tc()->rssp();
  EXPECT_GT(rssp, 1u);
  // After the checkpoint, more writes land.
  for (int i = 200; i < 220; ++i) {
    ASSERT_TRUE(Put(Key(i), "v").ok());
  }
  db_->CrashDc(0);
  const uint64_t ops_before = db_->dc(0)->stats().ops.load();
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  const uint64_t redo_ops = db_->dc(0)->stats().ops.load() - ops_before;
  // Redo resends only from the RSSP: far fewer than all 220 inserts.
  EXPECT_LT(redo_ops, 150u);
  for (int i = 0; i < 220; ++i) {
    ASSERT_TRUE(Get(Key(i)).ok()) << i;
  }
}

TEST_F(RecoveryTest, CheckpointTruncatesLog) {
  Open(Options());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Put(Key(i), "v").ok());
  }
  EXPECT_EQ(db_->tc()->log()->truncated_prefix(), 0u);
  ASSERT_TRUE(db_->tc()->TakeCheckpoint().ok());
  EXPECT_GT(db_->tc()->log()->truncated_prefix(), 0u)
      << "contract termination must release log space";
}

TEST_F(RecoveryTest, RepeatedCrashRecoverCyclesMatchModel) {
  Open(Options());
  Random rng(4242);
  std::map<std::string, std::string> model;
  for (int cycle = 0; cycle < 6; ++cycle) {
    // Mutate.
    for (int i = 0; i < 40; ++i) {
      const std::string key = Key(static_cast<int>(rng.Uniform(60)));
      const std::string value = rng.Bytes(8);
      Txn txn(db_->tc());
      Status s;
      if (model.count(key) > 0) {
        if (rng.Bernoulli(0.3)) {
          s = txn.Delete(kTable, key);
          if (s.ok() && txn.Commit().ok()) model.erase(key);
        } else {
          s = txn.Update(kTable, key, value);
          if (s.ok() && txn.Commit().ok()) model[key] = value;
        }
      } else {
        s = txn.Insert(kTable, key, value);
        if (s.ok() && txn.Commit().ok()) model[key] = value;
      }
    }
    // Crash someone.
    if (cycle % 3 == 0) {
      db_->CrashDc(0);
      ASSERT_TRUE(db_->RecoverDc(0).ok());
    } else if (cycle % 3 == 1) {
      db_->CrashTc();
      ASSERT_TRUE(db_->RestartTc().ok());
    } else {
      ASSERT_TRUE(db_->tc()->TakeCheckpoint().ok());
      db_->CrashDc(0);
      ASSERT_TRUE(db_->RecoverDc(0).ok());
    }
    // Verify.
    auto state = ScanAll();
    ASSERT_EQ(state.size(), model.size()) << "cycle " << cycle;
    for (const auto& [k, v] : model) {
      ASSERT_TRUE(state.count(k) > 0) << "cycle " << cycle << " key " << k;
      ASSERT_EQ(state[k], v) << "cycle " << cycle << " key " << k;
    }
    ASSERT_TRUE(db_->dc(0)->btree()->CheckInvariants(kTable).ok());
  }
}

TEST_F(RecoveryTest, RedoResendShipsOrderedBatches) {
  Open(Options());
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(Put(Key(i), "v" + std::to_string(i)).ok()) << i;
  }
  const TcStats& stats = db_->tc()->stats();
  ASSERT_EQ(stats.recovery_resent_ops.load(), 0u);
  db_->CrashDc(0);
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  const uint64_t ops = stats.recovery_resent_ops.load();
  const uint64_t msgs = stats.recovery_resend_msgs.load();
  EXPECT_GE(ops, static_cast<uint64_t>(n));
  // Redo ships ordered kOperationBatch messages (recovery_batch_ops = 64
  // by default), not one op per round trip: ~200 ops in a handful of
  // messages even allowing for a few resends.
  EXPECT_LT(msgs * 8, ops) << "redo-resend must batch";
  for (int i = 0; i < n; ++i) {
    auto v = Get(Key(i));
    ASSERT_TRUE(v.ok()) << i;
    ASSERT_EQ(*v, "v" + std::to_string(i));
  }
}

TEST_F(RecoveryTest, RedoResendBatchSizeOneMatchesLegacyProtocol) {
  UnbundledDbOptions options = Options();
  options.tc.recovery_batch_ops = 1;
  Open(options);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(Put(Key(i), "v").ok()) << i;
  }
  db_->CrashDc(0);
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  const TcStats& stats = db_->tc()->stats();
  // One op per message: the sequential §3.2 protocol still works.
  EXPECT_GE(stats.recovery_resend_msgs.load(),
            stats.recovery_resent_ops.load());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(Get(Key(i)).ok()) << i;
  }
}

TEST_F(RecoveryTest, RecoveryWithChannelTransportAndLoss) {
  UnbundledDbOptions options = Options();
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.drop_prob = 0.03;
  options.channel.reply_channel.drop_prob = 0.03;
  options.channel.request_channel.max_delay_us = 300;
  options.channel.reply_channel.max_delay_us = 300;
  options.tc.resend_interval_ms = 10;
  Open(options);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(Put(Key(i), "v").ok()) << i;
  }
  db_->CrashDc(0);
  ASSERT_TRUE(db_->RecoverDc(0).ok());
  for (int i = 0; i < 60; ++i) {
    auto v = Get(Key(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
  }
}

}  // namespace
}  // namespace untx
