#include "common/status.h"

#include <gtest/gtest.h>

#include "common/status_or.h"

namespace untx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryAndPredicates) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::Conflict().IsConflict());
  EXPECT_TRUE(Status::Crashed().IsCrashed());
  EXPECT_TRUE(Status::AccessDenied().IsAccessDenied());
  EXPECT_TRUE(Status::Shutdown().IsShutdown());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, MessagePropagates) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_EQ(s.message(), "bad checksum");
  EXPECT_EQ(s.ToString(), "Corruption: bad checksum");
}

TEST(StatusTest, RoundTripThroughByte) {
  for (auto code :
       {Status::OK(), Status::NotFound("x"), Status::AlreadyExists(),
        Status::Corruption(), Status::InvalidArgument(), Status::IOError(),
        Status::Busy(), Status::Deadlock(), Status::Aborted(),
        Status::TimedOut(), Status::NotSupported(), Status::Conflict(),
        Status::Crashed(), Status::AccessDenied(), Status::Shutdown()}) {
    Status round = StatusFromByte(StatusCodeToByte(code.code()));
    EXPECT_EQ(round.code(), code.code());
  }
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Corruption());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOut) {
  StatusOr<std::string> v(std::string("payload"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace untx
