#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/histogram.h"
#include "util/latch.h"
#include "util/repeating_thread.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace untx {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, DrainWaitsForInFlight) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.Drain();
  EXPECT_TRUE(done.load());
}

TEST(LatchTest, SharedReadersCoexist) {
  Latch latch;
  latch.LockShared();
  latch.LockShared();
  latch.UnlockShared();
  latch.UnlockShared();
  EXPECT_EQ(latch.shared_acquires(), 2u);
}

TEST(LatchTest, ExclusiveBlocksTryLock) {
  Latch latch;
  latch.LockExclusive();
  EXPECT_FALSE(latch.TryLockExclusive());
  latch.UnlockExclusive();
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

TEST(LatchTest, GuardReleases) {
  Latch latch;
  {
    ExclusiveLatchGuard guard(&latch);
    EXPECT_FALSE(latch.TryLockExclusive());
  }
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

TEST(SyncTest, NotificationReleasesWaiter) {
  Notification n;
  std::thread t([&n] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    n.Notify();
  });
  n.Wait();
  EXPECT_TRUE(n.HasBeenNotified());
  t.join();
}

TEST(SyncTest, NotificationTimesOut) {
  Notification n;
  EXPECT_FALSE(n.WaitFor(std::chrono::milliseconds(10)));
}

TEST(SyncTest, CountDownLatch) {
  CountDownLatch latch(3);
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&latch] { latch.CountDown(); });
  }
  latch.Wait();
  for (auto& t : threads) t.join();
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 100u);
  EXPECT_NEAR(h.Average(), 50.5, 0.01);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Min(), 10u);
  EXPECT_EQ(a.Max(), 1000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(RepeatingThreadTest, FiresRepeatedly) {
  RepeatingThread rt;
  std::atomic<int> fires{0};
  rt.Start(std::chrono::milliseconds(5), [&fires] { fires.fetch_add(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  rt.Stop();
  EXPECT_GE(fires.load(), 3);
}

TEST(RepeatingThreadTest, PokeFiresImmediately) {
  RepeatingThread rt;
  std::atomic<int> fires{0};
  rt.Start(std::chrono::hours(1), [&fires] { fires.fetch_add(1); });
  rt.Poke();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rt.Stop();
  EXPECT_GE(fires.load(), 1);
}

}  // namespace
}  // namespace untx
