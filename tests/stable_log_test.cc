#include "wal/stable_log.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace untx {
namespace {

TEST(StableLogTest, AppendForceRead) {
  StableLog log;
  const uint64_t i0 = log.Append("zero");
  const uint64_t i1 = log.Append("one");
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(log.stable_end(), 0u);
  EXPECT_EQ(log.Force(), 2u);
  std::string out;
  ASSERT_TRUE(log.ReadAt(0, &out).ok());
  EXPECT_EQ(out, "zero");
  ASSERT_TRUE(log.ReadAt(1, &out).ok());
  EXPECT_EQ(out, "one");
}

TEST(StableLogTest, CrashDropsVolatileTail) {
  StableLog log;
  log.Append("durable");
  log.Force();
  log.Append("lost");
  log.Crash();
  EXPECT_EQ(log.total_end(), 1u);
  std::string out;
  EXPECT_TRUE(log.ReadAt(1, &out).IsNotFound());
  ASSERT_TRUE(log.ReadAt(0, &out).ok());
  EXPECT_EQ(out, "durable");
}

TEST(StableLogTest, UnsealedReservationBlocksForce) {
  StableLog log;
  const uint64_t r = log.Reserve();
  log.Append("after-hole");  // sealed, but behind the reservation
  EXPECT_EQ(log.Force(), 0u) << "force must not pass an unsealed record";
  log.Seal(r, "hole-filled");
  EXPECT_EQ(log.Force(), 2u);
  std::string out;
  ASSERT_TRUE(log.ReadAt(r, &out).ok());
  EXPECT_EQ(out, "hole-filled");
}

TEST(StableLogTest, SealedPrefixEndTracksHoles) {
  StableLog log;
  log.Append("a");
  const uint64_t hole = log.Reserve();
  log.Append("c");
  EXPECT_EQ(log.sealed_prefix_end(), 1u);
  log.Seal(hole, "b");
  EXPECT_EQ(log.sealed_prefix_end(), 3u);
}

TEST(StableLogTest, CrashDropsUnsealedReservations) {
  StableLog log;
  log.Append("keep");
  log.Force();
  log.Reserve();  // never sealed
  log.Append("volatile");
  log.Crash();
  EXPECT_EQ(log.total_end(), 1u);
  // After crash, new appends reuse the freed indices.
  EXPECT_EQ(log.Append("fresh"), 1u);
}

TEST(StableLogTest, ReadUnsealedIsBusy) {
  StableLog log;
  const uint64_t r = log.Reserve();
  std::string out;
  EXPECT_TRUE(log.ReadAt(r, &out).IsBusy());
}

TEST(StableLogTest, ForceToStopsAtIndex) {
  StableLog log;
  log.Append("a");
  log.Append("b");
  log.Append("c");
  EXPECT_EQ(log.ForceTo(1), 2u);
  EXPECT_EQ(log.stable_end(), 2u);
}

TEST(StableLogTest, TruncatePrefixKeepsIndices) {
  StableLog log;
  log.Append("a");
  log.Append("b");
  log.Append("c");
  log.Force();
  log.TruncatePrefix(2);
  EXPECT_EQ(log.truncated_prefix(), 2u);
  std::string out;
  EXPECT_TRUE(log.ReadAt(0, &out).IsNotFound());
  EXPECT_TRUE(log.ReadAt(1, &out).IsNotFound());
  ASSERT_TRUE(log.ReadAt(2, &out).ok());
  EXPECT_EQ(out, "c");
  // New appends continue from the old numbering.
  EXPECT_EQ(log.Append("d"), 3u);
}

TEST(StableLogTest, TruncateNeverEntersVolatileRegion) {
  StableLog log;
  log.Append("a");
  log.Force();
  log.Append("b");           // volatile
  log.TruncatePrefix(100);   // clamped to stable_end = 1
  EXPECT_EQ(log.truncated_prefix(), 1u);
  std::string out;
  ASSERT_TRUE(log.ReadAt(1, &out).ok());
  EXPECT_EQ(out, "b");
}

TEST(StableLogTest, WaitStableThroughBlocksUntilForce) {
  StableLog log;
  const uint64_t idx = log.Append("commit-record");
  std::thread forcer([&log] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.Force();
  });
  EXPECT_TRUE(log.WaitStableThrough(idx, 1000));
  forcer.join();
}

TEST(StableLogTest, WaitStableTimesOut) {
  StableLog log;
  const uint64_t idx = log.Append("never-forced");
  EXPECT_FALSE(log.WaitStableThrough(idx, 20));
}

TEST(StableLogTest, StatsAccumulate) {
  StableLog log;
  log.Append("12345");
  log.Append("678");
  log.Force();
  EXPECT_EQ(log.bytes_appended(), 8u);
  EXPECT_EQ(log.force_count(), 1u);
  log.Force();  // nothing new: no device write
  EXPECT_EQ(log.force_count(), 1u);
}

}  // namespace
}  // namespace untx
