// The pipelined asynchronous operation API: Submit*/Await/AwaitAll on the
// TC, the Txn helper's *Async/MultiRead/Flush surface, ordering of
// same-key pipelined ops, rollback of unawaited writes, and the
// UnbundledDb accessor bounds checks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/unbundled_db.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::unique_ptr<UnbundledDb> MakeDb(TransportKind transport,
                                    int num_dcs = 1) {
  UnbundledDbOptions options;
  options.num_dcs = num_dcs;
  options.transport = transport;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 40;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  return db;
}

class AsyncApiTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(AsyncApiTest, PipelinedWritesThenMultiRead) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  {
    Txn txn(db->tc());
    for (int i = 0; i < 32; ++i) {
      txn.InsertAsync(kTable, "k" + std::to_string(i),
                      "v" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Txn txn(db->tc());
    std::vector<std::string> keys;
    for (int i = 0; i < 32; ++i) keys.push_back("k" + std::to_string(i));
    std::vector<std::string> values;
    ASSERT_TRUE(txn.MultiRead(kTable, keys, &values).ok());
    ASSERT_EQ(values.size(), 32u);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(values[i], "v" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
}

TEST_P(AsyncApiTest, AwaitOutOfOrderAndTwice) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, "a", "va").ok());
    ASSERT_TRUE(txn.Insert(kTable, "b", "vb").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Txn txn(db->tc());
  OpHandle ha = txn.ReadAsync(kTable, "a");
  OpHandle hb = txn.ReadAsync(kTable, "b");
  std::string vb, va;
  EXPECT_TRUE(txn.Await(&hb, &vb).ok());
  EXPECT_TRUE(txn.Await(&ha, &va).ok());
  EXPECT_EQ(va, "va");
  EXPECT_EQ(vb, "vb");
  // Awaiting the same handle again is harmless.
  std::string again;
  EXPECT_TRUE(txn.Await(&ha, &again).ok());
  EXPECT_EQ(again, "va");
  EXPECT_TRUE(txn.Commit().ok());
}

/// Same-key pipelined ops must apply in submission order even on a
/// reordering channel — the conflict gate serializes them.
TEST_P(AsyncApiTest, SameKeyPipelineStaysOrdered) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  Txn txn(db->tc());
  ASSERT_TRUE(txn.Insert(kTable, "counter", "v0").ok());
  for (int i = 1; i <= 5; ++i) {
    txn.UpdateAsync(kTable, "counter", "v" + std::to_string(i));
  }
  OpHandle read = txn.ReadAsync(kTable, "counter");
  std::string value;
  ASSERT_TRUE(txn.Await(&read, &value).ok());
  EXPECT_EQ(value, "v5");
  ASSERT_TRUE(txn.Flush().ok());
  ASSERT_TRUE(txn.Commit().ok());
}

/// Unawaited pipelined writes are still rolled back on abort: the
/// drain-at-abort harvests their undo images.
TEST_P(AsyncApiTest, AbortRollsBackUnawaitedWrites) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, "keep", "original").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Txn txn(db->tc());
    txn.UpdateAsync(kTable, "keep", "doomed");
    txn.InsertAsync(kTable, "ghost", "doomed");
    ASSERT_TRUE(txn.Abort().ok());  // no explicit Flush/Await
  }
  Txn txn(db->tc());
  std::string value;
  ASSERT_TRUE(txn.Read(kTable, "keep", &value).ok());
  EXPECT_EQ(value, "original");
  EXPECT_TRUE(txn.Read(kTable, "ghost", &value).IsNotFound());
  txn.Commit();
}

/// A failed pipelined op that was never awaited surfaces at Commit and
/// blocks it; the transaction stays open and can be aborted.
TEST_P(AsyncApiTest, CommitSurfacesUnawaitedFailure) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, "taken", "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  TransactionComponent* tc = db->tc();
  TxnId txn = *tc->Begin();
  tc->SubmitInsert(txn, kTable, "taken", "dup");  // will fail AlreadyExists
  EXPECT_TRUE(tc->Commit(txn).IsAlreadyExists());
  EXPECT_TRUE(tc->Abort(txn).ok());
}

/// A commit blocked by a pipelined failure leaves the transaction open;
/// the Txn RAII helper must still abort it on scope exit so its locks
/// are released (regression: finished_ was set before Commit ran).
TEST_P(AsyncApiTest, FailedCommitStillReleasesLocksViaRaii) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, "taken", "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Txn txn(db->tc());
    txn.InsertAsync(kTable, "taken", "dup");  // fails at the DC
    EXPECT_TRUE(txn.Commit().IsAlreadyExists());
  }  // scope exit must abort and release the X lock on "taken"
  Txn txn(db->tc());
  ASSERT_TRUE(txn.Update(kTable, "taken", "v2").ok());  // hangs if leaked
  ASSERT_TRUE(txn.Commit().ok());
}

/// Scan is an await point: a failed pipelined op surfaces there instead
/// of being silently harvested (regression: Scan dropped the status).
TEST_P(AsyncApiTest, ScanSurfacesPipelinedFailure) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, "taken", "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Txn txn(db->tc());
  txn.InsertAsync(kTable, "taken", "dup");
  std::vector<std::pair<std::string, std::string>> rows;
  EXPECT_TRUE(txn.Scan(kTable, "", "", 0, &rows).IsAlreadyExists());
  ASSERT_TRUE(txn.Abort().ok());
}

TEST_P(AsyncApiTest, MultiReadReportsMissingKey) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, "present", "here").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Txn txn(db->tc());
  std::vector<std::string> values;
  Status s = txn.MultiRead(kTable, {"present", "absent"}, &values);
  EXPECT_TRUE(s.IsNotFound());
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], "here");
  EXPECT_TRUE(values[1].empty());
  txn.Commit();
}

TEST_P(AsyncApiTest, SubmitAfterCrashFailsCleanly) {
  auto db = MakeDb(GetParam());
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  TransactionComponent* tc = db->tc();
  TxnId txn = *tc->Begin();
  db->CrashTc();
  OpHandle handle = tc->SubmitRead(txn, kTable, "any");
  EXPECT_FALSE(handle.submitted());
  std::string value;
  EXPECT_TRUE(tc->Await(&handle, &value).IsCrashed());
  ASSERT_TRUE(db->RestartTc().ok());
}

TEST_P(AsyncApiTest, PipelineSpansDcs) {
  auto db = MakeDb(GetParam(), /*num_dcs=*/2);
  TransactionComponent* tc = db->tc();
  // Default router: table % num_dcs — use two tables on two DCs.
  ASSERT_TRUE(tc->CreateTable(2).ok());
  ASSERT_TRUE(tc->CreateTable(3).ok());
  Txn txn(db->tc());
  for (int i = 0; i < 8; ++i) {
    txn.InsertAsync(2, "k" + std::to_string(i), "dc0");
    txn.InsertAsync(3, "k" + std::to_string(i), "dc1");
  }
  ASSERT_TRUE(txn.Flush().ok());
  ASSERT_TRUE(txn.Commit().ok());
  Txn check(db->tc());
  std::string value;
  ASSERT_TRUE(check.Read(2, "k7", &value).ok());
  EXPECT_EQ(value, "dc0");
  ASSERT_TRUE(check.Read(3, "k7", &value).ok());
  EXPECT_EQ(value, "dc1");
  check.Commit();
}

/// Backpressure (§4.2.1): a pipeline cannot queue unboundedly. With a
/// small per-(txn, DC) window and a slow channel, submits block at the
/// cap, drain, and every op still commits exactly once.
TEST(BackpressureTest, SubmitBlocksAtWindowThenDrains) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.min_delay_us = 300;
  options.channel.request_channel.max_delay_us = 800;
  options.channel.reply_channel.min_delay_us = 300;
  options.channel.reply_channel.max_delay_us = 800;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 40;
  options.tc.max_outstanding_ops = 4;
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  Txn txn(db->tc());
  for (int i = 0; i < 32; ++i) {
    OpHandle h = txn.InsertAsync(kTable, "k" + std::to_string(i), "v");
    ASSERT_TRUE(h.submitted()) << i;
  }
  ASSERT_TRUE(txn.Flush().ok());
  ASSERT_TRUE(txn.Commit().ok());
  // 32 ops through a window of 4 over a slow wire: the gate engaged.
  EXPECT_GT(db->tc()->stats().backpressure_waits.load(), 0u);
  Txn check(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(check.Scan(kTable, "", "", 0, &rows).ok());
  EXPECT_EQ(rows.size(), 32u);
  check.Commit();
}

/// A window that can never drain (the DC is down) turns Submit* into
/// Busy after the op timeout instead of queueing forever.
TEST(BackpressureTest, FullWindowAgainstDeadDcReturnsBusy) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 20;
  options.tc.op_timeout_ms = 300;
  options.tc.max_outstanding_ops = 3;
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  db->CrashDc(0);
  TransactionComponent* tc = db->tc();
  TxnId txn = *tc->Begin();
  std::vector<OpHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(
        tc->SubmitUpdate(txn, kTable, "k" + std::to_string(i), "v"));
    ASSERT_TRUE(handles.back().submitted()) << i;
  }
  OpHandle overflow = tc->SubmitUpdate(txn, kTable, "k-over", "v");
  EXPECT_FALSE(overflow.submitted());
  EXPECT_TRUE(tc->Await(&overflow).IsBusy());
  EXPECT_GT(tc->stats().backpressure_waits.load(), 0u);
  tc->Abort(txn);
  ASSERT_TRUE(db->RecoverDc(0).ok());
}

/// max_outstanding_ops = 0 preserves the unbounded pre-cap pipeline.
TEST(BackpressureTest, ZeroCapMeansUnbounded) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.max_outstanding_ops = 0;
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  Txn txn(db->tc());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(txn.InsertAsync(kTable, "k" + std::to_string(i), "v")
                    .submitted());
  }
  ASSERT_TRUE(txn.Flush().ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(db->tc()->stats().backpressure_waits.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, AsyncApiTest,
                         ::testing::Values(TransportKind::kDirect,
                                           TransportKind::kChannel),
                         [](const ::testing::TestParamInfo<TransportKind>&
                                info) {
                           return info.param == TransportKind::kDirect
                                      ? "Direct"
                                      : "Channel";
                         });

TEST(UnbundledDbBoundsTest, AccessorsRejectBadIndices) {
  UnbundledDbOptions options;
  options.num_dcs = 2;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  EXPECT_NE(db->dc(0), nullptr);
  EXPECT_NE(db->dc(1), nullptr);
  EXPECT_EQ(db->dc(2), nullptr);
  EXPECT_EQ(db->dc(-1), nullptr);
  EXPECT_NE(db->store(1), nullptr);
  EXPECT_EQ(db->store(2), nullptr);
  EXPECT_EQ(db->store(-1), nullptr);
  EXPECT_EQ(db->channel(0), nullptr);  // direct transport: no channels
  EXPECT_TRUE(db->RecoverDc(7).IsInvalidArgument());
  db->CrashDc(7);  // out of range: no-op, no crash
}

TEST(UnbundledDbBoundsTest, OpenRejectsZeroDcs) {
  UnbundledDbOptions options;
  options.num_dcs = 0;
  auto db = UnbundledDb::Open(options);
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(UnbundledDbBoundsTest, ChannelAccessorBounds) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  EXPECT_NE(db->channel(0), nullptr);
  EXPECT_EQ(db->channel(1), nullptr);
  EXPECT_EQ(db->channel(-1), nullptr);
}

}  // namespace
}  // namespace untx
