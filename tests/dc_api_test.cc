#include "dc/dc_api.h"

#include <gtest/gtest.h>

#include "dc/record_format.h"

namespace untx {
namespace {

TEST(DcApiTest, OperationRequestRoundTrip) {
  OperationRequest req;
  req.tc_id = 3;
  req.lsn = 123456;
  req.op = OpType::kUpdate;
  req.table_id = 42;
  req.key = "user:0001";
  req.value = "payload-bytes";
  req.read_flavor = ReadFlavor::kReadCommitted;
  req.limit = 17;
  req.end_key = "user:9999";
  req.versioned = true;
  req.recovery_resend = true;

  std::string buf;
  req.EncodeTo(&buf);
  Slice in(buf);
  OperationRequest out;
  ASSERT_TRUE(OperationRequest::DecodeFrom(&in, &out));
  EXPECT_EQ(out.tc_id, req.tc_id);
  EXPECT_EQ(out.lsn, req.lsn);
  EXPECT_EQ(out.op, req.op);
  EXPECT_EQ(out.table_id, req.table_id);
  EXPECT_EQ(out.key, req.key);
  EXPECT_EQ(out.value, req.value);
  EXPECT_EQ(out.read_flavor, req.read_flavor);
  EXPECT_EQ(out.limit, req.limit);
  EXPECT_EQ(out.end_key, req.end_key);
  EXPECT_EQ(out.versioned, req.versioned);
  EXPECT_EQ(out.recovery_resend, req.recovery_resend);
  EXPECT_TRUE(in.empty());
}

TEST(DcApiTest, OperationReplyRoundTrip) {
  OperationReply reply;
  reply.tc_id = 2;
  reply.lsn = 99;
  reply.status = Status::NotFound("gone");
  reply.value = "before-image";
  reply.has_before = true;
  reply.was_duplicate = true;
  reply.keys = {"a", "b", "c"};
  reply.values = {"1", "2"};

  std::string buf;
  reply.EncodeTo(&buf);
  Slice in(buf);
  OperationReply out;
  ASSERT_TRUE(OperationReply::DecodeFrom(&in, &out));
  EXPECT_EQ(out.tc_id, reply.tc_id);
  EXPECT_EQ(out.lsn, reply.lsn);
  EXPECT_TRUE(out.status.IsNotFound());
  EXPECT_EQ(out.status.message(), "gone");
  EXPECT_EQ(out.value, reply.value);
  EXPECT_TRUE(out.has_before);
  EXPECT_TRUE(out.was_duplicate);
  EXPECT_EQ(out.keys, reply.keys);
  EXPECT_EQ(out.values, reply.values);
}

TEST(DcApiTest, ControlRoundTrip) {
  ControlRequest req;
  req.type = ControlType::kCheckpoint;
  req.tc_id = 5;
  req.lsn = 777;
  req.seq = 31;
  std::string buf;
  req.EncodeTo(&buf);
  Slice in(buf);
  ControlRequest out;
  ASSERT_TRUE(ControlRequest::DecodeFrom(&in, &out));
  EXPECT_EQ(out.type, ControlType::kCheckpoint);
  EXPECT_EQ(out.tc_id, 5);
  EXPECT_EQ(out.lsn, 777u);
  EXPECT_EQ(out.seq, 31u);

  ControlReply reply;
  reply.type = ControlType::kRestartBegin;
  reply.tc_id = 5;
  reply.seq = 31;
  reply.status = Status::OK();
  reply.escalate_tcs = {2, 9};
  buf.clear();
  reply.EncodeTo(&buf);
  Slice in2(buf);
  ControlReply rout;
  ASSERT_TRUE(ControlReply::DecodeFrom(&in2, &rout));
  EXPECT_EQ(rout.type, ControlType::kRestartBegin);
  EXPECT_TRUE(rout.status.ok());
  ASSERT_EQ(rout.escalate_tcs.size(), 2u);
  EXPECT_EQ(rout.escalate_tcs[0], 2);
  EXPECT_EQ(rout.escalate_tcs[1], 9);
}

TEST(DcApiTest, EnvelopeRoundTrip) {
  std::string wire = WrapMessage(MessageKind::kOperationReply, "body");
  MessageKind kind;
  Slice body;
  ASSERT_TRUE(UnwrapMessage(wire, &kind, &body));
  EXPECT_EQ(kind, MessageKind::kOperationReply);
  EXPECT_EQ(body, Slice("body"));
  EXPECT_FALSE(UnwrapMessage("", &kind, &body));
}

TEST(DcApiTest, DecodeRejectsTruncation) {
  OperationRequest req;
  req.tc_id = 1;
  req.lsn = 5;
  req.op = OpType::kInsert;
  req.table_id = 1;
  req.key = "k";
  req.value = "v";
  std::string buf;
  req.EncodeTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    OperationRequest out;
    EXPECT_FALSE(OperationRequest::DecodeFrom(&in, &out)) << "cut=" << cut;
  }
}

TEST(RecordFormatTest, LeafRecordRoundTrip) {
  LeafRecord rec;
  rec.key = "movie:42:user:7";
  rec.last_writer_tc = 3;
  rec.flags = LeafRecord::kHasBefore;
  rec.value = "five stars";
  rec.before = "four stars";
  LeafRecord out;
  ASSERT_TRUE(LeafRecord::Decode(rec.Encode(), &out));
  EXPECT_EQ(out.key, rec.key);
  EXPECT_EQ(out.last_writer_tc, 3);
  EXPECT_TRUE(out.has_before());
  EXPECT_EQ(out.value, rec.value);
  EXPECT_EQ(out.before, rec.before);
}

TEST(RecordFormatTest, PlainRecordHasNoBefore) {
  LeafRecord rec;
  rec.key = "k";
  rec.value = "v";
  LeafRecord out;
  ASSERT_TRUE(LeafRecord::Decode(rec.Encode(), &out));
  EXPECT_FALSE(out.has_before());
  EXPECT_TRUE(out.before.empty());
}

TEST(RecordFormatTest, TombstoneFlags) {
  LeafRecord rec;
  rec.key = "k";
  rec.flags = LeafRecord::kHasBefore | LeafRecord::kCurrentIsTombstone;
  rec.before = "committed";
  LeafRecord out;
  ASSERT_TRUE(LeafRecord::Decode(rec.Encode(), &out));
  EXPECT_TRUE(out.is_tombstone());
  EXPECT_TRUE(out.has_before());
  EXPECT_EQ(out.before, "committed");
}

TEST(RecordFormatTest, DecodeKeyOnly) {
  LeafRecord rec;
  rec.key = "just-the-key";
  rec.value = std::string(500, 'v');
  std::string enc = rec.Encode();
  Slice key;
  ASSERT_TRUE(LeafRecord::DecodeKey(enc, &key));
  EXPECT_EQ(key, Slice("just-the-key"));
}

TEST(RecordFormatTest, InternalEntryRoundTrip) {
  InternalEntry e{"separator-key", 4711};
  InternalEntry out;
  ASSERT_TRUE(InternalEntry::Decode(e.Encode(), &out));
  EXPECT_EQ(out.separator, "separator-key");
  EXPECT_EQ(out.child, 4711u);
}

}  // namespace
}  // namespace untx
