#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace untx {
namespace crc32c {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C test vector: "123456789" -> 0xe3069283.
  const char* digits = "123456789";
  EXPECT_EQ(Value(digits, 9), 0xe3069283u);
  // All-zero 32-byte buffer -> 0x8a9136aa.
  char zeros[32] = {0};
  EXPECT_EQ(Value(zeros, 32), 0x8a9136aau);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "hello world, this is a page image";
  const uint32_t whole = Value(data.data(), data.size());
  const uint32_t part = Extend(Value(data.data(), 10), data.data() + 10,
                               data.size() - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Value("abc", 3), Value("abd", 3));
  EXPECT_NE(Value("abc", 3), Value("abc", 2));
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc);  // masking must move the value
  }
}

}  // namespace
}  // namespace crc32c
}  // namespace untx
