#include "dc/ab_lsn.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace untx {
namespace {

TEST(AbstractLsnTest, EmptyCoversNothing) {
  AbstractLsn ab;
  EXPECT_FALSE(ab.Covers(1));
  EXPECT_EQ(ab.MaxCovered(), 0u);
  EXPECT_TRUE(ab.Collapsed());
}

TEST(AbstractLsnTest, AddAndCover) {
  AbstractLsn ab;
  ab.Add(5);
  ab.Add(9);
  EXPECT_TRUE(ab.Covers(5));
  EXPECT_TRUE(ab.Covers(9));
  EXPECT_FALSE(ab.Covers(7));
  EXPECT_FALSE(ab.Covers(4));
  EXPECT_EQ(ab.MaxCovered(), 9u);
  EXPECT_FALSE(ab.Collapsed());
}

TEST(AbstractLsnTest, OutOfOrderAddIsTheWholePoint) {
  // §5.1: operation 9 reaches the page before operation 5.
  AbstractLsn ab;
  ab.Add(9);
  EXPECT_TRUE(ab.Covers(9));
  EXPECT_FALSE(ab.Covers(5)) << "the traditional pageLSN test would say "
                                "covered — the abLSN must not";
  ab.Add(5);
  EXPECT_TRUE(ab.Covers(5));
}

TEST(AbstractLsnTest, AdvancePrunesInSet) {
  AbstractLsn ab;
  ab.Add(3);
  ab.Add(7);
  ab.Add(12);
  ab.AdvanceTo(7);
  EXPECT_EQ(ab.lw(), 7u);
  EXPECT_EQ(ab.in_set_size(), 1u);  // only 12 remains
  EXPECT_TRUE(ab.Covers(3));
  EXPECT_TRUE(ab.Covers(5));  // below lw: covered by definition
  EXPECT_TRUE(ab.Covers(12));
  EXPECT_FALSE(ab.Covers(13));
}

TEST(AbstractLsnTest, AdvanceNeverRegresses) {
  AbstractLsn ab;
  ab.AdvanceTo(10);
  ab.AdvanceTo(5);
  EXPECT_EQ(ab.lw(), 10u);
}

TEST(AbstractLsnTest, CollapseAfterAdvance) {
  AbstractLsn ab;
  ab.Add(4);
  ab.Add(6);
  EXPECT_FALSE(ab.Collapsed());
  ab.AdvanceTo(6);
  EXPECT_TRUE(ab.Collapsed());
  EXPECT_EQ(ab.MaxCovered(), 6u);
}

TEST(AbstractLsnTest, DuplicateAddIgnored) {
  AbstractLsn ab;
  ab.Add(5);
  ab.Add(5);
  EXPECT_EQ(ab.in_set_size(), 1u);
}

TEST(AbstractLsnTest, MergeIsUnionWithMaxLw) {
  AbstractLsn a, b;
  a.AdvanceTo(10);
  a.Add(15);
  b.AdvanceTo(12);
  b.Add(14);
  b.Add(20);
  a.MergeFrom(b);
  EXPECT_EQ(a.lw(), 12u);
  EXPECT_TRUE(a.Covers(11));  // below merged lw
  EXPECT_TRUE(a.Covers(14));
  EXPECT_TRUE(a.Covers(15));
  EXPECT_TRUE(a.Covers(20));
  EXPECT_FALSE(a.Covers(16));
}

TEST(AbstractLsnTest, EncodeDecodeRoundTrip) {
  AbstractLsn ab;
  ab.AdvanceTo(1000);
  ab.Add(1005);
  ab.Add(1100);
  ab.Add(123456789);
  std::string buf;
  ab.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), ab.EncodedSize());
  Slice in(buf);
  AbstractLsn out;
  ASSERT_TRUE(AbstractLsn::DecodeFrom(&in, &out));
  EXPECT_EQ(out, ab);
}

TEST(AbstractLsnTest, DecodeRejectsZeroDelta) {
  std::string buf;
  // lw=0, n=1, delta=0 is malformed (strictly ascending required).
  buf.push_back(0);
  buf.push_back(1);
  buf.push_back(0);
  Slice in(buf);
  AbstractLsn out;
  EXPECT_FALSE(AbstractLsn::DecodeFrom(&in, &out));
}

// Property: abLSN coverage must exactly match a model set under random
// interleavings of Add and AdvanceTo.
TEST(AbstractLsnPropertyTest, MatchesModelSet) {
  Random rng(77);
  for (int round = 0; round < 50; ++round) {
    AbstractLsn ab;
    std::set<Lsn> applied;
    Lsn lwm = 0;
    for (int step = 0; step < 300; ++step) {
      if (rng.Bernoulli(0.7)) {
        const Lsn lsn = 1 + rng.Uniform(500);
        ab.Add(lsn);
        applied.insert(lsn);
      } else {
        // The TC only advances the LWM to L when every op <= L has
        // completed; model that by adding all of them.
        const Lsn next = lwm + rng.Uniform(20);
        for (Lsn l = lwm + 1; l <= next; ++l) applied.insert(l);
        lwm = next;
        ab.AdvanceTo(lwm);
      }
      for (Lsn probe = 1; probe <= 500; probe += 7) {
        const bool model = applied.count(probe) > 0 || probe <= lwm;
        ASSERT_EQ(ab.Covers(probe), model)
            << "probe=" << probe << " lwm=" << lwm;
      }
    }
  }
}

TEST(PageAbLsnTest, PerTcIsolation) {
  PageAbLsn page;
  page.Add(1, 10);
  page.Add(2, 20);
  EXPECT_TRUE(page.Covers(1, 10));
  EXPECT_FALSE(page.Covers(2, 10));
  EXPECT_TRUE(page.Covers(2, 20));
  EXPECT_FALSE(page.Covers(1, 20));
  EXPECT_EQ(page.TcCount(), 2u);
  EXPECT_EQ(page.MaxCoveredFor(1), 10u);
  EXPECT_EQ(page.MaxCoveredFor(2), 20u);
  EXPECT_EQ(page.MaxCoveredAll(), 20u);
}

TEST(PageAbLsnTest, SingleTcPageHasOneEntry) {
  // §6.1.1: "pages with data from only a single TC continue to have only
  // one abLSN."
  PageAbLsn page;
  page.Add(3, 100);
  page.Add(3, 200);
  EXPECT_EQ(page.TcCount(), 1u);
}

TEST(PageAbLsnTest, AdvancePerTc) {
  PageAbLsn page;
  page.Add(1, 10);
  page.Add(1, 30);
  page.Add(2, 20);
  page.AdvanceTo(1, 30);
  EXPECT_TRUE(page.CollapsedAll() == false);  // tc 2 still has {20}
  page.AdvanceTo(2, 20);
  EXPECT_TRUE(page.CollapsedAll());
}

TEST(PageAbLsnTest, EraseAndSet) {
  PageAbLsn page;
  page.Add(1, 5);
  page.Add(2, 6);
  page.Erase(1);
  EXPECT_FALSE(page.HasTc(1));
  EXPECT_TRUE(page.HasTc(2));
  AbstractLsn ab;
  ab.AdvanceTo(99);
  page.Set(1, ab);
  EXPECT_TRUE(page.Covers(1, 50));
}

TEST(PageAbLsnTest, MergeAcrossTcs) {
  PageAbLsn a, b;
  a.Add(1, 10);
  b.Add(1, 12);
  b.Add(2, 7);
  a.MergeFrom(b);
  EXPECT_TRUE(a.Covers(1, 10));
  EXPECT_TRUE(a.Covers(1, 12));
  EXPECT_TRUE(a.Covers(2, 7));
}

TEST(PageAbLsnTest, EncodeDecodeRoundTrip) {
  PageAbLsn page;
  page.Add(1, 10);
  page.Add(1, 99);
  page.Add(7, 20);
  page.AdvanceTo(1, 10);
  std::string buf;
  page.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), page.EncodedSize());
  Slice in(buf);
  PageAbLsn out;
  ASSERT_TRUE(PageAbLsn::DecodeFrom(&in, &out));
  EXPECT_EQ(out, page);
}

TEST(PageAbLsnTest, TotalInSetSize) {
  PageAbLsn page;
  page.Add(1, 10);
  page.Add(1, 11);
  page.Add(2, 12);
  EXPECT_EQ(page.TotalInSetSize(), 3u);
}

}  // namespace
}  // namespace untx
