// End-to-end tests of the unbundled kernel: TC + DC over both transports.
#include "kernel/unbundled_db.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/random.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

UnbundledDbOptions SmallPageOptions() {
  UnbundledDbOptions options;
  options.store.page_size = 1024;
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 20;
  return options;
}

class UnbundledDbTest : public ::testing::Test {
 protected:
  void Open(UnbundledDbOptions options) {
    auto db = UnbundledDb::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).ValueOrDie();
    ASSERT_TRUE(db_->CreateTable(kTable).ok());
  }

  std::unique_ptr<UnbundledDb> db_;
};

TEST_F(UnbundledDbTest, CommitMakesWritesVisible) {
  Open(SmallPageOptions());
  Txn txn(db_->tc());
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txn.Insert(kTable, "a", "1").ok());
  ASSERT_TRUE(txn.Insert(kTable, "b", "2").ok());
  ASSERT_TRUE(txn.Commit().ok());

  Txn reader(db_->tc());
  std::string value;
  ASSERT_TRUE(reader.Read(kTable, "a", &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(reader.Read(kTable, "b", &value).ok());
  EXPECT_EQ(value, "2");
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(UnbundledDbTest, AbortRollsBackAllWrites) {
  Open(SmallPageOptions());
  {
    Txn setup(db_->tc());
    ASSERT_TRUE(setup.Insert(kTable, "keep", "original").ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  {
    Txn txn(db_->tc());
    ASSERT_TRUE(txn.Insert(kTable, "new", "x").ok());
    ASSERT_TRUE(txn.Update(kTable, "keep", "modified").ok());
    ASSERT_TRUE(txn.Delete(kTable, "keep").ok() == false ||
                true);  // delete after update in same txn
    ASSERT_TRUE(txn.Abort().ok());
  }
  Txn check(db_->tc());
  std::string value;
  EXPECT_TRUE(check.Read(kTable, "new", &value).IsNotFound());
  ASSERT_TRUE(check.Read(kTable, "keep", &value).ok());
  EXPECT_EQ(value, "original") << "inverse operations must restore state";
  check.Commit();
}

TEST_F(UnbundledDbTest, AbortRestoresDeletes) {
  Open(SmallPageOptions());
  {
    Txn setup(db_->tc());
    ASSERT_TRUE(setup.Insert(kTable, "victim", "v").ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  {
    Txn txn(db_->tc());
    ASSERT_TRUE(txn.Delete(kTable, "victim").ok());
    ASSERT_TRUE(txn.Abort().ok());
  }
  Txn check(db_->tc());
  std::string value;
  ASSERT_TRUE(check.Read(kTable, "victim", &value).ok());
  EXPECT_EQ(value, "v");
  check.Commit();
}

TEST_F(UnbundledDbTest, WriteConflictBlocksUntilCommit) {
  Open(SmallPageOptions());
  {
    Txn setup(db_->tc());
    ASSERT_TRUE(setup.Insert(kTable, "k", "v0").ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  StatusOr<TxnId> t1 = db_->Begin();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(db_->tc()->Update(*t1, kTable, "k", "v1").ok());

  std::atomic<bool> t2_done{false};
  std::string t2_value;
  std::thread t2([&] {
    Txn txn(db_->tc());
    EXPECT_TRUE(txn.Read(kTable, "k", &t2_value).ok());
    EXPECT_TRUE(txn.Commit().ok());
    t2_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(t2_done.load()) << "reader must block on the writer's lock";
  ASSERT_TRUE(db_->Commit(*t1).ok());
  t2.join();
  EXPECT_EQ(t2_value, "v1") << "reader sees the committed value";
}

TEST_F(UnbundledDbTest, SerializableScanBlocksPhantomInsert) {
  Open(SmallPageOptions());
  {
    Txn setup(db_->tc());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(setup.Insert(kTable, Key(i * 10), "v").ok());
    }
    ASSERT_TRUE(setup.Commit().ok());
  }
  StatusOr<TxnId> scanner = db_->Begin();
  ASSERT_TRUE(scanner.ok());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db_->tc()->Scan(*scanner, kTable, Key(0), Key(100), 0, &rows)
                  .ok());
  const size_t first_count = rows.size();

  std::atomic<bool> inserted{false};
  std::thread inserter([&] {
    Txn txn(db_->tc());
    // Insert into the scanned range: must block on the scan's locks.
    if (txn.Insert(kTable, Key(55), "phantom").ok() && txn.Commit().ok()) {
      inserted.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(inserted.load()) << "phantom insert must wait for the scan";
  // Repeat the scan inside the same txn: same result (serializable).
  std::vector<std::pair<std::string, std::string>> rows2;
  ASSERT_TRUE(db_->tc()->Scan(*scanner, kTable, Key(0), Key(100), 0, &rows2)
                  .ok());
  EXPECT_EQ(rows2.size(), first_count);
  ASSERT_TRUE(db_->Commit(*scanner).ok());
  inserter.join();
  EXPECT_TRUE(inserted.load());
}

TEST_F(UnbundledDbTest, ScanReturnsCommittedWindow) {
  Open(SmallPageOptions());
  {
    Txn setup(db_->tc());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(setup.Insert(kTable, Key(i), std::to_string(i)).ok());
    }
    ASSERT_TRUE(setup.Commit().ok());
  }
  Txn txn(db_->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(txn.Scan(kTable, Key(50), Key(60), 0, &rows).ok());
  ASSERT_EQ(rows.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rows[i].first, Key(50 + i));
    EXPECT_EQ(rows[i].second, std::to_string(50 + i));
  }
  txn.Commit();
}

TEST_F(UnbundledDbTest, PartitionProtocolScans) {
  UnbundledDbOptions options = SmallPageOptions();
  options.tc.range_protocol = RangeLockProtocol::kPartition;
  for (int i = 1; i < 16; ++i) {
    options.tc.partitions.boundaries.push_back(Key(i * 100));
  }
  Open(options);
  {
    Txn setup(db_->tc());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(setup.Insert(kTable, Key(i), "v").ok());
    }
    ASSERT_TRUE(setup.Commit().ok());
  }
  Txn txn(db_->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(txn.Scan(kTable, Key(100), Key(150), 0, &rows).ok());
  EXPECT_EQ(rows.size(), 50u);
  txn.Commit();
  // Far fewer lock acquisitions than keys touched.
  EXPECT_LT(db_->tc()->lock_stats().acquisitions, 20u);
}

TEST_F(UnbundledDbTest, DeadlockVictimCanRetry) {
  Open(SmallPageOptions());
  {
    Txn setup(db_->tc());
    ASSERT_TRUE(setup.Insert(kTable, "a", "1").ok());
    ASSERT_TRUE(setup.Insert(kTable, "b", "2").ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  std::atomic<int> committed{0};
  auto worker = [&](const std::string& first, const std::string& second) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      Txn txn(db_->tc());
      if (!txn.Update(kTable, first, "x").ok()) continue;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (!txn.Update(kTable, second, "y").ok()) {
        txn.Abort();
        continue;
      }
      if (txn.Commit().ok()) {
        committed.fetch_add(1);
        return;
      }
    }
  };
  std::thread t1(worker, "a", "b");
  std::thread t2(worker, "b", "a");
  t1.join();
  t2.join();
  EXPECT_EQ(committed.load(), 2) << "both eventually commit after retry";
}

TEST_F(UnbundledDbTest, ChannelTransportWithLossAndReorder) {
  UnbundledDbOptions options = SmallPageOptions();
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.drop_prob = 0.05;
  options.channel.request_channel.dup_prob = 0.05;
  options.channel.request_channel.max_delay_us = 500;
  options.channel.reply_channel.drop_prob = 0.05;
  options.channel.reply_channel.dup_prob = 0.05;
  options.channel.reply_channel.max_delay_us = 500;
  options.tc.resend_interval_ms = 10;
  Open(options);

  // Exactly-once despite loss, duplication and reordering (§4.2).
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    Txn txn(db_->tc());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), std::to_string(i)).ok()) << i;
    ASSERT_TRUE(txn.Commit().ok()) << i;
  }
  Txn check(db_->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(check.Scan(kTable, "", "", 0, &rows).ok());
  ASSERT_EQ(rows.size(), static_cast<size_t>(n))
      << "no lost and no doubled effects";
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(rows[i].second, std::to_string(i));
  }
  check.Commit();
  EXPECT_GT(db_->tc()->stats().resends.load(), 0u)
      << "the lossy channel must have forced resends";
}

TEST_F(UnbundledDbTest, ConcurrentTransfersPreserveInvariant) {
  // Classic bank transfer: total balance is invariant under concurrent
  // serializable transfers.
  Open(SmallPageOptions());
  const int kAccounts = 20;
  const int kInitial = 100;
  {
    Txn setup(db_->tc());
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(setup.Insert(kTable, Key(i), std::to_string(kInitial)).ok());
    }
    ASSERT_TRUE(setup.Commit().ok());
  }
  std::atomic<int> transfers{0};
  auto worker = [&](uint64_t seed) {
    Random rng(seed);
    for (int i = 0; i < 100; ++i) {
      const int from = static_cast<int>(rng.Uniform(kAccounts));
      int to = static_cast<int>(rng.Uniform(kAccounts));
      if (to == from) to = (to + 1) % kAccounts;
      // Lock in canonical order to avoid deadlock storms.
      const int lo = std::min(from, to), hi = std::max(from, to);
      Txn txn(db_->tc());
      std::string lo_v, hi_v;
      if (!txn.Read(kTable, Key(lo), &lo_v).ok()) continue;
      if (!txn.Read(kTable, Key(hi), &hi_v).ok()) continue;
      int from_v = std::stoi(from == lo ? lo_v : hi_v);
      int to_v = std::stoi(from == lo ? hi_v : lo_v);
      if (from_v < 1) continue;
      from_v -= 1;
      to_v += 1;
      if (!txn.Update(kTable, Key(from), std::to_string(from_v)).ok()) {
        continue;
      }
      if (!txn.Update(kTable, Key(to), std::to_string(to_v)).ok()) continue;
      if (txn.Commit().ok()) transfers.fetch_add(1);
    }
  };
  std::thread t1(worker, 1), t2(worker, 2), t3(worker, 3);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_GT(transfers.load(), 0);

  Txn check(db_->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(check.Scan(kTable, "", "", 0, &rows).ok());
  int total = 0;
  for (const auto& [k, v] : rows) total += std::stoi(v);
  EXPECT_EQ(total, kAccounts * kInitial) << "money must be conserved";
  check.Commit();
}

TEST_F(UnbundledDbTest, MultipleDcsRoutedByTable) {
  UnbundledDbOptions options = SmallPageOptions();
  options.num_dcs = 3;
  Open(options);  // kTable = 1 -> dc 1
  ASSERT_TRUE(db_->CreateTable(2).ok());  // -> dc 2
  ASSERT_TRUE(db_->CreateTable(3).ok());  // -> dc 0

  Txn txn(db_->tc());
  ASSERT_TRUE(txn.Insert(kTable, "a", "1").ok());
  ASSERT_TRUE(txn.Insert(2, "b", "2").ok());
  ASSERT_TRUE(txn.Insert(3, "c", "3").ok());
  ASSERT_TRUE(txn.Commit().ok());

  Txn check(db_->tc());
  std::string v;
  ASSERT_TRUE(check.Read(kTable, "a", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(check.Read(2, "b", &v).ok());
  EXPECT_EQ(v, "2");
  ASSERT_TRUE(check.Read(3, "c", &v).ok());
  EXPECT_EQ(v, "3");
  check.Commit();
  // Each DC holds pages (catalog + table root at least).
  EXPECT_GT(db_->dc(0)->pool()->FrameCount(), 0u);
  EXPECT_GT(db_->dc(1)->pool()->FrameCount(), 0u);
  EXPECT_GT(db_->dc(2)->pool()->FrameCount(), 0u);
}

TEST_F(UnbundledDbTest, GroupCommitStillDurable) {
  UnbundledDbOptions options = SmallPageOptions();
  options.tc.group_commit = true;
  options.tc.group_commit_interval_us = 1000;
  Open(options);
  Txn txn(db_->tc());
  ASSERT_TRUE(txn.Insert(kTable, "k", "v").ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_GE(db_->tc()->stable_lsn(), 2u)
      << "commit must not return before the log is stable";
}

}  // namespace
}  // namespace untx
