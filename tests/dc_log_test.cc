// DcLog unit tests: batch atomicity, causality floors, deferred frees,
// truncation at batch boundaries, pending-batch discard.
#include "dc/dc_log.h"

#include <gtest/gtest.h>

namespace untx {
namespace {

DcLogRecord Image(PageId pid, TcId tc, Lsn max_op) {
  DcLogRecord rec;
  rec.type = DcLogRecordType::kPageImage;
  rec.pid = pid;
  rec.body = "page-bytes";
  if (max_op != 0) rec.ablsn.Add(tc, max_op);
  return rec;
}

TEST(DcLogTest, RecordRoundTrip) {
  DcLogRecord rec;
  rec.type = DcLogRecordType::kSplitOld;
  rec.dlsn = 42;
  rec.pid = 7;
  rec.split_key = "middle";
  rec.aux_pid = 8;
  rec.body = "bytes";
  rec.ablsn.Add(3, 100);
  std::string buf;
  rec.EncodeTo(&buf);
  Slice in(buf);
  DcLogRecord out;
  ASSERT_TRUE(DcLogRecord::DecodeFrom(&in, &out));
  EXPECT_EQ(out.type, DcLogRecordType::kSplitOld);
  EXPECT_EQ(out.dlsn, 42u);
  EXPECT_EQ(out.pid, 7u);
  EXPECT_EQ(out.split_key, "middle");
  EXPECT_EQ(out.aux_pid, 8u);
  EXPECT_EQ(out.body, "bytes");
  EXPECT_TRUE(out.ablsn.Covers(3, 100));
}

TEST(DcLogTest, BatchAssignsMonotonicDlsns) {
  DcLog log;
  std::vector<DcLogRecord> recs{Image(1, 1, 0), Image(2, 1, 0)};
  log.AppendBatch(&recs, {});
  EXPECT_GT(recs[0].dlsn, 0u);
  EXPECT_GT(recs[1].dlsn, recs[0].dlsn);
}

TEST(DcLogTest, FloorGatesForcing) {
  DcLog log;
  std::vector<DcLogRecord> recs{Image(1, /*tc=*/1, /*max_op=*/50)};
  log.AppendBatch(&recs, {{1, 50}});
  // EOSL below the floor: must not force.
  log.ForceEligible({{1, 49}});
  EXPECT_FALSE(log.FullyForced());
  EXPECT_TRUE(log.ReadStableBatches().empty());
  // EOSL reaches the floor: forced.
  log.ForceEligible({{1, 50}});
  EXPECT_TRUE(log.FullyForced());
  ASSERT_EQ(log.ReadStableBatches().size(), 1u);
}

TEST(DcLogTest, BatchesForceStrictlyInOrder) {
  DcLog log;
  std::vector<DcLogRecord> first{Image(1, 1, 100)};
  log.AppendBatch(&first, {{1, 100}});
  std::vector<DcLogRecord> second{Image(2, 1, 0)};  // no floor at all
  log.AppendBatch(&second, {});
  // The second batch is eligible but must wait behind the first.
  log.ForceEligible({{1, 10}});
  EXPECT_TRUE(log.ReadStableBatches().empty());
  log.ForceEligible({{1, 100}});
  EXPECT_EQ(log.ReadStableBatches().size(), 2u);
}

TEST(DcLogTest, DeferredFreesReleasedAtForce) {
  DcLog log;
  std::vector<DcLogRecord> recs{Image(1, 1, 0)};
  log.AppendBatch(&recs, {}, {99});
  std::vector<PageId> freed;
  log.ForceEligible({}, &freed);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 99u);
  // Second force releases nothing more.
  freed.clear();
  log.ForceEligible({}, &freed);
  EXPECT_TRUE(freed.empty());
}

TEST(DcLogTest, CrashDropsPendingBatches) {
  DcLog log;
  std::vector<DcLogRecord> stable_batch{Image(1, 1, 0)};
  log.AppendBatch(&stable_batch, {});
  log.ForceEligible({});
  std::vector<DcLogRecord> volatile_batch{Image(2, 1, 0)};
  log.AppendBatch(&volatile_batch, {{1, 1000}});  // unforceable
  log.Crash();
  EXPECT_EQ(log.ReadStableBatches().size(), 1u);
  EXPECT_TRUE(log.FullyForced()) << "pending list cleared with the tail";
}

TEST(DcLogTest, DiscardPendingReturnsAffectedPages) {
  DcLog log;
  std::vector<DcLogRecord> recs{Image(5, 2, 500), Image(6, 2, 500)};
  log.AppendBatch(&recs, {{2, 500}});
  auto discarded = log.DiscardPending();
  ASSERT_EQ(discarded.size(), 1u);
  EXPECT_EQ(discarded[0].pids.size(), 2u);
  EXPECT_EQ(discarded[0].floor.at(2), 500u);
  EXPECT_TRUE(log.ReadStableBatches().empty());
}

TEST(DcLogTest, TruncateSnapsToBatchBoundary) {
  DcLog log;
  for (int b = 0; b < 3; ++b) {
    std::vector<DcLogRecord> recs{Image(static_cast<PageId>(10 + b), 1, 0)};
    log.AppendBatch(&recs, {});
  }
  log.ForceEligible({});
  ASSERT_EQ(log.ReadStableBatches().size(), 3u);
  // Each batch is 3 records (begin, image, commit): indices 0..8.
  // Ask to truncate into the middle of batch 2 (index 4 => dlsn 5):
  // truncation must snap DOWN to batch 2's start, keeping it whole.
  log.TruncateBelow(5);
  auto batches = log.ReadStableBatches();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].records[0].pid, 11u);
}

TEST(DcLogTest, StableDlsnEndTracksForcedRecords) {
  DcLog log;
  EXPECT_EQ(log.stable_dlsn_end(), 1u);
  std::vector<DcLogRecord> recs{Image(1, 1, 0)};
  log.AppendBatch(&recs, {});
  EXPECT_EQ(log.stable_dlsn_end(), 1u) << "not yet forced";
  log.ForceEligible({});
  EXPECT_EQ(log.stable_dlsn_end(), 4u);  // begin+image+commit = dlsn 1..3
}

TEST(DcLogTest, MultiTcFloors) {
  DcLog log;
  DcLogRecord rec = Image(1, 1, 10);
  rec.ablsn.Add(2, 20);
  std::vector<DcLogRecord> recs{rec};
  log.AppendBatch(&recs, {{1, 10}, {2, 20}});
  log.ForceEligible({{1, 10}});  // tc 2 floor unmet
  EXPECT_FALSE(log.FullyForced());
  log.ForceEligible({{1, 10}, {2, 19}});
  EXPECT_FALSE(log.FullyForced());
  log.ForceEligible({{1, 10}, {2, 20}});
  EXPECT_TRUE(log.FullyForced());
}

}  // namespace
}  // namespace untx
