// Frame codec robustness: roundtrips, truncation, garbage and arbitrary
// partial-read splits. A malformed frame must fail the length or
// checksum check — never crash or mis-frame the stream.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "dc/dc_api.h"

namespace untx {
namespace {

std::string Payload(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng() & 0xff));
  }
  return out;
}

TEST(FrameCodec, RoundTripsKindsAndBodies) {
  for (uint8_t kind : {0, 1, 9, 127, 255}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{4096}}) {
      const std::string body = Payload(n, kind + n);
      const std::string wire = EncodeFrame(kind, body);
      ASSERT_EQ(wire.size(), kFrameHeaderSize + 1 + n);
      uint8_t got_kind = 0;
      Slice got_body;
      size_t consumed = 0;
      ASSERT_EQ(DecodeFrame(wire.data(), wire.size(), &got_kind, &got_body,
                            &consumed),
                FrameDecode::kOk);
      EXPECT_EQ(got_kind, kind);
      EXPECT_EQ(got_body.ToString(), body);
      EXPECT_EQ(consumed, wire.size());
    }
  }
}

TEST(FrameCodec, TruncatedFrameNeedsMore) {
  const std::string wire = EncodeFrame(3, Payload(100, 1));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    uint8_t kind = 0;
    Slice body;
    size_t consumed = 1;
    EXPECT_EQ(DecodeFrame(wire.data(), cut, &kind, &body, &consumed),
              FrameDecode::kNeedMore);
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(FrameCodec, EveryFlippedByteIsRejectedNotMisread) {
  const std::string body = Payload(64, 2);
  const std::string wire = EncodeFrame(8, body);
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x41);
    uint8_t kind = 0;
    Slice got;
    size_t consumed = 0;
    const FrameDecode d =
        DecodeFrame(bad.data(), bad.size(), &kind, &got, &consumed);
    // A corrupted length prefix may claim a longer frame (kNeedMore) or
    // an invalid one (kCorrupt); any fully-present decode must fail the
    // CRC. It must never return kOk with altered content.
    if (d == FrameDecode::kOk) {
      EXPECT_EQ(kind, 8);
      EXPECT_EQ(got.ToString(), body);  // only a no-op flip may pass
      ADD_FAILURE() << "flip at byte " << i << " decoded successfully";
    }
  }
}

TEST(FrameCodec, ZeroAndOversizedLengthsAreCorrupt) {
  std::string wire = EncodeFrame(1, "abc");
  std::string zero = wire;
  zero[0] = zero[1] = zero[2] = zero[3] = 0;  // length = 0
  uint8_t kind = 0;
  Slice body;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(zero.data(), zero.size(), &kind, &body, &consumed),
            FrameDecode::kCorrupt);
  std::string huge = wire;
  huge[0] = huge[1] = huge[2] = huge[3] = static_cast<char>(0xff);
  EXPECT_EQ(DecodeFrame(huge.data(), huge.size(), &kind, &body, &consumed),
            FrameDecode::kCorrupt);
}

TEST(FrameCodec, GarbageStreamPoisonsReaderWithoutCrashing) {
  FrameReader reader;
  const std::string garbage = Payload(512, 3);
  reader.Feed(garbage.data(), garbage.size());
  uint8_t kind = 0;
  std::string body;
  // Whatever the random length prefix claims, the reader must end up
  // either starved or poisoned — never delivering a frame.
  for (int i = 0; i < 4; ++i) {
    const FrameDecode d = reader.Next(&kind, &body);
    ASSERT_NE(d, FrameDecode::kOk);
  }
}

TEST(FrameReaderTest, ReassemblesFramesAcrossArbitrarySplits) {
  // Several frames of varied size, fed one byte at a time, then in
  // random chunks: every frame must come out exactly once, in order.
  std::vector<std::pair<uint8_t, std::string>> frames;
  std::string stream;
  for (uint8_t k = 1; k <= 9; ++k) {
    frames.emplace_back(k, Payload(k * 37 % 200, k));
    AppendFrame(k, frames.back().second, &stream);
  }
  for (int pass = 0; pass < 2; ++pass) {
    FrameReader reader;
    std::mt19937 rng(pass + 7);
    size_t fed = 0, decoded = 0;
    while (decoded < frames.size()) {
      if (fed < stream.size()) {
        const size_t n =
            pass == 0 ? 1
                      : std::min<size_t>(1 + rng() % 13, stream.size() - fed);
        reader.Feed(stream.data() + fed, n);
        fed += n;
      }
      uint8_t kind = 0;
      std::string body;
      const FrameDecode d = reader.Next(&kind, &body);
      ASSERT_NE(d, FrameDecode::kCorrupt);
      if (d == FrameDecode::kOk) {
        ASSERT_LT(decoded, frames.size());
        EXPECT_EQ(kind, frames[decoded].first);
        EXPECT_EQ(body, frames[decoded].second);
        ++decoded;
      } else {
        ASSERT_LT(fed, stream.size()) << "starved with stream exhausted";
      }
    }
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(FrameReaderTest, CorruptMidStreamStaysPoisoned) {
  std::string stream;
  AppendFrame(1, "first", &stream);
  const size_t second_at = stream.size();
  AppendFrame(2, "second", &stream);
  stream[second_at + kFrameHeaderSize + 2] ^= 0x10;  // corrupt frame 2 body
  AppendFrame(3, "third", &stream);

  FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  uint8_t kind = 0;
  std::string body;
  ASSERT_EQ(reader.Next(&kind, &body), FrameDecode::kOk);
  EXPECT_EQ(kind, 1);
  EXPECT_EQ(body, "first");
  EXPECT_EQ(reader.Next(&kind, &body), FrameDecode::kCorrupt);
  // Frame boundaries are unrecoverable after corruption: still corrupt,
  // even though a valid third frame follows.
  EXPECT_EQ(reader.Next(&kind, &body), FrameDecode::kCorrupt);
  EXPECT_TRUE(reader.corrupt());
}

TEST(FrameCodec, WrapMessageIsExactlyOneFrame) {
  // The sim-channel envelope and the TCP stream must be byte-identical:
  // WrapMessage output parses as one frame of the shared codec.
  const std::string wire = WrapMessage(MessageKind::kScanCredit, "credit");
  uint8_t kind = 0;
  Slice body;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(wire.data(), wire.size(), &kind, &body, &consumed),
            FrameDecode::kOk);
  EXPECT_EQ(kind, static_cast<uint8_t>(MessageKind::kScanCredit));
  EXPECT_EQ(body.ToString(), "credit");
  EXPECT_EQ(consumed, wire.size());

  MessageKind mk;
  Slice mbody;
  ASSERT_TRUE(UnwrapMessage(wire, &mk, &mbody));
  EXPECT_EQ(mk, MessageKind::kScanCredit);
  EXPECT_FALSE(UnwrapMessage("not a frame", &mk, &mbody));
}

}  // namespace
}  // namespace untx
