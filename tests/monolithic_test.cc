#include "monolithic/engine.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace untx {
namespace monolithic {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

class MonolithicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StableStoreOptions store_options;
    store_options.page_size = 1024;
    store_options.trailer_capacity = 128;
    store_ = std::make_unique<StableStore>(store_options);
    engine_ = std::make_unique<MonolithicEngine>(store_.get());
    ASSERT_TRUE(engine_->Initialize().ok());
    ASSERT_TRUE(engine_->CreateTable(kTable).ok());
  }

  Status Put(const std::string& key, const std::string& value) {
    StatusOr<TxnId> txn = engine_->Begin();
    if (!txn.ok()) return txn.status();
    Status s = engine_->Insert(*txn, kTable, key, value);
    if (!s.ok()) {
      engine_->Abort(*txn);
      return s;
    }
    return engine_->Commit(*txn);
  }

  StatusOr<std::string> Get(const std::string& key) {
    StatusOr<TxnId> txn = engine_->Begin();
    if (!txn.ok()) return txn.status();
    std::string value;
    Status s = engine_->Read(*txn, kTable, key, &value);
    engine_->Commit(*txn);
    if (!s.ok()) return s;
    return value;
  }

  std::unique_ptr<StableStore> store_;
  std::unique_ptr<MonolithicEngine> engine_;
};

TEST_F(MonolithicTest, BasicCrud) {
  ASSERT_TRUE(Put("a", "1").ok());
  EXPECT_EQ(*Get("a"), "1");
  StatusOr<TxnId> txn = engine_->Begin();
  ASSERT_TRUE(engine_->Update(*txn, kTable, "a", "2").ok());
  ASSERT_TRUE(engine_->Commit(*txn).ok());
  EXPECT_EQ(*Get("a"), "2");
  txn = engine_->Begin();
  ASSERT_TRUE(engine_->Delete(*txn, kTable, "a").ok());
  ASSERT_TRUE(engine_->Commit(*txn).ok());
  EXPECT_TRUE(Get("a").status().IsNotFound());
}

TEST_F(MonolithicTest, AbortUndoes) {
  ASSERT_TRUE(Put("k", "original").ok());
  StatusOr<TxnId> txn = engine_->Begin();
  ASSERT_TRUE(engine_->Update(*txn, kTable, "k", "changed").ok());
  ASSERT_TRUE(engine_->Insert(*txn, kTable, "extra", "x").ok());
  ASSERT_TRUE(engine_->Abort(*txn).ok());
  EXPECT_EQ(*Get("k"), "original");
  EXPECT_TRUE(Get("extra").status().IsNotFound());
}

TEST_F(MonolithicTest, SplitsAndScans) {
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(Put(Key(i), "v" + std::to_string(i)).ok()) << i;
  }
  EXPECT_GT(engine_->stats().splits, 0u);
  StatusOr<TxnId> txn = engine_->Begin();
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(engine_->Scan(*txn, kTable, Key(100), Key(120), 0, &rows).ok());
  ASSERT_EQ(rows.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rows[i].first, Key(100 + i));
  }
  engine_->Commit(*txn);
}

TEST_F(MonolithicTest, CrashRecoveryCommittedSurvives) {
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(Put(Key(i), "d").ok()) << i;
  }
  engine_->Crash();
  ASSERT_TRUE(engine_->Recover().ok());
  for (int i = 0; i < n; ++i) {
    auto v = Get(Key(i));
    ASSERT_TRUE(v.ok()) << i << " " << v.status().ToString();
    ASSERT_EQ(*v, "d");
  }
}

TEST_F(MonolithicTest, CrashLosesUncommitted) {
  ASSERT_TRUE(Put("committed", "c").ok());
  StatusOr<TxnId> txn = engine_->Begin();
  ASSERT_TRUE(engine_->Insert(*txn, kTable, "uncommitted", "u").ok());
  // No commit: crash.
  engine_->Crash();
  ASSERT_TRUE(engine_->Recover().ok());
  EXPECT_EQ(*Get("committed"), "c");
  EXPECT_TRUE(Get("uncommitted").status().IsNotFound());
}

TEST_F(MonolithicTest, RecoveryAfterFlushAndMoreWrites) {
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(Put(Key(i), "v1").ok());
  ASSERT_TRUE(engine_->FlushAll().ok());
  for (int i = 100; i < 200; ++i) ASSERT_TRUE(Put(Key(i), "v2").ok());
  engine_->Crash();
  ASSERT_TRUE(engine_->Recover().ok());
  for (int i = 0; i < 100; ++i) ASSERT_EQ(*Get(Key(i)), "v1") << i;
  for (int i = 100; i < 200; ++i) ASSERT_EQ(*Get(Key(i)), "v2") << i;
}

TEST_F(MonolithicTest, RandomWorkloadMatchesModelThroughCrashes) {
  Random rng(99);
  std::map<std::string, std::string> model;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int step = 0; step < 150; ++step) {
      const std::string key = Key(static_cast<int>(rng.Uniform(80)));
      StatusOr<TxnId> txn = engine_->Begin();
      ASSERT_TRUE(txn.ok());
      if (model.count(key) == 0) {
        const std::string value = rng.Bytes(10);
        if (engine_->Insert(*txn, kTable, key, value).ok() &&
            engine_->Commit(*txn).ok()) {
          model[key] = value;
        } else {
          engine_->Abort(*txn);
        }
      } else if (rng.Bernoulli(0.4)) {
        if (engine_->Delete(*txn, kTable, key).ok() &&
            engine_->Commit(*txn).ok()) {
          model.erase(key);
        } else {
          engine_->Abort(*txn);
        }
      } else {
        const std::string value = rng.Bytes(10);
        if (engine_->Update(*txn, kTable, key, value).ok() &&
            engine_->Commit(*txn).ok()) {
          model[key] = value;
        } else {
          engine_->Abort(*txn);
        }
      }
    }
    engine_->Crash();
    ASSERT_TRUE(engine_->Recover().ok());
    for (const auto& [k, v] : model) {
      auto got = Get(k);
      ASSERT_TRUE(got.ok()) << "cycle " << cycle << " key " << k;
      ASSERT_EQ(*got, v) << "cycle " << cycle << " key " << k;
    }
  }
}

}  // namespace
}  // namespace monolithic
}  // namespace untx
