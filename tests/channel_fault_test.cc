// Interaction-contract property tests (§4.2): exactly-once execution
// over channels with swept fault rates, and the channel transport's
// behavior during component failures — for the 1-TC facade and for
// multi-TC channel clusters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "common/random.h"
#include "kernel/unbundled_db.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

// (drop ‰, dup ‰, max delay us)
class ChannelFaultTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  std::unique_ptr<UnbundledDb> Open(
      const std::function<void(UnbundledDbOptions*)>& tweak = nullptr) {
    const auto [drop, dup, delay] = GetParam();
    UnbundledDbOptions options;
    options.transport = TransportKind::kChannel;
    options.channel.request_channel.drop_prob = drop / 1000.0;
    options.channel.request_channel.dup_prob = dup / 1000.0;
    options.channel.request_channel.max_delay_us = delay;
    options.channel.request_channel.seed = 17 + drop + dup;
    options.channel.reply_channel.drop_prob = drop / 1000.0;
    options.channel.reply_channel.dup_prob = dup / 1000.0;
    options.channel.reply_channel.max_delay_us = delay;
    options.channel.reply_channel.seed = 29 + drop + dup;
    options.tc.resend_interval_ms = 5;
    options.tc.control_interval_ms = 5;
    if (tweak) tweak(&options);
    auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
    EXPECT_TRUE(db->CreateTable(kTable).ok());
    return db;
  }
};

TEST_P(ChannelFaultTest, ExactlyOnceInsertsAndDeletes) {
  auto db = Open();
  std::map<std::string, std::string> model;
  Random rng(std::get<0>(GetParam()) * 31 + 7);
  for (int i = 0; i < 80; ++i) {
    const std::string key = Key(static_cast<int>(rng.Uniform(50)));
    Txn txn(db->tc());
    ASSERT_TRUE(txn.ok());
    if (model.count(key) == 0) {
      ASSERT_TRUE(txn.Insert(kTable, key, "v").ok()) << i;
      ASSERT_TRUE(txn.Commit().ok()) << i;
      model[key] = "v";
    } else {
      ASSERT_TRUE(txn.Delete(kTable, key).ok()) << i;
      ASSERT_TRUE(txn.Commit().ok()) << i;
      model.erase(key);
    }
  }
  Txn check(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(check.Scan(kTable, "", "", 0, &rows).ok());
  check.Commit();
  ASSERT_EQ(rows.size(), model.size())
      << "dropped or doubled effects under faults";
  for (const auto& [k, v] : rows) {
    ASSERT_TRUE(model.count(k)) << k;
  }
}

TEST_P(ChannelFaultTest, CountersBalance) {
  auto db = Open();
  for (int i = 0; i < 40; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const auto [drop, dup, delay] = GetParam();
  if (drop > 0) {
    EXPECT_GT(db->tc()->stats().resends.load(), 0u)
        << "losses must trigger resends";
  }
  // Idempotence machinery absorbed every duplicate: the DC never
  // reported a conflicting-op violation.
  EXPECT_EQ(db->dc(0)->stats().conflicts_detected.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, ChannelFaultTest,
    ::testing::Values(std::make_tuple(0, 0, 0),
                      std::make_tuple(0, 0, 500),    // reorder only
                      std::make_tuple(20, 0, 200),   // 2% drop
                      std::make_tuple(0, 50, 200),   // 5% dup
                      std::make_tuple(50, 50, 500),  // 5% + 5% + jitter
                      std::make_tuple(120, 80, 800)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "drop" + std::to_string(std::get<0>(info.param)) + "dup" +
             std::to_string(std::get<1>(info.param)) + "delay" +
             std::to_string(std::get<2>(info.param));
    });

// Two TCs sharing one DC over independently lossy channels: each TC's
// resend/idempotence contract holds without cross-TC interference —
// every committed effect lands exactly once.
TEST(ChannelFaultClusterTest, TwoTcsExactlyOnceUnderFaults) {
  ClusterOptions options;
  options.num_dcs = 1;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.drop_prob = 0.03;
  options.channel.request_channel.dup_prob = 0.03;
  options.channel.request_channel.max_delay_us = 300;
  options.channel.request_channel.seed = 101;
  options.channel.reply_channel.drop_prob = 0.03;
  options.channel.reply_channel.dup_prob = 0.03;
  options.channel.reply_channel.max_delay_us = 300;
  options.channel.reply_channel.seed = 211;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.resend_interval_ms = 5;
    spec.options.control_interval_ms = 5;
    options.tcs.push_back(spec);
  }
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  ASSERT_TRUE(cluster->tc(0)->CreateTable(kTable).ok());
  for (int i = 0; i < 30; ++i) {
    for (int t = 0; t < 2; ++t) {
      TransactionComponent* tc = cluster->tc(t);
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok());
      const std::string key =
          std::string(t == 0 ? "a" : "b") + Key(i);
      ASSERT_TRUE(tc->Insert(*txn, kTable, key, "v").ok()) << key;
      ASSERT_TRUE(tc->Commit(*txn).ok()) << key;
    }
  }
  // Exactly-once: 60 distinct rows, no conflicting-op violations.
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(cluster->tc(0)->ScanShared(kTable, "", "", 0,
                                         ReadFlavor::kDirty, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 60u);
  EXPECT_EQ(cluster->dc(0)->stats().conflicts_detected.load(), 0u);
}

// Streamed scans under channel faults: chunk replies may be dropped,
// duplicated or reordered; the stream's resume/restart discipline must
// deliver every stable key exactly once.
TEST_P(ChannelFaultTest, StreamedScanExactlyOnceUnderFaults) {
  auto db = Open();
  constexpr int kRows = 120;
  for (int base = 0; base < kRows; base += 24) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.ok());
    for (int i = base; i < base + 24; ++i) {
      txn.InsertAsync(kTable, Key(i), "v" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  for (int round = 0; round < 4; ++round) {
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(db->tc()
                    ->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty,
                                 &rows)
                    .ok());
    ASSERT_EQ(rows.size(), static_cast<size_t>(kRows))
        << "lost or duplicated stream windows";
    for (int i = 0; i < kRows; ++i) {
      ASSERT_EQ(rows[i].first, Key(i)) << "round " << round;
      ASSERT_EQ(rows[i].second, "v" + std::to_string(i));
    }
  }
  EXPECT_GT(db->tc()->stats().scan_streams.load(), 0u);
}

// PR 4 sweep arm: a large scan squeezed through a TINY credit window (2
// chunks of 8 rows) under every drop/dup/reorder configuration. Credits
// ride the same lossy request channel as everything else — a lost
// kScanCredit must be recovered by the credit-resend-on-stall (or a full
// stream restart), never wedge the scan, and the rows must still be
// exactly-once, in order.
TEST_P(ChannelFaultTest, TinyCreditStreamedScanExactlyOnce) {
  auto db = Open([](UnbundledDbOptions* options) {
    options->tc.scan_stream_chunk = 8;
    options->tc.scan_credit_chunks = 2;
    options->tc.insert_phantom_protection = false;
  });
  constexpr int kRows = 160;  // 20 chunks against a 2-chunk window
  for (int base = 0; base < kRows; base += 32) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.ok());
    for (int i = base; i < base + 32; ++i) {
      txn.InsertAsync(kTable, Key(i), "v" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  for (int round = 0; round < 3; ++round) {
    // Shared scan and the fetch-ahead transactional fold, both credited.
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(db->tc()
                    ->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty,
                                 &rows)
                    .ok());
    ASSERT_EQ(rows.size(), static_cast<size_t>(kRows))
        << "credited stream lost or duplicated rows (round " << round
        << ")";
    for (int i = 0; i < kRows; ++i) ASSERT_EQ(rows[i].first, Key(i));

    Txn txn(db->tc());
    std::vector<std::pair<std::string, std::string>> txn_rows;
    ASSERT_TRUE(txn.Scan(kTable, "", "", 0, &txn_rows).ok());
    ASSERT_TRUE(txn.Commit().ok());
    ASSERT_EQ(txn_rows.size(), static_cast<size_t>(kRows));
    for (int i = 0; i < kRows; ++i) ASSERT_EQ(txn_rows[i].first, Key(i));
  }
  EXPECT_GT(db->tc()->stats().scan_credits_sent.load(), 0u);
}

// Deterministically heavy credit loss: 25% of REQUEST-channel messages
// (where every kScanCredit rides) vanish, replies are clean. The scan
// must complete via credit resends and stream restarts — a lost credit
// alone can never wedge the stream.
TEST(ChannelTransportTest, LostCreditsCannotWedgeTheStream) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.drop_prob = 0.25;
  options.channel.request_channel.seed = 4242;
  options.tc.resend_interval_ms = 5;
  options.tc.control_interval_ms = 5;
  options.tc.insert_phantom_protection = false;
  options.tc.scan_stream_chunk = 8;
  options.tc.scan_credit_chunks = 2;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  constexpr int kRows = 240;  // 30 chunks: plenty of credits to lose
  for (int base = 0; base < kRows; base += 24) {
    Txn txn(db->tc());
    for (int i = base; i < base + 24; ++i) {
      txn.InsertAsync(kTable, Key(i), "v" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(db->tc()
                    ->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty,
                                 &rows)
                    .ok());
    ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
    for (int i = 0; i < kRows; ++i) ASSERT_EQ(rows[i].first, Key(i));
  }
  // With a quarter of credits dropped, recovery machinery must have
  // fired at least once.
  EXPECT_GT(db->tc()->stats().scan_credit_resends.load() +
                db->tc()->stats().scan_restarts.load(),
            0u);
}

// A DC crash mid-stream: the in-flight stream request dies in the DC's
// inbox, the TC's re-issue is HELD until the redo-resend completes (a
// scan mid-redo would see a partially re-populated tree), and the scan
// then completes from its resume point — no lost or duplicated windows.
TEST(ChannelTransportTest, DcCrashMidStreamRecovers) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  // 25ms request latency makes "crash while the stream request is in
  // flight" deterministic; the 50ms chunk wait comfortably covers it.
  options.channel.request_channel.min_delay_us = 25000;
  options.channel.request_channel.max_delay_us = 25000;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 50;
  options.tc.insert_phantom_protection = false;
  options.tc.scan_stream_chunk = 8;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  constexpr int kRows = 80;
  for (int base = 0; base < kRows; base += 20) {
    Txn txn(db->tc());
    for (int i = base; i < base + 20; ++i) {
      txn.InsertAsync(kTable, Key(i), "v" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  std::vector<std::pair<std::string, std::string>> rows;
  Status scan_status;
  std::thread scanner([&] {
    scan_status = db->tc()->ScanShared(kTable, "", "", 0,
                                       ReadFlavor::kDirty, &rows);
  });
  // The stream request is on the wire (25ms to delivery); kill the DC
  // under it, then recover while the scan is stalled.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  db->CrashDc(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(db->RecoverDc(0).ok());
  scanner.join();

  ASSERT_TRUE(scan_status.ok()) << scan_status.ToString();
  ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    ASSERT_EQ(rows[i].first, Key(i));
    ASSERT_EQ(rows[i].second, "v" + std::to_string(i));
  }
  EXPECT_GT(db->tc()->stats().scan_restarts.load(), 0u)
      << "the stream should have stalled and re-issued at least once";
}

// A writer mutating the table while a streamed scan runs — over a
// DUPLICATING, reordering channel, so the DC can execute the same
// stream twice with divergent chunk boundaries (deletes shift them).
// Rows committed before the scan started and never touched must each
// appear exactly once, in order, no matter how the two executions'
// chunks interleave (the continuity check forces a restart on splice).
TEST(ChannelTransportTest, ConcurrentWriterDuringStreamedScan) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.dup_prob = 0.3;
  options.channel.request_channel.max_delay_us = 300;
  options.channel.request_channel.seed = 77;
  options.channel.reply_channel.dup_prob = 0.2;
  options.channel.reply_channel.max_delay_us = 300;
  options.channel.reply_channel.seed = 88;
  options.tc.control_interval_ms = 5;
  options.tc.insert_phantom_protection = false;
  options.tc.scan_stream_chunk = 8;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  // Stable rows at even indices; the writer churns the odd ones.
  constexpr int kRows = 100;
  for (int base = 0; base < kRows; base += 20) {
    Txn txn(db->tc());
    for (int i = base; i < base + 20; i += 2) {
      txn.InsertAsync(kTable, Key(i), "stable" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int round = 0;
    while (!stop.load()) {
      Txn txn(db->tc());
      const int i = 1 + 2 * (round % (kRows / 2));
      if (round % 3 == 2) {
        txn.Delete(kTable, Key(i));
      } else {
        txn.Upsert(kTable, Key(i), "w" + std::to_string(round));
      }
      txn.Commit();
      ++round;
    }
  });
  for (int round = 0; round < 6; ++round) {
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(db->tc()
                    ->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty,
                                 &rows)
                    .ok());
    // Filter to the stable keys: all present, exactly once, in order.
    std::vector<std::string> stable;
    for (const auto& [k, v] : rows) {
      if (v.rfind("stable", 0) == 0) stable.push_back(k);
    }
    ASSERT_EQ(stable.size(), static_cast<size_t>(kRows / 2))
        << "a concurrent writer lost or duplicated stable rows";
    for (int i = 0; i < kRows / 2; ++i) {
      ASSERT_EQ(stable[i], Key(2 * i));
    }
  }
  stop.store(true);
  writer.join();
}

TEST(ChannelTransportTest, DcCrashDropsInFlightRequests) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.max_delay_us = 2000;
  options.tc.resend_interval_ms = 10;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  // Committed work, then crash with requests possibly in flight.
  for (int i = 0; i < 20; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  db->CrashDc(0);
  ASSERT_TRUE(db->RecoverDc(0).ok());
  Txn check(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(check.Scan(kTable, "", "", 0, &rows).ok());
  check.Commit();
  EXPECT_EQ(rows.size(), 20u);
}

}  // namespace
}  // namespace untx
