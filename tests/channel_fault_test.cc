// Interaction-contract property tests (§4.2): exactly-once execution
// over channels with swept fault rates, and the channel transport's
// behavior during component failures — for the 1-TC facade and for
// multi-TC channel clusters.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "kernel/unbundled_db.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

// (drop ‰, dup ‰, max delay us)
class ChannelFaultTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  std::unique_ptr<UnbundledDb> Open() {
    const auto [drop, dup, delay] = GetParam();
    UnbundledDbOptions options;
    options.transport = TransportKind::kChannel;
    options.channel.request_channel.drop_prob = drop / 1000.0;
    options.channel.request_channel.dup_prob = dup / 1000.0;
    options.channel.request_channel.max_delay_us = delay;
    options.channel.request_channel.seed = 17 + drop + dup;
    options.channel.reply_channel.drop_prob = drop / 1000.0;
    options.channel.reply_channel.dup_prob = dup / 1000.0;
    options.channel.reply_channel.max_delay_us = delay;
    options.channel.reply_channel.seed = 29 + drop + dup;
    options.tc.resend_interval_ms = 5;
    options.tc.control_interval_ms = 5;
    auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
    EXPECT_TRUE(db->CreateTable(kTable).ok());
    return db;
  }
};

TEST_P(ChannelFaultTest, ExactlyOnceInsertsAndDeletes) {
  auto db = Open();
  std::map<std::string, std::string> model;
  Random rng(std::get<0>(GetParam()) * 31 + 7);
  for (int i = 0; i < 80; ++i) {
    const std::string key = Key(static_cast<int>(rng.Uniform(50)));
    Txn txn(db->tc());
    ASSERT_TRUE(txn.ok());
    if (model.count(key) == 0) {
      ASSERT_TRUE(txn.Insert(kTable, key, "v").ok()) << i;
      ASSERT_TRUE(txn.Commit().ok()) << i;
      model[key] = "v";
    } else {
      ASSERT_TRUE(txn.Delete(kTable, key).ok()) << i;
      ASSERT_TRUE(txn.Commit().ok()) << i;
      model.erase(key);
    }
  }
  Txn check(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(check.Scan(kTable, "", "", 0, &rows).ok());
  check.Commit();
  ASSERT_EQ(rows.size(), model.size())
      << "dropped or doubled effects under faults";
  for (const auto& [k, v] : rows) {
    ASSERT_TRUE(model.count(k)) << k;
  }
}

TEST_P(ChannelFaultTest, CountersBalance) {
  auto db = Open();
  for (int i = 0; i < 40; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const auto [drop, dup, delay] = GetParam();
  if (drop > 0) {
    EXPECT_GT(db->tc()->stats().resends.load(), 0u)
        << "losses must trigger resends";
  }
  // Idempotence machinery absorbed every duplicate: the DC never
  // reported a conflicting-op violation.
  EXPECT_EQ(db->dc(0)->stats().conflicts_detected.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, ChannelFaultTest,
    ::testing::Values(std::make_tuple(0, 0, 0),
                      std::make_tuple(0, 0, 500),    // reorder only
                      std::make_tuple(20, 0, 200),   // 2% drop
                      std::make_tuple(0, 50, 200),   // 5% dup
                      std::make_tuple(50, 50, 500),  // 5% + 5% + jitter
                      std::make_tuple(120, 80, 800)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "drop" + std::to_string(std::get<0>(info.param)) + "dup" +
             std::to_string(std::get<1>(info.param)) + "delay" +
             std::to_string(std::get<2>(info.param));
    });

// Two TCs sharing one DC over independently lossy channels: each TC's
// resend/idempotence contract holds without cross-TC interference —
// every committed effect lands exactly once.
TEST(ChannelFaultClusterTest, TwoTcsExactlyOnceUnderFaults) {
  ClusterOptions options;
  options.num_dcs = 1;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.drop_prob = 0.03;
  options.channel.request_channel.dup_prob = 0.03;
  options.channel.request_channel.max_delay_us = 300;
  options.channel.request_channel.seed = 101;
  options.channel.reply_channel.drop_prob = 0.03;
  options.channel.reply_channel.dup_prob = 0.03;
  options.channel.reply_channel.max_delay_us = 300;
  options.channel.reply_channel.seed = 211;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.resend_interval_ms = 5;
    spec.options.control_interval_ms = 5;
    options.tcs.push_back(spec);
  }
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  ASSERT_TRUE(cluster->tc(0)->CreateTable(kTable).ok());
  for (int i = 0; i < 30; ++i) {
    for (int t = 0; t < 2; ++t) {
      TransactionComponent* tc = cluster->tc(t);
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok());
      const std::string key =
          std::string(t == 0 ? "a" : "b") + Key(i);
      ASSERT_TRUE(tc->Insert(*txn, kTable, key, "v").ok()) << key;
      ASSERT_TRUE(tc->Commit(*txn).ok()) << key;
    }
  }
  // Exactly-once: 60 distinct rows, no conflicting-op violations.
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(cluster->tc(0)->ScanShared(kTable, "", "", 0,
                                         ReadFlavor::kDirty, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 60u);
  EXPECT_EQ(cluster->dc(0)->stats().conflicts_detected.load(), 0u);
}

TEST(ChannelTransportTest, DcCrashDropsInFlightRequests) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.max_delay_us = 2000;
  options.tc.resend_interval_ms = 10;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  // Committed work, then crash with requests possibly in flight.
  for (int i = 0; i < 20; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  db->CrashDc(0);
  ASSERT_TRUE(db->RecoverDc(0).ok());
  Txn check(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(check.Scan(kTable, "", "", 0, &rows).ok());
  check.Commit();
  EXPECT_EQ(rows.size(), 20u);
}

}  // namespace
}  // namespace untx
