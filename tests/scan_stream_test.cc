// Streamed scan windows + batched version promotion (PR 3 tentpole):
// the kScanStream wire format, chunked delivery over the channel
// transport (one request message per stream instead of one blocking
// round trip per window), fetch-ahead probe prefetching, the
// ceil(K / promote_batch_ops) promote-message collapse at versioned
// commit, adaptive coalescing, and per-DC channel option overrides.
//
// PR 4 adds the scan flow-control and cursor machinery: credit
// exhaustion -> pause -> replenish, bounded reply-channel memory
// (max_queued_scan_bytes), DC-side cursor hints invalidated by SMOs,
// cursor-table eviction (completion, close, TC reset, idle TTL), and
// the fetch-ahead fold — zero blocking ScanRange messages per
// transactional scan.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "dc/dc_api.h"
#include "kernel/unbundled_db.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

TEST(ScanStreamWireTest, RequestRoundTrip) {
  ScanStreamRequest req;
  req.base.tc_id = 3;
  req.base.lsn = 77;  // stream id
  req.base.op = OpType::kScanRange;
  req.base.table_id = kTable;
  req.base.key = "from";
  req.base.end_key = "to";
  req.base.limit = 500;
  req.base.read_flavor = ReadFlavor::kReadCommitted;
  req.base.exclusive_start = true;
  req.chunk_rows = 32;
  req.credit_chunks = 4;
  req.probe_rows = true;

  std::string buf;
  req.EncodeTo(&buf);
  Slice in(buf);
  ScanStreamRequest out;
  ASSERT_TRUE(ScanStreamRequest::DecodeFrom(&in, &out));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(out.base.tc_id, 3);
  EXPECT_EQ(out.base.lsn, 77u);
  EXPECT_EQ(out.base.key, "from");
  EXPECT_EQ(out.base.end_key, "to");
  EXPECT_EQ(out.base.limit, 500u);
  EXPECT_EQ(out.base.read_flavor, ReadFlavor::kReadCommitted);
  EXPECT_TRUE(out.base.exclusive_start);
  EXPECT_EQ(out.chunk_rows, 32u);
  EXPECT_EQ(out.credit_chunks, 4u);
  EXPECT_TRUE(out.probe_rows);
}

TEST(ScanStreamWireTest, CreditRoundTripAndTruncation) {
  ScanCreditRequest req;
  req.tc_id = 5;
  req.stream_id = 1234;
  req.allowed_chunks = 17;
  req.close = false;
  req.rewind = true;
  req.expect_chunk = 9;
  req.rewind_key = "window-start";
  req.rewind_exclusive = true;
  req.rewind_upto = "fencepost";

  std::string buf;
  req.EncodeTo(&buf);
  {
    Slice in(buf);
    ScanCreditRequest out;
    ASSERT_TRUE(ScanCreditRequest::DecodeFrom(&in, &out));
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(out.tc_id, 5);
    EXPECT_EQ(out.stream_id, 1234u);
    EXPECT_EQ(out.allowed_chunks, 17u);
    EXPECT_FALSE(out.close);
    EXPECT_TRUE(out.rewind);
    EXPECT_EQ(out.expect_chunk, 9u);
    EXPECT_EQ(out.rewind_key, "window-start");
    EXPECT_TRUE(out.rewind_exclusive);
    EXPECT_EQ(out.rewind_upto, "fencepost");
  }
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    ScanCreditRequest out;
    EXPECT_FALSE(ScanCreditRequest::DecodeFrom(&in, &out)) << "cut=" << cut;
  }
}

TEST(ScanStreamWireTest, ChunkRoundTripAndTruncation) {
  ScanStreamChunk chunk;
  chunk.tc_id = 2;
  chunk.stream_id = 99;
  chunk.chunk_index = 4;
  chunk.done = true;
  chunk.resume_key = "prev-last";
  chunk.resume_exclusive = true;
  chunk.status = Status::OK();
  chunk.keys = {"a", "bb"};
  chunk.values = {"1", "22"};
  chunk.next_key = "fence";
  chunk.invisible = {1};

  std::string buf;
  chunk.EncodeTo(&buf);
  {
    Slice in(buf);
    ScanStreamChunk out;
    ASSERT_TRUE(ScanStreamChunk::DecodeFrom(&in, &out));
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(out.tc_id, 2);
    EXPECT_EQ(out.stream_id, 99u);
    EXPECT_EQ(out.chunk_index, 4u);
    EXPECT_TRUE(out.done);
    EXPECT_EQ(out.resume_key, "prev-last");
    EXPECT_TRUE(out.resume_exclusive);
    EXPECT_TRUE(out.status.ok());
    EXPECT_EQ(out.keys, (std::vector<std::string>{"a", "bb"}));
    EXPECT_EQ(out.values, (std::vector<std::string>{"1", "22"}));
    EXPECT_EQ(out.next_key, "fence");
    EXPECT_EQ(out.invisible, (std::vector<uint32_t>{1}));
  }
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    ScanStreamChunk out;
    EXPECT_FALSE(ScanStreamChunk::DecodeFrom(&in, &out)) << "cut=" << cut;
  }
}

TEST(ScanStreamWireTest, ExclusiveStartHonoredByDoScan) {
  UnbundledDbOptions options;
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  for (int i = 0; i < 4; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  OperationRequest req;
  req.tc_id = 1;
  req.lsn = 1000;
  req.op = OpType::kScanRange;
  req.table_id = kTable;
  req.key = Key(1);
  req.limit = 10;
  OperationReply inclusive = db->dc(0)->Perform(req);
  ASSERT_TRUE(inclusive.status.ok());
  ASSERT_EQ(inclusive.keys.size(), 3u);
  EXPECT_EQ(inclusive.keys[0], Key(1));
  req.lsn = 1001;
  req.exclusive_start = true;
  OperationReply exclusive = db->dc(0)->Perform(req);
  ASSERT_TRUE(exclusive.status.ok());
  ASSERT_EQ(exclusive.keys.size(), 2u);
  EXPECT_EQ(exclusive.keys[0], Key(2));
}

std::unique_ptr<UnbundledDb> OpenChannelDb(bool streaming,
                                           uint32_t chunk_rows = 8) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 50;
  options.tc.insert_phantom_protection = false;
  options.tc.scan_streaming = streaming;
  options.tc.scan_stream_chunk = chunk_rows;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  EXPECT_TRUE(db->CreateTable(kTable).ok());
  return db;
}

void LoadRows(UnbundledDb* db, int n) {
  for (int base = 0; base < n; base += 32) {
    Txn txn(db->tc());
    for (int i = base; i < std::min(n, base + 32); ++i) {
      txn.InsertAsync(kTable, Key(i), "v" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
}

// The headline collapse: a scan spanning W windows costs ONE scan
// request message (plus chunked replies), not W blocking round trips.
TEST(ScanStreamTest, SharedScanCostsOneRequestForManyWindows) {
  auto db = OpenChannelDb(/*streaming=*/true, /*chunk_rows=*/8);
  constexpr int kRows = 100;  // 13 chunks of 8
  LoadRows(db.get(), kRows);

  const uint64_t scan_msgs_before = db->channel(0)->scan_messages();
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db->tc()
                  ->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty, &rows)
                  .ok());
  ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    EXPECT_EQ(rows[i].first, Key(i));
    EXPECT_EQ(rows[i].second, "v" + std::to_string(i));
  }
  // One stream request on a loss-free channel; >= 13 chunk replies.
  EXPECT_EQ(db->channel(0)->scan_messages() - scan_msgs_before, 1u);
  EXPECT_GE(db->channel(0)->scan_chunks(), 13u);
  EXPECT_GE(db->channel(0)->scan_rows_carried(),
            static_cast<uint64_t>(kRows));
  EXPECT_EQ(db->tc()->stats().scan_streams.load(), 1u);
  EXPECT_EQ(db->tc()->stats().scan_restarts.load(), 0u);
  EXPECT_EQ(db->tc()->stats().scan_rows.load(),
            static_cast<uint64_t>(kRows));
}

TEST(ScanStreamTest, StreamedAndBlockingScansAgree) {
  auto streamed = OpenChannelDb(/*streaming=*/true);
  auto blocking = OpenChannelDb(/*streaming=*/false);
  LoadRows(streamed.get(), 50);
  LoadRows(blocking.get(), 50);

  for (auto* db : {streamed.get(), blocking.get()}) {
    std::vector<std::pair<std::string, std::string>> shared_rows;
    ASSERT_TRUE(db->tc()
                    ->ScanShared(kTable, Key(5), Key(45), 0,
                                 ReadFlavor::kDirty, &shared_rows)
                    .ok());
    ASSERT_EQ(shared_rows.size(), 40u);
    EXPECT_EQ(shared_rows.front().first, Key(5));
    EXPECT_EQ(shared_rows.back().first, Key(44));

    // Limited scan stops exactly at the limit.
    std::vector<std::pair<std::string, std::string>> limited;
    ASSERT_TRUE(db->tc()
                    ->ScanShared(kTable, "", "", 17, ReadFlavor::kDirty,
                                 &limited)
                    .ok());
    EXPECT_EQ(limited.size(), 17u);

    // Serializable fetch-ahead scan (prefetching when streaming).
    Txn txn(db->tc());
    std::vector<std::pair<std::string, std::string>> txn_rows;
    ASSERT_TRUE(txn.Scan(kTable, Key(10), Key(30), 0, &txn_rows).ok());
    ASSERT_EQ(txn_rows.size(), 20u);
    ASSERT_TRUE(txn.Commit().ok());
  }
}

// Partition-protocol transactional scans ride the stream too.
TEST(ScanStreamTest, PartitionProtocolScanStreams) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.insert_phantom_protection = false;
  options.tc.range_protocol = RangeLockProtocol::kPartition;
  options.tc.scan_stream_chunk = 8;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  LoadRows(db.get(), 60);

  const uint64_t scan_msgs_before = db->channel(0)->scan_messages();
  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(txn.Scan(kTable, "", "", 0, &rows).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_EQ(rows.size(), 60u);
  EXPECT_EQ(db->channel(0)->scan_messages() - scan_msgs_before, 1u);
}

// The prefetched next-window probe overlaps the current window's lock +
// validated read: with any real channel delay it has always completed
// by the time it is awaited.
TEST(ScanStreamTest, FetchAheadPrefetchOverlapsValidation) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.min_delay_us = 200;
  options.channel.request_channel.max_delay_us = 400;
  options.channel.reply_channel.min_delay_us = 200;
  options.channel.reply_channel.max_delay_us = 400;
  options.tc.control_interval_ms = 5;
  options.tc.insert_phantom_protection = false;
  options.tc.fetch_ahead_batch = 8;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  LoadRows(db.get(), 80);  // 10 windows of 8

  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(txn.Scan(kTable, "", "", 0, &rows).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_EQ(rows.size(), 80u);
  // 10 windows => 9 prefetched probes; the probe's round trip fully
  // overlaps >= one validated-read round trip, so hits are certain.
  EXPECT_GT(db->tc()->stats().scan_prefetch_hits.load(), 0u);
}

// §6.2.2 batched: K written keys promote in ceil(K / promote_batch_ops)
// wire messages, not K — asserted via the transport's promote counters.
TEST(ScanStreamTest, VersionedCommitBatchesPromotes) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 1000;  // keep resends out of the count
  options.tc.insert_phantom_protection = false;
  options.tc.versioning = true;
  options.tc.promote_batch_ops = 4;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());

  constexpr int kKeys = 10;  // ceil(10 / 4) = 3 promote messages
  {
    Txn txn(db->tc());
    for (int i = 0; i < kKeys; ++i) {
      txn.UpsertAsync(kTable, Key(i), "committed" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(db->tc()->stats().promote_ops.load(),
            static_cast<uint64_t>(kKeys));
  EXPECT_EQ(db->tc()->stats().promote_batches.load(), 3u);
  EXPECT_EQ(db->channel(0)->promote_messages(), 3u);
  EXPECT_EQ(db->channel(0)->promote_ops_carried(),
            static_cast<uint64_t>(kKeys));

  // The promotes really landed: read-committed sees the new values.
  for (int i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_TRUE(db->tc()
                    ->ReadShared(kTable, Key(i),
                                 ReadFlavor::kReadCommitted, &value)
                    .ok());
    EXPECT_EQ(value, "committed" + std::to_string(i));
  }
}

// Adaptive coalescing: a queued op whose submitter goes quiescent is
// flushed by the idle rule — long before the fixed-window worst case.
TEST(ScanStreamTest, AdaptiveCoalescingFlushesOnQuiescence) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 100;
  options.tc.insert_phantom_protection = false;
  options.channel.coalesce_policy = CoalescePolicy::kAdaptive;
  options.channel.coalesce_idle_us = 25;
  options.channel.coalesce_max_delay_us = 250;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());

  Txn txn(db->tc());
  const uint64_t msgs_before = db->channel(0)->op_messages();
  txn.InsertAsync(kTable, Key(0), "v");  // queued, never explicitly flushed
  // The flusher must push it out on its own within a few milliseconds.
  for (int spin = 0; spin < 500; ++spin) {
    if (db->channel(0)->op_messages() > msgs_before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(db->channel(0)->op_messages(), msgs_before);
  EXPECT_GT(db->channel(0)->coalesce_idle_flushes() +
                db->channel(0)->coalesce_deadline_flushes(),
            0u);
  ASSERT_TRUE(txn.Flush().ok());
  ASSERT_TRUE(txn.Commit().ok());
}

// ---- PR 4: credit flow control + DC-side cursors ----------------------------

// Credit exhaustion -> pause -> replenish: with a tiny window the DC
// parks the cursor repeatedly and every chunk beyond the initial credit
// is released by a kScanCredit, yet the scan delivers every row.
TEST(ScanFlowControlTest, CreditExhaustionPausesAndReplenishes) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.insert_phantom_protection = false;
  options.tc.scan_stream_chunk = 8;
  options.tc.scan_credit_chunks = 2;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  constexpr int kRows = 200;  // 25 chunks against a 2-chunk window
  LoadRows(db.get(), kRows);

  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db->tc()
                  ->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty, &rows)
                  .ok());
  ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) EXPECT_EQ(rows[i].first, Key(i));

  EXPECT_GT(db->tc()->stats().scan_credits_sent.load(), 0u);
  EXPECT_GT(db->channel(0)->scan_credit_messages(), 0u);
  EXPECT_GT(db->dc(0)->stats().scan_stream_pauses.load(), 0u);
  // The stream completed: its cursor was evicted with it.
  EXPECT_EQ(db->dc(0)->ScanCursorCount(), 0u);
}

// The headline memory bound (acceptance criterion): a 10k-row scan with
// a 2-chunk credit window keeps the reply channel's scan residency at
// credit x chunk size, while the eager baseline queues a large fraction
// of the whole result — and both deliver identical rows.
TEST(ScanFlowControlTest, BoundedQueuedBytesForLargeScan) {
  constexpr int kRows = 10000;
  constexpr uint32_t kChunkRows = 64;
  constexpr uint32_t kCredit = 2;
  auto run = [&](uint32_t credit, uint64_t* max_queued)
      -> std::vector<std::pair<std::string, std::string>> {
    UnbundledDbOptions options;
    options.transport = TransportKind::kChannel;
    // A little reply latency makes chunks resident in the channel, so
    // the high-water mark reflects how far the DC ran ahead.
    options.channel.reply_channel.min_delay_us = 300;
    options.channel.reply_channel.max_delay_us = 400;
    options.tc.control_interval_ms = 5;
    options.tc.insert_phantom_protection = false;
    options.tc.scan_stream_chunk = kChunkRows;
    options.tc.scan_credit_chunks = credit;
    auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
    EXPECT_TRUE(db->CreateTable(kTable).ok());
    LoadRows(db.get(), kRows);
    std::vector<std::pair<std::string, std::string>> rows;
    EXPECT_TRUE(db->tc()
                    ->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty,
                                 &rows)
                    .ok());
    *max_queued = db->channel(0)->max_queued_scan_bytes();
    return rows;
  };

  uint64_t credited_max = 0;
  auto credited_rows = run(kCredit, &credited_max);
  uint64_t eager_max = 0;
  auto eager_rows = run(0, &eager_max);

  ASSERT_EQ(credited_rows.size(), static_cast<size_t>(kRows));
  ASSERT_EQ(eager_rows, credited_rows) << "flow control changed the rows";

  // credit window x (a generous per-chunk wire-size bound).
  const uint64_t bound = kCredit * (kChunkRows * 32 + 128);
  EXPECT_LE(credited_max, bound)
      << "credited stream overran its reply-channel budget";
  EXPECT_GT(eager_max, 4 * credited_max)
      << "eager push should queue far more than the credited stream";
}

// Acceptance criterion: a transactional fetch-ahead scan is served
// entirely from the stream — zero operation-carrying request messages
// (no blocking ScanRange, no separate probes), just the one stream
// request plus credits.
TEST(ScanFlowControlTest, TxnScanSendsZeroBlockingScanRanges) {
  auto db = OpenChannelDb(/*streaming=*/true, /*chunk_rows=*/8);
  constexpr int kRows = 120;
  LoadRows(db.get(), kRows);

  const uint64_t op_msgs_before = db->channel(0)->op_messages();
  const uint64_t scan_msgs_before = db->channel(0)->scan_messages();
  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(txn.Scan(kTable, "", "", 0, &rows).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) EXPECT_EQ(rows[i].first, Key(i));

  EXPECT_EQ(db->channel(0)->op_messages() - op_msgs_before, 0u)
      << "the fetch-ahead fold must not send blocking ScanRange/probe ops";
  EXPECT_EQ(db->channel(0)->scan_messages() - scan_msgs_before, 1u);
  EXPECT_GT(db->channel(0)->scan_credit_messages(), 0u);
  EXPECT_GT(db->tc()->stats().scan_validated_windows.load(), 0u);
  EXPECT_EQ(db->tc()->stats().scan_restarts.load(), 0u);
}

std::unique_ptr<UnbundledDb> OpenSmallPageDb() {
  UnbundledDbOptions options;
  options.store.page_size = 1024;
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  options.tc.control_interval_ms = 5;
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  EXPECT_TRUE(db->CreateTable(kTable).ok());
  return db;
}

// DC-side cursor mechanics, driven directly against the DataComponent:
// chunk 2 resumes from the leaf hint (no descent); after the hinted
// leaf is emptied/retired by deletes + consolidation the hint is
// rejected and the cursor safely re-descends — rows stay exactly-once.
TEST(ScanCursorTest, LeafHintSurvivesAndSmoInvalidatesIt) {
  auto db = OpenSmallPageDb();
  constexpr int kRows = 300;  // ~1KB pages -> many leaves
  for (int i = 0; i < kRows; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v" + std::to_string(i)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  DataComponent* dc = db->dc(0);

  std::vector<ScanStreamChunk> chunks;
  auto emit = [&](const ScanStreamChunk& chunk) { chunks.push_back(chunk); };

  ScanStreamRequest req;
  req.base.op = OpType::kScanRange;
  req.base.tc_id = 9;
  req.base.lsn = 777;  // stream id
  req.base.table_id = kTable;
  req.base.read_flavor = ReadFlavor::kDirty;
  req.chunk_rows = 25;
  req.credit_chunks = 1;
  dc->PerformScanStream(req, emit);
  ASSERT_EQ(chunks.size(), 1u);
  ASSERT_EQ(chunks[0].keys.size(), 25u);
  ASSERT_EQ(dc->ScanCursorCount(), 1u);
  const uint64_t descends_cold = dc->stats().scan_cursor_descends.load();

  // Chunk 2 rides the leaf hint: no new descent.
  ScanCreditRequest credit;
  credit.tc_id = 9;
  credit.stream_id = 777;
  credit.allowed_chunks = 2;
  dc->ScanCredit(credit, emit);
  ASSERT_EQ(chunks.size(), 2u);
  ASSERT_EQ(chunks[1].keys.size(), 25u);
  EXPECT_EQ(chunks[1].keys[0], Key(25));
  EXPECT_GT(dc->stats().scan_cursor_hint_hits.load(), 0u);
  EXPECT_EQ(dc->stats().scan_cursor_descends.load(), descends_cold);

  // SMO under the cursor: delete the whole region the hint points into
  // (rows 0..99 — far past the cursor's resume at row 49) and let the
  // emptied leaves consolidate/retire.
  for (int i = 0; i < 100; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Delete(kTable, Key(i)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  db->dc(0)->btree()->TryConsolidate(kTable, Key(49));

  credit.allowed_chunks = 100;  // run to the end
  dc->ScanCredit(credit, emit);
  EXPECT_GT(dc->stats().scan_cursor_descends.load(), descends_cold)
      << "an invalidated hint must force a re-descent";

  // Exactly-once over the surviving rows: the deletes removed 0..99, so
  // the resume at (row 49, exclusive) continues with 100..299.
  std::vector<std::string> tail_keys;
  for (size_t c = 2; c < chunks.size(); ++c) {
    ASSERT_TRUE(chunks[c].status.ok());
    for (const auto& k : chunks[c].keys) tail_keys.push_back(k);
  }
  ASSERT_EQ(tail_keys.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(tail_keys[i], Key(100 + i));
  EXPECT_TRUE(chunks.back().done);
  // Completed stream: cursor gone.
  EXPECT_EQ(dc->ScanCursorCount(), 0u);
}

// Cursor-table eviction: an abandoned stream's cursor dies by idle TTL;
// a closed stream's cursor dies immediately; a TC reset sweeps that
// TC's cursors.
TEST(ScanCursorTest, CursorEvictionPaths) {
  UnbundledDbOptions options;
  options.tc.insert_phantom_protection = false;
  options.dc.scan_cursor_ttl_ms = 50;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  for (int i = 0; i < 64; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  DataComponent* dc = db->dc(0);
  auto drop = [](const ScanStreamChunk&) {};

  auto open_stream = [&](TcId tc, uint64_t id) {
    ScanStreamRequest req;
    req.base.op = OpType::kScanRange;
    req.base.tc_id = tc;
    req.base.lsn = id;
    req.base.table_id = kTable;
    req.base.read_flavor = ReadFlavor::kDirty;
    req.chunk_rows = 8;
    req.credit_chunks = 1;  // parks after one of eight chunks
    dc->PerformScanStream(req, drop);
  };

  // Abandonment: parked cursor outlives nothing — the TTL reaps it.
  open_stream(/*tc=*/3, /*id=*/1);
  ASSERT_EQ(dc->ScanCursorCount(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_GE(dc->EvictIdleScanCursors(), 1u);
  EXPECT_EQ(dc->ScanCursorCount(), 0u);
  EXPECT_GT(dc->stats().scan_cursors_evicted.load(), 0u);

  // Explicit close: evicted immediately.
  open_stream(/*tc=*/3, /*id=*/2);
  ASSERT_EQ(dc->ScanCursorCount(), 1u);
  ScanCreditRequest close;
  close.tc_id = 3;
  close.stream_id = 2;
  close.close = true;
  dc->ScanCredit(close, drop);
  EXPECT_EQ(dc->ScanCursorCount(), 0u);

  // TC reset (the crashed TC's streams died with it): its cursors are
  // swept by kRestartBegin; another TC's cursor survives.
  open_stream(/*tc=*/3, /*id=*/3);
  open_stream(/*tc=*/4, /*id=*/4);
  ASSERT_EQ(dc->ScanCursorCount(), 2u);
  ControlRequest reset;
  reset.type = ControlType::kRestartBegin;
  reset.tc_id = 3;
  reset.lsn = 1000000;  // nothing beyond the stable log: no page resets
  reset.seq = 1;
  ASSERT_TRUE(dc->Control(reset).status.ok());
  EXPECT_EQ(dc->ScanCursorCount(), 1u);
}

// Per-DC channel overrides through ClusterOptions: each binding gets the
// options of its DC.
TEST(ScanStreamTest, PerDcChannelOverrides) {
  ClusterOptions options;
  options.num_dcs = 2;
  options.transport = TransportKind::kChannel;
  options.channel.max_batch_ops = 64;
  options.channel.coalesce_policy = CoalescePolicy::kAdaptive;
  ChannelTransportOptions far_dc = options.channel;
  far_dc.max_batch_ops = 7;
  far_dc.coalesce_policy = CoalescePolicy::kFixedWindow;
  far_dc.coalesce_window_us = 500;
  options.channel_overrides[1] = far_dc;
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  ASSERT_NE(cluster->channel(0, 0), nullptr);
  ASSERT_NE(cluster->channel(0, 1), nullptr);
  EXPECT_EQ(cluster->channel(0, 0)->options().max_batch_ops, 64u);
  EXPECT_EQ(cluster->channel(0, 0)->options().coalesce_policy,
            CoalescePolicy::kAdaptive);
  EXPECT_EQ(cluster->channel(0, 1)->options().max_batch_ops, 7u);
  EXPECT_EQ(cluster->channel(0, 1)->options().coalesce_policy,
            CoalescePolicy::kFixedWindow);
  EXPECT_EQ(cluster->channel(0, 1)->options().coalesce_window_us, 500u);
}

}  // namespace
}  // namespace untx
