// Streamed scan windows + batched version promotion (PR 3 tentpole):
// the kScanStream wire format, chunked delivery over the channel
// transport (one request message per stream instead of one blocking
// round trip per window), fetch-ahead probe prefetching, the
// ceil(K / promote_batch_ops) promote-message collapse at versioned
// commit, adaptive coalescing, and per-DC channel option overrides.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "dc/dc_api.h"
#include "kernel/unbundled_db.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

TEST(ScanStreamWireTest, RequestRoundTrip) {
  ScanStreamRequest req;
  req.base.tc_id = 3;
  req.base.lsn = 77;  // stream id
  req.base.op = OpType::kScanRange;
  req.base.table_id = kTable;
  req.base.key = "from";
  req.base.end_key = "to";
  req.base.limit = 500;
  req.base.read_flavor = ReadFlavor::kReadCommitted;
  req.base.exclusive_start = true;
  req.chunk_rows = 32;

  std::string buf;
  req.EncodeTo(&buf);
  Slice in(buf);
  ScanStreamRequest out;
  ASSERT_TRUE(ScanStreamRequest::DecodeFrom(&in, &out));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(out.base.tc_id, 3);
  EXPECT_EQ(out.base.lsn, 77u);
  EXPECT_EQ(out.base.key, "from");
  EXPECT_EQ(out.base.end_key, "to");
  EXPECT_EQ(out.base.limit, 500u);
  EXPECT_EQ(out.base.read_flavor, ReadFlavor::kReadCommitted);
  EXPECT_TRUE(out.base.exclusive_start);
  EXPECT_EQ(out.chunk_rows, 32u);
}

TEST(ScanStreamWireTest, ChunkRoundTripAndTruncation) {
  ScanStreamChunk chunk;
  chunk.tc_id = 2;
  chunk.stream_id = 99;
  chunk.chunk_index = 4;
  chunk.done = true;
  chunk.resume_key = "prev-last";
  chunk.resume_exclusive = true;
  chunk.status = Status::OK();
  chunk.keys = {"a", "bb"};
  chunk.values = {"1", "22"};

  std::string buf;
  chunk.EncodeTo(&buf);
  {
    Slice in(buf);
    ScanStreamChunk out;
    ASSERT_TRUE(ScanStreamChunk::DecodeFrom(&in, &out));
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(out.tc_id, 2);
    EXPECT_EQ(out.stream_id, 99u);
    EXPECT_EQ(out.chunk_index, 4u);
    EXPECT_TRUE(out.done);
    EXPECT_EQ(out.resume_key, "prev-last");
    EXPECT_TRUE(out.resume_exclusive);
    EXPECT_TRUE(out.status.ok());
    EXPECT_EQ(out.keys, (std::vector<std::string>{"a", "bb"}));
    EXPECT_EQ(out.values, (std::vector<std::string>{"1", "22"}));
  }
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    ScanStreamChunk out;
    EXPECT_FALSE(ScanStreamChunk::DecodeFrom(&in, &out)) << "cut=" << cut;
  }
}

TEST(ScanStreamWireTest, ExclusiveStartHonoredByDoScan) {
  UnbundledDbOptions options;
  options.tc.insert_phantom_protection = false;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  for (int i = 0; i < 4; ++i) {
    Txn txn(db->tc());
    ASSERT_TRUE(txn.Insert(kTable, Key(i), "v").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  OperationRequest req;
  req.tc_id = 1;
  req.lsn = 1000;
  req.op = OpType::kScanRange;
  req.table_id = kTable;
  req.key = Key(1);
  req.limit = 10;
  OperationReply inclusive = db->dc(0)->Perform(req);
  ASSERT_TRUE(inclusive.status.ok());
  ASSERT_EQ(inclusive.keys.size(), 3u);
  EXPECT_EQ(inclusive.keys[0], Key(1));
  req.lsn = 1001;
  req.exclusive_start = true;
  OperationReply exclusive = db->dc(0)->Perform(req);
  ASSERT_TRUE(exclusive.status.ok());
  ASSERT_EQ(exclusive.keys.size(), 2u);
  EXPECT_EQ(exclusive.keys[0], Key(2));
}

std::unique_ptr<UnbundledDb> OpenChannelDb(bool streaming,
                                           uint32_t chunk_rows = 8) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 50;
  options.tc.insert_phantom_protection = false;
  options.tc.scan_streaming = streaming;
  options.tc.scan_stream_chunk = chunk_rows;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  EXPECT_TRUE(db->CreateTable(kTable).ok());
  return db;
}

void LoadRows(UnbundledDb* db, int n) {
  for (int base = 0; base < n; base += 32) {
    Txn txn(db->tc());
    for (int i = base; i < std::min(n, base + 32); ++i) {
      txn.InsertAsync(kTable, Key(i), "v" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
}

// The headline collapse: a scan spanning W windows costs ONE scan
// request message (plus chunked replies), not W blocking round trips.
TEST(ScanStreamTest, SharedScanCostsOneRequestForManyWindows) {
  auto db = OpenChannelDb(/*streaming=*/true, /*chunk_rows=*/8);
  constexpr int kRows = 100;  // 13 chunks of 8
  LoadRows(db.get(), kRows);

  const uint64_t scan_msgs_before = db->channel(0)->scan_messages();
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db->tc()
                  ->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty, &rows)
                  .ok());
  ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    EXPECT_EQ(rows[i].first, Key(i));
    EXPECT_EQ(rows[i].second, "v" + std::to_string(i));
  }
  // One stream request on a loss-free channel; >= 13 chunk replies.
  EXPECT_EQ(db->channel(0)->scan_messages() - scan_msgs_before, 1u);
  EXPECT_GE(db->channel(0)->scan_chunks(), 13u);
  EXPECT_GE(db->channel(0)->scan_rows_carried(),
            static_cast<uint64_t>(kRows));
  EXPECT_EQ(db->tc()->stats().scan_streams.load(), 1u);
  EXPECT_EQ(db->tc()->stats().scan_restarts.load(), 0u);
  EXPECT_EQ(db->tc()->stats().scan_rows.load(),
            static_cast<uint64_t>(kRows));
}

TEST(ScanStreamTest, StreamedAndBlockingScansAgree) {
  auto streamed = OpenChannelDb(/*streaming=*/true);
  auto blocking = OpenChannelDb(/*streaming=*/false);
  LoadRows(streamed.get(), 50);
  LoadRows(blocking.get(), 50);

  for (auto* db : {streamed.get(), blocking.get()}) {
    std::vector<std::pair<std::string, std::string>> shared_rows;
    ASSERT_TRUE(db->tc()
                    ->ScanShared(kTable, Key(5), Key(45), 0,
                                 ReadFlavor::kDirty, &shared_rows)
                    .ok());
    ASSERT_EQ(shared_rows.size(), 40u);
    EXPECT_EQ(shared_rows.front().first, Key(5));
    EXPECT_EQ(shared_rows.back().first, Key(44));

    // Limited scan stops exactly at the limit.
    std::vector<std::pair<std::string, std::string>> limited;
    ASSERT_TRUE(db->tc()
                    ->ScanShared(kTable, "", "", 17, ReadFlavor::kDirty,
                                 &limited)
                    .ok());
    EXPECT_EQ(limited.size(), 17u);

    // Serializable fetch-ahead scan (prefetching when streaming).
    Txn txn(db->tc());
    std::vector<std::pair<std::string, std::string>> txn_rows;
    ASSERT_TRUE(txn.Scan(kTable, Key(10), Key(30), 0, &txn_rows).ok());
    ASSERT_EQ(txn_rows.size(), 20u);
    ASSERT_TRUE(txn.Commit().ok());
  }
}

// Partition-protocol transactional scans ride the stream too.
TEST(ScanStreamTest, PartitionProtocolScanStreams) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.insert_phantom_protection = false;
  options.tc.range_protocol = RangeLockProtocol::kPartition;
  options.tc.scan_stream_chunk = 8;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  LoadRows(db.get(), 60);

  const uint64_t scan_msgs_before = db->channel(0)->scan_messages();
  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(txn.Scan(kTable, "", "", 0, &rows).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_EQ(rows.size(), 60u);
  EXPECT_EQ(db->channel(0)->scan_messages() - scan_msgs_before, 1u);
}

// The prefetched next-window probe overlaps the current window's lock +
// validated read: with any real channel delay it has always completed
// by the time it is awaited.
TEST(ScanStreamTest, FetchAheadPrefetchOverlapsValidation) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.min_delay_us = 200;
  options.channel.request_channel.max_delay_us = 400;
  options.channel.reply_channel.min_delay_us = 200;
  options.channel.reply_channel.max_delay_us = 400;
  options.tc.control_interval_ms = 5;
  options.tc.insert_phantom_protection = false;
  options.tc.fetch_ahead_batch = 8;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());
  LoadRows(db.get(), 80);  // 10 windows of 8

  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(txn.Scan(kTable, "", "", 0, &rows).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_EQ(rows.size(), 80u);
  // 10 windows => 9 prefetched probes; the probe's round trip fully
  // overlaps >= one validated-read round trip, so hits are certain.
  EXPECT_GT(db->tc()->stats().scan_prefetch_hits.load(), 0u);
}

// §6.2.2 batched: K written keys promote in ceil(K / promote_batch_ops)
// wire messages, not K — asserted via the transport's promote counters.
TEST(ScanStreamTest, VersionedCommitBatchesPromotes) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 5;
  options.tc.resend_interval_ms = 1000;  // keep resends out of the count
  options.tc.insert_phantom_protection = false;
  options.tc.versioning = true;
  options.tc.promote_batch_ops = 4;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());

  constexpr int kKeys = 10;  // ceil(10 / 4) = 3 promote messages
  {
    Txn txn(db->tc());
    for (int i = 0; i < kKeys; ++i) {
      txn.UpsertAsync(kTable, Key(i), "committed" + std::to_string(i));
    }
    ASSERT_TRUE(txn.Flush().ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(db->tc()->stats().promote_ops.load(),
            static_cast<uint64_t>(kKeys));
  EXPECT_EQ(db->tc()->stats().promote_batches.load(), 3u);
  EXPECT_EQ(db->channel(0)->promote_messages(), 3u);
  EXPECT_EQ(db->channel(0)->promote_ops_carried(),
            static_cast<uint64_t>(kKeys));

  // The promotes really landed: read-committed sees the new values.
  for (int i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_TRUE(db->tc()
                    ->ReadShared(kTable, Key(i),
                                 ReadFlavor::kReadCommitted, &value)
                    .ok());
    EXPECT_EQ(value, "committed" + std::to_string(i));
  }
}

// Adaptive coalescing: a queued op whose submitter goes quiescent is
// flushed by the idle rule — long before the fixed-window worst case.
TEST(ScanStreamTest, AdaptiveCoalescingFlushesOnQuiescence) {
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.tc.control_interval_ms = 100;
  options.tc.insert_phantom_protection = false;
  options.channel.coalesce_policy = CoalescePolicy::kAdaptive;
  options.channel.coalesce_idle_us = 25;
  options.channel.coalesce_max_delay_us = 250;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());

  Txn txn(db->tc());
  const uint64_t msgs_before = db->channel(0)->op_messages();
  txn.InsertAsync(kTable, Key(0), "v");  // queued, never explicitly flushed
  // The flusher must push it out on its own within a few milliseconds.
  for (int spin = 0; spin < 500; ++spin) {
    if (db->channel(0)->op_messages() > msgs_before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(db->channel(0)->op_messages(), msgs_before);
  EXPECT_GT(db->channel(0)->coalesce_idle_flushes() +
                db->channel(0)->coalesce_deadline_flushes(),
            0u);
  ASSERT_TRUE(txn.Flush().ok());
  ASSERT_TRUE(txn.Commit().ok());
}

// Per-DC channel overrides through ClusterOptions: each binding gets the
// options of its DC.
TEST(ScanStreamTest, PerDcChannelOverrides) {
  ClusterOptions options;
  options.num_dcs = 2;
  options.transport = TransportKind::kChannel;
  options.channel.max_batch_ops = 64;
  options.channel.coalesce_policy = CoalescePolicy::kAdaptive;
  ChannelTransportOptions far_dc = options.channel;
  far_dc.max_batch_ops = 7;
  far_dc.coalesce_policy = CoalescePolicy::kFixedWindow;
  far_dc.coalesce_window_us = 500;
  options.channel_overrides[1] = far_dc;
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  ASSERT_NE(cluster->channel(0, 0), nullptr);
  ASSERT_NE(cluster->channel(0, 1), nullptr);
  EXPECT_EQ(cluster->channel(0, 0)->options().max_batch_ops, 64u);
  EXPECT_EQ(cluster->channel(0, 0)->options().coalesce_policy,
            CoalescePolicy::kAdaptive);
  EXPECT_EQ(cluster->channel(0, 1)->options().max_batch_ops, 7u);
  EXPECT_EQ(cluster->channel(0, 1)->options().coalesce_policy,
            CoalescePolicy::kFixedWindow);
  EXPECT_EQ(cluster->channel(0, 1)->options().coalesce_window_us, 500u);
}

}  // namespace
}  // namespace untx
