// Multi-TC deployment tests: the Figure 2 movie site, cross-TC sharing
// (§6.2), per-TC failure and escalation (§6.1.2).
#include <gtest/gtest.h>

#include <thread>

#include "cloud/deployment.h"
#include "cloud/movie_site.h"

namespace untx {
namespace cloud {
namespace {

TEST(MovieSiteTest, SetupAndAllWorkloads) {
  MovieSiteConfig config;
  config.num_users = 20;
  config.num_movies = 10;
  auto site_or = MovieSite::Open(config);
  ASSERT_TRUE(site_or.ok());
  auto site = std::move(site_or).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());

  // W2: every user reviews a few movies.
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    for (uint32_t m = 0; m < 3; ++m) {
      const uint32_t mid = (uid + m * 7) % config.num_movies;
      ASSERT_TRUE(site->W2AddReview(uid, mid, "review " +
                                                  std::to_string(uid) + "/" +
                                                  std::to_string(mid))
                      .ok());
    }
  }
  // W1: reviews clustered by movie, one DC each.
  std::vector<std::pair<std::string, std::string>> reviews;
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  EXPECT_GT(reviews.size(), 0u);
  for (const auto& [key, value] : reviews) {
    EXPECT_EQ(key.substr(0, 9), MovieKey(0)) << key;
  }
  // W3.
  ASSERT_TRUE(site->W3UpdateProfile(5, "new-profile").ok());
  // W4: reviews clustered by user.
  std::vector<std::pair<std::string, std::string>> mine;
  ASSERT_TRUE(site->W4GetUserReviews(5, &mine).ok());
  EXPECT_EQ(mine.size(), 3u);
  // W5: the movie-listing page — pipelined multi-get of titles spanning
  // both movie partitions (DC0 and DC1).
  std::vector<uint32_t> page;
  for (uint32_t mid = 0; mid < config.num_movies; ++mid) page.push_back(mid);
  std::vector<std::string> titles;
  ASSERT_TRUE(site->W5MovieListing(page, &titles).ok());
  ASSERT_EQ(titles.size(), page.size());
  for (uint32_t mid = 0; mid < config.num_movies; ++mid) {
    EXPECT_EQ(titles[mid], "title-" + std::to_string(mid));
  }
  // The redundant MyReviews copy agrees with Reviews.
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

TEST(MovieSiteTest, W2IsSingleTcNoDistributedCommit) {
  MovieSiteConfig config;
  config.num_users = 4;
  config.num_movies = 4;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  // The review insert spans DC0/DC1 (movie partition) and DC2
  // (MyReviews), yet commits with a single TC log force: the other TC's
  // log is untouched.
  TransactionComponent* owner = site->OwnerTc(0);
  TransactionComponent* other = site->deployment()->tc(1);
  const Lsn other_before = other->log()->total_end();
  ASSERT_TRUE(site->W2AddReview(0, 1, "hello").ok());
  EXPECT_EQ(other->log()->total_end(), other_before)
      << "no coordination with the other TC (no 2PC)";
  EXPECT_GT(owner->stats().txns_committed.load(), 0u);
}

TEST(MovieSiteTest, ReadCommittedReaderSeesOnlyCommitted) {
  MovieSiteConfig config;
  config.num_users = 4;
  config.num_movies = 2;
  config.versioning = true;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  ASSERT_TRUE(site->W2AddReview(0, 0, "committed-review").ok());

  // An open (uncommitted) update by the owner TC...
  TransactionComponent* owner = site->OwnerTc(0);
  StatusOr<TxnId> txn = owner->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(owner->Update(*txn, kReviewsTable, ReviewKey(0, 0),
                            "uncommitted-edit")
                  .ok());

  // ...is invisible to the read-committed reader (TC3's view) and does
  // not block it (§6.2.2: "Readers are never blocked").
  std::vector<std::pair<std::string, std::string>> reviews;
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  ASSERT_EQ(reviews.size(), 1u);
  EXPECT_EQ(reviews[0].second, "committed-review");

  ASSERT_TRUE(owner->Commit(*txn).ok());
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  ASSERT_EQ(reviews.size(), 1u);
  EXPECT_EQ(reviews[0].second, "uncommitted-edit");
}

TEST(MovieSiteTest, DirtyReadSeesUncommitted) {
  MovieSiteConfig config;
  config.num_users = 2;
  config.num_movies = 1;
  config.versioning = false;  // dirty-read deployment (§6.2.1)
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  ASSERT_TRUE(site->W2AddReview(0, 0, "v1").ok());

  TransactionComponent* owner = site->OwnerTc(0);
  StatusOr<TxnId> txn = owner->Begin();
  ASSERT_TRUE(owner->Update(*txn, kReviewsTable, ReviewKey(0, 0), "dirty")
                  .ok());
  std::vector<std::pair<std::string, std::string>> reviews;
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  ASSERT_EQ(reviews.size(), 1u);
  EXPECT_EQ(reviews[0].second, "dirty")
      << "dirty reads see uncommitted data (§6.2.1)";
  owner->Abort(*txn);
}

TEST(MovieSiteTest, AbortedReviewLeavesNoTrace) {
  MovieSiteConfig config;
  config.num_users = 2;
  config.num_movies = 1;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  TransactionComponent* owner = site->OwnerTc(1);
  StatusOr<TxnId> txn = owner->Begin();
  ASSERT_TRUE(owner->Insert(*txn, kReviewsTable, ReviewKey(0, 1), "tmp").ok());
  ASSERT_TRUE(owner->Insert(*txn, kMyReviewsTable, MyReviewKey(1, 0), "tmp")
                  .ok());
  ASSERT_TRUE(owner->Abort(*txn).ok());
  std::vector<std::pair<std::string, std::string>> reviews;
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  EXPECT_TRUE(reviews.empty());
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

TEST(MovieSiteTest, TcCrashRecoveryKeepsSiteConsistent) {
  MovieSiteConfig config;
  config.num_users = 10;
  config.num_movies = 5;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    ASSERT_TRUE(site->W2AddReview(uid, uid % config.num_movies, "r").ok());
  }
  // Crash TC1 (owner of even uids) and restart; escalation (if any) is
  // handled by the deployment.
  ASSERT_TRUE(site->deployment()->CrashAndRestartTc(0).ok());
  ASSERT_TRUE(site->VerifyConsistency().ok());
  // The restarted TC keeps working.
  ASSERT_TRUE(site->W2AddReview(2, 1, "post-restart").ok());
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

TEST(MovieSiteTest, DcCrashRecoveryKeepsSiteConsistent) {
  MovieSiteConfig config;
  config.num_users = 10;
  config.num_movies = 5;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    ASSERT_TRUE(site->W2AddReview(uid, uid % config.num_movies, "r").ok());
  }
  // Crash the shared user DC (DC2): BOTH TCs must redo-resend to it.
  ASSERT_TRUE(site->deployment()->CrashAndRecoverDc(2).ok());
  ASSERT_TRUE(site->VerifyConsistency().ok());
  std::vector<std::pair<std::string, std::string>> mine;
  ASSERT_TRUE(site->W4GetUserReviews(3, &mine).ok());
  EXPECT_EQ(mine.size(), 1u);
}

TEST(MovieSiteTest, ConcurrentMixedWorkload) {
  MovieSiteConfig config;
  config.num_users = 16;
  config.num_movies = 8;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());

  std::atomic<int> w2_ok{0}, w1_ok{0};
  std::thread writer1([&] {
    for (uint32_t i = 0; i < 30; ++i) {
      if (site->W2AddReview(0 + 2 * (i % 8), i % 8, "a").ok()) {
        w2_ok.fetch_add(1);
      }
    }
  });
  std::thread writer2([&] {
    for (uint32_t i = 0; i < 30; ++i) {
      if (site->W2AddReview(1 + 2 * (i % 7), i % 8, "b").ok()) {
        w2_ok.fetch_add(1);
      }
    }
  });
  std::thread reader([&] {
    for (uint32_t i = 0; i < 60; ++i) {
      std::vector<std::pair<std::string, std::string>> reviews;
      if (site->W1GetMovieReviews(i % 8, &reviews).ok()) {
        w1_ok.fetch_add(1);
      }
    }
  });
  writer1.join();
  writer2.join();
  reader.join();
  EXPECT_EQ(w2_ok.load(), 60);
  EXPECT_EQ(w1_ok.load(), 60);
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

TEST(DeploymentTest, DisjointPartitionsTwoTcsOneDc) {
  DeploymentOptions options;
  options.num_dcs = 1;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.control_interval_ms = 5;
    options.tcs.push_back(spec);
  }
  auto deployment = std::move(Deployment::Open(options)).ValueOrDie();
  ASSERT_TRUE(deployment->tc(0)->CreateTable(9).ok());

  // Interleaved writes from both TCs to disjoint keys of one table on one
  // DC — the §6.1.1 multi-abLSN case.
  for (int i = 0; i < 50; ++i) {
    for (int t = 0; t < 2; ++t) {
      TransactionComponent* tc = deployment->tc(t);
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok());
      const std::string key =
          std::string(t == 0 ? "a" : "b") + std::to_string(i);
      ASSERT_TRUE(tc->Insert(*txn, 9, key, "v").ok());
      ASSERT_TRUE(tc->Commit(*txn).ok());
    }
  }
  // Both TCs read everything (dirty reads commute, §6.2.1).
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(deployment->tc(1)->ScanShared(9, "", "", 0, ReadFlavor::kDirty,
                                            &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 100u);
}

TEST(DeploymentTest, TcCrashOnSharedDcSparesOtherTc) {
  DeploymentOptions options;
  options.num_dcs = 1;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.control_interval_ms = 5;
    options.tcs.push_back(spec);
  }
  auto deployment = std::move(Deployment::Open(options)).ValueOrDie();
  ASSERT_TRUE(deployment->tc(0)->CreateTable(9).ok());
  for (int i = 0; i < 30; ++i) {
    for (int t = 0; t < 2; ++t) {
      TransactionComponent* tc = deployment->tc(t);
      StatusOr<TxnId> txn = tc->Begin();
      const std::string key =
          std::string(t == 0 ? "a" : "b") + std::to_string(i);
      ASSERT_TRUE(tc->Insert(*txn, 9, key, "v" + std::to_string(t)).ok());
      ASSERT_TRUE(tc->Commit(*txn).ok());
    }
  }
  ASSERT_TRUE(deployment->CrashAndRestartTc(0).ok());
  // All committed rows of both TCs visible.
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(deployment->tc(1)->ScanShared(9, "", "", 0, ReadFlavor::kDirty,
                                            &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 60u);
}

}  // namespace
}  // namespace cloud
}  // namespace untx
