// Multi-TC cluster tests: the Figure 2 movie site, cross-TC sharing
// (§6.2), per-TC failure and escalation (§6.1.2), and the cloud-style
// wiring — N TCs × M DCs over the channel transport with batched wire
// messages.
#include <gtest/gtest.h>

#include <thread>

#include "cloud/movie_site.h"
#include "kernel/cluster.h"

namespace untx {
namespace cloud {
namespace {

TEST(MovieSiteTest, SetupAndAllWorkloads) {
  MovieSiteConfig config;
  config.num_users = 20;
  config.num_movies = 10;
  auto site_or = MovieSite::Open(config);
  ASSERT_TRUE(site_or.ok());
  auto site = std::move(site_or).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());

  // W2: every user reviews a few movies.
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    for (uint32_t m = 0; m < 3; ++m) {
      const uint32_t mid = (uid + m * 7) % config.num_movies;
      ASSERT_TRUE(site->W2AddReview(uid, mid, "review " +
                                                  std::to_string(uid) + "/" +
                                                  std::to_string(mid))
                      .ok());
    }
  }
  // W1: reviews clustered by movie, one DC each.
  std::vector<std::pair<std::string, std::string>> reviews;
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  EXPECT_GT(reviews.size(), 0u);
  for (const auto& [key, value] : reviews) {
    EXPECT_EQ(key.substr(0, 9), MovieKey(0)) << key;
  }
  // W3.
  ASSERT_TRUE(site->W3UpdateProfile(5, "new-profile").ok());
  // W4: reviews clustered by user.
  std::vector<std::pair<std::string, std::string>> mine;
  ASSERT_TRUE(site->W4GetUserReviews(5, &mine).ok());
  EXPECT_EQ(mine.size(), 3u);
  // W5: the movie-listing page — pipelined multi-get of titles spanning
  // both movie partitions (DC0 and DC1).
  std::vector<uint32_t> page;
  for (uint32_t mid = 0; mid < config.num_movies; ++mid) page.push_back(mid);
  std::vector<std::string> titles;
  ASSERT_TRUE(site->W5MovieListing(page, &titles).ok());
  ASSERT_EQ(titles.size(), page.size());
  for (uint32_t mid = 0; mid < config.num_movies; ++mid) {
    EXPECT_EQ(titles[mid], "title-" + std::to_string(mid));
  }
  // The redundant MyReviews copy agrees with Reviews.
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

TEST(MovieSiteTest, W2IsSingleTcNoDistributedCommit) {
  MovieSiteConfig config;
  config.num_users = 4;
  config.num_movies = 4;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  // The review insert spans DC0/DC1 (movie partition) and DC2
  // (MyReviews), yet commits with a single TC log force: the other TC's
  // log is untouched.
  TransactionComponent* owner = site->OwnerTc(0);
  TransactionComponent* other = site->cluster()->tc(1);
  const Lsn other_before = other->log()->total_end();
  ASSERT_TRUE(site->W2AddReview(0, 1, "hello").ok());
  EXPECT_EQ(other->log()->total_end(), other_before)
      << "no coordination with the other TC (no 2PC)";
  EXPECT_GT(owner->stats().txns_committed.load(), 0u);
}

TEST(MovieSiteTest, ReadCommittedReaderSeesOnlyCommitted) {
  MovieSiteConfig config;
  config.num_users = 4;
  config.num_movies = 2;
  config.versioning = true;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  ASSERT_TRUE(site->W2AddReview(0, 0, "committed-review").ok());

  // An open (uncommitted) update by the owner TC...
  TransactionComponent* owner = site->OwnerTc(0);
  StatusOr<TxnId> txn = owner->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(owner->Update(*txn, kReviewsTable, ReviewKey(0, 0),
                            "uncommitted-edit")
                  .ok());

  // ...is invisible to the read-committed reader (TC3's view) and does
  // not block it (§6.2.2: "Readers are never blocked").
  std::vector<std::pair<std::string, std::string>> reviews;
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  ASSERT_EQ(reviews.size(), 1u);
  EXPECT_EQ(reviews[0].second, "committed-review");

  ASSERT_TRUE(owner->Commit(*txn).ok());
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  ASSERT_EQ(reviews.size(), 1u);
  EXPECT_EQ(reviews[0].second, "uncommitted-edit");
}

TEST(MovieSiteTest, DirtyReadSeesUncommitted) {
  MovieSiteConfig config;
  config.num_users = 2;
  config.num_movies = 1;
  config.versioning = false;  // dirty-read deployment (§6.2.1)
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  ASSERT_TRUE(site->W2AddReview(0, 0, "v1").ok());

  TransactionComponent* owner = site->OwnerTc(0);
  StatusOr<TxnId> txn = owner->Begin();
  ASSERT_TRUE(owner->Update(*txn, kReviewsTable, ReviewKey(0, 0), "dirty")
                  .ok());
  std::vector<std::pair<std::string, std::string>> reviews;
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  ASSERT_EQ(reviews.size(), 1u);
  EXPECT_EQ(reviews[0].second, "dirty")
      << "dirty reads see uncommitted data (§6.2.1)";
  owner->Abort(*txn);
}

TEST(MovieSiteTest, AbortedReviewLeavesNoTrace) {
  MovieSiteConfig config;
  config.num_users = 2;
  config.num_movies = 1;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  TransactionComponent* owner = site->OwnerTc(1);
  StatusOr<TxnId> txn = owner->Begin();
  ASSERT_TRUE(owner->Insert(*txn, kReviewsTable, ReviewKey(0, 1), "tmp").ok());
  ASSERT_TRUE(owner->Insert(*txn, kMyReviewsTable, MyReviewKey(1, 0), "tmp")
                  .ok());
  ASSERT_TRUE(owner->Abort(*txn).ok());
  std::vector<std::pair<std::string, std::string>> reviews;
  ASSERT_TRUE(site->W1GetMovieReviews(0, &reviews).ok());
  EXPECT_TRUE(reviews.empty());
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

TEST(MovieSiteTest, TcCrashRecoveryKeepsSiteConsistent) {
  MovieSiteConfig config;
  config.num_users = 10;
  config.num_movies = 5;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    ASSERT_TRUE(site->W2AddReview(uid, uid % config.num_movies, "r").ok());
  }
  // Crash TC1 (owner of even uids) and restart; escalation (if any) is
  // handled by the deployment.
  ASSERT_TRUE(site->cluster()->CrashAndRestartTc(0).ok());
  ASSERT_TRUE(site->VerifyConsistency().ok());
  // The restarted TC keeps working.
  ASSERT_TRUE(site->W2AddReview(2, 1, "post-restart").ok());
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

TEST(MovieSiteTest, DcCrashRecoveryKeepsSiteConsistent) {
  MovieSiteConfig config;
  config.num_users = 10;
  config.num_movies = 5;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    ASSERT_TRUE(site->W2AddReview(uid, uid % config.num_movies, "r").ok());
  }
  // Crash the shared user DC (DC2): BOTH TCs must redo-resend to it.
  ASSERT_TRUE(site->cluster()->CrashAndRecoverDc(2).ok());
  ASSERT_TRUE(site->VerifyConsistency().ok());
  std::vector<std::pair<std::string, std::string>> mine;
  ASSERT_TRUE(site->W4GetUserReviews(3, &mine).ok());
  EXPECT_EQ(mine.size(), 1u);
}

TEST(MovieSiteTest, ConcurrentMixedWorkload) {
  MovieSiteConfig config;
  config.num_users = 16;
  config.num_movies = 8;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());

  std::atomic<int> w2_ok{0}, w1_ok{0};
  std::thread writer1([&] {
    for (uint32_t i = 0; i < 30; ++i) {
      if (site->W2AddReview(0 + 2 * (i % 8), i % 8, "a").ok()) {
        w2_ok.fetch_add(1);
      }
    }
  });
  std::thread writer2([&] {
    for (uint32_t i = 0; i < 30; ++i) {
      if (site->W2AddReview(1 + 2 * (i % 7), i % 8, "b").ok()) {
        w2_ok.fetch_add(1);
      }
    }
  });
  std::thread reader([&] {
    for (uint32_t i = 0; i < 60; ++i) {
      std::vector<std::pair<std::string, std::string>> reviews;
      if (site->W1GetMovieReviews(i % 8, &reviews).ok()) {
        w1_ok.fetch_add(1);
      }
    }
  });
  writer1.join();
  writer2.join();
  reader.join();
  EXPECT_EQ(w2_ok.load(), 60);
  EXPECT_EQ(w1_ok.load(), 60);
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

// The movie site on the channel transport: the full Figure 2 topology
// (2 TCs × 3 DCs) with every TC↔DC binding a message channel, W5's
// pipelined multi-get coalescing into batched wire messages.
TEST(MovieSiteTest, ChannelTransportEndToEnd) {
  MovieSiteConfig config;
  config.num_users = 8;
  config.num_movies = 6;
  config.transport = TransportKind::kChannel;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  ASSERT_TRUE(site->Setup().ok());
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    ASSERT_TRUE(site->W2AddReview(uid, uid % config.num_movies, "wire").ok());
  }
  // Every (TC, DC) binding is a live channel with its own stats.
  for (int t = 0; t < site->cluster()->num_tcs(); ++t) {
    for (int d = 0; d < site->cluster()->num_dcs(); ++d) {
      ASSERT_NE(site->cluster()->channel(t, d), nullptr) << t << "," << d;
    }
  }
  // W5 batching: the listing page's reads coalesce per DC partition, so
  // the page costs fewer operation messages than one per title.
  std::vector<uint32_t> page;
  for (uint32_t mid = 0; mid < config.num_movies; ++mid) page.push_back(mid);
  const uint64_t msgs_before = site->cluster()->TotalOpMessages();
  const uint64_t ops_before = site->cluster()->TotalOpsCarried();
  std::vector<std::string> titles;
  ASSERT_TRUE(site->W5MovieListing(page, &titles).ok());
  const uint64_t msgs = site->cluster()->TotalOpMessages() - msgs_before;
  const uint64_t ops = site->cluster()->TotalOpsCarried() - ops_before;
  EXPECT_GE(ops, static_cast<uint64_t>(config.num_movies));
  EXPECT_LT(msgs, ops) << "pipelined reads must coalesce on the wire";
  ASSERT_TRUE(site->VerifyConsistency().ok());
}

ClusterOptions TwoTcOptions(int num_dcs, TransportKind transport) {
  ClusterOptions options;
  options.num_dcs = num_dcs;
  options.transport = transport;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.control_interval_ms = 5;
    spec.options.resend_interval_ms = 20;
    options.tcs.push_back(spec);
  }
  return options;
}

TEST(ClusterTest, DisjointPartitionsTwoTcsOneDc) {
  auto cluster =
      std::move(Cluster::Open(TwoTcOptions(1, TransportKind::kDirect)))
          .ValueOrDie();
  ASSERT_TRUE(cluster->tc(0)->CreateTable(9).ok());

  // Interleaved writes from both TCs to disjoint keys of one table on one
  // DC — the §6.1.1 multi-abLSN case.
  for (int i = 0; i < 50; ++i) {
    for (int t = 0; t < 2; ++t) {
      TransactionComponent* tc = cluster->tc(t);
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok());
      const std::string key =
          std::string(t == 0 ? "a" : "b") + std::to_string(i);
      ASSERT_TRUE(tc->Insert(*txn, 9, key, "v").ok());
      ASSERT_TRUE(tc->Commit(*txn).ok());
    }
  }
  // Both TCs read everything (dirty reads commute, §6.2.1).
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(cluster->tc(1)->ScanShared(9, "", "", 0, ReadFlavor::kDirty,
                                         &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 100u);
}

TEST(ClusterTest, TcCrashOnSharedDcSparesOtherTc) {
  auto cluster =
      std::move(Cluster::Open(TwoTcOptions(1, TransportKind::kDirect)))
          .ValueOrDie();
  ASSERT_TRUE(cluster->tc(0)->CreateTable(9).ok());
  for (int i = 0; i < 30; ++i) {
    for (int t = 0; t < 2; ++t) {
      TransactionComponent* tc = cluster->tc(t);
      StatusOr<TxnId> txn = tc->Begin();
      const std::string key =
          std::string(t == 0 ? "a" : "b") + std::to_string(i);
      ASSERT_TRUE(tc->Insert(*txn, 9, key, "v" + std::to_string(t)).ok());
      ASSERT_TRUE(tc->Commit(*txn).ok());
    }
  }
  ASSERT_TRUE(cluster->CrashAndRestartTc(0).ok());
  // All committed rows of both TCs visible.
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(cluster->tc(1)->ScanShared(9, "", "", 0, ReadFlavor::kDirty,
                                         &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 60u);
}

// A ≥2-TC × ≥2-DC topology on the channel transport, end to end: every
// TC commits transactions spanning both DCs through pipelined submits,
// and the batched wire protocol keeps messages well below one per op.
TEST(ClusterTest, TwoTcTwoDcChannelClusterCommitsWithBatchedWire) {
  ClusterOptions options = TwoTcOptions(2, TransportKind::kChannel);
  // Key-based routing: keys below "m" live on DC0, the rest on DC1, so
  // one transaction's writes span both DCs.
  options.default_router = [](TableId, const std::string& key) {
    return static_cast<DcId>(key < "m" ? 0 : 1);
  };
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  // The table spans both DCs: create it once per partition.
  ASSERT_TRUE(cluster->tc(0)->CreateTable(9, "a").ok());
  ASSERT_TRUE(cluster->tc(0)->CreateTable(9, "z").ok());

  const uint64_t op_msgs_before = cluster->TotalOpMessages();
  const uint64_t ops_before = cluster->TotalOpsCarried();
  uint64_t total_ops = 0;
  for (int t = 0; t < 2; ++t) {
    TransactionComponent* tc = cluster->tc(t);
    const std::string who = t == 0 ? "A" : "B";
    for (int i = 0; i < 10; ++i) {
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok());
      std::vector<OpHandle> handles;
      for (int k = 0; k < 4; ++k) {
        // Two keys per DC, all pipelined; disjoint across TCs.
        const std::string low = "a" + who + std::to_string(i * 4 + k);
        const std::string high = "z" + who + std::to_string(i * 4 + k);
        handles.push_back(tc->SubmitInsert(*txn, 9, low, "v"));
        handles.push_back(tc->SubmitInsert(*txn, 9, high, "v"));
        total_ops += 2;
      }
      for (auto& handle : handles) {
        ASSERT_TRUE(tc->Await(&handle).ok());
      }
      ASSERT_TRUE(tc->Commit(*txn).ok());
    }
    EXPECT_GT(tc->stats().txns_committed.load(), 0u) << "TC " << t;
  }

  // Wire accounting: the pipelined inserts coalesced into kOperationBatch
  // messages — strictly fewer operation messages than operations carried
  // (resends may add messages; batching must still win).
  const uint64_t op_msgs = cluster->TotalOpMessages() - op_msgs_before;
  const uint64_t ops_carried = cluster->TotalOpsCarried() - ops_before;
  EXPECT_GE(ops_carried, total_ops);
  EXPECT_LT(op_msgs, ops_carried)
      << "batched wire protocol must coalesce pipelined ops";

  // Both TCs see the union (dirty reads commute, §6.2.1).
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(cluster->tc(1)->ScanShared(9, "", "m", 0, ReadFlavor::kDirty,
                                         &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 80u);  // 40 low keys per TC
}

// §6.1.2 over the wire: a TC restart on a channel cluster resets shared
// DCs; displaced TCs resend from their RSSPs; everything stays readable.
TEST(ClusterTest, TcRestartEscalationOnChannelCluster) {
  ClusterOptions options = TwoTcOptions(1, TransportKind::kChannel);
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  ASSERT_TRUE(cluster->tc(0)->CreateTable(9).ok());
  for (int i = 0; i < 20; ++i) {
    for (int t = 0; t < 2; ++t) {
      TransactionComponent* tc = cluster->tc(t);
      StatusOr<TxnId> txn = tc->Begin();
      const std::string key =
          std::string(t == 0 ? "a" : "b") + std::to_string(i);
      ASSERT_TRUE(tc->Insert(*txn, 9, key, "v").ok());
      ASSERT_TRUE(tc->Commit(*txn).ok());
    }
  }
  ASSERT_TRUE(cluster->CrashAndRestartTc(0).ok());
  // The restarted TC keeps committing over its channel bindings.
  StatusOr<TxnId> txn = cluster->tc(0)->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cluster->tc(0)->Insert(*txn, 9, "a-post", "v").ok());
  ASSERT_TRUE(cluster->tc(0)->Commit(*txn).ok());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(cluster->tc(1)->ScanShared(9, "", "", 0, ReadFlavor::kDirty,
                                         &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 41u);
}

// §5.3.2 "DC Failure" with two TCs on channels: the shared DC crashes
// and recovers; BOTH TCs redo-resend their slice over the wire, in
// batched messages.
TEST(ClusterTest, DcCrashRecoverTwoTcsRedoResendOverWire) {
  ClusterOptions options = TwoTcOptions(1, TransportKind::kChannel);
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  ASSERT_TRUE(cluster->tc(0)->CreateTable(9).ok());
  for (int i = 0; i < 25; ++i) {
    for (int t = 0; t < 2; ++t) {
      TransactionComponent* tc = cluster->tc(t);
      StatusOr<TxnId> txn = tc->Begin();
      const std::string key =
          std::string(t == 0 ? "a" : "b") + std::to_string(i);
      ASSERT_TRUE(tc->Insert(*txn, 9, key, "v").ok());
      ASSERT_TRUE(tc->Commit(*txn).ok());
    }
  }
  ASSERT_TRUE(cluster->CrashAndRecoverDc(0).ok());
  for (int t = 0; t < 2; ++t) {
    const TcStats& stats = cluster->tc(t)->stats();
    EXPECT_GT(stats.recovery_resent_ops.load(), 0u)
        << "TC " << t << " must redo-resend its slice";
    EXPECT_LT(stats.recovery_resend_msgs.load(),
              stats.recovery_resent_ops.load())
        << "redo must ship batches, not one op per message";
  }
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(cluster->tc(0)->ScanShared(9, "", "", 0, ReadFlavor::kDirty,
                                         &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 50u);
}

// Per-TC transport override: TC0 direct (co-located), TC1 on channels.
TEST(ClusterTest, MixedTransportsPerTc) {
  ClusterOptions options = TwoTcOptions(1, TransportKind::kDirect);
  options.tcs[1].transport = TransportKind::kChannel;
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  EXPECT_EQ(cluster->channel(0, 0), nullptr);
  ASSERT_NE(cluster->channel(1, 0), nullptr);
  ASSERT_TRUE(cluster->tc(0)->CreateTable(9).ok());
  for (int t = 0; t < 2; ++t) {
    TransactionComponent* tc = cluster->tc(t);
    StatusOr<TxnId> txn = tc->Begin();
    ASSERT_TRUE(tc->Insert(*txn, 9, "k" + std::to_string(t), "v").ok());
    ASSERT_TRUE(tc->Commit(*txn).ok());
  }
  EXPECT_GT(cluster->channel(1, 0)->request_channel().sent(), 0u);
  EXPECT_EQ(cluster->TotalRequestMessages(),
            cluster->channel(1, 0)->request_channel().sent());
}

TEST(ClusterTest, OpenRejectsBadTopologies) {
  ClusterOptions options;
  options.num_dcs = 0;
  EXPECT_TRUE(Cluster::Open(options).status().IsInvalidArgument());

  // Duplicate tc_ids are rejected, never silently renumbered — the id is
  // the TC's identity at the DCs (idempotence, escalation).
  ClusterOptions dup = TwoTcOptions(1, TransportKind::kDirect);
  dup.tcs[0].options.tc_id = 7;
  dup.tcs[1].options.tc_id = 7;
  EXPECT_TRUE(Cluster::Open(dup).status().IsInvalidArgument());

  // Two default-constructed TcSpecs collide on the default id too.
  ClusterOptions defaults;
  defaults.num_dcs = 1;
  defaults.tcs.resize(2);
  EXPECT_TRUE(Cluster::Open(defaults).status().IsInvalidArgument());
}

TEST(ClusterTest, AccessorsRejectBadIndices) {
  auto cluster =
      std::move(Cluster::Open(TwoTcOptions(2, TransportKind::kDirect)))
          .ValueOrDie();
  EXPECT_EQ(cluster->num_tcs(), 2);
  EXPECT_EQ(cluster->num_dcs(), 2);
  EXPECT_EQ(cluster->tc(2), nullptr);
  EXPECT_EQ(cluster->tc(-1), nullptr);
  EXPECT_EQ(cluster->dc(2), nullptr);
  EXPECT_EQ(cluster->store(2), nullptr);
  EXPECT_EQ(cluster->channel(0, 2), nullptr);
  EXPECT_EQ(cluster->channel(2, 0), nullptr);
  EXPECT_TRUE(cluster->RecoverDc(7).IsInvalidArgument());
  EXPECT_TRUE(cluster->RestartTc(7).IsInvalidArgument());
  cluster->CrashDc(7);  // out of range: no-op
  cluster->CrashTc(7);
}

}  // namespace
}  // namespace cloud
}  // namespace untx
