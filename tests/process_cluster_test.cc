// The separate-process deployment test: a Figure 2 topology (2 TCs ×
// 2 DCs) launched as REAL processes — untx_dcd serving DataComponents
// behind SocketServers, untx_tcd driving TransactionComponent kernels
// over real TCP — then SIGKILL'd mid-workload:
//
//   * a DC is killed and relaunched EMPTY on the same port; the TCs
//     observe the connect-epoch bump and rebuild it end to end with the
//     redo-resend protocol (tables included) — the unbundling's central
//     claim, exercised across a process boundary;
//   * a TC is killed and relaunched with --recover; its file-backed
//     stable log drives the §5.3.2 restart (reset DCs, redo from RSSP,
//     undo losers).
//
// Afterwards the committed state (per-TC dumps scanned over the live
// sockets) is diffed against a monolithic replay: the journaled
// committed transactions re-executed on a single-process direct-bound
// cluster. A transaction left in doubt by a kill (intent journaled, no
// outcome) is resolved by the kernel; the diff accepts whichever
// outcome the dump shows, but demands atomicity and exact value match.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kernel/cluster.h"

namespace untx {
namespace {

std::string BinDir() {
  const char* env = std::getenv("UNTX_BIN_DIR");
  return env ? env : ".";
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

pid_t Spawn(const std::vector<std::string>& args,
            const std::string& stderr_path) {
  std::vector<char*> argv;
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd =
      open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    dup2(fd, 2);
    close(fd);
  }
  execv(argv[0], argv.data());
  _exit(127);
}

/// Waits for exit; returns the exit code, or -1 on timeout/signal.
int WaitExit(pid_t pid, int timeout_ms) {
  const int slice = 20;
  for (int waited = 0; waited <= timeout_ms; waited += slice) {
    int status = 0;
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    SleepMs(slice);
  }
  return -1;
}

int ReadPortFile(const std::string& path, int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; waited += 50) {
    std::ifstream f(path);
    int port = 0;
    if (f && (f >> port) && port > 0) return port;
    SleepMs(50);
  }
  return 0;
}

struct JOp {
  TableId table = 0;
  bool is_delete = false;
  std::string key;
  std::string value;
};

struct JTxn {
  uint64_t seq = 0;
  std::vector<JOp> ops;
  char outcome = '?';  // 'C', 'A', or '?' (in doubt: killed mid-commit)
};

std::vector<JTxn> ParseJournal(const std::string& path) {
  std::vector<JTxn> txns;
  std::map<uint64_t, size_t> by_seq;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    std::istringstream ss(line);
    char kind;
    uint64_t seq;
    if (!(ss >> kind >> seq)) continue;
    if (kind == 'I') {
      JTxn txn;
      txn.seq = seq;
      int nops = 0;
      ss >> nops;
      for (int i = 0; i < nops; ++i) {
        JOp op;
        char verb;
        ss >> op.table >> verb >> op.key;
        op.is_delete = verb == 'D';
        if (!op.is_delete) ss >> op.value;
        txn.ops.push_back(std::move(op));
      }
      by_seq[seq] = txns.size();
      txns.push_back(std::move(txn));
    } else if (kind == 'C' || kind == 'A') {
      auto it = by_seq.find(seq);
      EXPECT_NE(it, by_seq.end()) << "outcome for unknown txn " << seq;
      if (it != by_seq.end()) txns[it->second].outcome = kind;
    }
  }
  return txns;
}

std::map<std::pair<TableId, std::string>, std::string> ParseDump(
    const std::string& path, bool* complete) {
  std::map<std::pair<TableId, std::string>, std::string> state;
  std::ifstream f(path);
  std::string line;
  *complete = false;
  while (std::getline(f, line)) {
    if (line == "END") {
      *complete = true;
      break;
    }
    std::istringstream ss(line);
    TableId table;
    std::string key, value;
    if (ss >> table >> key >> value) state[{table, key}] = value;
  }
  return state;
}

using Key = std::pair<TableId, std::string>;
constexpr const char* kAbsent = "<absent>";

/// Binds an ephemeral port, reads it back, releases it. The winner uses
/// SO_REUSEADDR, so the brief gap is benign in practice; tests need a
/// concrete port up front when the listener (a standby) opens it later.
int PickFreePort() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  int port = 0;
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  close(fd);
  return port;
}

/// The shared epilogue: journals → per-key acceptable values, diff the
/// dumps against them, then re-execute the confirmed transactions on a
/// monolithic single-process cluster and demand an EXACT state match.
void VerifyAgainstJournals(const std::string& dir,
                           uint64_t min_committed_per_tc,
                           uint64_t min_committed_total) {
  std::vector<JTxn> txns;
  uint64_t total_committed = 0;
  std::map<Key, std::set<std::string>> acceptable;
  std::map<Key, std::string> dump;
  for (int id : {1, 2}) {
    std::vector<JTxn> j =
        ParseJournal(dir + "/tc" + std::to_string(id) + ".journal");
    uint64_t committed = 0;
    for (const JTxn& txn : j) {
      if (txn.outcome == 'A') continue;
      if (txn.outcome == 'C') ++committed;
      for (const JOp& op : txn.ops) {
        const Key k{op.table, op.key};
        const std::string v = op.is_delete ? kAbsent : op.value;
        if (txn.outcome == 'C') {
          acceptable[k] = {v};
        } else {
          // In doubt: either it applied or it didn't.
          auto [it, inserted] = acceptable.try_emplace(k);
          if (inserted) it->second.insert(kAbsent);
          it->second.insert(v);
        }
      }
      txns.push_back(txn);
    }
    // Each TC must have made real progress through the chaos.
    EXPECT_GE(committed, min_committed_per_tc) << "tc" << id;
    total_committed += committed;
    bool complete = false;
    auto d = ParseDump(dir + "/tc" + std::to_string(id) + ".dump", &complete);
    ASSERT_TRUE(complete) << "truncated dump for tc" << id;
    for (auto& [k, v] : d) dump.emplace(k, v);
  }

  for (const auto& [k, vals] : acceptable) {
    auto it = dump.find(k);
    const std::string got = it == dump.end() ? kAbsent : it->second;
    EXPECT_TRUE(vals.count(got))
        << "table " << k.first << " key " << k.second << ": cluster has '"
        << got << "', journal allows only {"
        << [&] {
             std::string s;
             for (const auto& v : vals) s += v + " ";
             return s;
           }()
        << "}";
  }
  for (const auto& [k, v] : dump) {
    EXPECT_TRUE(acceptable.count(k))
        << "ghost row: table " << k.first << " key " << k.second << " = "
        << v << " (no journaled transaction wrote it)";
  }

  // Monolithic replay: committed (plus dump-confirmed in-doubt)
  // transactions re-executed on a single-process direct-bound cluster;
  // the result must match the live cluster's dumps EXACTLY.
  std::map<Key, uint64_t> last_writer;
  for (const JTxn& txn : txns) {
    for (const JOp& op : txn.ops) {
      // Seqs are per-TC but tables are TC-owned, so (table, key) never
      // collides across TCs and per-TC seq order is total per key.
      last_writer[{op.table, op.key}] = txn.seq;
    }
  }
  auto confirmed = [&](const JTxn& txn) {
    if (txn.outcome == 'C') return true;
    for (const JOp& op : txn.ops) {
      const Key k{op.table, op.key};
      if (last_writer[k] != txn.seq) continue;
      auto it = dump.find(k);
      if (op.is_delete ? it == dump.end()
                       : it != dump.end() && it->second == op.value) {
        return true;
      }
    }
    return false;
  };

  ClusterOptions mono;
  mono.num_dcs = 1;
  mono.transport = TransportKind::kDirect;
  TcSpec spec;
  spec.options.tc_id = 9;
  mono.tcs.push_back(spec);
  auto cluster = std::move(Cluster::Open(mono)).ValueOrDie();
  TransactionComponent* tc = cluster->tc(0);
  const std::vector<TableId> tables = {101, 102, 201, 202};
  for (TableId t : tables) ASSERT_TRUE(tc->CreateTable(t).ok());
  for (const JTxn& txn : txns) {
    if (!confirmed(txn)) continue;
    StatusOr<TxnId> id = tc->Begin();
    ASSERT_TRUE(id.ok());
    for (const JOp& op : txn.ops) {
      Status s = op.is_delete ? tc->Delete(*id, op.table, op.key)
                              : tc->Upsert(*id, op.table, op.key, op.value);
      ASSERT_TRUE(s.ok() || (op.is_delete && s.IsNotFound()))
          << "replay txn " << txn.seq << ": " << s.ToString();
    }
    ASSERT_TRUE(tc->Commit(*id).ok()) << "replay txn " << txn.seq;
  }
  std::map<Key, std::string> replay;
  for (TableId t : tables) {
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(tc->ScanShared(t, "", "", 0, ReadFlavor::kDirty, &rows).ok());
    for (auto& [k, v] : rows) replay[{t, k}] = v;
  }
  EXPECT_EQ(replay, dump)
      << "separate-process cluster state diverged from the monolithic "
         "replay of its journals (workdir kept at "
      << dir << ")";

  EXPECT_GE(total_committed, min_committed_total);
}

}  // namespace

TEST(ProcessClusterTest, SigkillDcAndTcThenStateMatchesMonolithicReplay) {
  char tmpl[] = "/tmp/untx_proc_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string dcd = BinDir() + "/untx_dcd";
  const std::string tcd = BinDir() + "/untx_tcd";
  ASSERT_EQ(access(dcd.c_str(), X_OK), 0) << dcd << " not built?";
  ASSERT_EQ(access(tcd.c_str(), X_OK), 0) << tcd << " not built?";

  // --- Launch the topology: 2 DCs on ephemeral ports, then 2 TCs. ----------
  pid_t dc0 = Spawn({dcd, "--port", "0", "--port_file", dir + "/dc0.port"},
                    dir + "/dc0.log");
  pid_t dc1 = Spawn({dcd, "--port", "0", "--port_file", dir + "/dc1.port"},
                    dir + "/dc1.log");
  const int p0 = ReadPortFile(dir + "/dc0.port", 10000);
  const int p1 = ReadPortFile(dir + "/dc1.port", 10000);
  ASSERT_GT(p0, 0);
  ASSERT_GT(p1, 0);
  const std::string dcs =
      "127.0.0.1:" + std::to_string(p0) + ",127.0.0.1:" + std::to_string(p1);

  auto spawn_tc = [&](int id, std::vector<std::string> extra,
                      const std::string& log) {
    std::vector<std::string> args = {tcd,         "--tc_id",
                                     std::to_string(id), "--dcs",
                                     dcs,         "--workdir",
                                     dir,         "--seed",
                                     std::to_string(40 + id)};
    args.insert(args.end(), extra.begin(), extra.end());
    return Spawn(args, dir + "/" + log);
  };
  pid_t tc1 = spawn_tc(1, {"--steps", "300", "--step_sleep_ms", "10"},
                       "tc1.log");
  pid_t tc2 = spawn_tc(2, {"--steps", "300", "--step_sleep_ms", "10"},
                       "tc2.log");

  // --- Chaos: SIGKILL a DC mid-workload, relaunch it empty. ----------------
  SleepMs(1000);
  ASSERT_EQ(kill(dc0, SIGKILL), 0);
  waitpid(dc0, nullptr, 0);
  SleepMs(700);
  dc0 = Spawn({dcd, "--port", std::to_string(p0), "--port_file",
               dir + "/dc0b.port"},
              dir + "/dc0b.log");

  // --- Chaos: SIGKILL a TC, relaunch with --recover. -----------------------
  SleepMs(1500);
  ASSERT_EQ(kill(tc2, SIGKILL), 0);
  waitpid(tc2, nullptr, 0);
  SleepMs(300);
  tc2 = spawn_tc(2,
                 {"--steps", "100", "--phase", "2", "--recover",
                  "--step_sleep_ms", "5"},
                 "tc2b.log");

  // Both TC daemons must finish their workloads and exit cleanly.
  EXPECT_EQ(WaitExit(tc1, 120000), 0) << "tc1 wedged; see " << dir;
  EXPECT_EQ(WaitExit(tc2, 120000), 0) << "tc2 wedged; see " << dir;

  // --- Final pass: recover (resolving any in-doubt txn) and dump. ----------
  pid_t d1 = spawn_tc(1, {"--steps", "0", "--recover", "--dump"}, "tc1d.log");
  ASSERT_EQ(WaitExit(d1, 120000), 0) << "tc1 dump pass failed; see " << dir;
  pid_t d2 = spawn_tc(2, {"--steps", "0", "--recover", "--dump"}, "tc2d.log");
  ASSERT_EQ(WaitExit(d2, 120000), 0) << "tc2 dump pass failed; see " << dir;

  kill(dc0, SIGTERM);
  kill(dc1, SIGTERM);
  EXPECT_EQ(WaitExit(dc0, 30000), 0);
  EXPECT_EQ(WaitExit(dc1, 30000), 0);

  VerifyAgainstJournals(dir, /*min_committed_per_tc=*/100,
                        /*min_committed_total=*/300);

  if (!::testing::Test::HasFailure()) {
    [[maybe_unused]] int rc = system(("rm -rf " + dir).c_str());
  }
}

// The PR-8 recovery modes across real process boundaries:
//
//   * dc0 runs durable (--workdir) with a diskless hot standby riding
//     its redo stream. SIGKILL the primary, SIGUSR1-promote the standby:
//     the TCs' endpoint rotation lands on the promoted DC and the
//     epoch-bump watcher runs the redo-resend — which the standby's
//     shipped log prefix reduces to the in-flight suffix.
//   * dc1 runs durable too; it is SIGKILL'd and relaunched with
//     --recover on the same workdir: pages + local redo replay restore
//     its pre-crash state, and again only the suffix is resent.
//
// The final state must match the monolithic replay exactly, same as the
// empty-rebuild test above.
TEST(ProcessClusterTest, PromoteStandbyAndDurableRecoverMatchReplay) {
  char tmpl[] = "/tmp/untx_promo_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string dcd = BinDir() + "/untx_dcd";
  const std::string tcd = BinDir() + "/untx_tcd";
  ASSERT_EQ(access(dcd.c_str(), X_OK), 0) << dcd << " not built?";
  ASSERT_EQ(access(tcd.c_str(), X_OK), 0) << tcd << " not built?";
  ASSERT_EQ(mkdir((dir + "/dc0").c_str(), 0755), 0);
  ASSERT_EQ(mkdir((dir + "/dc1").c_str(), 0755), 0);

  // --- Topology: durable dc0 + its standby (port fixed up front so the
  // TCs can list it as an alternate before it ever listens), durable dc1.
  pid_t dc0 = Spawn({dcd, "--port", "0", "--port_file", dir + "/dc0.port",
                     "--workdir", dir + "/dc0"},
                    dir + "/dc0.log");
  pid_t dc1 = Spawn({dcd, "--port", "0", "--port_file", dir + "/dc1.port",
                     "--workdir", dir + "/dc1"},
                    dir + "/dc1.log");
  const int p0 = ReadPortFile(dir + "/dc0.port", 10000);
  const int p1 = ReadPortFile(dir + "/dc1.port", 10000);
  ASSERT_GT(p0, 0);
  ASSERT_GT(p1, 0);
  const int p0r = PickFreePort();
  ASSERT_GT(p0r, 0);
  pid_t dc0r = Spawn({dcd, "--port", std::to_string(p0r), "--port_file",
                      dir + "/dc0r.port", "--replica_of",
                      "127.0.0.1:" + std::to_string(p0)},
                     dir + "/dc0r.log");

  const std::string dcs = "127.0.0.1:" + std::to_string(p0) + "|127.0.0.1:" +
                          std::to_string(p0r) + ",127.0.0.1:" +
                          std::to_string(p1);
  auto spawn_tc = [&](int id, std::vector<std::string> extra,
                      const std::string& log) {
    std::vector<std::string> args = {tcd,         "--tc_id",
                                     std::to_string(id), "--dcs",
                                     dcs,         "--workdir",
                                     dir,         "--seed",
                                     std::to_string(80 + id)};
    args.insert(args.end(), extra.begin(), extra.end());
    return Spawn(args, dir + "/" + log);
  };
  pid_t tc1 = spawn_tc(1, {"--steps", "300", "--step_sleep_ms", "10"},
                       "tc1.log");
  pid_t tc2 = spawn_tc(2, {"--steps", "300", "--step_sleep_ms", "10"},
                       "tc2.log");

  // --- Failover: SIGKILL the primary, promote the standby. -----------------
  SleepMs(1200);
  ASSERT_EQ(kill(dc0, SIGKILL), 0);
  waitpid(dc0, nullptr, 0);
  ASSERT_EQ(kill(dc0r, SIGUSR1), 0);
  // The standby writes its port file only once promoted and serving.
  ASSERT_EQ(ReadPortFile(dir + "/dc0r.port", 15000), p0r)
      << "standby failed to promote; see " << dir << "/dc0r.log";

  // --- Durable recovery: SIGKILL dc1, relaunch --recover on its files. -----
  SleepMs(1200);
  ASSERT_EQ(kill(dc1, SIGKILL), 0);
  waitpid(dc1, nullptr, 0);
  SleepMs(300);
  dc1 = Spawn({dcd, "--port", std::to_string(p1), "--port_file",
               dir + "/dc1b.port", "--workdir", dir + "/dc1", "--recover"},
              dir + "/dc1b.log");
  ASSERT_EQ(ReadPortFile(dir + "/dc1b.port", 10000), p1);

  EXPECT_EQ(WaitExit(tc1, 120000), 0) << "tc1 wedged; see " << dir;
  EXPECT_EQ(WaitExit(tc2, 120000), 0) << "tc2 wedged; see " << dir;

  // --- Final pass: recover (resolving any in-doubt txn) and dump. ----------
  pid_t d1 = spawn_tc(1, {"--steps", "0", "--recover", "--dump"}, "tc1d.log");
  ASSERT_EQ(WaitExit(d1, 120000), 0) << "tc1 dump pass failed; see " << dir;
  pid_t d2 = spawn_tc(2, {"--steps", "0", "--recover", "--dump"}, "tc2d.log");
  ASSERT_EQ(WaitExit(d2, 120000), 0) << "tc2 dump pass failed; see " << dir;

  kill(dc0r, SIGTERM);
  kill(dc1, SIGTERM);
  EXPECT_EQ(WaitExit(dc0r, 30000), 0);
  EXPECT_EQ(WaitExit(dc1, 30000), 0);

  // The relaunched dc1 must actually have restored state from ITS OWN
  // disk (not been rebuilt empty): its log announces the local replay.
  {
    std::ifstream f(dir + "/dc1b.log");
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_NE(ss.str().find("local recovery replayed"), std::string::npos)
        << "dc1 --recover did not take the local-recovery path; see " << dir;
  }

  VerifyAgainstJournals(dir, /*min_committed_per_tc=*/80,
                        /*min_committed_total=*/250);

  if (!::testing::Test::HasFailure()) {
    [[maybe_unused]] int rc = system(("rm -rf " + dir).c_str());
  }
}

}  // namespace untx
