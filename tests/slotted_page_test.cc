#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"

namespace untx {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : buf_(kDefaultPageSize), page_(MakePage()) {}

  SlottedPage MakePage() {
    SlottedPage p(buf_.data(), kDefaultPageSize, kDefaultTrailerCapacity);
    p.Init(42, PageType::kLeaf, 0, 7);
    return p;
  }

  std::vector<char> buf_;
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InitSetsHeader) {
  EXPECT_EQ(page_.page_id(), 42u);
  EXPECT_EQ(page_.type(), PageType::kLeaf);
  EXPECT_EQ(page_.level(), 0);
  EXPECT_EQ(page_.table_id(), 7u);
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.dlsn(), 0u);
  EXPECT_EQ(page_.next_page(), kInvalidPageId);
  EXPECT_TRUE(page_.Validate().ok());
}

TEST_F(SlottedPageTest, InsertAndRead) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("bbb")).ok());
  ASSERT_TRUE(page_.InsertAt(0, Slice("aaa")).ok());
  ASSERT_TRUE(page_.InsertAt(2, Slice("ccc")).ok());
  ASSERT_EQ(page_.slot_count(), 3);
  EXPECT_EQ(page_.PayloadAt(0), Slice("aaa"));
  EXPECT_EQ(page_.PayloadAt(1), Slice("bbb"));
  EXPECT_EQ(page_.PayloadAt(2), Slice("ccc"));
  EXPECT_TRUE(page_.Validate().ok());
}

TEST_F(SlottedPageTest, RemoveShiftsSlots) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("a")).ok());
  ASSERT_TRUE(page_.InsertAt(1, Slice("b")).ok());
  ASSERT_TRUE(page_.InsertAt(2, Slice("c")).ok());
  page_.RemoveAt(1);
  ASSERT_EQ(page_.slot_count(), 2);
  EXPECT_EQ(page_.PayloadAt(0), Slice("a"));
  EXPECT_EQ(page_.PayloadAt(1), Slice("c"));
  EXPECT_TRUE(page_.Validate().ok());
}

TEST_F(SlottedPageTest, ReplaceSmallerInPlace) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("longvalue")).ok());
  ASSERT_TRUE(page_.ReplaceAt(0, Slice("tiny")).ok());
  EXPECT_EQ(page_.PayloadAt(0), Slice("tiny"));
  EXPECT_TRUE(page_.Validate().ok());
}

TEST_F(SlottedPageTest, ReplaceLargerRelocates) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("a")).ok());
  ASSERT_TRUE(page_.InsertAt(1, Slice("z")).ok());
  std::string big(300, 'x');
  ASSERT_TRUE(page_.ReplaceAt(0, Slice(big)).ok());
  EXPECT_EQ(page_.PayloadAt(0).ToString(), big);
  EXPECT_EQ(page_.PayloadAt(1), Slice("z"));
  EXPECT_TRUE(page_.Validate().ok());
}

TEST_F(SlottedPageTest, FillsUntilBusyThenCompactionRecovers) {
  // Fill the page with 100-byte payloads until full.
  std::string payload(100, 'p');
  int inserted = 0;
  while (page_.InsertAt(page_.slot_count(), Slice(payload)).ok()) {
    ++inserted;
  }
  EXPECT_GT(inserted, 50);
  // Remove every other record; holes become garbage.
  for (uint16_t i = 0; i < page_.slot_count();) {
    page_.RemoveAt(i);
    ++i;  // skip the shifted-in record
  }
  // Now inserts must succeed again via compaction.
  Status s = page_.InsertAt(0, Slice(payload));
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(page_.Validate().ok());
}

TEST_F(SlottedPageTest, TrailerRoundTrip) {
  std::string trailer = "ablsn-serialized-bytes";
  ASSERT_TRUE(page_.WriteTrailer(Slice(trailer)));
  EXPECT_EQ(page_.ReadTrailer().ToString(), trailer);
  EXPECT_EQ(page_.trailer_len(), trailer.size());
}

TEST_F(SlottedPageTest, TrailerRejectsOverflow) {
  std::string big(kDefaultTrailerCapacity + 1, 't');
  EXPECT_FALSE(page_.WriteTrailer(Slice(big)));
}

TEST_F(SlottedPageTest, TrailerDoesNotCorruptRecords) {
  ASSERT_TRUE(page_.InsertAt(0, Slice("record")).ok());
  std::string trailer(kDefaultTrailerCapacity, 'z');
  ASSERT_TRUE(page_.WriteTrailer(Slice(trailer)));
  EXPECT_EQ(page_.PayloadAt(0), Slice("record"));
  EXPECT_TRUE(page_.Validate().ok());
}

TEST_F(SlottedPageTest, HeaderFieldsRoundTrip) {
  page_.set_dlsn(123456789ull);
  page_.set_next_page(77);
  page_.set_prev_page(66);
  page_.set_table_id(9);
  page_.set_flags(0x5);
  EXPECT_EQ(page_.dlsn(), 123456789ull);
  EXPECT_EQ(page_.next_page(), 77u);
  EXPECT_EQ(page_.prev_page(), 66u);
  EXPECT_EQ(page_.table_id(), 9u);
  EXPECT_EQ(page_.flags(), 0x5);
}

TEST_F(SlottedPageTest, RejectsOversizedPayload) {
  std::string huge(70000, 'x');
  EXPECT_TRUE(page_.InsertAt(0, Slice(huge)).IsInvalidArgument());
}

// Property test: random inserts/removes/replaces mirrored against a
// std::vector model; the page must match the model at every step.
TEST(SlottedPagePropertyTest, RandomOpsMatchModel) {
  Random rng(2024);
  for (int round = 0; round < 20; ++round) {
    std::vector<char> buf(kDefaultPageSize);
    SlottedPage page(buf.data(), kDefaultPageSize, kDefaultTrailerCapacity);
    page.Init(1, PageType::kLeaf, 0, 1);
    std::vector<std::string> model;

    for (int step = 0; step < 500; ++step) {
      const uint64_t action = rng.Uniform(3);
      if (action == 0 || model.empty()) {
        std::string payload = rng.Bytes(1 + rng.Uniform(120));
        uint16_t pos = static_cast<uint16_t>(rng.Uniform(model.size() + 1));
        Status s = page.InsertAt(pos, Slice(payload));
        if (s.ok()) {
          model.insert(model.begin() + pos, payload);
        } else {
          ASSERT_TRUE(s.IsBusy()) << s.ToString();
        }
      } else if (action == 1) {
        uint16_t pos = static_cast<uint16_t>(rng.Uniform(model.size()));
        page.RemoveAt(pos);
        model.erase(model.begin() + pos);
      } else {
        uint16_t pos = static_cast<uint16_t>(rng.Uniform(model.size()));
        std::string payload = rng.Bytes(1 + rng.Uniform(120));
        Status s = page.ReplaceAt(pos, Slice(payload));
        if (s.ok()) model[pos] = payload;
      }
      ASSERT_EQ(page.slot_count(), model.size());
      ASSERT_TRUE(page.Validate().ok());
    }
    // Final deep comparison.
    for (size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(page.PayloadAt(static_cast<uint16_t>(i)).ToString(),
                model[i]);
    }
  }
}

}  // namespace
}  // namespace untx
