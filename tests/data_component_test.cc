// DataComponent tests. The test body plays the role of a (correct) TC:
// it assigns monotonically increasing LSNs, never sends conflicting
// operations concurrently, and feeds EOSL / LWM control messages.
#include "dc/data_component.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/random.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

class MiniTc {
 public:
  explicit MiniTc(DataComponent* dc, TcId tc = 1) : dc_(dc), tc_(tc) {
    Arm();
  }

  /// What a real TC does at Start() and after completing a redo resend:
  /// re-arm the LWM validity contract (see BufferPool::AllowLwm).
  void Arm() {
    ControlRequest req;
    req.type = ControlType::kRestartEnd;
    req.tc_id = tc_;
    dc_->Control(req);
  }

  Lsn NextLsn() { return next_lsn_++; }

  OperationReply Op(OpType op, const std::string& key,
                    const std::string& value = "", bool versioned = false,
                    TableId table = kTable) {
    OperationRequest req;
    req.tc_id = tc_;
    req.lsn = NextLsn();
    req.op = op;
    req.table_id = table;
    req.key = key;
    req.value = value;
    req.versioned = versioned;
    return dc_->Perform(req);
  }

  OperationReply Read(const std::string& key,
                      ReadFlavor flavor = ReadFlavor::kOwn,
                      TableId table = kTable) {
    OperationRequest req;
    req.tc_id = tc_;
    req.lsn = NextLsn();
    req.op = OpType::kRead;
    req.table_id = table;
    req.key = key;
    req.read_flavor = flavor;
    return dc_->Perform(req);
  }

  OperationReply Scan(const std::string& from, const std::string& to,
                      uint32_t limit = 0,
                      ReadFlavor flavor = ReadFlavor::kOwn) {
    OperationRequest req;
    req.tc_id = tc_;
    req.lsn = NextLsn();
    req.op = OpType::kScanRange;
    req.table_id = kTable;
    req.key = from;
    req.end_key = to;
    req.limit = limit;
    req.read_flavor = flavor;
    return dc_->Perform(req);
  }

  /// Declares everything sent so far replied + stable (the test waits for
  /// each reply synchronously, so this is truthful).
  void PushDurability() {
    ControlRequest eosl;
    eosl.type = ControlType::kEndOfStableLog;
    eosl.tc_id = tc_;
    eosl.lsn = next_lsn_ - 1;
    dc_->Control(eosl);
    ControlRequest lwm;
    lwm.type = ControlType::kLowWaterMark;
    lwm.tc_id = tc_;
    lwm.lsn = next_lsn_ - 1;
    dc_->Control(lwm);
  }

  Lsn last_lsn() const { return next_lsn_ - 1; }
  TcId tc() const { return tc_; }

  /// Re-sends a request with a previously used LSN (simulating a lost
  /// reply + resend).
  OperationReply Resend(OpType op, Lsn lsn, const std::string& key,
                        const std::string& value = "") {
    OperationRequest req;
    req.tc_id = tc_;
    req.lsn = lsn;
    req.op = op;
    req.table_id = kTable;
    req.key = key;
    req.value = value;
    return dc_->Perform(req);
  }

 private:
  DataComponent* dc_;
  TcId tc_;
  Lsn next_lsn_ = 1;
};

class DataComponentTest : public ::testing::Test {
 protected:
  void SetUp() override { Build({}); }

  void Build(DataComponentOptions options) {
    StableStoreOptions store_options;
    store_options.page_size = 1024;  // small pages force SMOs
    store_options.trailer_capacity = 128;
    store_ = std::make_unique<StableStore>(store_options);
    options.max_value_size = 256;
    dc_ = std::make_unique<DataComponent>(store_.get(), options);
    ASSERT_TRUE(dc_->Initialize().ok());
    tc_ = std::make_unique<MiniTc>(dc_.get());
    ASSERT_TRUE(tc_->Op(OpType::kCreateTable, "").status.ok());
  }

  std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%06d", i);
    return buf;
  }

  std::unique_ptr<StableStore> store_;
  std::unique_ptr<DataComponent> dc_;
  std::unique_ptr<MiniTc> tc_;
};

TEST_F(DataComponentTest, InsertReadDeleteCycle) {
  EXPECT_TRUE(tc_->Op(OpType::kInsert, "alpha", "1").status.ok());
  auto read = tc_->Read("alpha");
  ASSERT_TRUE(read.status.ok());
  EXPECT_EQ(read.value, "1");
  auto del = tc_->Op(OpType::kDelete, "alpha");
  ASSERT_TRUE(del.status.ok());
  EXPECT_TRUE(del.has_before);
  EXPECT_EQ(del.value, "1");
  EXPECT_TRUE(tc_->Read("alpha").status.IsNotFound());
}

TEST_F(DataComponentTest, InsertDuplicateKeyFails) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v1").status.ok());
  EXPECT_TRUE(tc_->Op(OpType::kInsert, "k", "v2").status.IsAlreadyExists());
}

TEST_F(DataComponentTest, UpdateReturnsBeforeImage) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "old").status.ok());
  auto up = tc_->Op(OpType::kUpdate, "k", "new");
  ASSERT_TRUE(up.status.ok());
  EXPECT_TRUE(up.has_before);
  EXPECT_EQ(up.value, "old") << "reply must carry undo info for the TC";
  EXPECT_EQ(tc_->Read("k").value, "new");
}

TEST_F(DataComponentTest, UpdateMissingKeyIsNotFound) {
  EXPECT_TRUE(tc_->Op(OpType::kUpdate, "ghost", "v").status.IsNotFound());
  EXPECT_TRUE(tc_->Op(OpType::kDelete, "ghost").status.IsNotFound());
}

TEST_F(DataComponentTest, UpsertInsertsThenUpdates) {
  auto first = tc_->Op(OpType::kUpsert, "k", "v1");
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.has_before);
  auto second = tc_->Op(OpType::kUpsert, "k", "v2");
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.has_before);
  EXPECT_EQ(second.value, "v1");
  EXPECT_EQ(tc_->Read("k").value, "v2");
}

TEST_F(DataComponentTest, ManyInsertsForceSplitsAndStayReadable) {
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kInsert, Key(i), "value-" + Key(i))
                    .status.ok())
        << i;
  }
  EXPECT_GT(dc_->btree()->stats().splits, 0u) << "small pages must split";
  for (int i = 0; i < n; ++i) {
    auto read = tc_->Read(Key(i));
    ASSERT_TRUE(read.status.ok()) << i;
    ASSERT_EQ(read.value, "value-" + Key(i));
  }
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
}

TEST_F(DataComponentTest, ScanRangeReturnsSortedWindow) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kInsert, Key(i), std::to_string(i))
                    .status.ok());
  }
  auto scan = tc_->Scan(Key(100), Key(110), 100);
  ASSERT_TRUE(scan.status.ok());
  ASSERT_EQ(scan.keys.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scan.keys[i], Key(100 + i));
    EXPECT_EQ(scan.values[i], std::to_string(100 + i));
  }
}

TEST_F(DataComponentTest, ScanHonorsLimit) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kInsert, Key(i), "v").status.ok());
  }
  auto scan = tc_->Scan(Key(0), "", 7);
  ASSERT_TRUE(scan.status.ok());
  EXPECT_EQ(scan.keys.size(), 7u);
}

TEST_F(DataComponentTest, ProbeNextReturnsKeysForLocking) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kInsert, Key(i * 2), "v").status.ok());
  }
  OperationRequest req;
  req.tc_id = tc_->tc();
  req.lsn = tc_->NextLsn();
  req.op = OpType::kProbeNext;
  req.table_id = kTable;
  req.key = Key(10);
  req.limit = 5;
  auto reply = dc_->Perform(req);
  ASSERT_TRUE(reply.status.ok());
  ASSERT_EQ(reply.keys.size(), 5u);
  EXPECT_EQ(reply.keys[0], Key(10));  // inclusive probe
  EXPECT_EQ(reply.keys[1], Key(12));
}

TEST_F(DataComponentTest, MassDeleteTriggersConsolidation) {
  const int n = 600;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kInsert, Key(i), "vvvvvvvvvv").status.ok());
  }
  const uint64_t splits = dc_->btree()->stats().splits;
  ASSERT_GT(splits, 0u);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kDelete, Key(i)).status.ok()) << i;
  }
  EXPECT_GT(dc_->btree()->stats().consolidates, 0u);
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
  // Everything is gone.
  auto scan = tc_->Scan("", "", 1000);
  EXPECT_EQ(scan.keys.size(), 0u);
}

TEST_F(DataComponentTest, ResendIsIdempotent) {
  auto insert = tc_->Op(OpType::kInsert, "k", "v");
  ASSERT_TRUE(insert.status.ok());
  // The "reply was lost"; the TC resends with the same LSN.
  auto dup = tc_->Resend(OpType::kInsert, insert.lsn, "k", "v");
  EXPECT_TRUE(dup.status.ok()) << dup.status.ToString();
  EXPECT_TRUE(dup.was_duplicate);
  // The record was not doubled.
  auto scan = tc_->Scan("", "", 10);
  EXPECT_EQ(scan.keys.size(), 1u);
}

TEST_F(DataComponentTest, ResendOfUpdateReturnsCachedBeforeImage) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "before").status.ok());
  auto up = tc_->Op(OpType::kUpdate, "k", "after");
  ASSERT_TRUE(up.status.ok());
  auto dup = tc_->Resend(OpType::kUpdate, up.lsn, "k", "after");
  ASSERT_TRUE(dup.status.ok());
  EXPECT_TRUE(dup.was_duplicate);
  EXPECT_TRUE(dup.has_before);
  EXPECT_EQ(dup.value, "before")
      << "resend must return the original undo image, not re-execute";
  EXPECT_EQ(tc_->Read("k").value, "after");
}

TEST_F(DataComponentTest, OutOfOrderLsnsBothApply) {
  // Simulate TC multi-threading: two non-conflicting ops dispatched with
  // out-of-order LSNs (§5.1). Both must apply exactly once.
  const Lsn l1 = tc_->NextLsn();
  const Lsn l2 = tc_->NextLsn();
  // Higher LSN arrives first.
  auto r2 = tc_->Resend(OpType::kInsert, l2, "bbb", "2");
  ASSERT_TRUE(r2.status.ok());
  auto r1 = tc_->Resend(OpType::kInsert, l1, "aaa", "1");
  ASSERT_TRUE(r1.status.ok()) << "abLSN must not treat lower LSN as covered";
  EXPECT_EQ(tc_->Read("aaa").value, "1");
  EXPECT_EQ(tc_->Read("bbb").value, "2");
}

TEST_F(DataComponentTest, ConflictSentinelDetectsTcBug) {
  // Two different LSNs for the same key sent concurrently is a TC
  // contract violation; the sentinel must catch at least some. The
  // overlap is scheduler-dependent: gate both threads on a start barrier
  // and retry the burst until a conflict is observed (bounded rounds).
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "hot", "v").status.ok());
  std::atomic<int> conflicts{0};
  for (int round = 0; round < 50 && conflicts.load() == 0 &&
                      dc_->stats().conflicts_detected.load() == 0;
       ++round) {
    std::atomic<bool> go{false};
    auto burst = [&](Lsn base) {
      while (!go.load()) {
      }
      for (int i = 0; i < 5000; ++i) {
        OperationRequest req;
        req.tc_id = 1;
        req.lsn = base + static_cast<Lsn>(round) * 5000 + i;
        req.op = OpType::kUpdate;
        req.table_id = kTable;
        req.key = "hot";
        req.value = base < 1000000 ? "a" : "b";
        if (dc_->Perform(req).status.IsConflict()) conflicts.fetch_add(1);
      }
    };
    std::thread t1(burst, Lsn{100000});
    std::thread t2(burst, Lsn{2000000});
    go.store(true);
    t1.join();
    t2.join();
  }
  EXPECT_GT(conflicts.load() +
                static_cast<int>(dc_->stats().conflicts_detected.load()),
            0);
}

TEST_F(DataComponentTest, FlushRequiresEosl) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v").status.ok());
  // Without EOSL the page reflects ops beyond the stable TC log: the
  // causality gate must hold it back.
  EXPECT_GT(dc_->pool()->FlushAllEligible(), 0u);
  tc_->PushDurability();
  EXPECT_EQ(dc_->pool()->FlushAllEligible(), 0u);
  EXPECT_EQ(dc_->pool()->DirtyCount(), 0u);
}

TEST_F(DataComponentTest, CheckpointFlushesOpsBelowRssp) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kInsert, Key(i), "v").status.ok());
  }
  tc_->PushDurability();
  ControlRequest cp;
  cp.type = ControlType::kCheckpoint;
  cp.tc_id = tc_->tc();
  cp.lsn = tc_->last_lsn() + 1;
  auto reply = dc_->Control(cp);
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  // All data pages with ops below the new RSSP are stable now.
  EXPECT_EQ(dc_->pool()->MinDirtyFirstOpLsn(), kMaxLsn);
}

TEST_F(DataComponentTest, CrashLosesCacheRecoverRestoresFromStable) {
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kInsert, Key(i), "stable-v").status.ok());
  }
  tc_->PushDurability();
  ControlRequest cp;
  cp.type = ControlType::kCheckpoint;
  cp.tc_id = tc_->tc();
  cp.lsn = tc_->last_lsn() + 1;
  ASSERT_TRUE(dc_->Control(cp).status.ok());

  dc_->Crash();
  EXPECT_TRUE(tc_->Read(Key(0)).status.IsCrashed());
  dc_->Restore();
  ASSERT_TRUE(dc_->Recover().ok());
  tc_->Arm();

  for (int i = 0; i < n; ++i) {
    auto read = tc_->Read(Key(i));
    ASSERT_TRUE(read.status.ok()) << i << ": " << read.status.ToString();
    ASSERT_EQ(read.value, "stable-v");
  }
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
}

TEST_F(DataComponentTest, CrashBeforeDurabilityLosesUnstableOps) {
  // Ops applied but never made stable (no EOSL, no flush) vanish with the
  // cache — exactly what TC resend-from-RSSP repairs.
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "volatile", "v").status.ok());
  dc_->Crash();
  dc_->Restore();
  ASSERT_TRUE(dc_->Recover().ok());
  tc_->Arm();
  // Even the CreateTable (LSN 1) was volatile — its SMO batch had not
  // been forced. The TC recovery protocol resends everything from the
  // RSSP in LSN order, so the table comes back before the insert.
  auto create = tc_->Resend(OpType::kCreateTable, 1, "");
  ASSERT_TRUE(create.status.ok()) << create.status.ToString();
  EXPECT_TRUE(tc_->Read("volatile").status.IsNotFound());
  auto again = tc_->Resend(OpType::kInsert, 2, "volatile", "v");
  EXPECT_TRUE(again.status.ok()) << again.status.ToString();
  EXPECT_EQ(tc_->Read("volatile").value, "v");
}

TEST_F(DataComponentTest, SmoSurvivesCrashViaDcLogReplay) {
  // Force splits, make the TC log "stable" so the DC log batches can be
  // forced, but do NOT checkpoint pages — recovery must rebuild structure
  // from the DC log, then reads (after resends) see everything.
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tc_->Op(OpType::kInsert, Key(i), "v").status.ok());
  }
  ASSERT_GT(dc_->btree()->stats().splits, 0u);
  tc_->PushDurability();  // EOSL: DC log batches become forceable
  dc_->pool()->ForceDcLog();

  dc_->Crash();
  dc_->Restore();
  ASSERT_TRUE(dc_->Recover().ok());
  tc_->Arm();
  ASSERT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());

  // Replay the TC's ops (recovery resend); all must be idempotent or
  // re-applied, never duplicated.
  for (int i = 0; i < n; ++i) {
    auto reply = tc_->Resend(OpType::kInsert, 2 + i, Key(i), "v");
    ASSERT_TRUE(reply.status.ok()) << i << ": " << reply.status.ToString();
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tc_->Read(Key(i)).status.ok()) << i;
  }
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
}

// ---- Versioning (§6.2.2) ---------------------------------------------------

TEST_F(DataComponentTest, VersionedUpdateKeepsBeforeForReadCommitted) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "committed").status.ok());
  // Promote the insert so it is a plain committed record.
  ASSERT_TRUE(tc_->Op(OpType::kPromoteVersion, "k").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kUpdate, "k", "uncommitted", true).status.ok());

  EXPECT_EQ(tc_->Read("k", ReadFlavor::kOwn).value, "uncommitted");
  EXPECT_EQ(tc_->Read("k", ReadFlavor::kDirty).value, "uncommitted");
  EXPECT_EQ(tc_->Read("k", ReadFlavor::kReadCommitted).value, "committed");
}

TEST_F(DataComponentTest, PromoteMakesUpdateCommitted) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v1").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kUpdate, "k", "v2", true).status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kPromoteVersion, "k").status.ok());
  EXPECT_EQ(tc_->Read("k", ReadFlavor::kReadCommitted).value, "v2");
}

TEST_F(DataComponentTest, RollbackRestoresBefore) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v1").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kPromoteVersion, "k").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kUpdate, "k", "v2", true).status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kRollbackVersion, "k").status.ok());
  EXPECT_EQ(tc_->Read("k", ReadFlavor::kOwn).value, "v1");
  EXPECT_EQ(tc_->Read("k", ReadFlavor::kReadCommitted).value, "v1");
}

TEST_F(DataComponentTest, VersionedInsertInvisibleAtReadCommitted) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "new", true).status.ok());
  EXPECT_EQ(tc_->Read("k", ReadFlavor::kOwn).value, "new");
  EXPECT_TRUE(tc_->Read("k", ReadFlavor::kReadCommitted).status.IsNotFound())
      << "§6.2.2: insert has a null before version";
  ASSERT_TRUE(tc_->Op(OpType::kPromoteVersion, "k").status.ok());
  EXPECT_EQ(tc_->Read("k", ReadFlavor::kReadCommitted).value, "new");
}

TEST_F(DataComponentTest, RollbackOfVersionedInsertRemovesRecord) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "new", true).status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kRollbackVersion, "k").status.ok());
  EXPECT_TRUE(tc_->Read("k", ReadFlavor::kOwn).status.IsNotFound());
}

TEST_F(DataComponentTest, VersionedDeleteVisibleUntilPromote) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kPromoteVersion, "k").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kDelete, "k", "", true).status.ok());
  EXPECT_TRUE(tc_->Read("k", ReadFlavor::kOwn).status.IsNotFound());
  EXPECT_EQ(tc_->Read("k", ReadFlavor::kReadCommitted).value, "v")
      << "readers see the before version until the delete commits";
  ASSERT_TRUE(tc_->Op(OpType::kPromoteVersion, "k").status.ok());
  EXPECT_TRUE(
      tc_->Read("k", ReadFlavor::kReadCommitted).status.IsNotFound());
}

TEST_F(DataComponentTest, PromoteAndRollbackAreIdempotent) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v", true).status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kPromoteVersion, "k").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kPromoteVersion, "k").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kRollbackVersion, "k").status.ok());
  EXPECT_EQ(tc_->Read("k").value, "v") << "rollback after promote is a no-op";
}

// ---- Page-sync strategies (§5.1.2) ------------------------------------------

class PageSyncTest : public DataComponentTest {};

TEST_F(PageSyncTest, StrategyWaitForLwmDefersUntilCollapse) {
  DataComponentOptions options;
  options.buffer_pool.strategy = PageSyncStrategy::kWaitForLwm;
  Build(options);
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v").status.ok());
  // EOSL alone is not enough: the abLSN has not collapsed.
  ControlRequest eosl;
  eosl.type = ControlType::kEndOfStableLog;
  eosl.tc_id = tc_->tc();
  eosl.lsn = tc_->last_lsn();
  dc_->Control(eosl);
  EXPECT_GT(dc_->pool()->FlushAllEligible(), 0u);
  EXPECT_GT(dc_->pool()->stats().flush_deferrals, 0u);
  // LWM collapses the abLSN; the flush goes through.
  ControlRequest lwm;
  lwm.type = ControlType::kLowWaterMark;
  lwm.tc_id = tc_->tc();
  lwm.lsn = tc_->last_lsn();
  dc_->Control(lwm);
  EXPECT_EQ(dc_->pool()->FlushAllEligible(), 0u);
}

TEST_F(PageSyncTest, StrategyStoreFullFlushesWithoutLwm) {
  DataComponentOptions options;
  options.buffer_pool.strategy = PageSyncStrategy::kStoreFull;
  Build(options);
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v").status.ok());
  ControlRequest eosl;
  eosl.type = ControlType::kEndOfStableLog;
  eosl.tc_id = tc_->tc();
  eosl.lsn = tc_->last_lsn();
  dc_->Control(eosl);
  // No LWM needed: the full abLSN is serialized into the trailer.
  EXPECT_EQ(dc_->pool()->FlushAllEligible(), 0u);
  EXPECT_GT(dc_->pool()->stats().trailer_bytes_written, 0u);
}

TEST_F(PageSyncTest, TrailerAbLsnSurvivesReload) {
  DataComponentOptions options;
  options.buffer_pool.strategy = PageSyncStrategy::kStoreFull;
  Build(options);
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v").status.ok());
  const Lsn op_lsn = tc_->last_lsn();
  ControlRequest eosl;
  eosl.type = ControlType::kEndOfStableLog;
  eosl.tc_id = tc_->tc();
  eosl.lsn = op_lsn;
  dc_->Control(eosl);
  ASSERT_EQ(dc_->pool()->FlushAllEligible(), 0u);
  dc_->Crash();
  dc_->Restore();
  ASSERT_TRUE(dc_->Recover().ok());
  tc_->Arm();
  // The reloaded page must remember the op in its abLSN: the resend is
  // detected as a duplicate.
  auto dup = tc_->Resend(OpType::kInsert, op_lsn, "k", "v");
  ASSERT_TRUE(dup.status.ok());
  EXPECT_TRUE(dup.was_duplicate);
}

// ---- TC-crash reset (§5.3.2) -------------------------------------------------

TEST_F(DataComponentTest, ResetDropsPagesWithLostOps) {
  // Phase 1: make some committed state durable.
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "stable-key", "sv").status.ok());
  tc_->PushDurability();
  ASSERT_EQ(dc_->pool()->FlushAllEligible(), 0u);
  const Lsn stable_end = tc_->last_lsn();

  // Phase 2: ops beyond the stable TC log (these will be "lost").
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "lost-key", "lv").status.ok());
  ASSERT_TRUE(tc_->Op(OpType::kUpdate, "stable-key", "l2").status.ok());

  // TC crashes, losing its volatile log tail; restart resets the DC.
  ControlRequest reset;
  reset.type = ControlType::kRestartBegin;
  reset.tc_id = tc_->tc();
  reset.lsn = stable_end;
  auto reply = dc_->Control(reset);
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_TRUE(reply.escalate_tcs.empty());

  // Lost effects are gone; stable effects remain.
  EXPECT_TRUE(tc_->Read("lost-key").status.IsNotFound());
  EXPECT_EQ(tc_->Read("stable-key").value, "sv");
  EXPECT_GT(dc_->stats().pages_reset_dropped.load(), 0u);
}

TEST_F(DataComponentTest, ResetKeepsPagesWithoutLostOps) {
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k", "v").status.ok());
  tc_->PushDurability();
  const Lsn stable_end = tc_->last_lsn();
  ControlRequest reset;
  reset.type = ControlType::kRestartBegin;
  reset.tc_id = tc_->tc();
  reset.lsn = stable_end;
  ASSERT_TRUE(dc_->Control(reset).status.ok());
  EXPECT_EQ(tc_->Read("k").value, "v") << "nothing beyond LSNst: no reset";
}

// ---- Multi-TC (§6) ----------------------------------------------------------

TEST_F(DataComponentTest, TwoTcsDisjointKeysOnSharedDc) {
  MiniTc tc2(dc_.get(), 2);
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "a:1", "from-tc1").status.ok());
  ASSERT_TRUE(tc2.Op(OpType::kInsert, "b:1", "from-tc2").status.ok());
  EXPECT_EQ(tc_->Read("b:1", ReadFlavor::kDirty).value, "from-tc2");
  EXPECT_EQ(tc2.Read("a:1", ReadFlavor::kDirty).value, "from-tc1");
}

TEST_F(DataComponentTest, PerTcResetOnSharedPage) {
  MiniTc tc2(dc_.get(), 2);
  // Both TCs write to the same page; both become durable.
  ASSERT_TRUE(tc_->Op(OpType::kInsert, "k1", "tc1-stable").status.ok());
  ASSERT_TRUE(tc2.Op(OpType::kInsert, "k2", "tc2-stable").status.ok());
  tc_->PushDurability();
  tc2.PushDurability();
  ASSERT_EQ(dc_->pool()->FlushAllEligible(), 0u);
  const Lsn tc1_stable_end = tc_->last_lsn();

  // TC1 writes more (lost); TC2 writes more (NOT lost — TC2 is healthy
  // and its EOSL has advanced past the op).
  ASSERT_TRUE(tc_->Op(OpType::kUpdate, "k1", "tc1-lost").status.ok());
  ASSERT_TRUE(tc2.Op(OpType::kUpdate, "k2", "tc2-kept").status.ok());
  tc2.PushDurability();

  ControlRequest reset;
  reset.type = ControlType::kRestartBegin;
  reset.tc_id = tc_->tc();
  reset.lsn = tc1_stable_end;
  auto reply = dc_->Control(reset);
  ASSERT_TRUE(reply.status.ok());
  EXPECT_TRUE(reply.escalate_tcs.empty())
      << "per-record merge should spare the healthy TC";

  EXPECT_EQ(tc_->Read("k1").value, "tc1-stable") << "lost op rolled back";
  EXPECT_EQ(tc2.Read("k2").value, "tc2-kept")
      << "§6.1.2: records updated by other TCs are not reset";
  EXPECT_GT(dc_->stats().pages_reset_merged.load(), 0u);
}

// ---- Property: random ops against a model ----------------------------------

class DcModelTest : public DataComponentTest,
                    public ::testing::WithParamInterface<uint64_t> {};

TEST_P(DcModelTest, RandomOpsMatchInMemoryModel) {
  Random rng(GetParam());
  std::map<std::string, std::string> model;
  for (int step = 0; step < 1200; ++step) {
    const std::string key = Key(static_cast<int>(rng.Uniform(150)));
    const uint64_t action = rng.Uniform(4);
    if (action == 0) {
      const std::string value = rng.Bytes(1 + rng.Uniform(40));
      auto reply = tc_->Op(OpType::kInsert, key, value);
      if (model.count(key)) {
        ASSERT_TRUE(reply.status.IsAlreadyExists()) << key;
      } else {
        ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
        model[key] = value;
      }
    } else if (action == 1) {
      const std::string value = rng.Bytes(1 + rng.Uniform(40));
      auto reply = tc_->Op(OpType::kUpdate, key, value);
      if (model.count(key)) {
        ASSERT_TRUE(reply.status.ok());
        ASSERT_EQ(reply.value, model[key]) << "undo image mismatch";
        model[key] = value;
      } else {
        ASSERT_TRUE(reply.status.IsNotFound());
      }
    } else if (action == 2) {
      auto reply = tc_->Op(OpType::kDelete, key);
      if (model.count(key)) {
        ASSERT_TRUE(reply.status.ok());
        ASSERT_EQ(reply.value, model[key]);
        model.erase(key);
      } else {
        ASSERT_TRUE(reply.status.IsNotFound());
      }
    } else {
      auto reply = tc_->Read(key);
      if (model.count(key)) {
        ASSERT_TRUE(reply.status.ok());
        ASSERT_EQ(reply.value, model[key]);
      } else {
        ASSERT_TRUE(reply.status.IsNotFound());
      }
    }
  }
  // Full scan must equal the model exactly.
  auto scan = tc_->Scan("", "", 100000);
  ASSERT_TRUE(scan.status.ok());
  ASSERT_EQ(scan.keys.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(scan.keys[i], k);
    EXPECT_EQ(scan.values[i], v);
    ++i;
  }
  EXPECT_TRUE(dc_->btree()->CheckInvariants(kTable).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcModelTest,
                         ::testing::Values(1, 2, 3, 42, 777));

}  // namespace
}  // namespace untx
