#include "tc/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tc/transaction_component.h"

namespace untx {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(2, RecordLockName(1, "k"), LockMode::kShared).ok());
  EXPECT_EQ(lm.HeldCount(1), 1u);
  EXPECT_EQ(lm.HeldCount(2), 1u);
}

TEST(LockManagerTest, ExclusiveBlocksShared) {
  LockManagerOptions options;
  options.wait_timeout_ms = 50;
  LockManager lm(options);
  ASSERT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kExclusive).ok());
  EXPECT_TRUE(
      lm.Lock(2, RecordLockName(1, "k"), LockMode::kShared).IsTimedOut());
}

TEST(LockManagerTest, ReentrantAndModeSubsumption) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kShared).ok());
  EXPECT_EQ(lm.HeldCount(1), 1u);
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kExclusive).ok());
  EXPECT_EQ(lm.stats().upgrades, 1u);
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Status s = lm.Lock(2, RecordLockName(1, "k"), LockMode::kExclusive);
    granted.store(s.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, RecordLockName(1, "a"), LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Lock(2, RecordLockName(1, "b"), LockMode::kExclusive).ok());
  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    Status s = lm.Lock(1, RecordLockName(1, "b"), LockMode::kExclusive);
    if (s.IsDeadlock()) deadlocks.fetch_add(1);
    if (!s.ok()) lm.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread t2([&] {
    Status s = lm.Lock(2, RecordLockName(1, "a"), LockMode::kExclusive);
    if (s.IsDeadlock()) deadlocks.fetch_add(1);
    if (!s.ok()) lm.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1) << "one member of the cycle must abort";
}

TEST(LockManagerTest, FifoFairnessNoBarging) {
  LockManagerOptions options;
  options.wait_timeout_ms = 2000;
  LockManager lm(options);
  ASSERT_TRUE(lm.Lock(1, RecordLockName(1, "k"), LockMode::kExclusive).ok());
  std::atomic<bool> writer_granted{false};
  std::thread writer([&] {
    ASSERT_TRUE(lm.Lock(2, RecordLockName(1, "k"), LockMode::kExclusive).ok());
    writer_granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // A reader arriving after the queued writer must not starve it.
  std::thread reader([&] {
    Status s = lm.Lock(3, RecordLockName(1, "k"), LockMode::kShared);
    // By FIFO, the writer went first.
    EXPECT_TRUE(writer_granted.load() || !s.ok());
    lm.ReleaseAll(3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm.ReleaseAll(1);
  writer.join();
  lm.ReleaseAll(2);
  reader.join();
}

TEST(LockManagerTest, ReleaseAllDropsEverything) {
  LockManager lm;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        lm.Lock(1, RecordLockName(1, std::to_string(i)), LockMode::kShared)
            .ok());
  }
  EXPECT_EQ(lm.HeldCount(1), 10u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(1), 0u);
}

TEST(LockManagerTest, DistinctNameSpaces) {
  // Record, range, and EOF lock names must never collide.
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, RecordLockName(1, "x"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(2, RangeLockName(1, 0), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(3, TableEofLockName(1), LockMode::kExclusive).ok());
}

TEST(LockManagerTest, StressManyThreadsManyKeys) {
  LockManager lm;
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&lm, &granted, t] {
      for (int i = 0; i < 500; ++i) {
        const TxnId txn = t * 1000 + i + 1;
        const std::string key = std::to_string(i % 37);
        if (lm.Lock(txn, RecordLockName(1, key), LockMode::kExclusive)
                .ok()) {
          granted.fetch_add(1);
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), 2000u);
}

TEST(RangePartitionTest, PartitionOfRespectsBoundaries) {
  RangePartitionConfig cfg;
  cfg.boundaries = {"g", "n", "t"};
  EXPECT_EQ(cfg.Count(), 4u);
  EXPECT_EQ(cfg.PartitionOf("a"), 0u);
  EXPECT_EQ(cfg.PartitionOf("g"), 1u);
  EXPECT_EQ(cfg.PartitionOf("m"), 1u);
  EXPECT_EQ(cfg.PartitionOf("n"), 2u);
  EXPECT_EQ(cfg.PartitionOf("z"), 3u);
}

TEST(RangePartitionTest, OverlappingRange) {
  RangePartitionConfig cfg;
  cfg.boundaries = {"g", "n", "t"};
  auto [lo, hi] = cfg.Overlapping("c", "p");
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 2u);
  auto [lo2, hi2] = cfg.Overlapping("h", "");
  EXPECT_EQ(lo2, 1u);
  EXPECT_EQ(hi2, 3u);
}

TEST(RangePartitionTest, EmptyConfigIsWholeTable) {
  RangePartitionConfig cfg;
  EXPECT_EQ(cfg.Count(), 1u);
  EXPECT_EQ(cfg.PartitionOf("anything"), 0u);
  auto [lo, hi] = cfg.Overlapping("a", "z");
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
}

}  // namespace
}  // namespace untx
