#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace untx {
namespace {

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xbeef);
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice in(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(GetFixed16(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  ASSERT_TRUE(GetFixed64(&in, &c));
  EXPECT_EQ(a, 0xbeef);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            ~0ull};
  std::string buf;
  for (uint64_t v : cases) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : cases) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RejectsTruncated) {
  std::string buf;
  PutVarint32(&buf, 1u << 30);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint32_t v;
    EXPECT_FALSE(GetVarint32(&in, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  Random rng(123);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> rng.Uniform(64);
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  PutLengthPrefixedSlice(&buf, Slice("world!"));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a, Slice("hello"));
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c, Slice("world!"));
}

TEST(CodingTest, LengthPrefixedSliceRejectsUnderflow) {
  std::string buf;
  PutVarint32(&buf, 100);  // claims 100 bytes follow
  buf += "short";
  Slice in(buf);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&in, &out));
}

TEST(CodingTest, RandomizedRoundTrip) {
  Random rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::string buf;
    std::vector<uint64_t> values;
    std::vector<std::string> slices;
    for (int i = 0; i < 20; ++i) {
      uint64_t v = rng.Next() >> rng.Uniform(64);
      values.push_back(v);
      PutVarint64(&buf, v);
      std::string s = rng.Bytes(rng.Uniform(50));
      slices.push_back(s);
      PutLengthPrefixedSlice(&buf, Slice(s));
    }
    Slice in(buf);
    for (int i = 0; i < 20; ++i) {
      uint64_t v;
      Slice s;
      ASSERT_TRUE(GetVarint64(&in, &v));
      ASSERT_TRUE(GetLengthPrefixedSlice(&in, &s));
      EXPECT_EQ(v, values[i]);
      EXPECT_EQ(s.ToString(), slices[i]);
    }
  }
}

TEST(SliceTest, CompareAndPrefix) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

}  // namespace
}  // namespace untx
