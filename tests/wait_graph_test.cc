#include "util/wait_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace untx {
namespace {

TEST(WaitForGraphTest, NoCycleOnChain) {
  WaitForGraph g;
  g.AddEdges(1, {2});
  g.AddEdges(2, {3});
  EXPECT_TRUE(g.FindCycleFrom(1).empty());
  EXPECT_TRUE(g.FindCycleFrom(2).empty());
}

TEST(WaitForGraphTest, DetectsTwoCycle) {
  WaitForGraph g;
  g.AddEdges(1, {2});
  g.AddEdges(2, {1});
  auto cycle = g.FindCycleFrom(1);
  ASSERT_FALSE(cycle.empty());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), 1u), cycle.end());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), 2u), cycle.end());
}

TEST(WaitForGraphTest, DetectsLongCycle) {
  WaitForGraph g;
  g.AddEdges(1, {2});
  g.AddEdges(2, {3});
  g.AddEdges(3, {4});
  g.AddEdges(4, {1});
  auto cycle = g.FindCycleFrom(1);
  EXPECT_EQ(cycle.size(), 4u);
}

TEST(WaitForGraphTest, SelfEdgesIgnored) {
  WaitForGraph g;
  g.AddEdges(1, {1});
  EXPECT_TRUE(g.FindCycleFrom(1).empty());
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(WaitForGraphTest, RemoveWaiterBreaksCycle) {
  WaitForGraph g;
  g.AddEdges(1, {2});
  g.AddEdges(2, {1});
  g.RemoveWaiter(2);
  EXPECT_TRUE(g.FindCycleFrom(1).empty());
}

TEST(WaitForGraphTest, RemoveTxnDropsIncomingEdges) {
  WaitForGraph g;
  g.AddEdges(1, {2});
  g.AddEdges(3, {2});
  g.RemoveTxn(2);
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(WaitForGraphTest, MultipleHoldersOneWaiter) {
  WaitForGraph g;
  g.AddEdges(1, {2, 3, 4});
  EXPECT_EQ(g.EdgeCount(), 3u);
  g.AddEdges(4, {1});
  auto cycle = g.FindCycleFrom(1);
  ASSERT_FALSE(cycle.empty());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), 4u), cycle.end());
}

TEST(WaitForGraphTest, CycleNotReachableFromOutsideNode) {
  WaitForGraph g;
  g.AddEdges(2, {3});
  g.AddEdges(3, {2});
  // 1 waits on the cycle but is not itself on one.
  g.AddEdges(1, {2});
  EXPECT_TRUE(g.FindCycleFrom(1).empty());
  EXPECT_FALSE(g.FindCycleFrom(2).empty());
}

}  // namespace
}  // namespace untx
