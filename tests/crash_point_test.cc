// Crash-point sweep (property test): run a scripted workload and crash a
// component after every k-th transaction, then verify the recovered
// state matches the model of committed transactions. This systematically
// probes recovery at many distinct log/cache configurations rather than
// at a handful of hand-picked points.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "kernel/unbundled_db.h"

namespace untx {
namespace {

constexpr TableId kTable = 1;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

UnbundledDbOptions Options() {
  UnbundledDbOptions options;
  options.store.page_size = 1024;
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  options.tc.control_interval_ms = 2;
  options.tc.resend_interval_ms = 20;
  return options;
}

enum class CrashKind { kDc, kTc, kBoth };

struct SweepParam {
  int crash_after;  // crash after this many committed txns
  CrashKind kind;
};

class CrashPointTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrashPointTest, RecoveredStateMatchesCommittedModel) {
  const int crash_after = std::get<0>(GetParam());
  const CrashKind kind = static_cast<CrashKind>(std::get<1>(GetParam()));

  auto db = std::move(UnbundledDb::Open(Options())).ValueOrDie();
  ASSERT_TRUE(db->CreateTable(kTable).ok());

  Random rng(1000 + crash_after);
  std::map<std::string, std::string> model;
  auto run_txns = [&](int count) {
    for (int t = 0; t < count; ++t) {
      Txn txn(db->tc());
      // 1-3 operations per transaction.
      const int ops = 1 + static_cast<int>(rng.Uniform(3));
      std::map<std::string, std::string> staged = model;
      bool ok = true;
      for (int o = 0; o < ops && ok; ++o) {
        const std::string key = Key(static_cast<int>(rng.Uniform(120)));
        const std::string value = rng.Bytes(8);
        if (staged.count(key) == 0) {
          ok = txn.Insert(kTable, key, value).ok();
          if (ok) staged[key] = value;
        } else if (rng.Bernoulli(0.3)) {
          ok = txn.Delete(kTable, key).ok();
          if (ok) staged.erase(key);
        } else {
          ok = txn.Update(kTable, key, value).ok();
          if (ok) staged[key] = value;
        }
      }
      if (ok && txn.Commit().ok()) {
        model = std::move(staged);
      } else {
        txn.Abort();
      }
    }
  };

  run_txns(crash_after);

  // One uncommitted transaction in flight at the crash point.
  StatusOr<TxnId> open = db->Begin();
  if (open.ok()) {
    db->tc()->Insert(*open, kTable, "zz-in-flight", "x");
  }

  switch (kind) {
    case CrashKind::kDc:
      db->CrashDc(0);
      ASSERT_TRUE(db->RecoverDc(0).ok());
      // The in-flight txn survives at the TC (its lock is still held);
      // finish it with an abort to return to the committed model.
      if (open.ok()) db->Abort(*open);
      break;
    case CrashKind::kTc:
      db->CrashTc();
      ASSERT_TRUE(db->RestartTc().ok());
      break;
    case CrashKind::kBoth:
      db->CrashTc();
      db->CrashDc(0);
      db->dc(0)->Restore();
      ASSERT_TRUE(db->dc(0)->Recover().ok());
      ASSERT_TRUE(db->RestartTc().ok());
      break;
  }

  // Verify.
  Txn check(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(check.Scan(kTable, "", "", 0, &rows).ok());
  check.Commit();
  std::map<std::string, std::string> state(rows.begin(), rows.end());
  state.erase("zz-in-flight");  // gone under kTc/kBoth, aborted under kDc
  ASSERT_EQ(state.size(), model.size()) << "crash_after=" << crash_after;
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(state.count(k)) << "missing " << k;
    ASSERT_EQ(state[k], v) << "wrong value for " << k;
  }
  ASSERT_TRUE(db->dc(0)->btree()->CheckInvariants(kTable).ok());

  // The system keeps working after recovery.
  run_txns(5);
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"Dc", "Tc", "Both"};
  return std::string(kKinds[std::get<1>(info.param)]) + "After" +
         std::to_string(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashPointTest,
    ::testing::Combine(::testing::Values(0, 3, 10, 25, 60, 150),
                       ::testing::Values(0, 1, 2)),
    SweepName);

}  // namespace
}  // namespace untx
