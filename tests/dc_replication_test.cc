// DC redo-log shipping + hot-standby failover (PR 8): exercises the
// replication stack at three levels.
//   * DcRedoLog: durable-only shipping, replica ack accounting, lag.
//   * DataComponent: replica role gates, ApplyReplicated ordering (gap
//     rejection, overlap skip), Promote fencing, RejoinAsReplica
//     truncation, RecoverFromLocalLog restoring pre-crash state from
//     the DC's own disk files.
//   * Cluster: replicas_per_dc standbys with live ReplicationLinks —
//     ship → lag → crash primary → FailoverDc (suffix resend only) →
//     RejoinReplica, diffed against a driver model, plus a replica
//     crash mid-catch-up.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dc/data_component.h"
#include "kernel/cluster.h"
#include "kernel/replication_link.h"
#include "storage/stable_store.h"

namespace untx {
namespace {

constexpr TableId kTableA = 1;
constexpr TableId kTableB = 2;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

using Model = std::map<std::pair<TableId, std::string>, std::string>;

/// Waits until the predicate holds or ~5s pass.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// Scans every table through TC 0 into a model for diffing.
Model SnapshotState(Cluster* cluster) {
  Model state;
  for (TableId table : {kTableA, kTableB}) {
    std::vector<std::pair<std::string, std::string>> rows;
    EXPECT_TRUE(cluster->tc(0)
                    ->ScanShared(table, "", "", 0, ReadFlavor::kDirty, &rows)
                    .ok());
    for (const auto& [k, v] : rows) state[{table, k}] = v;
  }
  return state;
}

ClusterOptions ReplicatedOptions(int replicas) {
  ClusterOptions options;
  options.num_dcs = 2;
  options.replicas_per_dc = replicas;
  options.transport = TransportKind::kDirect;
  options.store.page_size = 1024;
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  TcSpec spec;
  spec.options.tc_id = 1;
  spec.options.resend_interval_ms = 5;
  spec.options.insert_phantom_protection = false;
  options.tcs.push_back(spec);
  return options;
}

// ---- DataComponent-level stream protocol ------------------------------------

TEST(DcReplicationTest, ReplicaRejectsGapsAndSkipsOverlap) {
  StableStoreOptions store_options;
  store_options.page_size = 1024;
  store_options.trailer_capacity = 128;
  DataComponentOptions dc_options;
  dc_options.redo_log_enabled = true;

  StableStore primary_store(store_options);
  DataComponent primary(&primary_store, dc_options);
  ASSERT_TRUE(primary.Initialize().ok());

  StableStore replica_store(store_options);
  DataComponent replica(&replica_store, dc_options);
  ASSERT_TRUE(replica.Initialize().ok());
  replica.StartAsReplica();
  EXPECT_EQ(replica.role(), DcRole::kReplica);

  // A replica answers no TC traffic.
  OperationRequest read;
  read.tc_id = 1;
  read.lsn = 1;
  read.op = OpType::kRead;
  read.table_id = kTableA;
  read.key = "x";
  EXPECT_TRUE(replica.Perform(read).status.IsCrashed());

  // Drive some ops into the primary so its redo log has durable entries.
  primary.redo_log()->set_replication_enabled(true);
  OperationRequest create;
  create.tc_id = 1;
  create.lsn = 1;
  create.op = OpType::kCreateTable;
  create.table_id = kTableA;
  ASSERT_TRUE(primary.Perform(create).status.ok());
  Lsn lsn = 2;
  for (int i = 0; i < 10; ++i) {
    OperationRequest op;
    op.tc_id = 1;
    op.lsn = lsn++;
    op.op = OpType::kUpsert;
    op.table_id = kTableA;
    op.key = Key(i);
    op.value = "v" + std::to_string(i);
    ASSERT_TRUE(primary.Perform(op).status.ok());
  }
  const uint64_t end = primary.redo_log()->end();
  ASSERT_GT(end, 0u);
  ASSERT_EQ(primary.redo_log()->durable_end(), end)
      << "acked ops must already be durable (force-before-reply)";

  // A batch that does not extend the replica densely is rejected.
  std::vector<RedoEntry> entries;
  ASSERT_EQ(primary.redo_log()->ReadFrom(3, 4, &entries), 3u);
  ReplicaEntriesMessage gap;
  gap.from_rlsn = 3;
  gap.primary_end = end;
  gap.entries = entries;
  EXPECT_TRUE(replica.ApplyReplicated(gap).IsInvalidArgument());

  // The dense prefix applies; a resend of the same batch is a no-op.
  entries.clear();
  ASSERT_EQ(primary.redo_log()->ReadFrom(1, 1024, &entries), 1u);
  ReplicaEntriesMessage all;
  all.from_rlsn = 1;
  all.primary_end = end;
  all.entries = entries;
  ASSERT_TRUE(replica.ApplyReplicated(all).ok());
  EXPECT_EQ(replica.redo_log()->end(), end);
  ASSERT_TRUE(replica.ApplyReplicated(all).ok()) << "overlap must be skipped";
  EXPECT_EQ(replica.redo_log()->end(), end);

  // Promotion fences and opens the gate; the replica now serves reads.
  replica.Promote(1);
  EXPECT_EQ(replica.role(), DcRole::kPrimary);
  EXPECT_EQ(replica.promotion_epoch(), 1u);
  EXPECT_EQ(replica.promotion_base(), end);
  read.key = Key(3);
  OperationReply got = replica.Perform(read);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ(got.value, "v3");

  // A post-promotion stream from the old primary must be refused.
  ReplicaEntriesMessage late = all;
  EXPECT_FALSE(replica.ApplyReplicated(late).ok());
}

TEST(DcReplicationTest, RejoinTruncatesDivergentSuffix) {
  StableStoreOptions store_options;
  store_options.page_size = 1024;
  store_options.trailer_capacity = 128;
  DataComponentOptions dc_options;
  dc_options.redo_log_enabled = true;

  StableStore store(store_options);
  DataComponent dc(&store, dc_options);
  ASSERT_TRUE(dc.Initialize().ok());
  OperationRequest create;
  create.tc_id = 1;
  create.lsn = 1;
  create.op = OpType::kCreateTable;
  create.table_id = kTableA;
  ASSERT_TRUE(dc.Perform(create).status.ok());
  Lsn lsn = 2;
  for (int i = 0; i < 6; ++i) {
    OperationRequest op;
    op.tc_id = 1;
    op.lsn = lsn++;
    op.op = OpType::kUpsert;
    op.table_id = kTableA;
    op.key = Key(i);
    op.value = "v" + std::to_string(i);
    ASSERT_TRUE(dc.Perform(op).status.ok());
  }
  const uint64_t end = dc.redo_log()->end();
  const uint64_t fence = end - 2;  // pretend the last 2 never shipped

  dc.Crash();
  dc.Restore();
  ASSERT_TRUE(dc.Recover().ok());
  ASSERT_TRUE(dc.RejoinAsReplica(fence).ok());
  EXPECT_EQ(dc.role(), DcRole::kReplica);
  EXPECT_EQ(dc.redo_log()->end(), fence) << "divergent suffix must be gone";
  ASSERT_TRUE(dc.RecoverFromLocalLog().ok());
  EXPECT_EQ(dc.redo_log()->end(), fence);
}

// ---- Durable local recovery (the untx_dcd --recover path) -------------------

TEST(DcReplicationTest, LocalDiskRecoveryRestoresPreCrashState) {
  const std::string dir = ::testing::TempDir() + "dc_local_recovery";
  std::remove((dir + ".pages").c_str());
  std::remove((dir + ".redo").c_str());

  StableStoreOptions store_options;
  store_options.page_size = 1024;
  store_options.trailer_capacity = 128;
  store_options.path = dir + ".pages";
  DataComponentOptions dc_options;
  dc_options.redo_log_enabled = true;
  dc_options.redo_log.path = dir + ".redo";

  Lsn lsn = 1;
  uint64_t end = 0;
  {
    StableStore store(store_options);
    DataComponent dc(&store, dc_options);
    ASSERT_TRUE(dc.Initialize().ok());
    OperationRequest create;
    create.tc_id = 1;
    create.lsn = lsn++;
    create.op = OpType::kCreateTable;
    create.table_id = kTableA;
    ASSERT_TRUE(dc.Perform(create).status.ok());
    for (int i = 0; i < 40; ++i) {
      OperationRequest op;
      op.tc_id = 1;
      op.lsn = lsn++;
      op.op = OpType::kUpsert;
      op.table_id = kTableA;
      op.key = Key(i % 16);
      op.value = "gen" + std::to_string(i);
      ASSERT_TRUE(dc.Perform(op).status.ok());
    }
    end = dc.redo_log()->end();
    // The process "dies" here: nothing flushed beyond what each acked
    // op already forced.
  }

  // Relaunch on the same files: pages + redo replay == pre-crash state,
  // and the redo end is CURRENT (kQueryReplication may report it).
  StableStore store(store_options);
  ASSERT_GT(store.LivePageCount(), 0u);
  DataComponent dc(&store, dc_options);
  ASSERT_TRUE(dc.Recover().ok());
  uint64_t replayed = 0;
  ASSERT_TRUE(dc.RecoverFromLocalLog(&replayed).ok());
  EXPECT_EQ(dc.redo_log()->end(), end);

  for (int i = 24; i < 40; ++i) {
    OperationRequest read;
    read.tc_id = 1;
    read.lsn = lsn++;
    read.op = OpType::kRead;
    read.table_id = kTableA;
    read.key = Key(i % 16);
    OperationReply got = dc.Perform(read);
    ASSERT_TRUE(got.status.ok()) << Key(i % 16) << ": "
                                 << got.status.ToString();
    EXPECT_EQ(got.value, "gen" + std::to_string(i));
  }

  ControlRequest query;
  query.type = ControlType::kQueryReplication;
  query.tc_id = 1;
  ControlReply qr = dc.Control(query);
  ASSERT_TRUE(qr.status.ok());
  EXPECT_TRUE(qr.replication_enabled);
  EXPECT_EQ(qr.rlsn, end) << "recovered state must be redo-current";

  std::remove((dir + ".pages").c_str());
  std::remove((dir + ".redo").c_str());
}

// ---- Cluster-level: ship, lag, promote, rejoin ------------------------------

TEST(DcReplicationTest, FailoverIsSuffixOnlyAndStateMatches) {
  auto cluster = std::move(Cluster::Open(ReplicatedOptions(1))).ValueOrDie();
  TransactionComponent* tc = cluster->tc(0);
  ASSERT_TRUE(tc->CreateTable(kTableA).ok());
  ASSERT_TRUE(tc->CreateTable(kTableB).ok());

  Model model;
  for (int i = 0; i < 60; ++i) {
    const TableId table = i % 2 == 0 ? kTableA : kTableB;
    StatusOr<TxnId> txn = tc->Begin();
    ASSERT_TRUE(txn.ok());
    const std::string key = Key(i % 20);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(tc->Upsert(*txn, table, key, value).ok());
    ASSERT_TRUE(tc->Commit(*txn).ok());
    model[{table, key}] = value;
  }

  // Standbys drain the whole history: lag reaches 0 for both DCs.
  ASSERT_TRUE(WaitFor([&] {
    return cluster->ReplicaLag(0) == 0 && cluster->ReplicaLag(1) == 0;
  })) << "lag0=" << cluster->ReplicaLag(0)
      << " lag1=" << cluster->ReplicaLag(1);
  ASSERT_GT(cluster->replica(0, 0)->redo_log()->end(), 0u);

  // Kill DC 0 and fail over to its caught-up standby.
  const uint64_t resent_before = tc->stats().recovery_resent_ops.load();
  cluster->CrashDc(0);
  ASSERT_TRUE(cluster->FailoverDc(0).ok());
  EXPECT_EQ(cluster->dc(0)->role(), DcRole::kPrimary);
  EXPECT_EQ(cluster->dc(0)->promotion_epoch(), 1u);

  // THE acceptance criterion: a caught-up standby means zero full
  // redo-resend — nothing was in flight, so nothing needed resending.
  EXPECT_EQ(tc->stats().recovery_resent_ops.load(), resent_before)
      << "failover to a caught-up standby must not replay the redo log";
  EXPECT_GT(tc->stats().suffix_skipped_ops.load(), 0u);

  // The promoted standby serves the exact committed state.
  EXPECT_EQ(SnapshotState(cluster.get()), model);

  // New traffic lands on the new primary.
  for (int i = 0; i < 20; ++i) {
    StatusOr<TxnId> txn = tc->Begin();
    ASSERT_TRUE(txn.ok());
    const std::string key = Key(100 + i);
    ASSERT_TRUE(tc->Upsert(*txn, kTableB, key, "post-failover").ok());
    ASSERT_TRUE(tc->Commit(*txn).ok());
    model[{kTableB, key}] = "post-failover";
  }
  EXPECT_EQ(SnapshotState(cluster.get()), model);

  // The retired ex-primary rejoins as a standby and catches up.
  int parked = -1;
  for (int r = 0; r < cluster->num_replicas(0); ++r) {
    if (cluster->replica(0, r)->crashed()) parked = r;
  }
  ASSERT_GE(parked, 0) << "ex-primary should be parked in a replica slot";
  ASSERT_TRUE(cluster->RejoinReplica(0, parked).ok());
  ASSERT_TRUE(WaitFor([&] { return cluster->ReplicaLag(0) == 0; }))
      << "rejoined standby never caught up; lag=" << cluster->ReplicaLag(0);
  EXPECT_EQ(cluster->replica(0, parked)->redo_log()->end(),
            cluster->dc(0)->redo_log()->end());

  // And a second failover back onto it round-trips the same state.
  cluster->CrashDc(0);
  ASSERT_TRUE(cluster->FailoverDc(0).ok());
  EXPECT_EQ(cluster->dc(0)->promotion_epoch(), 2u);
  EXPECT_EQ(SnapshotState(cluster.get()), model);
}

TEST(DcReplicationTest, ReplicaCrashMidCatchUpRecoversAndDrains) {
  auto cluster = std::move(Cluster::Open(ReplicatedOptions(1))).ValueOrDie();
  TransactionComponent* tc = cluster->tc(0);
  ASSERT_TRUE(tc->CreateTable(kTableA).ok());
  ASSERT_TRUE(tc->CreateTable(kTableB).ok());

  Model model;
  auto write_burst = [&](int base, int n) {
    for (int i = 0; i < n; ++i) {
      StatusOr<TxnId> txn = tc->Begin();
      ASSERT_TRUE(txn.ok());
      const std::string key = Key((base + i) % 32);
      const std::string value = "b" + std::to_string(base + i);
      ASSERT_TRUE(tc->Upsert(*txn, kTableA, key, value).ok());
      ASSERT_TRUE(tc->Commit(*txn).ok());
      model[{kTableA, key}] = value;
    }
  };

  write_burst(0, 40);
  // Crash the standby mid-stream (whatever it has applied so far), keep
  // writing, then revive it: the link re-derives its position from the
  // replica's own log end and drains the rest.
  DataComponent* standby = cluster->replica(1, 0);
  standby->Crash();
  write_burst(100, 40);
  ASSERT_TRUE(cluster->RejoinReplica(1, 0).ok());
  ASSERT_TRUE(WaitFor([&] { return cluster->ReplicaLag(1) == 0; }))
      << "standby never drained after mid-catch-up crash; lag="
      << cluster->ReplicaLag(1);
  EXPECT_EQ(standby->redo_log()->end(), cluster->dc(1)->redo_log()->end());

  // Failing over onto it now serves the full committed state.
  cluster->CrashDc(1);
  ASSERT_TRUE(cluster->FailoverDc(1).ok());
  EXPECT_EQ(SnapshotState(cluster.get()), model);
}

// ---- Replica ack bookkeeping at the log --------------------------------------

TEST(DcReplicationTest, ReplicaAcksGateCheckpointClamp) {
  auto cluster = std::move(Cluster::Open(ReplicatedOptions(1))).ValueOrDie();
  TransactionComponent* tc = cluster->tc(0);
  ASSERT_TRUE(tc->CreateTable(kTableA).ok());
  for (int i = 0; i < 30; ++i) {
    StatusOr<TxnId> txn = tc->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(tc->Upsert(*txn, kTableA, Key(i), "x").ok());
    ASSERT_TRUE(tc->Commit(*txn).ok());
  }
  ASSERT_TRUE(WaitFor([&] {
    return cluster->ReplicaLag(0) == 0 && cluster->ReplicaLag(1) == 0;
  }));
  // With a caught-up standby the clamp is wide open: a checkpoint must
  // succeed and advance the RSSP past log start.
  ASSERT_TRUE(tc->TakeCheckpoint().ok());
  EXPECT_GT(tc->rssp(), 0u);
}

}  // namespace
}  // namespace untx
