// Figure 2 / §6.3 as a runnable program: the online movie review site
// with two updater TCs (users partitioned by UId mod 2), three DCs
// (Movies+Reviews partitioned by MId on DC0/DC1; Users+MyReviews on
// DC2), and a read-only review retriever using versioned read committed.
//
//   build/examples/movie_reviews
#include <cstdio>

#include "cloud/movie_site.h"

using namespace untx;
using namespace untx::cloud;

int main() {
  MovieSiteConfig config;
  config.num_users = 40;
  config.num_movies = 12;
  config.versioning = true;  // enables read committed for TC3 (§6.2.2)
  // Cloud-style wiring: every TC↔DC binding is an asynchronous message
  // channel with the batched wire protocol (Figure 2 as deployed).
  config.transport = TransportKind::kChannel;
  auto site = std::move(MovieSite::Open(config)).ValueOrDie();
  Status s = site->Setup();
  printf("setup (%u users, %u movies over 2 TCs + 3 DCs, channel "
         "transport): %s\n",
         config.num_users, config.num_movies, s.ToString().c_str());

  // W2: users post reviews. Each is ONE transaction at the user's owner
  // TC, writing the movie's DC and the user's DC — no 2PC anywhere.
  int posted = 0;
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    for (uint32_t j = 0; j < 2; ++j) {
      const uint32_t mid = (uid * 3 + j * 5) % config.num_movies;
      if (site->W2AddReview(uid, mid,
                            "user " + std::to_string(uid) + " says: great")
              .ok()) {
        ++posted;
      }
    }
  }
  printf("W2: posted %d reviews\n", posted);

  // W1: the hot path — all reviews of one movie, clustered on one DC,
  // read committed, never blocking.
  std::vector<std::pair<std::string, std::string>> reviews;
  site->W1GetMovieReviews(3, &reviews);
  printf("W1: movie 3 has %zu reviews (served from a single DC)\n",
         reviews.size());

  // W3 + W4 at the owner TC.
  site->W3UpdateProfile(7, "bio=film buff");
  std::vector<std::pair<std::string, std::string>> mine;
  site->W4GetUserReviews(7, &mine);
  printf("W4: user 7 wrote %zu reviews (clustered MyReviews copy)\n",
         mine.size());

  // An uncommitted edit is invisible at read committed but visible dirty.
  TransactionComponent* owner = site->OwnerTc(4);
  auto txn = owner->Begin();
  owner->Update(*txn, kReviewsTable, ReviewKey((4 * 3) % config.num_movies, 4),
                "EDITED BUT NOT COMMITTED");
  site->W1GetMovieReviews((4 * 3) % config.num_movies, &reviews);
  printf("W1 during open txn: still sees committed text (%zu reviews)\n",
         reviews.size());
  owner->Abort(*txn);

  // Kill TC1 mid-flight; its restart resets the DCs precisely and the
  // site invariant (Reviews == MyReviews) holds.
  s = site->cluster()->CrashAndRestartTc(0);
  printf("TC1 crash + restart: %s\n", s.ToString().c_str());
  s = site->VerifyConsistency();
  printf("Reviews/MyReviews consistency: %s\n", s.ToString().c_str());

  // Kill the user DC; both TCs redo-resend to it.
  s = site->cluster()->CrashAndRecoverDc(2);
  printf("DC2 crash + recovery: %s\n", s.ToString().c_str());
  s = site->VerifyConsistency();
  printf("consistency after DC2 recovery: %s\n", s.ToString().c_str());

  uint64_t committed = 0;
  for (int t = 0; t < 2; ++t) {
    auto* tc = site->cluster()->tc(t);
    committed += tc->stats().txns_committed.load();
    printf("TC%d: committed=%llu ops=%llu resends=%llu redo_ops=%llu "
           "redo_msgs=%llu\n",
           t + 1, (unsigned long long)tc->stats().txns_committed.load(),
           (unsigned long long)tc->stats().ops_sent.load(),
           (unsigned long long)tc->stats().resends.load(),
           (unsigned long long)tc->stats().recovery_resent_ops.load(),
           (unsigned long long)tc->stats().recovery_resend_msgs.load());
  }
  // The wire cost of the whole run: batching keeps operation messages
  // well below the operations they carried.
  printf("wire: op_msgs=%llu ops_carried=%llu (msgs/txn=%.2f "
         "ops/txn=%.2f)\n",
         (unsigned long long)site->cluster()->TotalOpMessages(),
         (unsigned long long)site->cluster()->TotalOpsCarried(),
         committed ? (double)site->cluster()->TotalOpMessages() / committed
                   : 0.0,
         committed ? (double)site->cluster()->TotalOpsCarried() / committed
                   : 0.0);
  return 0;
}
