// The Web 2.0 photo-sharing platform of §2: "the application could use a
// combination of already available file and table managers and
// home-grown index managers as DCs. For transaction management it could
// directly use the services of a TC, offered in the cloud."
//
// Here: one TC (the cloud transaction service) over THREE heterogeneous
// DC instances — one for account/OLTP tables, one for photo metadata +
// tag index, one for review text — mirroring Figure 1's DC variety. The
// application gets real transactions spanning all of them, without
// implementing any concurrency control or recovery itself.
//
//   build/examples/photo_sharing
#include <cstdio>
#include <string>

#include "kernel/unbundled_db.h"

using namespace untx;

namespace {
// Tables, placed on DCs by the router below.
constexpr TableId kUsers = 1;      // DC0: account management (OLTP)
constexpr TableId kFriends = 2;    // DC0
constexpr TableId kPhotos = 3;     // DC1: photo metadata
constexpr TableId kTagIndex = 4;   // DC1: home-grown tag -> photo index
constexpr TableId kReviews = 5;    // DC2: natural-language review store

DcId PhotoRouter(TableId table, const std::string&) {
  switch (table) {
    case kUsers:
    case kFriends:
      return 0;
    case kPhotos:
    case kTagIndex:
      return 1;
    default:
      return 2;
  }
}

std::string PhotoKey(int id) {
  char buf[16];
  snprintf(buf, sizeof(buf), "p%06d", id);
  return buf;
}
}  // namespace

int main() {
  UnbundledDbOptions options;
  options.num_dcs = 3;
  options.router = PhotoRouter;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  for (TableId t : {kUsers, kFriends, kPhotos, kTagIndex, kReviews}) {
    db->CreateTable(t);
  }

  // Sign-up: a transaction on the account DC.
  {
    Txn txn(db->tc());
    txn.Insert(kUsers, "carol", "joined=2009-01-04");
    txn.Commit();
  }

  // Upload a photo with tags and referential integrity: the photo row,
  // two tag-index postings, and the owner's album membership commit
  // atomically even though they live on different DCs — no 2PC, just the
  // TC's log force.
  {
    Txn txn(db->tc());
    txn.Insert(kPhotos, PhotoKey(1), "owner=carol;title=golden-gate");
    txn.Insert(kTagIndex, "bridge:" + PhotoKey(1), "");
    txn.Insert(kTagIndex, "sf:" + PhotoKey(1), "");
    txn.Insert(kFriends, "carol:dave", "since=2009");
    Status s = txn.Commit();
    printf("photo upload txn: %s\n", s.ToString().c_str());
  }

  // A review with opinion phrases, on the text DC.
  {
    Txn txn(db->tc());
    txn.Insert(kReviews, PhotoKey(1) + ":dave", "stunning shot of the fog");
    txn.Commit();
  }

  // Tag search uses the home-grown index: a serializable prefix scan.
  {
    Txn txn(db->tc());
    std::vector<std::pair<std::string, std::string>> postings;
    txn.Scan(kTagIndex, "bridge:", "bridge;", 0, &postings);
    printf("photos tagged 'bridge': %zu\n", postings.size());
    for (const auto& [k, v] : postings) {
      const std::string photo = k.substr(7);
      std::string meta;
      txn.Read(kPhotos, photo, &meta);
      printf("  %s -> %s\n", photo.c_str(), meta.c_str());
    }
    txn.Commit();
  }

  // Integrity under failure: delete the photo AND its postings in one
  // transaction, crash the metadata DC mid-workload, verify atomicity.
  {
    Txn txn(db->tc());
    txn.Delete(kPhotos, PhotoKey(1));
    txn.Delete(kTagIndex, "bridge:" + PhotoKey(1));
    // Abort instead of commit: everything must come back.
    txn.Abort();
  }
  db->CrashDc(1);
  db->RecoverDc(1);
  {
    Txn txn(db->tc());
    std::string meta;
    Status s = txn.Read(kPhotos, PhotoKey(1), &meta);
    std::vector<std::pair<std::string, std::string>> postings;
    txn.Scan(kTagIndex, "bridge:", "bridge;", 0, &postings);
    printf("after abort + DC crash: photo=%s postings=%zu\n",
           s.ok() ? "present" : "MISSING", postings.size());
    txn.Commit();
  }

  printf("done: the application wrote zero lines of CC or recovery code\n");
  return 0;
}
