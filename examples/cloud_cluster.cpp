// Multi-TC cloud quickstart: a 2-TC × 2-DC Cluster on the channel
// transport — the Figure 2 deployment shape with every TC↔DC binding an
// asynchronous message channel carrying batched operations.
//
//   build/cloud_cluster
#include <cstdio>

#include "kernel/cluster.h"

using namespace untx;

int main() {
  // 1. Describe the topology: two TCs sharing two DCs, bound by message
  //    channels. Keys below "m" live on DC0, the rest on DC1, so one
  //    transaction's writes span both DCs (still no 2PC: the commit is
  //    one local TC log force).
  ClusterOptions options;
  options.num_dcs = 2;
  options.transport = TransportKind::kChannel;
  options.default_router = [](TableId, const std::string& key) {
    return static_cast<DcId>(key < "m" ? 0 : 1);
  };
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.control_interval_ms = 5;
    spec.options.resend_interval_ms = 20;
    // Keep the wire demo clean: no per-insert phantom probes (C1 benches
    // them); every message below is a pipelined op or its batch.
    spec.options.insert_phantom_protection = false;
    options.tcs.push_back(spec);
  }
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();

  // 2. DDL once per DC partition (a routing hint picks the partition).
  const TableId kTable = 1;
  cluster->tc(0)->CreateTable(kTable, "a");
  cluster->tc(0)->CreateTable(kTable, "z");

  // 3. Each TC owns a disjoint key slice (§6: conflicting operations are
  //    never active at two TCs). Pipelined submits coalesce into batched
  //    wire messages per DC.
  for (int t = 0; t < 2; ++t) {
    TransactionComponent* tc = cluster->tc(t);
    const std::string who = t == 0 ? "alice" : "bob";
    for (int i = 0; i < 5; ++i) {
      auto txn = tc->Begin();
      std::vector<OpHandle> ops;
      for (int k = 0; k < 4; ++k) {
        const std::string id = who + std::to_string(i * 4 + k);
        ops.push_back(tc->SubmitInsert(*txn, kTable, "a-" + id, "v"));
        ops.push_back(tc->SubmitInsert(*txn, kTable, "z-" + id, "v"));
      }
      // 8 pipelined inserts; they reach the DCs as ~2 batched messages.
      for (auto& op : ops) tc->Await(&op);
      tc->Commit(*txn);
    }
  }
  printf("committed: TC1=%llu TC2=%llu txns\n",
         (unsigned long long)cluster->tc(0)->stats().txns_committed.load(),
         (unsigned long long)cluster->tc(1)->stats().txns_committed.load());
  printf("wire: op_msgs=%llu ops_carried=%llu (batching => msgs < ops)\n",
         (unsigned long long)cluster->TotalOpMessages(),
         (unsigned long long)cluster->TotalOpsCarried());

  // 4. Kill and restart TC1: its DC resets evict exactly the pages
  //    reflecting lost operations; displaced TCs resend from their RSSPs
  //    (§6.1.2 escalation, coordinated by the cluster).
  Status s = cluster->CrashAndRestartTc(0);
  printf("TC1 crash + restart: %s\n", s.ToString().c_str());

  // 5. Kill and recover DC1: BOTH TCs redo-resend their slice to it, in
  //    ordered batches.
  s = cluster->CrashAndRecoverDc(1);
  printf("DC1 crash + recovery: %s (redo TC1: %llu ops in %llu msgs, "
         "TC2: %llu ops in %llu msgs)\n",
         s.ToString().c_str(),
         (unsigned long long)
             cluster->tc(0)->stats().recovery_resent_ops.load(),
         (unsigned long long)
             cluster->tc(0)->stats().recovery_resend_msgs.load(),
         (unsigned long long)
             cluster->tc(1)->stats().recovery_resent_ops.load(),
         (unsigned long long)
             cluster->tc(1)->stats().recovery_resend_msgs.load());

  // 6. Everything committed is still there — read from the OTHER TC
  //    (dirty reads commute across TCs, §6.2.1).
  std::vector<std::pair<std::string, std::string>> rows;
  cluster->tc(1)->ScanShared(kTable, "", "m", 0, ReadFlavor::kDirty, &rows);
  size_t low = rows.size();
  cluster->tc(1)->ScanShared(kTable, "m", "", 0, ReadFlavor::kDirty, &rows);
  printf("rows after faults: DC0=%zu DC1=%zu (expected 40 + 40)\n", low,
         rows.size());
  return 0;  // 2 TCs × 5 txns × 8 inserts = 40 keys per DC
}
