// Quickstart: open an unbundled database (one TC + one DC), run a few
// transactions, survive a crash.
//
//   build/examples/quickstart
#include <cstdio>

#include "kernel/unbundled_db.h"

using namespace untx;

int main() {
  // 1. Open a deployment: one TransactionComponent talking to one
  //    DataComponent over the direct (multi-core) transport.
  UnbundledDbOptions options;
  auto db_or = UnbundledDb::Open(options);
  if (!db_or.ok()) {
    fprintf(stderr, "open failed: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).ValueOrDie();

  // 2. DDL: create a table (a B-tree inside the DC).
  const TableId kUsers = 1;
  db->CreateTable(kUsers);

  // 3. A read-write transaction. Txn is an RAII helper: it aborts on
  //    scope exit unless committed.
  {
    Txn txn(db->tc());
    txn.Insert(kUsers, "alice", "alice@example.com");
    txn.Insert(kUsers, "bob", "bob@example.com");
    Status s = txn.Commit();
    printf("commit: %s\n", s.ToString().c_str());
  }

  // 4. Serializable reads + scan. The hot read path uses MultiRead: both
  //    point reads are submitted at once and travel to the DC as one
  //    batched message (one round trip instead of one per key on a
  //    channel deployment).
  {
    Txn txn(db->tc());
    std::vector<std::string> emails;
    txn.MultiRead(kUsers, {"alice", "bob"}, &emails);
    printf("alice -> %s, bob -> %s\n", emails[0].c_str(), emails[1].c_str());
    std::vector<std::pair<std::string, std::string>> rows;
    txn.Scan(kUsers, "", "", 0, &rows);
    printf("scan: %zu users\n", rows.size());
    txn.Commit();
  }

  // 4b. The same surface, fully pipelined: submit now, await later.
  {
    Txn txn(db->tc());
    OpHandle alice = txn.ReadAsync(kUsers, "alice");
    OpHandle bob = txn.ReadAsync(kUsers, "bob");
    std::string a, b;
    txn.Await(&alice, &a);
    txn.Await(&bob, &b);
    printf("async: alice -> %s, bob -> %s\n", a.c_str(), b.c_str());
    txn.Commit();
  }

  // 5. Abort rolls back via inverse logical operations at the TC.
  {
    Txn txn(db->tc());
    txn.Update(kUsers, "alice", "hacked@example.com");
    txn.Abort();
  }
  {
    Txn txn(db->tc());
    std::string email;
    txn.Read(kUsers, "alice", &email);
    printf("after abort, alice -> %s\n", email.c_str());
    txn.Commit();
  }

  // 6. Crash the DC. Committed data survives: the DC replays its system
  //    transactions, then the TC resends logged operations from the redo
  //    scan start point.
  db->CrashDc(0);
  Status rec = db->RecoverDc(0);
  printf("dc recovery: %s\n", rec.ToString().c_str());
  {
    Txn txn(db->tc());
    std::string email;
    Status s = txn.Read(kUsers, "bob", &email);
    printf("after dc crash, bob -> %s (%s)\n", email.c_str(),
           s.ToString().c_str());
    txn.Commit();
  }

  printf("tc stats: committed=%llu aborted=%llu ops=%llu resends=%llu\n",
         (unsigned long long)db->tc()->stats().txns_committed.load(),
         (unsigned long long)db->tc()->stats().txns_aborted.load(),
         (unsigned long long)db->tc()->stats().ops_sent.load(),
         (unsigned long long)db->tc()->stats().resends.load());
  return 0;
}
