// Partial-failure walkthrough (§5.3): watch the interaction contracts at
// work — causality, idempotence, resend, reset — over a lossy channel
// transport with crashes of each component.
//
//   build/examples/crash_recovery
#include <cstdio>

#include "kernel/unbundled_db.h"

using namespace untx;

namespace {
constexpr TableId kTable = 1;

void Report(UnbundledDb* db, const char* when) {
  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  txn.Scan(kTable, "", "", 0, &rows);
  txn.Commit();
  printf("%-32s rows=%zu resends=%llu dup_hits=%llu\n", when, rows.size(),
         (unsigned long long)db->tc()->stats().resends.load(),
         (unsigned long long)db->dc(0)->stats().duplicate_hits.load() +
             (unsigned long long)db->dc(0)->stats().reply_cache_hits.load());
}
}  // namespace

int main() {
  // A cloud-style deployment: TC and DC exchange asynchronous messages
  // over channels that delay, drop and duplicate (§4.2.1).
  UnbundledDbOptions options;
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.drop_prob = 0.05;
  options.channel.request_channel.dup_prob = 0.05;
  options.channel.request_channel.max_delay_us = 400;
  options.channel.reply_channel.drop_prob = 0.05;
  options.channel.reply_channel.max_delay_us = 400;
  options.tc.resend_interval_ms = 10;
  options.tc.control_interval_ms = 5;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);

  printf("== phase 1: exactly-once over a lossy channel ==\n");
  for (int i = 0; i < 60; ++i) {
    Txn txn(db->tc());
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    txn.Insert(kTable, key, "v");
    txn.Commit();
  }
  Report(db.get(), "after 60 committed inserts");

  printf("\n== phase 2: DC crash (cache + volatile DC log lost) ==\n");
  db->CrashDc(0);
  printf("DC down. TC keeps resending unacknowledged work...\n");
  Status s = db->RecoverDc(0);
  printf("DC recovered: %s — SMO replay first, then redo resend from the "
         "RSSP; the abLSN test filters duplicates\n",
         s.ToString().c_str());
  Report(db.get(), "after DC crash + recovery");

  printf("\n== phase 3: TC crash (volatile log tail + txn state lost) ==\n");
  {
    // Leave a transaction uncommitted: it must vanish.
    StatusOr<TxnId> txn = db->Begin();
    if (txn.ok()) {
      db->tc()->Insert(*txn, kTable, "zz-uncommitted", "x");
    }
  }
  db->CrashTc();
  s = db->RestartTc();
  printf("TC restart: %s — DC dropped exactly the cached pages whose\n"
         "abLSNs cover operations beyond the stable TC log (LSNst)\n",
         s.ToString().c_str());
  Report(db.get(), "after TC crash + restart");
  {
    Txn txn(db->tc());
    std::string v;
    Status r = txn.Read(kTable, "zz-uncommitted", &v);
    printf("uncommitted row after restart: %s\n",
           r.IsNotFound() ? "gone (correct)" : "PRESENT (bug!)");
    txn.Commit();
  }

  printf("\n== phase 4: checkpoint bounds future redo (§4.2 contract "
         "termination) ==\n");
  s = db->tc()->TakeCheckpoint();
  printf("checkpoint: %s, rssp=%llu, log truncated below %llu\n",
         s.ToString().c_str(), (unsigned long long)db->tc()->rssp(),
         (unsigned long long)db->tc()->log()->truncated_prefix() + 1);
  db->CrashDc(0);
  const uint64_t ops_before = db->dc(0)->stats().ops.load();
  db->RecoverDc(0);
  printf("redo after checkpoint replayed only %llu operations\n",
         (unsigned long long)(db->dc(0)->stats().ops.load() - ops_before));
  Report(db.get(), "final state");
  return 0;
}
