// Experiment C5 (§5.3): partial failures.
//
// Claims under test:
//  * DC crash -> conventional redo from the RSSP; a checkpoint bounds
//    the redo work;
//  * TC crash -> the DC resets ONLY the cached pages whose abLSNs cover
//    operations beyond the stable TC log, rather than "the draconian"
//    full cache drop — measured by recovery time and by how much of the
//    cache survives (post-recovery stable-store reads).
#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;

// arg0: committed transactions before the crash.
void BM_DcCrashRecovery(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::move(UnbundledDb::Open(DefaultDbOptions())).ValueOrDie();
    db->CreateTable(kTable);
    Load(db.get(), kTable, txns);
    db->CrashDc(0);
    state.ResumeTiming();
    Status s = db->RecoverDc(0);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["txns_before_crash"] = txns;
}
BENCHMARK(BM_DcCrashRecovery)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_DcCrashRecoveryAfterCheckpoint(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::move(UnbundledDb::Open(DefaultDbOptions())).ValueOrDie();
    db->CreateTable(kTable);
    Load(db.get(), kTable, txns);
    Status cp = db->tc()->TakeCheckpoint();
    if (!cp.ok()) state.SkipWithError(cp.ToString().c_str());
    db->CrashDc(0);
    state.ResumeTiming();
    Status s = db->RecoverDc(0);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.counters["txns_before_crash"] = txns;
}
BENCHMARK(BM_DcCrashRecoveryAfterCheckpoint)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// TC crash with MOSTLY-durable state: the targeted reset drops only the
// pages with lost operations; the rest of the DC cache survives. The
// counter reports stable-store reads during post-recovery re-reading —
// near zero means the cache stayed warm.
void BM_TcCrashTargetedReset(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::move(UnbundledDb::Open(DefaultDbOptions())).ValueOrDie();
    db->CreateTable(kTable);
    Load(db.get(), kTable, txns);
    // A couple of transactions whose log records will be lost.
    StatusOr<TxnId> open = db->Begin();
    if (open.ok()) {
      db->tc()->Update(*open, kTable, Key(0), "lost-1");
      db->tc()->Update(*open, kTable, Key(1), "lost-2");
    }
    db->CrashTc();
    state.ResumeTiming();
    Status s = db->RestartTc();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.PauseTiming();
    const uint64_t reads_before = db->store(0)->reads();
    for (int i = 0; i < txns; i += 7) {
      Txn txn(db->tc());
      std::string v;
      txn.Read(kTable, Key(i), &v);
      txn.Commit();
    }
    state.counters["cold_reads_after"] =
        static_cast<double>(db->store(0)->reads() - reads_before);
    state.counters["pages_dropped"] = static_cast<double>(
        db->dc(0)->stats().pages_reset_dropped.load());
    state.ResumeTiming();
  }
}
BENCHMARK(BM_TcCrashTargetedReset)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// The "draconian" alternative (§5.3.2): turn the partial failure into a
// complete one — drop the whole DC cache, then recover. Compare
// cold_reads_after with the targeted reset above.
void BM_TcCrashDraconianFullDrop(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::move(UnbundledDb::Open(DefaultDbOptions())).ValueOrDie();
    db->CreateTable(kTable);
    Load(db.get(), kTable, txns);
    db->CrashTc();
    db->CrashDc(0);  // the draconian part
    state.ResumeTiming();
    db->dc(0)->Restore();
    Status s = db->dc(0)->Recover();
    if (s.ok()) s = db->RestartTc();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.PauseTiming();
    const uint64_t reads_before = db->store(0)->reads();
    for (int i = 0; i < txns; i += 7) {
      Txn txn(db->tc());
      std::string v;
      txn.Read(kTable, Key(i), &v);
      txn.Commit();
    }
    state.counters["cold_reads_after"] =
        static_cast<double>(db->store(0)->reads() - reads_before);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_TcCrashDraconianFullDrop)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
