// Experiment C2 (§5.1): abstract page LSNs under out-of-order execution.
//
// Claims under test:
//  * a reordering transport is handled correctly and cheaply by the
//    abLSN idempotence test (vs the broken traditional pageLSN test);
//  * the space cost is a few bytes per page trailer, versus the per-
//    record LSN alternative the paper rejects as "very expensive in
//    space" (8 bytes per record).
#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;

std::unique_ptr<UnbundledDb> MakeChannelDb(uint32_t max_delay_us) {
  UnbundledDbOptions options = DefaultDbOptions();
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.max_delay_us = max_delay_us;
  options.channel.reply_channel.max_delay_us = max_delay_us;
  options.channel.server_threads = 2;
  options.tc.resend_interval_ms = 50;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  return db;
}

// arg0: per-message delay jitter in microseconds (0 = in-order channel).
// Multi-threaded clients + jitter => operations reach pages out of LSN
// order; correctness is asserted by counting rows at the end.
void BM_ChannelInsertsWithReordering(benchmark::State& state) {
  auto db = MakeChannelDb(static_cast<uint32_t>(state.range(0)));
  std::atomic<int> next{0};
  for (auto _ : state) {
    // Two concurrent writers per iteration block of 16 ops.
    std::thread a([&] {
      for (int j = 0; j < 8; ++j) {
        Txn txn(db->tc());
        txn.Insert(kTable, Key(next.fetch_add(1)), "v");
        txn.Commit();
      }
    });
    std::thread b([&] {
      for (int j = 0; j < 8; ++j) {
        Txn txn(db->tc());
        txn.Insert(kTable, Key(next.fetch_add(1)), "v");
        txn.Commit();
      }
    });
    a.join();
    b.join();
  }
  // Exactly-once check.
  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  txn.Scan(kTable, "", "", 0, &rows);
  txn.Commit();
  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["expected"] = static_cast<double>(next.load());
  state.counters["ops/iter"] = 16;
}
BENCHMARK(BM_ChannelInsertsWithReordering)
    ->Arg(0)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Space accounting: run a write burst, flush, and compare the actual
// trailer bytes per page against the hypothetical 8-bytes-per-record
// LSN scheme on the same pages.
void BM_AbLsnSpaceVsRecordLsns(benchmark::State& state) {
  for (auto _ : state) {
    UnbundledDbOptions options = DefaultDbOptions();
    auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
    db->CreateTable(kTable);
    Load(db.get(), kTable, 2000);
    db->tc()->PushControls();
    db->dc(0)->pool()->FlushAllEligible();

    const auto& stats = db->dc(0)->pool()->stats();
    const double flushes = static_cast<double>(stats.flushes);
    const double trailer_per_page =
        flushes == 0 ? 0
                     : static_cast<double>(stats.trailer_bytes_written) /
                           flushes;
    // Count records per leaf page for the per-record alternative.
    uint64_t records = 0, leaf_pages = 0;
    for (PageId pid : db->dc(0)->pool()->CachedPages()) {
      Frame* frame = nullptr;
      if (!db->dc(0)->pool()->Fetch(pid, &frame).ok()) continue;
      SlottedPage page = frame->Page(db->dc(0)->pool()->page_size(),
                                     db->dc(0)->pool()->trailer_capacity());
      if (page.type() == PageType::kLeaf) {
        records += page.slot_count();
        ++leaf_pages;
      }
      db->dc(0)->pool()->Unpin(frame);
    }
    state.counters["abLSN_bytes/page"] = trailer_per_page;
    state.counters["recordLSN_bytes/page"] =
        leaf_pages == 0 ? 0
                        : 8.0 * static_cast<double>(records) /
                              static_cast<double>(leaf_pages);
  }
}
BENCHMARK(BM_AbLsnSpaceVsRecordLsns)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
