// Experiment F2 (Figure 2, §6.3): the movie review site — W1..W5 on the
// partitioned 2-TC / 3-DC topology running CLOUD-STYLE: every TC↔DC
// binding is an asynchronous message channel with the batched wire
// protocol. The claims under test: every workload touches at most two
// machines, updates need no distributed transactions, the read path
// never blocks, and pipelined pages coalesce on the wire (msgs/txn well
// below ops/txn).
#include <benchmark/benchmark.h>

#include "cloud/movie_site.h"

namespace untx {
namespace cloud {
namespace {

std::unique_ptr<MovieSite> OpenSite(TransportKind transport) {
  MovieSiteConfig config;
  config.num_users = 200;
  config.num_movies = 50;
  config.versioning = true;
  config.transport = transport;
  auto s = std::move(MovieSite::Open(config)).ValueOrDie();
  s->Setup();
  // Seed reviews so W1/W4 have data.
  for (uint32_t uid = 0; uid < config.num_users; ++uid) {
    s->W2AddReview(uid, uid % config.num_movies, "seed review");
  }
  return s;
}

MovieSite* GetSite() {
  static std::unique_ptr<MovieSite> site = OpenSite(TransportKind::kChannel);
  return site.get();
}

/// The same topology with every binding over loopback TCP (untx_dcd's
/// server machinery in-process). The wire counters must match the
/// channel arm — the frame codec carries identical batching.
MovieSite* GetSocketSite() {
  static std::unique_ptr<MovieSite> site = OpenSite(TransportKind::kSocket);
  return site.get();
}

/// Tracks the cluster-wide wire cost of the benchmark loop: operation
/// messages and the operations they carried, per iteration.
class WireCounters {
 public:
  explicit WireCounters(Cluster* cluster)
      : cluster_(cluster),
        msgs_before_(cluster->TotalOpMessages()),
        ops_before_(cluster->TotalOpsCarried()),
        scan_msgs_before_(cluster->TotalScanMessages()),
        scan_rows_before_(cluster->TotalScanRowsCarried()),
        scan_credit_msgs_before_(cluster->TotalScanCreditMessages()),
        promote_msgs_before_(cluster->TotalPromoteMessages()),
        promote_ops_before_(cluster->TotalPromoteOpsCarried()) {}

  void Report(benchmark::State& state) const {
    const double iters = static_cast<double>(
        state.iterations() == 0 ? 1 : state.iterations());
    state.counters["msgs/txn"] =
        static_cast<double>(cluster_->TotalOpMessages() - msgs_before_) /
        iters;
    state.counters["ops/txn"] =
        static_cast<double>(cluster_->TotalOpsCarried() - ops_before_) /
        iters;
  }

  /// Streamed scans: request messages per op (1 per stream attempt, vs
  /// one per window before) and rows carried back in chunks.
  void ReportScans(benchmark::State& state) const {
    const double iters = static_cast<double>(
        state.iterations() == 0 ? 1 : state.iterations());
    state.counters["scan_msgs/op"] =
        static_cast<double>(cluster_->TotalScanMessages() -
                            scan_msgs_before_) /
        iters;
    state.counters["scan_rows/op"] =
        static_cast<double>(cluster_->TotalScanRowsCarried() -
                            scan_rows_before_) /
        iters;
    state.counters["scan_credit_msgs/op"] =
        static_cast<double>(cluster_->TotalScanCreditMessages() -
                            scan_credit_msgs_before_) /
        iters;
    state.counters["peak_queued_scan_bytes"] =
        static_cast<double>(cluster_->MaxQueuedScanBytes());
  }

  /// Batched commit-time version promotion: messages vs ops carried.
  void ReportPromotes(benchmark::State& state) const {
    const double iters = static_cast<double>(
        state.iterations() == 0 ? 1 : state.iterations());
    state.counters["promote_msgs/txn"] =
        static_cast<double>(cluster_->TotalPromoteMessages() -
                            promote_msgs_before_) /
        iters;
    state.counters["promote_ops/txn"] =
        static_cast<double>(cluster_->TotalPromoteOpsCarried() -
                            promote_ops_before_) /
        iters;
  }

 private:
  Cluster* cluster_;
  uint64_t msgs_before_;
  uint64_t ops_before_;
  uint64_t scan_msgs_before_;
  uint64_t scan_rows_before_;
  uint64_t scan_credit_msgs_before_;
  uint64_t promote_msgs_before_;
  uint64_t promote_ops_before_;
};

void BM_W1_GetMovieReviews(benchmark::State& state) {
  MovieSite* site = GetSite();
  WireCounters wire(site->cluster());
  uint32_t mid = 0;
  uint64_t reviews_returned = 0;
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> reviews;
    site->W1GetMovieReviews(mid++ % site->config().num_movies, &reviews);
    reviews_returned += reviews.size();
  }
  state.counters["reviews/op"] =
      benchmark::Counter(static_cast<double>(reviews_returned),
                         benchmark::Counter::kAvgIterations);
  wire.ReportScans(state);
}
BENCHMARK(BM_W1_GetMovieReviews);

void BM_W2_AddReview(benchmark::State& state) {
  MovieSite* site = GetSite();
  WireCounters wire(site->cluster());
  uint32_t i = 1000;  // fresh (uid, mid) pairs via upsert
  for (auto _ : state) {
    const uint32_t uid = i % site->config().num_users;
    const uint32_t mid = (i / 7) % site->config().num_movies;
    site->W2AddReview(uid, mid, "bench review");
    ++i;
  }
  // One transaction, two DCs, zero coordination messages between TCs.
  state.counters["dcs_touched"] = 2;
  wire.Report(state);
  // Versioned deployment: the commit promotes both written keys in one
  // batched message per DC.
  wire.ReportPromotes(state);
}
BENCHMARK(BM_W2_AddReview);

// ---- Socket arm: W1/W2 over real loopback TCP. The msgs/txn and
// scan counters must match the channel arm (same coalescing, same
// frames); only the ns/op differs by the kernel socket hop. ----------------

void BM_W1_GetMovieReviews_Socket(benchmark::State& state) {
  MovieSite* site = GetSocketSite();
  WireCounters wire(site->cluster());
  uint32_t mid = 0;
  uint64_t reviews_returned = 0;
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> reviews;
    site->W1GetMovieReviews(mid++ % site->config().num_movies, &reviews);
    reviews_returned += reviews.size();
  }
  state.counters["reviews/op"] =
      benchmark::Counter(static_cast<double>(reviews_returned),
                         benchmark::Counter::kAvgIterations);
  wire.ReportScans(state);
}
BENCHMARK(BM_W1_GetMovieReviews_Socket);

void BM_W2_AddReview_Socket(benchmark::State& state) {
  MovieSite* site = GetSocketSite();
  WireCounters wire(site->cluster());
  uint32_t i = 1000;
  for (auto _ : state) {
    const uint32_t uid = i % site->config().num_users;
    const uint32_t mid = (i / 7) % site->config().num_movies;
    site->W2AddReview(uid, mid, "bench review");
    ++i;
  }
  state.counters["dcs_touched"] = 2;
  wire.Report(state);
  wire.ReportPromotes(state);
}
BENCHMARK(BM_W2_AddReview_Socket);

void BM_W3_UpdateProfile(benchmark::State& state) {
  MovieSite* site = GetSite();
  uint32_t uid = 0;
  for (auto _ : state) {
    site->W3UpdateProfile(uid++ % site->config().num_users, "new profile");
  }
}
BENCHMARK(BM_W3_UpdateProfile);

void BM_W4_GetUserReviews(benchmark::State& state) {
  MovieSite* site = GetSite();
  uint32_t uid = 0;
  uint64_t reviews_returned = 0;
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> reviews;
    site->W4GetUserReviews(uid++ % site->config().num_users, &reviews);
    reviews_returned += reviews.size();
  }
  state.counters["reviews/op"] =
      benchmark::Counter(static_cast<double>(reviews_returned),
                         benchmark::Counter::kAvgIterations);
  const TcStats& tc1 = site->cluster()->tc(0)->stats();
  const TcStats& tc2 = site->cluster()->tc(1)->stats();
  state.counters["prefetch_hits"] = static_cast<double>(
      tc1.scan_prefetch_hits.load() + tc2.scan_prefetch_hits.load());
}
BENCHMARK(BM_W4_GetUserReviews);

// W5: the movie-listing page — a pipelined multi-get spanning both movie
// partitions. The headline number is msgs/txn vs ops/txn: a 16-title
// page costs 16 read ops but only ~2 batched request messages.
void BM_W5_MovieListing(benchmark::State& state) {
  MovieSite* site = GetSite();
  const uint32_t page_size =
      static_cast<uint32_t>(state.range(0));
  WireCounters wire(site->cluster());
  uint32_t start = 0;
  for (auto _ : state) {
    std::vector<uint32_t> page;
    for (uint32_t j = 0; j < page_size; ++j) {
      page.push_back((start + j) % site->config().num_movies);
    }
    std::vector<std::string> titles;
    site->W5MovieListing(page, &titles);
    benchmark::DoNotOptimize(titles);
    ++start;
  }
  wire.Report(state);
}
BENCHMARK(BM_W5_MovieListing)->Arg(4)->Arg(16);

// W1 while a writer holds an open transaction on the same movie: the
// read-committed reader must not block (§6.2.2 "Readers are never
// blocked").
void BM_W1_UnderOpenWriter(benchmark::State& state) {
  MovieSite* site = GetSite();
  TransactionComponent* owner = site->OwnerTc(0);
  auto txn = owner->Begin();
  owner->Update(*txn, kReviewsTable, ReviewKey(0, 0), "open edit");
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> reviews;
    site->W1GetMovieReviews(0, &reviews);
    benchmark::DoNotOptimize(reviews);
  }
  owner->Abort(*txn);
}
BENCHMARK(BM_W1_UnderOpenWriter);

// The multi-TC fault story over the wire: crash + restart one TC, crash
// + recover the shared user DC (both TCs redo-resend in batches), then
// verify the Reviews/MyReviews redundancy invariant.
void BM_FaultRecoveryCycle(benchmark::State& state) {
  MovieSite* site = GetSite();
  for (auto _ : state) {
    Status s = site->cluster()->CrashAndRestartTc(0);
    if (s.ok()) s = site->cluster()->CrashAndRecoverDc(2);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(site);
  }
  const TcStats& tc1 = site->cluster()->tc(0)->stats();
  const TcStats& tc2 = site->cluster()->tc(1)->stats();
  state.counters["redo_ops"] = static_cast<double>(
      tc1.recovery_resent_ops.load() + tc2.recovery_resent_ops.load());
  state.counters["redo_msgs"] = static_cast<double>(
      tc1.recovery_resend_msgs.load() + tc2.recovery_resend_msgs.load());
  Status s = site->VerifyConsistency();
  if (!s.ok()) state.SkipWithError(s.ToString().c_str());
}
BENCHMARK(BM_FaultRecoveryCycle)->Iterations(2);

// PR 8: redo-log shipping + hot-standby failover. One cycle = build a
// replicated cluster (1 DC + 1 standby riding its redo stream), push a
// write burst, read the replica lag, crash the primary and promote the
// standby, then finish the workload through the new primary. The
// headline counters are the failover resend economics: suffix_skipped
// (ops the standby's shipped log already held — NOT resent) vs
// redo_resent (the in-flight suffix that actually traveled).
void BM_ReplicaShipAndFailover(benchmark::State& state) {
  uint64_t max_lag = 0;
  uint64_t skipped = 0, resent = 0;
  for (auto _ : state) {
    ClusterOptions options;
    options.num_dcs = 1;
    options.replicas_per_dc = 1;
    options.transport = TransportKind::kDirect;
    TcSpec spec;
    spec.options.tc_id = 1;
    spec.options.resend_interval_ms = 5;
    options.tcs.push_back(spec);
    auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
    TransactionComponent* tc = cluster->tc(0);
    Status s = tc->CreateTable(1);
    for (int i = 0; s.ok() && i < 600; ++i) {
      auto txn = tc->Begin();
      if (!txn.ok()) {
        s = txn.status();
        break;
      }
      s = tc->Upsert(*txn, 1, "key" + std::to_string(i % 97),
                     "v" + std::to_string(i));
      if (s.ok()) s = tc->Commit(*txn);
      if (i == 300) {
        const uint64_t lag = cluster->ReplicaLag(0);
        if (lag > max_lag) max_lag = lag;
      }
    }
    if (s.ok()) s = cluster->FailoverDc(0);
    for (int i = 600; s.ok() && i < 700; ++i) {
      auto txn = tc->Begin();
      if (!txn.ok()) {
        s = txn.status();
        break;
      }
      s = tc->Upsert(*txn, 1, "key" + std::to_string(i % 97),
                     "v" + std::to_string(i));
      if (s.ok()) s = tc->Commit(*txn);
    }
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    skipped = tc->stats().suffix_skipped_ops.load();
    resent = tc->stats().recovery_resent_ops.load();
  }
  state.counters["mid_burst_lag"] = static_cast<double>(max_lag);
  state.counters["suffix_skipped"] = static_cast<double>(skipped);
  state.counters["redo_resent"] = static_cast<double>(resent);
}
BENCHMARK(BM_ReplicaShipAndFailover)->Iterations(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cloud
}  // namespace untx

BENCHMARK_MAIN();
