// Experiment F2 (Figure 2, §6.3): the movie review site — W1..W4 on the
// partitioned 2-TC / 3-DC deployment. The claims under test: every
// workload touches at most two machines, updates need no distributed
// transactions, and the read path never blocks.
#include <benchmark/benchmark.h>

#include "cloud/movie_site.h"

namespace untx {
namespace cloud {
namespace {

MovieSite* GetSite() {
  static std::unique_ptr<MovieSite> site = [] {
    MovieSiteConfig config;
    config.num_users = 200;
    config.num_movies = 50;
    config.versioning = true;
    auto s = std::move(MovieSite::Open(config)).ValueOrDie();
    s->Setup();
    // Seed reviews so W1/W4 have data.
    for (uint32_t uid = 0; uid < config.num_users; ++uid) {
      s->W2AddReview(uid, uid % config.num_movies, "seed review");
    }
    return s;
  }();
  return site.get();
}

void BM_W1_GetMovieReviews(benchmark::State& state) {
  MovieSite* site = GetSite();
  uint32_t mid = 0;
  uint64_t reviews_returned = 0;
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> reviews;
    site->W1GetMovieReviews(mid++ % site->config().num_movies, &reviews);
    reviews_returned += reviews.size();
  }
  state.counters["reviews/op"] =
      benchmark::Counter(static_cast<double>(reviews_returned),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_W1_GetMovieReviews);

void BM_W2_AddReview(benchmark::State& state) {
  MovieSite* site = GetSite();
  uint32_t i = 1000;  // fresh (uid, mid) pairs via upsert
  for (auto _ : state) {
    const uint32_t uid = i % site->config().num_users;
    const uint32_t mid = (i / 7) % site->config().num_movies;
    site->W2AddReview(uid, mid, "bench review");
    ++i;
  }
  // One transaction, two DCs, zero coordination messages between TCs.
  state.counters["dcs_touched"] = 2;
}
BENCHMARK(BM_W2_AddReview);

void BM_W3_UpdateProfile(benchmark::State& state) {
  MovieSite* site = GetSite();
  uint32_t uid = 0;
  for (auto _ : state) {
    site->W3UpdateProfile(uid++ % site->config().num_users, "new profile");
  }
}
BENCHMARK(BM_W3_UpdateProfile);

void BM_W4_GetUserReviews(benchmark::State& state) {
  MovieSite* site = GetSite();
  uint32_t uid = 0;
  uint64_t reviews_returned = 0;
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> reviews;
    site->W4GetUserReviews(uid++ % site->config().num_users, &reviews);
    reviews_returned += reviews.size();
  }
  state.counters["reviews/op"] =
      benchmark::Counter(static_cast<double>(reviews_returned),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_W4_GetUserReviews);

// W1 while a writer holds an open transaction on the same movie: the
// read-committed reader must not block (§6.2.2 "Readers are never
// blocked").
void BM_W1_UnderOpenWriter(benchmark::State& state) {
  MovieSite* site = GetSite();
  TransactionComponent* owner = site->OwnerTc(0);
  auto txn = owner->Begin();
  owner->Update(*txn, kReviewsTable, ReviewKey(0, 0), "open edit");
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> reviews;
    site->W1GetMovieReviews(0, &reviews);
    benchmark::DoNotOptimize(reviews);
  }
  owner->Abort(*txn);
}
BENCHMARK(BM_W1_UnderOpenWriter);

}  // namespace
}  // namespace cloud
}  // namespace untx

BENCHMARK_MAIN();
