// Experiment C1 (§3.1): the two range-locking protocols.
//
//   fetch-ahead  — probe, lock returned keys + fencepost, validated read;
//                  fine-grained, more lock calls + probe round trips.
//   partition(N) — static key-space partition locks; "should reduce
//                  locking overhead since fewer locks are needed", but
//                  "gives up some concurrency".
//
// Measured: scan cost and insert cost per protocol, lock acquisitions
// and probe round-trips per operation, and writer throughput under a
// concurrent scanner (the concurrency give-up).
#include <thread>

#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;
constexpr int kRows = 4000;

std::unique_ptr<UnbundledDb> MakeDb(RangeLockProtocol protocol,
                                    int partitions) {
  UnbundledDbOptions options = DefaultDbOptions();
  options.tc.range_protocol = protocol;
  options.tc.insert_phantom_protection =
      protocol == RangeLockProtocol::kFetchAhead;
  for (int i = 1; i < partitions; ++i) {
    options.tc.partitions.boundaries.push_back(Key(kRows * i / partitions));
  }
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  Load(db.get(), kTable, kRows);
  return db;
}

// arg0: 0 = fetch-ahead, N>0 = partition protocol with N ranges.
void BM_Scan100(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto db = MakeDb(mode == 0 ? RangeLockProtocol::kFetchAhead
                             : RangeLockProtocol::kPartition,
                   mode == 0 ? 0 : mode);
  const uint64_t locks0 = db->tc()->lock_stats().acquisitions;
  const uint64_t probes0 = db->tc()->stats().probes.load();
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    std::vector<std::pair<std::string, std::string>> rows;
    const int start = (i * 131) % (kRows - 120);
    txn.Scan(kTable, Key(start), Key(start + 100), 0, &rows);
    txn.Commit();
    benchmark::DoNotOptimize(rows);
    ++i;
  }
  state.counters["locks/op"] = benchmark::Counter(
      static_cast<double>(db->tc()->lock_stats().acquisitions - locks0),
      benchmark::Counter::kAvgIterations);
  state.counters["probes/op"] = benchmark::Counter(
      static_cast<double>(db->tc()->stats().probes.load() - probes0),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Scan100)->Arg(0)->Arg(1)->Arg(16)->Arg(256);

void BM_Insert(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto db = MakeDb(mode == 0 ? RangeLockProtocol::kFetchAhead
                             : RangeLockProtocol::kPartition,
                   mode == 0 ? 0 : mode);
  const uint64_t locks0 = db->tc()->lock_stats().acquisitions;
  int i = kRows;
  for (auto _ : state) {
    Txn txn(db->tc());
    txn.Insert(kTable, Key(i++), "inserted");
    txn.Commit();
  }
  state.counters["locks/op"] = benchmark::Counter(
      static_cast<double>(db->tc()->lock_stats().acquisitions - locks0),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Insert)->Arg(0)->Arg(1)->Arg(16)->Arg(256);

// The concurrency cost of coarse locks: writer throughput while a
// scanner repeatedly scans a disjoint range. With one table lock the
// writer serializes behind the scanner; with fetch-ahead or many
// partitions it does not.
void BM_WriterUnderScanner(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto db = MakeDb(mode == 0 ? RangeLockProtocol::kFetchAhead
                             : RangeLockProtocol::kPartition,
                   mode == 0 ? 0 : mode);
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load()) {
      Txn txn(db->tc());
      std::vector<std::pair<std::string, std::string>> rows;
      txn.Scan(kTable, Key(0), Key(400), 0, &rows);
      txn.Commit();
    }
  });
  int i = 0;
  uint64_t failed = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    // Writes far from the scanned range.
    if (!txn.Update(kTable, Key(2000 + (i++ % 1500)), "w").ok()) ++failed;
    txn.Commit();
  }
  stop.store(true);
  scanner.join();
  state.counters["blocked_or_failed"] =
      benchmark::Counter(static_cast<double>(failed));
}
BENCHMARK(BM_WriterUnderScanner)
    ->Arg(0)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
