// Experiment C1 (§3.1): the two range-locking protocols.
//
//   fetch-ahead  — probe, lock returned keys + fencepost, validated read;
//                  fine-grained, more lock calls + probe round trips.
//   partition(N) — static key-space partition locks; "should reduce
//                  locking overhead since fewer locks are needed", but
//                  "gives up some concurrency".
//
// Measured: scan cost and insert cost per protocol, lock acquisitions
// and probe round-trips per operation, and writer throughput under a
// concurrent scanner (the concurrency give-up).
#include <algorithm>
#include <thread>

#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;
constexpr int kRows = 4000;

std::unique_ptr<UnbundledDb> MakeDb(RangeLockProtocol protocol,
                                    int partitions) {
  UnbundledDbOptions options = DefaultDbOptions();
  options.tc.range_protocol = protocol;
  options.tc.insert_phantom_protection =
      protocol == RangeLockProtocol::kFetchAhead;
  for (int i = 1; i < partitions; ++i) {
    options.tc.partitions.boundaries.push_back(Key(kRows * i / partitions));
  }
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  Load(db.get(), kTable, kRows);
  return db;
}

// arg0: 0 = fetch-ahead, N>0 = partition protocol with N ranges.
void BM_Scan100(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto db = MakeDb(mode == 0 ? RangeLockProtocol::kFetchAhead
                             : RangeLockProtocol::kPartition,
                   mode == 0 ? 0 : mode);
  const uint64_t locks0 = db->tc()->lock_stats().acquisitions;
  const uint64_t probes0 = db->tc()->stats().probes.load();
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    std::vector<std::pair<std::string, std::string>> rows;
    const int start = (i * 131) % (kRows - 120);
    txn.Scan(kTable, Key(start), Key(start + 100), 0, &rows);
    txn.Commit();
    benchmark::DoNotOptimize(rows);
    ++i;
  }
  state.counters["locks/op"] = benchmark::Counter(
      static_cast<double>(db->tc()->lock_stats().acquisitions - locks0),
      benchmark::Counter::kAvgIterations);
  state.counters["probes/op"] = benchmark::Counter(
      static_cast<double>(db->tc()->stats().probes.load() - probes0),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Scan100)->Arg(0)->Arg(1)->Arg(16)->Arg(256);

void BM_Insert(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto db = MakeDb(mode == 0 ? RangeLockProtocol::kFetchAhead
                             : RangeLockProtocol::kPartition,
                   mode == 0 ? 0 : mode);
  const uint64_t locks0 = db->tc()->lock_stats().acquisitions;
  int i = kRows;
  for (auto _ : state) {
    Txn txn(db->tc());
    txn.Insert(kTable, Key(i++), "inserted");
    txn.Commit();
  }
  state.counters["locks/op"] = benchmark::Counter(
      static_cast<double>(db->tc()->lock_stats().acquisitions - locks0),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Insert)->Arg(0)->Arg(1)->Arg(16)->Arg(256);

// The concurrency cost of coarse locks: writer throughput while a
// scanner repeatedly scans a disjoint range. With one table lock the
// writer serializes behind the scanner; with fetch-ahead or many
// partitions it does not.
void BM_WriterUnderScanner(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto db = MakeDb(mode == 0 ? RangeLockProtocol::kFetchAhead
                             : RangeLockProtocol::kPartition,
                   mode == 0 ? 0 : mode);
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load()) {
      Txn txn(db->tc());
      std::vector<std::pair<std::string, std::string>> rows;
      txn.Scan(kTable, Key(0), Key(400), 0, &rows);
      txn.Commit();
    }
  });
  int i = 0;
  uint64_t failed = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    // Writes far from the scanned range.
    if (!txn.Update(kTable, Key(2000 + (i++ % 1500)), "w").ok()) ++failed;
    txn.Commit();
  }
  stop.store(true);
  scanner.join();
  state.counters["blocked_or_failed"] =
      benchmark::Counter(static_cast<double>(failed));
}
BENCHMARK(BM_WriterUnderScanner)
    ->Arg(0)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// ---- Scan-heavy arm over the channel transport (PR 3) -----------------------
//
// The unbundling cost is per MESSAGE (§5.1): the blocking protocol pays
// one ScanRange round trip per window, the streamed protocol pays one
// kScanStream request per scan with chunked replies, and the fetch-ahead
// transactional scan prefetches the next probe while the current window
// is locked and validated. arg0: 1 = streamed/prefetching, 0 = blocking.

constexpr int kChannelRows = 1500;

std::unique_ptr<UnbundledDb> MakeChannelScanDb(bool streaming) {
  UnbundledDbOptions options = DefaultDbOptions();
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.min_delay_us = 50;
  options.channel.request_channel.max_delay_us = 150;
  options.channel.reply_channel.min_delay_us = 50;
  options.channel.reply_channel.max_delay_us = 150;
  options.tc.scan_streaming = streaming;
  options.tc.scan_stream_chunk = 64;
  options.tc.fetch_ahead_batch = 32;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  // Pipelined load: batched flushes, not one round trip per row.
  for (int base = 0; base < kChannelRows; base += 64) {
    Txn txn(db->tc());
    for (int i = base; i < std::min(kChannelRows, base + 64); ++i) {
      txn.InsertAsync(kTable, Key(i), "payload-0123456789");
    }
    txn.Flush();
    txn.Commit();
  }
  return db;
}

void BM_SharedScanChannel(benchmark::State& state) {
  const bool streaming = state.range(0) == 1;
  auto db = MakeChannelScanDb(streaming);
  const uint64_t msgs0 = db->channel(0)->op_messages();
  const uint64_t scan_msgs0 = db->channel(0)->scan_messages();
  uint64_t rows_returned = 0;
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> rows;
    db->tc()->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty, &rows);
    rows_returned += rows.size();
  }
  state.counters["rows/op"] = benchmark::Counter(
      static_cast<double>(rows_returned), benchmark::Counter::kAvgIterations);
  // Blocking mode: ~rows/128 ScanRange request messages per scan.
  // Streamed mode: 1 scan request message per scan.
  state.counters["scan_req_msgs/op"] = benchmark::Counter(
      static_cast<double>((db->channel(0)->op_messages() - msgs0) +
                          (db->channel(0)->scan_messages() - scan_msgs0)),
      benchmark::Counter::kAvgIterations);
  state.counters["scan_restarts"] = static_cast<double>(
      db->tc()->stats().scan_restarts.load());
}
BENCHMARK(BM_SharedScanChannel)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TxnScanChannel(benchmark::State& state) {
  const bool streaming = state.range(0) == 1;
  auto db = MakeChannelScanDb(streaming);
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    std::vector<std::pair<std::string, std::string>> rows;
    const int start = (i * 131) % (kChannelRows - 450);
    txn.Scan(kTable, Key(start), Key(start + 400), 0, &rows);
    txn.Commit();
    benchmark::DoNotOptimize(rows);
    ++i;
  }
  state.counters["probes/op"] = benchmark::Counter(
      static_cast<double>(db->tc()->stats().probes.load()),
      benchmark::Counter::kAvgIterations);
  state.counters["prefetch_hits/op"] = benchmark::Counter(
      static_cast<double>(db->tc()->stats().scan_prefetch_hits.load()),
      benchmark::Counter::kAvgIterations);
  // PR 4: the streamed fetch-ahead fold sends NO operation messages —
  // probes and validated reads both ride the stream cursor.
  state.counters["op_msgs"] = static_cast<double>(
      db->channel(0)->op_messages());
  state.counters["credit_msgs"] = static_cast<double>(
      db->channel(0)->scan_credit_messages());
}
BENCHMARK(BM_TxnScanChannel)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Scan flow-control arm (PR 4) -------------------------------------------
//
// Eager push vs credited streams: the credit window bounds how many
// chunks the DC may run ahead of the TC cursor, so the reply channel's
// peak scan residency (max_queued_scan_bytes) stays at credit x chunk
// size instead of growing with the whole result. arg0: credit window in
// chunks (0 = eager push, the PR 3 behavior).

std::unique_ptr<UnbundledDb> MakeCreditScanDb(uint32_t credit) {
  UnbundledDbOptions options = DefaultDbOptions();
  options.transport = TransportKind::kChannel;
  // Latency makes channel residency visible: chunks sit in flight.
  options.channel.reply_channel.min_delay_us = 150;
  options.channel.reply_channel.max_delay_us = 300;
  options.tc.scan_stream_chunk = 64;
  options.tc.scan_credit_chunks = credit;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  for (int base = 0; base < kChannelRows; base += 64) {
    Txn txn(db->tc());
    for (int i = base; i < std::min(kChannelRows, base + 64); ++i) {
      txn.InsertAsync(kTable, Key(i), "payload-0123456789");
    }
    txn.Flush();
    txn.Commit();
  }
  return db;
}

void BM_SharedScanCreditWindow(benchmark::State& state) {
  const uint32_t credit = static_cast<uint32_t>(state.range(0));
  auto db = MakeCreditScanDb(credit);
  uint64_t rows_returned = 0;
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> rows;
    db->tc()->ScanShared(kTable, "", "", 0, ReadFlavor::kDirty, &rows);
    rows_returned += rows.size();
  }
  state.counters["rows/op"] = benchmark::Counter(
      static_cast<double>(rows_returned), benchmark::Counter::kAvgIterations);
  state.counters["peak_queued_bytes"] = static_cast<double>(
      db->channel(0)->max_queued_scan_bytes());
  state.counters["credit_msgs/op"] = benchmark::Counter(
      static_cast<double>(db->channel(0)->scan_credit_messages()),
      benchmark::Counter::kAvgIterations);
  state.counters["dc_pauses"] = static_cast<double>(
      db->dc(0)->stats().scan_stream_pauses.load());
  state.counters["cursor_hint_hits"] = static_cast<double>(
      db->dc(0)->stats().scan_cursor_hint_hits.load());
}
BENCHMARK(BM_SharedScanCreditWindow)
    ->Arg(0)   // eager push
    ->Arg(2)   // tightest practical window
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
