// Experiment C10 (§4.2.1 / §7): pipelined asynchronous operations with a
// batched TC→DC wire protocol, against the blocking one-message-per-op
// API. The §7 unbundling overhead is per-message — a multi-op transaction
// on the channel transport pays one full round trip per record operation
// unless the TC pipelines. Measured:
//
//   * multi-get (K point reads per txn) and batch-write (K upserts per
//     txn), blocking vs pipelined, on the direct and channel transports;
//   * channel request messages per transaction (the lever itself): the
//     blocking API sends K, the pipelined API coalesces toward 1.
//
// The blocking API numbers double as a regression guard: they ride the
// same submit+await path and must not move.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 10;
constexpr int kRows = 1024;

std::unique_ptr<UnbundledDb> MakeDb(TransportKind transport) {
  UnbundledDbOptions options = DefaultDbOptions();
  options.transport = transport;
  if (transport == TransportKind::kChannel) {
    // A small per-message delay models datacenter fabric latency; it is
    // what makes round trips (not bytes) the dominant cost.
    options.channel.request_channel.min_delay_us = 20;
    options.channel.request_channel.max_delay_us = 60;
    options.channel.reply_channel.min_delay_us = 20;
    options.channel.reply_channel.max_delay_us = 60;
  }
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  Load(db.get(), kTable, kRows);
  return db;
}

/// arg0: 0 = direct, 1 = channel. arg1: 0 = blocking, 1 = pipelined.
/// arg2: K ops per transaction.
void BM_MultiGet(benchmark::State& state) {
  const TransportKind transport =
      state.range(0) == 0 ? TransportKind::kDirect : TransportKind::kChannel;
  const bool pipelined = state.range(1) == 1;
  const int k = static_cast<int>(state.range(2));
  auto db = MakeDb(transport);

  const uint64_t msgs_before =
      db->channel() != nullptr ? db->channel()->request_channel().sent() : 0;
  int i = 0;
  uint64_t txns = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    if (pipelined) {
      std::vector<std::string> keys;
      keys.reserve(k);
      for (int j = 0; j < k; ++j) keys.push_back(Key((i + j * 37) % kRows));
      std::vector<std::string> values;
      txn.MultiRead(kTable, keys, &values);
      benchmark::DoNotOptimize(values);
    } else {
      for (int j = 0; j < k; ++j) {
        std::string value;
        txn.Read(kTable, Key((i + j * 37) % kRows), &value);
        benchmark::DoNotOptimize(value);
      }
    }
    txn.Commit();
    ++i;
    ++txns;
  }
  if (db->channel() != nullptr && txns > 0) {
    // Request messages per txn: K for blocking, ~1 for pipelined (plus
    // the control daemon's EOSL/LWM pushes, amortized across txns).
    state.counters["msgs/txn"] = static_cast<double>(
        db->channel()->request_channel().sent() - msgs_before) /
        static_cast<double>(txns);
  }
  ReportTcStats(state, *db->tc());
}
BENCHMARK(BM_MultiGet)
    ->Args({0, 0, 16})
    ->Args({0, 1, 16})
    ->Args({1, 0, 16})
    ->Args({1, 1, 16})
    ->Args({1, 0, 64})
    ->Args({1, 1, 64})
    ->UseRealTime();

/// Same grid for writes: K upserts per transaction.
void BM_BatchWrite(benchmark::State& state) {
  const TransportKind transport =
      state.range(0) == 0 ? TransportKind::kDirect : TransportKind::kChannel;
  const bool pipelined = state.range(1) == 1;
  const int k = static_cast<int>(state.range(2));
  auto db = MakeDb(transport);

  const uint64_t msgs_before =
      db->channel() != nullptr ? db->channel()->request_channel().sent() : 0;
  int i = 0;
  uint64_t txns = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    if (pipelined) {
      for (int j = 0; j < k; ++j) {
        txn.UpsertAsync(kTable, Key((i + j * 37) % kRows), "w-pipelined");
      }
      txn.Flush();
    } else {
      for (int j = 0; j < k; ++j) {
        txn.Upsert(kTable, Key((i + j * 37) % kRows), "w-blocking");
      }
    }
    txn.Commit();
    ++i;
    ++txns;
  }
  if (db->channel() != nullptr && txns > 0) {
    state.counters["msgs/txn"] = static_cast<double>(
        db->channel()->request_channel().sent() - msgs_before) /
        static_cast<double>(txns);
  }
  ReportTcStats(state, *db->tc());
}
BENCHMARK(BM_BatchWrite)
    ->Args({0, 0, 16})
    ->Args({0, 1, 16})
    ->Args({1, 0, 16})
    ->Args({1, 1, 16})
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace untx
