// Experiment C9 (§4.1.1(3-4), §4.2.1): TC logging and durability.
//
// Measured:
//  * commit cost vs simulated log-device force latency, with and without
//    group commit (amortizing forces across concurrent committers);
//  * the cost of EOSL/LWM control traffic at different push cadences
//    ("from time to time, the TC will send the DC LWM...").
#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;

// arg0: force delay in microseconds; arg1: group commit on/off.
// 4 concurrent committers.
void BM_CommitThroughput(benchmark::State& state) {
  const uint32_t force_delay = static_cast<uint32_t>(state.range(0));
  const bool group = state.range(1) == 1;
  UnbundledDbOptions options = DefaultDbOptions();
  options.tc.log.force_delay_us = force_delay;
  options.tc.group_commit = group;
  options.tc.group_commit_interval_us = 200;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  Load(db.get(), kTable, 400);

  for (auto _ : state) {
    std::atomic<uint64_t> commits{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < 4; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < 50; ++i) {
          Txn txn(db->tc());
          txn.Update(kTable, Key((c * 100 + i) % 400), "w");
          if (txn.Commit().ok()) commits.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    state.counters["commits"] = static_cast<double>(commits.load());
  }
  state.counters["forces"] =
      static_cast<double>(db->tc()->log()->force_count());
  state.counters["log_bytes"] =
      static_cast<double>(db->tc()->log()->bytes_appended());
}
BENCHMARK(BM_CommitThroughput)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

// Group-commit wake granularity (PR 3): the forcer is microsecond-
// granular and poked on demand by waiting committers, so commit latency
// tracks the force cost — NOT the daemon interval. Sweeping the interval
// (200µs … 400ms) must leave single-committer latency flat; before the
// fix, sub-ms intervals silently became a 1ms tick and large intervals
// stalled every commit. arg0: group_commit_interval_us.
void BM_GroupCommitWakeLatency(benchmark::State& state) {
  UnbundledDbOptions options = DefaultDbOptions();
  options.tc.group_commit = true;
  options.tc.group_commit_interval_us = static_cast<uint32_t>(state.range(0));
  options.tc.log.force_delay_us = 50;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  Load(db.get(), kTable, 100);
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    txn.Update(kTable, Key(i++ % 100), "w");
    txn.Commit();
  }
  state.counters["on_demand_wakes"] = static_cast<double>(
      db->tc()->stats().group_commit_wakes.load());
  state.counters["forces"] =
      static_cast<double>(db->tc()->log()->force_count());
}
BENCHMARK(BM_GroupCommitWakeLatency)
    ->Arg(200)
    ->Arg(5000)
    ->Arg(400000)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// Read-only transactions need no force at all (§4.1.1: force "at
// appropriate times").
void BM_ReadOnlyCommitNoForce(benchmark::State& state) {
  UnbundledDbOptions options = DefaultDbOptions();
  options.tc.log.force_delay_us = 500;  // would hurt if forced
  options.tc.control_interval_ms = 1000;  // keep daemon forces out
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  Load(db.get(), kTable, 100);
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    std::string value;
    txn.Read(kTable, Key(i++ % 100), &value);
    txn.Commit();
  }
}
BENCHMARK(BM_ReadOnlyCommitNoForce);

// Control-push cadence: tighter EOSL/LWM intervals cost messages but
// bound DC flush lag. Counter: dirty pages left after the run.
void BM_ControlCadence(benchmark::State& state) {
  const uint32_t interval = static_cast<uint32_t>(state.range(0));
  UnbundledDbOptions options = DefaultDbOptions();
  options.tc.control_interval_ms = interval;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    txn.Upsert(kTable, Key(i++ % 2000), "w");
    txn.Commit();
    if (i % 64 == 0) db->dc(0)->pool()->FlushAllEligible();
  }
  state.counters["dirty_left"] =
      static_cast<double>(db->dc(0)->pool()->DirtyCount());
  state.counters["flushes"] =
      static_cast<double>(db->dc(0)->pool()->stats().flushes);
}
BENCHMARK(BM_ControlCadence)->Arg(1)->Arg(10)->Arg(100)->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
