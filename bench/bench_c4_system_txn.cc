// Experiment C4 (§5.2): system transactions — splits and consolidates as
// DC-local logged atomic actions, replayed before TC redo.
//
// Claims under test:
//  * split logging is cheap (logical split-key record for the pre-split
//    page + one physical image for the new page);
//  * page delete/consolidate uses a physical image ("more costly in log
//    space than the traditional logical system transaction ... but page
//    deletes are rare, so the extra cost should not be significant");
//  * recovery replays SMOs out of original order, before TC redo, and
//    still converges.
#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;

UnbundledDbOptions SmallPages() {
  UnbundledDbOptions options = DefaultDbOptions();
  options.store.page_size = 1024;  // dense SMO activity
  options.store.trailer_capacity = 128;
  options.dc.max_value_size = 200;
  return options;
}

void BM_InsertHeavySplitStorm(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::move(UnbundledDb::Open(SmallPages())).ValueOrDie();
    db->CreateTable(kTable);
    state.ResumeTiming();
    Load(db.get(), kTable, 2000, "value-abcdefghij");
    state.PauseTiming();
    const auto& bt = db->dc(0)->btree()->stats();
    state.counters["splits"] = static_cast<double>(bt.splits);
    state.counters["dc_log_bytes/split"] =
        bt.splits == 0 ? 0
                       : static_cast<double>(
                             db->dc(0)->dc_log()->bytes_appended()) /
                             static_cast<double>(bt.splits);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_InsertHeavySplitStorm)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_DeleteHeavyConsolidation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::move(UnbundledDb::Open(SmallPages())).ValueOrDie();
    db->CreateTable(kTable);
    Load(db.get(), kTable, 2000, "value-abcdefghij");
    const uint64_t log_after_load = db->dc(0)->dc_log()->bytes_appended();
    state.ResumeTiming();
    for (int i = 0; i < 2000; ++i) {
      Txn txn(db->tc());
      txn.Delete(kTable, Key(i));
      txn.Commit();
    }
    state.PauseTiming();
    const auto& bt = db->dc(0)->btree()->stats();
    state.counters["consolidates"] = static_cast<double>(bt.consolidates);
    state.counters["dc_log_bytes/consolidate"] =
        bt.consolidates == 0
            ? 0
            : static_cast<double>(db->dc(0)->dc_log()->bytes_appended() -
                                  log_after_load) /
                  static_cast<double>(bt.consolidates);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_DeleteHeavyConsolidation)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Recovery correctness + cost after an SMO storm: crash the DC right
// after heavy structure modification; measure replay + redo time.
void BM_RecoveryAfterSmoStorm(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::move(UnbundledDb::Open(SmallPages())).ValueOrDie();
    db->CreateTable(kTable);
    Load(db.get(), kTable, 1500, "value-abcdefghij");
    db->CrashDc(0);
    state.ResumeTiming();

    Status s = db->RecoverDc(0);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());

    state.PauseTiming();
    Status inv = db->dc(0)->btree()->CheckInvariants(kTable);
    if (!inv.ok()) state.SkipWithError(inv.ToString().c_str());
    Txn txn(db->tc());
    std::vector<std::pair<std::string, std::string>> rows;
    txn.Scan(kTable, "", "", 0, &rows);
    txn.Commit();
    state.counters["rows_recovered"] = static_cast<double>(rows.size());
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RecoveryAfterSmoStorm)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
