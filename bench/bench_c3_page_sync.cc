// Experiment C3 (§5.1.2): the three page-sync strategies.
//
//   1 kWaitForLwm — refuse ops beyond the in-set, wait for the LWM to
//                   collapse the abLSN, store a single LSN. Delays flush.
//   2 kStoreFull  — serialize the whole abLSN into the trailer. Costs
//                   page space, flushes immediately.
//   3 kHybrid     — wait until the in-set is small, then serialize.
//
// Measured: time to drain all dirty pages (checkpoint latency), flush
// deferrals, and trailer bytes per flush, for each strategy.
#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;

void BM_CheckpointDrain(benchmark::State& state) {
  const auto strategy = static_cast<PageSyncStrategy>(state.range(0));
  double trailer_per_flush = 0;
  double deferrals = 0;
  for (auto _ : state) {
    state.PauseTiming();
    UnbundledDbOptions options = DefaultDbOptions();
    options.dc.buffer_pool.strategy = strategy;
    options.dc.buffer_pool.hybrid_cap = 8;
    options.tc.control_interval_ms = 2;  // LWM keeps flowing
    auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
    db->CreateTable(kTable);
    Load(db.get(), kTable, 1500);
    state.ResumeTiming();

    // Drain: checkpoint waits until every page with ops is stable.
    Status s = db->tc()->TakeCheckpoint();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());

    state.PauseTiming();
    const auto& stats = db->dc(0)->pool()->stats();
    deferrals = static_cast<double>(stats.flush_deferrals);
    trailer_per_flush =
        stats.flushes == 0
            ? 0
            : static_cast<double>(stats.trailer_bytes_written) /
                  static_cast<double>(stats.flushes);
    state.ResumeTiming();
  }
  state.counters["flush_deferrals"] = deferrals;
  state.counters["trailer_bytes/flush"] = trailer_per_flush;
}
BENCHMARK(BM_CheckpointDrain)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Strategy 1's visible cost during normal running: writes that land on a
// flush-waiting page with an LSN beyond the in-set must stall (§5.1.2
// method 1 "refuse to execute operations ... with LSNs greater than the
// highest valued LSNin").
void BM_WriteWhileFlushing(benchmark::State& state) {
  const auto strategy = static_cast<PageSyncStrategy>(state.range(0));
  UnbundledDbOptions options = DefaultDbOptions();
  options.dc.buffer_pool.strategy = strategy;
  options.tc.control_interval_ms = 1;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);
  Load(db.get(), kTable, 500);
  int i = 0;
  for (auto _ : state) {
    {
      Txn txn(db->tc());
      txn.Update(kTable, Key(i % 500), "x");
      txn.Commit();
    }
    if (i % 32 == 0) {
      // Kick flushes while writes continue.
      db->dc(0)->pool()->FlushAllEligible();
    }
    ++i;
  }
  state.counters["flush_deferrals"] =
      static_cast<double>(db->dc(0)->pool()->stats().flush_deferrals);
  state.counters["flushes"] =
      static_cast<double>(db->dc(0)->pool()->stats().flushes);
}
BENCHMARK(BM_WriteWhileFlushing)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
