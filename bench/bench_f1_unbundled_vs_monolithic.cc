// Experiment F1 (Figure 1, §1.2, §7): the unbundled TC/DC kernel vs the
// integrated monolithic baseline on identical single-node OLTP
// operations. The paper predicts the unbundled kernel "inevitably has
// longer code paths"; this bench quantifies the overhead of the
// arm's-length interaction (LSN reservation, request/reply structs,
// idempotence bookkeeping, reply cache) against the bundled call path.
#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;
constexpr int kPreload = 2000;

UnbundledDb* GetUnbundled() {
  static std::unique_ptr<UnbundledDb> db = [] {
    auto d = std::move(UnbundledDb::Open(DefaultDbOptions())).ValueOrDie();
    d->CreateTable(kTable);
    Load(d.get(), kTable, kPreload);
    return d;
  }();
  return db.get();
}

monolithic::MonolithicEngine* GetMonolithic() {
  static std::unique_ptr<StableStore> store =
      std::make_unique<StableStore>();
  static std::unique_ptr<monolithic::MonolithicEngine> engine = [] {
    auto e = std::make_unique<monolithic::MonolithicEngine>(store.get());
    e->Initialize();
    e->CreateTable(kTable);
    for (int i = 0; i < kPreload; ++i) {
      TxnId txn = std::move(e->Begin()).ValueOrDie();
      e->Insert(txn, kTable, Key(i), "payload-0123456789");
      e->Commit(txn);
    }
    return e;
  }();
  return engine.get();
}

void BM_Unbundled_ReadTxn(benchmark::State& state) {
  UnbundledDb* db = GetUnbundled();
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    std::string value;
    txn.Read(kTable, Key(i++ % kPreload), &value);
    txn.Commit();
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_Unbundled_ReadTxn);

void BM_Monolithic_ReadTxn(benchmark::State& state) {
  auto* engine = GetMonolithic();
  int i = 0;
  for (auto _ : state) {
    TxnId txn = std::move(engine->Begin()).ValueOrDie();
    std::string value;
    engine->Read(txn, kTable, Key(i++ % kPreload), &value);
    engine->Commit(txn);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_Monolithic_ReadTxn);

void BM_Unbundled_UpdateTxn(benchmark::State& state) {
  UnbundledDb* db = GetUnbundled();
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    txn.Update(kTable, Key(i++ % kPreload), "updated-payload-XY");
    txn.Commit();
  }
}
BENCHMARK(BM_Unbundled_UpdateTxn);

void BM_Monolithic_UpdateTxn(benchmark::State& state) {
  auto* engine = GetMonolithic();
  int i = 0;
  for (auto _ : state) {
    TxnId txn = std::move(engine->Begin()).ValueOrDie();
    engine->Update(txn, kTable, Key(i++ % kPreload), "updated-payload-XY");
    engine->Commit(txn);
  }
}
BENCHMARK(BM_Monolithic_UpdateTxn);

void BM_Unbundled_Mix5R1W(benchmark::State& state) {
  UnbundledDb* db = GetUnbundled();
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    std::string value;
    for (int r = 0; r < 5; ++r) {
      txn.Read(kTable, Key((i + r * 37) % kPreload), &value);
    }
    txn.Update(kTable, Key(i % kPreload), "mix-updated");
    txn.Commit();
    ++i;
  }
}
BENCHMARK(BM_Unbundled_Mix5R1W);

void BM_Monolithic_Mix5R1W(benchmark::State& state) {
  auto* engine = GetMonolithic();
  int i = 0;
  for (auto _ : state) {
    TxnId txn = std::move(engine->Begin()).ValueOrDie();
    std::string value;
    for (int r = 0; r < 5; ++r) {
      engine->Read(txn, kTable, Key((i + r * 37) % kPreload), &value);
    }
    engine->Update(txn, kTable, Key(i % kPreload), "mix-updated");
    engine->Commit(txn);
    ++i;
  }
}
BENCHMARK(BM_Monolithic_Mix5R1W);

// Heterogeneous-DC instantiation (Figure 1): one TC spanning 3 DCs;
// transactions touch all of them.
void BM_Unbundled_ThreeDcTxn(benchmark::State& state) {
  static std::unique_ptr<UnbundledDb> db = [] {
    UnbundledDbOptions options = DefaultDbOptions();
    options.num_dcs = 3;
    auto d = std::move(UnbundledDb::Open(options)).ValueOrDie();
    for (TableId t : {1, 2, 3}) d->CreateTable(t);
    return d;
  }();
  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    txn.Upsert(1, Key(i % 500), "a");
    txn.Upsert(2, Key(i % 500), "b");
    txn.Upsert(3, Key(i % 500), "c");
    txn.Commit();
    ++i;
  }
}
BENCHMARK(BM_Unbundled_ThreeDcTxn);

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
