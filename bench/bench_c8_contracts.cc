// Experiment C8 (§4.2): the interaction contracts under message failure.
//
// Unique request ids + TC resend + DC idempotence must yield exactly-once
// execution over channels that drop, duplicate, and reorder messages.
// Measured: committed-transaction throughput and resend amplification as
// a function of the loss rate, with the exactly-once property verified
// by row count on every run.
#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 1;

// arg0: drop probability in tenths of a percent applied to BOTH
// channels; arg1: duplication probability likewise.
void BM_ExactlyOnceUnderLoss(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 1000.0;
  const double dup = static_cast<double>(state.range(1)) / 1000.0;
  UnbundledDbOptions options = DefaultDbOptions();
  options.transport = TransportKind::kChannel;
  options.channel.request_channel.drop_prob = drop;
  options.channel.request_channel.dup_prob = dup;
  options.channel.request_channel.max_delay_us = 100;
  options.channel.reply_channel.drop_prob = drop;
  options.channel.reply_channel.dup_prob = dup;
  options.channel.reply_channel.max_delay_us = 100;
  options.tc.resend_interval_ms = 5;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(kTable);

  int i = 0;
  for (auto _ : state) {
    Txn txn(db->tc());
    txn.Insert(kTable, Key(i), "v");
    if (!txn.Commit().ok()) state.SkipWithError("commit failed");
    ++i;
  }

  // Exactly-once verification.
  Txn txn(db->tc());
  std::vector<std::pair<std::string, std::string>> rows;
  txn.Scan(kTable, "", "", 0, &rows);
  txn.Commit();
  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["expected"] = static_cast<double>(i);
  state.counters["exact"] =
      rows.size() == static_cast<size_t>(i) ? 1 : 0;
  state.counters["resends"] =
      static_cast<double>(db->tc()->stats().resends.load());
  state.counters["dup_filtered"] = static_cast<double>(
      db->dc(0)->stats().duplicate_hits.load() +
      db->dc(0)->stats().reply_cache_hits.load());
}
BENCHMARK(BM_ExactlyOnceUnderLoss)
    ->Args({0, 0})      // clean channel
    ->Args({10, 10})    // 1% drop, 1% dup
    ->Args({50, 50})    // 5%
    ->Args({150, 150})  // 15%
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
