// Experiment C7 (§1.1(3), §7): multi-core deployment — TC and DC as
// separately instantiable components with configurable thread counts.
//
// Claims under test: the decomposition lets client threads drive the TC
// while DC work proceeds independently; multiple DC instances spread the
// physical work ("one might deploy a larger number of DC instances ...
// than TC instances for better load balancing"). Absolute scaling here is
// bounded by the CI box's 2 cores — the shape (concurrent clients over
// 1 TC + N DCs) is what is reproduced.
#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace untx {
namespace bench {
namespace {

// arg0: client threads; arg1: number of DC instances. Tables are spread
// across DCs; each client works a disjoint key range of its own table.
void BM_ClientScaling(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int num_dcs = static_cast<int>(state.range(1));
  static std::unique_ptr<UnbundledDb> db;
  static int cached_dcs = -1;
  if (cached_dcs != num_dcs) {
    UnbundledDbOptions options = DefaultDbOptions();
    options.num_dcs = num_dcs;
    db = std::move(UnbundledDb::Open(options)).ValueOrDie();
    for (int t = 1; t <= 8; ++t) {
      db->CreateTable(static_cast<TableId>(t));
      Load(db.get(), static_cast<TableId>(t), 500);
    }
    cached_dcs = num_dcs;
  }

  for (auto _ : state) {
    std::atomic<uint64_t> ops{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        const TableId table = static_cast<TableId>(1 + (c % 8));
        for (int i = 0; i < 200; ++i) {
          Txn txn(db->tc());
          std::string value;
          txn.Read(table, Key((c * 37 + i) % 500), &value);
          txn.Update(table, Key((c * 53 + i) % 500), "w");
          if (txn.Commit().ok()) ops.fetch_add(2);
        }
      });
    }
    for (auto& t : threads) t.join();
    state.counters["ops"] = static_cast<double>(ops.load());
  }
  state.counters["clients"] = clients;
  state.counters["dcs"] = num_dcs;
}
BENCHMARK(BM_ClientScaling)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

// The channel deployment adds DC server threads — the "each component
// could run on a separate core" configuration.
void BM_ChannelServerThreads(benchmark::State& state) {
  const int server_threads = static_cast<int>(state.range(0));
  UnbundledDbOptions options = DefaultDbOptions();
  options.transport = TransportKind::kChannel;
  options.channel.server_threads = server_threads;
  options.tc.resend_interval_ms = 100;
  auto db = std::move(UnbundledDb::Open(options)).ValueOrDie();
  db->CreateTable(1);
  Load(db.get(), 1, 500);

  for (auto _ : state) {
    std::atomic<uint64_t> ops{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < 4; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < 100; ++i) {
          Txn txn(db->tc());
          std::string value;
          txn.Read(1, Key((c * 101 + i) % 500), &value);
          if (txn.Commit().ok()) ops.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    state.counters["ops"] = static_cast<double>(ops.load());
  }
}
BENCHMARK(BM_ChannelServerThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
