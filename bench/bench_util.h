// Shared helpers for the experiment benches (see DESIGN.md §3 and
// EXPERIMENTS.md for the experiment index).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "kernel/unbundled_db.h"
#include "monolithic/engine.h"

namespace untx {
namespace bench {

inline std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

/// Canonical small-footprint options so unbundled and monolithic runs
/// compare like for like.
inline UnbundledDbOptions DefaultDbOptions() {
  UnbundledDbOptions options;
  options.tc.control_interval_ms = 10;
  options.tc.resend_interval_ms = 100;
  // Benches measure the common path; phantom probes are benched
  // explicitly in C1.
  options.tc.insert_phantom_protection = false;
  return options;
}

/// Loads n rows through committed transactions.
inline void Load(UnbundledDb* db, TableId table, int n,
                 const std::string& value = "payload-0123456789") {
  for (int i = 0; i < n; ++i) {
    Txn txn(db->tc());
    txn.Insert(table, Key(i), value);
    txn.Commit();
  }
}

/// Standard TC counters for bench output: operation traffic, the resend
/// daemon's work, and how often the DC answered from its idempotence
/// machinery instead of executing (dup_replies).
inline void ReportTcStats(benchmark::State& state,
                          const TransactionComponent& tc) {
  const TcStats& stats = tc.stats();
  state.counters["ops_sent"] = static_cast<double>(stats.ops_sent.load());
  state.counters["resends"] = static_cast<double>(stats.resends.load());
  state.counters["dup_replies"] =
      static_cast<double>(stats.dup_replies.load());
  if (stats.scan_streams.load() > 0) {
    state.counters["scan_streams"] =
        static_cast<double>(stats.scan_streams.load());
    state.counters["scan_rows"] =
        static_cast<double>(stats.scan_rows.load());
    state.counters["scan_restarts"] =
        static_cast<double>(stats.scan_restarts.load());
  }
  if (stats.promote_batches.load() > 0) {
    state.counters["promote_batches"] =
        static_cast<double>(stats.promote_batches.load());
    state.counters["promote_ops"] =
        static_cast<double>(stats.promote_ops.load());
  }
}

}  // namespace bench
}  // namespace untx
