// Experiment C6 (§6.2): sharing data among TCs without 2PC.
//
//   read-only   — reads commute; no mechanism needed (§6.2.1);
//   dirty read  — "a writer may access and update data at any time
//                  without conflicting with a dirty read";
//   read committed over versioned data — before-versions give committed
//                  reads; "Readers are never blocked" and commit is
//                  non-blocking (§6.2.2).
//
// Measured: reader throughput with and without an active writer TC, and
// writer throughput with versioning on/off (the cost of keeping and
// promoting before-versions).
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "kernel/cluster.h"

namespace untx {
namespace bench {
namespace {

constexpr TableId kTable = 9;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

std::unique_ptr<Cluster> MakeCluster(bool versioning) {
  ClusterOptions options;
  options.num_dcs = 1;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.versioning = versioning;
    spec.options.control_interval_ms = 10;
    spec.options.insert_phantom_protection = false;
    options.tcs.push_back(spec);
  }
  auto cluster = std::move(Cluster::Open(options)).ValueOrDie();
  cluster->tc(0)->CreateTable(kTable);
  // TC1 owns all keys; TC2 is the reader.
  for (int i = 0; i < 1000; ++i) {
    auto txn = cluster->tc(0)->Begin();
    cluster->tc(0)->Insert(*txn, kTable, Key(i), "v0");
    cluster->tc(0)->Commit(*txn);
  }
  return cluster;
}

// arg0: 0 = dirty reader, 1 = read-committed reader (versioned data).
// arg1: 0 = quiescent writer, 1 = writer TC actively updating.
void BM_CrossTcRead(benchmark::State& state) {
  const bool read_committed = state.range(0) == 1;
  const bool writer_active = state.range(1) == 1;
  auto cluster = MakeCluster(/*versioning=*/read_committed);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::thread writer;
  if (writer_active) {
    writer = std::thread([&] {
      int i = 0;
      while (!stop.load()) {
        auto txn = cluster->tc(0)->Begin();
        cluster->tc(0)->Update(*txn, kTable, Key(i++ % 1000), "w");
        cluster->tc(0)->Commit(*txn);
        writes.fetch_add(1);
      }
    });
  }

  const ReadFlavor flavor =
      read_committed ? ReadFlavor::kReadCommitted : ReadFlavor::kDirty;
  int i = 0;
  for (auto _ : state) {
    std::string value;
    cluster->tc(1)->ReadShared(kTable, Key(i++ % 1000), flavor, &value);
    benchmark::DoNotOptimize(value);
  }
  stop.store(true);
  if (writer.joinable()) writer.join();
  state.counters["writer_txns"] = static_cast<double>(writes.load());
}
BENCHMARK(BM_CrossTcRead)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->UseRealTime();

// Writer cost of versioning: update + commit-time promote per key.
void BM_WriterVersioningCost(benchmark::State& state) {
  const bool versioning = state.range(0) == 1;
  auto cluster = MakeCluster(versioning);
  int i = 0;
  for (auto _ : state) {
    auto txn = cluster->tc(0)->Begin();
    cluster->tc(0)->Update(*txn, kTable, Key(i++ % 1000), "w");
    cluster->tc(0)->Commit(*txn);
  }
}
BENCHMARK(BM_WriterVersioningCost)->Arg(0)->Arg(1);

// Non-blocking commit: reader latency while the writer holds an open
// transaction on the very keys being read. With versioned read
// committed the reader proceeds at full speed (no lock interaction).
void BM_ReaderAgainstOpenTransaction(benchmark::State& state) {
  auto cluster = MakeCluster(/*versioning=*/true);
  auto txn = cluster->tc(0)->Begin();
  for (int i = 0; i < 100; ++i) {
    cluster->tc(0)->Update(*txn, kTable, Key(i), "uncommitted");
  }
  int i = 0;
  for (auto _ : state) {
    std::string value;
    cluster->tc(1)->ReadShared(kTable, Key(i++ % 100),
                                  ReadFlavor::kReadCommitted, &value);
    benchmark::DoNotOptimize(value);
  }
  cluster->tc(0)->Abort(*txn);
}
BENCHMARK(BM_ReaderAgainstOpenTransaction);

}  // namespace
}  // namespace bench
}  // namespace untx

BENCHMARK_MAIN();
