#!/usr/bin/env bash
# Launches the Figure 2 topology as real processes: 2 untx_dcd
# DataComponent daemons on loopback TCP, 2 untx_tcd TransactionComponent
# daemons running a seeded workload against them, then a final recover +
# dump pass. Everything (journals, TC stable logs, dumps, daemon logs)
# lands in the workdir.
#
# Usage: scripts/run_cluster.sh [workdir] [steps]
#   BUILD_DIR  where the daemons were built (default: build)
#
# Try it: kill -9 one of the printed PIDs mid-run and watch the others
# rebuild it — a killed DC comes back EMPTY and is repopulated by the
# TCs' redo-resend; a killed TC is relaunched here with --recover and
# replays its file-backed stable log.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKDIR="${1:-/tmp/untx_cluster}"
STEPS="${2:-200}"
BUILD_DIR="${BUILD_DIR:-build}"
DCD="$BUILD_DIR/untx_dcd"
TCD="$BUILD_DIR/untx_tcd"
[[ -x "$DCD" && -x "$TCD" ]] || {
  echo "daemons not built; run: cmake --build $BUILD_DIR --target untx_dcd untx_tcd" >&2
  exit 1
}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
PIDS=()
cleanup() {
  kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

"$DCD" --port 0 --port_file "$WORKDIR/dc0.port" 2>"$WORKDIR/dc0.log" &
PIDS+=($!)
"$DCD" --port 0 --port_file "$WORKDIR/dc1.port" 2>"$WORKDIR/dc1.log" &
PIDS+=($!)
for _ in $(seq 100); do
  [[ -s "$WORKDIR/dc0.port" && -s "$WORKDIR/dc1.port" ]] && break
  sleep 0.1
done
P0="$(cat "$WORKDIR/dc0.port")"
P1="$(cat "$WORKDIR/dc1.port")"
DCS="127.0.0.1:$P0,127.0.0.1:$P1"
echo "dc0 pid=${PIDS[0]} port=$P0   dc1 pid=${PIDS[1]} port=$P1"

TC_PIDS=()
for id in 1 2; do
  "$TCD" --tc_id "$id" --dcs "$DCS" --workdir "$WORKDIR" \
    --seed "$((40 + id))" --steps "$STEPS" --step_sleep_ms 5 \
    2>"$WORKDIR/tc$id.log" &
  TC_PIDS+=($!)
  PIDS+=($!)
  echo "tc$id pid=$!"
done

FAIL=0
for pid in "${TC_PIDS[@]}"; do
  wait "$pid" || FAIL=1
done
if [[ "$FAIL" != 0 ]]; then
  echo "a TC daemon died mid-workload; relaunching both with --recover"
  for id in 1 2; do
    "$TCD" --tc_id "$id" --dcs "$DCS" --workdir "$WORKDIR" \
      --seed "$((40 + id))" --steps 0 --recover \
      2>>"$WORKDIR/tc$id.log" || true
  done
fi

echo "workload done; final recover + dump pass"
for id in 1 2; do
  "$TCD" --tc_id "$id" --dcs "$DCS" --workdir "$WORKDIR" \
    --seed "$((40 + id))" --steps 0 --recover --dump \
    2>"$WORKDIR/tc${id}d.log"
done

echo "--- committed rows ---"
for id in 1 2; do
  rows="$(grep -cv '^END$' "$WORKDIR/tc$id.dump" || true)"
  committed="$(grep -c '^C' "$WORKDIR/tc$id.journal" || true)"
  echo "tc$id: $committed committed transactions, $rows live rows" \
       "(journal: $WORKDIR/tc$id.journal, dump: $WORKDIR/tc$id.dump)"
done
