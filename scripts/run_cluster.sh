#!/usr/bin/env bash
# Launches the Figure 2 topology as real processes: 2 untx_dcd
# DataComponent daemons on loopback TCP, 2 untx_tcd TransactionComponent
# daemons running a seeded workload against them, then a final recover +
# dump pass. Everything (journals, TC stable logs, dumps, daemon logs)
# lands in the workdir.
#
# Usage: scripts/run_cluster.sh [--replicas N] [workdir] [steps]
#   BUILD_DIR  where the daemons were built (default: build)
#   --replicas N  also start N hot standbys per DC (untx_dcd
#             --replica_of), each riding its primary's redo stream. The
#             TCs list them as alternate endpoints, so after you kill -9
#             a primary you can promote a standby with kill -USR1 and
#             watch the TCs fail over to it — resending only the
#             in-flight suffix its shipped log prefix is missing.
#
# Try it: kill -9 one of the printed PIDs mid-run and watch the others
# rebuild it — a killed DC comes back EMPTY and is repopulated by the
# TCs' redo-resend; a killed TC is relaunched here with --recover and
# replays its file-backed stable log.
set -euo pipefail
cd "$(dirname "$0")/.."

REPLICAS=0
if [[ "${1:-}" == "--replicas" ]]; then
  REPLICAS="${2:?--replicas needs a count}"
  shift 2
fi
WORKDIR="${1:-/tmp/untx_cluster}"
STEPS="${2:-200}"
BUILD_DIR="${BUILD_DIR:-build}"
DCD="$BUILD_DIR/untx_dcd"
TCD="$BUILD_DIR/untx_tcd"
[[ -x "$DCD" && -x "$TCD" ]] || {
  echo "daemons not built; run: cmake --build $BUILD_DIR --target untx_dcd untx_tcd" >&2
  exit 1
}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
PIDS=()
cleanup() {
  kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Primaries run durable (--workdir): a killed one can also be relaunched
# by hand with --recover to restore from its own pages + redo log.
mkdir -p "$WORKDIR/dc0" "$WORKDIR/dc1"
"$DCD" --port 0 --port_file "$WORKDIR/dc0.port" --workdir "$WORKDIR/dc0" \
  2>"$WORKDIR/dc0.log" &
PIDS+=($!)
"$DCD" --port 0 --port_file "$WORKDIR/dc1.port" --workdir "$WORKDIR/dc1" \
  2>"$WORKDIR/dc1.log" &
PIDS+=($!)
for _ in $(seq 100); do
  [[ -s "$WORKDIR/dc0.port" && -s "$WORKDIR/dc1.port" ]] && break
  sleep 0.1
done
P0="$(cat "$WORKDIR/dc0.port")"
P1="$(cat "$WORKDIR/dc1.port")"
echo "dc0 pid=${PIDS[0]} port=$P0   dc1 pid=${PIDS[1]} port=$P1"

# A standby never listens until promoted, so its port is assigned here
# (random high port, probed free) and handed to both it and the TCs.
pick_port() {
  local p
  for _ in $(seq 50); do
    p=$((20000 + RANDOM % 40000))
    if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
      echo "$p"
      return 0
    fi
    exec 3>&- || true
  done
  echo "cannot find a free port" >&2
  return 1
}

ALT0=""
ALT1=""
for r in $(seq "$REPLICAS"); do
  for d in 0 1; do
    PRIMARY_PORT="$P0"
    [[ "$d" == 1 ]] && PRIMARY_PORT="$P1"
    RPORT="$(pick_port)"
    "$DCD" --port "$RPORT" --port_file "$WORKDIR/dc${d}r${r}.port" \
      --replica_of "127.0.0.1:$PRIMARY_PORT" --replica_id "$r" \
      2>"$WORKDIR/dc${d}r${r}.log" &
    PIDS+=($!)
    echo "dc${d} standby $r pid=$! port=$RPORT (kill -USR1 $! promotes)"
    if [[ "$d" == 0 ]]; then ALT0="$ALT0|127.0.0.1:$RPORT"
    else ALT1="$ALT1|127.0.0.1:$RPORT"; fi
  done
done
DCS="127.0.0.1:$P0$ALT0,127.0.0.1:$P1$ALT1"

TC_PIDS=()
for id in 1 2; do
  "$TCD" --tc_id "$id" --dcs "$DCS" --workdir "$WORKDIR" \
    --seed "$((40 + id))" --steps "$STEPS" --step_sleep_ms 5 \
    2>"$WORKDIR/tc$id.log" &
  TC_PIDS+=($!)
  PIDS+=($!)
  echo "tc$id pid=$!"
done

FAIL=0
for pid in "${TC_PIDS[@]}"; do
  wait "$pid" || FAIL=1
done
if [[ "$FAIL" != 0 ]]; then
  echo "a TC daemon died mid-workload; relaunching both with --recover"
  for id in 1 2; do
    "$TCD" --tc_id "$id" --dcs "$DCS" --workdir "$WORKDIR" \
      --seed "$((40 + id))" --steps 0 --recover \
      2>>"$WORKDIR/tc$id.log" || true
  done
fi

echo "workload done; final recover + dump pass"
for id in 1 2; do
  "$TCD" --tc_id "$id" --dcs "$DCS" --workdir "$WORKDIR" \
    --seed "$((40 + id))" --steps 0 --recover --dump \
    2>"$WORKDIR/tc${id}d.log"
done

echo "--- committed rows ---"
for id in 1 2; do
  rows="$(grep -cv '^END$' "$WORKDIR/tc$id.dump" || true)"
  committed="$(grep -c '^C' "$WORKDIR/tc$id.journal" || true)"
  echo "tc$id: $committed committed transactions, $rows live rows" \
       "(journal: $WORKDIR/tc$id.journal, dump: $WORKDIR/tc$id.dump)"
done
