#!/usr/bin/env bash
# Canonical perf run: Release build, the headline bench set, one merged
# JSON artifact so the perf trajectory accumulates across PRs.
#
# Usage: scripts/bench.sh [output.json]
#   BUILD_DIR   override the build directory (default: build-bench)
#   BENCH_ARGS  extra args for every bench binary (e.g. --benchmark_filter=...)
#
# Benches: C1 (range locking + streamed-scan arm), C9 (logging / group
# commit), C10 (pipelining msgs/txn), F2 (Figure 2 cloud scenario —
# channel AND loopback-TCP socket arms; their msgs/txn must match —
# plus the replica ship/failover arm: lag under a write burst and the
# suffix-only resend economics of promoting a hot standby).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR8.json}"
BUILD_DIR="${BUILD_DIR:-build-bench}"
BENCHES=(bench_c1_range_locking bench_c9_logging bench_c10_pipelining
         bench_f2_cloud_scenario)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
if ! cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${BENCHES[@]}"; then
  echo "bench targets unavailable (is Google Benchmark installed?)" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
for bench in "${BENCHES[@]}"; do
  echo "== $bench"
  "$BUILD_DIR/$bench" \
    --benchmark_out="$TMP/$bench.json" \
    --benchmark_out_format=json \
    ${BENCH_ARGS:-}
done

python3 - "$OUT" "$TMP" "${BENCHES[@]}" <<'EOF'
import json, sys, datetime
out_path, tmp = sys.argv[1], sys.argv[2]
merged = {
    "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "suites": {},
}
for bench in sys.argv[3:]:
    with open(f"{tmp}/{bench}.json") as f:
        data = json.load(f)
    merged["suites"][bench] = {
        "context": data.get("context", {}),
        "benchmarks": data.get("benchmarks", []),
    }
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path} "
      f"({sum(len(s['benchmarks']) for s in merged['suites'].values())} "
      "benchmark results)")
EOF
