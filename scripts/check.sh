#!/usr/bin/env bash
# Tier-1 verify with warnings on: configure, build, ctest.
# Usage: scripts/check.sh [--asan|--tsan|--socket] [extra cmake args...]
#   --asan    build and test under ASan+UBSan (its own build dir), so the
#             concurrent multi-TC / channel paths are sanitizer-checked.
#   --tsan    build and test under ThreadSanitizer (its own build dir) —
#             the scan-stream credit/cursor machinery, server threads and
#             resend daemons are data-race-checked end to end.
#   --socket  ASan+UBSan build of just the real-network arm: the frame
#             codec, the loopback-TCP cluster tests, the redo-shipping /
#             failover suite (dc_replication_test), and the
#             separate-process daemons (untx_tcd/untx_dcd SIGKILL'd,
#             promoted and recovered by process_cluster_test).
set -euo pipefail
cd "$(dirname "$0")/.."

CTEST_FILTER=()
CXX_FLAGS="-Wall -Wextra"
LINK_FLAGS=""
if [[ "${1:-}" == "--socket" ]]; then
  shift
  BUILD_DIR="${BUILD_DIR:-build-socket}"
  SAN="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  CXX_FLAGS="$CXX_FLAGS $SAN"
  LINK_FLAGS="$SAN"
  CTEST_FILTER=(-R 'frame_codec_test|socket_transport_test|process_cluster_test|dc_replication_test')
elif [[ "${1:-}" == "--asan" ]]; then
  shift
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  SAN="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  CXX_FLAGS="$CXX_FLAGS $SAN"
  LINK_FLAGS="$SAN"
elif [[ "${1:-}" == "--tsan" ]]; then
  shift
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  SAN="-fsanitize=thread -fno-omit-frame-pointer -O1 -g"
  CXX_FLAGS="$CXX_FLAGS $SAN"
  LINK_FLAGS="-fsanitize=thread"
else
  BUILD_DIR="${BUILD_DIR:-build-check}"
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_CXX_FLAGS="$CXX_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$LINK_FLAGS" \
  "$@"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  ${CTEST_FILTER[@]+"${CTEST_FILTER[@]}"}
