#!/usr/bin/env bash
# Tier-1 verify with warnings on: configure, build, ctest.
# Usage: scripts/check.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra" \
  "$@"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
