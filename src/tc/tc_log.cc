#include "tc/tc_log.h"

#include "common/coding.h"

namespace untx {

void TcLogRecord::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, txn);
  dst->push_back(static_cast<char>(op));
  PutVarint32(dst, table_id);
  PutLengthPrefixedSlice(dst, key);
  PutLengthPrefixedSlice(dst, value);
  PutLengthPrefixedSlice(dst, before);
  dst->push_back(static_cast<char>((has_before ? 1 : 0) |
                                   (versioned ? 2 : 0) | (applied ? 4 : 0)));
  PutVarint64(dst, undo_target);
  PutVarint64(dst, rssp);
}

bool TcLogRecord::DecodeFrom(Slice* input, TcLogRecord* out) {
  if (input->empty()) return false;
  out->type = static_cast<TcLogRecordType>((*input)[0]);
  input->remove_prefix(1);
  if (!GetVarint64(input, &out->txn)) return false;
  if (input->empty()) return false;
  out->op = static_cast<OpType>((*input)[0]);
  input->remove_prefix(1);
  if (!GetVarint32(input, &out->table_id)) return false;
  Slice key, value, before;
  if (!GetLengthPrefixedSlice(input, &key)) return false;
  if (!GetLengthPrefixedSlice(input, &value)) return false;
  if (!GetLengthPrefixedSlice(input, &before)) return false;
  if (input->empty()) return false;
  const uint8_t flags = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  if (!GetVarint64(input, &out->undo_target)) return false;
  if (!GetVarint64(input, &out->rssp)) return false;
  out->key = key.ToString();
  out->value = value.ToString();
  out->before = before.ToString();
  out->has_before = (flags & 1) != 0;
  out->versioned = (flags & 2) != 0;
  out->applied = (flags & 4) != 0;
  return true;
}

}  // namespace untx
