// TC log records (§4.1.1(3)): logical undo AND redo information, no page
// identifiers anywhere.
//
// "Undo logging in the TC will enable rollback of a user transaction, by
// providing information TC can use to submit inverse logical operations
// to DC. Redo logging in TC allows TC to resubmit logical operations when
// it needs to, following a crash of DC."
//
// An operation's LSN is its log index + 1, reserved *before* dispatch
// (§5.1); the record is sealed with its undo image when the DC reply
// arrives. Force() therefore stops at the first outstanding operation —
// the stable prefix is exactly the completed prefix, which doubles as the
// low-water mark the TC pushes to DCs.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace untx {

enum class TcLogRecordType : uint8_t {
  kBegin = 1,       ///< Transaction begin.
  kOperation = 2,   ///< Logical operation with redo (+undo) info.
  kCommit = 3,      ///< Commit point (forced for durability).
  kAbort = 4,       ///< Rollback complete.
  kClr = 5,         ///< Compensation: inverse op sent during undo.
  kCheckpoint = 6,  ///< Carries the redo scan start point (RSSP).
  kTxnEnd = 7,      ///< Versioned commit fully promoted (§6.2.2 cleanup).
};

struct TcLogRecord {
  TcLogRecordType type = TcLogRecordType::kBegin;
  TxnId txn = kInvalidTxnId;

  // kOperation / kClr payload.
  OpType op = OpType::kRead;
  TableId table_id = kInvalidTableId;
  std::string key;
  std::string value;    ///< redo argument
  std::string before;   ///< undo image (from the DC reply)
  bool has_before = false;
  bool versioned = false;
  /// True iff the DC applied the operation (logical failures like
  /// NotFound log applied=false and need no undo).
  bool applied = false;
  /// kClr: the LSN of the operation this compensation undoes. Recovery
  /// undo skips operations with a stable CLR.
  Lsn undo_target = kInvalidLsn;

  // kCheckpoint payload.
  Lsn rssp = kInvalidLsn;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, TcLogRecord* out);
};

}  // namespace untx
