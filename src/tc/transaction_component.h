// TransactionComponent: the TC of the unbundled kernel (§4.1.1).
//
// The TC owns everything transactional and nothing physical:
//   1. transactional locking (LockManager; record, range-partition and
//      EOF-sentinel locks — never pages), two range protocols per §3.1;
//   2. transaction atomicity: commit, or rollback via inverse logical
//      operations (CLR-logged so repeated crashes during undo are safe);
//   3. logical undo/redo logging with LSNs reserved before dispatch and
//      records sealed when the DC reply returns the undo image;
//   4. log forcing for durability (optionally group commit).
//
// Contract machinery (§4.2): unique request ids (LSNs), resend until
// acknowledged, EOSL/LWM pushes, checkpoint (RSSP advancement), restart.
//
// Failure model (§5.3): Crash() loses the volatile log tail and all
// transaction state; Restart() resets each DC (which evicts exactly the
// pages reflecting lost operations), replays redo by resending logged
// operations from the RSSP in LSN order, then undoes loser transactions
// logically. A DC crash is handled by OnDcRestart: redo-resend from the
// RSSP to that DC, then normal traffic resumes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "common/types.h"
#include "dc/dc_api.h"
#include "tc/dc_client.h"
#include "tc/lock_manager.h"
#include "tc/tc_log.h"
#include "util/repeating_thread.h"
#include "util/sync.h"
#include "wal/stable_log.h"

namespace untx {

/// Which §3.1 protocol guards ranges (and, for kPartition, everything).
enum class RangeLockProtocol : uint8_t {
  /// Speculative probe -> lock returned keys (+ fencepost) -> validated
  /// read; inserts take an instant next-key lock. Fine-grained.
  kFetchAhead = 0,
  /// Static partition locks over the key space; coarse, fewer locks,
  /// less concurrency.
  kPartition = 1,
};

/// Key-space partitioning for RangeLockProtocol::kPartition. Partition i
/// covers [boundaries[i-1], boundaries[i]) with open ends at both sides;
/// an empty boundary list means one whole-table lock.
struct RangePartitionConfig {
  std::vector<std::string> boundaries;  // sorted ascending

  uint32_t PartitionOf(const std::string& key) const;
  /// Inclusive partition index range overlapping [from, to); empty `to`
  /// means +infinity.
  std::pair<uint32_t, uint32_t> Overlapping(const std::string& from,
                                            const std::string& to) const;
  uint32_t Count() const {
    return static_cast<uint32_t>(boundaries.size()) + 1;
  }
};

struct TcOptions {
  TcId tc_id = 1;
  LockManagerOptions locks;
  RangeLockProtocol range_protocol = RangeLockProtocol::kFetchAhead;
  RangePartitionConfig partitions;
  /// Keep before-versions on writes for cross-TC read committed (§6.2.2).
  bool versioning = false;
  uint32_t resend_interval_ms = 100;
  uint32_t control_interval_ms = 20;
  uint32_t op_timeout_ms = 20000;
  uint32_t commit_timeout_ms = 20000;
  uint32_t fetch_ahead_batch = 32;
  /// Backpressure: cap on outstanding (submitted, not yet acknowledged)
  /// pipelined operations per (transaction, DC). A Submit* at the cap
  /// blocks until the window drains, then returns Busy after
  /// op_timeout_ms. 0 = unbounded (the pre-cap behavior).
  uint32_t max_outstanding_ops = 256;
  /// Recovery redo-resend ships ordered kOperationBatch messages of at
  /// most this many operations per DC round trip (1 = the sequential
  /// one-op-per-trip protocol).
  uint32_t recovery_batch_ops = 64;
  /// Commit-time version promotion (§6.2.2) ships kPromoteVersion ops as
  /// kOperationBatch messages of at most this many per DC round trip, so
  /// a K-key versioned commit costs ceil(K / promote_batch_ops) messages
  /// instead of K (1 = the old one-blocking-trip-per-key protocol).
  uint32_t promote_batch_ops = 64;
  /// Streamed scan windows: ScanShared and partition-protocol scans open
  /// one kScanStream request per range (chunked replies) instead of one
  /// blocking ScanRange round trip per window, and fetch-ahead scans
  /// prefetch the next probe while locking/validating the current
  /// window. Off = the per-window blocking protocol (the comparison
  /// baseline in benches).
  bool scan_streaming = true;
  /// Rows per streamed-scan chunk (0 = the DC default).
  uint32_t scan_stream_chunk = 128;
  /// Scan-stream flow control: the DC may run at most this many chunks
  /// ahead of the TC cursor's consumption (kScanCredit replenishes the
  /// window as chunks drain), bounding reply-channel memory to
  /// credit × chunk size for arbitrarily large scans. 0 = uncredited
  /// eager push (the PR 3 behavior — unbounded).
  uint32_t scan_credit_chunks = 4;
  /// Fetch-ahead protocol: inserts probe and instant-lock the next key so
  /// serializable scans are phantom-safe. Costs one probe per insert.
  bool insert_phantom_protection = true;
  bool group_commit = false;
  /// Idle backstop cadence of the group-commit forcer (clamped to >=
  /// 1ms). Committers wake the forcer on demand, so commit latency does
  /// NOT depend on this interval.
  uint32_t group_commit_interval_us = 200;
  StableLogOptions log;
  /// Tests may drive resend/control pushes by hand.
  bool start_daemons = true;
};

struct TcStats {
  std::atomic<uint64_t> txns_begun{0};
  std::atomic<uint64_t> txns_committed{0};
  std::atomic<uint64_t> txns_aborted{0};
  std::atomic<uint64_t> deadlocks{0};
  std::atomic<uint64_t> ops_sent{0};
  std::atomic<uint64_t> resends{0};
  std::atomic<uint64_t> recoveries{0};
  std::atomic<uint64_t> checkpoints{0};
  std::atomic<uint64_t> probes{0};
  /// Replies the DC answered from its idempotence machinery instead of
  /// executing (OperationReply::was_duplicate) — resend/duplication cost.
  std::atomic<uint64_t> dup_replies{0};
  /// Submits that blocked on the per-(txn, DC) outstanding-op cap.
  std::atomic<uint64_t> backpressure_waits{0};
  /// Redo operations resent by recovery paths (TC restart, DC recovery,
  /// §6.1.2 escalation).
  std::atomic<uint64_t> recovery_resent_ops{0};
  /// Wire messages that carried them — with batching, msgs << ops.
  std::atomic<uint64_t> recovery_resend_msgs{0};
  /// Redo operations NOT resent because the revived DC (a promoted
  /// standby or a locally-recovered primary) already held their redo-log
  /// entry — the suffix-only resend of PR 8.
  std::atomic<uint64_t> suffix_skipped_ops{0};
  /// Streamed scans opened (one request message each per attempt).
  std::atomic<uint64_t> scan_streams{0};
  /// In-order chunks consumed and rows they delivered.
  std::atomic<uint64_t> scan_chunks{0};
  std::atomic<uint64_t> scan_rows{0};
  /// Stream re-issues after a lost/late chunk (resume from last key).
  std::atomic<uint64_t> scan_restarts{0};
  /// Flow control: kScanCredit messages sent, and credits re-sent on a
  /// stall (a lost credit must not wedge the stream).
  std::atomic<uint64_t> scan_credits_sent{0};
  std::atomic<uint64_t> scan_credit_resends{0};
  /// Fetch-ahead fold: windows whose validated read was served from the
  /// DC-side stream cursor (a rewind chunk) instead of a blocking
  /// ScanRange round trip.
  std::atomic<uint64_t> scan_validated_windows{0};
  /// Fetch-ahead scans: the prefetched next-window probe had already
  /// completed when awaited — the probe round trip fully overlapped the
  /// lock/validate work of the previous window.
  std::atomic<uint64_t> scan_prefetch_hits{0};
  /// Commit-time version promotion: ops shipped and the batch messages
  /// that carried them (msgs = ceil(K / promote_batch_ops) per commit).
  std::atomic<uint64_t> promote_ops{0};
  std::atomic<uint64_t> promote_batches{0};
  /// Group-commit forcer wakeups triggered on demand by a waiting
  /// committer (vs the periodic interval tick).
  std::atomic<uint64_t> group_commit_wakes{0};
};

struct DcBinding {
  DcId id;
  DcClient* client;
};

/// Routes a (table, key) to the DC holding it. Defaults to the first DC.
using Router = std::function<DcId(TableId, const std::string&)>;

class TransactionComponent {
 private:
  struct OutstandingOp;  // defined below; OpHandle needs the declaration

 public:
  /// Handle to one submitted (pipelined) operation. Obtained from the
  /// Submit* family, consumed by Await / AwaitAll. Copyable; awaiting the
  /// same operation twice is harmless (the result is harvested once).
  class OpHandle {
   public:
    OpHandle() = default;
    /// True if the operation made it onto the wire (an LSN was assigned).
    /// False handles carry the submit-time failure (e.g. a lock denial),
    /// which Await returns.
    bool submitted() const { return op_ != nullptr; }

   private:
    friend class TransactionComponent;
    std::shared_ptr<OutstandingOp> op_;
    Status submit_status_;
  };

  TransactionComponent(TcOptions options, std::vector<DcBinding> dcs,
                       Router router = nullptr);
  ~TransactionComponent();

  Status Start();
  void Stop();

  // -- Transactions -----------------------------------------------------------
  StatusOr<TxnId> Begin();
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  Status Read(TxnId txn, TableId table, const std::string& key,
              std::string* value);
  Status Insert(TxnId txn, TableId table, const std::string& key,
                const std::string& value);
  Status Update(TxnId txn, TableId table, const std::string& key,
                const std::string& value);
  Status Delete(TxnId txn, TableId table, const std::string& key);
  Status Upsert(TxnId txn, TableId table, const std::string& key,
                const std::string& value);
  /// Serializable range scan over [from, to) (empty to = unbounded),
  /// bounded by limit (0 = no bound beyond the DC default batching).
  Status Scan(TxnId txn, TableId table, const std::string& from,
              const std::string& to, uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

  // -- Pipelined asynchronous surface (§4.2.1: "in a cloud environment
  // asynchronous messages might be used") ------------------------------------
  //
  // Submit* acquires locks, reserves the LSN, registers the outstanding
  // op and fires it without waiting for the DC. Queued ops bound for the
  // same DC coalesce into one batched channel message (explicit flush on
  // Await, plus the transport's small coalescing window). Await blocks on
  // one handle; AwaitAll drains every pending op of a transaction.
  // Commit/Abort/Scan AwaitAll internally, so a submit with no explicit
  // await is still accounted for. Within a transaction, ops against the
  // same key stay ordered (a conflicting submit awaits its predecessor —
  // the §1.2 obligation that no two conflicting operations are in flight).
  OpHandle SubmitRead(TxnId txn, TableId table, const std::string& key);
  OpHandle SubmitInsert(TxnId txn, TableId table, const std::string& key,
                        const std::string& value);
  OpHandle SubmitUpdate(TxnId txn, TableId table, const std::string& key,
                        const std::string& value);
  OpHandle SubmitDelete(TxnId txn, TableId table, const std::string& key);
  OpHandle SubmitUpsert(TxnId txn, TableId table, const std::string& key,
                        const std::string& value);

  /// Waits for one submitted operation and returns its logical status.
  /// For reads, `value` (if non-null) receives the record value on OK.
  Status Await(OpHandle* handle, std::string* value = nullptr);

  /// Flushes every coalescing client and waits for all pending operations
  /// of `txn`, in submission (LSN) order. Returns the first non-OK
  /// operation status; OK for a transaction with nothing pending.
  Status AwaitAll(TxnId txn);

  /// DDL; idempotent. `routing_key` selects which DC hosts the table's
  /// partition (a table spanning DCs is created once per DC with a key
  /// hint from each partition — Figure 2's Movies/Reviews layout).
  Status CreateTable(TableId table, const std::string& routing_key = "");

  // -- Cross-TC shared reads (§6.2): no locks, no transaction ----------------
  Status ReadShared(TableId table, const std::string& key, ReadFlavor flavor,
                    std::string* value);
  Status ScanShared(TableId table, const std::string& from,
                    const std::string& to, uint32_t limit, ReadFlavor flavor,
                    std::vector<std::pair<std::string, std::string>>* out);

  // -- Contract drivers --------------------------------------------------------
  /// Forces the log and pushes EOSL/LWM to every DC (the control daemon
  /// does this periodically; exposed for tests and deterministic benches).
  void PushControls();

  /// Advances the redo scan start point: force, EOSL, checkpoint each DC,
  /// log a checkpoint record, truncate the log (§4.2 contract
  /// termination).
  Status TakeCheckpoint();

  // -- Failures ---------------------------------------------------------------
  /// TC crash: loses the volatile log tail, all transaction state, all
  /// locks, all outstanding operations.
  void Crash();

  /// TC restart (§5.3.2): reset DCs, redo-resend from RSSP, undo losers.
  /// escalate_out (optional) collects TCs that must also resend due to
  /// multi-TC page resets (§6.1.2).
  Status Restart(std::vector<TcId>* escalate_out = nullptr);

  /// A DC went down: hold resends and streamed-scan attempts to it until
  /// OnDcRestart finishes the redo — a scan slipping in mid-redo would
  /// read a partially re-populated tree and silently end early.
  void OnDcCrash(DcId dc);

  /// A DC crashed and has been recovered (structures well-formed):
  /// redo-resend every logged operation from the RSSP routed to it.
  Status OnDcRestart(DcId dc);

  /// Resend everything from the RSSP to every DC — used when another
  /// TC's restart escalated (§6.1.2) and this TC must repopulate pages.
  Status ResendFromRssp();

  // -- Introspection ------------------------------------------------------------
  TcId id() const { return options_.tc_id; }
  Lsn stable_lsn() const { return log_.stable_end(); }
  Lsn low_water_mark() const { return log_.sealed_prefix_end(); }
  Lsn rssp() const;
  const TcStats& stats() const { return stats_; }
  LockManagerStats lock_stats() const { return locks_->stats(); }
  StableLog* log() { return &log_; }
  const TcOptions& options() const { return options_; }

 private:
  struct OutstandingOp {
    OperationRequest request;
    TxnId txn = kInvalidTxnId;
    TcLogRecordType record_type = TcLogRecordType::kOperation;
    Lsn undo_target = kInvalidLsn;
    DcId dc = 0;
    Notification done;
    OperationReply reply;
    /// Atomic: set under out_mu_ by the reply handler, but read lock-free
    /// on fast paths (AwaitOp's flush check, prefetch-hit accounting).
    std::atomic<bool> completed{false};
    /// False for recovery resends: the log record already exists.
    bool needs_seal = true;
    /// Dispatched through the coalescing queue (Await must flush).
    bool pipelined = false;
    /// Undo info already folded into the txn state (exactly once).
    bool harvested = false;
    std::chrono::steady_clock::time_point last_send;
  };

  struct UndoEntry {
    Lsn lsn;
    OpType op;
    TableId table;
    std::string key;
    std::string before;
    bool has_before;
  };

  struct TxnState {
    TxnId id;
    std::vector<UndoEntry> undo_chain;
    std::vector<std::pair<TableId, std::string>> written_keys;
    /// Submitted-not-yet-harvested ops, in submission (LSN) order.
    std::vector<std::shared_ptr<OutstandingOp>> pending_ops;
  };

  DcId Route(TableId table, const std::string& key) const;
  DcClient* ClientFor(DcId dc) const;

  /// Reserves an LSN, registers the outstanding op and fires it (through
  /// the coalescing queue when pipelined). Locks must already be held for
  /// conflicting operations. Returns nullptr on failure (TC crashed,
  /// conflict-gate timeout, backpressure timeout) with the reason in
  /// *error when provided.
  std::shared_ptr<OutstandingOp> SubmitOp(OperationRequest req, TxnId txn,
                                          TcLogRecordType record_type,
                                          Lsn undo_target, bool pipelined,
                                          Status* error = nullptr);

  /// Flushes (for pipelined ops) and waits for the reply.
  StatusOr<OperationReply> AwaitOp(const std::shared_ptr<OutstandingOp>& op);

  /// Folds a completed write reply into the transaction state (undo
  /// chain + written keys), exactly once, and drops the op from the
  /// txn's pending list.
  void HarvestReply(const std::shared_ptr<OutstandingOp>& op);

  /// A conflicting pipelined submit must wait for in-flight ops on the
  /// same key before dispatch (the §1.2 contract). False if a predecessor
  /// never completed within the op timeout.
  bool WaitForConflicts(const OperationRequest& req);

  /// Backpressure gate: blocks while `txn` already has
  /// max_outstanding_ops unacknowledged pipelined ops in flight to `dc`,
  /// then reserves one window slot. False if the window never drained
  /// within the op timeout.
  bool WaitForWindow(TxnId txn, DcId dc);

  /// Returns a reserved window slot and wakes blocked submitters.
  /// Caller must hold out_mu_.
  void ReleaseWindowSlotLocked(TxnId txn, DcId dc);

  /// Submit + await: the blocking call path.
  StatusOr<OperationReply> ExecuteOp(
      OperationRequest req, TxnId txn,
      TcLogRecordType record_type = TcLogRecordType::kOperation,
      Lsn undo_target = kInvalidLsn);

  /// Shared submit path of the public Submit* family.
  OpHandle SubmitLocked(TxnId txn, OperationRequest req);

  void OnOperationReply(const OperationReply& reply);
  void OnControlReply(const ControlReply& reply);
  void OnScanChunk(const ScanStreamChunk& chunk);

  /// One open streamed scan: chunks are buffered by index and consumed
  /// in order; the channel may reorder, duplicate or drop them.
  struct ScanStream {
    std::mutex mu;
    std::condition_variable cv;
    std::map<uint32_t, ScanStreamChunk> chunks;
    uint32_t next_index = 0;
    bool failed = false;  // TC crashed; waiters must give up
    /// EWMA of the inter-chunk arrival gap (microseconds), updated on
    /// every delivery; drives the adaptive stall wait — a stream whose
    /// chunks arrive every 300us shouldn't sit a full resend interval
    /// before suspecting a lost credit. Guarded by mu.
    int64_t ewma_gap_us = 0;
    std::chrono::steady_clock::time_point last_arrival{};
    bool has_arrival = false;
  };

  /// The adaptive stall timeout for one wait on `stream`: 4x its EWMA
  /// inter-chunk gap, clamped to [2ms, cap] (cap = the fixed wait the
  /// protocol used before — never wait longer than the old behavior).
  static std::chrono::milliseconds StallWait(
      const std::shared_ptr<ScanStream>& stream,
      std::chrono::milliseconds cap);

  /// Drives one streamed scan over [from, to) at the routed DC,
  /// delivering rows in order to `emit_row` (return false to stop, e.g.
  /// at a row limit). Exactly-once per stable key: a lost or late chunk
  /// re-issues the stream from the last delivered key, and keys at or
  /// below it are filtered — so duplicated stream executions interleave
  /// safely. Blocks like the windowed protocol did, but costs one
  /// request message per attempt instead of one per window.
  Status StreamScan(
      TableId table, const std::string& from, const std::string& to,
      uint32_t limit, ReadFlavor flavor,
      const std::function<bool(const std::string&, const std::string&)>&
          emit_row);

  /// Fetch-ahead protocol over ONE probe-mode stream (§3.1 folded into
  /// the scan stream): each chunk is the speculative probe for one
  /// window (every physical key + the fencepost), the TC locks it, and
  /// the validated read is a kScanCredit REWIND served from the same
  /// DC-side cursor — zero blocking ScanRange messages. The rewind
  /// credit also grants one speculative chunk beyond the rewind, so the
  /// next window's probe flies while this window's rows are emitted.
  Status FetchAheadStreamScan(
      TxnId txn, TableId table, const std::string& from,
      const std::string& to, uint32_t limit,
      std::vector<std::pair<std::string, std::string>>* out);

  /// Waits for the next in-order chunk of `stream`. Returns OK with
  /// *got=false on a stall (chunk lost or late), non-OK when the TC
  /// crashed or the chunk carried a failure.
  Status WaitStreamChunk(const std::shared_ptr<ScanStream>& stream,
                         std::chrono::milliseconds wait,
                         ScanStreamChunk* chunk, bool* got);

  /// Blocks while `dc` is replaying its redo (scans must not read a
  /// partially re-populated tree).
  Status WaitDcReady(DcId dc, std::chrono::steady_clock::time_point deadline);

  /// Sends a control request and waits for the ack.
  StatusOr<ControlReply> ControlAwait(DcId dc, ControlRequest req,
                                      uint32_t timeout_ms);

  void ResendPass();
  void SendToDc(const std::shared_ptr<OutstandingOp>& op, bool is_resend);

  Status LockForWrite(TxnId txn, TableId table, const std::string& key,
                      bool is_insert);
  Status LockForRead(TxnId txn, TableId table, const std::string& key);

  Status UndoTxnLocked(TxnState* state);
  Status FinishVersionedCommit(TxnId txn,
                               const std::vector<std::pair<TableId,
                                                           std::string>>&
                                   written_keys);

  /// Analysis pass over the stable log (for Restart).
  struct AnalysisResult {
    Lsn rssp = 1;
    std::map<TxnId, TxnState> losers;
    std::map<TxnId, std::vector<std::pair<TableId, std::string>>>
        committed_pending_promote;
    std::map<TxnId, std::vector<Lsn>> undone;  // CLR undo_targets per txn
  };
  Status Analyze(AnalysisResult* out);

  /// dc_redo_end != 0 (single-DC resends only): skip ops whose
  /// DC-acknowledged redo-log position (OperationReply::rlsn, recorded in
  /// acked_rlsns_) is <= dc_redo_end — the revived DC already holds and
  /// replayed/applied them, so only the in-flight suffix travels.
  Status RedoResend(Lsn from_lsn, DcId only_dc, bool all_dcs,
                    uint64_t dc_redo_end = 0);

  TcOptions options_;
  std::vector<DcBinding> dcs_;
  Router router_;

  StableLog log_;
  std::unique_ptr<LockManager> locks_;

  std::atomic<bool> crashed_{false};
  std::atomic<bool> stopping_{false};

  mutable std::mutex txn_mu_;
  std::unordered_map<TxnId, TxnState> txns_;
  TxnId next_txn_ = 1;

  std::mutex out_mu_;
  std::map<Lsn, std::shared_ptr<OutstandingOp>> outstanding_;
  /// Per DC: op lsn -> the redo-log rlsn the DC acked it at
  /// (OperationReply::rlsn). Volatile (cleared by Crash — a restarted TC
  /// conservatively full-resends); pruned at checkpoints alongside the
  /// log. Guarded by out_mu_.
  std::map<DcId, std::map<Lsn, uint64_t>> acked_rlsns_;
  std::map<DcId, bool> dc_recovering_;
  /// Signaled whenever a DC-recovering gate opens (redo finished, crash,
  /// restart): WaitDcReady blocks on this instead of sleep-polling.
  std::condition_variable dc_ready_cv_;
  /// (table|key) -> in-flight ops touching it; pipelined conflict gate.
  std::unordered_map<std::string, std::vector<std::shared_ptr<OutstandingOp>>>
      inflight_keys_;
  /// Unacknowledged pipelined ops per (txn, DC) — the backpressure
  /// window. Signaled whenever a pipelined op completes.
  std::map<std::pair<TxnId, DcId>, uint32_t> window_counts_;
  std::condition_variable window_cv_;

  std::mutex stream_mu_;
  std::map<uint64_t, std::shared_ptr<ScanStream>> streams_;
  std::atomic<uint64_t> next_stream_id_{1};

  std::mutex control_mu_;
  uint64_t next_control_seq_ = 1;
  struct PendingControl {
    Notification done;
    ControlReply reply;
  };
  std::map<uint64_t, std::shared_ptr<PendingControl>> pending_controls_;

  mutable std::mutex rssp_mu_;
  Lsn rssp_ = 1;

  RepeatingThread control_daemon_;
  RepeatingThread resend_daemon_;
  RepeatingThread group_commit_daemon_;

  TcStats stats_;
};

/// The async surface's handle type, hoisted for callers (Txn helpers,
/// application code) that pipeline without naming the component type.
using OpHandle = TransactionComponent::OpHandle;

}  // namespace untx
