// TC lock manager (§3.1, §4.1.1(1)).
//
// "Transactional locking to ensure that transactions are properly
// isolated (serializable) and that there are no concurrent conflicting
// operation requests submitted to the DC. The locks cannot exploit
// knowledge of data pagination."
//
// Lockables are opaque byte strings (record ids, range-partition ids, a
// per-table EOF sentinel) — never pages. Strict two-phase locking:
// everything is released together at commit/abort. Deadlocks are detected
// on a wait-for graph with the requester aborted when it closes a cycle,
// plus a timeout backstop.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "util/wait_graph.h"

namespace untx {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

struct LockManagerOptions {
  uint32_t wait_timeout_ms = 5000;
  bool deadlock_detection = true;
};

struct LockManagerStats {
  uint64_t acquisitions = 0;
  uint64_t waits = 0;
  uint64_t deadlocks = 0;
  uint64_t timeouts = 0;
  uint64_t upgrades = 0;
};

// Lock-name constructors. The encoding keeps record and range names in
// disjoint spaces.
std::string RecordLockName(TableId table, const std::string& key);
std::string RangeLockName(TableId table, uint32_t range_idx);
std::string TableEofLockName(TableId table);

class LockManager {
 public:
  explicit LockManager(LockManagerOptions options = {});

  /// Acquires (or upgrades to) `mode` on `name` for `txn`. Blocks until
  /// granted, deadlock (kDeadlock) or timeout (kTimedOut). Re-entrant:
  /// holding X satisfies an S request.
  Status Lock(TxnId txn, const std::string& name, LockMode mode);

  /// Instant-duration lock: acquire then immediately release. Used for
  /// next-key probes during inserts under the fetch-ahead protocol.
  Status LockInstant(TxnId txn, const std::string& name, LockMode mode);

  /// Releases every lock held by txn (strict 2PL release point).
  void ReleaseAll(TxnId txn);

  /// Number of locks currently held by txn (tests).
  size_t HeldCount(TxnId txn) const;

  LockManagerStats stats() const;

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool granted = false;
  };
  struct LockEntry {
    // (txn, mode); a txn appears at most once, with its strongest mode.
    std::vector<std::pair<TxnId, LockMode>> holders;
    std::deque<Waiter*> waiters;
  };

  bool CompatibleLocked(const LockEntry& entry, TxnId txn,
                        LockMode mode) const;
  void GrantLocked(LockEntry* entry, TxnId txn, LockMode mode);
  void WakeWaitersLocked(LockEntry* entry);
  std::vector<TxnId> BlockersLocked(const LockEntry& entry, TxnId txn,
                                    LockMode mode) const;

  LockManagerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, LockEntry> table_;
  std::unordered_map<TxnId, std::unordered_set<std::string>> held_;
  WaitForGraph wait_graph_;
  LockManagerStats stats_;
};

}  // namespace untx
