#include "tc/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/coding.h"

namespace untx {

std::string RecordLockName(TableId table, const std::string& key) {
  std::string name;
  name.push_back('K');
  PutFixed32(&name, table);
  name += key;
  return name;
}

std::string RangeLockName(TableId table, uint32_t range_idx) {
  std::string name;
  name.push_back('R');
  PutFixed32(&name, table);
  PutFixed32(&name, range_idx);
  return name;
}

std::string TableEofLockName(TableId table) {
  std::string name;
  name.push_back('E');
  PutFixed32(&name, table);
  return name;
}

LockManager::LockManager(LockManagerOptions options) : options_(options) {}

bool LockManager::CompatibleLocked(const LockEntry& entry, TxnId txn,
                                   LockMode mode) const {
  for (const auto& [holder, held_mode] : entry.holders) {
    if (holder == txn) continue;  // own locks never conflict
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

void LockManager::GrantLocked(LockEntry* entry, TxnId txn, LockMode mode) {
  for (auto& [holder, held_mode] : entry->holders) {
    if (holder == txn) {
      if (mode == LockMode::kExclusive &&
          held_mode == LockMode::kShared) {
        held_mode = LockMode::kExclusive;
        ++stats_.upgrades;
      }
      return;
    }
  }
  entry->holders.emplace_back(txn, mode);
}

std::vector<TxnId> LockManager::BlockersLocked(const LockEntry& entry,
                                               TxnId txn,
                                               LockMode mode) const {
  std::vector<TxnId> blockers;
  for (const auto& [holder, held_mode] : entry.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      blockers.push_back(holder);
    }
  }
  return blockers;
}

Status LockManager::Lock(TxnId txn, const std::string& name, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  LockEntry& entry = table_[name];

  // Already held strongly enough?
  for (const auto& [holder, held_mode] : entry.holders) {
    if (holder == txn &&
        (held_mode == LockMode::kExclusive || mode == LockMode::kShared)) {
      return Status::OK();
    }
  }

  // Fast path: compatible and nobody queued ahead (except when upgrading,
  // which may barge — the holder would otherwise deadlock behind itself).
  const bool holds_already =
      std::any_of(entry.holders.begin(), entry.holders.end(),
                  [txn](const auto& h) { return h.first == txn; });
  if (CompatibleLocked(entry, txn, mode) &&
      (entry.waiters.empty() || holds_already)) {
    GrantLocked(&entry, txn, mode);
    held_[txn].insert(name);
    ++stats_.acquisitions;
    return Status::OK();
  }

  // Must wait.
  ++stats_.waits;
  Waiter waiter{txn, mode, false};
  entry.waiters.push_back(&waiter);

  auto cleanup = [&](bool remove_edges) {
    auto& waiters = table_[name].waiters;
    auto it = std::find(waiters.begin(), waiters.end(), &waiter);
    if (it != waiters.end()) waiters.erase(it);
    if (remove_edges) wait_graph_.RemoveWaiter(txn);
  };

  if (options_.deadlock_detection) {
    wait_graph_.AddEdges(txn, BlockersLocked(entry, txn, mode));
    if (!wait_graph_.FindCycleFrom(txn).empty()) {
      ++stats_.deadlocks;
      cleanup(/*remove_edges=*/true);
      WakeWaitersLocked(&table_[name]);
      return Status::Deadlock("lock wait would close a cycle");
    }
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.wait_timeout_ms);
  for (;;) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        !waiter.granted) {
      ++stats_.timeouts;
      cleanup(true);
      return Status::TimedOut("lock wait timed out");
    }
    if (waiter.granted) {
      // WakeWaitersLocked granted us and added us to holders.
      wait_graph_.RemoveWaiter(txn);
      held_[txn].insert(name);
      ++stats_.acquisitions;
      return Status::OK();
    }
    if (options_.deadlock_detection) {
      // Blockers may have changed; refresh edges and re-check.
      wait_graph_.RemoveWaiter(txn);
      wait_graph_.AddEdges(txn, BlockersLocked(table_[name], txn, mode));
      if (!wait_graph_.FindCycleFrom(txn).empty()) {
        ++stats_.deadlocks;
        cleanup(true);
        WakeWaitersLocked(&table_[name]);
        return Status::Deadlock("lock wait would close a cycle");
      }
    }
  }
}

Status LockManager::LockInstant(TxnId txn, const std::string& name,
                                LockMode mode) {
  Status s = Lock(txn, name, mode);
  if (!s.ok()) return s;
  // Instant duration: release just this lock (unless the txn held it
  // already — then keep it; releasing would break 2PL).
  std::lock_guard<std::mutex> guard(mu_);
  auto held_it = held_.find(txn);
  if (held_it == held_.end()) return Status::OK();
  // We cannot tell "newly acquired" from "reacquired"; conservatively keep
  // the lock. Instant semantics only matter for conflict detection, which
  // already happened inside Lock().
  return Status::OK();
}

void LockManager::WakeWaitersLocked(LockEntry* entry) {
  // Grant from the front of the queue while compatible (FIFO fairness).
  bool granted_any = false;
  while (!entry->waiters.empty()) {
    Waiter* w = entry->waiters.front();
    if (!CompatibleLocked(*entry, w->txn, w->mode)) break;
    GrantLocked(entry, w->txn, w->mode);
    w->granted = true;
    entry->waiters.pop_front();
    granted_any = true;
    if (w->mode == LockMode::kExclusive) break;
  }
  if (granted_any) cv_.notify_all();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto held_it = held_.find(txn);
  if (held_it == held_.end()) {
    wait_graph_.RemoveTxn(txn);
    return;
  }
  for (const std::string& name : held_it->second) {
    auto table_it = table_.find(name);
    if (table_it == table_.end()) continue;
    LockEntry& entry = table_it->second;
    entry.holders.erase(
        std::remove_if(entry.holders.begin(), entry.holders.end(),
                       [txn](const auto& h) { return h.first == txn; }),
        entry.holders.end());
    if (entry.holders.empty() && entry.waiters.empty()) {
      table_.erase(table_it);
    } else {
      WakeWaitersLocked(&entry);
    }
  }
  held_.erase(held_it);
  wait_graph_.RemoveTxn(txn);
  cv_.notify_all();
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

LockManagerStats LockManager::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

}  // namespace untx
