#include "tc/transaction_component.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>

#include "common/coding.h"

namespace untx {

namespace {

/// Conflict-gate key for in-flight pipelined operations.
std::string InflightKey(TableId table, const std::string& key) {
  std::string out;
  PutFixed32(&out, table);
  out += key;
  return out;
}

}  // namespace

// ---- RangePartitionConfig ----------------------------------------------------

uint32_t RangePartitionConfig::PartitionOf(const std::string& key) const {
  // Partition i covers [boundaries[i-1], boundaries[i]).
  auto it = std::upper_bound(boundaries.begin(), boundaries.end(), key);
  return static_cast<uint32_t>(it - boundaries.begin());
}

std::pair<uint32_t, uint32_t> RangePartitionConfig::Overlapping(
    const std::string& from, const std::string& to) const {
  const uint32_t lo = PartitionOf(from);
  const uint32_t hi =
      to.empty() ? Count() - 1
                 // `to` is exclusive: key `to` itself is not read, so a
                 // partition starting exactly at `to` is not needed.
                 : PartitionOf(to);
  return {lo, hi};
}

// ---- Construction -------------------------------------------------------------

TransactionComponent::TransactionComponent(TcOptions options,
                                           std::vector<DcBinding> dcs,
                                           Router router)
    : options_(options),
      dcs_(std::move(dcs)),
      router_(std::move(router)),
      log_(options.log),
      locks_(std::make_unique<LockManager>(options.locks)) {
  assert(!dcs_.empty());
  for (auto& binding : dcs_) {
    binding.client->set_op_reply_handler(
        [this](const OperationReply& reply) { OnOperationReply(reply); });
    binding.client->set_control_reply_handler(
        [this](const ControlReply& reply) { OnControlReply(reply); });
    binding.client->set_scan_chunk_handler(
        [this](const ScanStreamChunk& chunk) { OnScanChunk(chunk); });
  }
}

TransactionComponent::~TransactionComponent() { Stop(); }

Status TransactionComponent::Start() {
  stopping_.store(false);
  // Fresh start: no redo is pending anywhere, so arm the LWM contract.
  for (const auto& binding : dcs_) {
    ControlRequest req;
    req.type = ControlType::kRestartEnd;
    req.tc_id = options_.tc_id;
    req.seq = 0;
    binding.client->SendControl(req);
  }
  if (options_.start_daemons) {
    control_daemon_.Start(
        std::chrono::milliseconds(options_.control_interval_ms),
        [this] { PushControls(); });
    resend_daemon_.Start(
        std::chrono::milliseconds(options_.resend_interval_ms),
        [this] { ResendPass(); });
    if (options_.group_commit) {
      // Committers Poke() the forcer on demand, so commit latency tracks
      // the force cost — not this interval. The periodic tick is only
      // the idle backstop for unforced non-commit appends; clamp it to
      // >= 1ms so a sub-millisecond commit window doesn't spin an idle
      // core at kHz rates. Grouping still happens naturally: while one
      // force is in progress, later committers append, wait, and ride
      // the next force together.
      group_commit_daemon_.Start(
          std::chrono::microseconds(
              std::max(1000u, options_.group_commit_interval_us)),
          [this] {
            if (!crashed_.load()) log_.Force();
          });
    }
  }
  return Status::OK();
}

void TransactionComponent::Stop() {
  stopping_.store(true);
  control_daemon_.Stop();
  resend_daemon_.Stop();
  group_commit_daemon_.Stop();
}

DcId TransactionComponent::Route(TableId table,
                                 const std::string& key) const {
  if (router_) return router_(table, key);
  return dcs_.front().id;
}

DcClient* TransactionComponent::ClientFor(DcId dc) const {
  for (const auto& binding : dcs_) {
    if (binding.id == dc) return binding.client;
  }
  return dcs_.front().client;
}

// ---- Reply plumbing -----------------------------------------------------------

void TransactionComponent::OnOperationReply(const OperationReply& reply) {
  if (crashed_.load()) return;
  // Count idempotence hits up front: a was_duplicate reply usually races
  // a non-duplicate one for the same LSN and loses the outstanding-op
  // lookup below — it must still be visible in the stats.
  if (reply.was_duplicate) stats_.dup_replies.fetch_add(1);
  std::shared_ptr<OutstandingOp> op;
  {
    std::lock_guard<std::mutex> guard(out_mu_);
    auto it = outstanding_.find(reply.lsn);
    if (it == outstanding_.end() || it->second->completed) {
      return;  // duplicate or late reply — idempotence already paid for it
    }
    op = it->second;
    op->completed = true;
    op->reply = reply;
    // The DC durably appended this op to its redo log at `rlsn`: record
    // it so a failover/local-recovery resend can skip every op the
    // revived DC's log already holds (the suffix-only resend). Duplicate
    // replies answered from the DC's idempotence carry rlsn 0 and must
    // ERASE any prior record, not just leave none: a record taken before
    // a DC crash can name a volatile log position the revived DC reused
    // for a different op, and skipping on it would lose this op at the
    // next promoted standby. Erasure keeps the op conservatively
    // resendable (a redundant resend is absorbed as an abLSN duplicate).
    if (reply.rlsn != 0) {
      acked_rlsns_[op->dc][reply.lsn] = reply.rlsn;
    } else {
      auto acked_it = acked_rlsns_.find(op->dc);
      if (acked_it != acked_rlsns_.end()) acked_it->second.erase(reply.lsn);
    }
    outstanding_.erase(it);
    // Release the per-key conflict gate for pipelined successors.
    auto key_it = inflight_keys_.find(
        InflightKey(op->request.table_id, op->request.key));
    if (key_it != inflight_keys_.end()) {
      auto& ops = key_it->second;
      ops.erase(std::remove(ops.begin(), ops.end(), op), ops.end());
      if (ops.empty()) inflight_keys_.erase(key_it);
    }
    // Drain the backpressure window and wake blocked submitters.
    if (op->pipelined && op->txn != kInvalidTxnId) {
      ReleaseWindowSlotLocked(op->txn, op->dc);
    }
  }
  if (op->needs_seal) {
    TcLogRecord rec;
    rec.type = op->record_type;
    rec.txn = op->txn;
    rec.op = op->request.op;
    rec.table_id = op->request.table_id;
    rec.key = op->request.key;
    rec.value = op->request.value;
    rec.versioned = op->request.versioned;
    rec.applied = reply.status.ok() && IsWriteOp(op->request.op);
    rec.has_before = reply.has_before;
    rec.before = reply.value;
    rec.undo_target = op->undo_target;
    std::string payload;
    rec.EncodeTo(&payload);
    log_.Seal(op->request.lsn - 1, std::move(payload));
  }
  op->done.Notify();
}

void TransactionComponent::OnControlReply(const ControlReply& reply) {
  if (reply.seq == 0) return;  // fire-and-forget
  std::shared_ptr<PendingControl> pending;
  {
    std::lock_guard<std::mutex> guard(control_mu_);
    auto it = pending_controls_.find(reply.seq);
    if (it == pending_controls_.end()) return;
    pending = it->second;
    pending_controls_.erase(it);
  }
  pending->reply = reply;
  pending->done.Notify();
}

void TransactionComponent::OnScanChunk(const ScanStreamChunk& chunk) {
  if (crashed_.load()) return;
  std::shared_ptr<ScanStream> stream;
  {
    std::lock_guard<std::mutex> guard(stream_mu_);
    auto it = streams_.find(chunk.stream_id);
    if (it == streams_.end()) return;  // stale stream (restarted or done)
    stream = it->second;
  }
  std::lock_guard<std::mutex> guard(stream->mu);
  if (chunk.chunk_index < stream->next_index) return;  // duplicate
  const auto now = std::chrono::steady_clock::now();
  if (stream->has_arrival) {
    const int64_t gap_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - stream->last_arrival)
            .count();
    stream->ewma_gap_us = stream->ewma_gap_us == 0
                              ? gap_us
                              : (3 * stream->ewma_gap_us + gap_us) / 4;
  }
  stream->last_arrival = now;
  stream->has_arrival = true;
  stream->chunks.emplace(chunk.chunk_index, chunk);
  stream->cv.notify_all();
}

std::chrono::milliseconds TransactionComponent::StallWait(
    const std::shared_ptr<ScanStream>& stream, std::chrono::milliseconds cap) {
  int64_t ewma_us;
  {
    std::lock_guard<std::mutex> guard(stream->mu);
    ewma_us = stream->ewma_gap_us;
  }
  if (ewma_us <= 0) return cap;  // no signal yet: the conservative wait
  const auto adaptive =
      std::chrono::milliseconds(std::max<int64_t>(2, (4 * ewma_us) / 1000));
  return std::min(adaptive, cap);
}

Status TransactionComponent::WaitStreamChunk(
    const std::shared_ptr<ScanStream>& stream, std::chrono::milliseconds wait,
    ScanStreamChunk* chunk, bool* got) {
  *got = false;
  std::unique_lock<std::mutex> lock(stream->mu);
  stream->cv.wait_for(lock, wait, [&] {
    return stream->failed || stream->chunks.count(stream->next_index) > 0;
  });
  if (stream->failed) return Status::Crashed("tc crashed during scan");
  auto it = stream->chunks.find(stream->next_index);
  if (it == stream->chunks.end()) return Status::OK();  // stall
  *chunk = std::move(it->second);
  stream->chunks.erase(it);
  ++stream->next_index;
  *got = true;
  return Status::OK();
}

Status TransactionComponent::WaitDcReady(
    DcId dc, std::chrono::steady_clock::time_point deadline) {
  // Hold the attempt while the DC replays its redo: a stream issued
  // mid-redo would scan a partially re-populated tree and could declare
  // the range exhausted early. Every gate-opening path notifies
  // dc_ready_cv_, so the wait ends the moment redo completes instead of
  // on the next poll tick; the 50ms slice only bounds a lost wakeup.
  std::unique_lock<std::mutex> lock(out_mu_);
  for (;;) {
    auto it = dc_recovering_.find(dc);
    const bool recovering = it != dc_recovering_.end() && it->second;
    if (!recovering) return Status::OK();
    if (crashed_.load()) return Status::Crashed("tc is down");
    const auto now = std::chrono::steady_clock::now();
    if (now > deadline) {
      return Status::TimedOut("scan held for dc recovery");
    }
    dc_ready_cv_.wait_until(
        lock, std::min(deadline, now + std::chrono::milliseconds(50)));
  }
}

Status TransactionComponent::StreamScan(
    TableId table, const std::string& from, const std::string& to,
    uint32_t limit, ReadFlavor flavor,
    const std::function<bool(const std::string&, const std::string&)>&
        emit_row) {
  std::string last_key;  // monotonic dedup filter across restarts
  bool have_last = false;
  uint64_t delivered = 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.op_timeout_ms);
  const auto chunk_wait = std::chrono::milliseconds(
      std::max<uint32_t>(options_.resend_interval_ms, 20));
  const uint32_t credit = options_.scan_credit_chunks;
  stats_.scan_streams.fetch_add(1);
  for (bool first_attempt = true;; first_attempt = false) {
    if (crashed_.load()) return Status::Crashed("tc is down");
    if (!first_attempt) stats_.scan_restarts.fetch_add(1);
    ScanStreamRequest sreq;
    sreq.base.op = OpType::kScanRange;
    sreq.base.tc_id = options_.tc_id;
    sreq.base.lsn = next_stream_id_.fetch_add(1);  // stream id, not a log LSN
    sreq.base.table_id = table;
    sreq.base.key = have_last ? last_key : from;
    sreq.base.exclusive_start = have_last;
    sreq.base.end_key = to;
    sreq.base.read_flavor = flavor;
    sreq.base.limit =
        limit == 0 ? 0 : limit - static_cast<uint32_t>(delivered);
    sreq.chunk_rows = options_.scan_stream_chunk;
    sreq.credit_chunks = credit;
    auto stream = std::make_shared<ScanStream>();
    {
      std::lock_guard<std::mutex> guard(stream_mu_);
      streams_[sreq.base.lsn] = stream;
    }
    auto deregister = [&] {
      std::lock_guard<std::mutex> guard(stream_mu_);
      streams_.erase(sreq.base.lsn);
    };
    const DcId dc = Route(table, sreq.base.key);
    Status ready = WaitDcReady(dc, deadline);
    if (!ready.ok()) {
      deregister();
      return ready;
    }
    ClientFor(dc)->SendScanStream(sreq);
    // Flow control: the DC pauses after `credit` chunks; replenish (with
    // an ABSOLUTE window, so duplicated credits are harmless) as the
    // cursor drains. On a stall the credit is re-sent before the stream
    // is given up — a lost credit must not wedge the scan.
    uint32_t allowed = credit;
    int stall_resends = 0;
    auto send_credit = [&](bool resend) {
      ScanCreditRequest cr;
      cr.tc_id = options_.tc_id;
      cr.stream_id = sreq.base.lsn;
      cr.allowed_chunks = allowed;
      ClientFor(dc)->SendScanCredit(cr);
      if (resend) {
        stats_.scan_credit_resends.fetch_add(1);
      } else {
        stats_.scan_credits_sent.fetch_add(1);
      }
    };
    auto send_close = [&] {
      if (credit == 0) return;
      ScanCreditRequest cr;
      cr.tc_id = options_.tc_id;
      cr.stream_id = sreq.base.lsn;
      cr.allowed_chunks = allowed;
      cr.close = true;
      ClientFor(dc)->SendScanCredit(cr);
    };
    // Continuity cursor: each consumed chunk must have been produced
    // from exactly the position the previous one ended at. A duplicated
    // stream request yields two executions whose chunk boundaries can
    // diverge under concurrent writes; without this check, chunk k of
    // one execution spliced with chunk k+1 of the other could skip keys.
    std::string expected_key = sreq.base.key;
    bool expected_exclusive = sreq.base.exclusive_start;
    for (;;) {
      ScanStreamChunk chunk;
      bool got = false;
      Status ws =
          WaitStreamChunk(stream, StallWait(stream, chunk_wait), &chunk, &got);
      if (!ws.ok()) {
        deregister();
        return ws;
      }
      if (!got) {
        if (std::chrono::steady_clock::now() > deadline) {
          send_close();
          deregister();
          return Status::TimedOut("scan stream stalled");
        }
        // The next in-order chunk is missing. If the stream is credited
        // the DC may merely have lost our credit and parked — resend it
        // (absolute, so a duplicate is harmless) before giving up.
        if (credit != 0 && stall_resends < 2) {
          ++stall_resends;
          send_credit(/*resend=*/true);
          continue;
        }
        // Lost or late for real: re-issue from the resume point under a
        // fresh id.
        send_close();
        deregister();
        break;  // restart
      }
      stall_resends = 0;
      if (!chunk.status.ok()) {
        deregister();
        return chunk.status;  // logical failure (crashed never arrives)
      }
      if (chunk.resume_key != expected_key ||
          chunk.resume_exclusive != expected_exclusive) {
        // Discontinuous chunk (a divergent duplicate execution): drop
        // the stream and re-issue from the last delivered key.
        send_close();
        deregister();
        if (std::chrono::steady_clock::now() > deadline) {
          return Status::TimedOut("scan stream lost continuity");
        }
        break;  // restart
      }
      if (!chunk.keys.empty()) {
        expected_key = chunk.keys.back();
        expected_exclusive = true;
      }
      stats_.scan_chunks.fetch_add(1);
      for (size_t i = 0; i < chunk.keys.size(); ++i) {
        const std::string& key = chunk.keys[i];
        // Drop keys already delivered by an earlier attempt (or by a
        // duplicated stream execution racing this one).
        if (have_last && key <= last_key) continue;
        stats_.scan_rows.fetch_add(1);
        ++delivered;
        last_key = key;
        have_last = true;
        if (!emit_row(key, chunk.values[i])) {
          send_close();
          deregister();
          return Status::OK();  // caller hit its limit
        }
      }
      if (chunk.done) {
        deregister();
        return Status::OK();
      }
      if (credit != 0) {
        // Replenish once half the window has drained.
        uint32_t consumed;
        {
          std::lock_guard<std::mutex> lock(stream->mu);
          consumed = stream->next_index;
        }
        if ((allowed - consumed) * 2 <= credit) {
          allowed = consumed + credit;
          send_credit(/*resend=*/false);
        }
      }
    }
  }
}

Status TransactionComponent::FetchAheadStreamScan(
    TxnId txn, TableId table, const std::string& from, const std::string& to,
    uint32_t limit, std::vector<std::pair<std::string, std::string>>* out) {
  // The §3.1 fetch-ahead protocol folded into ONE probe-mode stream:
  // chunk = speculative probe for one window (every physical key + the
  // fencepost in next_key), locks taken at the TC, then the validated
  // read is a kScanCredit REWIND answered from the same DC cursor — no
  // blocking ScanRange messages at all. Each rewind also grants one
  // speculative chunk past itself, so window k+1's probe is on the wire
  // while window k's rows are delivered.
  std::string pos = from;  // start of the current (unvalidated) window
  bool pos_exclusive = false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.op_timeout_ms);
  const auto chunk_wait = std::chrono::milliseconds(
      std::max<uint32_t>(options_.resend_interval_ms, 20));
  stats_.scan_streams.fetch_add(1);
  for (bool first_attempt = true;; first_attempt = false) {
    if (crashed_.load()) return Status::Crashed("tc is down");
    if (!first_attempt) stats_.scan_restarts.fetch_add(1);
    ScanStreamRequest sreq;
    sreq.base.op = OpType::kScanRange;
    sreq.base.tc_id = options_.tc_id;
    sreq.base.lsn = next_stream_id_.fetch_add(1);
    sreq.base.table_id = table;
    sreq.base.key = pos;
    sreq.base.exclusive_start = pos_exclusive;
    sreq.base.end_key = to;
    sreq.base.read_flavor = ReadFlavor::kOwn;
    sreq.base.limit = 0;  // the TC enforces the row limit
    sreq.chunk_rows = std::max<uint32_t>(1, options_.fetch_ahead_batch);
    sreq.credit_chunks = 1;  // exactly one speculative window at a time
    sreq.probe_rows = true;
    auto stream = std::make_shared<ScanStream>();
    {
      std::lock_guard<std::mutex> guard(stream_mu_);
      streams_[sreq.base.lsn] = stream;
    }
    auto deregister = [&] {
      std::lock_guard<std::mutex> guard(stream_mu_);
      streams_.erase(sreq.base.lsn);
    };
    const DcId dc = Route(table, pos);
    Status ready = WaitDcReady(dc, deadline);
    if (!ready.ok()) {
      deregister();
      return ready;
    }
    ClientFor(dc)->SendScanStream(sreq);
    uint32_t next_produce = 1;  // the DC pauses here until a credit
    ScanCreditRequest last_credit;
    bool have_credit = false;
    auto send_close = [&] {
      ScanCreditRequest cr;
      cr.tc_id = options_.tc_id;
      cr.stream_id = sreq.base.lsn;
      cr.allowed_chunks = next_produce;
      cr.close = true;
      ClientFor(dc)->SendScanCredit(cr);
    };
    // Waits for the next in-order chunk, re-sending the last credit on
    // a stall. Returns +1 got, 0 restart-the-stream, -1 fatal (*fail).
    auto await_chunk = [&](ScanStreamChunk* chunk, Status* fail) -> int {
      int stalls = 0;
      for (;;) {
        bool got = false;
        Status ws =
            WaitStreamChunk(stream, StallWait(stream, chunk_wait), chunk, &got);
        if (!ws.ok()) {
          *fail = ws;
          return -1;
        }
        if (got) return 1;
        if (std::chrono::steady_clock::now() > deadline) {
          *fail = Status::TimedOut("scan stream stalled");
          return -1;
        }
        if (have_credit && stalls < 2) {
          // The credit (not the chunk) may be what was lost: resend it.
          ++stalls;
          stats_.scan_credit_resends.fetch_add(1);
          ClientFor(dc)->SendScanCredit(last_credit);
          continue;
        }
        return 0;
      }
    };
    bool restart = false;
    bool first_window = true;
    while (!restart) {
      // 1. The speculative probe chunk for the current window. If it is
      // already buffered, its round trip fully overlapped the previous
      // window's validation and delivery.
      {
        std::lock_guard<std::mutex> lock(stream->mu);
        if (!first_window &&
            stream->chunks.count(stream->next_index) > 0) {
          stats_.scan_prefetch_hits.fetch_add(1);
        }
      }
      first_window = false;
      ScanStreamChunk probe;
      Status fail = Status::OK();
      int w = await_chunk(&probe, &fail);
      if (w < 0) {
        send_close();
        deregister();
        return fail;
      }
      if (w == 0) {
        restart = true;
        break;
      }
      if (!probe.status.ok()) {
        if (probe.status.IsBusy()) {
          restart = true;  // transient SMO race at the DC
          break;
        }
        send_close();
        deregister();
        return probe.status;
      }
      if (probe.resume_key != pos || probe.resume_exclusive != pos_exclusive) {
        restart = true;  // foreign execution; cannot trust the window
        break;
      }
      // 2. Lock the window (every physical key — probe semantics, so a
      // tombstoned record's writer blocks us) plus the fencepost or the
      // EOF sentinel for phantom safety.
      for (const auto& k : probe.keys) {
        Status s =
            locks_->Lock(txn, RecordLockName(table, k), LockMode::kShared);
        if (!s.ok()) {
          if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
          send_close();
          deregister();
          return s;
        }
      }
      const std::string fencepost = probe.next_key;
      {
        Status s = fencepost.empty()
                       ? locks_->Lock(txn, TableEofLockName(table),
                                      LockMode::kShared)
                       : locks_->Lock(txn, RecordLockName(table, fencepost),
                                      LockMode::kShared);
        if (!s.ok()) {
          if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
          send_close();
          deregister();
          return s;
        }
      }
      // 3. Validated read: rewind the DC cursor over the locked window.
      // "Should the records be different from the ones that were locked,
      // this subsequent request becomes again a speculative request."
      std::set<std::string> locked(probe.keys.begin(), probe.keys.end());
      ScanStreamChunk vchunk;
      bool validated = false;
      // A mid-range rewind yields TWO chunks (the re-read plus one
      // speculative window past it); the final window's rewind — empty
      // fencepost, re-read to the end bound — yields only the re-read.
      const uint32_t chunks_per_rewind = fencepost.empty() ? 1 : 2;
      for (int round = 0; round < 8 && !validated; ++round) {
        ScanCreditRequest cr;
        cr.tc_id = options_.tc_id;
        cr.stream_id = sreq.base.lsn;
        cr.rewind = true;
        cr.expect_chunk = next_produce;
        cr.rewind_key = pos;
        cr.rewind_exclusive = pos_exclusive;
        cr.rewind_upto = fencepost;
        // The rewind chunk plus (mid-range) ONE speculative window past
        // it — the next window's probe prefetched while this one is
        // finished.
        cr.allowed_chunks = next_produce + chunks_per_rewind;
        last_credit = cr;
        have_credit = true;
        next_produce += chunks_per_rewind;
        ClientFor(dc)->SendScanCredit(cr);
        stats_.scan_credits_sent.fetch_add(1);
        if (round > 0 && !fencepost.empty()) {
          // Each extra round leaves one stale speculative chunk (probed
          // from the pre-revalidation cursor) in the buffer: drain it.
          ScanStreamChunk stale;
          w = await_chunk(&stale, &fail);
          if (w < 0) {
            send_close();
            deregister();
            return fail;
          }
          if (w == 0) break;  // restart
        }
        w = await_chunk(&vchunk, &fail);
        if (w < 0) {
          send_close();
          deregister();
          return fail;
        }
        if (w == 0) break;  // restart
        if (!vchunk.status.ok()) {
          if (vchunk.status.IsBusy()) break;  // SMO-racing rewind: restart
          send_close();
          deregister();
          return vchunk.status;
        }
        if (vchunk.resume_key != pos ||
            vchunk.resume_exclusive != pos_exclusive) {
          break;  // foreign chunk; restart
        }
        bool all_locked = true;
        for (const auto& k : vchunk.keys) {
          if (locked.count(k) != 0) continue;
          Status s =
              locks_->Lock(txn, RecordLockName(table, k), LockMode::kShared);
          if (!s.ok()) {
            if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
            send_close();
            deregister();
            return s;
          }
          locked.insert(k);
          all_locked = false;
        }
        validated = all_locked;
      }
      if (!validated) {
        // Either a restart-worthy stall or 8 racing rounds: re-issue the
        // stream for this window (locks are kept; re-probing is safe).
        restart = true;
        break;
      }
      stats_.scan_validated_windows.fetch_add(1);
      stats_.scan_chunks.fetch_add(1);
      // 4. Deliver the window's visible rows, in order.
      std::set<uint32_t> invisible(vchunk.invisible.begin(),
                                   vchunk.invisible.end());
      for (size_t i = 0; i < vchunk.keys.size(); ++i) {
        if (invisible.count(static_cast<uint32_t>(i)) != 0) continue;
        stats_.scan_rows.fetch_add(1);
        out->emplace_back(vchunk.keys[i], vchunk.values[i]);
        if (limit != 0 && out->size() >= limit) {
          send_close();
          deregister();
          return Status::OK();
        }
      }
      if (fencepost.empty() || vchunk.done) {
        send_close();  // probe cursors are not auto-evicted on done
        deregister();
        return Status::OK();
      }
      // 5. Advance: the next window starts AT the fencepost (inclusive),
      // and its speculative probe chunk is already in flight.
      pos = fencepost;
      pos_exclusive = false;
    }
    send_close();
    deregister();
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::TimedOut("fetch-ahead scan stream stalled");
    }
  }
}

StatusOr<ControlReply> TransactionComponent::ControlAwait(
    DcId dc, ControlRequest req, uint32_t timeout_ms) {
  auto pending = std::make_shared<PendingControl>();
  {
    std::lock_guard<std::mutex> guard(control_mu_);
    req.seq = next_control_seq_++;
    pending_controls_[req.seq] = pending;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  // Control messages ride the same lossy transport: resend until acked.
  for (;;) {
    ClientFor(dc)->SendControl(req);
    if (pending->done.WaitFor(std::chrono::milliseconds(
            std::max<uint32_t>(options_.resend_interval_ms, 20)))) {
      return pending->reply;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      std::lock_guard<std::mutex> guard(control_mu_);
      pending_controls_.erase(req.seq);
      return Status::TimedOut("control request not acknowledged");
    }
  }
}

void TransactionComponent::SendToDc(const std::shared_ptr<OutstandingOp>& op,
                                    bool is_resend) {
  {
    std::lock_guard<std::mutex> guard(out_mu_);
    auto it = dc_recovering_.find(op->dc);
    if (it != dc_recovering_.end() && it->second && is_resend) {
      return;  // hold resends while the DC replays its redo
    }
    op->last_send = std::chrono::steady_clock::now();
  }
  if (is_resend) stats_.resends.fetch_add(1);
  ClientFor(op->dc)->SendOperation(op->request);
}

void TransactionComponent::ResendPass() {
  if (crashed_.load()) return;
  std::vector<std::shared_ptr<OutstandingOp>> stale;
  const auto now = std::chrono::steady_clock::now();
  const auto age = std::chrono::milliseconds(options_.resend_interval_ms);
  {
    std::lock_guard<std::mutex> guard(out_mu_);
    for (auto& [lsn, op] : outstanding_) {
      // Recovery resends are retried by RedoResend's own ordered
      // suffix-resend loop; an individual background resend here could
      // deliver a CLR BEFORE the forward op it compensates (separate
      // messages reorder on the wire) and corrupt replayed history.
      if (op->request.recovery_resend) continue;
      if (!op->completed && now - op->last_send >= age) {
        stale.push_back(op);
      }
    }
  }
  for (auto& op : stale) SendToDc(op, /*is_resend=*/true);
}

void TransactionComponent::PushControls() {
  if (crashed_.load()) return;
  log_.Force();
  const Lsn eosl = log_.stable_end();
  const Lsn lwm = log_.sealed_prefix_end();
  for (const auto& binding : dcs_) {
    ControlRequest req;
    req.tc_id = options_.tc_id;
    req.seq = 0;  // fire-and-forget
    req.type = ControlType::kEndOfStableLog;
    req.lsn = eosl;
    binding.client->SendControl(req);
    req.type = ControlType::kLowWaterMark;
    req.lsn = lwm;
    binding.client->SendControl(req);
  }
}

// ---- Operation execution -------------------------------------------------------

bool TransactionComponent::WaitForConflicts(const OperationRequest& req) {
  // The §1.2 obligation: never two conflicting operations in flight. The
  // lock manager already serializes conflicts ACROSS transactions; within
  // one transaction, pipelined submits against the same key must drain
  // their predecessors (a write waits for everything on the key, a read
  // waits for in-flight writes) so the channel cannot reorder them.
  const bool is_write = IsWriteOp(req.op);
  const std::string gate = InflightKey(req.table_id, req.key);
  for (;;) {
    std::shared_ptr<OutstandingOp> predecessor;
    {
      std::lock_guard<std::mutex> guard(out_mu_);
      auto it = inflight_keys_.find(gate);
      if (it != inflight_keys_.end()) {
        for (const auto& op : it->second) {
          if (op->completed) continue;
          if (is_write || IsWriteOp(op->request.op)) {
            predecessor = op;
            break;
          }
        }
      }
    }
    if (!predecessor) return true;
    // The predecessor may still sit in a coalescing queue: flush, then
    // wait for its reply (the resend daemon guarantees progress).
    ClientFor(predecessor->dc)->FlushOperations();
    if (!predecessor->done.WaitFor(
            std::chrono::milliseconds(options_.op_timeout_ms))) {
      return false;  // the predecessor is stuck (e.g. its DC is down)
    }
  }
}

void TransactionComponent::ReleaseWindowSlotLocked(TxnId txn, DcId dc) {
  auto it = window_counts_.find({txn, dc});
  if (it == window_counts_.end()) return;  // cap off, or cleared by Crash()
  if (--it->second == 0) window_counts_.erase(it);
  window_cv_.notify_all();
}

bool TransactionComponent::WaitForWindow(TxnId txn, DcId dc) {
  const uint32_t cap = options_.max_outstanding_ops;
  if (cap == 0 || txn == kInvalidTxnId) return true;
  const auto window_key = std::make_pair(txn, dc);
  // Check-and-reserve must be one atomic step: concurrent submitters on
  // the same (txn, DC) would otherwise each pass the check and jointly
  // overshoot the cap. The slot is released by the reply handler (or by
  // SubmitOp itself if the submit fails after the reservation).
  auto try_reserve = [&]() {
    uint32_t& count = window_counts_[window_key];
    if (count >= cap) return false;
    ++count;
    return true;
  };
  {
    // Common case: the window has room — one map lookup, no waiting.
    std::lock_guard<std::mutex> guard(out_mu_);
    if (try_reserve()) return true;
  }
  stats_.backpressure_waits.fetch_add(1);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.op_timeout_ms);
  const auto interval = std::chrono::milliseconds(
      std::max<uint32_t>(options_.resend_interval_ms, 10));
  for (;;) {
    // The window may still sit in a coalescing queue: push it onto the
    // wire (outside out_mu_ — the reply handler needs that lock), then
    // wait for completions to drain it.
    ClientFor(dc)->FlushOperations();
    std::unique_lock<std::mutex> lock(out_mu_);
    bool reserved = false;
    window_cv_.wait_for(lock, interval,
                        [&] { return (reserved = try_reserve()); });
    if (reserved || try_reserve()) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
  }
}

std::shared_ptr<TransactionComponent::OutstandingOp>
TransactionComponent::SubmitOp(OperationRequest req, TxnId txn,
                               TcLogRecordType record_type, Lsn undo_target,
                               bool pipelined, Status* error) {
  auto fail = [error](Status s) -> std::shared_ptr<OutstandingOp> {
    if (error != nullptr) *error = std::move(s);
    return nullptr;
  };
  if (crashed_.load()) return fail(Status::Crashed("tc is down"));
  const DcId dc = Route(req.table_id, req.key);
  if (pipelined && !WaitForConflicts(req)) {
    return fail(
        Status::TimedOut("conflicting in-flight op never completed"));
  }
  if (pipelined && !WaitForWindow(txn, dc)) {
    return fail(Status::Busy("outstanding-op window to the DC is full"));
  }
  if (crashed_.load()) {
    // The window slot reserved above is never consumed: hand it back.
    if (pipelined && txn != kInvalidTxnId) {
      std::lock_guard<std::mutex> guard(out_mu_);
      ReleaseWindowSlotLocked(txn, dc);
    }
    return fail(Status::Crashed("tc is down"));
  }

  auto op = std::make_shared<OutstandingOp>();
  const uint64_t index = log_.Reserve();
  req.tc_id = options_.tc_id;
  req.lsn = index + 1;
  req.versioned = req.versioned && IsWriteOp(req.op);
  op->request = req;
  op->txn = txn;
  op->record_type = record_type;
  op->undo_target = undo_target;
  op->pipelined = pipelined;
  op->dc = dc;
  {
    std::lock_guard<std::mutex> guard(out_mu_);
    outstanding_[req.lsn] = op;
    op->last_send = std::chrono::steady_clock::now();
    if (pipelined) {
      inflight_keys_[InflightKey(req.table_id, req.key)].push_back(op);
      // The backpressure slot was already reserved by WaitForWindow.
    }
  }
  if (pipelined && txn != kInvalidTxnId &&
      record_type == TcLogRecordType::kOperation) {
    std::lock_guard<std::mutex> guard(txn_mu_);
    auto it = txns_.find(txn);
    if (it != txns_.end()) it->second.pending_ops.push_back(op);
  }
  stats_.ops_sent.fetch_add(1);
  if (pipelined) {
    ClientFor(op->dc)->QueueOperation(op->request);
  } else {
    ClientFor(op->dc)->SendOperation(op->request);
  }
  return op;
}

StatusOr<OperationReply> TransactionComponent::AwaitOp(
    const std::shared_ptr<OutstandingOp>& op) {
  if (op->pipelined && !op->completed) {
    ClientFor(op->dc)->FlushOperations();
  }
  if (!op->done.WaitFor(std::chrono::milliseconds(options_.op_timeout_ms))) {
    // The op stays outstanding; the resend daemon keeps trying (a down DC
    // blocks its updaters, §6.2.2). The caller sees a timeout.
    return Status::TimedOut("operation not acknowledged in time");
  }
  return op->reply;
}

void TransactionComponent::HarvestReply(
    const std::shared_ptr<OutstandingOp>& op) {
  // Read `completed` under out_mu_: the await may have TIMED OUT with
  // the reply handler mid-assignment of op->reply. Observing completed
  // under the same lock that published it guarantees the reply is whole.
  {
    std::lock_guard<std::mutex> guard(out_mu_);
    if (!op->completed) return;
  }
  std::lock_guard<std::mutex> guard(txn_mu_);
  if (op->harvested) return;
  op->harvested = true;
  auto it = txns_.find(op->txn);
  if (it == txns_.end()) return;
  auto& pending = it->second.pending_ops;
  pending.erase(std::remove(pending.begin(), pending.end(), op),
                pending.end());
  const OperationReply& reply = op->reply;
  if (!reply.status.ok() || !IsWriteOp(op->request.op) ||
      op->record_type != TcLogRecordType::kOperation) {
    return;
  }
  const TableId table = op->request.table_id;
  const std::string& key = op->request.key;
  switch (op->request.op) {
    case OpType::kInsert:
      it->second.undo_chain.push_back(
          UndoEntry{reply.lsn, OpType::kInsert, table, key, "", false});
      break;
    case OpType::kUpdate:
      it->second.undo_chain.push_back(
          UndoEntry{reply.lsn, OpType::kUpdate, table, key, reply.value,
                    true});
      break;
    case OpType::kDelete:
      it->second.undo_chain.push_back(
          UndoEntry{reply.lsn, OpType::kDelete, table, key, reply.value,
                    true});
      break;
    case OpType::kUpsert:
      it->second.undo_chain.push_back(
          UndoEntry{reply.lsn, OpType::kUpsert, table, key, reply.value,
                    reply.has_before});
      break;
    default:
      return;  // version/DDL ops carry no logical undo
  }
  it->second.written_keys.emplace_back(table, key);
}

StatusOr<OperationReply> TransactionComponent::ExecuteOp(
    OperationRequest req, TxnId txn, TcLogRecordType record_type,
    Lsn undo_target) {
  Status error = Status::Crashed("tc is down");
  auto op = SubmitOp(std::move(req), txn, record_type, undo_target,
                     /*pipelined=*/false, &error);
  if (!op) return error;
  return AwaitOp(op);
}

// ---- Locking helpers -----------------------------------------------------------

Status TransactionComponent::LockForWrite(TxnId txn, TableId table,
                                          const std::string& key,
                                          bool is_insert) {
  if (options_.range_protocol == RangeLockProtocol::kPartition) {
    return locks_->Lock(txn, RangeLockName(table,
                                           options_.partitions.PartitionOf(key)),
                        LockMode::kExclusive);
  }
  Status s = locks_->Lock(txn, RecordLockName(table, key),
                          LockMode::kExclusive);
  if (!s.ok()) return s;
  if (is_insert && options_.insert_phantom_protection) {
    // Key-range-style protection: probe and instant-lock the next key so
    // a serializable scan covering the gap blocks this insert (§3.1).
    OperationRequest probe;
    probe.op = OpType::kProbeNext;
    probe.table_id = table;
    probe.key = key;
    probe.limit = 2;
    stats_.probes.fetch_add(1);
    StatusOr<OperationReply> reply = ExecuteOp(probe, txn);
    if (!reply.ok()) return reply.status();
    std::string next_name = TableEofLockName(table);
    for (const auto& k : reply->keys) {
      if (k != key) {
        next_name = RecordLockName(table, k);
        break;
      }
    }
    s = locks_->LockInstant(txn, next_name, LockMode::kExclusive);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status TransactionComponent::LockForRead(TxnId txn, TableId table,
                                         const std::string& key) {
  if (options_.range_protocol == RangeLockProtocol::kPartition) {
    return locks_->Lock(txn, RangeLockName(table,
                                           options_.partitions.PartitionOf(key)),
                        LockMode::kShared);
  }
  return locks_->Lock(txn, RecordLockName(table, key), LockMode::kShared);
}

// ---- Pipelined asynchronous surface ---------------------------------------------

TransactionComponent::OpHandle TransactionComponent::SubmitLocked(
    TxnId txn, OperationRequest req) {
  OpHandle handle;
  Status error = Status::Crashed("tc is down");
  handle.op_ = SubmitOp(std::move(req), txn, TcLogRecordType::kOperation,
                        kInvalidLsn, /*pipelined=*/true, &error);
  if (!handle.op_) handle.submit_status_ = error;
  return handle;
}

TransactionComponent::OpHandle TransactionComponent::SubmitRead(
    TxnId txn, TableId table, const std::string& key) {
  OpHandle handle;
  Status s = LockForRead(txn, table, key);
  if (!s.ok()) {
    if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
    handle.submit_status_ = s;
    return handle;
  }
  OperationRequest req;
  req.op = OpType::kRead;
  req.table_id = table;
  req.key = key;
  req.read_flavor = ReadFlavor::kOwn;
  return SubmitLocked(txn, std::move(req));
}

TransactionComponent::OpHandle TransactionComponent::SubmitInsert(
    TxnId txn, TableId table, const std::string& key,
    const std::string& value) {
  OpHandle handle;
  Status s = LockForWrite(txn, table, key, /*is_insert=*/true);
  if (!s.ok()) {
    if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
    handle.submit_status_ = s;
    return handle;
  }
  OperationRequest req;
  req.op = OpType::kInsert;
  req.table_id = table;
  req.key = key;
  req.value = value;
  req.versioned = options_.versioning;
  return SubmitLocked(txn, std::move(req));
}

TransactionComponent::OpHandle TransactionComponent::SubmitUpdate(
    TxnId txn, TableId table, const std::string& key,
    const std::string& value) {
  OpHandle handle;
  Status s = LockForWrite(txn, table, key, /*is_insert=*/false);
  if (!s.ok()) {
    if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
    handle.submit_status_ = s;
    return handle;
  }
  OperationRequest req;
  req.op = OpType::kUpdate;
  req.table_id = table;
  req.key = key;
  req.value = value;
  req.versioned = options_.versioning;
  return SubmitLocked(txn, std::move(req));
}

TransactionComponent::OpHandle TransactionComponent::SubmitDelete(
    TxnId txn, TableId table, const std::string& key) {
  OpHandle handle;
  Status s = LockForWrite(txn, table, key, /*is_insert=*/false);
  if (!s.ok()) {
    if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
    handle.submit_status_ = s;
    return handle;
  }
  OperationRequest req;
  req.op = OpType::kDelete;
  req.table_id = table;
  req.key = key;
  req.versioned = options_.versioning;
  return SubmitLocked(txn, std::move(req));
}

TransactionComponent::OpHandle TransactionComponent::SubmitUpsert(
    TxnId txn, TableId table, const std::string& key,
    const std::string& value) {
  OpHandle handle;
  Status s = LockForWrite(txn, table, key, /*is_insert=*/true);
  if (!s.ok()) {
    if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
    handle.submit_status_ = s;
    return handle;
  }
  OperationRequest req;
  req.op = OpType::kUpsert;
  req.table_id = table;
  req.key = key;
  req.value = value;
  req.versioned = options_.versioning;
  return SubmitLocked(txn, std::move(req));
}

Status TransactionComponent::Await(OpHandle* handle, std::string* value) {
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  if (!handle->submit_status_.ok()) return handle->submit_status_;
  if (!handle->op_) return Status::InvalidArgument("empty handle");
  StatusOr<OperationReply> reply = AwaitOp(handle->op_);
  if (!reply.ok()) return reply.status();
  HarvestReply(handle->op_);
  if (reply->status.ok() && value != nullptr &&
      handle->op_->request.op == OpType::kRead) {
    *value = reply->value;
  }
  return reply->status;
}

Status TransactionComponent::AwaitAll(TxnId txn) {
  std::vector<std::shared_ptr<OutstandingOp>> pending;
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) return Status::OK();  // nothing pending
    pending = it->second.pending_ops;
  }
  if (pending.empty()) return Status::OK();
  // One flush per DC pushes every coalesced batch onto the wire at once.
  for (const auto& binding : dcs_) binding.client->FlushOperations();
  Status first;
  for (const auto& op : pending) {
    StatusOr<OperationReply> reply = AwaitOp(op);
    HarvestReply(op);
    const Status s = reply.ok() ? reply->status : reply.status();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

// ---- Transaction API ------------------------------------------------------------

StatusOr<TxnId> TransactionComponent::Begin() {
  if (crashed_.load()) return Status::Crashed("tc is down");
  TxnId id;
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    id = next_txn_++;
    txns_[id] = TxnState{id, {}, {}, {}};
  }
  TcLogRecord rec;
  rec.type = TcLogRecordType::kBegin;
  rec.txn = id;
  std::string payload;
  rec.EncodeTo(&payload);
  log_.Append(std::move(payload));
  stats_.txns_begun.fetch_add(1);
  return id;
}

// The blocking API is the async surface awaited immediately: one submit,
// one await, identical per-op behavior — and one code path to maintain.

Status TransactionComponent::Read(TxnId txn, TableId table,
                                  const std::string& key,
                                  std::string* value) {
  OpHandle handle = SubmitRead(txn, table, key);
  return Await(&handle, value);
}

Status TransactionComponent::Insert(TxnId txn, TableId table,
                                    const std::string& key,
                                    const std::string& value) {
  OpHandle handle = SubmitInsert(txn, table, key, value);
  return Await(&handle);
}

Status TransactionComponent::Update(TxnId txn, TableId table,
                                    const std::string& key,
                                    const std::string& value) {
  OpHandle handle = SubmitUpdate(txn, table, key, value);
  return Await(&handle);
}

Status TransactionComponent::Delete(TxnId txn, TableId table,
                                    const std::string& key) {
  OpHandle handle = SubmitDelete(txn, table, key);
  return Await(&handle);
}

Status TransactionComponent::Upsert(TxnId txn, TableId table,
                                    const std::string& key,
                                    const std::string& value) {
  OpHandle handle = SubmitUpsert(txn, table, key, value);
  return Await(&handle);
}

Status TransactionComponent::Scan(
    TxnId txn, TableId table, const std::string& from, const std::string& to,
    uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // Pipelined writes still in flight could race the probe/read windows;
  // drain the transaction's pipeline before scanning. A drained op's
  // failure must not be swallowed here — this is the first await point,
  // so surface it exactly as Commit would.
  Status drain = AwaitAll(txn);
  if (!drain.ok()) return drain;

  if (options_.range_protocol == RangeLockProtocol::kPartition) {
    // §3.1 "Range locks": lock every overlapping partition, then read.
    auto [lo, hi] = options_.partitions.Overlapping(from, to);
    for (uint32_t i = lo; i <= hi; ++i) {
      Status s =
          locks_->Lock(txn, RangeLockName(table, i), LockMode::kShared);
      if (!s.ok()) {
        if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
        return s;
      }
    }
    if (options_.scan_streaming) {
      // Partition locks already cover the whole range: the read is one
      // streamed request with chunked replies instead of one blocking
      // ScanRange round trip per window.
      return StreamScan(table, from, to, limit, ReadFlavor::kOwn,
                        [&](const std::string& k, const std::string& v) {
                          out->emplace_back(k, v);
                          return limit == 0 || out->size() < limit;
                        });
    }
    std::string resume = from;
    bool skip_equal = false;
    for (;;) {
      OperationRequest req;
      req.op = OpType::kScanRange;
      req.table_id = table;
      req.key = resume;
      req.end_key = to;
      req.limit = limit == 0 ? 0 : limit - static_cast<uint32_t>(out->size());
      StatusOr<OperationReply> reply = ExecuteOp(req, txn);
      if (!reply.ok()) return reply.status();
      if (!reply->status.ok()) return reply->status;
      size_t start = 0;
      if (skip_equal && !reply->keys.empty() && reply->keys[0] == resume) {
        start = 1;
      }
      for (size_t i = start; i < reply->keys.size(); ++i) {
        out->emplace_back(reply->keys[i], reply->values[i]);
        if (limit != 0 && out->size() >= limit) return Status::OK();
      }
      if (reply->keys.size() < options_.fetch_ahead_batch &&
          reply->keys.empty()) {
        return Status::OK();
      }
      if (reply->keys.empty()) return Status::OK();
      resume = reply->keys.back();
      skip_equal = true;
      if (reply->keys.size() <= start) return Status::OK();
    }
  }

  if (options_.scan_streaming) {
    // §3.1 "Fetch ahead protocol" folded into one probe-mode stream:
    // speculative probes arrive as credited chunks and the validated
    // window read is a cursor rewind — zero blocking ScanRange messages.
    return FetchAheadStreamScan(txn, table, from, to, limit, out);
  }

  // Blocking baseline: one probe round trip + one validated ScanRange
  // round trip per window, submit and await back to back.
  std::string resume = from;
  bool skip_equal = false;
  Status probe_error = Status::Crashed("tc is down");
  auto submit_probe = [&](const std::string& key) {
    OperationRequest probe;
    probe.op = OpType::kProbeNext;
    probe.table_id = table;
    probe.key = key;
    probe.limit = options_.fetch_ahead_batch + 1;
    stats_.probes.fetch_add(1);
    return SubmitOp(probe, txn, TcLogRecordType::kOperation, kInvalidLsn,
                    /*pipelined=*/false, &probe_error);
  };
  std::shared_ptr<OutstandingOp> probe_op = submit_probe(resume);
  for (int round = 0; round < 100000; ++round) {
    // 1. Await the (possibly prefetched) probe for this window.
    if (!probe_op) return probe_error;
    if (probe_op->completed) stats_.scan_prefetch_hits.fetch_add(1);
    StatusOr<OperationReply> probed = AwaitOp(probe_op);
    probe_op = nullptr;
    if (!probed.ok()) return probed.status();
    if (!probed->status.ok()) return probed->status;

    std::vector<std::string> window;
    std::string fencepost;
    for (const auto& k : probed->keys) {
      if (skip_equal && k == resume) continue;
      if (!to.empty() && k >= to) break;
      if (window.size() < options_.fetch_ahead_batch) {
        window.push_back(k);
      } else {
        fencepost = k;
        break;
      }
    }

    // 2. Lock the window keys (+ fencepost or EOF for phantom safety).
    for (const auto& k : window) {
      Status s = locks_->Lock(txn, RecordLockName(table, k),
                              LockMode::kShared);
      if (!s.ok()) {
        if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
        return s;
      }
    }
    std::string end_bound;
    if (!fencepost.empty()) {
      Status s = locks_->Lock(txn, RecordLockName(table, fencepost),
                              LockMode::kShared);
      if (!s.ok()) {
        if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
        return s;
      }
      end_bound = fencepost;
    } else {
      // Window reaches the end of the range: take the EOF sentinel (or
      // rely on `to` as the bound).
      Status s = locks_->Lock(txn, TableEofLockName(table),
                              LockMode::kShared);
      if (!s.ok()) {
        if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
        return s;
      }
      end_bound = to;
    }

    // 3. Read the locked window, validating against the locked set.
    std::set<std::string> locked(window.begin(), window.end());
    for (int validation = 0; validation < 8; ++validation) {
      OperationRequest req;
      req.op = OpType::kScanRange;
      req.table_id = table;
      req.key = resume;
      req.end_key = end_bound;
      req.limit = options_.fetch_ahead_batch + 8;
      StatusOr<OperationReply> reply = ExecuteOp(req, txn);
      if (!reply.ok()) return reply.status();
      if (!reply->status.ok()) return reply->status;

      // "Should the records be different from the ones that were locked,
      // this subsequent request becomes again a speculative request."
      bool all_locked = true;
      for (size_t i = 0; i < reply->keys.size(); ++i) {
        const std::string& k = reply->keys[i];
        if (skip_equal && k == resume) continue;
        if (locked.count(k) == 0) {
          Status s = locks_->Lock(txn, RecordLockName(table, k),
                                  LockMode::kShared);
          if (!s.ok()) {
            if (s.IsDeadlock()) stats_.deadlocks.fetch_add(1);
            return s;
          }
          locked.insert(k);
          all_locked = false;
        }
      }
      if (!all_locked) continue;  // re-read under the extended lock set

      for (size_t i = 0; i < reply->keys.size(); ++i) {
        const std::string& k = reply->keys[i];
        if (skip_equal && k == resume) continue;
        out->emplace_back(k, reply->values[i]);
        if (limit != 0 && out->size() >= limit) return Status::OK();
      }
      break;
    }

    if (fencepost.empty()) return Status::OK();  // covered to the end
    resume = fencepost;
    skip_equal = false;  // the fencepost record itself is not yet emitted
    // Non-pipelined mode submits the next probe only now (the blocking
    // baseline: submit + await back to back).
    if (!probe_op) probe_op = submit_probe(resume);
  }
  return Status::Busy("scan validation kept racing");
}

Status TransactionComponent::CreateTable(TableId table,
                                         const std::string& routing_key) {
  OperationRequest req;
  req.op = OpType::kCreateTable;
  req.table_id = table;
  req.key = routing_key;
  StatusOr<OperationReply> reply = ExecuteOp(req, kInvalidTxnId);
  if (!reply.ok()) return reply.status();
  if (reply->status.ok()) {
    // DDL is auto-committed: force its log record so the table's
    // existence survives an immediate TC crash.
    log_.ForceTo(reply->lsn - 1);
  }
  return reply->status;
}

Status TransactionComponent::ReadShared(TableId table, const std::string& key,
                                        ReadFlavor flavor,
                                        std::string* value) {
  OperationRequest req;
  req.op = OpType::kRead;
  req.table_id = table;
  req.key = key;
  req.read_flavor = flavor;
  StatusOr<OperationReply> reply = ExecuteOp(req, kInvalidTxnId);
  if (!reply.ok()) return reply.status();
  if (reply->status.ok()) *value = reply->value;
  return reply->status;
}

Status TransactionComponent::ScanShared(
    TableId table, const std::string& from, const std::string& to,
    uint32_t limit, ReadFlavor flavor,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (options_.scan_streaming) {
    // One kScanStream request per range; the DC streams chunked replies
    // while the TC consumes — no per-window blocking round trips.
    return StreamScan(table, from, to, limit, flavor,
                      [&](const std::string& k, const std::string& v) {
                        out->emplace_back(k, v);
                        return limit == 0 || out->size() < limit;
                      });
  }
  std::string resume = from;
  bool skip_equal = false;
  for (;;) {
    OperationRequest req;
    req.op = OpType::kScanRange;
    req.table_id = table;
    req.key = resume;
    req.end_key = to;
    req.read_flavor = flavor;
    req.limit = 128;
    StatusOr<OperationReply> reply = ExecuteOp(req, kInvalidTxnId);
    if (!reply.ok()) return reply.status();
    if (!reply->status.ok()) return reply->status;
    size_t added = 0;
    for (size_t i = 0; i < reply->keys.size(); ++i) {
      if (skip_equal && reply->keys[i] == resume) continue;
      out->emplace_back(reply->keys[i], reply->values[i]);
      ++added;
      if (limit != 0 && out->size() >= limit) return Status::OK();
    }
    if (reply->keys.empty() || added == 0) return Status::OK();
    resume = reply->keys.back();
    skip_equal = true;
  }
}

// ---- Commit / Abort -------------------------------------------------------------

Status TransactionComponent::Commit(TxnId txn) {
  // Drain the pipeline first: every submitted op must have reported back
  // (and fed the undo chain) before the commit record is cut. A pipelined
  // op that failed surfaces here and blocks the commit — the transaction
  // stays open for the caller to abort.
  Status drain = AwaitAll(txn);
  if (!drain.ok()) return drain;

  TxnState state;
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) return Status::NotFound("unknown transaction");
    state = it->second;
  }

  TcLogRecord rec;
  rec.type = TcLogRecordType::kCommit;
  rec.txn = txn;
  std::string payload;
  rec.EncodeTo(&payload);
  const uint64_t commit_index = log_.Append(std::move(payload));

  // Log force for durability (§4.1.1(4)); read-only txns skip the force.
  if (!state.undo_chain.empty()) {
    if (options_.group_commit) {
      // Wake the forcer now instead of waiting out its interval tick —
      // sub-millisecond group-commit windows stay sub-millisecond.
      stats_.group_commit_wakes.fetch_add(1);
      group_commit_daemon_.Poke();
      if (!log_.WaitStableThrough(commit_index, options_.commit_timeout_ms)) {
        return Status::TimedOut("group commit force did not complete");
      }
    } else {
      log_.ForceTo(commit_index);
    }
  }

  // §6.2.2: after the commit point, eliminate the before versions.
  if (options_.versioning && !state.written_keys.empty()) {
    Status s = FinishVersionedCommit(txn, state.written_keys);
    if (!s.ok()) return s;
  }

  locks_->ReleaseAll(txn);
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    txns_.erase(txn);
  }
  stats_.txns_committed.fetch_add(1);
  return Status::OK();
}

Status TransactionComponent::FinishVersionedCommit(
    TxnId txn,
    const std::vector<std::pair<TableId, std::string>>& written_keys) {
  if (crashed_.load()) return Status::Crashed("tc is down");
  // §6.2.2, batched: a K-key commit ships its kPromoteVersion ops as
  // ordered kOperationBatch messages — ceil(K / promote_batch_ops)
  // round trips per DC instead of one blocking trip per key. Each
  // promote still reserves its own LSN and seals a normal operation
  // record, so DC-crash redo resends them and repeated TC restarts stay
  // idempotent.
  std::set<std::pair<TableId, std::string>> seen;
  std::map<DcId, std::vector<std::pair<TableId, std::string>>> per_dc;
  for (const auto& [table, key] : written_keys) {
    if (!seen.insert({table, key}).second) continue;
    per_dc[Route(table, key)].emplace_back(table, key);
  }
  const size_t batch_cap = std::max<uint32_t>(1, options_.promote_batch_ops);
  for (auto& [dc, keys] : per_dc) {
    for (size_t base = 0; base < keys.size(); base += batch_cap) {
      const size_t count = std::min(batch_cap, keys.size() - base);
      std::vector<OperationRequest> chunk;
      std::vector<std::shared_ptr<OutstandingOp>> ops;
      chunk.reserve(count);
      ops.reserve(count);
      {
        std::lock_guard<std::mutex> guard(out_mu_);
        const auto now = std::chrono::steady_clock::now();
        for (size_t k = base; k < base + count; ++k) {
          OperationRequest req;
          req.op = OpType::kPromoteVersion;
          req.table_id = keys[k].first;
          req.key = keys[k].second;
          req.tc_id = options_.tc_id;
          req.lsn = log_.Reserve() + 1;
          auto op = std::make_shared<OutstandingOp>();
          op->request = req;
          op->txn = txn;
          op->dc = dc;
          op->last_send = now;
          outstanding_[req.lsn] = op;
          chunk.push_back(std::move(req));
          ops.push_back(std::move(op));
        }
      }
      stats_.ops_sent.fetch_add(chunk.size());
      stats_.promote_ops.fetch_add(chunk.size());
      stats_.promote_batches.fetch_add(1);
      ClientFor(dc)->SendOperationBatch(chunk);
      // Await the whole batch; a lost message is recovered per op by the
      // resend daemon (promotes are idempotent at the DC).
      for (const auto& op : ops) {
        StatusOr<OperationReply> reply = AwaitOp(op);
        if (!reply.ok()) return reply.status();
        if (!reply->status.ok()) return reply->status;
      }
    }
  }
  TcLogRecord end;
  end.type = TcLogRecordType::kTxnEnd;
  end.txn = txn;
  std::string payload;
  end.EncodeTo(&payload);
  log_.Append(std::move(payload));
  return Status::OK();
}

Status TransactionComponent::UndoTxnLocked(TxnState* state) {
  // Submit inverse logical operations in reverse chronological order
  // (§4.1.1(2b)), logging each as a CLR. Individually-awaited pipelined
  // ops may have been harvested out of submission order; LSN order is the
  // chronology that matters.
  std::stable_sort(state->undo_chain.begin(), state->undo_chain.end(),
                   [](const UndoEntry& a, const UndoEntry& b) {
                     return a.lsn < b.lsn;
                   });
  for (auto it = state->undo_chain.rbegin(); it != state->undo_chain.rend();
       ++it) {
    OperationRequest inverse;
    inverse.table_id = it->table;
    inverse.key = it->key;
    if (options_.versioning) {
      inverse.op = OpType::kRollbackVersion;
    } else {
      switch (it->op) {
        case OpType::kInsert:
          inverse.op = OpType::kDelete;
          break;
        case OpType::kUpdate:
          inverse.op = OpType::kUpdate;
          inverse.value = it->before;
          break;
        case OpType::kDelete:
          inverse.op = OpType::kInsert;
          inverse.value = it->before;
          break;
        case OpType::kUpsert:
          if (it->has_before) {
            inverse.op = OpType::kUpdate;
            inverse.value = it->before;
          } else {
            inverse.op = OpType::kDelete;
          }
          break;
        default:
          continue;
      }
    }
    StatusOr<OperationReply> reply =
        ExecuteOp(inverse, state->id, TcLogRecordType::kClr, it->lsn);
    if (!reply.ok()) return reply.status();
    // NotFound during versioned rollback is fine (idempotent).
  }
  return Status::OK();
}

Status TransactionComponent::Abort(TxnId txn) {
  // Drain the pipeline so every applied write is in the undo chain; the
  // ops' logical statuses don't matter (we are rolling back anyway).
  AwaitAll(txn);

  TxnState state;
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) return Status::NotFound("unknown transaction");
    state = it->second;
  }
  Status undo = UndoTxnLocked(&state);
  if (!undo.ok()) return undo;

  TcLogRecord rec;
  rec.type = TcLogRecordType::kAbort;
  rec.txn = txn;
  std::string payload;
  rec.EncodeTo(&payload);
  log_.Append(std::move(payload));

  locks_->ReleaseAll(txn);
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    txns_.erase(txn);
  }
  stats_.txns_aborted.fetch_add(1);
  return Status::OK();
}

// ---- Checkpoint -------------------------------------------------------------------

Lsn TransactionComponent::rssp() const {
  std::lock_guard<std::mutex> guard(rssp_mu_);
  return rssp_;
}

Status TransactionComponent::TakeCheckpoint() {
  if (crashed_.load()) return Status::Crashed("tc is down");
  // Candidate RSSP: every op at or below the LWM has completed; ask the
  // DCs to make pages with ops below it stable.
  log_.Force();
  const Lsn candidate = log_.sealed_prefix_end();
  PushControls();
  // A replicating DC may GRANT less than asked: it clamps below the
  // oldest op its slowest standby has not acked, so our log keeps what a
  // failover would need to resend. The RSSP advances only to the
  // smallest grant across DCs.
  Lsn granted_min = candidate;
  for (const auto& binding : dcs_) {
    ControlRequest req;
    req.type = ControlType::kCheckpoint;
    req.tc_id = options_.tc_id;
    req.lsn = candidate;
    StatusOr<ControlReply> reply = ControlAwait(binding.id, req, 60000);
    if (!reply.ok()) return reply.status();
    if (!reply->status.ok()) return reply->status;
    if (reply->rlsn != 0 && static_cast<Lsn>(reply->rlsn) < granted_min) {
      granted_min = static_cast<Lsn>(reply->rlsn);
    }
  }
  {
    std::lock_guard<std::mutex> guard(rssp_mu_);
    if (granted_min > rssp_) rssp_ = granted_min;
  }
  TcLogRecord rec;
  rec.type = TcLogRecordType::kCheckpoint;
  rec.rssp = granted_min;
  std::string payload;
  rec.EncodeTo(&payload);
  const uint64_t index = log_.Append(std::move(payload));
  log_.ForceTo(index);

  // Contract termination (§4.2): the log below min(RSSP, oldest active
  // txn begin) is no longer needed for redo or undo.
  Lsn oldest_active = granted_min;
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    for (const auto& [id, state] : txns_) {
      for (const auto& entry : state.undo_chain) {
        oldest_active = std::min(oldest_active, entry.lsn);
      }
    }
  }
  const Lsn keep_from = std::min(granted_min, oldest_active);
  if (keep_from > 1) log_.TruncatePrefix(keep_from - 1);
  {
    // Acked-rlsn records below the truncation point can never be resent
    // again; drop them with the log they describe.
    std::lock_guard<std::mutex> guard(out_mu_);
    for (auto& [dc, acked] : acked_rlsns_) {
      acked.erase(acked.begin(), acked.lower_bound(keep_from));
    }
  }
  stats_.checkpoints.fetch_add(1);
  return Status::OK();
}

// ---- Failures ---------------------------------------------------------------------

void TransactionComponent::Crash() {
  crashed_.store(true);
  log_.Crash();
  // Wake every waiter with a crash indication; volatile state is gone.
  std::map<Lsn, std::shared_ptr<OutstandingOp>> orphans;
  {
    std::lock_guard<std::mutex> guard(out_mu_);
    orphans.swap(outstanding_);
    inflight_keys_.clear();
    window_counts_.clear();
    // Acked-rlsn records are volatile: a restarted TC full-resends.
    acked_rlsns_.clear();
    // The DC-recovering gates are volatile state too: Restart() performs
    // the full redo-resend itself, and a surviving gate would hold every
    // post-restart streamed scan forever.
    dc_recovering_.clear();
    window_cv_.notify_all();
    dc_ready_cv_.notify_all();
  }
  for (auto& [lsn, op] : orphans) {
    op->completed = true;
    op->reply.status = Status::Crashed("tc crashed");
    op->done.Notify();
  }
  {
    std::lock_guard<std::mutex> guard(control_mu_);
    for (auto& [seq, pending] : pending_controls_) {
      pending->reply.status = Status::Crashed("tc crashed");
      pending->done.Notify();
    }
    pending_controls_.clear();
  }
  {
    std::lock_guard<std::mutex> guard(stream_mu_);
    for (auto& [id, stream] : streams_) {
      std::lock_guard<std::mutex> stream_guard(stream->mu);
      stream->failed = true;
      stream->cv.notify_all();
    }
    streams_.clear();
  }
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    txns_.clear();
  }
  locks_ = std::make_unique<LockManager>(options_.locks);
}

Status TransactionComponent::Analyze(AnalysisResult* out) {
  out->rssp = 1;
  const uint64_t begin = log_.truncated_prefix();
  const uint64_t end = log_.stable_end();
  if (begin > 0) out->rssp = begin + 1;
  std::map<TxnId, bool> versioned_txn;
  for (uint64_t i = begin; i < end; ++i) {
    std::string payload;
    if (!log_.ReadAt(i, &payload).ok()) continue;
    Slice in(payload);
    TcLogRecord rec;
    if (!TcLogRecord::DecodeFrom(&in, &rec)) {
      return Status::Corruption("bad tc log record");
    }
    const Lsn lsn = i + 1;
    switch (rec.type) {
      case TcLogRecordType::kCheckpoint:
        if (rec.rssp > out->rssp) out->rssp = rec.rssp;
        break;
      case TcLogRecordType::kBegin:
        out->losers[rec.txn] = TxnState{rec.txn, {}, {}, {}};
        break;
      case TcLogRecordType::kOperation: {
        auto it = out->losers.find(rec.txn);
        if (it != out->losers.end() && rec.applied && IsWriteOp(rec.op) &&
            rec.op != OpType::kPromoteVersion &&
            rec.op != OpType::kRollbackVersion) {
          it->second.undo_chain.push_back(UndoEntry{
              lsn, rec.op, rec.table_id, rec.key, rec.before,
              rec.has_before});
          it->second.written_keys.emplace_back(rec.table_id, rec.key);
          if (rec.versioned) versioned_txn[rec.txn] = true;
        }
        break;
      }
      case TcLogRecordType::kClr:
        out->undone[rec.txn].push_back(rec.undo_target);
        break;
      case TcLogRecordType::kCommit: {
        auto it = out->losers.find(rec.txn);
        if (it != out->losers.end()) {
          if (versioned_txn.count(rec.txn) > 0) {
            out->committed_pending_promote[rec.txn] =
                it->second.written_keys;
          }
          out->losers.erase(it);
        }
        break;
      }
      case TcLogRecordType::kAbort:
        out->losers.erase(rec.txn);
        break;
      case TcLogRecordType::kTxnEnd:
        out->committed_pending_promote.erase(rec.txn);
        break;
    }
  }
  return Status::OK();
}

Status TransactionComponent::RedoResend(Lsn from_lsn, DcId only_dc,
                                        bool all_dcs,
                                        uint64_t dc_redo_end) {
  // Snapshot the acked-rlsn records for the target DC: ops the revived
  // DC's redo log already holds (recorded rlsn <= its surviving end) are
  // skipped below — the suffix-only resend.
  std::map<Lsn, uint64_t> acked;
  if (dc_redo_end != 0 && !all_dcs) {
    std::lock_guard<std::mutex> guard(out_mu_);
    auto it = acked_rlsns_.find(only_dc);
    if (it != acked_rlsns_.end()) acked = it->second;
  }
  const uint64_t begin =
      std::max<uint64_t>(from_lsn == 0 ? 0 : from_lsn - 1,
                         log_.truncated_prefix());
  // Resend through the sealed prefix, not just the stable one: a healthy
  // TC resending after a DC crash or an escalation (§6.1.2) still owns
  // its sealed-but-unforced tail (e.g. post-commit version promotes).
  // After a TC crash, Crash() already dropped the volatile tail, so
  // sealed == stable and this is exactly the stable log.
  const uint64_t end = log_.sealed_prefix_end();

  // Pass 1: index the redo operations per DC, in LSN order (indices
  // only — payloads are re-read per batch so recovery never materializes
  // the whole redo stream). A key maps to exactly one DC, so per-DC
  // order is all that conflicting operations need ("redo repeats history
  // by delivering operations in the correct order to the DC", §3.2).
  std::map<DcId, std::vector<uint64_t>> per_dc;
  for (uint64_t i = begin; i < end; ++i) {
    std::string payload;
    if (!log_.ReadAt(i, &payload).ok()) continue;
    Slice in(payload);
    TcLogRecord rec;
    if (!TcLogRecord::DecodeFrom(&in, &rec)) continue;
    if (rec.type != TcLogRecordType::kOperation &&
        rec.type != TcLogRecordType::kClr) {
      continue;
    }
    if (!IsWriteOp(rec.op)) continue;  // reads have no redo effect
    // Logically-failed operations (NotFound / AlreadyExists) had no
    // effect; re-executing them against recovered state could produce a
    // DIFFERENT outcome. Version ops are always resent (idempotent).
    if (!rec.applied && rec.op != OpType::kPromoteVersion &&
        rec.op != OpType::kRollbackVersion) {
      continue;
    }
    const DcId dc = Route(rec.table_id, rec.key);
    if (!all_dcs && dc != only_dc) continue;
    if (dc_redo_end != 0 && !all_dcs) {
      auto ack_it = acked.find(static_cast<Lsn>(i + 1));
      if (ack_it != acked.end() && ack_it->second <= dc_redo_end) {
        stats_.suffix_skipped_ops.fetch_add(1);
        continue;
      }
    }
    per_dc[dc].push_back(i);
  }

  // Pass 2: ship each DC's redo stream as ordered kOperationBatch
  // messages — one round trip per batch instead of one per op. A batch
  // executes in request order at the DC (PerformBatch) and batches to
  // one DC are awaited before the next is sent, preserving LSN order.
  const size_t batch_cap = std::max<uint32_t>(1, options_.recovery_batch_ops);
  for (auto& [dc, indices] : per_dc) {
    for (size_t base = 0; base < indices.size(); base += batch_cap) {
      const size_t count = std::min(batch_cap, indices.size() - base);
      std::vector<OperationRequest> chunk;
      chunk.reserve(count);
      for (size_t k = base; k < base + count; ++k) {
        const uint64_t i = indices[k];
        std::string payload;
        if (!log_.ReadAt(i, &payload).ok()) continue;
        Slice in(payload);
        TcLogRecord rec;
        if (!TcLogRecord::DecodeFrom(&in, &rec)) continue;
        OperationRequest req;
        req.tc_id = options_.tc_id;
        req.lsn = i + 1;
        req.op = rec.op;
        req.table_id = rec.table_id;
        req.key = rec.key;
        req.value = rec.value;
        req.versioned = rec.versioned;
        req.recovery_resend = true;
        static const bool trace_redo = getenv("UNTX_TRACE") != nullptr;
        if (trace_redo) {
          fprintf(stderr, "[tc%u] REDO lsn=%llu op=%d t=%u key=%s dc=%u\n",
                  options_.tc_id, (unsigned long long)req.lsn,
                  (int)req.op, req.table_id, req.key.c_str(), dc);
        }
        chunk.push_back(std::move(req));
      }
      if (chunk.empty()) continue;
      std::vector<std::shared_ptr<OutstandingOp>> ops;
      ops.reserve(chunk.size());
      {
        std::lock_guard<std::mutex> guard(out_mu_);
        const auto now = std::chrono::steady_clock::now();
        for (const auto& req : chunk) {
          auto op = std::make_shared<OutstandingOp>();
          op->request = req;
          op->dc = dc;
          op->needs_seal = false;
          // Stamp the send time: ResendPass must not judge the batch
          // stale on its next tick and flood per-op resends while the
          // batch message is legitimately in flight.
          op->last_send = now;
          outstanding_[req.lsn] = op;
          ops.push_back(std::move(op));
        }
      }
      // Send directly: the per-DC "recovering" gate only holds back the
      // background resend daemon, not the recovery driver itself.
      stats_.recovery_resent_ops.fetch_add(chunk.size());
      stats_.recovery_resend_msgs.fetch_add(1);
      ClientFor(dc)->SendOperationBatch(chunk);

      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.op_timeout_ms);
      const auto resend_age =
          std::chrono::milliseconds(options_.resend_interval_ms);
      auto last_batch_send = std::chrono::steady_clock::now();
      for (size_t i = 0; i < ops.size(); ++i) {
        while (!ops[i]->done.WaitFor(std::chrono::milliseconds(
            std::max<uint32_t>(options_.resend_interval_ms, 10)))) {
          const auto now = std::chrono::steady_clock::now();
          if (now > deadline) {
            std::lock_guard<std::mutex> guard(out_mu_);
            for (size_t j = i; j < ops.size(); ++j) {
              outstanding_.erase(ops[j]->request.lsn);
            }
            return Status::TimedOut("recovery resend not acknowledged");
          }
          // One resend per resend_interval for the whole batch (the
          // ResendPass contract) — per-op waits must not compound into
          // several suffix resends inside one interval while the batch
          // is still legitimately in flight.
          if (now - last_batch_send < resend_age) continue;
          // A lost batch (or reply) loses every op it carried: resend the
          // still-unacknowledged suffix as one message. Ops before the
          // suffix are complete, so order is preserved; re-executions are
          // absorbed by the DC's idempotence.
          std::vector<OperationRequest> again;
          {
            std::lock_guard<std::mutex> guard(out_mu_);
            for (size_t j = i; j < ops.size(); ++j) {
              if (ops[j]->completed) continue;
              ops[j]->last_send = now;  // keep ResendPass off this batch
              again.push_back(ops[j]->request);
            }
          }
          if (again.empty()) continue;  // completed while assembling
          stats_.resends.fetch_add(1);
          stats_.recovery_resend_msgs.fetch_add(1);
          last_batch_send = now;
          ClientFor(dc)->SendOperationBatch(again);
        }
        if (ops[i]->reply.status.IsCrashed()) {
          // The DC died mid-batch: deregister the unacknowledged
          // remainder so the resend daemon doesn't hammer the down DC
          // with orphaned recovery ops nobody awaits. (The failed
          // recovery will be re-driven from the log.)
          std::lock_guard<std::mutex> guard(out_mu_);
          for (size_t j = i + 1; j < ops.size(); ++j) {
            outstanding_.erase(ops[j]->request.lsn);
          }
          return Status::Crashed("dc failed during recovery resend");
        }
      }
    }
  }
  return Status::OK();
}

Status TransactionComponent::Restart(std::vector<TcId>* escalate_out) {
  // The stable log is all that survived (§5.3.2 "TC Failure").
  crashed_.store(false);
  stats_.recoveries.fetch_add(1);
  {
    // Any per-DC recovering gate predates the crash: this restart
    // redo-resends to every DC itself, and a stale gate would hold
    // post-restart streamed scans forever.
    std::lock_guard<std::mutex> guard(out_mu_);
    dc_recovering_.clear();
    dc_ready_cv_.notify_all();
  }

  AnalysisResult analysis;
  Status s = Analyze(&analysis);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> guard(rssp_mu_);
    rssp_ = analysis.rssp;
  }

  // 1. Reset: each DC discards state reflecting operations beyond the
  //    stable log end (they are lost forever). Push fresh EOSL/LWM first
  //    so the DC can settle (force) every DC-log batch that is still
  //    eligible before deciding what to discard.
  PushControls();
  const Lsn stable_end = log_.stable_end();
  std::vector<TcId> escalate;
  for (const auto& binding : dcs_) {
    ControlRequest req;
    req.type = ControlType::kRestartBegin;
    req.tc_id = options_.tc_id;
    req.lsn = stable_end;
    StatusOr<ControlReply> reply = ControlAwait(binding.id, req, 60000);
    if (!reply.ok()) return reply.status();
    if (!reply->status.ok()) return reply->status;
    for (TcId tc : reply->escalate_tcs) escalate.push_back(tc);
  }
  PushControls();

  // 2. Redo: resend logged operations from the RSSP in LSN order.
  s = RedoResend(analysis.rssp, /*only_dc=*/0, /*all_dcs=*/true);
  if (!s.ok()) return s;

  // 3. Undo losers with inverse logical operations (CLR-logged).
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    TxnId max_seen = next_txn_;
    for (const auto& [id, state] : analysis.losers) {
      max_seen = std::max(max_seen, id + 1);
    }
    next_txn_ = max_seen;
  }
  for (auto& [id, state] : analysis.losers) {
    // Skip operations already compensated by a stable CLR.
    const auto undone_it = analysis.undone.find(id);
    if (undone_it != analysis.undone.end()) {
      std::set<Lsn> undone(undone_it->second.begin(),
                           undone_it->second.end());
      auto& chain = state.undo_chain;
      chain.erase(std::remove_if(chain.begin(), chain.end(),
                                 [&undone](const UndoEntry& e) {
                                   return undone.count(e.lsn) > 0;
                                 }),
                  chain.end());
    }
    s = UndoTxnLocked(&state);
    if (!s.ok()) return s;
    TcLogRecord rec;
    rec.type = TcLogRecordType::kAbort;
    rec.txn = id;
    std::string payload;
    rec.EncodeTo(&payload);
    log_.Append(std::move(payload));
  }

  // 4. Finish version promotion for committed-but-unpromoted txns.
  for (const auto& [id, keys] : analysis.committed_pending_promote) {
    s = FinishVersionedCommit(id, keys);
    if (!s.ok()) return s;
  }

  // 5. Resume normal processing.
  for (const auto& binding : dcs_) {
    ControlRequest req;
    req.type = ControlType::kRestartEnd;
    req.tc_id = options_.tc_id;
    ControlAwait(binding.id, req, 10000);
  }
  log_.Force();
  PushControls();
  if (escalate_out != nullptr) {
    std::sort(escalate.begin(), escalate.end());
    escalate.erase(std::unique(escalate.begin(), escalate.end()),
                   escalate.end());
    *escalate_out = std::move(escalate);
  }
  return Status::OK();
}

void TransactionComponent::OnDcCrash(DcId dc) {
  std::lock_guard<std::mutex> guard(out_mu_);
  dc_recovering_[dc] = true;
}

Status TransactionComponent::OnDcRestart(DcId dc) {
  {
    std::lock_guard<std::mutex> guard(out_mu_);
    dc_recovering_[dc] = true;
  }
  PushControls();
  // Ask the revived DC whether it recovered (or was promoted) with a
  // redo-log prefix intact: if so, only ops past that prefix — the
  // unacknowledged in-flight suffix — need resending. rlsn 0 (no log,
  // or state not known to reflect it) degrades to the full resend.
  uint64_t dc_redo_end = 0;
  {
    ControlRequest req;
    req.type = ControlType::kQueryReplication;
    req.tc_id = options_.tc_id;
    StatusOr<ControlReply> qr = ControlAwait(dc, req, 10000);
    if (qr.ok() && qr->status.ok() && qr->replication_enabled) {
      dc_redo_end = qr->rlsn;
    }
  }
  Status s = RedoResend(rssp(), dc, /*all_dcs=*/false, dc_redo_end);
  {
    std::lock_guard<std::mutex> guard(out_mu_);
    dc_recovering_[dc] = false;
    dc_ready_cv_.notify_all();
  }
  if (s.ok()) {
    // Redo complete: re-arm the LWM contract at the recovered DC.
    ControlRequest req;
    req.type = ControlType::kRestartEnd;
    req.tc_id = options_.tc_id;
    ControlAwait(dc, req, 10000);
  }
  resend_daemon_.Poke();
  return s;
}

Status TransactionComponent::ResendFromRssp() {
  Status s = RedoResend(rssp(), /*only_dc=*/0, /*all_dcs=*/true);
  if (!s.ok()) return s;
  // Escalated resend complete (§6.1.2): re-arm the LWM contract.
  for (const auto& binding : dcs_) {
    ControlRequest req;
    req.type = ControlType::kRestartEnd;
    req.tc_id = options_.tc_id;
    ControlAwait(binding.id, req, 10000);
  }
  return s;
}

}  // namespace untx
