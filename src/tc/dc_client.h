// DcClient: the TC's asynchronous view of one DC (§4.2.1: "we expect that
// in a cloud environment asynchronous messages might be used ... while
// signals and shared variables might be more suited for a multi-core
// design"). Two implementations:
//   * DirectDcClient (here)    — shared-memory call path, multi-core style;
//   * ChannelDcClient (kernel) — SimChannel pair with server/dispatcher
//     threads, cloud style.
#pragma once

#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "dc/dc_api.h"

namespace untx {

class DcClient {
 public:
  using OpReplyHandler = std::function<void(const OperationReply&)>;
  using ControlReplyHandler = std::function<void(const ControlReply&)>;
  using ScanChunkHandler = std::function<void(const ScanStreamChunk&)>;

  virtual ~DcClient() = default;

  /// Fire-and-forget sends; replies arrive via the registered handlers
  /// (possibly on the calling thread for direct clients).
  virtual void SendOperation(const OperationRequest& req) = 0;
  virtual void SendControl(const ControlRequest& req) = 0;

  /// Opens a streamed scan: ONE request message, chunked replies through
  /// the scan-chunk handler (§3.1 — a scan of W windows stops costing W
  /// blocking round trips). Transports without a wire run the stream
  /// inline on the calling thread.
  virtual void SendScanStream(const ScanStreamRequest& req) = 0;

  /// Raises / rewinds / closes the chunk window of an open credited
  /// stream (flow control: the DC pauses when the window is exhausted,
  /// bounding reply-channel memory). Fire-and-forget; losses are
  /// recovered by the TC's credit resend + stream restart discipline.
  virtual void SendScanCredit(const ScanCreditRequest& req) = 0;

  /// Sends several operations as ONE message where the transport supports
  /// it. Default: degrade to per-op sends.
  virtual void SendOperationBatch(const std::vector<OperationRequest>& reqs) {
    for (const auto& req : reqs) SendOperation(req);
  }

  /// Pipelining surface. QueueOperation enqueues an op for coalesced
  /// delivery; FlushOperations pushes everything queued onto the wire as
  /// one batch. A transport with no per-message cost (direct call path)
  /// dispatches inline and flush is a no-op.
  virtual void QueueOperation(const OperationRequest& req) {
    SendOperation(req);
  }
  virtual void FlushOperations() {}

  void set_op_reply_handler(OpReplyHandler h) { op_handler_ = std::move(h); }
  void set_control_reply_handler(ControlReplyHandler h) {
    control_handler_ = std::move(h);
  }
  void set_scan_chunk_handler(ScanChunkHandler h) {
    scan_chunk_handler_ = std::move(h);
  }

 protected:
  OpReplyHandler op_handler_;
  ControlReplyHandler control_handler_;
  ScanChunkHandler scan_chunk_handler_;
};

/// In-process synchronous binding: the "multi-core" deployment where TC
/// and DC share an address space and the interface is a function call.
class DirectDcClient : public DcClient {
 public:
  explicit DirectDcClient(DcService* dc) : dc_(dc) {}

  /// Swaps the backend (hot-standby failover): subsequent sends hit the
  /// promoted DC. Atomic — resend daemons may be mid-send.
  void set_target(DcService* dc) { dc_.store(dc); }

  void SendOperation(const OperationRequest& req) override {
    OperationReply reply = dc_.load()->Perform(req);
    // A crashed DC produced no reply; the resend daemon will retry.
    if (!reply.status.IsCrashed() && op_handler_) op_handler_(reply);
  }

  void SendOperationBatch(
      const std::vector<OperationRequest>& reqs) override {
    std::vector<OperationReply> replies = dc_.load()->PerformBatch(reqs);
    for (const auto& reply : replies) {
      if (!reply.status.IsCrashed() && op_handler_) op_handler_(reply);
    }
  }

  void SendControl(const ControlRequest& req) override {
    ControlReply reply = dc_.load()->Control(req);
    if (!reply.status.IsCrashed() && control_handler_) {
      control_handler_(reply);
    }
  }

  void SendScanStream(const ScanStreamRequest& req) override {
    dc_.load()->PerformScanStream(req, [this](const ScanStreamChunk& chunk) {
      // A crashed DC produces no chunks; the TC's restart loop retries.
      if (!chunk.status.IsCrashed() && scan_chunk_handler_) {
        scan_chunk_handler_(chunk);
      }
    });
  }

  void SendScanCredit(const ScanCreditRequest& req) override {
    // Inline resume: the paused cursor produces its next chunks on the
    // calling thread, straight into the chunk handler.
    dc_.load()->ScanCredit(req, [this](const ScanStreamChunk& chunk) {
      if (!chunk.status.IsCrashed() && scan_chunk_handler_) {
        scan_chunk_handler_(chunk);
      }
    });
  }

 private:
  std::atomic<DcService*> dc_;
};

}  // namespace untx
