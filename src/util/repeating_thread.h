// RepeatingThread: runs a callback on a fixed interval until stopped.
// The TC uses these for its resend daemon and for pushing EOSL / LWM /
// checkpoint control messages (§4.2.1 says these flow "from time to time").
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace untx {

class RepeatingThread {
 public:
  /// Does not start; call Start().
  RepeatingThread() = default;
  ~RepeatingThread() { Stop(); }

  RepeatingThread(const RepeatingThread&) = delete;
  RepeatingThread& operator=(const RepeatingThread&) = delete;

  /// Interval is microsecond-granular: sub-millisecond cadences (e.g. a
  /// group-commit window of 200µs) must not silently round up to 1ms.
  void Start(std::chrono::microseconds interval, std::function<void()> fn) {
    Stop();
    {
      std::lock_guard<std::mutex> guard(mu_);
      stop_ = false;
    }
    interval_ = interval;
    fn_ = std::move(fn);
    thread_ = std::thread([this] { Loop(); });
  }

  /// Wakes the thread to run the callback now (e.g. force a resend pass).
  void Poke() {
    std::lock_guard<std::mutex> guard(mu_);
    poked_ = true;
    cv_.notify_all();
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> guard(mu_);
      stop_ = true;
      cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
  }

  bool running() const { return thread_.joinable(); }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, interval_, [this] { return stop_ || poked_; });
      if (stop_) break;
      poked_ = false;
      lock.unlock();
      fn_();
      lock.lock();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::chrono::microseconds interval_{10000};
  std::function<void()> fn_;
  bool stop_ = false;
  bool poked_ = false;
};

}  // namespace untx
