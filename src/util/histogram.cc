#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

namespace untx {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  // Bucket b covers [2^(b-1), 2^b); bucket 0 covers {0}.
  if (value == 0) return 0;
  int b = 64 - __builtin_clzll(value);
  return b >= kNumBuckets ? kNumBuckets - 1 : b;
}

uint64_t Histogram::BucketLow(int b) {
  return b == 0 ? 0 : (1ull << (b - 1));
}

uint64_t Histogram::BucketHigh(int b) {
  return b == 0 ? 1 : (b >= 63 ? ~0ull : (1ull << b));
}

void Histogram::Add(uint64_t value) {
  std::lock_guard<std::mutex> guard(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  std::lock_guard<std::mutex> other_guard(other.mu_);
  std::lock_guard<std::mutex> guard(mu_);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  count_ = sum_ = min_ = max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return count_;
}

double Histogram::Average() const {
  std::lock_guard<std::mutex> guard(mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

uint64_t Histogram::Min() const {
  std::lock_guard<std::mutex> guard(mu_);
  return min_;
}

uint64_t Histogram::Max() const {
  std::lock_guard<std::mutex> guard(mu_);
  return max_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (count_ == 0) return 0.0;
  const uint64_t threshold =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (seen + buckets_[b] >= threshold) {
      // Interpolate within the bucket.
      const double frac =
          buckets_[b] == 0
              ? 0.0
              : static_cast<double>(threshold - seen) / buckets_[b];
      const double lo = static_cast<double>(BucketLow(b));
      const double hi = static_cast<double>(BucketHigh(b));
      double v = lo + frac * (hi - lo);
      if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
      if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
      return v;
    }
    seen += buckets_[b];
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu avg=%.1f p50=%.0f p95=%.0f p99=%.0f max=%llu",
           static_cast<unsigned long long>(count()), Average(),
           Percentile(50), Percentile(95), Percentile(99),
           static_cast<unsigned long long>(Max()));
  return std::string(buf);
}

}  // namespace untx
