// Small synchronization helpers: one-shot notification and count-down
// latch, used by tests and by the TC's reply correlation machinery.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace untx {

/// One-shot event. Notify() releases all current and future Wait()ers.
class Notification {
 public:
  void Notify() {
    std::lock_guard<std::mutex> guard(mu_);
    notified_ = true;
    cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return notified_; });
  }

  /// Returns false on timeout.
  bool WaitFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return notified_; });
  }

  bool HasBeenNotified() {
    std::lock_guard<std::mutex> guard(mu_);
    return notified_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool notified_ = false;
};

/// Blocks waiters until the count reaches zero.
class CountDownLatch {
 public:
  explicit CountDownLatch(uint64_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> guard(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t count_;
};

}  // namespace untx
