// Latches: short-duration physical locks used inside the DC (page
// latches) and in shared in-memory structures. Distinct from the TC's
// transactional locks — latches are held only for the duration of one
// atomic operation (§4.1.2 of the paper).
#pragma once

#include <atomic>
#include <mutex>
#include <shared_mutex>

namespace untx {

/// Reader-writer latch. Thin wrapper over std::shared_mutex that counts
/// acquisitions so benches can report latching traffic.
class Latch {
 public:
  Latch() = default;
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void LockShared() {
    mu_.lock_shared();
    shared_acquires_.fetch_add(1, std::memory_order_relaxed);
  }
  void UnlockShared() { mu_.unlock_shared(); }

  void LockExclusive() {
    mu_.lock();
    exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
  }
  void UnlockExclusive() { mu_.unlock(); }

  bool TryLockExclusive() {
    if (mu_.try_lock()) {
      exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  uint64_t shared_acquires() const {
    return shared_acquires_.load(std::memory_order_relaxed);
  }
  uint64_t exclusive_acquires() const {
    return exclusive_acquires_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_mutex mu_;
  std::atomic<uint64_t> shared_acquires_{0};
  std::atomic<uint64_t> exclusive_acquires_{0};
};

/// RAII shared latch guard.
class SharedLatchGuard {
 public:
  explicit SharedLatchGuard(Latch* latch) : latch_(latch) {
    latch_->LockShared();
  }
  ~SharedLatchGuard() { Release(); }
  SharedLatchGuard(const SharedLatchGuard&) = delete;
  SharedLatchGuard& operator=(const SharedLatchGuard&) = delete;

  void Release() {
    if (latch_ != nullptr) {
      latch_->UnlockShared();
      latch_ = nullptr;
    }
  }

 private:
  Latch* latch_;
};

/// RAII exclusive latch guard.
class ExclusiveLatchGuard {
 public:
  explicit ExclusiveLatchGuard(Latch* latch) : latch_(latch) {
    latch_->LockExclusive();
  }
  ~ExclusiveLatchGuard() { Release(); }
  ExclusiveLatchGuard(const ExclusiveLatchGuard&) = delete;
  ExclusiveLatchGuard& operator=(const ExclusiveLatchGuard&) = delete;

  void Release() {
    if (latch_ != nullptr) {
      latch_->UnlockExclusive();
      latch_ = nullptr;
    }
  }

 private:
  Latch* latch_;
};

/// Tiny test-and-set spinlock for very short critical sections.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace untx
