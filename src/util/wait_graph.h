// Wait-for graph for deadlock detection in the TC lock manager (§3.1).
// Nodes are transactions; an edge A -> B means A waits for a lock B holds.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace untx {

/// Thread-safe wait-for graph with cycle detection. The lock manager adds
/// edges when a request blocks and removes them when it unblocks; before
/// sleeping, the requester runs FindCycleFrom to decide whether to abort.
class WaitForGraph {
 public:
  /// Adds edges waiter -> each holder.
  void AddEdges(TxnId waiter, const std::vector<TxnId>& holders);

  /// Removes every outgoing edge of waiter.
  void RemoveWaiter(TxnId waiter);

  /// Removes a transaction entirely (it committed/aborted): drops its
  /// outgoing edges and any incoming edges pointing at it.
  void RemoveTxn(TxnId txn);

  /// If `start` is on a cycle, returns the cycle's members (including
  /// start). Empty vector = no deadlock.
  std::vector<TxnId> FindCycleFrom(TxnId start) const;

  /// Number of outgoing edges currently registered (for tests).
  size_t EdgeCount() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<TxnId, std::unordered_set<TxnId>> out_;
};

}  // namespace untx
