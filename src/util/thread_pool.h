// Fixed-size worker pool. Used by benches and by DC server loops.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace untx {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Drain();

  /// Stops accepting tasks, runs the backlog, joins workers.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace untx
