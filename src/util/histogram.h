// Latency/size histogram with percentile reporting for the bench harness.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace untx {

/// Thread-safe histogram over non-negative integer samples (e.g. micros).
/// Exponential buckets; percentile queries interpolate within a bucket.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const;
  double Average() const;
  uint64_t Min() const;
  uint64_t Max() const;
  /// p in [0, 100].
  double Percentile(double p) const;

  /// One-line summary: count/avg/p50/p95/p99/max.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64;
  static int BucketFor(uint64_t value);
  static uint64_t BucketLow(int b);
  static uint64_t BucketHigh(int b);

  mutable std::mutex mu_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace untx
