#include "util/wait_graph.h"

#include <algorithm>

namespace untx {

void WaitForGraph::AddEdges(TxnId waiter, const std::vector<TxnId>& holders) {
  std::lock_guard<std::mutex> guard(mu_);
  auto& set = out_[waiter];
  for (TxnId h : holders) {
    if (h != waiter) set.insert(h);
  }
}

void WaitForGraph::RemoveWaiter(TxnId waiter) {
  std::lock_guard<std::mutex> guard(mu_);
  out_.erase(waiter);
}

void WaitForGraph::RemoveTxn(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  out_.erase(txn);
  for (auto& [waiter, holders] : out_) {
    holders.erase(txn);
  }
}

std::vector<TxnId> WaitForGraph::FindCycleFrom(TxnId start) const {
  std::lock_guard<std::mutex> guard(mu_);
  // Iterative DFS from start; a path back to start is a deadlock cycle.
  std::vector<TxnId> path;
  std::unordered_set<TxnId> visited;

  struct Frame {
    TxnId node;
    std::vector<TxnId> next;
    size_t idx = 0;
  };
  std::vector<Frame> stack;

  auto neighbors = [this](TxnId n) {
    std::vector<TxnId> result;
    auto it = out_.find(n);
    if (it != out_.end()) {
      result.assign(it->second.begin(), it->second.end());
    }
    return result;
  };

  stack.push_back({start, neighbors(start), 0});
  visited.insert(start);
  path.push_back(start);

  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.idx >= top.next.size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    TxnId next = top.next[top.idx++];
    if (next == start) {
      return path;  // cycle found; path holds its members
    }
    if (visited.insert(next).second) {
      path.push_back(next);
      stack.push_back({next, neighbors(next), 0});
    }
  }
  return {};
}

size_t WaitForGraph::EdgeCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t n = 0;
  for (const auto& [waiter, holders] : out_) n += holders.size();
  return n;
}

}  // namespace untx
