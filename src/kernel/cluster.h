// Cluster: the unified deployment wiring of the unbundled kernel — N
// TransactionComponents sharing M DataComponents (Figure 1 right side,
// Figure 2, §6), every TC↔DC pair bound through a pluggable transport.
//
// A TransportFactory produces one BoundTransport per (TC, DC) pair:
//   * direct   — in-process DirectDcClient, the multi-core deployment;
//   * channel  — a per-pair ChannelTransport (SimChannel pair + server/
//                dispatcher threads) with client-side batch coalescing,
//                the cloud deployment.
// The transport is chosen cluster-wide, overridden per TC, or supplied
// as a custom factory (e.g. channel to remote DCs, direct to a
// co-located one).
//
// The cluster is also the fault-injection surface (§5.3, §6.1.2):
// CrashDc/RecoverDc make every TC redo-resend to the revived DC;
// CrashTc/RestartTc run the multi-TC reset escalation — TCs named in a
// reset reply repopulate shared pages from their own RSSPs.
//
// One-TC deployments are wrapped by UnbundledDb (kernel/unbundled_db.h);
// the §6.3 movie site (cloud/movie_site.h) builds its Figure 2 topology
// on this API.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "dc/data_component.h"
#include "kernel/channel_transport.h"
#include "kernel/replication_link.h"
#include "storage/stable_store.h"
#include "tc/dc_client.h"
#include "tc/transaction_component.h"

namespace untx {

class SocketServer;

enum class TransportKind : uint8_t { kDirect = 0, kChannel = 1, kSocket = 2 };

/// Wire-cost counters of one binding, summed by the Cluster::Total*
/// rollups. Channel and socket bindings fill the same fields, so
/// msgs/txn comparisons across transports are apples to apples; direct
/// bindings contribute nothing (no wire).
struct WireTotals {
  uint64_t request_messages = 0;
  uint64_t op_messages = 0;
  uint64_t ops_carried = 0;
  uint64_t scan_messages = 0;
  uint64_t scan_rows_carried = 0;
  uint64_t scan_credit_messages = 0;
  uint64_t max_queued_scan_bytes = 0;  // merged with max(), not +
  uint64_t promote_messages = 0;
  uint64_t promote_ops_carried = 0;
};

/// One live TC↔DC binding produced by a TransportFactory. Owns whatever
/// machinery sits behind the DcClient — nothing for a direct call path,
/// channels plus server/dispatcher threads for the cloud path, a TCP
/// connection registered with a shared reactor for the socket path.
class BoundTransport {
 public:
  virtual ~BoundTransport() = default;

  /// The client the TC talks through. Valid for the binding's lifetime.
  virtual DcClient* client() = 0;

  /// The channel machinery behind the binding (per-binding message
  /// stats, fault knobs); nullptr for bindings with no wire.
  virtual ChannelTransport* channel() { return nullptr; }

  /// Folds this binding's wire counters into `totals` (no-op for
  /// bindings with no wire).
  virtual void AddWireStats(WireTotals* totals) const { (void)totals; }

  virtual void Start() {}
  virtual void Stop() {}

  /// The DC behind this binding crashed: in-flight requests die with it.
  virtual void OnDcCrash() {}

  /// Hot-standby failover: point this binding at the promoted DC. The
  /// client pointer stays valid — only the backend swaps. Socket
  /// bindings ignore this (the Cluster retargets the shared
  /// SocketServer instead; the wire endpoint does not move).
  virtual void Retarget(DataComponent* target) { (void)target; }
};

/// Produces the binding one TC uses to reach one DC. Consulted once per
/// (TC, DC) pair at cluster open.
class TransportFactory {
 public:
  virtual ~TransportFactory() = default;
  virtual std::unique_ptr<BoundTransport> Bind(TcId tc, DcId dc,
                                               DataComponent* target) = 0;
};

/// In-process DirectDcClient bindings (multi-core style).
std::shared_ptr<TransportFactory> MakeDirectTransportFactory();

/// Per-(TC, DC) ChannelTransport bindings — asynchronous messages with
/// client-side kOperationBatch coalescing (cloud style). `per_dc`
/// entries override the base options for bindings to that DC (e.g. a
/// remote DC coalesces harder than a co-located one).
std::shared_ptr<TransportFactory> MakeChannelTransportFactory(
    ChannelTransportOptions options,
    std::map<DcId, ChannelTransportOptions> per_dc = {});

/// Socket bindings (TransportKind::kSocket): the cluster hosts one
/// in-process SocketServer per DC on a loopback TCP port and every TC
/// binding connects to it — the same bytes, daemons and reconnect
/// machinery the separate-process deployment (untx_tcd / untx_dcd)
/// uses, exercised inside one test or bench process.
struct SocketClusterOptions {
  std::string host = "127.0.0.1";
  /// Shared worker pool of each DC's SocketServer — all TC sessions
  /// multiplex onto it (vs per-binding server threads on channels).
  int server_workers = 2;
};

/// One TC of the topology.
struct TcSpec {
  TcOptions options;
  /// Routes this TC's (table, key)s to DCs; empty = the cluster default.
  Router router;
  /// Per-TC transport override; unset = the cluster-wide choice.
  std::optional<TransportKind> transport;
};

struct ClusterOptions {
  int num_dcs = 1;
  /// One entry per TC; empty = a single TC with default options.
  /// TcOptions::tc_id is the TC's identity at the DCs — multi-TC specs
  /// must assign unique ids (duplicates are rejected, never renumbered).
  std::vector<TcSpec> tcs;
  DataComponentOptions dc;
  StableStoreOptions store;
  /// Cluster-wide transport choice (overridable per TC via TcSpec).
  TransportKind transport = TransportKind::kDirect;
  /// Options for channel bindings (cluster-wide or per-TC).
  ChannelTransportOptions channel;
  /// Per-DC overrides of `channel` — coalescing policy, batch caps and
  /// fault knobs can differ per DC (a far DC warrants a larger window).
  std::map<DcId, ChannelTransportOptions> channel_overrides;
  /// Options for socket bindings (TransportKind::kSocket). Client-side
  /// coalescing reuses `channel`'s coalesce knobs so channel-vs-socket
  /// comparisons measure the wire, not the queue.
  SocketClusterOptions socket;
  /// Custom binding factory; when set it replaces the `transport` choice
  /// for every TC without its own TcSpec::transport override.
  std::shared_ptr<TransportFactory> binding_factory;
  /// Fallback router when a TcSpec has none: table_id % num_dcs.
  Router default_router;
  /// Hot standbys per DC (PR 8). > 0 turns on the DC redo log for every
  /// primary and replica, builds `replicas_per_dc` replica DCs (own
  /// StableStore each) behind each primary, and ships the primary's
  /// redo log to them continuously over ReplicationLinks. FailoverDc
  /// promotes the most-caught-up standby when a primary dies.
  int replicas_per_dc = 0;
  /// Shipping knobs of the in-process links (batch size, poll cadence).
  ReplicationLinkOptions replication;
};

class Cluster {
 public:
  /// Builds and starts a fresh topology (formats the stores).
  static StatusOr<std::unique_ptr<Cluster>> Open(ClusterOptions options);

  ~Cluster();

  int num_tcs() const { return static_cast<int>(tcs_.size()); }
  int num_dcs() const { return static_cast<int>(dcs_.size()); }

  /// nullptr for an out-of-range index.
  TransactionComponent* tc(int t = 0) {
    if (t < 0 || t >= num_tcs()) return nullptr;
    return tcs_[t].get();
  }
  /// nullptr for an out-of-range index.
  DataComponent* dc(int d = 0) {
    if (d < 0 || d >= num_dcs()) return nullptr;
    return dcs_[d].get();
  }
  /// nullptr for an out-of-range index.
  StableStore* store(int d = 0) {
    if (d < 0 || d >= static_cast<int>(stores_.size())) return nullptr;
    return stores_[d].get();
  }
  /// The channel behind TC t's binding to DC d; nullptr for direct
  /// bindings or out-of-range indices. Exposes per-binding message
  /// stats (sent, dropped, duplicated) to benches and tests.
  ChannelTransport* channel(int t, int d) {
    if (t < 0 || t >= num_tcs() || d < 0 || d >= num_dcs()) return nullptr;
    return bindings_[t][d]->channel();
  }
  /// The raw binding (tests downcast to transport-specific types);
  /// nullptr for out-of-range indices.
  BoundTransport* binding(int t, int d) {
    if (t < 0 || t >= num_tcs() || d < 0 || d >= num_dcs()) return nullptr;
    return bindings_[t][d].get();
  }
  /// DC d's loopback socket server; nullptr unless some TC binds via
  /// TransportKind::kSocket.
  SocketServer* socket_server(int d) {
    if (d < 0 || d >= static_cast<int>(socket_servers_.size())) return nullptr;
    return socket_servers_[d].get();
  }

  // -- Replication (PR 8) ------------------------------------------------------
  /// Standbys behind DC d (replicas_per_dc at open; a failover leaves
  /// the crashed ex-primary parked in the promoted standby's old slot).
  int num_replicas(int d) const {
    if (d < 0 || d >= static_cast<int>(replicas_.size())) return 0;
    return static_cast<int>(replicas_[d].size());
  }
  /// Replica r behind DC d; nullptr for out-of-range indices.
  DataComponent* replica(int d, int r) {
    if (d < 0 || d >= static_cast<int>(replicas_.size())) return nullptr;
    if (r < 0 || r >= static_cast<int>(replicas_[d].size())) return nullptr;
    return replicas_[d][r].get();
  }
  /// How far DC d's slowest live standby trails its redo end (0 when
  /// caught up or unreplicated).
  uint64_t ReplicaLag(int d) {
    DataComponent* p = dc(d);
    if (p == nullptr || p->redo_log() == nullptr) return 0;
    return p->redo_log()->MaxReplicaLag();
  }

  /// All wire counters folded over every binding (channel AND socket;
  /// direct bindings contribute nothing). The Total* accessors below
  /// are views of this.
  WireTotals TotalWireStats() const;

  /// Request messages summed over every wired binding — the wire cost
  /// of the whole topology (0 on all-direct clusters).
  uint64_t TotalRequestMessages() const;
  /// Operation-carrying request messages (excludes control traffic).
  uint64_t TotalOpMessages() const;
  /// Operations those messages carried; batching makes ops > messages.
  uint64_t TotalOpsCarried() const;
  /// Scan-stream request messages (one per stream attempt, vs one per
  /// window on the blocking protocol) and the rows chunk replies carried.
  uint64_t TotalScanMessages() const;
  uint64_t TotalScanRowsCarried() const;
  /// Scan flow control: kScanCredit messages sent, and the largest
  /// reply-channel scan residency any binding saw (the memory the
  /// credit window bounds).
  uint64_t TotalScanCreditMessages() const;
  uint64_t MaxQueuedScanBytes() const;
  /// Batched commit-time version promotion: messages carrying
  /// kPromoteVersion ops, and the promote ops carried.
  uint64_t TotalPromoteMessages() const;
  uint64_t TotalPromoteOpsCarried() const;

  // -- Fault injection (§5.3, §6.1.2) -----------------------------------------
  /// Kills DC d: its cache, reply caches and volatile DC-log tail
  /// vanish; in-flight requests to it (from every TC) are dropped.
  void CrashDc(int d);
  /// Revives DC d: local SMO recovery first (§5.2.2), then EVERY TC
  /// redo-resends to it from its RSSP (§5.3.2 "DC Failure").
  Status RecoverDc(int d);
  Status CrashAndRecoverDc(int d);

  /// Hot-standby failover for a dead DC d: stops shipping, promotes the
  /// most-caught-up live standby (next epoch), swaps it into the
  /// primary slot, retargets every TC binding (and the loopback socket
  /// server), then runs the per-TC suffix resend — with a caught-up
  /// standby, only unacknowledged in-flight ops travel (zero full
  /// redo-resend). Crashes the primary first if it is still up (a
  /// planned drill). The ex-primary parks, crashed, in the promoted
  /// standby's old replica slot; revive it with RejoinReplica.
  Status FailoverDc(int d);

  /// Revives crashed replica-slot (d, r) — typically the retired
  /// ex-primary after FailoverDc — as a standby of the current primary:
  /// restore, fence its redo log at the promotion base (divergent
  /// suffix dropped), replay its own retained log locally, then attach
  /// a fresh shipping link so it catches up.
  Status RejoinReplica(int d, int r);

  /// Kills TC t: volatile log tail, transaction state and locks vanish.
  void CrashTc(int t);
  /// Restarts TC t per §5.3.2 "TC Failure", then runs any §6.1.2
  /// escalation: other TCs displaced by the reset resend from their
  /// RSSPs to repopulate shared pages.
  Status RestartTc(int t);
  Status CrashAndRestartTc(int t);

 private:
  Cluster() = default;

  ClusterOptions options_;
  std::vector<std::unique_ptr<StableStore>> stores_;
  std::vector<std::unique_ptr<DataComponent>> dcs_;
  /// Loopback TCP servers for socket bindings (one per DC, all TC
  /// sessions multiplexed onto its worker pool); empty otherwise.
  std::vector<std::unique_ptr<SocketServer>> socket_servers_;
  /// Keeps the binding factories alive for the cluster's lifetime: the
  /// socket factory owns the shared client reactor, so letting it die
  /// at the end of Open() would tear down every live connection.
  std::vector<std::shared_ptr<TransportFactory>> factories_;
  // bindings_[t][d]: TC t's transport to DC d.
  std::vector<std::vector<std::unique_ptr<BoundTransport>>> bindings_;
  std::vector<std::unique_ptr<TransactionComponent>> tcs_;

  // -- Replication state (PR 8), indexed by primary slot d -------------------
  std::vector<std::vector<std::unique_ptr<StableStore>>> replica_stores_;
  std::vector<std::vector<std::unique_ptr<DataComponent>>> replicas_;
  std::vector<std::vector<std::unique_ptr<ReplicationLink>>> links_;
  /// Monotonic promotion fence per primary slot.
  std::vector<uint64_t> promotion_epochs_;
  /// Replica ids are unique across the cluster's lifetime so a rebuilt
  /// link never aliases a stale ack entry.
  uint32_t next_replica_id_ = 1;
};

}  // namespace untx
