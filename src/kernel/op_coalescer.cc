#include "kernel/op_coalescer.h"

#include <algorithm>

namespace untx {

OpCoalescer::OpCoalescer(CoalesceOptions options, FlushFn flush)
    : options_(options), flush_(std::move(flush)) {}

OpCoalescer::~OpCoalescer() { Stop(); }

void OpCoalescer::Start() {
  stop_.store(false);
  flusher_ = std::thread([this] { FlushLoop(); });
}

void OpCoalescer::Stop() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> guard(flush_mu_);
    flush_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
}

void OpCoalescer::Queue(const OperationRequest& req) {
  std::vector<OperationRequest> full;
  bool first = false;
  {
    std::lock_guard<std::mutex> guard(pending_mu_);
    pending_.push_back(req);
    const auto now = std::chrono::steady_clock::now();
    last_enqueue_ = now;
    first = pending_.size() == 1;
    if (first) oldest_enqueue_ = now;
    if (pending_.size() >= options_.max_batch_ops) {
      full.swap(pending_);
    }
  }
  if (!full.empty()) {
    flush_(full);
    return;
  }
  if (first) {
    // Arm the window flusher for a queue that just became non-empty.
    std::lock_guard<std::mutex> guard(flush_mu_);
    flush_cv_.notify_one();
  }
}

void OpCoalescer::Flush() {
  std::vector<OperationRequest> batch;
  {
    std::lock_guard<std::mutex> guard(pending_mu_);
    if (pending_.empty()) return;
    batch.swap(pending_);
  }
  flush_(batch);
}

bool OpCoalescer::HasPending() const {
  std::lock_guard<std::mutex> guard(pending_mu_);
  return !pending_.empty();
}

bool OpCoalescer::PendingAges(
    std::chrono::steady_clock::time_point* oldest,
    std::chrono::steady_clock::time_point* newest) const {
  std::lock_guard<std::mutex> guard(pending_mu_);
  if (pending_.empty()) return false;
  *oldest = oldest_enqueue_;
  *newest = last_enqueue_;
  return true;
}

void OpCoalescer::FlushLoop() {
  // Safety net for queued ops whose caller never awaits: bounds the time
  // an op can sit in the coalescing buffer. Sleeps until a queue becomes
  // non-empty, then applies the coalescing policy — zero wakeups idle.
  using Clock = std::chrono::steady_clock;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(flush_mu_);
      flush_cv_.wait_for(lock, std::chrono::milliseconds(50),
                         [this] { return stop_.load() || HasPending(); });
    }
    if (stop_.load()) return;
    if (!HasPending()) continue;
    if (options_.policy == CoalescePolicy::kFixedWindow) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.window_us));
      Flush();
      continue;
    }
    // Adaptive: flush on submitter quiescence (no enqueue for idle_us)
    // or when the oldest op hits the latency target.
    const auto idle = std::chrono::microseconds(options_.idle_us);
    const auto max_delay = std::chrono::microseconds(options_.max_delay_us);
    for (;;) {
      if (stop_.load()) return;
      Clock::time_point oldest, newest;
      if (!PendingAges(&oldest, &newest)) break;  // drained
      const auto now = Clock::now();
      if (now - oldest >= max_delay) {
        deadline_flushes_.fetch_add(1);
        Flush();
        break;
      }
      if (now - newest >= idle) {
        idle_flushes_.fetch_add(1);
        Flush();
        break;
      }
      const auto until_deadline = (oldest + max_delay) - now;
      const auto until_idle = (newest + idle) - now;
      std::this_thread::sleep_for(std::min(until_deadline, until_idle));
    }
  }
}

}  // namespace untx
