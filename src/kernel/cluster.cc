#include "kernel/cluster.h"

#include <algorithm>
#include <set>

namespace untx {

namespace {

/// Direct binding: the client IS the transport; nothing to start or stop.
class DirectBoundTransport : public BoundTransport {
 public:
  explicit DirectBoundTransport(DataComponent* dc) : client_(dc) {}
  DcClient* client() override { return &client_; }

 private:
  DirectDcClient client_;
};

class DirectTransportFactory : public TransportFactory {
 public:
  std::unique_ptr<BoundTransport> Bind(TcId, DcId,
                                       DataComponent* target) override {
    return std::make_unique<DirectBoundTransport>(target);
  }
};

/// Channel binding: a per-(TC, DC) ChannelTransport — its own SimChannel
/// pair, server threads and reply dispatcher, so reply routing stays
/// per-TC and each binding's wire stats are separable.
class ChannelBoundTransport : public BoundTransport {
 public:
  ChannelBoundTransport(DataComponent* dc, ChannelTransportOptions options)
      : transport_(dc, options) {}
  DcClient* client() override { return transport_.client(); }
  ChannelTransport* channel() override { return &transport_; }
  void Start() override { transport_.Start(); }
  void Stop() override { transport_.Stop(); }
  void OnDcCrash() override { transport_.OnDcCrash(); }

 private:
  ChannelTransport transport_;
};

class ChannelTransportFactory : public TransportFactory {
 public:
  ChannelTransportFactory(ChannelTransportOptions options,
                          std::map<DcId, ChannelTransportOptions> per_dc)
      : options_(options), per_dc_(std::move(per_dc)) {}
  std::unique_ptr<BoundTransport> Bind(TcId, DcId dc,
                                       DataComponent* target) override {
    auto it = per_dc_.find(dc);
    return std::make_unique<ChannelBoundTransport>(
        target, it == per_dc_.end() ? options_ : it->second);
  }

 private:
  ChannelTransportOptions options_;
  std::map<DcId, ChannelTransportOptions> per_dc_;
};

}  // namespace

std::shared_ptr<TransportFactory> MakeDirectTransportFactory() {
  return std::make_shared<DirectTransportFactory>();
}

std::shared_ptr<TransportFactory> MakeChannelTransportFactory(
    ChannelTransportOptions options,
    std::map<DcId, ChannelTransportOptions> per_dc) {
  return std::make_shared<ChannelTransportFactory>(options,
                                                   std::move(per_dc));
}

StatusOr<std::unique_ptr<Cluster>> Cluster::Open(ClusterOptions options) {
  if (options.num_dcs < 1) {
    return Status::InvalidArgument("need at least one DC");
  }
  if (options.tcs.empty()) options.tcs.emplace_back();
  // tc_id is the TC's identity at the DCs (abLSN idempotence, reset
  // escalation): multi-TC topologies must assign each one explicitly —
  // never renumber silently.
  std::set<TcId> ids;
  for (const TcSpec& spec : options.tcs) {
    if (!ids.insert(spec.options.tc_id).second) {
      return Status::InvalidArgument(
          "duplicate tc_id in cluster spec: give every TcSpec a unique "
          "TcOptions::tc_id");
    }
  }

  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->options_ = options;

  for (int d = 0; d < options.num_dcs; ++d) {
    cluster->stores_.push_back(std::make_unique<StableStore>(options.store));
    cluster->dcs_.push_back(std::make_unique<DataComponent>(
        cluster->stores_.back().get(), options.dc));
    Status s = cluster->dcs_.back()->Initialize();
    if (!s.ok()) return s;
  }

  Router fallback = options.default_router;
  if (!fallback) {
    const int num_dcs = options.num_dcs;
    fallback = [num_dcs](TableId table, const std::string&) {
      return static_cast<DcId>(table % num_dcs);
    };
  }

  // Factories are shared across TCs of the same kind so a custom factory
  // can pool resources; the defaults are stateless.
  std::shared_ptr<TransportFactory> cluster_factory = options.binding_factory;
  if (!cluster_factory) {
    cluster_factory =
        options.transport == TransportKind::kChannel
            ? MakeChannelTransportFactory(options.channel,
                                          options.channel_overrides)
            : MakeDirectTransportFactory();
  }
  std::shared_ptr<TransportFactory> direct_factory;
  std::shared_ptr<TransportFactory> channel_factory;

  for (size_t t = 0; t < options.tcs.size(); ++t) {
    const TcSpec& spec = options.tcs[t];
    TransportFactory* factory = cluster_factory.get();
    if (spec.transport.has_value()) {
      if (*spec.transport == TransportKind::kChannel) {
        if (!channel_factory) {
          channel_factory = MakeChannelTransportFactory(
              options.channel, options.channel_overrides);
        }
        factory = channel_factory.get();
      } else {
        if (!direct_factory) direct_factory = MakeDirectTransportFactory();
        factory = direct_factory.get();
      }
    }

    cluster->bindings_.emplace_back();
    std::vector<DcBinding> tc_bindings;
    for (int d = 0; d < options.num_dcs; ++d) {
      cluster->bindings_.back().push_back(factory->Bind(
          spec.options.tc_id, static_cast<DcId>(d), cluster->dcs_[d].get()));
      tc_bindings.push_back(DcBinding{static_cast<DcId>(d),
                                      cluster->bindings_.back()[d]->client()});
    }
    Router router = spec.router ? spec.router : fallback;
    cluster->tcs_.push_back(std::make_unique<TransactionComponent>(
        spec.options, tc_bindings, router));
    // Transports must carry messages before the TC announces itself.
    for (auto& binding : cluster->bindings_.back()) binding->Start();
    Status s = cluster->tcs_.back()->Start();
    if (!s.ok()) return s;
  }
  return cluster;
}

Cluster::~Cluster() {
  for (auto& tc : tcs_) tc->Stop();
  for (auto& row : bindings_) {
    for (auto& binding : row) binding->Stop();
  }
}

uint64_t Cluster::TotalRequestMessages() const {
  uint64_t total = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        total += ch->request_channel().sent();
      }
    }
  }
  return total;
}

uint64_t Cluster::TotalOpMessages() const {
  uint64_t total = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        total += ch->op_messages();
      }
    }
  }
  return total;
}

uint64_t Cluster::TotalOpsCarried() const {
  uint64_t total = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        total += ch->ops_carried();
      }
    }
  }
  return total;
}

uint64_t Cluster::TotalScanMessages() const {
  uint64_t total = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        total += ch->scan_messages();
      }
    }
  }
  return total;
}

uint64_t Cluster::TotalScanRowsCarried() const {
  uint64_t total = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        total += ch->scan_rows_carried();
      }
    }
  }
  return total;
}

uint64_t Cluster::TotalScanCreditMessages() const {
  uint64_t total = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        total += ch->scan_credit_messages();
      }
    }
  }
  return total;
}

uint64_t Cluster::MaxQueuedScanBytes() const {
  uint64_t max = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        max = std::max(max, ch->max_queued_scan_bytes());
      }
    }
  }
  return max;
}

uint64_t Cluster::TotalPromoteMessages() const {
  uint64_t total = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        total += ch->promote_messages();
      }
    }
  }
  return total;
}

uint64_t Cluster::TotalPromoteOpsCarried() const {
  uint64_t total = 0;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) {
      if (ChannelTransport* ch = binding->channel()) {
        total += ch->promote_ops_carried();
      }
    }
  }
  return total;
}

void Cluster::CrashDc(int d) {
  if (d < 0 || d >= num_dcs()) return;
  dcs_[d]->Crash();
  // Every TC's in-flight requests to this DC die in its inbox.
  for (auto& row : bindings_) row[d]->OnDcCrash();
  // Hold resends and streamed scans to the DC until its redo completes
  // (OnDcRestart re-opens the gate after RecoverDc).
  for (auto& tc : tcs_) tc->OnDcCrash(static_cast<DcId>(d));
}

Status Cluster::RecoverDc(int d) {
  if (d < 0 || d >= num_dcs()) {
    return Status::InvalidArgument("no such dc");
  }
  dcs_[d]->Restore();
  // Phase 1: DC-local recovery makes the structures well-formed (§5.2.2).
  Status s = dcs_[d]->Recover();
  if (!s.ok()) return s;
  // Phase 2: the out-of-band prompt — every TC redo-resends from its
  // RSSP (§5.3.2 "DC Failure"; with several TCs, each owns a slice of
  // the lost operations). Run EVERY TC even if one fails: each
  // OnDcRestart also re-opens that TC's recovering gate (set by
  // CrashDc), and skipping a TC would leave its resends and streamed
  // scans to this DC held forever.
  Status first;
  for (auto& tc : tcs_) {
    Status rs = tc->OnDcRestart(static_cast<DcId>(d));
    if (first.ok() && !rs.ok()) first = rs;
  }
  return first;
}

Status Cluster::CrashAndRecoverDc(int d) {
  CrashDc(d);
  return RecoverDc(d);
}

void Cluster::CrashTc(int t) {
  if (t < 0 || t >= num_tcs()) return;
  tcs_[t]->Crash();
}

Status Cluster::RestartTc(int t) {
  if (t < 0 || t >= num_tcs()) {
    return Status::InvalidArgument("no such tc");
  }
  std::vector<TcId> escalate;
  Status s = tcs_[t]->Restart(&escalate);
  if (!s.ok()) return s;
  // §6.1.2 escalation: the restart's DC resets may have dropped shared
  // pages reflecting OTHER TCs' operations; those TCs repopulate from
  // their own logs.
  for (TcId victim : escalate) {
    for (auto& tc : tcs_) {
      if (tc->id() == victim && tc.get() != tcs_[t].get()) {
        Status rs = tc->ResendFromRssp();
        if (!rs.ok()) return rs;
      }
    }
  }
  return Status::OK();
}

Status Cluster::CrashAndRestartTc(int t) {
  if (t < 0 || t >= num_tcs()) {
    return Status::InvalidArgument("no such tc");
  }
  CrashTc(t);
  return RestartTc(t);
}

}  // namespace untx
