#include "kernel/cluster.h"

#include <algorithm>
#include <set>

#include "net/socket_server.h"
#include "net/socket_transport.h"

namespace untx {

namespace {

/// Direct binding: the client IS the transport; nothing to start or stop.
class DirectBoundTransport : public BoundTransport {
 public:
  explicit DirectBoundTransport(DataComponent* dc) : client_(dc) {}
  DcClient* client() override { return &client_; }
  void Retarget(DataComponent* dc) override { client_.set_target(dc); }

 private:
  DirectDcClient client_;
};

class DirectTransportFactory : public TransportFactory {
 public:
  std::unique_ptr<BoundTransport> Bind(TcId, DcId,
                                       DataComponent* target) override {
    return std::make_unique<DirectBoundTransport>(target);
  }
};

/// Channel binding: a per-(TC, DC) ChannelTransport — its own SimChannel
/// pair, server threads and reply dispatcher, so reply routing stays
/// per-TC and each binding's wire stats are separable.
class ChannelBoundTransport : public BoundTransport {
 public:
  ChannelBoundTransport(DataComponent* dc, ChannelTransportOptions options)
      : transport_(dc, options) {}
  DcClient* client() override { return transport_.client(); }
  ChannelTransport* channel() override { return &transport_; }
  void AddWireStats(WireTotals* totals) const override {
    totals->request_messages += transport_.request_channel().sent();
    totals->op_messages += transport_.op_messages();
    totals->ops_carried += transport_.ops_carried();
    totals->scan_messages += transport_.scan_messages();
    totals->scan_rows_carried += transport_.scan_rows_carried();
    totals->scan_credit_messages += transport_.scan_credit_messages();
    totals->max_queued_scan_bytes = std::max(
        totals->max_queued_scan_bytes, transport_.max_queued_scan_bytes());
    totals->promote_messages += transport_.promote_messages();
    totals->promote_ops_carried += transport_.promote_ops_carried();
  }
  void Start() override { transport_.Start(); }
  void Stop() override { transport_.Stop(); }
  void OnDcCrash() override { transport_.OnDcCrash(); }
  void Retarget(DataComponent* dc) override { transport_.Retarget(dc); }

 private:
  ChannelTransport transport_;
};

class ChannelTransportFactory : public TransportFactory {
 public:
  ChannelTransportFactory(ChannelTransportOptions options,
                          std::map<DcId, ChannelTransportOptions> per_dc)
      : options_(options), per_dc_(std::move(per_dc)) {}
  std::unique_ptr<BoundTransport> Bind(TcId, DcId dc,
                                       DataComponent* target) override {
    auto it = per_dc_.find(dc);
    return std::make_unique<ChannelBoundTransport>(
        target, it == per_dc_.end() ? options_ : it->second);
  }

 private:
  ChannelTransportOptions options_;
  std::map<DcId, ChannelTransportOptions> per_dc_;
};

}  // namespace

std::shared_ptr<TransportFactory> MakeDirectTransportFactory() {
  return std::make_shared<DirectTransportFactory>();
}

std::shared_ptr<TransportFactory> MakeChannelTransportFactory(
    ChannelTransportOptions options,
    std::map<DcId, ChannelTransportOptions> per_dc) {
  return std::make_shared<ChannelTransportFactory>(options,
                                                   std::move(per_dc));
}

StatusOr<std::unique_ptr<Cluster>> Cluster::Open(ClusterOptions options) {
  if (options.num_dcs < 1) {
    return Status::InvalidArgument("need at least one DC");
  }
  if (options.tcs.empty()) options.tcs.emplace_back();
  // tc_id is the TC's identity at the DCs (abLSN idempotence, reset
  // escalation): multi-TC topologies must assign each one explicitly —
  // never renumber silently.
  std::set<TcId> ids;
  for (const TcSpec& spec : options.tcs) {
    if (!ids.insert(spec.options.tc_id).second) {
      return Status::InvalidArgument(
          "duplicate tc_id in cluster spec: give every TcSpec a unique "
          "TcOptions::tc_id");
    }
  }

  // Hot standbys ride the primary's ordered redo history; shipping is
  // impossible without the log, so standbys imply it.
  if (options.replicas_per_dc > 0) options.dc.redo_log_enabled = true;

  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->options_ = options;

  for (int d = 0; d < options.num_dcs; ++d) {
    cluster->stores_.push_back(std::make_unique<StableStore>(options.store));
    cluster->dcs_.push_back(std::make_unique<DataComponent>(
        cluster->stores_.back().get(), options.dc));
    Status s = cluster->dcs_.back()->Initialize();
    if (!s.ok()) return s;
  }

  cluster->replica_stores_.resize(options.num_dcs);
  cluster->replicas_.resize(options.num_dcs);
  cluster->links_.resize(options.num_dcs);
  cluster->promotion_epochs_.assign(options.num_dcs, 0);
  if (options.replicas_per_dc > 0) {
    // In-process standbys share the primary's knobs but never its files:
    // a standby's durability IS the primary plus the shipped log, and two
    // stores on one path would corrupt each other.
    StableStoreOptions replica_store = options.store;
    replica_store.path.clear();
    DataComponentOptions replica_dc = options.dc;
    replica_dc.redo_log.path.clear();
    for (int d = 0; d < options.num_dcs; ++d) {
      for (int r = 0; r < options.replicas_per_dc; ++r) {
        cluster->replica_stores_[d].push_back(
            std::make_unique<StableStore>(replica_store));
        auto rep = std::make_unique<DataComponent>(
            cluster->replica_stores_[d].back().get(), replica_dc);
        Status s = rep->Initialize();
        if (!s.ok()) return s;
        rep->StartAsReplica();
        ReplicationLinkOptions link = options.replication;
        link.replica_id = cluster->next_replica_id_++;
        cluster->links_[d].push_back(std::make_unique<ReplicationLink>(
            cluster->dcs_[d].get(), rep.get(), link));
        cluster->replicas_[d].push_back(std::move(rep));
        cluster->links_[d].back()->Start();
      }
    }
  }

  Router fallback = options.default_router;
  if (!fallback) {
    const int num_dcs = options.num_dcs;
    fallback = [num_dcs](TableId table, const std::string&) {
      return static_cast<DcId>(table % num_dcs);
    };
  }

  // Factories are shared across TCs of the same kind so a custom factory
  // can pool resources; the defaults are stateless, and the socket
  // factory shares one reactor (plus the per-DC loopback servers)
  // across every socket TC.
  std::shared_ptr<TransportFactory> direct_factory;
  std::shared_ptr<TransportFactory> channel_factory;
  std::shared_ptr<TransportFactory> socket_factory;
  Status socket_status;
  // Starts the per-DC loopback SocketServers on first use and builds the
  // shared client factory against their ephemeral ports. Client-side
  // coalescing reuses the channel knobs so channel-vs-socket runs
  // measure the wire, not the queueing policy.
  auto ensure_socket_factory = [&]() -> TransportFactory* {
    if (socket_factory) return socket_factory.get();
    std::map<DcId, SocketEndpoint> endpoints;
    for (int d = 0; d < options.num_dcs; ++d) {
      SocketServerOptions server_options;
      server_options.host = options.socket.host;
      server_options.port = 0;  // ephemeral; read back below
      server_options.workers = options.socket.server_workers;
      auto server = std::make_unique<SocketServer>(cluster->dcs_[d].get(),
                                                   server_options);
      socket_status = server->Start();
      if (!socket_status.ok()) return nullptr;
      endpoints[static_cast<DcId>(d)] =
          SocketEndpoint{options.socket.host, server->port()};
      cluster->socket_servers_.push_back(std::move(server));
    }
    SocketTransportOptions transport_options;
    transport_options.coalesce = options.channel.coalesce();
    socket_factory =
        MakeSocketTransportFactory(std::move(endpoints), transport_options);
    return socket_factory.get();
  };

  std::shared_ptr<TransportFactory> cluster_factory = options.binding_factory;
  if (!cluster_factory) {
    switch (options.transport) {
      case TransportKind::kChannel:
        cluster_factory = MakeChannelTransportFactory(
            options.channel, options.channel_overrides);
        break;
      case TransportKind::kSocket:
        if (!ensure_socket_factory()) return socket_status;
        cluster_factory = socket_factory;
        break;
      case TransportKind::kDirect:
        cluster_factory = MakeDirectTransportFactory();
        break;
    }
  }

  for (size_t t = 0; t < options.tcs.size(); ++t) {
    const TcSpec& spec = options.tcs[t];
    TransportFactory* factory = cluster_factory.get();
    if (spec.transport.has_value()) {
      if (*spec.transport == TransportKind::kChannel) {
        if (!channel_factory) {
          channel_factory = MakeChannelTransportFactory(
              options.channel, options.channel_overrides);
        }
        factory = channel_factory.get();
      } else if (*spec.transport == TransportKind::kSocket) {
        factory = ensure_socket_factory();
        if (!factory) return socket_status;
      } else {
        if (!direct_factory) direct_factory = MakeDirectTransportFactory();
        factory = direct_factory.get();
      }
    }

    cluster->bindings_.emplace_back();
    std::vector<DcBinding> tc_bindings;
    for (int d = 0; d < options.num_dcs; ++d) {
      cluster->bindings_.back().push_back(factory->Bind(
          spec.options.tc_id, static_cast<DcId>(d), cluster->dcs_[d].get()));
      tc_bindings.push_back(DcBinding{static_cast<DcId>(d),
                                      cluster->bindings_.back()[d]->client()});
    }
    Router router = spec.router ? spec.router : fallback;
    cluster->tcs_.push_back(std::make_unique<TransactionComponent>(
        spec.options, tc_bindings, router));
    // Transports must carry messages before the TC announces itself.
    for (auto& binding : cluster->bindings_.back()) binding->Start();
    Status s = cluster->tcs_.back()->Start();
    if (!s.ok()) return s;
  }
  // The factories outlive Open(): the socket factory owns the shared
  // client reactor every socket binding polls on.
  for (auto& f :
       {options.binding_factory, direct_factory, channel_factory,
        socket_factory, cluster_factory}) {
    if (f) cluster->factories_.push_back(f);
  }
  return cluster;
}

Cluster::~Cluster() {
  // Shipping threads first: they walk primary redo logs and poke
  // replicas, both of which are about to go away.
  for (auto& row : links_) row.clear();
  for (auto& tc : tcs_) tc->Stop();
  for (auto& row : bindings_) {
    for (auto& binding : row) binding->Stop();
  }
  // Clients are down; now the loopback servers can go.
  for (auto& server : socket_servers_) server->Stop();
}

WireTotals Cluster::TotalWireStats() const {
  WireTotals totals;
  for (const auto& row : bindings_) {
    for (const auto& binding : row) binding->AddWireStats(&totals);
  }
  // Scan-reply residency is measured where the replies queue: the reply
  // channel on channel bindings, the per-session out buffer on socket
  // servers. Fold the server-side marks into the same max.
  for (const auto& server : socket_servers_) {
    totals.max_queued_scan_bytes =
        std::max(totals.max_queued_scan_bytes, server->max_queued_reply_bytes());
  }
  return totals;
}

uint64_t Cluster::TotalRequestMessages() const {
  return TotalWireStats().request_messages;
}

uint64_t Cluster::TotalOpMessages() const {
  return TotalWireStats().op_messages;
}

uint64_t Cluster::TotalOpsCarried() const {
  return TotalWireStats().ops_carried;
}

uint64_t Cluster::TotalScanMessages() const {
  return TotalWireStats().scan_messages;
}

uint64_t Cluster::TotalScanRowsCarried() const {
  return TotalWireStats().scan_rows_carried;
}

uint64_t Cluster::TotalScanCreditMessages() const {
  return TotalWireStats().scan_credit_messages;
}

uint64_t Cluster::MaxQueuedScanBytes() const {
  return TotalWireStats().max_queued_scan_bytes;
}

uint64_t Cluster::TotalPromoteMessages() const {
  return TotalWireStats().promote_messages;
}

uint64_t Cluster::TotalPromoteOpsCarried() const {
  return TotalWireStats().promote_ops_carried;
}

void Cluster::CrashDc(int d) {
  if (d < 0 || d >= num_dcs()) return;
  dcs_[d]->Crash();
  // Every TC's in-flight requests to this DC die in its inbox.
  for (auto& row : bindings_) row[d]->OnDcCrash();
  // Hold resends and streamed scans to the DC until its redo completes
  // (OnDcRestart re-opens the gate after RecoverDc).
  for (auto& tc : tcs_) tc->OnDcCrash(static_cast<DcId>(d));
}

Status Cluster::RecoverDc(int d) {
  if (d < 0 || d >= num_dcs()) {
    return Status::InvalidArgument("no such dc");
  }
  dcs_[d]->Restore();
  // Phase 1: DC-local recovery makes the structures well-formed (§5.2.2).
  Status s = dcs_[d]->Recover();
  if (!s.ok()) return s;
  // Phase 1b: a DC with a retained redo log replays it locally, so the
  // TCs' kQueryReplication probe sees a current redo end and phase 2
  // degrades to a suffix resend of in-flight ops only.
  if (dcs_[d]->redo_log() != nullptr) {
    s = dcs_[d]->RecoverFromLocalLog();
    if (!s.ok()) return s;
  }
  // Phase 2: the out-of-band prompt — every TC redo-resends from its
  // RSSP (§5.3.2 "DC Failure"; with several TCs, each owns a slice of
  // the lost operations). Run EVERY TC even if one fails: each
  // OnDcRestart also re-opens that TC's recovering gate (set by
  // CrashDc), and skipping a TC would leave its resends and streamed
  // scans to this DC held forever.
  Status first;
  for (auto& tc : tcs_) {
    Status rs = tc->OnDcRestart(static_cast<DcId>(d));
    if (first.ok() && !rs.ok()) first = rs;
  }
  return first;
}

Status Cluster::CrashAndRecoverDc(int d) {
  CrashDc(d);
  return RecoverDc(d);
}

Status Cluster::FailoverDc(int d) {
  if (d < 0 || d >= num_dcs()) return Status::InvalidArgument("no such dc");
  if (replicas_[d].empty()) {
    return Status::InvalidArgument("dc has no standby to fail over to");
  }
  // A planned drill may target a live primary; kill it first so the slot
  // swap below is the only transition the TCs observe.
  if (!dcs_[d]->crashed()) CrashDc(d);
  // Quiesce shipping before the slots move underneath the link threads.
  links_[d].clear();
  // Most-caught-up live standby wins.
  int best = -1;
  uint64_t best_end = 0;
  for (int r = 0; r < static_cast<int>(replicas_[d].size()); ++r) {
    DataComponent* rep = replicas_[d][r].get();
    if (rep->crashed()) continue;
    uint64_t end = rep->redo_log() != nullptr ? rep->redo_log()->end() : 0;
    if (best < 0 || end > best_end) {
      best = r;
      best_end = end;
    }
  }
  if (best < 0) return Status::Crashed("no live standby to promote");
  replicas_[d][best]->Promote(++promotion_epochs_[d]);
  // The promoted standby takes the primary slot; the dead ex-primary
  // parks in its old replica slot for a later RejoinReplica.
  std::swap(dcs_[d], replicas_[d][best]);
  std::swap(stores_[d], replica_stores_[d][best]);
  // Bindings and the loopback socket server survive; only the backend
  // they dispatch into changes.
  for (auto& row : bindings_) row[d]->Retarget(dcs_[d].get());
  if (d < static_cast<int>(socket_servers_.size()) &&
      socket_servers_[d] != nullptr) {
    socket_servers_[d]->Retarget(dcs_[d].get());
  }
  // Remaining live standbys re-subscribe to the new primary (fresh
  // replica ids; their acked positions restart from their own log ends).
  for (int r = 0; r < static_cast<int>(replicas_[d].size()); ++r) {
    DataComponent* rep = replicas_[d][r].get();
    if (rep->crashed()) continue;
    ReplicationLinkOptions link = options_.replication;
    link.replica_id = next_replica_id_++;
    links_[d].push_back(
        std::make_unique<ReplicationLink>(dcs_[d].get(), rep, link));
    links_[d].back()->Start();
  }
  // Suffix resend: OnDcRestart probes the promoted DC's redo end, so each
  // TC re-drives only ops the standby had not yet applied — with a
  // caught-up standby that is just the unacknowledged in-flight tail,
  // zero full redo-resend. Run EVERY TC even on error: each call also
  // re-opens that TC's recovering gate.
  Status first;
  for (auto& tc : tcs_) {
    Status rs = tc->OnDcRestart(static_cast<DcId>(d));
    if (first.ok() && !rs.ok()) first = rs;
  }
  return first;
}

Status Cluster::RejoinReplica(int d, int r) {
  if (d < 0 || d >= num_dcs()) return Status::InvalidArgument("no such dc");
  if (r < 0 || r >= static_cast<int>(replicas_[d].size())) {
    return Status::InvalidArgument("no such replica");
  }
  DataComponent* rep = replicas_[d][r].get();
  if (!rep->crashed()) {
    return Status::InvalidArgument("replica is live; nothing to rejoin");
  }
  // Tear down any stale link to this replica FIRST: its shipper must not
  // race the truncation below, and its ack-map entry would otherwise
  // clamp the primary's checkpoints (and pin MaxReplicaLag) forever.
  for (auto it = links_[d].begin(); it != links_[d].end();) {
    if ((*it)->replica() == rep) {
      it = links_[d].erase(it);
    } else {
      ++it;
    }
  }
  rep->Restore();
  // Same phase 1 as any DC revival: well-formed search structures first.
  Status rs = rep->Recover();
  if (!rs.ok()) return rs;
  // Fence at the current primary's promotion base: any divergent suffix
  // (ops the ex-primary logged that never shipped) is dropped here and
  // re-enters history via the TCs' failover resend to the new primary.
  Status s = rep->RejoinAsReplica(dcs_[d]->promotion_base());
  if (!s.ok()) return s;
  // Its own retained log brings the restored pages forward to the fence;
  // the link below ships everything past it.
  s = rep->RecoverFromLocalLog();
  if (!s.ok()) return s;
  ReplicationLinkOptions link = options_.replication;
  link.replica_id = next_replica_id_++;
  links_[d].push_back(
      std::make_unique<ReplicationLink>(dcs_[d].get(), rep, link));
  links_[d].back()->Start();
  return Status::OK();
}

void Cluster::CrashTc(int t) {
  if (t < 0 || t >= num_tcs()) return;
  tcs_[t]->Crash();
}

Status Cluster::RestartTc(int t) {
  if (t < 0 || t >= num_tcs()) {
    return Status::InvalidArgument("no such tc");
  }
  std::vector<TcId> escalate;
  Status s = tcs_[t]->Restart(&escalate);
  if (!s.ok()) return s;
  // §6.1.2 escalation: the restart's DC resets may have dropped shared
  // pages reflecting OTHER TCs' operations; those TCs repopulate from
  // their own logs.
  for (TcId victim : escalate) {
    for (auto& tc : tcs_) {
      if (tc->id() == victim && tc.get() != tcs_[t].get()) {
        Status rs = tc->ResendFromRssp();
        if (!rs.ok()) return rs;
      }
    }
  }
  return Status::OK();
}

Status Cluster::CrashAndRestartTc(int t) {
  if (t < 0 || t >= num_tcs()) {
    return Status::InvalidArgument("no such tc");
  }
  CrashTc(t);
  return RestartTc(t);
}

}  // namespace untx
