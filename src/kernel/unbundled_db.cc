#include "kernel/unbundled_db.h"

namespace untx {

StatusOr<std::unique_ptr<UnbundledDb>> UnbundledDb::Open(
    UnbundledDbOptions options) {
  auto db = std::unique_ptr<UnbundledDb>(new UnbundledDb());
  db->options_ = options;
  if (options.num_dcs < 1) {
    return Status::InvalidArgument("need at least one DC");
  }

  std::vector<DcBinding> bindings;
  for (int i = 0; i < options.num_dcs; ++i) {
    db->stores_.push_back(std::make_unique<StableStore>(options.store));
    db->dcs_.push_back(std::make_unique<DataComponent>(
        db->stores_.back().get(), options.dc));
    Status s = db->dcs_.back()->Initialize();
    if (!s.ok()) return s;

    DcClient* client = nullptr;
    if (options.transport == TransportKind::kDirect) {
      db->direct_clients_.push_back(
          std::make_unique<DirectDcClient>(db->dcs_.back().get()));
      client = db->direct_clients_.back().get();
    } else {
      db->channel_transports_.push_back(std::make_unique<ChannelTransport>(
          db->dcs_.back().get(), options.channel));
      client = db->channel_transports_.back()->client();
    }
    bindings.push_back(DcBinding{static_cast<DcId>(i), client});
  }

  Router router = options.router;
  if (!router) {
    const int num_dcs = options.num_dcs;
    router = [num_dcs](TableId table, const std::string&) {
      return static_cast<DcId>(table % num_dcs);
    };
  }
  db->tc_ = std::make_unique<TransactionComponent>(options.tc, bindings,
                                                   router);
  for (auto& transport : db->channel_transports_) transport->Start();
  Status s = db->tc_->Start();
  if (!s.ok()) return s;
  return db;
}

UnbundledDb::~UnbundledDb() {
  if (tc_) tc_->Stop();
  for (auto& transport : channel_transports_) transport->Stop();
}

void UnbundledDb::CrashDc(int i) {
  if (i < 0 || i >= static_cast<int>(dcs_.size())) return;
  dcs_[i]->Crash();
  if (!channel_transports_.empty()) {
    channel_transports_[i]->OnDcCrash();
  }
}

Status UnbundledDb::RecoverDc(int i) {
  if (i < 0 || i >= static_cast<int>(dcs_.size())) {
    return Status::InvalidArgument("no such dc");
  }
  dcs_[i]->Restore();
  // Phase 1: DC-local recovery makes the structures well-formed (§5.2.2).
  Status s = dcs_[i]->Recover();
  if (!s.ok()) return s;
  // Phase 2: the out-of-band prompt — the TC redo-resends from the RSSP.
  return tc_->OnDcRestart(static_cast<DcId>(i));
}

void UnbundledDb::CrashTc() { tc_->Crash(); }

Status UnbundledDb::RestartTc() {
  std::vector<TcId> escalate;
  Status s = tc_->Restart(&escalate);
  // Single-TC deployment: escalations cannot name anyone else.
  return s;
}

}  // namespace untx
