#include "kernel/unbundled_db.h"

namespace untx {

StatusOr<std::unique_ptr<UnbundledDb>> UnbundledDb::Open(
    UnbundledDbOptions options) {
  ClusterOptions cluster;
  cluster.num_dcs = options.num_dcs;
  cluster.dc = options.dc;
  cluster.store = options.store;
  cluster.transport = options.transport;
  cluster.channel = options.channel;
  cluster.default_router = options.router;
  TcSpec spec;
  spec.options = options.tc;
  cluster.tcs.push_back(std::move(spec));

  auto opened = Cluster::Open(std::move(cluster));
  if (!opened.ok()) return opened.status();
  auto db = std::unique_ptr<UnbundledDb>(new UnbundledDb());
  db->cluster_ = std::move(opened).ValueOrDie();
  return db;
}

}  // namespace untx
