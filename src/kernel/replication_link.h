// ReplicationLink: an in-process redo-log shipper from a primary DC to
// one replica DC (PR 8). The Cluster runs one link per (primary,
// replica) pair regardless of transport kind; the socket transport has
// its own wire-level shipper (net/SocketServer replica sessions) for
// daemon deployments — this link is the shared-memory equivalent with
// identical semantics:
//
//   loop: read a batch of DURABLE entries past the replica's end from
//   the primary's DcRedoLog, ApplyReplicated it at the replica, ack the
//   replica's new end back into the primary's replica-ack map (which
//   feeds checkpoint clamping and MaxReplicaLag).
//
// Only durable entries ship (DcRedoLog::ReadFrom stops at durable_end),
// so a primary crash never leaves a replica holding a suffix the
// primary's own recovery cannot reproduce. Transient apply failures
// (replica Busy/Crashed) back off and retry from the replica's current
// end — the gap check in ApplyReplicated makes duplicated or re-read
// batches harmless.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace untx {

class DataComponent;

struct ReplicationLinkOptions {
  /// Registered in the primary's replica-ack map; unique per link.
  uint32_t replica_id = 1;
  /// Entries per shipped batch.
  uint32_t batch_max = 256;
  /// How long the shipper parks on WaitDurable when caught up.
  uint32_t poll_ms = 50;
  /// Backoff after a transient apply failure at the replica.
  uint32_t retry_ms = 10;
};

class ReplicationLink {
 public:
  ReplicationLink(DataComponent* primary, DataComponent* replica,
                  ReplicationLinkOptions options = {});
  ~ReplicationLink();

  /// Registers the replica with the primary (its current end becomes the
  /// initial ack, so checkpoint clamping sees the laggard immediately)
  /// and starts the shipper thread. Idempotent.
  void Start();

  /// Stops the shipper and unregisters the replica from the primary's
  /// ack map. Idempotent; called by the destructor.
  void Stop();

  DataComponent* replica() const { return replica_; }
  uint32_t replica_id() const { return options_.replica_id; }
  /// Batches successfully applied at the replica.
  uint64_t batches_shipped() const { return batches_shipped_.load(); }

 private:
  void Run();

  DataComponent* primary_;
  DataComponent* replica_;
  ReplicationLinkOptions options_;
  std::atomic<bool> stop_{true};
  std::atomic<uint64_t> batches_shipped_{0};
  std::thread thread_;
};

}  // namespace untx
