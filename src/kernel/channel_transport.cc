#include "kernel/channel_transport.h"

namespace untx {

ChannelTransport::ChannelTransport(DataComponent* dc,
                                   ChannelTransportOptions options)
    : dc_(dc),
      options_(options),
      request_ch_(options.request_channel),
      reply_ch_(options.reply_channel),
      client_(this) {}

ChannelTransport::~ChannelTransport() { Stop(); }

void ChannelTransport::Start() {
  stop_.store(false);
  for (int i = 0; i < options_.server_threads; ++i) {
    servers_.emplace_back([this] { ServerLoop(); });
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void ChannelTransport::Stop() {
  stop_.store(true);
  for (auto& t : servers_) {
    if (t.joinable()) t.join();
  }
  servers_.clear();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ChannelTransport::OnDcCrash() { request_ch_.Clear(); }

void ChannelTransport::Client::SendOperation(const OperationRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kOperationRequest, body));
}

void ChannelTransport::Client::SendControl(const ControlRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kControlRequest, body));
}

void ChannelTransport::ServerLoop() {
  std::string wire;
  while (!stop_.load()) {
    if (!request_ch_.Receive(&wire, 20)) continue;
    MessageKind kind;
    Slice body;
    if (!UnwrapMessage(wire, &kind, &body)) continue;
    if (kind == MessageKind::kOperationRequest) {
      OperationRequest req;
      if (!OperationRequest::DecodeFrom(&body, &req)) continue;
      OperationReply reply = dc_->Perform(req);
      // A crashed DC sends nothing — its reply dies with it.
      if (reply.status.IsCrashed()) continue;
      std::string out;
      reply.EncodeTo(&out);
      reply_ch_.Send(WrapMessage(MessageKind::kOperationReply, out));
    } else if (kind == MessageKind::kControlRequest) {
      ControlRequest req;
      if (!ControlRequest::DecodeFrom(&body, &req)) continue;
      ControlReply reply = dc_->Control(req);
      if (reply.status.IsCrashed()) continue;
      std::string out;
      reply.EncodeTo(&out);
      reply_ch_.Send(WrapMessage(MessageKind::kControlReply, out));
    }
  }
}

void ChannelTransport::DispatchLoop() {
  std::string wire;
  while (!stop_.load()) {
    if (!reply_ch_.Receive(&wire, 20)) continue;
    MessageKind kind;
    Slice body;
    if (!UnwrapMessage(wire, &kind, &body)) continue;
    if (kind == MessageKind::kOperationReply) {
      OperationReply reply;
      if (!OperationReply::DecodeFrom(&body, &reply)) continue;
      if (client_.op_handler()) client_.op_handler()(reply);
    } else if (kind == MessageKind::kControlReply) {
      ControlReply reply;
      if (!ControlReply::DecodeFrom(&body, &reply)) continue;
      if (client_.control_handler()) client_.control_handler()(reply);
    }
  }
}

}  // namespace untx
