#include "kernel/channel_transport.h"

#include <algorithm>
#include <chrono>

namespace untx {

ChannelTransport::ChannelTransport(DataComponent* dc,
                                   ChannelTransportOptions options)
    : dc_(dc),
      options_(options),
      request_ch_(options.request_channel),
      reply_ch_(options.reply_channel),
      client_(this) {}

ChannelTransport::~ChannelTransport() { Stop(); }

void ChannelTransport::Start() {
  stop_.store(false);
  for (int i = 0; i < options_.server_threads; ++i) {
    servers_.emplace_back([this] { ServerLoop(); });
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  flusher_ = std::thread([this] { FlushLoop(); });
}

void ChannelTransport::Stop() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> guard(flush_mu_);
    flush_cv_.notify_all();
  }
  for (auto& t : servers_) {
    if (t.joinable()) t.join();
  }
  servers_.clear();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (flusher_.joinable()) flusher_.join();
}

void ChannelTransport::OnDcCrash() { request_ch_.Clear(); }

void ChannelTransport::Client::SendOperation(const OperationRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->op_messages_.fetch_add(1);
  transport_->ops_carried_.fetch_add(1);
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kOperationRequest, body));
}

void ChannelTransport::Client::SendOperationBatch(
    const std::vector<OperationRequest>& reqs) {
  if (reqs.empty()) return;
  OperationBatch batch;
  batch.ops = reqs;
  std::string body;
  batch.EncodeTo(&body);
  transport_->op_messages_.fetch_add(1);
  transport_->ops_carried_.fetch_add(reqs.size());
  uint64_t promotes = 0;
  for (const auto& req : reqs) {
    if (req.op == OpType::kPromoteVersion) ++promotes;
  }
  if (promotes > 0) {
    transport_->promote_messages_.fetch_add(1);
    transport_->promote_ops_carried_.fetch_add(promotes);
  }
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kOperationBatch, body));
}

void ChannelTransport::Client::SendScanStream(const ScanStreamRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->scan_messages_.fetch_add(1);
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kScanStreamRequest, body));
}

void ChannelTransport::Client::SendScanCredit(const ScanCreditRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->scan_credit_messages_.fetch_add(1);
  transport_->request_ch_.Send(WrapMessage(MessageKind::kScanCredit, body));
}

void ChannelTransport::Client::QueueOperation(const OperationRequest& req) {
  std::vector<OperationRequest> full;
  bool first = false;
  {
    std::lock_guard<std::mutex> guard(pending_mu_);
    pending_.push_back(req);
    const auto now = std::chrono::steady_clock::now();
    last_enqueue_ = now;
    first = pending_.size() == 1;
    if (first) oldest_enqueue_ = now;
    if (pending_.size() >= transport_->options_.max_batch_ops) {
      full.swap(pending_);
    }
  }
  if (!full.empty()) {
    SendOperationBatch(full);
    return;
  }
  if (first) {
    // Arm the window flusher for a queue that just became non-empty.
    std::lock_guard<std::mutex> guard(transport_->flush_mu_);
    transport_->flush_cv_.notify_one();
  }
}

void ChannelTransport::Client::FlushOperations() {
  std::vector<OperationRequest> batch;
  {
    std::lock_guard<std::mutex> guard(pending_mu_);
    if (pending_.empty()) return;
    batch.swap(pending_);
  }
  SendOperationBatch(batch);
}

bool ChannelTransport::Client::HasPending() const {
  std::lock_guard<std::mutex> guard(pending_mu_);
  return !pending_.empty();
}

bool ChannelTransport::Client::PendingAges(
    std::chrono::steady_clock::time_point* oldest,
    std::chrono::steady_clock::time_point* newest) const {
  std::lock_guard<std::mutex> guard(pending_mu_);
  if (pending_.empty()) return false;
  *oldest = oldest_enqueue_;
  *newest = last_enqueue_;
  return true;
}

void ChannelTransport::Client::SendControl(const ControlRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kControlRequest, body));
}

void ChannelTransport::FlushLoop() {
  // Safety net for queued ops whose caller never awaits: bounds the time
  // an op can sit in the coalescing buffer. Sleeps until a queue becomes
  // non-empty, then applies the coalescing policy — zero wakeups idle.
  using Clock = std::chrono::steady_clock;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(flush_mu_);
      flush_cv_.wait_for(
          lock, std::chrono::milliseconds(50),
          [this] { return stop_.load() || client_.HasPending(); });
    }
    if (stop_.load()) return;
    if (!client_.HasPending()) continue;
    if (options_.coalesce_policy == CoalescePolicy::kFixedWindow) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.coalesce_window_us));
      client_.FlushOperations();
      continue;
    }
    // Adaptive: flush on submitter quiescence (no enqueue for
    // coalesce_idle_us) or when the oldest op hits the latency target.
    const auto idle = std::chrono::microseconds(options_.coalesce_idle_us);
    const auto max_delay =
        std::chrono::microseconds(options_.coalesce_max_delay_us);
    for (;;) {
      if (stop_.load()) return;
      Clock::time_point oldest, newest;
      if (!client_.PendingAges(&oldest, &newest)) break;  // drained
      const auto now = Clock::now();
      if (now - oldest >= max_delay) {
        coalesce_deadline_flushes_.fetch_add(1);
        client_.FlushOperations();
        break;
      }
      if (now - newest >= idle) {
        coalesce_idle_flushes_.fetch_add(1);
        client_.FlushOperations();
        break;
      }
      const auto until_deadline = (oldest + max_delay) - now;
      const auto until_idle = (newest + idle) - now;
      std::this_thread::sleep_for(std::min(until_deadline, until_idle));
    }
  }
}

void ChannelTransport::EmitChunk(const ScanStreamChunk& chunk) {
  // A crashed DC sends nothing; the TC restarts the stream.
  if (chunk.status.IsCrashed()) return;
  std::string out;
  chunk.EncodeTo(&out);
  std::string wire = WrapMessage(MessageKind::kScanStreamChunk, out);
  // Account the chunk's residency in the reply channel: incremented at
  // send, decremented when the dispatcher pulls it off. The high-water
  // mark is the memory bound the credit window is supposed to enforce.
  const uint64_t size = wire.size();
  const uint64_t now = queued_scan_bytes_.fetch_add(size) + size;
  uint64_t seen = max_queued_scan_bytes_.load();
  while (now > seen &&
         !max_queued_scan_bytes_.compare_exchange_weak(seen, now)) {
  }
  reply_ch_.Send(std::move(wire));
}

void ChannelTransport::ServerLoop() {
  std::string wire;
  while (!stop_.load()) {
    if (!request_ch_.Receive(&wire, 20)) continue;
    MessageKind kind;
    Slice body;
    if (!UnwrapMessage(wire, &kind, &body)) continue;
    if (kind == MessageKind::kOperationRequest) {
      OperationRequest req;
      if (!OperationRequest::DecodeFrom(&body, &req)) continue;
      OperationReply reply = dc_->Perform(req);
      // A crashed DC sends nothing — its reply dies with it.
      if (reply.status.IsCrashed()) continue;
      std::string out;
      reply.EncodeTo(&out);
      reply_ch_.Send(WrapMessage(MessageKind::kOperationReply, out));
    } else if (kind == MessageKind::kOperationBatch) {
      OperationBatch batch;
      if (!OperationBatch::DecodeFrom(&body, &batch)) continue;
      std::vector<OperationReply> replies = dc_->PerformBatch(batch.ops);
      // A crashed DC sends nothing per op; suppress those replies and the
      // whole message if none survive.
      OperationBatchReply batch_reply;
      for (auto& reply : replies) {
        if (reply.status.IsCrashed()) continue;
        batch_reply.replies.push_back(std::move(reply));
      }
      if (batch_reply.replies.empty()) continue;
      std::string out;
      batch_reply.EncodeTo(&out);
      reply_ch_.Send(WrapMessage(MessageKind::kOperationBatchReply, out));
    } else if (kind == MessageKind::kScanStreamRequest) {
      ScanStreamRequest req;
      if (!ScanStreamRequest::DecodeFrom(&body, &req)) continue;
      dc_->PerformScanStream(
          req, [this](const ScanStreamChunk& chunk) { EmitChunk(chunk); });
    } else if (kind == MessageKind::kScanCredit) {
      ScanCreditRequest req;
      if (!ScanCreditRequest::DecodeFrom(&body, &req)) continue;
      dc_->ScanCredit(
          req, [this](const ScanStreamChunk& chunk) { EmitChunk(chunk); });
    } else if (kind == MessageKind::kControlRequest) {
      ControlRequest req;
      if (!ControlRequest::DecodeFrom(&body, &req)) continue;
      ControlReply reply = dc_->Control(req);
      if (reply.status.IsCrashed()) continue;
      std::string out;
      reply.EncodeTo(&out);
      reply_ch_.Send(WrapMessage(MessageKind::kControlReply, out));
    }
  }
}

void ChannelTransport::DispatchLoop() {
  std::string wire;
  while (!stop_.load()) {
    if (!reply_ch_.Receive(&wire, 20)) continue;
    MessageKind kind;
    Slice body;
    if (!UnwrapMessage(wire, &kind, &body)) continue;
    if (kind == MessageKind::kOperationReply) {
      OperationReply reply;
      if (!OperationReply::DecodeFrom(&body, &reply)) continue;
      if (client_.op_handler()) client_.op_handler()(reply);
    } else if (kind == MessageKind::kOperationBatchReply) {
      OperationBatchReply batch;
      if (!OperationBatchReply::DecodeFrom(&body, &batch)) continue;
      if (client_.op_handler()) {
        for (const auto& reply : batch.replies) client_.op_handler()(reply);
      }
    } else if (kind == MessageKind::kScanStreamChunk) {
      ScanStreamChunk chunk;
      if (!ScanStreamChunk::DecodeFrom(&body, &chunk)) continue;
      // Off the reply channel: release its queued-byte accounting. (A
      // duplicated chunk under-counts here and a dropped one never
      // arrives, so the residual can drift on lossy channels — the
      // high-water mark stays a conservative upper bound.)
      const uint64_t size = wire.size();
      uint64_t queued = queued_scan_bytes_.load();
      while (queued > 0 &&
             !queued_scan_bytes_.compare_exchange_weak(
                 queued, queued >= size ? queued - size : 0)) {
      }
      scan_chunks_.fetch_add(1);
      scan_rows_carried_.fetch_add(chunk.keys.size());
      if (client_.scan_chunk_handler()) client_.scan_chunk_handler()(chunk);
    } else if (kind == MessageKind::kControlReply) {
      ControlReply reply;
      if (!ControlReply::DecodeFrom(&body, &reply)) continue;
      if (client_.control_handler()) client_.control_handler()(reply);
    }
  }
}

}  // namespace untx
