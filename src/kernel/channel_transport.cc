#include "kernel/channel_transport.h"

#include <algorithm>
#include <chrono>

namespace untx {

ChannelTransport::ChannelTransport(DataComponent* dc,
                                   ChannelTransportOptions options)
    : dc_(dc),
      options_(options),
      request_ch_(options.request_channel),
      reply_ch_(options.reply_channel),
      client_(this),
      coalescer_(options.coalesce(),
                 [this](const std::vector<OperationRequest>& batch) {
                   client_.SendOperationBatch(batch);
                 }) {}

ChannelTransport::~ChannelTransport() { Stop(); }

void ChannelTransport::Start() {
  stop_.store(false);
  for (int i = 0; i < options_.server_threads; ++i) {
    servers_.emplace_back([this] { ServerLoop(); });
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  coalescer_.Start();
}

void ChannelTransport::Stop() {
  stop_.store(true);
  coalescer_.Stop();
  for (auto& t : servers_) {
    if (t.joinable()) t.join();
  }
  servers_.clear();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ChannelTransport::OnDcCrash() { request_ch_.Clear(); }

void ChannelTransport::Client::SendOperation(const OperationRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->op_messages_.fetch_add(1);
  transport_->ops_carried_.fetch_add(1);
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kOperationRequest, body));
}

void ChannelTransport::Client::SendOperationBatch(
    const std::vector<OperationRequest>& reqs) {
  if (reqs.empty()) return;
  OperationBatch batch;
  batch.ops = reqs;
  std::string body;
  batch.EncodeTo(&body);
  transport_->op_messages_.fetch_add(1);
  transport_->ops_carried_.fetch_add(reqs.size());
  uint64_t promotes = 0;
  for (const auto& req : reqs) {
    if (req.op == OpType::kPromoteVersion) ++promotes;
  }
  if (promotes > 0) {
    transport_->promote_messages_.fetch_add(1);
    transport_->promote_ops_carried_.fetch_add(promotes);
  }
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kOperationBatch, body));
}

void ChannelTransport::Client::SendScanStream(const ScanStreamRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->scan_messages_.fetch_add(1);
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kScanStreamRequest, body));
}

void ChannelTransport::Client::SendScanCredit(const ScanCreditRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->scan_credit_messages_.fetch_add(1);
  transport_->request_ch_.Send(WrapMessage(MessageKind::kScanCredit, body));
}

void ChannelTransport::Client::QueueOperation(const OperationRequest& req) {
  transport_->coalescer_.Queue(req);
}

void ChannelTransport::Client::FlushOperations() {
  transport_->coalescer_.Flush();
}

void ChannelTransport::Client::SendControl(const ControlRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  transport_->request_ch_.Send(
      WrapMessage(MessageKind::kControlRequest, body));
}

void ChannelTransport::EmitChunk(const ScanStreamChunk& chunk) {
  // A crashed DC sends nothing; the TC restarts the stream.
  if (chunk.status.IsCrashed()) return;
  std::string out;
  chunk.EncodeTo(&out);
  std::string wire = WrapMessage(MessageKind::kScanStreamChunk, out);
  // Account the chunk's residency in the reply channel: incremented at
  // send, decremented when the dispatcher pulls it off. The high-water
  // mark is the memory bound the credit window is supposed to enforce.
  const uint64_t size = wire.size();
  const uint64_t now = queued_scan_bytes_.fetch_add(size) + size;
  uint64_t seen = max_queued_scan_bytes_.load();
  while (now > seen &&
         !max_queued_scan_bytes_.compare_exchange_weak(seen, now)) {
  }
  reply_ch_.Send(std::move(wire));
}

void ChannelTransport::ServerLoop() {
  std::string wire;
  while (!stop_.load()) {
    if (!request_ch_.Receive(&wire, 20)) continue;
    MessageKind kind;
    Slice body;
    if (!UnwrapMessage(wire, &kind, &body)) continue;
    // One consistent backend per message (Retarget may swap it between
    // messages during a failover).
    DataComponent* dc = dc_.load();
    if (kind == MessageKind::kOperationRequest) {
      OperationRequest req;
      if (!OperationRequest::DecodeFrom(&body, &req)) continue;
      OperationReply reply = dc->Perform(req);
      // A crashed DC sends nothing — its reply dies with it.
      if (reply.status.IsCrashed()) continue;
      std::string out;
      reply.EncodeTo(&out);
      reply_ch_.Send(WrapMessage(MessageKind::kOperationReply, out));
    } else if (kind == MessageKind::kOperationBatch) {
      OperationBatch batch;
      if (!OperationBatch::DecodeFrom(&body, &batch)) continue;
      std::vector<OperationReply> replies = dc->PerformBatch(batch.ops);
      // A crashed DC sends nothing per op; suppress those replies and the
      // whole message if none survive.
      OperationBatchReply batch_reply;
      for (auto& reply : replies) {
        if (reply.status.IsCrashed()) continue;
        batch_reply.replies.push_back(std::move(reply));
      }
      if (batch_reply.replies.empty()) continue;
      std::string out;
      batch_reply.EncodeTo(&out);
      reply_ch_.Send(WrapMessage(MessageKind::kOperationBatchReply, out));
    } else if (kind == MessageKind::kScanStreamRequest) {
      ScanStreamRequest req;
      if (!ScanStreamRequest::DecodeFrom(&body, &req)) continue;
      dc->PerformScanStream(
          req, [this](const ScanStreamChunk& chunk) { EmitChunk(chunk); });
    } else if (kind == MessageKind::kScanCredit) {
      ScanCreditRequest req;
      if (!ScanCreditRequest::DecodeFrom(&body, &req)) continue;
      dc->ScanCredit(
          req, [this](const ScanStreamChunk& chunk) { EmitChunk(chunk); });
    } else if (kind == MessageKind::kControlRequest) {
      ControlRequest req;
      if (!ControlRequest::DecodeFrom(&body, &req)) continue;
      ControlReply reply = dc->Control(req);
      if (reply.status.IsCrashed()) continue;
      std::string out;
      reply.EncodeTo(&out);
      reply_ch_.Send(WrapMessage(MessageKind::kControlReply, out));
    }
  }
}

void ChannelTransport::DispatchLoop() {
  std::string wire;
  while (!stop_.load()) {
    if (!reply_ch_.Receive(&wire, 20)) continue;
    MessageKind kind;
    Slice body;
    if (!UnwrapMessage(wire, &kind, &body)) continue;
    if (kind == MessageKind::kOperationReply) {
      OperationReply reply;
      if (!OperationReply::DecodeFrom(&body, &reply)) continue;
      if (client_.op_handler()) client_.op_handler()(reply);
    } else if (kind == MessageKind::kOperationBatchReply) {
      OperationBatchReply batch;
      if (!OperationBatchReply::DecodeFrom(&body, &batch)) continue;
      if (client_.op_handler()) {
        for (const auto& reply : batch.replies) client_.op_handler()(reply);
      }
    } else if (kind == MessageKind::kScanStreamChunk) {
      ScanStreamChunk chunk;
      if (!ScanStreamChunk::DecodeFrom(&body, &chunk)) continue;
      // Off the reply channel: release its queued-byte accounting. (A
      // duplicated chunk under-counts here and a dropped one never
      // arrives, so the residual can drift on lossy channels — the
      // high-water mark stays a conservative upper bound.)
      const uint64_t size = wire.size();
      uint64_t queued = queued_scan_bytes_.load();
      while (queued > 0 &&
             !queued_scan_bytes_.compare_exchange_weak(
                 queued, queued >= size ? queued - size : 0)) {
      }
      scan_chunks_.fetch_add(1);
      scan_rows_carried_.fetch_add(chunk.keys.size());
      if (client_.scan_chunk_handler()) client_.scan_chunk_handler()(chunk);
    } else if (kind == MessageKind::kControlReply) {
      ControlReply reply;
      if (!ControlReply::DecodeFrom(&body, &reply)) continue;
      if (client_.control_handler()) client_.control_handler()(reply);
    }
  }
}

}  // namespace untx
