// ChannelTransport: the "cloud" binding of the TC:DC interface — a pair
// of simulated message channels plus DC server threads and a TC-side
// reply dispatcher. Message loss, duplication and reordering on either
// channel exercise the §4.2 interaction contracts end to end.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dc/data_component.h"
#include "net/sim_channel.h"
#include "tc/dc_client.h"

namespace untx {

struct ChannelTransportOptions {
  ChannelOptions request_channel;
  ChannelOptions reply_channel;
  int server_threads = 2;
  /// Queued (pipelined) operations coalesce into one kOperationBatch
  /// message; a queue reaching this size flushes immediately.
  uint32_t max_batch_ops = 64;
  /// Upper bound on how long a queued op may sit before the background
  /// flusher pushes it out, for callers that forget an explicit flush.
  uint32_t coalesce_window_us = 200;
};

/// Owns the channels and threads binding one TC to one DC.
class ChannelTransport {
 public:
  ChannelTransport(DataComponent* dc, ChannelTransportOptions options);
  ~ChannelTransport();

  DcClient* client() { return &client_; }

  void Start();
  void Stop();

  /// Drops all in-flight requests (the DC crashed; its inbox dies with
  /// it). Replies already on the wire still arrive.
  void OnDcCrash();

  const SimChannel& request_channel() const { return request_ch_; }
  const SimChannel& reply_channel() const { return reply_ch_; }

  /// Operation-carrying request messages sent (kOperationRequest +
  /// kOperationBatch) — excludes control traffic, so msgs/txn is
  /// comparable against ops/txn.
  uint64_t op_messages() const { return op_messages_.load(); }
  /// Operations those messages carried; batching makes this exceed
  /// op_messages().
  uint64_t ops_carried() const { return ops_carried_.load(); }

 private:
  class Client : public DcClient {
   public:
    explicit Client(ChannelTransport* transport) : transport_(transport) {}
    void SendOperation(const OperationRequest& req) override;
    void SendControl(const ControlRequest& req) override;
    void SendOperationBatch(
        const std::vector<OperationRequest>& reqs) override;
    /// Coalesces queued ops bound for this DC into one channel message.
    void QueueOperation(const OperationRequest& req) override;
    void FlushOperations() override;
    DcClient::OpReplyHandler op_handler() const { return op_handler_; }
    DcClient::ControlReplyHandler control_handler() const {
      return control_handler_;
    }
    bool HasPending() const;

   private:
    ChannelTransport* transport_;
    mutable std::mutex pending_mu_;
    std::vector<OperationRequest> pending_;
  };

  void ServerLoop();
  void DispatchLoop();
  void FlushLoop();

  DataComponent* dc_;
  ChannelTransportOptions options_;
  SimChannel request_ch_;
  SimChannel reply_ch_;
  Client client_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> servers_;
  std::thread dispatcher_;
  /// Wakes the flusher when the first op lands in an empty queue; the
  /// flusher then sleeps one coalescing window and flushes. Idle costs
  /// nothing.
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::thread flusher_;
  std::atomic<uint64_t> op_messages_{0};
  std::atomic<uint64_t> ops_carried_{0};
};

}  // namespace untx
