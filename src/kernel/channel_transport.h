// ChannelTransport: the "cloud" binding of the TC:DC interface — a pair
// of simulated message channels plus DC server threads and a TC-side
// reply dispatcher. Message loss, duplication and reordering on either
// channel exercise the §4.2 interaction contracts end to end.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dc/data_component.h"
#include "kernel/op_coalescer.h"
#include "net/sim_channel.h"
#include "tc/dc_client.h"

namespace untx {

struct ChannelTransportOptions {
  ChannelOptions request_channel;
  ChannelOptions reply_channel;
  int server_threads = 2;
  /// Queued (pipelined) operations coalesce into one kOperationBatch
  /// message; a queue reaching this size flushes immediately.
  uint32_t max_batch_ops = 64;
  CoalescePolicy coalesce_policy = CoalescePolicy::kAdaptive;
  /// kFixedWindow: how long a queued op sits before the background
  /// flusher pushes it out, for callers that forget an explicit flush.
  uint32_t coalesce_window_us = 200;
  /// kAdaptive: flush once no new op has been queued for this long.
  uint32_t coalesce_idle_us = 25;
  /// kAdaptive: hard latency target — the oldest queued op never waits
  /// longer than this for the batch to fill.
  uint32_t coalesce_max_delay_us = 250;

  /// The shared-coalescer view of the knobs above.
  CoalesceOptions coalesce() const {
    CoalesceOptions c;
    c.max_batch_ops = max_batch_ops;
    c.policy = coalesce_policy;
    c.window_us = coalesce_window_us;
    c.idle_us = coalesce_idle_us;
    c.max_delay_us = coalesce_max_delay_us;
    return c;
  }
};

/// Owns the channels and threads binding one TC to one DC.
class ChannelTransport {
 public:
  ChannelTransport(DataComponent* dc, ChannelTransportOptions options);
  ~ChannelTransport();

  DcClient* client() { return &client_; }

  void Start();
  void Stop();

  /// Drops all in-flight requests (the DC crashed; its inbox dies with
  /// it). Replies already on the wire still arrive.
  void OnDcCrash();

  /// Points the server side at a different DC — hot-standby failover:
  /// the binding (channels, threads, stats) survives, the backend swaps.
  void Retarget(DataComponent* dc) { dc_.store(dc); }

  const SimChannel& request_channel() const { return request_ch_; }
  const SimChannel& reply_channel() const { return reply_ch_; }

  /// Operation-carrying request messages sent (kOperationRequest +
  /// kOperationBatch) — excludes control traffic, so msgs/txn is
  /// comparable against ops/txn.
  uint64_t op_messages() const { return op_messages_.load(); }
  /// Operations those messages carried; batching makes this exceed
  /// op_messages().
  uint64_t ops_carried() const { return ops_carried_.load(); }
  /// Scan-stream request messages sent — ONE per stream (attempt), where
  /// the blocking protocol paid one request per window.
  uint64_t scan_messages() const { return scan_messages_.load(); }
  /// Chunk replies received and the rows they carried.
  uint64_t scan_chunks() const { return scan_chunks_.load(); }
  uint64_t scan_rows_carried() const { return scan_rows_carried_.load(); }
  /// kScanCredit messages sent (flow-control replenish, validated-window
  /// rewinds and close notices).
  uint64_t scan_credit_messages() const {
    return scan_credit_messages_.load();
  }
  /// High-water mark of scan-chunk bytes resident in the reply channel —
  /// the memory a scan can pin there. Credited streams bound this by
  /// credit_chunks × chunk size no matter how large the scan; eager
  /// streams let it grow with the whole result. (A dropped chunk reply
  /// is never decremented, so the mark is conservative on lossy
  /// channels.)
  uint64_t max_queued_scan_bytes() const {
    return max_queued_scan_bytes_.load();
  }
  /// Request messages carrying kPromoteVersion ops and the promote ops
  /// they carried — a K-key versioned commit should cost
  /// ceil(K / promote_batch_ops) messages, not K.
  uint64_t promote_messages() const { return promote_messages_.load(); }
  uint64_t promote_ops_carried() const {
    return promote_ops_carried_.load();
  }
  /// Adaptive-coalescing flush reasons (diagnostics for tuning).
  uint64_t coalesce_idle_flushes() const { return coalescer_.idle_flushes(); }
  uint64_t coalesce_deadline_flushes() const {
    return coalescer_.deadline_flushes();
  }

  const ChannelTransportOptions& options() const { return options_; }

 private:
  class Client : public DcClient {
   public:
    explicit Client(ChannelTransport* transport) : transport_(transport) {}
    void SendOperation(const OperationRequest& req) override;
    void SendControl(const ControlRequest& req) override;
    void SendOperationBatch(
        const std::vector<OperationRequest>& reqs) override;
    void SendScanStream(const ScanStreamRequest& req) override;
    void SendScanCredit(const ScanCreditRequest& req) override;
    /// Coalesces queued ops bound for this DC into one channel message.
    void QueueOperation(const OperationRequest& req) override;
    void FlushOperations() override;
    DcClient::OpReplyHandler op_handler() const { return op_handler_; }
    DcClient::ControlReplyHandler control_handler() const {
      return control_handler_;
    }
    DcClient::ScanChunkHandler scan_chunk_handler() const {
      return scan_chunk_handler_;
    }

   private:
    ChannelTransport* transport_;
  };

  void ServerLoop();
  void DispatchLoop();
  /// Sends one scan chunk on the reply channel with queued-byte
  /// accounting (suppressed for a crashed DC).
  void EmitChunk(const ScanStreamChunk& chunk);

  /// Atomic: server threads read it per message; Retarget (failover)
  /// swaps it while they run.
  std::atomic<DataComponent*> dc_;
  ChannelTransportOptions options_;
  SimChannel request_ch_;
  SimChannel reply_ch_;
  Client client_;
  /// Client-side batch coalescing, shared with the socket transport.
  OpCoalescer coalescer_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> servers_;
  std::thread dispatcher_;
  std::atomic<uint64_t> op_messages_{0};
  std::atomic<uint64_t> ops_carried_{0};
  std::atomic<uint64_t> scan_messages_{0};
  std::atomic<uint64_t> scan_chunks_{0};
  std::atomic<uint64_t> scan_rows_carried_{0};
  std::atomic<uint64_t> scan_credit_messages_{0};
  std::atomic<uint64_t> queued_scan_bytes_{0};
  std::atomic<uint64_t> max_queued_scan_bytes_{0};
  std::atomic<uint64_t> promote_messages_{0};
  std::atomic<uint64_t> promote_ops_carried_{0};
};

}  // namespace untx
