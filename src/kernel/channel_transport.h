// ChannelTransport: the "cloud" binding of the TC:DC interface — a pair
// of simulated message channels plus DC server threads and a TC-side
// reply dispatcher. Message loss, duplication and reordering on either
// channel exercise the §4.2 interaction contracts end to end.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "dc/data_component.h"
#include "net/sim_channel.h"
#include "tc/dc_client.h"

namespace untx {

struct ChannelTransportOptions {
  ChannelOptions request_channel;
  ChannelOptions reply_channel;
  int server_threads = 2;
};

/// Owns the channels and threads binding one TC to one DC.
class ChannelTransport {
 public:
  ChannelTransport(DataComponent* dc, ChannelTransportOptions options);
  ~ChannelTransport();

  DcClient* client() { return &client_; }

  void Start();
  void Stop();

  /// Drops all in-flight requests (the DC crashed; its inbox dies with
  /// it). Replies already on the wire still arrive.
  void OnDcCrash();

  const SimChannel& request_channel() const { return request_ch_; }
  const SimChannel& reply_channel() const { return reply_ch_; }

 private:
  class Client : public DcClient {
   public:
    explicit Client(ChannelTransport* transport) : transport_(transport) {}
    void SendOperation(const OperationRequest& req) override;
    void SendControl(const ControlRequest& req) override;
    DcClient::OpReplyHandler op_handler() const { return op_handler_; }
    DcClient::ControlReplyHandler control_handler() const {
      return control_handler_;
    }

   private:
    ChannelTransport* transport_;
  };

  void ServerLoop();
  void DispatchLoop();

  DataComponent* dc_;
  ChannelTransportOptions options_;
  SimChannel request_ch_;
  SimChannel reply_ch_;
  Client client_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> servers_;
  std::thread dispatcher_;
};

}  // namespace untx
