#include "kernel/replication_link.h"

#include <chrono>
#include <vector>

#include "dc/data_component.h"
#include "dc/dc_redo_log.h"

namespace untx {

ReplicationLink::ReplicationLink(DataComponent* primary,
                                 DataComponent* replica,
                                 ReplicationLinkOptions options)
    : primary_(primary), replica_(replica), options_(options) {}

ReplicationLink::~ReplicationLink() { Stop(); }

void ReplicationLink::Start() {
  if (!stop_.exchange(false)) return;  // already running
  DcRedoLog* plog = primary_->redo_log();
  plog->set_replication_enabled(true);
  plog->RecordReplicaAck(options_.replica_id, replica_->redo_log()->end());
  thread_ = std::thread([this] { Run(); });
}

void ReplicationLink::Stop() {
  if (stop_.exchange(true)) return;
  if (thread_.joinable()) thread_.join();
  primary_->redo_log()->ForgetReplica(options_.replica_id);
}

void ReplicationLink::Run() {
  DcRedoLog* plog = primary_->redo_log();
  while (!stop_.load()) {
    const uint64_t from = replica_->redo_log()->end() + 1;
    std::vector<RedoEntry> entries;
    const uint64_t first =
        plog->ReadFrom(from, options_.batch_max, &entries);
    if (first == 0 || entries.empty()) {
      // Caught up: park until the primary forces something new (bounded
      // so Stop() is noticed).
      plog->WaitDurable(from - 1, options_.poll_ms);
      continue;
    }
    ReplicaEntriesMessage msg;
    msg.from_rlsn = first;
    msg.primary_end = plog->end();
    msg.entries = std::move(entries);
    Status s = replica_->ApplyReplicated(msg);
    if (!s.ok()) {
      // Transient (replica busy / mid-recovery): retry from its current
      // end after a beat. A real gap self-heals the same way because
      // `from` is re-derived from the replica each iteration.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry_ms));
      continue;
    }
    batches_shipped_.fetch_add(1);
    plog->RecordReplicaAck(options_.replica_id,
                           replica_->redo_log()->end());
  }
}

}  // namespace untx
