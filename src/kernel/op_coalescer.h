// OpCoalescer: the client-side operation-coalescing queue shared by every
// wire transport (ChannelTransport, SocketTransport). Queued (pipelined)
// operations bound for one DC fold into a single kOperationBatch message;
// a background flusher bounds how long a queued op can wait when the
// caller never awaits. Extracted so the channel and socket clients cannot
// drift in batching behavior — msgs/txn comparisons across transports
// measure the wire, not the queue.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "dc/dc_api.h"

namespace untx {

/// When the background flusher pushes a coalescing queue onto the wire.
enum class CoalescePolicy : uint8_t {
  /// Legacy: sleep a fixed coalesce_window_us after the queue becomes
  /// non-empty, then flush — load-oblivious.
  kFixedWindow = 0,
  /// Flush when the submitters go quiescent (no new op for
  /// coalesce_idle_us) or when the oldest queued op has waited
  /// coalesce_max_delay_us (the latency target), whichever first. Under
  /// load batches fill naturally; a lone op ships almost immediately.
  kAdaptive = 1,
};

struct CoalesceOptions {
  /// A queue reaching this size flushes immediately.
  uint32_t max_batch_ops = 64;
  CoalescePolicy policy = CoalescePolicy::kAdaptive;
  /// kFixedWindow: how long a queued op sits before the background
  /// flusher pushes it out, for callers that forget an explicit flush.
  uint32_t window_us = 200;
  /// kAdaptive: flush once no new op has been queued for this long.
  uint32_t idle_us = 25;
  /// kAdaptive: hard latency target — the oldest queued op never waits
  /// longer than this for the batch to fill.
  uint32_t max_delay_us = 250;
};

class OpCoalescer {
 public:
  using FlushFn = std::function<void(const std::vector<OperationRequest>&)>;

  /// `flush` ships one batch on the wire; called from the queueing
  /// thread (full queue, explicit Flush) or from the flusher thread.
  OpCoalescer(CoalesceOptions options, FlushFn flush);
  ~OpCoalescer();

  OpCoalescer(const OpCoalescer&) = delete;
  OpCoalescer& operator=(const OpCoalescer&) = delete;

  /// Starts the background flusher. Queue/Flush work without it, but
  /// un-awaited queued ops then wait for the next explicit flush.
  void Start();
  void Stop();

  void Queue(const OperationRequest& req);
  /// Ships whatever is queued, immediately. No-op on an empty queue.
  void Flush();
  bool HasPending() const;

  /// Adaptive-coalescing flush reasons (diagnostics for tuning).
  uint64_t idle_flushes() const { return idle_flushes_.load(); }
  uint64_t deadline_flushes() const { return deadline_flushes_.load(); }

 private:
  void FlushLoop();
  /// Queue age snapshot for the adaptive flusher: false if empty.
  bool PendingAges(std::chrono::steady_clock::time_point* oldest,
                   std::chrono::steady_clock::time_point* newest) const;

  const CoalesceOptions options_;
  const FlushFn flush_;
  mutable std::mutex pending_mu_;
  std::vector<OperationRequest> pending_;
  std::chrono::steady_clock::time_point oldest_enqueue_;
  std::chrono::steady_clock::time_point last_enqueue_;
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::thread flusher_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> idle_flushes_{0};
  std::atomic<uint64_t> deadline_flushes_{0};
};

}  // namespace untx
