// UnbundledDb: wiring facade for one-TC deployments of the unbundled
// kernel — one TransactionComponent, one or more DataComponents, bound by
// either the direct (multi-core) or the channel (cloud) transport. Multi-
// TC deployments (Figure 2) are assembled by cloud::Deployment instead.
//
// Also the fault-injection surface: CrashDc / RecoverDc, CrashTc /
// RestartTc drive the §5.3 partial-failure protocols end to end.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "dc/data_component.h"
#include "kernel/channel_transport.h"
#include "storage/stable_store.h"
#include "tc/dc_client.h"
#include "tc/transaction_component.h"

namespace untx {

enum class TransportKind : uint8_t { kDirect = 0, kChannel = 1 };

struct UnbundledDbOptions {
  int num_dcs = 1;
  TcOptions tc;
  DataComponentOptions dc;
  StableStoreOptions store;
  TransportKind transport = TransportKind::kDirect;
  ChannelTransportOptions channel;
  /// Routes tables/keys to DCs; default: table_id % num_dcs.
  Router router;
};

class UnbundledDb {
 public:
  /// Builds and starts a fresh deployment (formats the stores).
  static StatusOr<std::unique_ptr<UnbundledDb>> Open(
      UnbundledDbOptions options);

  ~UnbundledDb();

  TransactionComponent* tc() { return tc_.get(); }
  DataComponent* dc(int i = 0) { return dcs_[i].get(); }
  StableStore* store(int i = 0) { return stores_[i].get(); }
  int num_dcs() const { return static_cast<int>(dcs_.size()); }

  // -- Convenience transaction API ---------------------------------------------
  StatusOr<TxnId> Begin() { return tc_->Begin(); }
  Status Commit(TxnId txn) { return tc_->Commit(txn); }
  Status Abort(TxnId txn) { return tc_->Abort(txn); }
  Status CreateTable(TableId table) { return tc_->CreateTable(table); }

  // -- Fault injection -----------------------------------------------------------
  /// Kills DC i: its cache, reply caches and volatile DC-log tail vanish;
  /// in-flight requests to it are dropped.
  void CrashDc(int i);
  /// Revives DC i: local SMO recovery first (§5.2.2), then the TC
  /// redo-resends from the RSSP (§5.3.2 "DC Failure").
  Status RecoverDc(int i);

  /// Kills the TC: volatile log tail, transaction state and locks vanish.
  void CrashTc();
  /// TC restart per §5.3.2 "TC Failure".
  Status RestartTc();

 private:
  UnbundledDb() = default;

  UnbundledDbOptions options_;
  std::vector<std::unique_ptr<StableStore>> stores_;
  std::vector<std::unique_ptr<DataComponent>> dcs_;
  std::vector<std::unique_ptr<DirectDcClient>> direct_clients_;
  std::vector<std::unique_ptr<ChannelTransport>> channel_transports_;
  std::unique_ptr<TransactionComponent> tc_;
};

/// RAII transaction helper: aborts on destruction unless committed.
class Txn {
 public:
  explicit Txn(TransactionComponent* tc) : tc_(tc) {
    StatusOr<TxnId> id = tc_->Begin();
    if (id.ok()) {
      id_ = *id;
    } else {
      status_ = id.status();
    }
  }
  ~Txn() {
    if (id_ != kInvalidTxnId && !finished_) tc_->Abort(id_);
  }
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  bool ok() const { return status_.ok(); }
  TxnId id() const { return id_; }

  Status Read(TableId table, const std::string& key, std::string* value) {
    return tc_->Read(id_, table, key, value);
  }
  Status Insert(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Insert(id_, table, key, value);
  }
  Status Update(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Update(id_, table, key, value);
  }
  Status Delete(TableId table, const std::string& key) {
    return tc_->Delete(id_, table, key);
  }
  Status Upsert(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Upsert(id_, table, key, value);
  }
  Status Scan(TableId table, const std::string& from, const std::string& to,
              uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out) {
    return tc_->Scan(id_, table, from, to, limit, out);
  }

  Status Commit() {
    finished_ = true;
    return tc_->Commit(id_);
  }
  Status Abort() {
    finished_ = true;
    return tc_->Abort(id_);
  }

 private:
  TransactionComponent* tc_;
  TxnId id_ = kInvalidTxnId;
  Status status_;
  bool finished_ = false;
};

}  // namespace untx
