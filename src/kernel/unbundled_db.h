// UnbundledDb: wiring facade for one-TC deployments of the unbundled
// kernel — one TransactionComponent, one or more DataComponents, bound by
// either the direct (multi-core) or the channel (cloud) transport. Multi-
// TC deployments (Figure 2) are assembled by cloud::Deployment instead.
//
// Also the fault-injection surface: CrashDc / RecoverDc, CrashTc /
// RestartTc drive the §5.3 partial-failure protocols end to end.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "dc/data_component.h"
#include "kernel/channel_transport.h"
#include "storage/stable_store.h"
#include "tc/dc_client.h"
#include "tc/transaction_component.h"

namespace untx {

enum class TransportKind : uint8_t { kDirect = 0, kChannel = 1 };

struct UnbundledDbOptions {
  int num_dcs = 1;
  TcOptions tc;
  DataComponentOptions dc;
  StableStoreOptions store;
  TransportKind transport = TransportKind::kDirect;
  ChannelTransportOptions channel;
  /// Routes tables/keys to DCs; default: table_id % num_dcs.
  Router router;
};

class UnbundledDb {
 public:
  /// Builds and starts a fresh deployment (formats the stores).
  static StatusOr<std::unique_ptr<UnbundledDb>> Open(
      UnbundledDbOptions options);

  ~UnbundledDb();

  TransactionComponent* tc() { return tc_.get(); }
  /// nullptr for an out-of-range index.
  DataComponent* dc(int i = 0) {
    if (i < 0 || i >= static_cast<int>(dcs_.size())) return nullptr;
    return dcs_[i].get();
  }
  /// nullptr for an out-of-range index.
  StableStore* store(int i = 0) {
    if (i < 0 || i >= static_cast<int>(stores_.size())) return nullptr;
    return stores_[i].get();
  }
  /// The channel binding for DC i; nullptr on the direct transport or for
  /// an out-of-range index. Exposes channel stats (messages sent, drops)
  /// to benches and tests.
  ChannelTransport* channel(int i = 0) {
    if (i < 0 || i >= static_cast<int>(channel_transports_.size())) {
      return nullptr;
    }
    return channel_transports_[i].get();
  }
  int num_dcs() const { return static_cast<int>(dcs_.size()); }

  // -- Convenience transaction API ---------------------------------------------
  StatusOr<TxnId> Begin() { return tc_->Begin(); }
  Status Commit(TxnId txn) { return tc_->Commit(txn); }
  Status Abort(TxnId txn) { return tc_->Abort(txn); }
  Status CreateTable(TableId table) { return tc_->CreateTable(table); }

  // -- Fault injection -----------------------------------------------------------
  /// Kills DC i: its cache, reply caches and volatile DC-log tail vanish;
  /// in-flight requests to it are dropped.
  void CrashDc(int i);
  /// Revives DC i: local SMO recovery first (§5.2.2), then the TC
  /// redo-resends from the RSSP (§5.3.2 "DC Failure").
  Status RecoverDc(int i);

  /// Kills the TC: volatile log tail, transaction state and locks vanish.
  void CrashTc();
  /// TC restart per §5.3.2 "TC Failure".
  Status RestartTc();

 private:
  UnbundledDb() = default;

  UnbundledDbOptions options_;
  std::vector<std::unique_ptr<StableStore>> stores_;
  std::vector<std::unique_ptr<DataComponent>> dcs_;
  std::vector<std::unique_ptr<DirectDcClient>> direct_clients_;
  std::vector<std::unique_ptr<ChannelTransport>> channel_transports_;
  std::unique_ptr<TransactionComponent> tc_;
};

/// RAII transaction helper: aborts on destruction unless committed.
class Txn {
 public:
  explicit Txn(TransactionComponent* tc) : tc_(tc) {
    StatusOr<TxnId> id = tc_->Begin();
    if (id.ok()) {
      id_ = *id;
    } else {
      status_ = id.status();
    }
  }
  ~Txn() {
    if (id_ != kInvalidTxnId && !finished_) tc_->Abort(id_);
  }
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  bool ok() const { return status_.ok(); }
  TxnId id() const { return id_; }

  Status Read(TableId table, const std::string& key, std::string* value) {
    return tc_->Read(id_, table, key, value);
  }
  Status Insert(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Insert(id_, table, key, value);
  }
  Status Update(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Update(id_, table, key, value);
  }
  Status Delete(TableId table, const std::string& key) {
    return tc_->Delete(id_, table, key);
  }
  Status Upsert(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Upsert(id_, table, key, value);
  }
  Status Scan(TableId table, const std::string& from, const std::string& to,
              uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out) {
    return tc_->Scan(id_, table, from, to, limit, out);
  }

  // -- Pipelined asynchronous surface -----------------------------------------
  // Submit without waiting; ops bound for the same DC coalesce into one
  // channel message. Await one handle, or Flush() the whole pipeline.
  // Commit/Abort flush implicitly.
  OpHandle ReadAsync(TableId table, const std::string& key) {
    return tc_->SubmitRead(id_, table, key);
  }
  OpHandle InsertAsync(TableId table, const std::string& key,
                       const std::string& value) {
    return tc_->SubmitInsert(id_, table, key, value);
  }
  OpHandle UpdateAsync(TableId table, const std::string& key,
                       const std::string& value) {
    return tc_->SubmitUpdate(id_, table, key, value);
  }
  OpHandle DeleteAsync(TableId table, const std::string& key) {
    return tc_->SubmitDelete(id_, table, key);
  }
  OpHandle UpsertAsync(TableId table, const std::string& key,
                       const std::string& value) {
    return tc_->SubmitUpsert(id_, table, key, value);
  }
  Status Await(OpHandle* handle, std::string* value = nullptr) {
    return tc_->Await(handle, value);
  }
  /// Drains every submitted-but-unawaited op of this transaction.
  Status Flush() { return tc_->AwaitAll(id_); }

  /// Pipelined multi-point-read: submits every key, then awaits them all
  /// — one batched round trip per DC instead of one per key. `values` is
  /// key-aligned; a missing key leaves its slot empty and NotFound is
  /// returned (after all keys were awaited).
  Status MultiRead(TableId table, const std::vector<std::string>& keys,
                   std::vector<std::string>* values) {
    values->assign(keys.size(), "");
    std::vector<OpHandle> handles;
    handles.reserve(keys.size());
    for (const auto& key : keys) {
      handles.push_back(tc_->SubmitRead(id_, table, key));
    }
    Status first;
    for (size_t i = 0; i < handles.size(); ++i) {
      Status s = tc_->Await(&handles[i], &(*values)[i]);
      if (first.ok() && !s.ok()) first = s;
    }
    return first;
  }

  Status Commit() {
    Status s = tc_->Commit(id_);
    // A failed commit (e.g. a pipelined op's error surfacing at the
    // drain) leaves the transaction open — keep the RAII abort armed so
    // its locks are released on scope exit.
    if (s.ok() || s.IsNotFound()) finished_ = true;
    return s;
  }
  Status Abort() {
    finished_ = true;
    return tc_->Abort(id_);
  }

 private:
  TransactionComponent* tc_;
  TxnId id_ = kInvalidTxnId;
  Status status_;
  bool finished_ = false;
};

}  // namespace untx
