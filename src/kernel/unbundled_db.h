// UnbundledDb: the one-TC convenience facade over the unified Cluster
// wiring (kernel/cluster.h) — one TransactionComponent, one or more
// DataComponents, bound by either the direct (multi-core) or the channel
// (cloud) transport. Multi-TC topologies (Figure 2) use Cluster itself.
//
// Also the fault-injection surface: CrashDc / RecoverDc, CrashTc /
// RestartTc drive the §5.3 partial-failure protocols end to end.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "kernel/cluster.h"

namespace untx {

struct UnbundledDbOptions {
  int num_dcs = 1;
  TcOptions tc;
  DataComponentOptions dc;
  StableStoreOptions store;
  TransportKind transport = TransportKind::kDirect;
  ChannelTransportOptions channel;
  /// Routes tables/keys to DCs; default: table_id % num_dcs.
  Router router;
};

class UnbundledDb {
 public:
  /// Builds and starts a fresh deployment (formats the stores).
  static StatusOr<std::unique_ptr<UnbundledDb>> Open(
      UnbundledDbOptions options);

  TransactionComponent* tc() { return cluster_->tc(0); }
  /// nullptr for an out-of-range index.
  DataComponent* dc(int i = 0) { return cluster_->dc(i); }
  /// nullptr for an out-of-range index.
  StableStore* store(int i = 0) { return cluster_->store(i); }
  /// The channel binding for DC i; nullptr on the direct transport or for
  /// an out-of-range index. Exposes channel stats (messages sent, drops)
  /// to benches and tests.
  ChannelTransport* channel(int i = 0) { return cluster_->channel(0, i); }
  int num_dcs() const { return cluster_->num_dcs(); }
  /// The underlying topology (to grow a 1-TC deployment's tooling into
  /// the multi-TC API without rewiring).
  Cluster* cluster() { return cluster_.get(); }

  // -- Convenience transaction API ---------------------------------------------
  StatusOr<TxnId> Begin() { return tc()->Begin(); }
  Status Commit(TxnId txn) { return tc()->Commit(txn); }
  Status Abort(TxnId txn) { return tc()->Abort(txn); }
  Status CreateTable(TableId table) { return tc()->CreateTable(table); }

  // -- Fault injection -----------------------------------------------------------
  /// Kills DC i: its cache, reply caches and volatile DC-log tail vanish;
  /// in-flight requests to it are dropped.
  void CrashDc(int i) { cluster_->CrashDc(i); }
  /// Revives DC i: local SMO recovery first (§5.2.2), then the TC
  /// redo-resends from the RSSP (§5.3.2 "DC Failure").
  Status RecoverDc(int i) { return cluster_->RecoverDc(i); }

  /// Kills the TC: volatile log tail, transaction state and locks vanish.
  void CrashTc() { cluster_->CrashTc(0); }
  /// TC restart per §5.3.2 "TC Failure".
  Status RestartTc() { return cluster_->RestartTc(0); }

 private:
  UnbundledDb() = default;

  std::unique_ptr<Cluster> cluster_;
};

/// RAII transaction helper: aborts on destruction unless committed.
class Txn {
 public:
  explicit Txn(TransactionComponent* tc) : tc_(tc) {
    StatusOr<TxnId> id = tc_->Begin();
    if (id.ok()) {
      id_ = *id;
    } else {
      status_ = id.status();
    }
  }
  ~Txn() {
    if (id_ != kInvalidTxnId && !finished_) tc_->Abort(id_);
  }
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  bool ok() const { return status_.ok(); }
  TxnId id() const { return id_; }

  Status Read(TableId table, const std::string& key, std::string* value) {
    return tc_->Read(id_, table, key, value);
  }
  Status Insert(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Insert(id_, table, key, value);
  }
  Status Update(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Update(id_, table, key, value);
  }
  Status Delete(TableId table, const std::string& key) {
    return tc_->Delete(id_, table, key);
  }
  Status Upsert(TableId table, const std::string& key,
                const std::string& value) {
    return tc_->Upsert(id_, table, key, value);
  }
  Status Scan(TableId table, const std::string& from, const std::string& to,
              uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out) {
    return tc_->Scan(id_, table, from, to, limit, out);
  }

  // -- Pipelined asynchronous surface -----------------------------------------
  // Submit without waiting; ops bound for the same DC coalesce into one
  // channel message. Await one handle, or Flush() the whole pipeline.
  // Commit/Abort flush implicitly.
  OpHandle ReadAsync(TableId table, const std::string& key) {
    return tc_->SubmitRead(id_, table, key);
  }
  OpHandle InsertAsync(TableId table, const std::string& key,
                       const std::string& value) {
    return tc_->SubmitInsert(id_, table, key, value);
  }
  OpHandle UpdateAsync(TableId table, const std::string& key,
                       const std::string& value) {
    return tc_->SubmitUpdate(id_, table, key, value);
  }
  OpHandle DeleteAsync(TableId table, const std::string& key) {
    return tc_->SubmitDelete(id_, table, key);
  }
  OpHandle UpsertAsync(TableId table, const std::string& key,
                       const std::string& value) {
    return tc_->SubmitUpsert(id_, table, key, value);
  }
  Status Await(OpHandle* handle, std::string* value = nullptr) {
    return tc_->Await(handle, value);
  }
  /// Drains every submitted-but-unawaited op of this transaction.
  Status Flush() { return tc_->AwaitAll(id_); }

  /// Pipelined multi-point-read: submits every key, then awaits them all
  /// — one batched round trip per DC instead of one per key. `values` is
  /// key-aligned; a missing key leaves its slot empty and NotFound is
  /// returned (after all keys were awaited).
  Status MultiRead(TableId table, const std::vector<std::string>& keys,
                   std::vector<std::string>* values) {
    values->assign(keys.size(), "");
    std::vector<OpHandle> handles;
    handles.reserve(keys.size());
    for (const auto& key : keys) {
      handles.push_back(tc_->SubmitRead(id_, table, key));
    }
    Status first;
    for (size_t i = 0; i < handles.size(); ++i) {
      Status s = tc_->Await(&handles[i], &(*values)[i]);
      if (first.ok() && !s.ok()) first = s;
    }
    return first;
  }

  Status Commit() {
    Status s = tc_->Commit(id_);
    // A failed commit (e.g. a pipelined op's error surfacing at the
    // drain) leaves the transaction open — keep the RAII abort armed so
    // its locks are released on scope exit.
    if (s.ok() || s.IsNotFound()) finished_ = true;
    return s;
  }
  Status Abort() {
    finished_ = true;
    return tc_->Abort(id_);
  }

 private:
  TransactionComponent* tc_;
  TxnId id_ = kInvalidTxnId;
  Status status_;
  bool finished_ = false;
};

}  // namespace untx
