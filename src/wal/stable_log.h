// StableLog: simulated append-only log with an explicit volatile tail.
//
// Used for both the TC's logical transaction log and each DC's
// system-transaction log. Records are opaque byte strings; the record's
// index (0-based, dense) is its position. Durability model:
//
//   [0, stable_end)            on "disk", survives Crash()
//   [stable_end, total_end)    volatile buffer, lost by Crash()
//
// The TC assigns an operation's LSN *before* dispatching it (§5.1), but
// can only complete the record's undo image once the DC replies. The log
// therefore supports Reserve() (claim an index now) + Seal() (provide the
// payload later). Force() advances stable_end through the longest sealed
// prefix — an unsealed record blocks durability of everything after it,
// which is exactly the paper's low-water-mark structure: everything at or
// below the force point has completed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace untx {

struct StableLogOptions {
  /// Simulated device latency charged to every Force() that makes at
  /// least one record stable (models an fsync). Microseconds.
  uint32_t force_delay_us = 0;
  /// Non-empty: back the stable prefix with this file so it survives the
  /// PROCESS dying (the separate-process deployment's SIGKILL harness),
  /// not just the simulated Crash(). Records append at Force() time —
  /// the volatile tail is never written, so the on-disk prefix IS the
  /// durability contract. An existing file is loaded on construction
  /// (a torn tail entry is discarded); empty = in-memory only.
  std::string path;
};

class StableLog {
 public:
  explicit StableLog(StableLogOptions options = {});
  ~StableLog();

  /// Claims the next index with no payload yet. The record is volatile
  /// and unsealed; Force() cannot pass it.
  uint64_t Reserve();

  /// Provides the payload for a reserved index and seals it.
  void Seal(uint64_t index, std::string payload);

  /// Reserve + Seal in one step.
  uint64_t Append(std::string payload);

  /// Makes the longest sealed prefix stable. Returns new stable_end.
  uint64_t Force();

  /// Forces at least through `index` if sealed; returns new stable_end.
  uint64_t ForceTo(uint64_t index);

  /// Blocks until stable_end > index (i.e. record `index` is durable) or
  /// timeout. Used by group commit. Returns false on timeout.
  bool WaitStableThrough(uint64_t index, uint32_t timeout_ms);

  /// Index one past the last stable record.
  uint64_t stable_end() const;
  /// Index one past the last reserved record.
  uint64_t total_end() const;
  /// Longest sealed prefix end (== what Force() would make stable).
  uint64_t sealed_prefix_end() const;

  /// Reads a record. Only stable or sealed-volatile records are readable;
  /// reading an unsealed reservation returns kBusy.
  Status ReadAt(uint64_t index, std::string* out) const;

  /// Drops the volatile tail (sealed or not). This is the component crash.
  void Crash();

  /// Wipes the log back to empty — records, indices, and the backing
  /// file. Unlike Crash(), stable records are discarded too. Used when
  /// the owning component rebuilds itself from scratch (replica reset).
  void Clear();

  /// Logically discards records before `index` (checkpoint truncation).
  /// Indices of surviving records are unchanged.
  void TruncatePrefix(uint64_t index);
  uint64_t truncated_prefix() const;

  // Stats for the logging benches (C9) and log-volume accounting (C4).
  uint64_t bytes_appended() const;
  uint64_t force_count() const;

 private:
  struct Record {
    std::string payload;
    bool sealed = false;
  };

  /// Replays an existing backing file into records_/base_/stable_end_,
  /// truncating a torn tail. Called from the constructor only.
  void LoadFile();
  /// Appends records [from, to) (already sealed) to the backing file and
  /// flushes to the kernel. Caller holds mu_.
  void PersistRangeLocked(uint64_t from, uint64_t to);
  /// Appends a truncate-prefix marker. Caller holds mu_.
  void PersistTruncateLocked(uint64_t index);

  StableLogOptions options_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable stable_cv_;
  std::vector<Record> records_;  // records_[i] is log index base_ + i
  uint64_t base_ = 0;            // first retained index
  uint64_t stable_end_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t force_count_ = 0;
};

}  // namespace untx
