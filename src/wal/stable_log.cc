#include "wal/stable_log.h"

#include <cassert>
#include <chrono>
#include <thread>

namespace untx {

StableLog::StableLog(StableLogOptions options) : options_(options) {}

uint64_t StableLog::Reserve() {
  std::lock_guard<std::mutex> guard(mu_);
  records_.emplace_back();
  return base_ + records_.size() - 1;
}

void StableLog::Seal(uint64_t index, std::string payload) {
  std::lock_guard<std::mutex> guard(mu_);
  assert(index >= base_ && index < base_ + records_.size());
  Record& rec = records_[index - base_];
  assert(!rec.sealed);
  bytes_appended_ += payload.size();
  rec.payload = std::move(payload);
  rec.sealed = true;
}

uint64_t StableLog::Append(std::string payload) {
  std::lock_guard<std::mutex> guard(mu_);
  bytes_appended_ += payload.size();
  records_.emplace_back();
  records_.back().payload = std::move(payload);
  records_.back().sealed = true;
  return base_ + records_.size() - 1;
}

uint64_t StableLog::Force() { return ForceTo(~0ull); }

uint64_t StableLog::ForceTo(uint64_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t target = stable_end_;
  const uint64_t total = base_ + records_.size();
  while (target < total && records_[target - base_].sealed &&
         target <= index) {
    ++target;
  }
  // Also extend past `index` opportunistically? No: stop at the sealed
  // prefix; `index` is only a lower bound on desire, the prefix rule is
  // what limits us.
  if (target > stable_end_) {
    ++force_count_;
    if (options_.force_delay_us > 0) {
      lock.unlock();
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.force_delay_us));
      lock.lock();
      // Re-derive target under the lock; more records may have sealed.
      const uint64_t total2 = base_ + records_.size();
      while (target < total2 && records_[target - base_].sealed) {
        ++target;
      }
    }
    if (target > stable_end_) stable_end_ = target;
    stable_cv_.notify_all();
  }
  return stable_end_;
}

bool StableLog::WaitStableThrough(uint64_t index, uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return stable_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [this, index] { return stable_end_ > index; });
}

uint64_t StableLog::stable_end() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stable_end_;
}

uint64_t StableLog::total_end() const {
  std::lock_guard<std::mutex> guard(mu_);
  return base_ + records_.size();
}

uint64_t StableLog::sealed_prefix_end() const {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t end = stable_end_;
  const uint64_t total = base_ + records_.size();
  while (end < total && records_[end - base_].sealed) ++end;
  return end;
}

Status StableLog::ReadAt(uint64_t index, std::string* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (index < base_) {
    return Status::NotFound("log record truncated");
  }
  if (index >= base_ + records_.size()) {
    return Status::NotFound("log record beyond end");
  }
  const Record& rec = records_[index - base_];
  if (!rec.sealed) {
    return Status::Busy("log record not sealed");
  }
  *out = rec.payload;
  return Status::OK();
}

void StableLog::Crash() {
  std::lock_guard<std::mutex> guard(mu_);
  assert(stable_end_ >= base_);
  records_.resize(stable_end_ - base_);
}

void StableLog::TruncatePrefix(uint64_t index) {
  std::lock_guard<std::mutex> guard(mu_);
  if (index <= base_) return;
  // Never truncate into the volatile region.
  if (index > stable_end_) index = stable_end_;
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<ptrdiff_t>(index - base_));
  base_ = index;
}

uint64_t StableLog::truncated_prefix() const {
  std::lock_guard<std::mutex> guard(mu_);
  return base_;
}

uint64_t StableLog::bytes_appended() const {
  std::lock_guard<std::mutex> guard(mu_);
  return bytes_appended_;
}

uint64_t StableLog::force_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return force_count_;
}

}  // namespace untx
