#include "wal/stable_log.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "common/coding.h"
#include "common/crc32c.h"

namespace untx {

namespace {
// Backing-file entry tags. Each entry:
//   kRecordTag:   [u8 tag][varint len][payload][fixed32 masked crc(payload)]
//   kTruncateTag: [u8 tag][varint new_base]
constexpr char kRecordTag = 1;
constexpr char kTruncateTag = 2;
}  // namespace

StableLog::StableLog(StableLogOptions options) : options_(std::move(options)) {
  if (!options_.path.empty()) LoadFile();
}

StableLog::~StableLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void StableLog::LoadFile() {
  std::string blob;
  if (std::FILE* in = std::fopen(options_.path.c_str(), "rb")) {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) blob.append(buf, n);
    std::fclose(in);
  }
  Slice input(blob);
  size_t good = 0;  // offset past the last fully-parsed entry
  while (!input.empty()) {
    const char tag = input[0];
    Slice attempt(input.data() + 1, input.size() - 1);
    if (tag == kRecordTag) {
      uint64_t len = 0;
      uint32_t masked = 0;
      // Overflow-safe bounds check: a corrupt varint near 2^64 would
      // wrap `len + 4`, pass a naive check, and crash the recovery on a
      // giant allocation instead of truncating the torn tail.
      if (!GetVarint64(&attempt, &len) || len > attempt.size() ||
          attempt.size() - len < 4) {
        break;
      }
      std::string payload(attempt.data(), len);
      attempt.remove_prefix(len);
      GetFixed32(&attempt, &masked);
      if (crc32c::Unmask(masked) !=
          crc32c::Value(payload.data(), payload.size())) {
        break;  // torn or corrupt tail entry: everything after is suspect
      }
      records_.emplace_back();
      records_.back().payload = std::move(payload);
      records_.back().sealed = true;
    } else if (tag == kTruncateTag) {
      uint64_t new_base = 0;
      if (!GetVarint64(&attempt, &new_base)) break;
      const uint64_t loaded_end = base_ + records_.size();
      if (new_base > base_ && new_base <= loaded_end) {
        records_.erase(records_.begin(),
                       records_.begin() +
                           static_cast<ptrdiff_t>(new_base - base_));
        base_ = new_base;
      }
    } else {
      break;
    }
    good = blob.size() - attempt.size();
    input = attempt;
  }
  stable_end_ = base_ + records_.size();  // everything on disk is stable
  if (good < blob.size()) {
    // Torn tail: rewrite just the parsed prefix so appends start clean.
    file_ = std::fopen(options_.path.c_str(), "wb");
    if (file_ != nullptr && good > 0) {
      std::fwrite(blob.data(), 1, good, file_);
      std::fflush(file_);
    }
  } else {
    file_ = std::fopen(options_.path.c_str(), "ab");
  }
}

void StableLog::PersistRangeLocked(uint64_t from, uint64_t to) {
  if (file_ == nullptr) return;
  std::string out;
  for (uint64_t i = from; i < to; ++i) {
    const std::string& payload = records_[i - base_].payload;
    out.push_back(kRecordTag);
    PutVarint64(&out, payload.size());
    out.append(payload);
    PutFixed32(&out,
               crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  }
  if (!out.empty()) {
    std::fwrite(out.data(), 1, out.size(), file_);
    // fflush pushes into the kernel: enough to survive SIGKILL of this
    // process (the harness's failure model). Machine-crash durability
    // would add fsync; the simulated force_delay_us stands in for it.
    std::fflush(file_);
  }
}

void StableLog::PersistTruncateLocked(uint64_t index) {
  if (file_ == nullptr) return;
  std::string out;
  out.push_back(kTruncateTag);
  PutVarint64(&out, index);
  std::fwrite(out.data(), 1, out.size(), file_);
  std::fflush(file_);
}

uint64_t StableLog::Reserve() {
  std::lock_guard<std::mutex> guard(mu_);
  records_.emplace_back();
  return base_ + records_.size() - 1;
}

void StableLog::Seal(uint64_t index, std::string payload) {
  std::lock_guard<std::mutex> guard(mu_);
  assert(index >= base_ && index < base_ + records_.size());
  Record& rec = records_[index - base_];
  assert(!rec.sealed);
  bytes_appended_ += payload.size();
  rec.payload = std::move(payload);
  rec.sealed = true;
}

uint64_t StableLog::Append(std::string payload) {
  std::lock_guard<std::mutex> guard(mu_);
  bytes_appended_ += payload.size();
  records_.emplace_back();
  records_.back().payload = std::move(payload);
  records_.back().sealed = true;
  return base_ + records_.size() - 1;
}

uint64_t StableLog::Force() { return ForceTo(~0ull); }

uint64_t StableLog::ForceTo(uint64_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t target = stable_end_;
  const uint64_t total = base_ + records_.size();
  while (target < total && records_[target - base_].sealed &&
         target <= index) {
    ++target;
  }
  // Also extend past `index` opportunistically? No: stop at the sealed
  // prefix; `index` is only a lower bound on desire, the prefix rule is
  // what limits us.
  if (target > stable_end_) {
    ++force_count_;
    if (options_.force_delay_us > 0) {
      lock.unlock();
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.force_delay_us));
      lock.lock();
      // Re-derive target under the lock; more records may have sealed.
      const uint64_t total2 = base_ + records_.size();
      while (target < total2 && records_[target - base_].sealed) {
        ++target;
      }
    }
    if (target > stable_end_) {
      PersistRangeLocked(stable_end_, target);
      stable_end_ = target;
    }
    stable_cv_.notify_all();
  }
  return stable_end_;
}

bool StableLog::WaitStableThrough(uint64_t index, uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return stable_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [this, index] { return stable_end_ > index; });
}

uint64_t StableLog::stable_end() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stable_end_;
}

uint64_t StableLog::total_end() const {
  std::lock_guard<std::mutex> guard(mu_);
  return base_ + records_.size();
}

uint64_t StableLog::sealed_prefix_end() const {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t end = stable_end_;
  const uint64_t total = base_ + records_.size();
  while (end < total && records_[end - base_].sealed) ++end;
  return end;
}

Status StableLog::ReadAt(uint64_t index, std::string* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (index < base_) {
    return Status::NotFound("log record truncated");
  }
  if (index >= base_ + records_.size()) {
    return Status::NotFound("log record beyond end");
  }
  const Record& rec = records_[index - base_];
  if (!rec.sealed) {
    return Status::Busy("log record not sealed");
  }
  *out = rec.payload;
  return Status::OK();
}

void StableLog::Crash() {
  std::lock_guard<std::mutex> guard(mu_);
  assert(stable_end_ >= base_);
  records_.resize(stable_end_ - base_);
}

void StableLog::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  records_.clear();
  base_ = 0;
  stable_end_ = 0;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = std::fopen(options_.path.c_str(), "wb");
  }
}

void StableLog::TruncatePrefix(uint64_t index) {
  std::lock_guard<std::mutex> guard(mu_);
  if (index <= base_) return;
  // Never truncate into the volatile region.
  if (index > stable_end_) index = stable_end_;
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<ptrdiff_t>(index - base_));
  base_ = index;
  PersistTruncateLocked(index);
}

uint64_t StableLog::truncated_prefix() const {
  std::lock_guard<std::mutex> guard(mu_);
  return base_;
}

uint64_t StableLog::bytes_appended() const {
  std::lock_guard<std::mutex> guard(mu_);
  return bytes_appended_;
}

uint64_t StableLog::force_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return force_count_;
}

}  // namespace untx
