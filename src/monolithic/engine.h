// MonolithicEngine: the integrated "traditional storage kernel" baseline
// the paper compares against (§7: "compared to a traditional storage
// kernel with integrated transaction management, our unbundling approach
// inevitably has longer code paths").
//
// Classic ARIES-style bundle in one address space:
//  * lock manager (shared with the TC implementation — same 2PL code);
//  * physiological WAL: each record names the page it touches; LSNs are
//    assigned while the page latch is held, so the traditional
//    "Operation LSN <= page LSN" idempotence test works;
//  * buffer pool with the WAL rule (flush only up to the stable log);
//  * B-tree access method with structure modifications as redo-only
//    nested top actions (physical page images).
//
// Failure model: fail-together. Crash() loses the buffer pool and the
// volatile log tail at once; Recover() runs analysis / redo-repeat-
// history / undo-losers with CLRs.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "common/types.h"
#include "storage/slotted_page.h"
#include "storage/stable_store.h"
#include "tc/lock_manager.h"
#include "wal/stable_log.h"

namespace untx {
namespace monolithic {

struct EngineOptions {
  LockManagerOptions locks;
  StableLogOptions log;
  bool group_commit = false;
  uint32_t group_commit_interval_us = 200;
};

struct EngineStats {
  uint64_t ops = 0;
  uint64_t splits = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t recoveries = 0;
};

class MonolithicEngine {
 public:
  MonolithicEngine(StableStore* store, EngineOptions options = {});
  ~MonolithicEngine();

  Status Initialize();
  Status CreateTable(TableId table);

  StatusOr<TxnId> Begin();
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  Status Read(TxnId txn, TableId table, const std::string& key,
              std::string* value);
  Status Insert(TxnId txn, TableId table, const std::string& key,
                const std::string& value);
  Status Update(TxnId txn, TableId table, const std::string& key,
                const std::string& value);
  Status Delete(TxnId txn, TableId table, const std::string& key);
  Status Scan(TxnId txn, TableId table, const std::string& from,
              const std::string& to, uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Fail-together crash: buffer pool and volatile log tail vanish.
  void Crash();
  Status Recover();

  Status FlushAll();

  const EngineStats& stats() const { return stats_; }
  StableLog* log() { return &log_; }
  LockManager* locks() { return locks_.get(); }

 private:
  enum class RecType : uint8_t {
    kBegin = 1,
    kCommit = 2,
    kAbort = 3,
    kInsert = 4,
    kUpdate = 5,
    kDelete = 6,
    kClr = 7,
    kPageImage = 8,  // redo-only nested top action (SMO)
  };

  struct LogRec {
    RecType type;
    TxnId txn = 0;
    PageId pid = kInvalidPageId;
    TableId table = kInvalidTableId;
    std::string key;
    std::string value;   // redo
    std::string before;  // undo
    bool has_before = false;
    std::string Encode() const;
    static bool Decode(Slice in, LogRec* out);
  };

  struct Frame {
    PageId pid;
    std::vector<char> data;
    bool dirty = false;
  };

  struct UndoEntry {
    RecType type;
    TableId table;
    std::string key;
    std::string before;
    bool has_before;
  };

  SlottedPage PageOf(Frame* f) {
    return SlottedPage(f->data.data(), store_->page_size(),
                       store_->trailer_capacity());
  }

  StatusOr<Frame*> GetFrame(PageId pid);
  Frame* CreateFrame(PageId pid);
  Status FlushFrameLocked(Frame* f);

  StatusOr<PageId> RootOf(TableId table);
  /// Descends to the leaf owning key (single-threaded under mu_).
  StatusOr<Frame*> Leaf(TableId table, const std::string& key);
  Status SplitLeaf(TableId table, const std::string& key);

  uint64_t AppendRec(const LogRec& rec);
  Status ApplyWrite(TxnId txn, RecType type, TableId table,
                    const std::string& key, const std::string& value,
                    std::string* before_out, bool* had_before);

  StableStore* store_;
  EngineOptions options_;
  StableLog log_;
  std::unique_ptr<LockManager> locks_;

  /// One big kernel latch: the monolithic engine executes record
  /// operations inside the page under a single critical section — short
  /// code path, no messages (the architectural contrast with the TC/DC).
  std::mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::map<TableId, PageId> roots_;
  PageId meta_pid_ = kInvalidPageId;
  std::unordered_map<TxnId, std::vector<UndoEntry>> txns_;
  TxnId next_txn_ = 1;

  EngineStats stats_;
};

}  // namespace monolithic
}  // namespace untx
