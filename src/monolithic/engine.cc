#include "monolithic/engine.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "dc/record_format.h"
#include "storage/page.h"

namespace untx {
namespace monolithic {

namespace {

std::string CatalogEntry(TableId table, PageId root) {
  std::string out;
  PutFixed32(&out, table);
  PutFixed32(&out, root);
  return out;
}

uint16_t LeafLowerBound(const SlottedPage& page, Slice key, bool* found) {
  uint16_t lo = 0, hi = page.slot_count();
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    Slice k;
    LeafRecord::DecodeKey(page.PayloadAt(mid), &k);
    if (k.compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = false;
  if (lo < page.slot_count()) {
    Slice k;
    LeafRecord::DecodeKey(page.PayloadAt(lo), &k);
    *found = (k == key);
  }
  return lo;
}

uint16_t ChildIdx(const SlottedPage& page, Slice key) {
  uint16_t lo = 0, hi = page.slot_count();
  while (lo + 1 < hi) {
    const uint16_t mid = (lo + hi) / 2;
    Slice sep;
    InternalEntry::DecodeKey(page.PayloadAt(mid), &sep);
    if (sep.compare(key) <= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

std::string MonolithicEngine::LogRec::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(type));
  PutVarint64(&out, txn);
  PutVarint32(&out, pid);
  PutVarint32(&out, table);
  PutLengthPrefixedSlice(&out, key);
  PutLengthPrefixedSlice(&out, value);
  PutLengthPrefixedSlice(&out, before);
  out.push_back(has_before ? 1 : 0);
  return out;
}

bool MonolithicEngine::LogRec::Decode(Slice in, LogRec* out) {
  if (in.empty()) return false;
  out->type = static_cast<RecType>(in[0]);
  in.remove_prefix(1);
  uint64_t txn;
  uint32_t pid, table;
  Slice key, value, before;
  if (!GetVarint64(&in, &txn)) return false;
  if (!GetVarint32(&in, &pid)) return false;
  if (!GetVarint32(&in, &table)) return false;
  if (!GetLengthPrefixedSlice(&in, &key)) return false;
  if (!GetLengthPrefixedSlice(&in, &value)) return false;
  if (!GetLengthPrefixedSlice(&in, &before)) return false;
  if (in.empty()) return false;
  out->txn = txn;
  out->pid = pid;
  out->table = table;
  out->key = key.ToString();
  out->value = value.ToString();
  out->before = before.ToString();
  out->has_before = in[0] != 0;
  return true;
}

MonolithicEngine::MonolithicEngine(StableStore* store, EngineOptions options)
    : store_(store),
      options_(options),
      log_(options.log),
      locks_(std::make_unique<LockManager>(options.locks)) {}

MonolithicEngine::~MonolithicEngine() = default;

uint64_t MonolithicEngine::AppendRec(const LogRec& rec) {
  return log_.Append(rec.Encode());
}

Status MonolithicEngine::Initialize() {
  std::lock_guard<std::mutex> guard(mu_);
  meta_pid_ = store_->Allocate();
  Frame* meta = CreateFrame(meta_pid_);
  PageOf(meta).Init(meta_pid_, PageType::kMeta, 0, kInvalidTableId);
  return FlushFrameLocked(meta);
}

StatusOr<MonolithicEngine::Frame*> MonolithicEngine::GetFrame(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) return it->second.get();
  auto frame = std::make_unique<Frame>();
  frame->pid = pid;
  frame->data.resize(store_->page_size());
  Status s = store_->Read(pid, frame->data.data());
  if (!s.ok()) return s;
  Frame* raw = frame.get();
  frames_[pid] = std::move(frame);
  return raw;
}

MonolithicEngine::Frame* MonolithicEngine::CreateFrame(PageId pid) {
  auto frame = std::make_unique<Frame>();
  frame->pid = pid;
  frame->data.assign(store_->page_size(), 0);
  frame->dirty = true;
  Frame* raw = frame.get();
  frames_[pid] = std::move(frame);
  return raw;
}

Status MonolithicEngine::FlushFrameLocked(Frame* f) {
  // WAL: the page's LSN must be on the stable log.
  const DLsn page_lsn = PageOf(f).dlsn();
  if (page_lsn > log_.stable_end()) {
    log_.ForceTo(page_lsn == 0 ? 0 : page_lsn - 1);
  }
  Status s = store_->Write(f->pid, f->data.data());
  if (s.ok()) f->dirty = false;
  return s;
}

Status MonolithicEngine::CreateTable(TableId table) {
  std::lock_guard<std::mutex> guard(mu_);
  if (roots_.count(table) > 0) return Status::AlreadyExists("table");
  const PageId root = store_->Allocate();
  Frame* leaf = CreateFrame(root);
  PageOf(leaf).Init(root, PageType::kLeaf, 0, table);
  StatusOr<Frame*> meta = GetFrame(meta_pid_);
  if (!meta.ok()) return meta.status();
  SlottedPage meta_page = PageOf(*meta);
  // Keep catalog sorted by table id.
  uint16_t slot = 0;
  while (slot < meta_page.slot_count()) {
    Slice payload = meta_page.PayloadAt(slot);
    const uint32_t t = DecodeFixed32(payload.data());
    if (t >= table) break;
    ++slot;
  }
  Status s = meta_page.InsertAt(slot, CatalogEntry(table, root));
  if (!s.ok()) return s;
  (*meta)->dirty = true;
  roots_[table] = root;

  // Redo-only physical images (nested top action).
  LogRec rec;
  rec.type = RecType::kPageImage;
  rec.pid = root;
  rec.value.assign(leaf->data.data(), leaf->data.size());
  const uint64_t l1 = AppendRec(rec);
  PageOf(leaf).set_dlsn(l1 + 1);
  rec.pid = meta_pid_;
  rec.value.assign((*meta)->data.data(), (*meta)->data.size());
  const uint64_t l2 = AppendRec(rec);
  meta_page.set_dlsn(l2 + 1);
  // DDL is auto-committed: force so the table survives a crash.
  log_.ForceTo(l2);
  return Status::OK();
}

StatusOr<PageId> MonolithicEngine::RootOf(TableId table) {
  auto it = roots_.find(table);
  if (it == roots_.end()) return Status::NotFound("table");
  return it->second;
}

StatusOr<MonolithicEngine::Frame*> MonolithicEngine::Leaf(
    TableId table, const std::string& key) {
  StatusOr<PageId> root = RootOf(table);
  if (!root.ok()) return root.status();
  PageId pid = *root;
  for (;;) {
    StatusOr<Frame*> frame = GetFrame(pid);
    if (!frame.ok()) return frame.status();
    SlottedPage page = PageOf(*frame);
    if (page.type() == PageType::kLeaf) return *frame;
    InternalEntry e;
    InternalEntry::Decode(page.PayloadAt(ChildIdx(page, key)), &e);
    pid = e.child;
  }
}

Status MonolithicEngine::SplitLeaf(TableId table, const std::string& key) {
  ++stats_.splits;
  // Collect the root-to-leaf path.
  StatusOr<PageId> root = RootOf(table);
  if (!root.ok()) return root.status();
  std::vector<std::pair<Frame*, uint16_t>> path;
  PageId pid = *root;
  Frame* leaf = nullptr;
  for (;;) {
    StatusOr<Frame*> frame = GetFrame(pid);
    if (!frame.ok()) return frame.status();
    SlottedPage page = PageOf(*frame);
    if (page.type() == PageType::kLeaf) {
      leaf = *frame;
      break;
    }
    const uint16_t idx = ChildIdx(page, key);
    InternalEntry e;
    InternalEntry::Decode(page.PayloadAt(idx), &e);
    path.push_back({*frame, idx});
    pid = e.child;
  }
  SlottedPage leaf_page = PageOf(leaf);
  const uint16_t count = leaf_page.slot_count();
  if (count < 2) return Status::InvalidArgument("cannot split");
  const uint16_t split = count / 2;
  Slice split_key;
  LeafRecord::DecodeKey(leaf_page.PayloadAt(split), &split_key);
  std::string sep = split_key.ToString();

  const PageId new_pid = store_->Allocate();
  Frame* new_leaf = CreateFrame(new_pid);
  SlottedPage new_page = PageOf(new_leaf);
  new_page.Init(new_pid, PageType::kLeaf, 0, table);
  for (uint16_t i = split; i < count; ++i) {
    Status s = new_page.InsertAt(i - split, leaf_page.PayloadAt(i));
    assert(s.ok());
    (void)s;
  }
  while (leaf_page.slot_count() > split) {
    leaf_page.RemoveAt(leaf_page.slot_count() - 1);
  }
  new_page.set_next_page(leaf_page.next_page());
  leaf_page.set_next_page(new_pid);
  leaf->dirty = true;

  // Propagate separator (possibly splitting internals).
  std::string cur_sep = sep;
  PageId cur_child = new_pid;
  std::vector<Frame*> touched = {leaf, new_leaf};
  int level = static_cast<int>(path.size()) - 1;
  for (;;) {
    if (level < 0) {
      const PageId old_root = path.empty() ? leaf->pid : path.front().first->pid;
      const uint16_t old_level =
          path.empty() ? 0 : PageOf(path.front().first).level();
      const PageId new_root = store_->Allocate();
      Frame* root_frame = CreateFrame(new_root);
      SlottedPage root_page = PageOf(root_frame);
      root_page.Init(new_root, PageType::kInternal,
                     static_cast<uint16_t>(old_level + 1), table);
      root_page.InsertAt(0, InternalEntry{"", old_root}.Encode());
      root_page.InsertAt(1, InternalEntry{cur_sep, cur_child}.Encode());
      touched.push_back(root_frame);
      // Update catalog.
      StatusOr<Frame*> meta = GetFrame(meta_pid_);
      if (!meta.ok()) return meta.status();
      SlottedPage meta_page = PageOf(*meta);
      for (uint16_t i = 0; i < meta_page.slot_count(); ++i) {
        Slice payload = meta_page.PayloadAt(i);
        if (DecodeFixed32(payload.data()) == table) {
          meta_page.ReplaceAt(i, CatalogEntry(table, new_root));
          break;
        }
      }
      (*meta)->dirty = true;
      touched.push_back(*meta);
      roots_[table] = new_root;
      break;
    }
    Frame* parent = path[level].first;
    SlottedPage parent_page = PageOf(parent);
    Status s = parent_page.InsertAt(path[level].second + 1,
                                    InternalEntry{cur_sep, cur_child}.Encode());
    if (s.ok()) {
      parent->dirty = true;
      touched.push_back(parent);
      break;
    }
    // Split the internal node.
    const uint16_t pcount = parent_page.slot_count();
    const uint16_t mid = pcount / 2;
    InternalEntry mid_entry;
    InternalEntry::Decode(parent_page.PayloadAt(mid), &mid_entry);
    const std::string promoted = mid_entry.separator;
    const PageId new_int_pid = store_->Allocate();
    Frame* new_int = CreateFrame(new_int_pid);
    SlottedPage new_int_page = PageOf(new_int);
    new_int_page.Init(new_int_pid, PageType::kInternal, parent_page.level(),
                      table);
    new_int_page.InsertAt(0, InternalEntry{"", mid_entry.child}.Encode());
    for (uint16_t i = mid + 1; i < pcount; ++i) {
      new_int_page.InsertAt(new_int_page.slot_count(),
                            parent_page.PayloadAt(i));
    }
    while (parent_page.slot_count() > mid) {
      parent_page.RemoveAt(parent_page.slot_count() - 1);
    }
    SlottedPage* target =
        cur_sep < promoted ? &parent_page : &new_int_page;
    target->InsertAt(ChildIdx(*target, cur_sep) + 1,
                     InternalEntry{cur_sep, cur_child}.Encode());
    parent->dirty = true;
    touched.push_back(parent);
    touched.push_back(new_int);
    cur_sep = promoted;
    cur_child = new_int_pid;
    --level;
  }

  // Log physical images (redo-only nested top action) and stamp LSNs.
  for (Frame* f : touched) {
    LogRec rec;
    rec.type = RecType::kPageImage;
    rec.pid = f->pid;
    rec.value.assign(f->data.data(), f->data.size());
    const uint64_t idx = AppendRec(rec);
    PageOf(f).set_dlsn(idx + 1);
    f->dirty = true;
  }
  return Status::OK();
}

StatusOr<TxnId> MonolithicEngine::Begin() {
  std::lock_guard<std::mutex> guard(mu_);
  const TxnId id = next_txn_++;
  txns_[id] = {};
  LogRec rec;
  rec.type = RecType::kBegin;
  rec.txn = id;
  AppendRec(rec);
  return id;
}

Status MonolithicEngine::ApplyWrite(TxnId txn, RecType type, TableId table,
                                    const std::string& key,
                                    const std::string& value,
                                    std::string* before_out,
                                    bool* had_before) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    StatusOr<Frame*> leaf = Leaf(table, key);
    if (!leaf.ok()) return leaf.status();
    SlottedPage page = PageOf(*leaf);
    bool found;
    const uint16_t slot = LeafLowerBound(page, key, &found);

    LeafRecord rec;
    if (found) LeafRecord::Decode(page.PayloadAt(slot), &rec);
    Status s;
    switch (type) {
      case RecType::kInsert:
        if (found) return Status::AlreadyExists("key");
        {
          LeafRecord fresh;
          fresh.key = key;
          fresh.value = value;
          s = page.InsertAt(slot, fresh.Encode());
        }
        *had_before = false;
        break;
      case RecType::kUpdate:
        if (!found) return Status::NotFound("key");
        *before_out = rec.value;
        *had_before = true;
        rec.value = value;
        s = page.ReplaceAt(slot, rec.Encode());
        break;
      case RecType::kDelete:
        if (!found) return Status::NotFound("key");
        *before_out = rec.value;
        *had_before = true;
        page.RemoveAt(slot);
        s = Status::OK();
        break;
      default:
        return Status::InvalidArgument("bad write type");
    }
    if (s.IsBusy()) {
      Status split = SplitLeaf(table, key);
      if (!split.ok()) return split;
      continue;
    }
    if (!s.ok()) return s;

    // Physiological log record: page id + logical op; LSN assigned while
    // "latched" (we are inside the kernel mutex) — the traditional test
    // applies.
    LogRec log_rec;
    log_rec.type = type;
    log_rec.txn = txn;
    log_rec.pid = (*leaf)->pid;
    log_rec.table = table;
    log_rec.key = key;
    log_rec.value = value;
    log_rec.before = *had_before ? *before_out : "";
    log_rec.has_before = *had_before;
    const uint64_t idx = AppendRec(log_rec);
    page.set_dlsn(idx + 1);
    (*leaf)->dirty = true;
    ++stats_.ops;
    return Status::OK();
  }
  return Status::Busy("page kept overflowing");
}

Status MonolithicEngine::Insert(TxnId txn, TableId table,
                                const std::string& key,
                                const std::string& value) {
  Status s = locks_->Lock(txn, RecordLockName(table, key),
                          LockMode::kExclusive);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> guard(mu_);
  std::string before;
  bool had_before;
  s = ApplyWrite(txn, RecType::kInsert, table, key, value, &before,
                 &had_before);
  if (s.ok()) {
    txns_[txn].push_back({RecType::kInsert, table, key, "", false});
  }
  return s;
}

Status MonolithicEngine::Update(TxnId txn, TableId table,
                                const std::string& key,
                                const std::string& value) {
  Status s = locks_->Lock(txn, RecordLockName(table, key),
                          LockMode::kExclusive);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> guard(mu_);
  std::string before;
  bool had_before;
  s = ApplyWrite(txn, RecType::kUpdate, table, key, value, &before,
                 &had_before);
  if (s.ok()) {
    txns_[txn].push_back({RecType::kUpdate, table, key, before, true});
  }
  return s;
}

Status MonolithicEngine::Delete(TxnId txn, TableId table,
                                const std::string& key) {
  Status s = locks_->Lock(txn, RecordLockName(table, key),
                          LockMode::kExclusive);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> guard(mu_);
  std::string before;
  bool had_before;
  s = ApplyWrite(txn, RecType::kDelete, table, key, "", &before,
                 &had_before);
  if (s.ok()) {
    txns_[txn].push_back({RecType::kDelete, table, key, before, true});
  }
  return s;
}

Status MonolithicEngine::Read(TxnId txn, TableId table,
                              const std::string& key, std::string* value) {
  Status s = locks_->Lock(txn, RecordLockName(table, key), LockMode::kShared);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> guard(mu_);
  StatusOr<Frame*> leaf = Leaf(table, key);
  if (!leaf.ok()) return leaf.status();
  SlottedPage page = PageOf(*leaf);
  bool found;
  const uint16_t slot = LeafLowerBound(page, key, &found);
  if (!found) return Status::NotFound("key");
  LeafRecord rec;
  LeafRecord::Decode(page.PayloadAt(slot), &rec);
  *value = rec.value;
  ++stats_.ops;
  return Status::OK();
}

Status MonolithicEngine::Scan(
    TxnId txn, TableId table, const std::string& from, const std::string& to,
    uint32_t limit, std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // Integrated engines lock keys as they are encountered inside the page
  // (§3.1) — here, while holding the kernel latch; plus the EOF sentinel
  // for phantom safety at the end of the range.
  std::lock_guard<std::mutex> guard(mu_);
  StatusOr<Frame*> leaf_or = Leaf(table, from);
  if (!leaf_or.ok()) return leaf_or.status();
  Frame* leaf = *leaf_or;
  for (;;) {
    SlottedPage page = PageOf(leaf);
    bool found;
    uint16_t slot = LeafLowerBound(page, from, &found);
    for (uint16_t i = slot; i < page.slot_count(); ++i) {
      LeafRecord rec;
      LeafRecord::Decode(page.PayloadAt(i), &rec);
      if (!to.empty() && rec.key >= to) return Status::OK();
      Status s = locks_->Lock(txn, RecordLockName(table, rec.key),
                              LockMode::kShared);
      if (!s.ok()) return s;
      out->emplace_back(rec.key, rec.value);
      if (limit != 0 && out->size() >= limit) return Status::OK();
    }
    const PageId next = page.next_page();
    if (next == kInvalidPageId) break;
    StatusOr<Frame*> next_or = GetFrame(next);
    if (!next_or.ok()) return next_or.status();
    leaf = *next_or;
  }
  return locks_->Lock(txn, TableEofLockName(table), LockMode::kShared);
}

Status MonolithicEngine::Commit(TxnId txn) {
  uint64_t commit_index;
  bool needs_force;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) return Status::NotFound("txn");
    needs_force = !it->second.empty();
    LogRec rec;
    rec.type = RecType::kCommit;
    rec.txn = txn;
    commit_index = AppendRec(rec);
    txns_.erase(it);
    ++stats_.commits;
  }
  if (needs_force) {
    if (options_.group_commit) {
      log_.WaitStableThrough(commit_index, 20000);
    } else {
      log_.ForceTo(commit_index);
    }
  }
  locks_->ReleaseAll(txn);
  return Status::OK();
}

Status MonolithicEngine::Abort(TxnId txn) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) return Status::NotFound("txn");
    // Undo in reverse with CLRs.
    for (auto e = it->second.rbegin(); e != it->second.rend(); ++e) {
      std::string before;
      bool had_before;
      switch (e->type) {
        case RecType::kInsert:
          ApplyWrite(txn, RecType::kDelete, e->table, e->key, "", &before,
                     &had_before);
          break;
        case RecType::kUpdate:
          ApplyWrite(txn, RecType::kUpdate, e->table, e->key, e->before,
                     &before, &had_before);
          break;
        case RecType::kDelete:
          ApplyWrite(txn, RecType::kInsert, e->table, e->key, e->before,
                     &before, &had_before);
          break;
        default:
          break;
      }
    }
    LogRec rec;
    rec.type = RecType::kAbort;
    rec.txn = txn;
    AppendRec(rec);
    txns_.erase(it);
    ++stats_.aborts;
  }
  locks_->ReleaseAll(txn);
  return Status::OK();
}

void MonolithicEngine::Crash() {
  std::lock_guard<std::mutex> guard(mu_);
  frames_.clear();
  roots_.clear();
  txns_.clear();
  log_.Crash();
  locks_ = std::make_unique<LockManager>(options_.locks);
}

Status MonolithicEngine::Recover() {
  std::lock_guard<std::mutex> guard(mu_);
  ++stats_.recoveries;
  meta_pid_ = 1;

  // Analysis + redo (repeat history): apply every record whose LSN is
  // beyond the page LSN — the traditional test, valid because LSNs were
  // assigned under the page latch.
  std::map<TxnId, std::vector<UndoEntry>> losers;
  const uint64_t begin = log_.truncated_prefix();
  const uint64_t end = log_.stable_end();
  for (uint64_t i = begin; i < end; ++i) {
    std::string payload;
    if (!log_.ReadAt(i, &payload).ok()) continue;
    LogRec rec;
    if (!LogRec::Decode(payload, &rec)) continue;
    const uint64_t lsn = i + 1;
    switch (rec.type) {
      case RecType::kBegin:
        losers[rec.txn] = {};
        break;
      case RecType::kCommit:
      case RecType::kAbort:
        losers.erase(rec.txn);
        break;
      case RecType::kPageImage: {
        auto it = frames_.find(rec.pid);
        Frame* frame;
        if (it == frames_.end()) {
          auto created = std::make_unique<Frame>();
          created->pid = rec.pid;
          created->data.resize(store_->page_size());
          if (!store_->Read(rec.pid, created->data.data()).ok()) {
            created->data.assign(store_->page_size(), 0);
          }
          frame = created.get();
          frames_[rec.pid] = std::move(created);
        } else {
          frame = it->second.get();
        }
        if (PageOf(frame).dlsn() < lsn) {
          memcpy(frame->data.data(), rec.value.data(), frame->data.size());
          PageOf(frame).set_dlsn(lsn);
          frame->dirty = true;
        }
        break;
      }
      case RecType::kInsert:
      case RecType::kUpdate:
      case RecType::kDelete:
      case RecType::kClr: {
        if (rec.type != RecType::kClr && losers.count(rec.txn) > 0) {
          losers[rec.txn].push_back({rec.type, rec.table, rec.key,
                                     rec.before, rec.has_before});
        }
        StatusOr<Frame*> frame = GetFrame(rec.pid);
        if (!frame.ok()) continue;
        SlottedPage page = PageOf(*frame);
        if (page.dlsn() >= lsn) continue;  // already reflected
        bool found;
        const uint16_t slot = LeafLowerBound(page, rec.key, &found);
        LeafRecord lr;
        if (found) LeafRecord::Decode(page.PayloadAt(slot), &lr);
        const RecType effective =
            rec.type == RecType::kClr
                ? (rec.has_before ? RecType::kUpdate : RecType::kDelete)
                : rec.type;
        switch (effective) {
          case RecType::kInsert:
            if (!found) {
              LeafRecord fresh;
              fresh.key = rec.key;
              fresh.value = rec.value;
              page.InsertAt(slot, fresh.Encode());
            }
            break;
          case RecType::kUpdate:
            if (found) {
              lr.value = rec.value;
              page.ReplaceAt(slot, lr.Encode());
            }
            break;
          case RecType::kDelete:
            if (found) page.RemoveAt(slot);
            break;
          default:
            break;
        }
        page.set_dlsn(lsn);
        (*frame)->dirty = true;
        break;
      }
    }
  }

  // Rebuild the catalog from the (recovered) meta page.
  StatusOr<Frame*> meta = GetFrame(meta_pid_);
  if (meta.ok()) {
    SlottedPage page = PageOf(*meta);
    for (uint16_t i = 0; i < page.slot_count(); ++i) {
      Slice payload = page.PayloadAt(i);
      const TableId table = DecodeFixed32(payload.data());
      const PageId root = DecodeFixed32(payload.data() + 4);
      roots_[table] = root;
    }
  }

  // Undo losers (logical, CLR-logged).
  for (auto& [txn, chain] : losers) {
    for (auto e = chain.rbegin(); e != chain.rend(); ++e) {
      std::string before;
      bool had_before;
      switch (e->type) {
        case RecType::kInsert:
          ApplyWrite(txn, RecType::kDelete, e->table, e->key, "", &before,
                     &had_before);
          break;
        case RecType::kUpdate:
        case RecType::kDelete:
          if (e->type == RecType::kUpdate) {
            ApplyWrite(txn, RecType::kUpdate, e->table, e->key, e->before,
                       &before, &had_before);
          } else {
            ApplyWrite(txn, RecType::kInsert, e->table, e->key, e->before,
                       &before, &had_before);
          }
          break;
        default:
          break;
      }
    }
    LogRec abort_rec;
    abort_rec.type = RecType::kAbort;
    abort_rec.txn = txn;
    AppendRec(abort_rec);
  }
  log_.Force();
  return Status::OK();
}

Status MonolithicEngine::FlushAll() {
  std::lock_guard<std::mutex> guard(mu_);
  log_.Force();
  for (auto& [pid, frame] : frames_) {
    if (frame->dirty) {
      Status s = FlushFrameLocked(frame.get());
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

}  // namespace monolithic
}  // namespace untx
