// untx_tcd: the TransactionComponent daemon — one process per TC in
// the separate-processes deployment. Owns the TC kernel (locks, logical
// redo/undo log, resend-until-ack) over socket bindings to the untx_dcd
// processes, runs a seeded upsert/delete workload against its own
// tables, and journals every transaction's intent and outcome so an
// external harness can diff the cluster's committed state against a
// monolithic replay.
//
// Recovery:
//   * DC death: a watcher thread polls each binding. On a connect-epoch
//     bump after traffic flowed it treats the DC as possibly restarted
//     and runs OnDcRestart — redo-resend from the RSSP over the fresh
//     connection. The daemon never checkpoints, so the RSSP stays at
//     log start and a SIGKILL'd (empty) DC is rebuilt end to end,
//     tables included.
//   * TC death: relaunch with --recover. The TC kernel log is
//     file-backed (--workdir/tc<ID>.wal); Restart() runs the §5.3.2
//     protocol against it: reset DCs to the stable log end, redo from
//     the RSSP, undo losers.
//
//   untx_tcd --tc_id 1 --dcs 127.0.0.1:7001,127.0.0.1:7002 \
//            --workdir /tmp/cluster --seed 7 --steps 100 [--phase 1]
//            [--recover] [--dump] [--step_sleep_ms 0]
//
// A DC entry may list ALTERNATE endpoints separated by '|' (primary
// first, standbys after): 127.0.0.1:7001|127.0.0.1:7101. A failed dial
// rotates to the next alternate, so when the harness promotes a standby
// (SIGUSR1 to its untx_dcd) the redial loop lands on the new primary
// and the epoch-bump watcher runs the redo-resend protocol against it.
//
// SIGTERM/SIGINT stop the workload at the next step boundary and run the
// normal shutdown path (journal is already fflushed per line).
//
// Journal lines (append-only, one fflush per line):
//   I <seq> <n> {<table> U <key> <value> | <table> D <key>} * n
//   C <seq>      committed
//   A <seq>      aborted (driver-observed; a missing outcome line is a
//                transaction in doubt at a kill — the kernel's restart
//                protocol decides it, the dump shows the decision)
// Dump lines (--dump): "<table> <key> <value>", terminated by "END".

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_transport.h"
#include "tc/transaction_component.h"

namespace {

using untx::DcId;
using untx::TableId;
using untx::TcId;

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

const char* FlagValue(int argc, char** argv, int* i, const char* name) {
  if (std::strcmp(argv[*i], name) != 0) return nullptr;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "untx_tcd: %s needs a value\n", name);
    std::exit(2);
  }
  return argv[++*i];
}

bool ParseEndpoint(const std::string& item, untx::SocketEndpoint* ep) {
  const size_t colon = item.rfind(':');
  if (colon == std::string::npos) return false;
  ep->host = item.substr(0, colon);
  ep->port = static_cast<uint16_t>(std::atoi(item.c_str() + colon + 1));
  return !ep->host.empty() && ep->port != 0;
}

bool ParseEndpoints(
    const std::string& spec,
    std::map<DcId, std::vector<untx::SocketEndpoint>>* out) {
  std::stringstream ss(spec);
  std::string item;
  DcId d = 0;
  while (std::getline(ss, item, ',')) {
    std::vector<untx::SocketEndpoint> alternates;
    std::stringstream alts(item);
    std::string one;
    while (std::getline(alts, one, '|')) {
      untx::SocketEndpoint ep;
      if (!ParseEndpoint(one, &ep)) return false;
      alternates.push_back(std::move(ep));
    }
    if (alternates.empty()) return false;
    (*out)[d++] = std::move(alternates);
  }
  return !out->empty();
}

/// Highest transaction seq already journaled (0 if none): the relaunch
/// continues numbering after it.
uint64_t JournalMaxSeq(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return 0;
  uint64_t max_seq = 0;
  char line[4096];
  while (std::fgets(line, sizeof(line), f)) {
    char kind;
    unsigned long long seq;
    if (std::sscanf(line, "%c %llu", &kind, &seq) == 2) {
      if (seq > max_seq) max_seq = seq;
    }
  }
  std::fclose(f);
  return max_seq;
}

struct Op {
  TableId table;
  bool is_delete;
  std::string key;
  std::string value;
};

}  // namespace

int main(int argc, char** argv) {
  TcId tc_id = 1;
  std::string dcs_spec;
  std::string workdir = ".";
  uint64_t seed = 1;
  uint64_t steps = 0;
  uint64_t phase = 0;
  int step_sleep_ms = 0;
  bool recover = false;
  bool dump = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argc, argv, &i, "--tc_id")) {
      tc_id = static_cast<TcId>(std::atoi(v));
    } else if (const char* v = FlagValue(argc, argv, &i, "--dcs")) {
      dcs_spec = v;
    } else if (const char* v = FlagValue(argc, argv, &i, "--workdir")) {
      workdir = v;
    } else if (const char* v = FlagValue(argc, argv, &i, "--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = FlagValue(argc, argv, &i, "--steps")) {
      steps = std::strtoull(v, nullptr, 10);
    } else if (const char* v = FlagValue(argc, argv, &i, "--phase")) {
      phase = std::strtoull(v, nullptr, 10);
    } else if (const char* v = FlagValue(argc, argv, &i, "--step_sleep_ms")) {
      step_sleep_ms = std::atoi(v);
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else {
      std::fprintf(stderr, "untx_tcd: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  std::map<DcId, std::vector<untx::SocketEndpoint>> endpoints;
  if (!ParseEndpoints(dcs_spec, &endpoints)) {
    std::fprintf(stderr, "untx_tcd: bad --dcs '%s'\n", dcs_spec.c_str());
    return 2;
  }
  const int num_dcs = static_cast<int>(endpoints.size());
  const std::string id_str = std::to_string(tc_id);
  const std::string wal_path = workdir + "/tc" + id_str + ".wal";
  const std::string journal_path = workdir + "/tc" + id_str + ".journal";
  const std::string dump_path = workdir + "/tc" + id_str + ".dump";

  // This TC owns tables tc_id*100 + {1, 2}; a table lives on DC
  // (table % num_dcs), so a two-table TC always spans both DCs of the
  // Figure 2 topology.
  std::vector<TableId> tables = {static_cast<TableId>(tc_id * 100 + 1),
                                 static_cast<TableId>(tc_id * 100 + 2)};
  untx::Router router = [num_dcs](TableId table, const std::string&) {
    return static_cast<DcId>(table % num_dcs);
  };

  auto factory = untx::MakeSocketTransportFactory(endpoints);
  std::vector<std::unique_ptr<untx::BoundTransport>> bindings;
  std::vector<untx::DcBinding> dc_bindings;
  for (int d = 0; d < num_dcs; ++d) {
    bindings.push_back(
        factory->Bind(tc_id, static_cast<DcId>(d), /*target=*/nullptr));
    dc_bindings.push_back(
        untx::DcBinding{static_cast<DcId>(d), bindings.back()->client()});
  }

  untx::TcOptions options;
  options.tc_id = tc_id;
  options.log.path = wal_path;
  options.resend_interval_ms = 100;
  options.op_timeout_ms = 8000;
  options.commit_timeout_ms = 8000;
  auto tc = std::make_unique<untx::TransactionComponent>(options, dc_bindings,
                                                         router);
  for (auto& binding : bindings) binding->Start();
  untx::Status s = tc->Start();
  if (!s.ok()) {
    std::fprintf(stderr, "untx_tcd: start: %s\n", s.ToString().c_str());
    return 1;
  }
  if (recover) {
    std::vector<TcId> escalate;
    s = tc->Restart(&escalate);
    if (!s.ok()) {
      std::fprintf(stderr, "untx_tcd: restart: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "untx_tcd[%s]: restart done (stable log replayed)\n",
                 id_str.c_str());
  } else {
    for (TableId t : tables) {
      s = tc->CreateTable(t, /*routing_key=*/"");
      if (!s.ok()) {
        std::fprintf(stderr, "untx_tcd: create table %u: %s\n", t,
                     s.ToString().c_str());
        return 1;
      }
    }
  }

  // Watcher: a connect-epoch bump after the initial dial means the DC
  // endpoint answered a fresh dial — it may be a restarted (empty)
  // process, so run the redo-resend protocol. Redundant redo is
  // idempotent (abLSNs), so a mere network blip costs only the resend.
  std::atomic<bool> watch_stop{false};
  std::vector<uint64_t> last_epoch(num_dcs, 0);
  std::vector<untx::SocketBoundTransport*> socket_bindings;
  for (auto& binding : bindings) {
    socket_bindings.push_back(
        static_cast<untx::SocketBoundTransport*>(binding.get()));
  }
  for (int d = 0; d < num_dcs; ++d) {
    last_epoch[d] = socket_bindings[d]->connect_epoch();
  }
  std::thread watcher([&] {
    std::vector<bool> was_connected(num_dcs, true);
    while (!watch_stop.load()) {
      for (int d = 0; d < num_dcs; ++d) {
        const bool connected = socket_bindings[d]->connected();
        if (was_connected[d] && !connected) {
          // Gate new traffic to the DC until redo reopens it.
          tc->OnDcCrash(static_cast<DcId>(d));
        }
        const uint64_t epoch = socket_bindings[d]->connect_epoch();
        if (connected && epoch != last_epoch[d]) {
          last_epoch[d] = epoch;
          std::fprintf(stderr,
                       "untx_tcd[%s]: dc %d reconnected (epoch %llu), "
                       "running redo-resend\n",
                       id_str.c_str(), d,
                       static_cast<unsigned long long>(epoch));
          untx::Status rs = tc->OnDcRestart(static_cast<DcId>(d));
          if (!rs.ok()) {
            std::fprintf(stderr, "untx_tcd[%s]: redo to dc %d: %s\n",
                         id_str.c_str(), d, rs.ToString().c_str());
          }
        }
        was_connected[d] = connected;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });

  std::FILE* journal = std::fopen(journal_path.c_str(), "a");
  if (!journal) {
    std::fprintf(stderr, "untx_tcd: cannot open %s\n", journal_path.c_str());
    return 1;
  }
  const uint64_t first_seq = JournalMaxSeq(journal_path) + 1;

  std::mt19937_64 rng(seed * 1000003 + phase * 1000 + tc_id);
  uint64_t committed = 0, aborted = 0;
  for (uint64_t step = 0; step < steps && !g_stop; ++step) {
    const uint64_t seq = first_seq + step;
    const int nops = 1 + static_cast<int>(rng() % 3);
    std::vector<Op> ops;
    std::string intent = "I " + std::to_string(seq) + " " +
                         std::to_string(nops);
    for (int o = 0; o < nops; ++o) {
      Op op;
      op.table = tables[rng() % tables.size()];
      op.key = "k" + std::to_string(rng() % 24);
      op.is_delete = (rng() % 10) < 2;
      if (op.is_delete) {
        intent += " " + std::to_string(op.table) + " D " + op.key;
      } else {
        op.value = "v" + id_str + "-" + std::to_string(seq) + "-" +
                   std::to_string(o);
        intent += " " + std::to_string(op.table) + " U " + op.key + " " +
                  op.value;
      }
      ops.push_back(std::move(op));
    }
    // Intent is durable before the first write ships: a kill between
    // here and the outcome line leaves a transaction in doubt that the
    // kernel's restart protocol (not the journal) decides.
    std::fprintf(journal, "%s\n", intent.c_str());
    std::fflush(journal);

    untx::StatusOr<untx::TxnId> txn = tc->Begin();
    if (!txn.ok()) {
      std::fprintf(journal, "A %llu\n",
                   static_cast<unsigned long long>(seq));
      std::fflush(journal);
      ++aborted;
      continue;
    }
    bool ok = true;
    for (const Op& op : ops) {
      untx::Status os = op.is_delete
                            ? tc->Delete(*txn, op.table, op.key)
                            : tc->Upsert(*txn, op.table, op.key, op.value);
      // A delete of an absent key is a no-op for state; any other
      // failure aborts the transaction.
      if (!os.ok() && !(op.is_delete && os.IsNotFound())) {
        ok = false;
        break;
      }
    }
    if (ok && tc->Commit(*txn).ok()) {
      std::fprintf(journal, "C %llu\n",
                   static_cast<unsigned long long>(seq));
      ++committed;
    } else {
      tc->Abort(*txn);
      std::fprintf(journal, "A %llu\n",
                   static_cast<unsigned long long>(seq));
      ++aborted;
    }
    std::fflush(journal);
    if (step_sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(step_sleep_ms));
    }
  }
  std::fclose(journal);
  std::fprintf(stderr, "untx_tcd[%s]: workload done (%llu committed, %llu aborted)\n",
               id_str.c_str(), static_cast<unsigned long long>(committed),
               static_cast<unsigned long long>(aborted));

  int rc = 0;
  if (dump) {
    const std::string tmp = dump_path + ".tmp";
    std::FILE* out = std::fopen(tmp.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "untx_tcd: cannot write %s\n", tmp.c_str());
      rc = 1;
    } else {
      for (TableId t : tables) {
        std::vector<std::pair<std::string, std::string>> rows;
        untx::Status ss = tc->ScanShared(t, "", "", 0,
                                         untx::ReadFlavor::kDirty, &rows);
        if (!ss.ok()) {
          std::fprintf(stderr, "untx_tcd: scan %u: %s\n", t,
                       ss.ToString().c_str());
          rc = 1;
          break;
        }
        for (const auto& [k, v] : rows) {
          std::fprintf(out, "%u %s %s\n", t, k.c_str(), v.c_str());
        }
      }
      if (rc == 0) std::fprintf(out, "END\n");
      std::fclose(out);
      if (rc == 0) std::rename(tmp.c_str(), dump_path.c_str());
    }
  }

  watch_stop.store(true);
  watcher.join();
  tc->Stop();
  for (auto& binding : bindings) binding->Stop();
  return rc;
}
