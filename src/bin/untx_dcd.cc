// untx_dcd: the DataComponent daemon — one process per DC in the
// separate-processes deployment (Figure 2 run cloud-style). Hosts a
// DataComponent behind a SocketServer; every TC session multiplexes
// onto the shared worker pool.
//
// The page store is process-volatile: a SIGKILL'd DC comes back EMPTY,
// and the TCs rebuild it end to end with the §5.2.2 redo-resend
// protocol over the re-dialed connection (untx_tcd watches the
// binding's connect epoch). That is the point of the unbundling: the
// TC's logical log is the recovery source of truth, the DC only has to
// apply redo idempotently (abLSNs).
//
//   untx_dcd --port 0 --port_file /tmp/dc0.port [--host 127.0.0.1]
//            [--workers 2]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "dc/data_component.h"
#include "net/socket_server.h"
#include "storage/stable_store.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

const char* FlagValue(int argc, char** argv, int* i, const char* name) {
  if (std::strcmp(argv[*i], name) != 0) return nullptr;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "untx_dcd: %s needs a value\n", name);
    std::exit(2);
  }
  return argv[++*i];
}

}  // namespace

int main(int argc, char** argv) {
  untx::SocketServerOptions options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argc, argv, &i, "--port")) {
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = FlagValue(argc, argv, &i, "--port_file")) {
      port_file = v;
    } else if (const char* v = FlagValue(argc, argv, &i, "--host")) {
      options.host = v;
    } else if (const char* v = FlagValue(argc, argv, &i, "--workers")) {
      options.workers = std::atoi(v);
    } else {
      std::fprintf(stderr, "untx_dcd: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  untx::StableStore store;
  untx::DataComponent dc(&store);
  untx::Status s = dc.Initialize();
  if (!s.ok()) {
    std::fprintf(stderr, "untx_dcd: init: %s\n", s.ToString().c_str());
    return 1;
  }
  untx::SocketServer server(&dc, options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "untx_dcd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "untx_dcd: serving on %s:%u\n", options.host.c_str(),
               server.port());
  if (!port_file.empty()) {
    // Write-then-rename so a polling launcher never reads a torn file.
    const std::string tmp = port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "untx_dcd: cannot write %s\n", tmp.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
    std::rename(tmp.c_str(), port_file.c_str());
  }
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "untx_dcd: shutting down\n");
  server.Stop();
  return 0;
}
