// untx_dcd: the DataComponent daemon — one process per DC in the
// separate-processes deployment (Figure 2 run cloud-style). Hosts a
// DataComponent behind a SocketServer; every TC session multiplexes
// onto the shared worker pool.
//
// Durability modes:
//   * No --workdir: process-volatile. A SIGKILL'd DC comes back EMPTY
//     and the TCs rebuild it end to end with the §5.2.2 redo-resend
//     protocol (untx_tcd watches the binding's connect epoch).
//   * --workdir DIR: pages checkpoint to DIR/dc.pages and the applied-op
//     redo log appends to DIR/dc.redo. Relaunching with --recover
//     restores pre-crash state from local disk (pages + redo replay),
//     after which TCs resend only the unacknowledged suffix instead of
//     their whole logs.
//
// Replication:
//   * --replica_of HOST:PORT starts the DC as a hot standby: it dials
//     the primary's server, subscribes to its redo stream and applies
//     it continuously. A standby does NOT listen for TC traffic; on
//     SIGUSR1 it promotes — fences at the next epoch, starts its own
//     SocketServer and only then writes --port_file, so a waiting
//     harness reads the port exactly when the new primary is open.
//
// SIGTERM/SIGINT shut down gracefully: close sessions, stop shipping,
// force the redo log's durable tail, remove the port file.
//
//   untx_dcd --port 0 --port_file /tmp/dc0.port [--host 127.0.0.1]
//            [--workers 2] [--workdir DIR] [--recover]
//            [--replica_of HOST:PORT] [--replica_id N]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "dc/data_component.h"
#include "net/replica_client.h"
#include "net/socket_server.h"
#include "storage/stable_store.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_promote = 0;

void OnSignal(int) { g_stop = 1; }
void OnPromote(int) { g_promote = 1; }

const char* FlagValue(int argc, char** argv, int* i, const char* name) {
  if (std::strcmp(argv[*i], name) != 0) return nullptr;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "untx_dcd: %s needs a value\n", name);
    std::exit(2);
  }
  return argv[++*i];
}

bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(std::atoi(spec.c_str() + colon + 1));
  return !host->empty() && *port != 0;
}

/// Write-then-rename so a polling launcher never reads a torn file.
bool WritePortFile(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  untx::SocketServerOptions options;
  std::string port_file;
  std::string workdir;
  std::string replica_of;
  uint32_t replica_id = 1;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argc, argv, &i, "--port")) {
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = FlagValue(argc, argv, &i, "--port_file")) {
      port_file = v;
    } else if (const char* v = FlagValue(argc, argv, &i, "--host")) {
      options.host = v;
    } else if (const char* v = FlagValue(argc, argv, &i, "--workers")) {
      options.workers = std::atoi(v);
    } else if (const char* v = FlagValue(argc, argv, &i, "--workdir")) {
      workdir = v;
    } else if (const char* v = FlagValue(argc, argv, &i, "--replica_of")) {
      replica_of = v;
    } else if (const char* v = FlagValue(argc, argv, &i, "--replica_id")) {
      replica_id = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else {
      std::fprintf(stderr, "untx_dcd: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGUSR1, OnPromote);

  untx::StableStoreOptions store_options;
  untx::DataComponentOptions dc_options;
  if (!workdir.empty()) {
    store_options.path = workdir + "/dc.pages";
    dc_options.redo_log_enabled = true;
    dc_options.redo_log.path = workdir + "/dc.redo";
  } else if (!replica_of.empty()) {
    // A diskless standby still tracks the shipped stream in memory (its
    // log end is its subscription position).
    dc_options.redo_log_enabled = true;
  }

  untx::StableStore store(store_options);
  untx::DataComponent dc(&store, dc_options);
  untx::Status s;
  if (recover && store.LivePageCount() > 0) {
    // Existing on-disk state: make the structures well-formed, then
    // replay our own retained redo log so the pages reflect every op we
    // ever acked — TCs will resend only the suffix past our log end.
    s = dc.Recover();
    if (s.ok() && dc.redo_log() != nullptr) {
      uint64_t replayed = 0;
      s = dc.RecoverFromLocalLog(&replayed);
      if (s.ok()) {
        std::fprintf(stderr,
                     "untx_dcd: local recovery replayed %llu redo entries "
                     "(log end %llu)\n",
                     static_cast<unsigned long long>(replayed),
                     static_cast<unsigned long long>(dc.redo_log()->end()));
      }
    }
  } else {
    s = dc.Initialize();
  }
  if (!s.ok()) {
    std::fprintf(stderr, "untx_dcd: init: %s\n", s.ToString().c_str());
    return 1;
  }

  std::unique_ptr<untx::ReplicaClient> subscriber;
  if (!replica_of.empty()) {
    untx::ReplicaClientOptions rc;
    if (!ParseHostPort(replica_of, &rc.host, &rc.port)) {
      std::fprintf(stderr, "untx_dcd: bad --replica_of '%s'\n",
                   replica_of.c_str());
      return 2;
    }
    rc.replica_id = replica_id;
    dc.StartAsReplica();
    subscriber = std::make_unique<untx::ReplicaClient>(&dc, rc);
    subscriber->Start();
    std::fprintf(stderr,
                 "untx_dcd: standby of %s (replica_id %u); SIGUSR1 promotes\n",
                 replica_of.c_str(), replica_id);
  }

  untx::SocketServer server(&dc, options);
  bool serving = subscriber == nullptr;  // standbys listen only once promoted
  if (serving) {
    s = server.Start();
    if (!s.ok()) {
      std::fprintf(stderr, "untx_dcd: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "untx_dcd: serving on %s:%u\n", options.host.c_str(),
                 server.port());
    if (!port_file.empty() && !WritePortFile(port_file, server.port())) {
      std::fprintf(stderr, "untx_dcd: cannot write %s\n", port_file.c_str());
      return 1;
    }
  }

  while (!g_stop) {
    if (g_promote && !serving) {
      g_promote = 0;
      // Stop draining the (dead) primary first: promotion fences the
      // log, and a late shipped batch must not race the flip.
      subscriber->Stop();
      dc.Promote(dc.promotion_epoch() + 1);
      s = server.Start();
      if (!s.ok()) {
        std::fprintf(stderr, "untx_dcd: promote: %s\n", s.ToString().c_str());
        return 1;
      }
      serving = true;
      std::fprintf(stderr,
                   "untx_dcd: promoted (epoch %llu, log end %llu), serving "
                   "on %s:%u\n",
                   static_cast<unsigned long long>(dc.promotion_epoch()),
                   static_cast<unsigned long long>(
                       dc.redo_log() != nullptr ? dc.redo_log()->end() : 0),
                   options.host.c_str(), server.port());
      // The port file appears only now: a waiting harness learns the
      // address exactly when the new primary is open for TC traffic.
      if (!port_file.empty() && !WritePortFile(port_file, server.port())) {
        std::fprintf(stderr, "untx_dcd: cannot write %s\n", port_file.c_str());
        return 1;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  std::fprintf(stderr, "untx_dcd: shutting down\n");
  if (subscriber) subscriber->Stop();
  if (serving) server.Stop();
  // Everything acked is already durable (force-before-reply); this only
  // tightens the tail for anything in flight at the signal.
  if (dc.redo_log() != nullptr) dc.redo_log()->Force();
  if (serving && !port_file.empty()) std::remove(port_file.c_str());
  return 0;
}
