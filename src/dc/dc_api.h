// The TC:DC interface (§4.2.1): perform_operation, end_of_stable_log,
// checkpoint, low_water_mark, restart — expressed as serializable message
// structs so the same API runs over a direct call path (multi-core
// deployment) or over simulated cloud channels (asynchronous messages).
//
// An operation request deliberately carries NO transaction identity: "the
// information given to DC does not carry any information about the user
// transaction of which it is a part, nor does DC know whether this
// operation is done as forward activity, or as an inverse during rollback".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace untx {

/// A logical record operation from a TC. (tc_id, lsn) is the globally
/// unique request id; resends reuse it (§4.2 "Unique request IDs").
struct OperationRequest {
  TcId tc_id = 0;
  Lsn lsn = kInvalidLsn;
  OpType op = OpType::kRead;
  TableId table_id = kInvalidTableId;
  std::string key;
  std::string value;
  ReadFlavor read_flavor = ReadFlavor::kOwn;
  /// kProbeNext / kScanRange: max number of keys to return.
  uint32_t limit = 0;
  /// kScanRange: exclusive upper bound; empty = unbounded.
  std::string end_key;
  /// Writes: keep a before-version for cross-TC read committed (§6.2.2).
  bool versioned = false;
  /// Set on recovery resends: the TC only needs an ack, not undo info.
  bool recovery_resend = false;
  /// kProbeNext / kScanRange: `key` itself is excluded from the result —
  /// the resume discipline of streamed / windowed scans.
  bool exclusive_start = false;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, OperationRequest* out);
};

/// Reply to one OperationRequest, correlated by (tc_id, lsn).
struct OperationReply {
  TcId tc_id = 0;
  Lsn lsn = kInvalidLsn;
  Status status;
  /// Read: the value. Update/Delete/Upsert: the before-value (undo info).
  std::string value;
  /// True if `value` carries a meaningful before-image.
  bool has_before = false;
  /// True if the DC detected the request as already applied (idempotence
  /// hit) rather than executing it now. Diagnostic only.
  bool was_duplicate = false;
  /// kProbeNext / kScanRange results.
  std::vector<std::string> keys;
  std::vector<std::string> values;
  /// DC redo-log position (1-based) of this operation's applied entry;
  /// 0 when the DC keeps no redo log or the op mutated nothing. A TC
  /// that records it can skip the op during DC recovery whenever the
  /// revived DC (or a promoted standby) already holds that rlsn — the
  /// suffix-only resend of PR 8.
  uint64_t rlsn = 0;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, OperationReply* out);
};

/// Control verbs of the TC:DC contract.
enum class ControlType : uint8_t {
  kEndOfStableLog = 1,  ///< EOSL: TC log stable through this LSN (WAL).
  kLowWaterMark = 2,    ///< LWM: TC has replies for all LSNs <= arg (§5.1.2).
  kCheckpoint = 3,      ///< newRSSP: flush pages with ops below it (§4.2.1).
  kRestartBegin = 4,    ///< TC restart: arg = LSNst (stable TC log end).
  kRestartEnd = 5,      ///< TC restart finished; resume normal service.
  kDcCheckpoint = 6,    ///< Ask the DC to take a local checkpoint.
  /// Does the DC keep a redo log, and how far does it reach? The reply
  /// carries replication_enabled + rlsn (the DC's applied end). A TC
  /// recovering this DC asks first: a positive answer turns the full
  /// redo-resend into a suffix-only resend.
  kQueryReplication = 7,
};

struct ControlRequest {
  ControlType type = ControlType::kEndOfStableLog;
  TcId tc_id = 0;
  Lsn lsn = kInvalidLsn;  ///< EOSL / LWM / newRSSP / LSNst, per type.
  uint64_t seq = 0;       ///< Correlation id for the reply.

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, ControlRequest* out);
};

struct ControlReply {
  ControlType type = ControlType::kEndOfStableLog;
  TcId tc_id = 0;
  uint64_t seq = 0;
  Status status;
  /// kRestartBegin: TCs whose pages had to be dropped during the failed
  /// TC's reset and therefore must also resend from their RSSP (the
  /// escalation case of §6.1.2; normally empty).
  std::vector<TcId> escalate_tcs;
  /// kQueryReplication: whether this DC keeps a redo log (and ships it).
  bool replication_enabled = false;
  /// kQueryReplication: the DC's applied redo end. kCheckpoint: the
  /// GRANTED checkpoint lsn — the DC may clamp the TC's requested RSSP
  /// below the oldest op a lagging replica still needs, so log pruning
  /// never outruns the slowest standby.
  uint64_t rlsn = 0;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, ControlReply* out);
};

/// Several OperationRequests travelling as ONE channel message. The §4.2
/// contract is unchanged — each operation keeps its own (tc_id, lsn)
/// request id and gets its own reply — but a pipelining TC amortizes the
/// per-message channel cost across the batch (§7: the unbundling overhead
/// is per-message, so fewer messages is the lever).
struct OperationBatch {
  std::vector<OperationRequest> ops;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, OperationBatch* out);
};

/// Replies for one OperationBatch, in request order. A crashed DC omits
/// replies (they die with it), so the vector may be shorter than the
/// batch that provoked it; correlation stays per-op via (tc_id, lsn).
struct OperationBatchReply {
  std::vector<OperationReply> replies;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, OperationBatchReply* out);
};

/// One streamed scan: the DC answers a single request with a SEQUENCE of
/// kScanStreamChunk replies instead of the TC paying one blocking
/// round trip per window (§3.1 / §5.1 — TC↔DC messages are *the* cost of
/// unbundling, and scans were still paying one per window). `base.lsn`
/// is a TC-chosen stream id, NOT a log LSN: scans are read-only, so a
/// lost chunk is recovered by re-issuing the stream from the last
/// delivered key (exclusive_start) under a fresh id — no idempotence
/// machinery needed.
struct ScanStreamRequest {
  /// op must be kScanRange; key/end_key/limit/read_flavor as usual.
  OperationRequest base;
  /// Rows per chunk reply (0 = the DC-side default).
  uint32_t chunk_rows = 0;
  /// Flow control: the DC may emit chunks [0, credit_chunks) and must
  /// then pause until a kScanCredit raises the window — so the reply
  /// channel never holds more than the credit window of chunks, no
  /// matter how large the scan. 0 = uncredited (eager push).
  uint32_t credit_chunks = 0;
  /// Fetch-ahead probe mode (§3.1 fold): chunks report EVERY physical
  /// key (probe semantics, so the TC can lock tombstoned records too)
  /// plus the fencepost in `next_key`; invisible rows carry an empty
  /// value and are listed in `invisible`. Plain scans report visible
  /// rows only.
  bool probe_rows = false;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, ScanStreamRequest* out);
};

/// Credit / window control for one open scan stream, correlated by
/// (tc_id, stream_id). Every field is ABSOLUTE so the lossy channel is
/// harmless: duplicated credits fold with max(), a lost credit is
/// recovered by resending the latest value, and a rewind applies only
/// while `expect_chunk` still names the cursor's next index.
struct ScanCreditRequest {
  TcId tc_id = 0;
  uint64_t stream_id = 0;
  /// Chunks [0, allowed_chunks) may be produced.
  uint32_t allowed_chunks = 0;
  /// The stream is finished (limit hit / abandoned): the DC may evict
  /// its cursor now instead of waiting for the idle TTL.
  bool close = false;
  /// Validated-window rewind (the fetch-ahead fold): when set and the
  /// cursor's next chunk index equals expect_chunk, the cursor seeks
  /// back to (rewind_key, rewind_exclusive) and re-reads up to
  /// rewind_upto (exclusive; empty = the stream's end bound) as the
  /// next chunk — window k's validated read served from the same cursor
  /// that probed it — then resumes from rewind_upto inclusively.
  bool rewind = false;
  uint32_t expect_chunk = 0;
  std::string rewind_key;
  bool rewind_exclusive = false;
  std::string rewind_upto;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, ScanCreditRequest* out);
};

/// One chunk of a streamed scan, correlated by (tc_id, stream_id).
/// Chunks are emitted in chunk_index order but the channel may reorder,
/// drop or duplicate them; the TC reassembles in order and filters
/// already-delivered keys, so any interleaving of stream executions
/// still delivers every stable key exactly once.
struct ScanStreamChunk {
  TcId tc_id = 0;
  uint64_t stream_id = 0;
  uint32_t chunk_index = 0;
  /// Final chunk of this stream execution (range exhausted or error).
  bool done = false;
  /// The resume position this chunk was produced from: the request key
  /// for chunk 0, the previous chunk's last key (exclusive) after. The
  /// TC validates continuity against what it actually consumed, so two
  /// interleaved executions of a duplicated stream request (whose chunk
  /// boundaries diverged under concurrent writes) can never splice a
  /// gap into the result — a discontinuous chunk forces a restart.
  std::string resume_key;
  bool resume_exclusive = false;
  Status status;
  std::vector<std::string> keys;
  std::vector<std::string> values;
  /// probe_rows streams: the first key after this chunk's rows — the
  /// fetch-ahead fencepost. Empty = the range ends with this chunk.
  std::string next_key;
  /// probe_rows streams: indices into `keys` whose record is not
  /// visible under the request's read flavor (their values[] slot is
  /// empty). The TC locks them but does not emit them.
  std::vector<uint32_t> invisible;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, ScanStreamChunk* out);
};

/// Transport envelope: one byte of message kind, then the body.
enum class MessageKind : uint8_t {
  kOperationRequest = 1,
  kOperationReply = 2,
  kControlRequest = 3,
  kControlReply = 4,
  kOperationBatch = 5,
  kOperationBatchReply = 6,
  kScanStreamRequest = 7,
  kScanStreamChunk = 8,
  kScanCredit = 9,
  /// Redo-log shipping (PR 8): a replica DC subscribes to a primary's
  /// applied-op stream, the primary pushes entry batches, the replica
  /// acks its applied rlsn. Bodies are the Replica* structs of
  /// dc/dc_redo_log.h.
  kReplicaSubscribe = 10,
  kReplicaEntries = 11,
  kReplicaAck = 12,
};

std::string WrapMessage(MessageKind kind, const std::string& body);
bool UnwrapMessage(const std::string& wire, MessageKind* kind, Slice* body);

/// Server-side view of a DC the TC can talk to. Implemented by
/// dc::DataComponent (direct) and by kernel transports (channels).
class DcService {
 public:
  virtual ~DcService() = default;
  virtual OperationReply Perform(const OperationRequest& req) = 0;
  virtual ControlReply Control(const ControlRequest& req) = 0;

  /// Performs a batch, one reply per request in order. The default just
  /// loops; DataComponent overrides it to sweep the reply cache once for
  /// the whole batch before touching the tree.
  virtual std::vector<OperationReply> PerformBatch(
      const std::vector<OperationRequest>& reqs) {
    std::vector<OperationReply> replies;
    replies.reserve(reqs.size());
    for (const auto& req : reqs) replies.push_back(Perform(req));
    return replies;
  }

  using ScanChunkEmitter = std::function<void(const ScanStreamChunk&)>;

  /// Streams a scan as ordered chunks through `emit`, resuming each
  /// chunk after the previous one's last key. Emits a final chunk with
  /// done=true when the range (or the request limit) is exhausted, or
  /// when an operation fails (the chunk carries the status). The
  /// default drives Perform(kScanRange) per chunk and declares the
  /// range exhausted only on an EMPTY reply, so partial replies (a scan
  /// that gave up early) resume instead of truncating. The default
  /// driver ignores credit (eager push); DataComponent overrides it
  /// with a credited, cursor-holding implementation.
  virtual void PerformScanStream(const ScanStreamRequest& req,
                                 const ScanChunkEmitter& emit);

  /// Raises (or rewinds / closes) the chunk window of an open credited
  /// stream; a paused cursor resumes production through `emit`. Credits
  /// for unknown streams are ignored (the TC restarts on stall). The
  /// default is a no-op — the base driver above never pauses.
  virtual void ScanCredit(const ScanCreditRequest& /*req*/,
                          const ScanChunkEmitter& /*emit*/) {}
};

}  // namespace untx
