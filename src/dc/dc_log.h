// DcLog: the DC's private log for system transactions (§5.2.2).
//
// Structure modifications (page split, page delete/consolidate, table
// creation) are logged as atomic batches: SmoBegin, body records,
// SmoCommit. Replay applies only committed batches, in log order, guarded
// per page by the page's dLSN — so SMOs are redone *before* any TC redo
// and possibly out of their original order relative to TC operations,
// exactly the regime of §5.2.
//
// Record forms follow the paper:
//  * Split: a physical image of the NEW page capturing its abLSN, plus a
//    logical record for the pre-split page holding only the split key.
//  * Consolidate (page delete): a physical image of the surviving page
//    whose abLSN is the max/union of the two pages' abLSNs, plus a
//    logical free record for the deleted page.
//
// Causality floor (derived rule; see DESIGN.md §4.3): a physical image
// embeds TC operation effects. The batch may be FORCED to stable storage
// only once the TC stable log covers every such operation (per-TC floor
// <= EOSL). Otherwise a later TC crash could resurrect operations the TC
// lost — violating the causality contract of §4.2.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "dc/ab_lsn.h"
#include "wal/stable_log.h"

namespace untx {

enum class DcLogRecordType : uint8_t {
  kSmoBegin = 1,
  kPageImage = 2,  ///< Physical: full page body + its PageAbLsn.
  kSplitOld = 3,   ///< Logical: pre-split page keeps keys < split_key.
  kPageFree = 4,   ///< Logical: page returned to free space.
  kSmoCommit = 5,
};

struct DcLogRecord {
  DcLogRecordType type = DcLogRecordType::kSmoBegin;
  DLsn dlsn = kInvalidDLsn;  ///< Assigned at append (== log index + 1).
  PageId pid = kInvalidPageId;
  std::string split_key;           ///< kSplitOld
  PageId aux_pid = kInvalidPageId; ///< kSplitOld: new right sibling (chain relink)
  std::string body;                ///< kPageImage: raw page bytes
  PageAbLsn ablsn;                 ///< kPageImage: abLSN captured with the image

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, DcLogRecord* out);
};

/// A parsed committed batch (for replay).
struct DcLogBatch {
  std::vector<DcLogRecord> records;  // body records only (no begin/commit)
};

class DcLog {
 public:
  explicit DcLog(StableLogOptions options = {});

  /// Appends an SMO batch atomically (begin + records + commit). Assigns
  /// each record's dlsn and returns it through the records. The caller
  /// stamps affected pages with these dlsns while still holding their
  /// latches. `floor` is the per-TC causality floor of the batch.
  /// `deferred_frees` lists pages whose stable bytes may only be released
  /// once the batch itself is stable (else a crash in between loses the
  /// merged records: the survivor's image is the only copy).
  void AppendBatch(std::vector<DcLogRecord>* records,
                   const std::map<TcId, Lsn>& floor,
                   std::vector<PageId> deferred_frees = {});

  /// Forces batches whose causality floors are satisfied by the given
  /// per-TC EOSL map. Batches force strictly in order. Appends the page
  /// ids whose deferred frees became executable to `freed_out`.
  void ForceEligible(const std::map<TcId, Lsn>& eosl,
                     std::vector<PageId>* freed_out = nullptr);

  /// True if every appended batch is stable (used by tests/benches).
  bool FullyForced() const;

  /// All committed batches currently on the stable log, in order.
  std::vector<DcLogBatch> ReadStableBatches() const;

  /// DLsn one past the last stable record (replay horizon).
  DLsn stable_dlsn_end() const;

  /// Highest dLSN assigned so far.
  DLsn next_dlsn() const;

  /// Drops volatile batches (DC crash).
  void Crash();

  /// Wipes the log back to empty, backing file included. Part of the
  /// replica reset-by-replay wipe: stale SMO records must never replay
  /// against the rebuilt-from-scratch tree.
  void Clear();

  /// Metadata of one not-yet-forced batch (for TC-crash reset).
  struct PendingBatchInfo {
    std::map<TcId, Lsn> floor;
    std::vector<PageId> pids;
  };

  /// TC-crash reset support: discards every pending (unforced) batch and
  /// truncates the volatile log tail. A pending batch may embed operation
  /// effects the failed TC lost, so it can never become stable; its page
  /// effects must be dropped by the caller (info returned here).
  std::vector<PendingBatchInfo> DiscardPending();

  /// Truncates the log below `dlsn` (DC checkpoint). Snaps DOWN to a
  /// batch boundary so replay never starts mid-batch, and never enters
  /// the unforced region.
  void TruncateBelow(DLsn dlsn);

  /// First retained dLSN (for tests).
  DLsn truncated_below() const;

  uint64_t bytes_appended() const { return log_.bytes_appended(); }
  uint64_t force_count() const { return log_.force_count(); }

 private:
  struct PendingBatch {
    uint64_t first_index;
    uint64_t last_index;
    std::map<TcId, Lsn> floor;
    std::vector<PageId> deferred_frees;
    std::vector<PageId> pids;  // every page the batch's records touch
  };

  mutable std::mutex mu_;
  StableLog log_;
  std::deque<PendingBatch> pending_;    // appended but not yet forced
  std::deque<uint64_t> batch_starts_;   // begin-record index of every batch
};

}  // namespace untx
