// B-tree access method inside the DC (§4.1.2 responsibility 2).
//
// "For a structure like a B-tree, where a logical operation may lead to
// re-arrangements that affect multiple physical pages, the maintenance of
// indices must be done using system transactions that are not related in
// any way to user-invoked transactions known to the TC."
//
// Concurrency: operations descend with latch coupling (parent latched
// shared until the child is latched); structure modifications serialize
// on a per-DC SMO mutex, re-descend with exclusive latches and log one
// atomic DC-log batch (§5.2.2):
//   split       -> logical SplitOld{split key} for the pre-split page +
//                  physical image (with abLSN) for the new page +
//                  physical images for modified ancestors.
//   consolidate -> physical image of the surviving page with the merged
//                  (max/union) abLSN + PageFree for the deleted page +
//                  physical image of the parent.
//
// The table catalog (table id -> root page) lives in a meta page and is
// mirrored by an in-memory root cache rebuilt at recovery.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/status_or.h"
#include "common/types.h"
#include "dc/buffer_pool.h"
#include "dc/dc_log.h"
#include "dc/record_format.h"
#include "storage/stable_store.h"

namespace untx {

struct BTreeOptions {
  /// Consolidate a leaf whose fill fraction drops below this.
  double consolidate_threshold = 0.20;
};

struct BTreeStats {
  uint64_t splits = 0;
  uint64_t consolidates = 0;
  uint64_t root_splits = 0;
  uint64_t height_shrinks = 0;
};

class BTree {
 public:
  BTree(StableStore* store, BufferPool* pool, DcLog* dc_log,
        BTreeOptions options = {});

  /// Formats the meta (catalog) page on a fresh store. The meta page id
  /// is the store's first allocation, so recovery can find it again.
  Status Bootstrap();

  /// Reloads the root cache from the (recovered) meta page.
  Status RebuildRootCache();

  /// Creates a table: allocates a root leaf and catalogs it, as one
  /// logged system transaction. kAlreadyExists if present.
  Status CreateTable(TableId table);

  /// Root page of a table, or kNotFound.
  StatusOr<PageId> GetRoot(TableId table) const;

  /// Descends to the leaf that owns `key`. On success the leaf frame is
  /// pinned and latched (exclusive or shared); the caller must unlatch
  /// and unpin. Retries internally across concurrent root changes.
  Status LocateLeaf(TableId table, Slice key, bool exclusive, Frame** out);

  /// Splits the leaf owning `key` (and any full ancestors) so that a
  /// payload of `needed` bytes can be inserted. No-op if space appeared
  /// in the meantime. Runs as one system transaction.
  Status SplitForInsert(TableId table, Slice key, size_t needed);

  /// Consolidates the leaf owning `key` with a sibling if it is under
  /// the fill threshold and the merge fits. Runs as one system
  /// transaction. Returns OK even when no merge was performed.
  Status TryConsolidate(TableId table, Slice key);

  /// Applies all committed system-transaction batches from the stable DC
  /// log (dLSN-guarded, idempotent) — the FIRST phase of DC recovery,
  /// which must complete before any TC redo (§5.2.2). Also used by the
  /// TC-crash page reset to restore evicted structure pages.
  Status ReplayStableSmoBatches();

  PageId meta_page_id() const { return meta_pid_; }
  const BTreeStats& stats() const { return stats_; }

  // -- In-page search helpers (exposed for the DataComponent & tests) ----
  /// Lower bound over leaf records; *found true on exact match.
  static uint16_t LeafLowerBound(const SlottedPage& page, Slice key,
                                 bool* found);
  /// Index of the child subtree owning `key` in an internal node.
  static uint16_t InternalChildIdx(const SlottedPage& page, Slice key);

  /// Validates tree structure for table: key order inside pages,
  /// separator consistency, leaf chain monotonicity. For tests.
  Status CheckInvariants(TableId table) const;

 private:
  struct PathEntry {
    Frame* frame;
    uint16_t child_idx;
  };

  SlottedPage PageOf(Frame* frame) const {
    return SlottedPage(frame->data.data(), pool_->page_size(),
                       pool_->trailer_capacity());
  }

  /// Descends with exclusive latches, returning the latched path
  /// root..leaf. Caller must release via ReleasePath.
  Status DescendExclusive(TableId table, Slice key,
                          std::vector<PathEntry>* path, Frame** leaf);
  void ReleasePath(std::vector<PathEntry>* path);

  /// Captures a physical-image DC-log record for a mutated page.
  DcLogRecord MakeImageRecord(Frame* frame) const;
  /// Folds a frame's abLSN into a batch causality floor.
  static void FoldFloor(const PageAbLsn& ablsn, std::map<TcId, Lsn>* floor);

  Status SetRootInMeta(TableId table, PageId root,
                       std::vector<DcLogRecord>* recs,
                       std::map<TcId, Lsn>* floor);

  Status LoadRootCache();

  StableStore* store_;
  BufferPool* pool_;
  DcLog* dc_log_;
  BTreeOptions options_;
  PageId meta_pid_ = kInvalidPageId;

  /// Serializes all structure modifications on this DC.
  std::mutex smo_mu_;

  mutable std::mutex root_mu_;
  std::map<TableId, PageId> root_cache_;

  BTreeStats stats_;
};

}  // namespace untx
