#include "dc/buffer_pool.h"

#include <cassert>
#include <chrono>

namespace untx {

BufferPool::BufferPool(StableStore* store, DcLog* dc_log,
                       BufferPoolOptions options)
    : store_(store), dc_log_(dc_log), options_(options) {}

Status BufferPool::Fetch(PageId pid, Frame** out) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    ++stats_.fetches;
    auto it = frames_.find(pid);
    if (it != frames_.end()) {
      ++stats_.hits;
      Frame* frame = it->second.get();
      ++frame->pins;
      frame->last_use = ++use_clock_;
      *out = frame;
      return Status::OK();
    }
  }
  // Miss: read outside the pool mutex.
  std::vector<char> data(store_->page_size());
  Status s = store_->Read(pid, data.data());
  if (!s.ok()) return s;

  std::lock_guard<std::mutex> guard(mu_);
  // Another thread may have raced the load.
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    Frame* frame = it->second.get();
    ++frame->pins;
    frame->last_use = ++use_clock_;
    *out = frame;
    return Status::OK();
  }
  auto frame = std::make_unique<Frame>();
  frame->pid = pid;
  frame->data = std::move(data);
  // Recover the in-memory abLSN from the page-sync trailer.
  SlottedPage page = frame->Page(page_size(), trailer_capacity());
  Slice trailer = page.ReadTrailer();
  if (!trailer.empty()) {
    PageAbLsn ab;
    if (PageAbLsn::DecodeFrom(&trailer, &ab)) {
      frame->ablsn = std::move(ab);
    }
  }
  frame->pins = 1;
  frame->last_use = ++use_clock_;
  Frame* raw = frame.get();
  frames_[pid] = std::move(frame);
  MaybeEvictLocked();
  *out = raw;
  return Status::OK();
}

Frame* BufferPool::Create(PageId pid) {
  std::lock_guard<std::mutex> guard(mu_);
  auto frame = std::make_unique<Frame>();
  frame->pid = pid;
  frame->data.assign(store_->page_size(), 0);
  frame->dirty = true;
  frame->pins = 1;
  frame->last_use = ++use_clock_;
  Frame* raw = frame.get();
  frames_[pid] = std::move(frame);
  MaybeEvictLocked();
  return raw;
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> guard(mu_);
  assert(frame->pins > 0);
  --frame->pins;
}

bool BufferPool::Drop(PageId pid) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = frames_.find(pid);
  if (it == frames_.end()) return true;
  if (it->second->pins != 0) return false;
  frames_.erase(it);
  return true;
}

void BufferPool::ForceDcLog() {
  std::vector<PageId> freed;
  dc_log_->ForceEligible(eosl_map(), &freed);
  for (PageId pid : freed) {
    Drop(pid);
    store_->Free(pid);
  }
}

Status BufferPool::TryFlushLocked(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  SlottedPage page = frame->Page(page_size(), trailer_capacity());

  // Gate (1): WAL for the DC log.
  if (page.dlsn() != kInvalidDLsn &&
      page.dlsn() >= dc_log_->stable_dlsn_end()) {
    // Try to make the SMO records stable first (their causality floors
    // may now be satisfied), then re-check.
    ForceDcLog();
    if (page.dlsn() >= dc_log_->stable_dlsn_end()) {
      return Status::Busy("dc log record for page not yet stable");
    }
  }

  PageSyncStrategy strategy = options_.strategy;
  {
    std::lock_guard<std::mutex> guard(mu_);
    // Gate (2): causality — every reflected TC op must be on the stable
    // TC log. Also fold in the freshest low-water marks (§5.1.2).
    for (const auto& [tc, lwm] : lwm_) {
      frame->ablsn.AdvanceTo(tc, lwm);
    }
    for (const auto& [tc, ab] : frame->ablsn.entries()) {
      auto it = eosl_.find(tc);
      const Lsn eosl = it == eosl_.end() ? 0 : it->second;
      if (ab.MaxCovered() > eosl) {
        return Status::Busy("page reflects ops beyond stable TC log");
      }
    }
  }

  // Gate (3): page-sync the abLSN into the trailer.
  std::string trailer;
  frame->ablsn.EncodeTo(&trailer);
  bool can_sync;
  switch (strategy) {
    case PageSyncStrategy::kWaitForLwm:
      can_sync = frame->ablsn.CollapsedAll();
      break;
    case PageSyncStrategy::kStoreFull:
      can_sync = trailer.size() <= trailer_capacity();
      break;
    case PageSyncStrategy::kHybrid:
      can_sync = frame->ablsn.TotalInSetSize() <= options_.hybrid_cap &&
                 trailer.size() <= trailer_capacity();
      break;
    default:
      can_sync = false;
      break;
  }
  if (!can_sync) {
    std::lock_guard<std::mutex> guard(mu_);
    frame->flush_waiting = true;
    ++stats_.flush_deferrals;
    return Status::Busy("page sync deferred until LWM advances");
  }

  bool wrote = page.WriteTrailer(trailer);
  assert(wrote);
  (void)wrote;
  Status s = store_->Write(frame->pid, frame->data.data());
  if (!s.ok()) return s;
  frame->dirty = false;
  frame->first_op_lsn = 0;
  frame->rec_dlsn = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    frame->flush_waiting = false;
    stats_.trailer_bytes_written += trailer.size();
    ++stats_.flushes;
  }
  sync_cv_.notify_all();
  return Status::OK();
}

size_t BufferPool::FlushAllEligible() {
  ForceDcLog();
  std::vector<PageId> pids = CachedPages();
  size_t still_dirty = 0;
  for (PageId pid : pids) {
    Frame* frame = nullptr;
    {
      std::lock_guard<std::mutex> guard(mu_);
      auto it = frames_.find(pid);
      if (it == frames_.end()) continue;
      frame = it->second.get();
      ++frame->pins;
    }
    {
      ExclusiveLatchGuard latch(&frame->latch);
      if (frame->dirty && !TryFlushLocked(frame).ok()) {
        ++still_dirty;
      }
    }
    Unpin(frame);
  }
  return still_dirty;
}

void BufferPool::OnEndOfStableLog(TcId tc, Lsn eosl) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    Lsn& current = eosl_[tc];
    if (eosl > current) current = eosl;
  }
  ForceDcLog();
  sync_cv_.notify_all();
}

void BufferPool::OnLowWaterMark(TcId tc, Lsn lwm) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (lwm_allowed_.count(tc) == 0) return;  // not re-armed yet
    Lsn& current = lwm_[tc];
    if (lwm > current) current = lwm;
  }
  // Fold the new LWM into parked frames so strategy-1/3 flushes and
  // blocked writers can make progress. Try-latch only: a frame busy in an
  // operation will pick the LWM up at its next flush attempt.
  std::vector<PageId> pids = CachedPages();
  for (PageId pid : pids) {
    Frame* frame = nullptr;
    {
      std::lock_guard<std::mutex> guard(mu_);
      auto it = frames_.find(pid);
      if (it == frames_.end()) continue;
      frame = it->second.get();
      if (!frame->flush_waiting) continue;
      ++frame->pins;
    }
    if (frame->latch.TryLockExclusive()) {
      frame->ablsn.AdvanceTo(tc, lwm);
      // Re-attempt the parked flush right away.
      TryFlushLocked(frame);
      frame->latch.UnlockExclusive();
    }
    Unpin(frame);
  }
  sync_cv_.notify_all();
}

Lsn BufferPool::eosl_for(TcId tc) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = eosl_.find(tc);
  return it == eosl_.end() ? 0 : it->second;
}

Lsn BufferPool::lwm_for(TcId tc) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = lwm_.find(tc);
  return it == lwm_.end() ? 0 : it->second;
}

std::map<TcId, Lsn> BufferPool::eosl_map() const {
  std::lock_guard<std::mutex> guard(mu_);
  return eosl_;
}

void BufferPool::AbandonParkedFlushes() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [pid, frame] : frames_) frame->flush_waiting = false;
  sync_cv_.notify_all();
}

bool BufferPool::WaitWhileFlushWaiting(Frame* frame, uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return sync_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [frame] { return !frame->flush_waiting; });
}

std::vector<PageId> BufferPool::CachedPages() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<PageId> pids;
  pids.reserve(frames_.size());
  for (const auto& [pid, frame] : frames_) pids.push_back(pid);
  return pids;
}

Lsn BufferPool::MinDirtyFirstOpLsn() const {
  std::lock_guard<std::mutex> guard(mu_);
  Lsn min = kMaxLsn;
  for (const auto& [pid, frame] : frames_) {
    if (frame->dirty && frame->first_op_lsn != 0 &&
        frame->first_op_lsn < min) {
      min = frame->first_op_lsn;
    }
  }
  return min;
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
#ifndef NDEBUG
  for (const auto& [pid, frame] : frames_) assert(frame->pins == 0);
#endif
  frames_.clear();
  eosl_.clear();
  lwm_.clear();
  // Crash-revert: every TC must re-arm its LWM after redo resend.
  lwm_allowed_.clear();
}

void BufferPool::AllowLwm(TcId tc) {
  std::lock_guard<std::mutex> guard(mu_);
  lwm_allowed_.insert(tc);
}

void BufferPool::DisallowLwm(TcId tc) {
  std::lock_guard<std::mutex> guard(mu_);
  lwm_allowed_.erase(tc);
  lwm_.erase(tc);
}

bool BufferPool::LwmAllowed(TcId tc) const {
  std::lock_guard<std::mutex> guard(mu_);
  return lwm_allowed_.count(tc) > 0;
}

bool BufferPool::ConsolidationSafe() const {
  std::lock_guard<std::mutex> guard(mu_);
  // Every TC this DC has heard from must have completed (re-armed after)
  // its redo; otherwise page merges could union time-skewed abLSNs.
  for (const auto& [tc, eosl] : eosl_) {
    if (lwm_allowed_.count(tc) == 0) return false;
  }
  for (const auto& [tc, lwm] : lwm_) {
    if (lwm_allowed_.count(tc) == 0) return false;
  }
  return true;
}

size_t BufferPool::FrameCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  return frames_.size();
}

size_t BufferPool::DirtyCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t n = 0;
  for (const auto& [pid, frame] : frames_) {
    if (frame->dirty) ++n;
  }
  return n;
}

void BufferPool::MaybeEvictLocked() {
  if (frames_.size() <= options_.capacity) return;
  // Victim: the least-recently-used unpinned clean frame.
  Frame* victim = nullptr;
  for (auto& [pid, frame] : frames_) {
    if (frame->pins == 0 && !frame->dirty &&
        (victim == nullptr || frame->last_use < victim->last_use)) {
      victim = frame.get();
    }
  }
  if (victim != nullptr) {
    ++stats_.evictions;
    frames_.erase(victim->pid);
    return;
  }
  // All candidates dirty or pinned: record the overflow; a later
  // FlushAllEligible pass will create clean victims.
  ++stats_.overflows;
}

}  // namespace untx
