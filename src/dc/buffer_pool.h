// BufferPool: the DC's cache manager (§4.1.2 responsibility 3).
//
// A page may be flushed to the stable store only when:
//   (1) every DC system-transaction record it reflects is stable in the
//       DC log (WAL for SMOs): page.dlsn <= stable DC log end;
//   (2) every TC operation it reflects is on the stable TC log
//       (causality, §4.2): per-TC abLSN max <= that TC's EOSL;
//   (3) its abstract LSN can be "synced" into the page trailer by the
//       configured §5.1.2 strategy:
//         kWaitForLwm  — wait until the abLSN collapses to <LSNlw, {}>;
//                        meanwhile refuse ops with LSN beyond the in-set.
//         kStoreFull   — serialize the whole abLSN into the trailer.
//         kHybrid      — serialize once the in-set is small enough.
//
// A DC crash is BufferPool::Clear(): cached pages vanish; the stable
// store and the stable DC log survive (§5.3).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dc/ab_lsn.h"
#include "dc/dc_log.h"
#include "storage/slotted_page.h"
#include "storage/stable_store.h"
#include "util/latch.h"

namespace untx {

enum class PageSyncStrategy : uint8_t {
  kWaitForLwm = 1,
  kStoreFull = 2,
  kHybrid = 3,
};

struct BufferPoolOptions {
  size_t capacity = 1024;
  PageSyncStrategy strategy = PageSyncStrategy::kStoreFull;
  /// kHybrid: flush once the total in-set size is at or below this.
  uint32_t hybrid_cap = 8;
};

/// One cached page. Content (data/ablsn/dirty/rec fields) is guarded by
/// `latch`; pins and recency are guarded by the pool mutex.
struct Frame {
  PageId pid = kInvalidPageId;
  std::vector<char> data;
  Latch latch;
  PageAbLsn ablsn;
  bool dirty = false;
  /// First TC op LSN applied since the frame was last clean (0 = none).
  Lsn first_op_lsn = 0;
  /// First SMO dLSN applied since the frame was last clean (0 = none);
  /// bounds how far the DC log can be truncated at a DC checkpoint.
  DLsn rec_dlsn = 0;
  /// True while a flush is parked waiting for the abLSN to shrink
  /// (strategy 1/3). Writes beyond the in-set must stall (§5.1.2(1)).
  bool flush_waiting = false;
  /// Set (under the exclusive latch) when an SMO merged this page away.
  /// Anyone who latches the frame afterwards must release and re-descend.
  bool retired = false;

  // Pool-mutex-guarded bookkeeping.
  int pins = 0;
  uint64_t last_use = 0;

  SlottedPage Page(uint32_t page_size, uint32_t trailer_capacity) {
    return SlottedPage(data.data(), page_size, trailer_capacity);
  }
};

struct BufferPoolStats {
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t flushes = 0;
  uint64_t flush_deferrals = 0;  ///< flush attempts parked by strategy
  uint64_t evictions = 0;
  uint64_t overflows = 0;        ///< frames beyond configured capacity
  uint64_t trailer_bytes_written = 0;
};

class BufferPool {
 public:
  BufferPool(StableStore* store, DcLog* dc_log, BufferPoolOptions options);

  uint32_t page_size() const { return store_->page_size(); }
  uint32_t trailer_capacity() const { return store_->trailer_capacity(); }

  /// Pins the frame for `pid`, reading it from the store if absent
  /// (decoding the trailer into the in-memory abLSN). kNotFound if the
  /// page does not exist on the store.
  Status Fetch(PageId pid, Frame** out);

  /// Pins a new frame for a freshly allocated page. The caller formats
  /// the page and marks the frame dirty before unpinning.
  Frame* Create(PageId pid);

  void Unpin(Frame* frame);

  /// Removes the frame without flushing. Returns false if the frame is
  /// still pinned (a retired frame may linger until its pins drain; it is
  /// unreachable once the parent pointer is gone). No-op => true.
  bool Drop(PageId pid);

  /// Forces eligible DC-log batches and executes their deferred page
  /// frees against the store (consolidation, §5.2.2 "Page Deletes").
  void ForceDcLog();

  /// Attempts to flush one frame; the caller must hold its exclusive
  /// latch. Returns kBusy when a WAL/causality/strategy gate defers it.
  Status TryFlushLocked(Frame* frame);

  /// Flushes every dirty frame currently eligible. Returns the number of
  /// frames that remain dirty.
  size_t FlushAllEligible();

  /// Control-message sinks.
  void OnEndOfStableLog(TcId tc, Lsn eosl);
  void OnLowWaterMark(TcId tc, Lsn lwm);

  /// LWM validity protocol (derived; see DESIGN.md §4.4): after any DC
  /// state regression (crash-revert or TC-reset), a TC's low-water mark
  /// describes executions whose page effects may have been discarded, so
  /// folding it into abLSNs would wrongly mark un-reapplied operations
  /// as covered. The DC ignores a TC's LWM until that TC re-arms it with
  /// restart-end after completing its redo resend.
  void AllowLwm(TcId tc);
  void DisallowLwm(TcId tc);
  bool LwmAllowed(TcId tc) const;

  /// True when every TC this DC serves has completed its redo resend.
  /// Page consolidations must wait for this (see DataComponent::Perform):
  /// merging pages whose abLSNs were replayed from time-skewed SMO
  /// images would union a split-copied over-coverage into the very page
  /// the covered keys route to.
  bool ConsolidationSafe() const;

  Lsn eosl_for(TcId tc) const;
  Lsn lwm_for(TcId tc) const;
  std::map<TcId, Lsn> eosl_map() const;

  /// Blocks until `frame->flush_waiting` clears or timeout. The caller
  /// must NOT hold the frame latch.
  bool WaitWhileFlushWaiting(Frame* frame, uint32_t timeout_ms);

  /// Clears every parked flush (strategy-1 §5.1.2 back-pressure). Used
  /// by redo-stream replay: there the refusal can deadlock — the stream
  /// applies in strict order, so the control that would collapse the
  /// abLSN may sit BEHIND the refused op (cancel-filtering shrinks
  /// in-sets below what live history saw). Abandoning the flush is only
  /// a space/liveness trade: the page stays dirty and a later control
  /// re-arms the flush.
  void AbandonParkedFlushes();

  /// Snapshot of currently cached page ids (for reset / checkpoint scans).
  std::vector<PageId> CachedPages() const;

  /// Lowest first_op_lsn among dirty frames (kMaxLsn if none) — the TC
  /// checkpoint uses this to pick how far the RSSP may advance.
  Lsn MinDirtyFirstOpLsn() const;

  /// Drops every frame (the DC crash). Requires no pins outstanding.
  void Clear();

  size_t FrameCount() const;
  size_t DirtyCount() const;
  const BufferPoolStats& stats() const { return stats_; }

 private:
  /// Must hold mu_. Evicts one victim if over capacity.
  void MaybeEvictLocked();

  StableStore* store_;
  DcLog* dc_log_;
  BufferPoolOptions options_;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::map<TcId, Lsn> eosl_;
  std::map<TcId, Lsn> lwm_;
  std::set<TcId> lwm_allowed_;
  uint64_t use_clock_ = 0;
  BufferPoolStats stats_;
};

/// RAII pin holder.
class PinGuard {
 public:
  PinGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
  ~PinGuard() { Release(); }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

  void Release() {
    if (frame_ != nullptr) {
      pool_->Unpin(frame_);
      frame_ = nullptr;
    }
  }

 private:
  BufferPool* pool_;
  Frame* frame_;
};

}  // namespace untx
