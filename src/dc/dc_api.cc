#include "dc/dc_api.h"

#include <algorithm>

#include "common/coding.h"
#include "net/frame.h"

namespace untx {

void OperationRequest::EncodeTo(std::string* dst) const {
  PutFixed16(dst, tc_id);
  PutVarint64(dst, lsn);
  dst->push_back(static_cast<char>(op));
  PutVarint32(dst, table_id);
  PutLengthPrefixedSlice(dst, key);
  PutLengthPrefixedSlice(dst, value);
  dst->push_back(static_cast<char>(read_flavor));
  PutVarint32(dst, limit);
  PutLengthPrefixedSlice(dst, end_key);
  dst->push_back(static_cast<char>((versioned ? 1 : 0) |
                                   (recovery_resend ? 2 : 0) |
                                   (exclusive_start ? 4 : 0)));
}

bool OperationRequest::DecodeFrom(Slice* input, OperationRequest* out) {
  uint16_t tc;
  uint64_t lsn;
  uint32_t table;
  Slice key, value, end_key;
  if (!GetFixed16(input, &tc)) return false;
  if (!GetVarint64(input, &lsn)) return false;
  if (input->empty()) return false;
  out->op = static_cast<OpType>((*input)[0]);
  input->remove_prefix(1);
  if (!GetVarint32(input, &table)) return false;
  if (!GetLengthPrefixedSlice(input, &key)) return false;
  if (!GetLengthPrefixedSlice(input, &value)) return false;
  if (input->empty()) return false;
  out->read_flavor = static_cast<ReadFlavor>((*input)[0]);
  input->remove_prefix(1);
  if (!GetVarint32(input, &out->limit)) return false;
  if (!GetLengthPrefixedSlice(input, &end_key)) return false;
  if (input->empty()) return false;
  const uint8_t flags = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  out->tc_id = tc;
  out->lsn = lsn;
  out->table_id = table;
  out->key = key.ToString();
  out->value = value.ToString();
  out->end_key = end_key.ToString();
  out->versioned = (flags & 1) != 0;
  out->recovery_resend = (flags & 2) != 0;
  out->exclusive_start = (flags & 4) != 0;
  return true;
}

void OperationReply::EncodeTo(std::string* dst) const {
  PutFixed16(dst, tc_id);
  PutVarint64(dst, lsn);
  dst->push_back(static_cast<char>(StatusCodeToByte(status.code())));
  PutLengthPrefixedSlice(dst, status.message());
  PutLengthPrefixedSlice(dst, value);
  dst->push_back(static_cast<char>((has_before ? 1 : 0) |
                                   (was_duplicate ? 2 : 0)));
  PutVarint32(dst, static_cast<uint32_t>(keys.size()));
  for (const auto& k : keys) PutLengthPrefixedSlice(dst, k);
  PutVarint32(dst, static_cast<uint32_t>(values.size()));
  for (const auto& v : values) PutLengthPrefixedSlice(dst, v);
  PutVarint64(dst, rlsn);
}

bool OperationReply::DecodeFrom(Slice* input, OperationReply* out) {
  uint16_t tc;
  uint64_t lsn;
  if (!GetFixed16(input, &tc)) return false;
  if (!GetVarint64(input, &lsn)) return false;
  if (input->empty()) return false;
  const uint8_t code = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  Slice msg, value;
  if (!GetLengthPrefixedSlice(input, &msg)) return false;
  if (!GetLengthPrefixedSlice(input, &value)) return false;
  if (input->empty()) return false;
  const uint8_t flags = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  uint32_t nkeys;
  if (!GetVarint32(input, &nkeys)) return false;
  out->keys.clear();
  out->keys.reserve(nkeys);
  for (uint32_t i = 0; i < nkeys; ++i) {
    Slice k;
    if (!GetLengthPrefixedSlice(input, &k)) return false;
    out->keys.push_back(k.ToString());
  }
  uint32_t nvalues;
  if (!GetVarint32(input, &nvalues)) return false;
  out->values.clear();
  out->values.reserve(nvalues);
  for (uint32_t i = 0; i < nvalues; ++i) {
    Slice v;
    if (!GetLengthPrefixedSlice(input, &v)) return false;
    out->values.push_back(v.ToString());
  }
  if (!GetVarint64(input, &out->rlsn)) return false;
  out->tc_id = tc;
  out->lsn = lsn;
  out->status = StatusFromByte(code, msg.ToString());
  out->value = value.ToString();
  out->has_before = (flags & 1) != 0;
  out->was_duplicate = (flags & 2) != 0;
  return true;
}

void OperationBatch::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(ops.size()));
  for (const auto& op : ops) op.EncodeTo(dst);
}

bool OperationBatch::DecodeFrom(Slice* input, OperationBatch* out) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return false;
  out->ops.clear();
  out->ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OperationRequest op;
    if (!OperationRequest::DecodeFrom(input, &op)) return false;
    out->ops.push_back(std::move(op));
  }
  return true;
}

void OperationBatchReply::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(replies.size()));
  for (const auto& reply : replies) reply.EncodeTo(dst);
}

bool OperationBatchReply::DecodeFrom(Slice* input, OperationBatchReply* out) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return false;
  out->replies.clear();
  out->replies.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OperationReply reply;
    if (!OperationReply::DecodeFrom(input, &reply)) return false;
    out->replies.push_back(std::move(reply));
  }
  return true;
}

void ScanStreamRequest::EncodeTo(std::string* dst) const {
  base.EncodeTo(dst);
  PutVarint32(dst, chunk_rows);
  PutVarint32(dst, credit_chunks);
  dst->push_back(static_cast<char>(probe_rows ? 1 : 0));
}

bool ScanStreamRequest::DecodeFrom(Slice* input, ScanStreamRequest* out) {
  if (!OperationRequest::DecodeFrom(input, &out->base)) return false;
  if (!GetVarint32(input, &out->chunk_rows)) return false;
  if (!GetVarint32(input, &out->credit_chunks)) return false;
  if (input->empty()) return false;
  out->probe_rows = ((*input)[0] & 1) != 0;
  input->remove_prefix(1);
  return true;
}

void ScanCreditRequest::EncodeTo(std::string* dst) const {
  PutFixed16(dst, tc_id);
  PutVarint64(dst, stream_id);
  PutVarint32(dst, allowed_chunks);
  dst->push_back(static_cast<char>((close ? 1 : 0) | (rewind ? 2 : 0) |
                                   (rewind_exclusive ? 4 : 0)));
  PutVarint32(dst, expect_chunk);
  PutLengthPrefixedSlice(dst, rewind_key);
  PutLengthPrefixedSlice(dst, rewind_upto);
}

bool ScanCreditRequest::DecodeFrom(Slice* input, ScanCreditRequest* out) {
  if (!GetFixed16(input, &out->tc_id)) return false;
  if (!GetVarint64(input, &out->stream_id)) return false;
  if (!GetVarint32(input, &out->allowed_chunks)) return false;
  if (input->empty()) return false;
  const uint8_t flags = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  out->close = (flags & 1) != 0;
  out->rewind = (flags & 2) != 0;
  out->rewind_exclusive = (flags & 4) != 0;
  if (!GetVarint32(input, &out->expect_chunk)) return false;
  Slice key, upto;
  if (!GetLengthPrefixedSlice(input, &key)) return false;
  if (!GetLengthPrefixedSlice(input, &upto)) return false;
  out->rewind_key = key.ToString();
  out->rewind_upto = upto.ToString();
  return true;
}

void ScanStreamChunk::EncodeTo(std::string* dst) const {
  PutFixed16(dst, tc_id);
  PutVarint64(dst, stream_id);
  PutVarint32(dst, chunk_index);
  dst->push_back(static_cast<char>((done ? 1 : 0) |
                                   (resume_exclusive ? 2 : 0)));
  PutLengthPrefixedSlice(dst, resume_key);
  dst->push_back(static_cast<char>(StatusCodeToByte(status.code())));
  PutLengthPrefixedSlice(dst, status.message());
  PutVarint32(dst, static_cast<uint32_t>(keys.size()));
  for (const auto& k : keys) PutLengthPrefixedSlice(dst, k);
  PutVarint32(dst, static_cast<uint32_t>(values.size()));
  for (const auto& v : values) PutLengthPrefixedSlice(dst, v);
  PutLengthPrefixedSlice(dst, next_key);
  PutVarint32(dst, static_cast<uint32_t>(invisible.size()));
  for (uint32_t i : invisible) PutVarint32(dst, i);
}

bool ScanStreamChunk::DecodeFrom(Slice* input, ScanStreamChunk* out) {
  if (!GetFixed16(input, &out->tc_id)) return false;
  if (!GetVarint64(input, &out->stream_id)) return false;
  if (!GetVarint32(input, &out->chunk_index)) return false;
  if (input->empty()) return false;
  const uint8_t flags = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  out->done = (flags & 1) != 0;
  out->resume_exclusive = (flags & 2) != 0;
  Slice resume;
  if (!GetLengthPrefixedSlice(input, &resume)) return false;
  out->resume_key = resume.ToString();
  if (input->empty()) return false;
  const uint8_t code = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  Slice msg;
  if (!GetLengthPrefixedSlice(input, &msg)) return false;
  out->status = StatusFromByte(code, msg.ToString());
  uint32_t nkeys;
  if (!GetVarint32(input, &nkeys)) return false;
  out->keys.clear();
  out->keys.reserve(nkeys);
  for (uint32_t i = 0; i < nkeys; ++i) {
    Slice k;
    if (!GetLengthPrefixedSlice(input, &k)) return false;
    out->keys.push_back(k.ToString());
  }
  uint32_t nvalues;
  if (!GetVarint32(input, &nvalues)) return false;
  out->values.clear();
  out->values.reserve(nvalues);
  for (uint32_t i = 0; i < nvalues; ++i) {
    Slice v;
    if (!GetLengthPrefixedSlice(input, &v)) return false;
    out->values.push_back(v.ToString());
  }
  Slice next;
  if (!GetLengthPrefixedSlice(input, &next)) return false;
  out->next_key = next.ToString();
  uint32_t ninvisible;
  if (!GetVarint32(input, &ninvisible)) return false;
  out->invisible.clear();
  out->invisible.reserve(ninvisible);
  for (uint32_t i = 0; i < ninvisible; ++i) {
    uint32_t idx;
    if (!GetVarint32(input, &idx)) return false;
    out->invisible.push_back(idx);
  }
  return true;
}

void DcService::PerformScanStream(const ScanStreamRequest& req,
                                  const ScanChunkEmitter& emit) {
  OperationRequest op = req.base;
  op.op = OpType::kScanRange;
  const uint32_t total = req.base.limit;  // 0 = unbounded
  const uint32_t chunk_rows = req.chunk_rows == 0 ? 128 : req.chunk_rows;
  uint64_t emitted = 0;
  uint32_t index = 0;
  for (;;) {
    uint32_t want = chunk_rows;
    if (total != 0) {
      want = static_cast<uint32_t>(
          std::min<uint64_t>(chunk_rows, total - emitted));
    }
    op.limit = want;
    OperationReply reply = Perform(op);
    ScanStreamChunk chunk;
    chunk.tc_id = req.base.tc_id;
    chunk.stream_id = req.base.lsn;
    chunk.chunk_index = index++;
    chunk.resume_key = op.key;
    chunk.resume_exclusive = op.exclusive_start;
    chunk.status = reply.status;
    chunk.keys = std::move(reply.keys);
    chunk.values = std::move(reply.values);
    emitted += chunk.keys.size();
    // Only an EMPTY chunk proves the range ended: a scan may return a
    // short non-empty reply without being exhausted (e.g. it gave up
    // after repeated structure changes), and the stream must resume
    // after it rather than silently truncate. Costs one extra DC-local
    // read per stream — no extra round trip.
    const bool exhausted = !chunk.status.ok() || chunk.keys.empty() ||
                           (total != 0 && emitted >= total);
    chunk.done = exhausted;
    if (!exhausted) {
      op.key = chunk.keys.back();
      op.exclusive_start = true;
    }
    emit(chunk);
    if (exhausted) return;
  }
}

void ControlRequest::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutFixed16(dst, tc_id);
  PutVarint64(dst, lsn);
  PutVarint64(dst, seq);
}

bool ControlRequest::DecodeFrom(Slice* input, ControlRequest* out) {
  if (input->empty()) return false;
  out->type = static_cast<ControlType>((*input)[0]);
  input->remove_prefix(1);
  if (!GetFixed16(input, &out->tc_id)) return false;
  if (!GetVarint64(input, &out->lsn)) return false;
  if (!GetVarint64(input, &out->seq)) return false;
  return true;
}

void ControlReply::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutFixed16(dst, tc_id);
  PutVarint64(dst, seq);
  dst->push_back(static_cast<char>(StatusCodeToByte(status.code())));
  PutLengthPrefixedSlice(dst, status.message());
  PutVarint32(dst, static_cast<uint32_t>(escalate_tcs.size()));
  for (TcId tc : escalate_tcs) PutFixed16(dst, tc);
  dst->push_back(static_cast<char>(replication_enabled ? 1 : 0));
  PutVarint64(dst, rlsn);
}

bool ControlReply::DecodeFrom(Slice* input, ControlReply* out) {
  if (input->empty()) return false;
  out->type = static_cast<ControlType>((*input)[0]);
  input->remove_prefix(1);
  if (!GetFixed16(input, &out->tc_id)) return false;
  if (!GetVarint64(input, &out->seq)) return false;
  if (input->empty()) return false;
  const uint8_t code = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  Slice msg;
  if (!GetLengthPrefixedSlice(input, &msg)) return false;
  out->status = StatusFromByte(code, msg.ToString());
  uint32_t n;
  if (!GetVarint32(input, &n)) return false;
  out->escalate_tcs.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint16_t tc;
    if (!GetFixed16(input, &tc)) return false;
    out->escalate_tcs.push_back(tc);
  }
  if (input->empty()) return false;
  out->replication_enabled = ((*input)[0] & 1) != 0;
  input->remove_prefix(1);
  if (!GetVarint64(input, &out->rlsn)) return false;
  return true;
}

std::string WrapMessage(MessageKind kind, const std::string& body) {
  return EncodeFrame(static_cast<uint8_t>(kind), body);
}

bool UnwrapMessage(const std::string& wire, MessageKind* kind, Slice* body) {
  uint8_t raw_kind = 0;
  size_t consumed = 0;
  if (DecodeFrame(wire.data(), wire.size(), &raw_kind, body, &consumed) !=
          FrameDecode::kOk ||
      consumed != wire.size()) {
    return false;
  }
  *kind = static_cast<MessageKind>(raw_kind);
  return true;
}

}  // namespace untx
