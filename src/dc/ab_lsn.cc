#include "dc/ab_lsn.h"

#include <algorithm>

#include "common/coding.h"

namespace untx {

bool AbstractLsn::Covers(Lsn lsn) const {
  if (lsn <= lw_) return true;
  return std::binary_search(in_.begin(), in_.end(), lsn);
}

void AbstractLsn::Add(Lsn lsn) {
  if (Covers(lsn)) return;
  auto it = std::lower_bound(in_.begin(), in_.end(), lsn);
  in_.insert(it, lsn);
}

void AbstractLsn::AdvanceTo(Lsn lwm) {
  if (lwm <= lw_) return;
  lw_ = lwm;
  auto it = std::upper_bound(in_.begin(), in_.end(), lw_);
  in_.erase(in_.begin(), it);
}

Lsn AbstractLsn::MaxCovered() const {
  return in_.empty() ? lw_ : in_.back();
}

void AbstractLsn::MergeFrom(const AbstractLsn& other) {
  std::vector<Lsn> merged;
  merged.reserve(in_.size() + other.in_.size());
  std::set_union(in_.begin(), in_.end(), other.in_.begin(), other.in_.end(),
                 std::back_inserter(merged));
  in_ = std::move(merged);
  AdvanceTo(other.lw_);  // also prunes entries <= the new lw
}

void AbstractLsn::EncodeTo(std::string* dst) const {
  PutVarint64(dst, lw_);
  PutVarint32(dst, static_cast<uint32_t>(in_.size()));
  // Delta-encode the in-set relative to lw_ (it is sorted and > lw_).
  Lsn prev = lw_;
  for (Lsn l : in_) {
    PutVarint64(dst, l - prev);
    prev = l;
  }
}

bool AbstractLsn::DecodeFrom(Slice* input, AbstractLsn* out) {
  uint64_t lw;
  uint32_t n;
  if (!GetVarint64(input, &lw)) return false;
  if (!GetVarint32(input, &n)) return false;
  out->lw_ = lw;
  out->in_.clear();
  out->in_.reserve(n);
  Lsn prev = lw;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t delta;
    if (!GetVarint64(input, &delta)) return false;
    if (delta == 0) return false;  // strictly ascending
    prev += delta;
    out->in_.push_back(prev);
  }
  return true;
}

size_t AbstractLsn::EncodedSize() const {
  size_t n = VarintLength(lw_) + VarintLength(in_.size());
  Lsn prev = lw_;
  for (Lsn l : in_) {
    n += VarintLength(l - prev);
    prev = l;
  }
  return n;
}

// ---- PageAbLsn --------------------------------------------------------------

namespace {
auto FindEntry(std::vector<std::pair<TcId, AbstractLsn>>& entries, TcId tc) {
  return std::lower_bound(
      entries.begin(), entries.end(), tc,
      [](const auto& e, TcId t) { return e.first < t; });
}
auto FindEntryConst(const std::vector<std::pair<TcId, AbstractLsn>>& entries,
                    TcId tc) {
  return std::lower_bound(
      entries.begin(), entries.end(), tc,
      [](const auto& e, TcId t) { return e.first < t; });
}
}  // namespace

bool PageAbLsn::Covers(TcId tc, Lsn lsn) const {
  const AbstractLsn* ab = Find(tc);
  return ab != nullptr && ab->Covers(lsn);
}

void PageAbLsn::Add(TcId tc, Lsn lsn) {
  auto it = FindEntry(entries_, tc);
  if (it == entries_.end() || it->first != tc) {
    it = entries_.insert(it, {tc, AbstractLsn()});
  }
  it->second.Add(lsn);
}

void PageAbLsn::AdvanceTo(TcId tc, Lsn lwm) {
  AbstractLsn* ab = FindMutable(tc);
  if (ab != nullptr) ab->AdvanceTo(lwm);
}

Lsn PageAbLsn::MaxCoveredAll() const {
  Lsn max = 0;
  for (const auto& [tc, ab] : entries_) {
    max = std::max(max, ab.MaxCovered());
  }
  return max;
}

Lsn PageAbLsn::MaxCoveredFor(TcId tc) const {
  const AbstractLsn* ab = Find(tc);
  return ab == nullptr ? 0 : ab->MaxCovered();
}

bool PageAbLsn::CollapsedAll() const {
  for (const auto& [tc, ab] : entries_) {
    if (!ab.Collapsed()) return false;
  }
  return true;
}

size_t PageAbLsn::TotalInSetSize() const {
  size_t n = 0;
  for (const auto& [tc, ab] : entries_) n += ab.in_set_size();
  return n;
}

bool PageAbLsn::HasTc(TcId tc) const { return Find(tc) != nullptr; }

const AbstractLsn* PageAbLsn::Find(TcId tc) const {
  auto it = FindEntryConst(entries_, tc);
  if (it == entries_.end() || it->first != tc) return nullptr;
  return &it->second;
}

AbstractLsn* PageAbLsn::FindMutable(TcId tc) {
  auto it = FindEntry(entries_, tc);
  if (it == entries_.end() || it->first != tc) return nullptr;
  return &it->second;
}

void PageAbLsn::Set(TcId tc, AbstractLsn ab) {
  auto it = FindEntry(entries_, tc);
  if (it == entries_.end() || it->first != tc) {
    entries_.insert(it, {tc, std::move(ab)});
  } else {
    it->second = std::move(ab);
  }
}

void PageAbLsn::Erase(TcId tc) {
  auto it = FindEntry(entries_, tc);
  if (it != entries_.end() && it->first == tc) entries_.erase(it);
}

void PageAbLsn::MergeFrom(const PageAbLsn& other) {
  for (const auto& [tc, ab] : other.entries_) {
    AbstractLsn* mine = FindMutable(tc);
    if (mine == nullptr) {
      Set(tc, ab);
    } else {
      mine->MergeFrom(ab);
    }
  }
}

void PageAbLsn::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(entries_.size()));
  for (const auto& [tc, ab] : entries_) {
    PutFixed16(dst, tc);
    ab.EncodeTo(dst);
  }
}

bool PageAbLsn::DecodeFrom(Slice* input, PageAbLsn* out) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return false;
  out->entries_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint16_t tc;
    AbstractLsn ab;
    if (!GetFixed16(input, &tc)) return false;
    if (!AbstractLsn::DecodeFrom(input, &ab)) return false;
    out->entries_.emplace_back(tc, std::move(ab));
  }
  return true;
}

size_t PageAbLsn::EncodedSize() const {
  size_t n = VarintLength(entries_.size());
  for (const auto& [tc, ab] : entries_) {
    n += sizeof(uint16_t) + ab.EncodedSize();
  }
  return n;
}

}  // namespace untx
