// DcRedoLog: the DC's ordered log of applied operations — the durable
// spine of PR 8's replication and local-recovery layer.
//
// The TC's redo-resend protocol (§5.3.2 "DC Failure") rebuilds a crashed
// DC from every TC's log; that is the one recovery path whose cost grows
// with TC count and history length. The DcRedoLog gives the DC its own
// recovery capital: every logically-completed mutating operation is
// appended (as its encoded OperationRequest) in apply order BEFORE the
// reply is released, so
//
//   * a primary with a backing file can replay itself back to its
//     pre-crash state locally (`untx_dcd --recover`), after which TCs
//     only resend unacknowledged in-flight operations;
//   * replicas subscribe to the stream and apply it continuously,
//     acking a replication LSN (rlsn) — a caught-up standby can be
//     promoted with zero full redo-resend.
//
// rlsn is 1-based and dense: entry i (0-based) has rlsn i+1; rlsn 0
// means "none". Durability mirrors wal/StableLog: [1, durable_end] is
// stable (file-backed when a path is set), (durable_end, end] is the
// volatile tail dropped by Crash(). Control entries (TC resets, LWM and
// EOSL pushes, checkpoint watermarks) interleave with ops so a replica
// can reproduce the primary's page-reset/pruning decisions by replay.
//
// When replication is on, the full log is retained from rlsn 1 (no
// prefix truncation) so a rejoining ex-primary or a fresh replica can
// always catch up from any acked position — a deliberate simplification
// over checkpoint-anchored log shipping.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace untx {

enum class RedoEntryKind : uint8_t {
  /// payload = encoded OperationRequest that logically completed.
  kOp = 1,
  /// A TC reset (kRestartBegin): tc + its declared stable log end.
  /// Replicas reproduce the page-drop semantics by cancel-filtered
  /// replay (an op entry of this TC with lsn > stable_end is lost work).
  kReset = 2,
  /// LWM push: tc + low-water-mark lsn (reply-cache pruning point).
  kLwm = 3,
  /// EOSL push: tc + end-of-stable-log lsn.
  kEosl = 4,
  /// DC checkpoint marker: lsn = redo end W sampled when the page flush
  /// began. Local recovery replays from the latest watermark (every op
  /// at rlsn <= W is reflected in the checkpointed pages).
  kWatermark = 5,
};

struct RedoEntry {
  RedoEntryKind kind = RedoEntryKind::kOp;
  TcId tc = 0;
  /// kOp: the operation's TC lsn (duplicated out of the payload so
  /// cancellation filtering and checkpoint clamping need not decode it);
  /// kReset: the TC's stable_end; kLwm/kEosl: the pushed lsn;
  /// kWatermark: the watermark rlsn W.
  uint64_t lsn = 0;
  /// kOp: the encoded OperationRequest, byte-identical to the wire form.
  std::string payload;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, RedoEntry* out);
};

struct DcRedoLogOptions {
  /// Non-empty: back the durable prefix with this file (appended at
  /// Force(), fflushed — survives SIGKILL like wal/StableLog's backing).
  std::string path;
};

class DcRedoLog {
 public:
  explicit DcRedoLog(DcRedoLogOptions options = {});
  ~DcRedoLog();

  /// Appends one entry to the volatile tail; returns its rlsn (1-based).
  uint64_t Append(RedoEntry entry);

  /// Makes the whole tail durable (file-backed when a path is set).
  /// Returns the new durable end rlsn.
  uint64_t Force();

  /// rlsn of the last appended entry (0 = empty log).
  uint64_t end() const;
  /// rlsn of the last durable entry.
  uint64_t durable_end() const;

  Status ReadAt(uint64_t rlsn, RedoEntry* out) const;

  /// Copies up to `max_entries` DURABLE entries starting at `from_rlsn`
  /// (inclusive) into `out`; returns the rlsn of the first copied entry
  /// (== from_rlsn clamped up), or 0 when nothing is available. Reads
  /// stop at durable_end(): a volatile entry must never ship to a
  /// replica, or a primary crash before its Force() would leave the
  /// replica with a divergent suffix the primary's own recovery cannot
  /// reproduce.
  uint64_t ReadFrom(uint64_t from_rlsn, uint32_t max_entries,
                    std::vector<RedoEntry>* out) const;

  /// Blocks until durable_end() > after_rlsn or the timeout elapses.
  /// Shipper threads park here instead of spinning on ReadFrom.
  bool WaitDurable(uint64_t after_rlsn, uint32_t timeout_ms) const;

  /// Smallest TC-lsn among kOp entries of `tc` with rlsn > after_rlsn
  /// (UINT64_MAX when none). The checkpoint clamp: a TC may not truncate
  /// its log below an op the slowest replica has not acked, else a later
  /// failover could not re-drive it.
  uint64_t MinOpLsnAfter(uint64_t after_rlsn, TcId tc) const;

  /// Drops the volatile tail (the DC crash).
  void Crash();

  /// Drops every entry with rlsn >= `rlsn` — durable or not — and
  /// rewrites the backing file. Used when an ex-primary rejoins as a
  /// replica: its suffix past the promotion base diverged from the new
  /// primary's history.
  void TruncateFrom(uint64_t rlsn);

  /// Largest watermark W recorded by a kWatermark entry at or below the
  /// current end (0 = none; local recovery then replays from rlsn 1).
  uint64_t latest_watermark() const;

  /// True if any retained entry is a kReset — the durable pages may be
  /// ahead of a cancel-filtered history, so local recovery must replay
  /// the full cancel-filtered log from rlsn 1, not just the suffix past
  /// the watermark.
  bool has_reset() const;

  /// The replay set, in rlsn order: every entry except kReset markers
  /// and cancelled ops. An op entry e (of TC t, lsn l) is cancelled iff
  /// a LATER kReset entry r has r.tc == t and l > r.lsn (the TC
  /// declared it lost). Control entries (LWM/EOSL/watermark) are kept
  /// so a long replay reproduces the primary's flush-eligibility and
  /// pruning cadence instead of jamming the pool on unflushable dirt.
  void SnapshotSurvivingOps(std::vector<RedoEntry>* out) const;

  // -- Replication bookkeeping (primary side) ---------------------------------
  void set_replication_enabled(bool on);
  bool replication_enabled() const;

  /// Records replica `replica_id`'s acked rlsn (monotonic per replica).
  void RecordReplicaAck(uint32_t replica_id, uint64_t rlsn);
  void ForgetReplica(uint32_t replica_id);
  /// Smallest acked rlsn over registered replicas; end() when none are
  /// registered (no clamp).
  uint64_t MinReplicaAck() const;
  /// end() - MinReplicaAck(): how far the slowest replica trails.
  uint64_t MaxReplicaLag() const;
  std::map<uint32_t, uint64_t> ReplicaAcks() const;

  uint64_t bytes_appended() const;

 private:
  void LoadFile();
  /// Appends entries (durable_end_, upto] to the backing file. mu_ held.
  void PersistRangeLocked(uint64_t upto);
  /// Rewrites the backing file with the retained entries. mu_ held.
  void RewriteFileLocked();
  void RecomputeDerivedLocked();

  DcRedoLogOptions options_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mu_;
  mutable std::condition_variable durable_cv_;
  std::vector<RedoEntry> entries_;  // entries_[i] has rlsn i+1
  uint64_t durable_end_ = 0;
  uint64_t latest_watermark_ = 0;
  bool has_reset_ = false;
  bool replication_enabled_ = false;
  std::map<uint32_t, uint64_t> replica_acks_;
  uint64_t bytes_appended_ = 0;
};

// -- Replication wire messages -------------------------------------------------
//
// Shipped as net/frame.h frames with the kReplica* MessageKinds
// (dc/dc_api.h). A replica session sends one subscribe, the primary
// streams entry batches, the replica acks its applied rlsn.

struct ReplicaSubscribeRequest {
  uint32_t replica_id = 0;
  /// First rlsn the replica wants (its own end + 1).
  uint64_t from_rlsn = 1;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, ReplicaSubscribeRequest* out);
};

struct ReplicaEntriesMessage {
  /// rlsn of entries[0]; dense from there.
  uint64_t from_rlsn = 0;
  /// Primary's current end, so the replica can expose lag even when the
  /// batch is a partial catch-up.
  uint64_t primary_end = 0;
  std::vector<RedoEntry> entries;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, ReplicaEntriesMessage* out);
};

struct ReplicaAckMessage {
  uint32_t replica_id = 0;
  /// Every entry with rlsn <= acked is applied and durable at the
  /// replica (per its own force policy).
  uint64_t acked_rlsn = 0;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, ReplicaAckMessage* out);
};

}  // namespace untx
