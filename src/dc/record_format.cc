#include "dc/record_format.h"

#include "common/coding.h"

namespace untx {

std::string LeafRecord::Encode() const {
  std::string out;
  PutLengthPrefixedSlice(&out, key);
  PutFixed16(&out, last_writer_tc);
  out.push_back(static_cast<char>(flags));
  PutLengthPrefixedSlice(&out, value);
  if (has_before()) {
    PutLengthPrefixedSlice(&out, before);
  }
  return out;
}

bool LeafRecord::Decode(Slice payload, LeafRecord* out) {
  Slice key, value;
  if (!GetLengthPrefixedSlice(&payload, &key)) return false;
  if (!GetFixed16(&payload, &out->last_writer_tc)) return false;
  if (payload.empty()) return false;
  out->flags = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  if (!GetLengthPrefixedSlice(&payload, &value)) return false;
  out->key = key.ToString();
  out->value = value.ToString();
  out->before.clear();
  if (out->has_before()) {
    Slice before;
    if (!GetLengthPrefixedSlice(&payload, &before)) return false;
    out->before = before.ToString();
  }
  return true;
}

bool LeafRecord::DecodeKey(Slice payload, Slice* key) {
  return GetLengthPrefixedSlice(&payload, key);
}

std::string InternalEntry::Encode() const {
  std::string out;
  PutLengthPrefixedSlice(&out, separator);
  PutFixed32(&out, child);
  return out;
}

bool InternalEntry::Decode(Slice payload, InternalEntry* out) {
  Slice sep;
  if (!GetLengthPrefixedSlice(&payload, &sep)) return false;
  uint32_t child;
  if (!GetFixed32(&payload, &child)) return false;
  out->separator = sep.ToString();
  out->child = child;
  return true;
}

bool InternalEntry::DecodeKey(Slice payload, Slice* key) {
  return GetLengthPrefixedSlice(&payload, key);
}

}  // namespace untx
