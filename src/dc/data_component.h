// DataComponent: the DC of the unbundled kernel (§4.1.2).
//
// "The DC acts as a server for requests from the TC. It is responsible
// for organizing, searching, updating, caching and durability for the
// data in the database. It supports a non-transactional, record oriented
// interface."
//
// Responsibilities implemented here:
//  * atomic logical record operations over the B-tree (page latches held
//    for the duration of one operation only);
//  * idempotence via abstract page LSNs + a volatile reply cache pruned
//    by the TC's low-water mark, so resends return the original result;
//  * record versioning (before-versions) for cross-TC read committed
//    (§6.2.2), with promote/rollback version operations;
//  * the control half of the TC:DC contract: EOSL, LWM, checkpoint,
//    restart/reset, DC-local checkpoint;
//  * crash (lose buffer pool, reply caches, volatile DC log) and recovery
//    (replay committed SMOs *before* any TC redo, §5.2.2);
//  * the TC-crash page reset of §5.3.2/§6.1.2: evict exactly the cached
//    pages whose abLSN covers operations beyond the failed TC's stable
//    log; on multi-TC pages, reset only the failed TC's records.
//
// A debug "conflict sentinel" asserts the TC obligation that no two
// conflicting operations are ever in flight concurrently (§1.2).
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dc/btree.h"
#include "dc/buffer_pool.h"
#include "dc/dc_api.h"
#include "dc/dc_log.h"
#include "storage/stable_store.h"

namespace untx {

struct DataComponentOptions {
  BufferPoolOptions buffer_pool;
  BTreeOptions btree;
  StableLogOptions dc_log;
  /// Debug-mode check that the TC never sends concurrent conflicting ops.
  bool conflict_sentinel = true;
  /// Upper bound on value size; several records must fit per page.
  uint32_t max_value_size = 1024;
  /// Default result bound for scans/probes when the request says 0.
  uint32_t default_scan_limit = 256;
};

struct DataComponentStats {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> batches{0};          ///< PerformBatch calls
  std::atomic<uint64_t> batched_ops{0};      ///< ops arriving inside batches
  std::atomic<uint64_t> duplicate_hits{0};   ///< idempotence filter hits
  std::atomic<uint64_t> reply_cache_hits{0};
  std::atomic<uint64_t> conflicts_detected{0};
  std::atomic<uint64_t> pages_reset_dropped{0};
  std::atomic<uint64_t> pages_reset_merged{0};
  std::atomic<uint64_t> reset_escalations{0};
};

class DataComponent : public DcService {
 public:
  DataComponent(StableStore* store, DataComponentOptions options = {});
  ~DataComponent() override;

  /// Formats a fresh store (meta page). Call exactly once per store.
  Status Initialize();

  /// Post-crash recovery phase 1: make the search structures well-formed
  /// by replaying committed system transactions — must complete before
  /// the TC performs redo (§5.2.2). The TC then resends from its RSSP.
  Status Recover();

  /// Simulated crash: loses the buffer pool, reply caches and the
  /// volatile DC-log tail. Blocks new operations until Restore().
  void Crash();

  /// Powers the component back up (still needs Recover()).
  void Restore();

  bool crashed() const { return crashed_.load(); }

  // -- DcService ------------------------------------------------------------
  OperationReply Perform(const OperationRequest& req) override;
  ControlReply Control(const ControlRequest& req) override;

  /// Batched entry point for the kOperationBatch wire message. Sweeps the
  /// reply cache once (one lock acquisition) for every write in the
  /// batch — a resent batch is answered wholesale from cached replies —
  /// then performs the misses in request order.
  std::vector<OperationReply> PerformBatch(
      const std::vector<OperationRequest>& reqs) override;

  // -- Introspection (tests, benches, wired deployments) ---------------------
  BufferPool* pool() { return pool_.get(); }
  BTree* btree() { return btree_.get(); }
  DcLog* dc_log() { return dc_log_.get(); }
  StableStore* store() { return store_; }
  const DataComponentStats& stats() const { return stats_; }
  const DataComponentOptions& options() const { return options_; }

 private:
  struct ApplyOutcome {
    bool need_split = false;
    bool need_flush_wait = false;
    bool need_retry = false;
    bool maybe_consolidate = false;
    std::string consolidate_key;
  };

  OperationReply ApplyOnce(const OperationRequest& req, ApplyOutcome* out);
  OperationReply DoRead(const OperationRequest& req);
  OperationReply DoScan(const OperationRequest& req);
  OperationReply DoCreateTable(const OperationRequest& req);

  /// Write-op application on a latched leaf. Returns the reply; sets
  /// outcome flags for split/consolidate needs.
  OperationReply ApplyWriteOnLeaf(const OperationRequest& req, Frame* leaf,
                                  ApplyOutcome* out);

  Status DoTcCheckpoint(TcId tc, Lsn new_rssp);
  Status DoDcCheckpoint();
  Status DoReset(TcId tc, Lsn stable_end, std::vector<TcId>* escalate);

  /// Per-record reset of a multi-TC page against its stable version
  /// (§6.1.2). Caller holds the exclusive latch. Returns false if the
  /// merge could not be performed (caller escalates).
  bool MergeResetLocked(Frame* frame, TcId tc, const std::vector<char>& stable);

  // Reply cache.
  void CacheReply(const OperationReply& reply);
  bool LookupReply(TcId tc, Lsn lsn, OperationReply* out);
  void PruneReplies(TcId tc, Lsn lwm);

  // Conflict sentinel.
  bool EnterSentinel(const OperationRequest& req, bool* duplicate_in_flight);
  void ExitSentinel(const OperationRequest& req);

  StableStore* store_;
  DataComponentOptions options_;
  std::unique_ptr<DcLog> dc_log_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> btree_;

  std::atomic<bool> crashed_{false};
  std::atomic<int> active_ops_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  std::mutex reply_mu_;
  std::map<TcId, std::map<Lsn, OperationReply>> reply_cache_;

  std::mutex sentinel_mu_;
  // (table|key) -> (tc, lsn) of the in-flight conflicting op.
  std::unordered_map<std::string, std::pair<TcId, Lsn>> in_flight_;

  DataComponentStats stats_;
};

}  // namespace untx
