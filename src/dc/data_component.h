// DataComponent: the DC of the unbundled kernel (§4.1.2).
//
// "The DC acts as a server for requests from the TC. It is responsible
// for organizing, searching, updating, caching and durability for the
// data in the database. It supports a non-transactional, record oriented
// interface."
//
// Responsibilities implemented here:
//  * atomic logical record operations over the B-tree (page latches held
//    for the duration of one operation only);
//  * idempotence via abstract page LSNs + a volatile reply cache pruned
//    by the TC's low-water mark, so resends return the original result;
//  * record versioning (before-versions) for cross-TC read committed
//    (§6.2.2), with promote/rollback version operations;
//  * the control half of the TC:DC contract: EOSL, LWM, checkpoint,
//    restart/reset, DC-local checkpoint;
//  * crash (lose buffer pool, reply caches, volatile DC log) and recovery
//    (replay committed SMOs *before* any TC redo, §5.2.2);
//  * the TC-crash page reset of §5.3.2/§6.1.2: evict exactly the cached
//    pages whose abLSN covers operations beyond the failed TC's stable
//    log; on multi-TC pages, reset only the failed TC's records.
//
// A debug "conflict sentinel" asserts the TC obligation that no two
// conflicting operations are ever in flight concurrently (§1.2).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dc/btree.h"
#include "dc/buffer_pool.h"
#include "dc/dc_api.h"
#include "dc/dc_log.h"
#include "dc/dc_redo_log.h"
#include "storage/stable_store.h"

namespace untx {

struct DataComponentOptions {
  BufferPoolOptions buffer_pool;
  BTreeOptions btree;
  StableLogOptions dc_log;
  /// Debug-mode check that the TC never sends concurrent conflicting ops.
  bool conflict_sentinel = true;
  /// Upper bound on value size; several records must fit per page.
  uint32_t max_value_size = 1024;
  /// Default result bound for scans/probes when the request says 0.
  uint32_t default_scan_limit = 256;
  /// A parked scan cursor (credited stream out of credit, or a probe
  /// stream whose TC went silent) is evicted after this long idle — the
  /// backstop for abandoned streams whose close message never arrived.
  /// Must exceed the TC's lock wait timeout: a fetch-ahead window can
  /// legitimately sit idle for a full lock wait between its probe chunk
  /// and the rewind credit.
  uint32_t scan_cursor_ttl_ms = 10000;
  /// Maintain a DcRedoLog of applied operations (PR 8): required for
  /// replication (primary or replica role) and for local --recover.
  bool redo_log_enabled = false;
  DcRedoLogOptions redo_log;
};

/// Replication role. A replica applies the primary's redo stream via
/// ApplyReplicated() and rejects direct TC traffic (it is not in any
/// TC's routing table until promoted); Promote() fences it at a
/// promotion epoch and opens it for TC traffic.
enum class DcRole : uint8_t {
  kPrimary = 0,
  kReplica = 1,
};

struct DataComponentStats {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> batches{0};          ///< PerformBatch calls
  std::atomic<uint64_t> batched_ops{0};      ///< ops arriving inside batches
  std::atomic<uint64_t> duplicate_hits{0};   ///< idempotence filter hits
  std::atomic<uint64_t> reply_cache_hits{0};
  std::atomic<uint64_t> conflicts_detected{0};
  std::atomic<uint64_t> pages_reset_dropped{0};
  std::atomic<uint64_t> pages_reset_merged{0};
  std::atomic<uint64_t> reset_escalations{0};
  /// Post-regression redo passes that overrode a stale abLSN coverage
  /// claim (split-copied / merge-unioned over-coverage on a reverted
  /// page) and re-executed the op instead.
  std::atomic<uint64_t> redo_stale_coverage_overrides{0};
  // Scan-stream cursor machinery (PR 4).
  std::atomic<uint64_t> scan_streams{0};        ///< streams opened
  std::atomic<uint64_t> scan_chunks_emitted{0};
  std::atomic<uint64_t> scan_stream_pauses{0};  ///< credit ran out
  std::atomic<uint64_t> scan_rewinds{0};        ///< validated-window re-reads
  /// Chunk productions that resumed from the cursor's pinned-leaf hint
  /// vs. those that had to re-descend (hint invalidated by an SMO, or a
  /// fresh stream).
  std::atomic<uint64_t> scan_cursor_hint_hits{0};
  std::atomic<uint64_t> scan_cursor_descends{0};
  std::atomic<uint64_t> scan_cursors_evicted{0};
  // Replication + local recovery (PR 8).
  std::atomic<uint64_t> redo_entries_appended{0};
  std::atomic<uint64_t> replica_entries_applied{0};  ///< entries absorbed from a primary
  std::atomic<uint64_t> replica_resets_replayed{0};  ///< full reset-by-replay rebuilds
  std::atomic<uint64_t> local_recovery_ops{0};       ///< ops replayed by --recover
  std::atomic<uint64_t> promotions{0};
};

class DataComponent : public DcService {
 public:
  DataComponent(StableStore* store, DataComponentOptions options = {});
  ~DataComponent() override;

  /// Formats a fresh store (meta page). Call exactly once per store.
  Status Initialize();

  /// Post-crash recovery phase 1: make the search structures well-formed
  /// by replaying committed system transactions — must complete before
  /// the TC performs redo (§5.2.2). The TC then resends from its RSSP.
  Status Recover();

  /// Simulated crash: loses the buffer pool, reply caches and the
  /// volatile DC-log tail. Blocks new operations until Restore().
  void Crash();

  /// Powers the component back up (still needs Recover()).
  void Restore();

  bool crashed() const { return crashed_.load(); }

  // -- DcService ------------------------------------------------------------
  OperationReply Perform(const OperationRequest& req) override;
  ControlReply Control(const ControlRequest& req) override;

  /// Batched entry point for the kOperationBatch wire message. Sweeps the
  /// reply cache once (one lock acquisition) for every write in the
  /// batch — a resent batch is answered wholesale from cached replies —
  /// then performs the misses in request order.
  std::vector<OperationReply> PerformBatch(
      const std::vector<OperationRequest>& reqs) override;

  /// Credited, cursor-holding scan streams: production pauses when the
  /// chunk window (ScanStreamRequest::credit_chunks) is exhausted and the
  /// stream parks as a DC-side cursor — resume key + leaf hint — so a
  /// later kScanCredit resumes WITHOUT re-descending the B-tree (the hint
  /// is validated against SMO retirement and falls back to a descent).
  /// Cursors are evicted on stream completion, an explicit close credit,
  /// the owning TC's reset, DC crash, or the idle TTL.
  void PerformScanStream(const ScanStreamRequest& req,
                         const ScanChunkEmitter& emit) override;
  void ScanCredit(const ScanCreditRequest& req,
                  const ScanChunkEmitter& emit) override;

  /// Open (parked or in-production) scan cursors. For tests.
  size_t ScanCursorCount() const;
  /// A TC's network session dropped: evict its parked scan cursors (a
  /// reconnecting TC restarts streams from scratch). The reply cache is
  /// deliberately KEPT — the TC will resend in-flight ops after the
  /// redial and idempotence depends on the cached replies; the LWM prunes
  /// them as always (§4.2).
  void OnTcDisconnect(TcId tc);
  /// Evicts cursors idle longer than the TTL; returns how many. Runs
  /// implicitly on every stream open / credit; exposed for tests.
  size_t EvictIdleScanCursors();

  // -- Replication & local recovery (PR 8) -----------------------------------

  DcRole role() const { return role_.load(); }
  uint64_t promotion_epoch() const { return promotion_epoch_.load(); }
  /// Redo end at the moment of promotion — the rlsn a rejoining
  /// ex-primary truncates its own log back to.
  uint64_t promotion_base() const { return promotion_base_.load(); }

  /// Puts the DC into replica role (before any traffic). It will only
  /// mutate through ApplyReplicated() until promoted.
  void StartAsReplica();

  /// Fences the replica at `epoch` and opens it as the primary. The
  /// reply cache built while applying the stream answers in-flight TC
  /// resends idempotently, so a caught-up standby promotes with zero
  /// full redo-resend.
  void Promote(uint64_t epoch);

  /// A recovered ex-primary rejoining as a replica of the new primary:
  /// drops its redo suffix past the promotion base (that suffix may
  /// contain ops the new primary never acked and orders differently)
  /// and re-enters replica role. The overlap the new primary re-ships
  /// is absorbed by abLSN duplicate detection.
  Status RejoinAsReplica(uint64_t promotion_base);

  /// Applies one shipped batch (replica role). Entries must extend the
  /// local log densely: a gap returns InvalidArgument and the caller
  /// re-subscribes from redo_log()->end() + 1. Appends each entry to
  /// the local redo log (same rlsn as the primary) and forces once.
  Status ApplyReplicated(const ReplicaEntriesMessage& msg);

  /// Local recovery from the DC's own durable state (untx_dcd
  /// --recover): call after Recover(), with the store's pages loaded
  /// from disk. Replays the cancel-filtered op log from rlsn 1; ops
  /// already reflected in checkpointed pages are skipped by abLSN
  /// duplicate detection, so the pass is cheap when checkpoints are
  /// fresh. TCs then resend only unacknowledged in-flight suffixes.
  Status RecoverFromLocalLog(uint64_t* replayed_out = nullptr);

  // -- Introspection (tests, benches, wired deployments) ---------------------
  BufferPool* pool() { return pool_.get(); }
  BTree* btree() { return btree_.get(); }
  DcLog* dc_log() { return dc_log_.get(); }
  DcRedoLog* redo_log() { return redo_log_.get(); }
  StableStore* store() { return store_; }
  const DataComponentStats& stats() const { return stats_; }
  const DataComponentOptions& options() const { return options_; }

 private:
  struct ApplyOutcome {
    bool need_split = false;
    bool need_flush_wait = false;
    bool need_retry = false;
    bool maybe_consolidate = false;
    std::string consolidate_key;
  };

  /// The Perform body. `record_redo`: append logically-completed writes
  /// to the redo log (false on replica apply and local replay — those
  /// manage the log themselves). `defer_redo_force`: skip the per-op
  /// Force (the caller forces once for the whole batch).
  OperationReply PerformImpl(const OperationRequest& req, bool record_redo,
                             bool defer_redo_force);
  /// Appends `req` to the redo log and stamps reply->rlsn if the reply
  /// is a non-duplicate logical completion (the abLSN advanced).
  void MaybeAppendRedo(const OperationRequest& req, OperationReply* reply,
                       bool record, bool defer_force);
  /// Appends a control entry (reset / lwm / eosl / watermark) and forces
  /// it — control entries are low-rate and must never ship volatile.
  void AppendRedoControl(RedoEntryKind kind, TcId tc, uint64_t lsn);
  /// The replica's response to a kReset entry: full wipe (store, SMO
  /// log, tree) + cancel-filtered replay of the retained redo log. The
  /// primary resets by dropping exactly the covered pages, but the
  /// replica's page/flush history diverges from the primary's, so the
  /// per-page protocol does not transfer — rebuilding from the filtered
  /// history does.
  Status ReplicaResetByReplay();
  /// Applies one redo entry without touching the redo log (the caller
  /// owns append/force bookkeeping). kReset is a no-op here.
  Status ApplyOneReplicated(const RedoEntry& entry);
  /// Applies a replay set in order; counts op entries into *ops.
  Status ReplayRedoEntries(const std::vector<RedoEntry>& entries,
                           uint64_t* ops);

  OperationReply ApplyOnce(const OperationRequest& req, ApplyOutcome* out);
  OperationReply DoRead(const OperationRequest& req);
  OperationReply DoScan(const OperationRequest& req);
  OperationReply DoCreateTable(const OperationRequest& req);

  /// One open scan stream's DC-side state. `mu` serializes chunk
  /// production (two server threads may race a credit and the original
  /// request); the table mutex only guards lookup/insert/erase.
  struct ScanCursor {
    ScanStreamRequest req;
    std::mutex mu;
    std::string resume_key;
    bool resume_exclusive = false;
    uint64_t emitted_rows = 0;
    uint32_t next_chunk = 0;
    /// Absolute chunk window: chunks [0, allowed) may be produced.
    uint32_t allowed = 0;
    /// Last leaf the cursor stopped in — the latch-coupled resume hint.
    PageId leaf_hint = kInvalidPageId;
    /// Atomic: checked by the table-maintenance paths without mu.
    std::atomic<bool> exhausted{false};
    /// Steady-clock millis; atomic so the TTL sweep can read it while a
    /// producer holds mu.
    std::atomic<int64_t> last_active_ms{0};
  };

  /// Produces chunks for `cursor` until its credit window or the range
  /// is exhausted, applying an optional rewind first. Holds cursor->mu.
  void ProduceScanChunks(const std::shared_ptr<ScanCursor>& cursor,
                         const ScanChunkEmitter& emit,
                         const ScanCreditRequest* credit);

  /// Reads one window from (start, start_exclusive) bounded by
  /// `end_bound` (exclusive; empty = unbounded) into `chunk`, using and
  /// updating the cursor's leaf hint. Sets *exhausted when the range
  /// ended inside this window, and advances the cursor's resume
  /// position past the window (to next_key inclusively when the probe
  /// peeked one, else past the last read key). Caller holds cursor->mu.
  void ReadScanWindow(ScanCursor* cursor, std::string start,
                      bool start_exclusive, const std::string& end_bound,
                      uint32_t max_rows, bool peek_next,
                      ScanStreamChunk* chunk, bool* exhausted);

  void EvictScanCursorsForTc(TcId tc);
  void ClearScanCursors();

  /// Write-op application on a latched leaf. Returns the reply; sets
  /// outcome flags for split/consolidate needs.
  OperationReply ApplyWriteOnLeaf(const OperationRequest& req, Frame* leaf,
                                  ApplyOutcome* out);

  Status DoTcCheckpoint(TcId tc, Lsn new_rssp);
  Status DoDcCheckpoint();
  Status DoReset(TcId tc, Lsn stable_end, std::vector<TcId>* escalate);

  /// Per-record reset of a multi-TC page against its stable version
  /// (§6.1.2). Caller holds the exclusive latch. Returns false if the
  /// merge could not be performed (caller escalates).
  bool MergeResetLocked(Frame* frame, TcId tc, const std::vector<char>& stable);

  // Reply cache.
  void CacheReply(const OperationReply& reply);
  bool LookupReply(TcId tc, Lsn lsn, OperationReply* out);
  void PruneReplies(TcId tc, Lsn lwm);

  // Conflict sentinel.
  bool EnterSentinel(const OperationRequest& req, bool* duplicate_in_flight);
  void ExitSentinel(const OperationRequest& req);

  StableStore* store_;
  DataComponentOptions options_;
  std::unique_ptr<DcLog> dc_log_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> btree_;
  std::unique_ptr<DcRedoLog> redo_log_;  // null unless redo_log_enabled

  std::atomic<DcRole> role_{DcRole::kPrimary};
  std::atomic<uint64_t> promotion_epoch_{0};
  std::atomic<uint64_t> promotion_base_{0};
  /// True while the DC's state provably reflects every durable redo-log
  /// entry (normal operation, successful local replay, replica apply).
  /// False after a crash or when a log was loaded from disk without a
  /// replay — kQueryReplication then reports rlsn 0 and TCs degrade to
  /// the full redo-resend instead of trusting a stale prefix.
  std::atomic<bool> redo_state_current_{true};

  std::atomic<bool> crashed_{false};
  std::atomic<int> active_ops_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  std::mutex reply_mu_;
  std::map<TcId, std::map<Lsn, OperationReply>> reply_cache_;

  std::mutex sentinel_mu_;
  // (table|key) -> (tc, lsn) of the in-flight conflicting op.
  std::unordered_map<std::string, std::pair<TcId, Lsn>> in_flight_;

  mutable std::mutex cursor_mu_;
  std::map<std::pair<TcId, uint64_t>, std::shared_ptr<ScanCursor>> cursors_;

  /// Per-TC high-water mark of lsns re-executed by the CURRENT
  /// post-regression redo pass (tracked only while the TC's LWM is
  /// disallowed, i.e. between a state regression and the TC's
  /// restart-end). Reset whenever a new regression begins.
  std::mutex redo_mu_;
  std::map<TcId, Lsn> redo_fresh_max_;
  /// Serializes recovery-resend execution: the channel can duplicate a
  /// redo batch, and two copies interleaving on the server threads
  /// would re-execute ops out of LSN order. Recursive because
  /// PerformBatch holds it for the whole batch and delegates per-op to
  /// Perform, which also takes it.
  std::recursive_mutex recovery_serial_mu_;

  DataComponentStats stats_;
};

}  // namespace untx
