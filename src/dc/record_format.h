// On-page record encodings for B-tree leaf and internal nodes.
//
// Leaf payload:
//   varint key_len, key bytes
//   u16    last_writer_tc        (for per-TC page reset, §6.1.2)
//   u8     flags                 (versioning state, §6.2.2)
//   varint value_len, value bytes
//   [varint before_len, before]  iff kHasBefore
//
// Versioning states (§6.2.2):
//   plain committed record:            flags = 0
//   uncommitted update:                kHasBefore; before = old committed
//   uncommitted insert:                kHasBefore | kBeforeIsNull
//   uncommitted delete:                kHasBefore | kCurrentIsTombstone
//
// Internal payload:
//   varint key_len, key bytes   (separator; entry 0 uses the empty key)
//   u32    child page id
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/types.h"

namespace untx {

struct LeafRecord {
  static constexpr uint8_t kHasBefore = 0x1;
  static constexpr uint8_t kBeforeIsNull = 0x2;
  static constexpr uint8_t kCurrentIsTombstone = 0x4;

  std::string key;
  TcId last_writer_tc = 0;
  uint8_t flags = 0;
  std::string value;
  std::string before;

  bool has_before() const { return (flags & kHasBefore) != 0; }
  bool before_is_null() const { return (flags & kBeforeIsNull) != 0; }
  bool is_tombstone() const { return (flags & kCurrentIsTombstone) != 0; }

  std::string Encode() const;
  static bool Decode(Slice payload, LeafRecord* out);

  /// Extracts just the key without materializing the rest (hot path of
  /// the in-page binary search).
  static bool DecodeKey(Slice payload, Slice* key);
};

struct InternalEntry {
  std::string separator;  // child covers keys in [separator, next separator)
  PageId child = kInvalidPageId;

  std::string Encode() const;
  static bool Decode(Slice payload, InternalEntry* out);
  static bool DecodeKey(Slice payload, Slice* key);
};

}  // namespace untx
