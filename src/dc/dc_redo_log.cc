#include "dc/dc_redo_log.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/coding.h"
#include "common/crc32c.h"

namespace untx {

namespace {
// Backing-file entry: [u8 tag][varint len][encoded entry][fixed32 crc].
// One tag only — suffix truncation rewrites the file, so no marker tag
// is needed (unlike StableLog's prefix-truncate marker).
constexpr char kEntryTag = 1;
}  // namespace

void RedoEntry::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(kind));
  PutFixed16(dst, tc);
  PutVarint64(dst, lsn);
  PutLengthPrefixedSlice(dst, Slice(payload));
}

bool RedoEntry::DecodeFrom(Slice* input, RedoEntry* out) {
  if (input->empty()) return false;
  const uint8_t kind = static_cast<uint8_t>((*input)[0]);
  if (kind < 1 || kind > 5) return false;
  input->remove_prefix(1);
  out->kind = static_cast<RedoEntryKind>(kind);
  uint16_t tc = 0;
  if (!GetFixed16(input, &tc)) return false;
  out->tc = tc;
  if (!GetVarint64(input, &out->lsn)) return false;
  Slice payload;
  if (!GetLengthPrefixedSlice(input, &payload)) return false;
  out->payload.assign(payload.data(), payload.size());
  return true;
}

DcRedoLog::DcRedoLog(DcRedoLogOptions options) : options_(std::move(options)) {
  if (!options_.path.empty()) LoadFile();
}

DcRedoLog::~DcRedoLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void DcRedoLog::LoadFile() {
  std::string blob;
  if (std::FILE* in = std::fopen(options_.path.c_str(), "rb")) {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) blob.append(buf, n);
    std::fclose(in);
  }
  Slice input(blob);
  size_t good = 0;
  while (!input.empty()) {
    if (input[0] != kEntryTag) break;
    Slice attempt(input.data() + 1, input.size() - 1);
    uint64_t len = 0;
    uint32_t masked = 0;
    // Overflow-safe bounds check (see StableLog::LoadFile): a corrupt
    // varint must truncate the tail, not wrap the arithmetic.
    if (!GetVarint64(&attempt, &len) || len > attempt.size() ||
        attempt.size() - len < 4) {
      break;
    }
    Slice body(attempt.data(), len);
    attempt.remove_prefix(len);
    GetFixed32(&attempt, &masked);
    if (crc32c::Unmask(masked) != crc32c::Value(body.data(), body.size())) {
      break;  // torn or corrupt tail entry
    }
    RedoEntry entry;
    Slice entry_input = body;
    if (!RedoEntry::DecodeFrom(&entry_input, &entry)) break;
    entries_.push_back(std::move(entry));
    good = blob.size() - attempt.size();
    input = attempt;
  }
  durable_end_ = entries_.size();  // everything on disk is durable
  RecomputeDerivedLocked();
  if (good < blob.size()) {
    // Torn tail: rewrite the parsed prefix so appends start clean.
    file_ = std::fopen(options_.path.c_str(), "wb");
    if (file_ != nullptr && good > 0) {
      std::fwrite(blob.data(), 1, good, file_);
      std::fflush(file_);
    }
  } else {
    file_ = std::fopen(options_.path.c_str(), "ab");
  }
}

void DcRedoLog::PersistRangeLocked(uint64_t upto) {
  if (file_ == nullptr) return;
  std::string out;
  for (uint64_t rlsn = durable_end_ + 1; rlsn <= upto; ++rlsn) {
    std::string body;
    entries_[rlsn - 1].EncodeTo(&body);
    out.push_back(kEntryTag);
    PutVarint64(&out, body.size());
    out.append(body);
    PutFixed32(&out, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  }
  if (!out.empty()) {
    std::fwrite(out.data(), 1, out.size(), file_);
    // fflush pushes into the kernel: survives SIGKILL of this process
    // (the harness's failure model), like StableLog's backing.
    std::fflush(file_);
  }
}

void DcRedoLog::RewriteFileLocked() {
  if (options_.path.empty()) return;
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(options_.path.c_str(), "wb");
  const uint64_t prev_durable = durable_end_;
  durable_end_ = 0;
  PersistRangeLocked(prev_durable);
  durable_end_ = prev_durable;
}

void DcRedoLog::RecomputeDerivedLocked() {
  latest_watermark_ = 0;
  has_reset_ = false;
  for (const RedoEntry& e : entries_) {
    if (e.kind == RedoEntryKind::kWatermark) {
      latest_watermark_ = std::max(latest_watermark_, e.lsn);
    } else if (e.kind == RedoEntryKind::kReset) {
      has_reset_ = true;
    }
  }
}

uint64_t DcRedoLog::Append(RedoEntry entry) {
  std::lock_guard<std::mutex> guard(mu_);
  bytes_appended_ += entry.payload.size() + 16;
  if (entry.kind == RedoEntryKind::kWatermark) {
    latest_watermark_ = std::max(latest_watermark_, entry.lsn);
  } else if (entry.kind == RedoEntryKind::kReset) {
    has_reset_ = true;
  }
  entries_.push_back(std::move(entry));
  return entries_.size();
}

uint64_t DcRedoLog::Force() {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t target = entries_.size();
  if (target > durable_end_) {
    PersistRangeLocked(target);
    durable_end_ = target;
    durable_cv_.notify_all();
  }
  return durable_end_;
}

uint64_t DcRedoLog::end() const {
  std::lock_guard<std::mutex> guard(mu_);
  return entries_.size();
}

uint64_t DcRedoLog::durable_end() const {
  std::lock_guard<std::mutex> guard(mu_);
  return durable_end_;
}

Status DcRedoLog::ReadAt(uint64_t rlsn, RedoEntry* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (rlsn == 0 || rlsn > entries_.size()) {
    return Status::NotFound("rlsn beyond end");
  }
  *out = entries_[rlsn - 1];
  return Status::OK();
}

uint64_t DcRedoLog::ReadFrom(uint64_t from_rlsn, uint32_t max_entries,
                             std::vector<RedoEntry>* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t first = std::max<uint64_t>(from_rlsn, 1);
  if (first > durable_end_ || max_entries == 0) return 0;
  const uint64_t last =
      std::min<uint64_t>(durable_end_, first + max_entries - 1);
  for (uint64_t rlsn = first; rlsn <= last; ++rlsn) {
    out->push_back(entries_[rlsn - 1]);
  }
  return first;
}

bool DcRedoLog::WaitDurable(uint64_t after_rlsn, uint32_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  return durable_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              [&] { return durable_end_ > after_rlsn; });
}

uint64_t DcRedoLog::MinOpLsnAfter(uint64_t after_rlsn, TcId tc) const {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t min_lsn = std::numeric_limits<uint64_t>::max();
  for (uint64_t rlsn = after_rlsn + 1; rlsn <= entries_.size(); ++rlsn) {
    const RedoEntry& e = entries_[rlsn - 1];
    if (e.kind == RedoEntryKind::kOp && e.tc == tc) {
      min_lsn = std::min(min_lsn, e.lsn);
    }
  }
  return min_lsn;
}

void DcRedoLog::Crash() {
  std::lock_guard<std::mutex> guard(mu_);
  entries_.resize(durable_end_);
  RecomputeDerivedLocked();
}

void DcRedoLog::TruncateFrom(uint64_t rlsn) {
  std::lock_guard<std::mutex> guard(mu_);
  if (rlsn == 0) rlsn = 1;
  if (rlsn > entries_.size()) return;
  entries_.resize(rlsn - 1);
  if (durable_end_ > entries_.size()) {
    durable_end_ = entries_.size();
    RewriteFileLocked();
  }
  RecomputeDerivedLocked();
}

uint64_t DcRedoLog::latest_watermark() const {
  std::lock_guard<std::mutex> guard(mu_);
  return latest_watermark_;
}

bool DcRedoLog::has_reset() const {
  std::lock_guard<std::mutex> guard(mu_);
  return has_reset_;
}

void DcRedoLog::SnapshotSurvivingOps(std::vector<RedoEntry>* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  // Pass 1 (backward): per TC, the tightest cancellation bound imposed
  // by resets AFTER each position. An op of TC t at position i with
  // lsn > bound(t, i) was declared lost by a later reset.
  // Walking backward lets the bound tighten as resets are met.
  std::map<TcId, uint64_t> bound;  // min stable_end of resets seen so far
  std::vector<uint64_t> op_bound(entries_.size(),
                                 std::numeric_limits<uint64_t>::max());
  for (size_t i = entries_.size(); i-- > 0;) {
    const RedoEntry& e = entries_[i];
    if (e.kind == RedoEntryKind::kReset) {
      auto it = bound.find(e.tc);
      if (it == bound.end() || e.lsn < it->second) bound[e.tc] = e.lsn;
    } else if (e.kind == RedoEntryKind::kOp) {
      auto it = bound.find(e.tc);
      if (it != bound.end()) op_bound[i] = it->second;
    }
  }
  // Pass 2 (forward): emit the replay set in rlsn order — surviving
  // ops plus the control entries that pace replay (resets fold away).
  for (size_t i = 0; i < entries_.size(); ++i) {
    const RedoEntry& e = entries_[i];
    if (e.kind == RedoEntryKind::kReset) continue;
    if (e.kind == RedoEntryKind::kOp && e.lsn > op_bound[i]) continue;
    out->push_back(e);
  }
}

void DcRedoLog::set_replication_enabled(bool on) {
  std::lock_guard<std::mutex> guard(mu_);
  replication_enabled_ = on;
}

bool DcRedoLog::replication_enabled() const {
  std::lock_guard<std::mutex> guard(mu_);
  return replication_enabled_;
}

void DcRedoLog::RecordReplicaAck(uint32_t replica_id, uint64_t rlsn) {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t& acked = replica_acks_[replica_id];
  acked = std::max(acked, rlsn);
}

void DcRedoLog::ForgetReplica(uint32_t replica_id) {
  std::lock_guard<std::mutex> guard(mu_);
  replica_acks_.erase(replica_id);
}

uint64_t DcRedoLog::MinReplicaAck() const {
  std::lock_guard<std::mutex> guard(mu_);
  if (replica_acks_.empty()) return entries_.size();
  uint64_t min_ack = std::numeric_limits<uint64_t>::max();
  for (const auto& [id, acked] : replica_acks_) min_ack = std::min(min_ack, acked);
  return min_ack;
}

uint64_t DcRedoLog::MaxReplicaLag() const {
  std::lock_guard<std::mutex> guard(mu_);
  if (replica_acks_.empty()) return 0;
  uint64_t min_ack = std::numeric_limits<uint64_t>::max();
  for (const auto& [id, acked] : replica_acks_) min_ack = std::min(min_ack, acked);
  const uint64_t end = entries_.size();
  return end > min_ack ? end - min_ack : 0;
}

std::map<uint32_t, uint64_t> DcRedoLog::ReplicaAcks() const {
  std::lock_guard<std::mutex> guard(mu_);
  return replica_acks_;
}

uint64_t DcRedoLog::bytes_appended() const {
  std::lock_guard<std::mutex> guard(mu_);
  return bytes_appended_;
}

// -- Replication wire messages -------------------------------------------------

void ReplicaSubscribeRequest::EncodeTo(std::string* dst) const {
  PutFixed32(dst, replica_id);
  PutVarint64(dst, from_rlsn);
}

bool ReplicaSubscribeRequest::DecodeFrom(Slice* input,
                                         ReplicaSubscribeRequest* out) {
  return GetFixed32(input, &out->replica_id) &&
         GetVarint64(input, &out->from_rlsn);
}

void ReplicaEntriesMessage::EncodeTo(std::string* dst) const {
  PutVarint64(dst, from_rlsn);
  PutVarint64(dst, primary_end);
  PutVarint32(dst, static_cast<uint32_t>(entries.size()));
  for (const RedoEntry& e : entries) e.EncodeTo(dst);
}

bool ReplicaEntriesMessage::DecodeFrom(Slice* input,
                                       ReplicaEntriesMessage* out) {
  uint32_t n = 0;
  if (!GetVarint64(input, &out->from_rlsn) ||
      !GetVarint64(input, &out->primary_end) || !GetVarint32(input, &n)) {
    return false;
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RedoEntry e;
    if (!RedoEntry::DecodeFrom(input, &e)) return false;
    out->entries.push_back(std::move(e));
  }
  return true;
}

void ReplicaAckMessage::EncodeTo(std::string* dst) const {
  PutFixed32(dst, replica_id);
  PutVarint64(dst, acked_rlsn);
}

bool ReplicaAckMessage::DecodeFrom(Slice* input, ReplicaAckMessage* out) {
  return GetFixed32(input, &out->replica_id) &&
         GetVarint64(input, &out->acked_rlsn);
}

}  // namespace untx
