#include "dc/dc_log.h"

#include <cassert>

#include "common/coding.h"

namespace untx {

void DcLogRecord::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, dlsn);
  PutVarint32(dst, pid);
  PutLengthPrefixedSlice(dst, split_key);
  PutVarint32(dst, aux_pid);
  PutLengthPrefixedSlice(dst, body);
  ablsn.EncodeTo(dst);
}

bool DcLogRecord::DecodeFrom(Slice* input, DcLogRecord* out) {
  if (input->empty()) return false;
  out->type = static_cast<DcLogRecordType>((*input)[0]);
  input->remove_prefix(1);
  uint64_t dlsn;
  uint32_t pid, aux;
  Slice split_key, body;
  if (!GetVarint64(input, &dlsn)) return false;
  if (!GetVarint32(input, &pid)) return false;
  if (!GetLengthPrefixedSlice(input, &split_key)) return false;
  if (!GetVarint32(input, &aux)) return false;
  if (!GetLengthPrefixedSlice(input, &body)) return false;
  if (!PageAbLsn::DecodeFrom(input, &out->ablsn)) return false;
  out->dlsn = dlsn;
  out->pid = pid;
  out->aux_pid = aux;
  out->split_key = split_key.ToString();
  out->body = body.ToString();
  return true;
}

DcLog::DcLog(StableLogOptions options) : log_(options) {}

void DcLog::AppendBatch(std::vector<DcLogRecord>* records,
                        const std::map<TcId, Lsn>& floor,
                        std::vector<PageId> deferred_frees) {
  std::lock_guard<std::mutex> guard(mu_);
  // Frame the batch with begin/commit records.
  DcLogRecord begin;
  begin.type = DcLogRecordType::kSmoBegin;
  DcLogRecord commit;
  commit.type = DcLogRecordType::kSmoCommit;

  PendingBatch batch;
  batch.floor = floor;
  batch.deferred_frees = std::move(deferred_frees);

  auto append_one = [this](DcLogRecord* rec) {
    std::string payload;
    const uint64_t index = log_.Reserve();
    rec->dlsn = index + 1;  // dLSN is 1-based log position
    rec->EncodeTo(&payload);
    log_.Seal(index, std::move(payload));
    return index;
  };

  batch.first_index = append_one(&begin);
  for (auto& rec : *records) {
    append_one(&rec);
    if (rec.pid != kInvalidPageId) batch.pids.push_back(rec.pid);
  }
  batch.last_index = append_one(&commit);
  batch_starts_.push_back(batch.first_index);
  pending_.push_back(std::move(batch));
}

void DcLog::ForceEligible(const std::map<TcId, Lsn>& eosl,
                          std::vector<PageId>* freed_out) {
  std::lock_guard<std::mutex> guard(mu_);
  while (!pending_.empty()) {
    const PendingBatch& batch = pending_.front();
    bool eligible = true;
    for (const auto& [tc, floor_lsn] : batch.floor) {
      auto it = eosl.find(tc);
      const Lsn have = it == eosl.end() ? 0 : it->second;
      if (floor_lsn > have) {
        eligible = false;
        break;
      }
    }
    if (!eligible) break;
    log_.ForceTo(batch.last_index);
    if (freed_out != nullptr) {
      freed_out->insert(freed_out->end(), batch.deferred_frees.begin(),
                        batch.deferred_frees.end());
    }
    pending_.pop_front();
  }
}

bool DcLog::FullyForced() const {
  std::lock_guard<std::mutex> guard(mu_);
  return pending_.empty();
}

std::vector<DcLogBatch> DcLog::ReadStableBatches() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<DcLogBatch> batches;
  DcLogBatch current;
  bool in_batch = false;
  const uint64_t begin = log_.truncated_prefix();
  const uint64_t end = log_.stable_end();
  for (uint64_t i = begin; i < end; ++i) {
    std::string payload;
    if (!log_.ReadAt(i, &payload).ok()) continue;
    Slice in(payload);
    DcLogRecord rec;
    if (!DcLogRecord::DecodeFrom(&in, &rec)) continue;
    switch (rec.type) {
      case DcLogRecordType::kSmoBegin:
        current.records.clear();
        in_batch = true;
        break;
      case DcLogRecordType::kSmoCommit:
        if (in_batch) {
          batches.push_back(std::move(current));
          current = DcLogBatch();
          in_batch = false;
        }
        break;
      default:
        if (in_batch) current.records.push_back(std::move(rec));
        break;
    }
  }
  // A trailing batch without commit is discarded (cannot happen with
  // atomic batch appends + batch-boundary forcing, but be defensive).
  return batches;
}

DLsn DcLog::stable_dlsn_end() const {
  std::lock_guard<std::mutex> guard(mu_);
  return log_.stable_end() + 1;
}

DLsn DcLog::next_dlsn() const {
  std::lock_guard<std::mutex> guard(mu_);
  return log_.total_end() + 1;
}

void DcLog::Crash() {
  std::lock_guard<std::mutex> guard(mu_);
  log_.Crash();
  pending_.clear();
  // Drop batch-start bookkeeping for batches that were lost.
  const uint64_t stable = log_.stable_end();
  while (!batch_starts_.empty() && batch_starts_.back() >= stable) {
    batch_starts_.pop_back();
  }
}

void DcLog::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  log_.Clear();
  pending_.clear();
  batch_starts_.clear();
}

void DcLog::TruncateBelow(DLsn dlsn) {
  std::lock_guard<std::mutex> guard(mu_);
  if (dlsn == kInvalidDLsn) return;
  uint64_t index = dlsn - 1;
  // Never truncate into the unforced region.
  if (!pending_.empty() && index > pending_.front().first_index) {
    index = pending_.front().first_index;
  }
  // Snap down to a batch boundary: keep the latest batch whose begin
  // record is at or below the target, so no batch is split.
  uint64_t boundary = log_.truncated_prefix();
  for (uint64_t start : batch_starts_) {
    if (start <= index) {
      boundary = start;
    } else {
      break;
    }
  }
  log_.TruncatePrefix(boundary);
  while (!batch_starts_.empty() && batch_starts_.front() < boundary) {
    batch_starts_.pop_front();
  }
}

DLsn DcLog::truncated_below() const {
  std::lock_guard<std::mutex> guard(mu_);
  return log_.truncated_prefix() + 1;
}

std::vector<DcLog::PendingBatchInfo> DcLog::DiscardPending() {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<PendingBatchInfo> out;
  for (const PendingBatch& batch : pending_) {
    out.push_back(PendingBatchInfo{batch.floor, batch.pids});
  }
  pending_.clear();
  // Drop the volatile tail holding the discarded batches.
  log_.Crash();
  const uint64_t stable = log_.stable_end();
  while (!batch_starts_.empty() && batch_starts_.back() >= stable) {
    batch_starts_.pop_back();
  }
  return out;
}

}  // namespace untx
