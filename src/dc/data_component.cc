#include "dc/data_component.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <thread>

#include "common/coding.h"

namespace untx {

namespace {

/// Recovery-path tracing (chaos-test forensics): set UNTX_TRACE=1.
bool TraceEnabled() {
  static const bool enabled = getenv("UNTX_TRACE") != nullptr;
  return enabled;
}

std::string SentinelKey(TableId table, const std::string& key) {
  std::string out;
  PutFixed32(&out, table);
  out += key;
  return out;
}

/// Visibility of one record under a read flavor (§6.2).
bool VisibleValue(const LeafRecord& rec, ReadFlavor flavor,
                  std::string* out) {
  switch (flavor) {
    case ReadFlavor::kOwn:
    case ReadFlavor::kDirty:
      // Latest state; a tombstone is an (uncommitted) delete.
      if (rec.is_tombstone()) return false;
      *out = rec.value;
      return true;
    case ReadFlavor::kReadCommitted:
      if (rec.has_before()) {
        if (rec.before_is_null()) return false;  // uncommitted insert
        *out = rec.before;
        return true;
      }
      if (rec.is_tombstone()) return false;
      *out = rec.value;
      return true;
  }
  return false;
}

}  // namespace

DataComponent::DataComponent(StableStore* store, DataComponentOptions options)
    : store_(store), options_(options) {
  dc_log_ = std::make_unique<DcLog>(options_.dc_log);
  pool_ = std::make_unique<BufferPool>(store_, dc_log_.get(),
                                       options_.buffer_pool);
  btree_ = std::make_unique<BTree>(store_, pool_.get(), dc_log_.get(),
                                   options_.btree);
  if (options_.redo_log_enabled) {
    redo_log_ = std::make_unique<DcRedoLog>(options_.redo_log);
    // A log loaded from a backing file is ahead of the (still empty or
    // stable-store-restored) state until someone replays it.
    if (redo_log_->end() > 0) redo_state_current_.store(false);
  }
}

DataComponent::~DataComponent() = default;

Status DataComponent::Initialize() { return btree_->Bootstrap(); }

Status DataComponent::Recover() {
  // Phase 1 of unbundled recovery: restore well-formed search structures
  // from the DC log, before the TC sends any redo (§5.2.2).
  return btree_->ReplayStableSmoBatches();
}

void DataComponent::Crash() {
  crashed_.store(true);
  // Wait for in-flight operations to drain; their volatile effects are
  // about to vanish with the cache, and their replies are suppressed.
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [this] { return active_ops_.load() == 0; });
  pool_->Clear();
  dc_log_->Crash();
  if (redo_log_) {
    redo_log_->Crash();
    // Post-crash state (whatever a restore rebuilds from stable pages)
    // may lag the durable redo prefix until it is replayed.
    redo_state_current_.store(false);
  }
  {
    std::lock_guard<std::mutex> guard(reply_mu_);
    reply_cache_.clear();
  }
  {
    std::lock_guard<std::mutex> guard(sentinel_mu_);
    in_flight_.clear();
  }
  {
    // Every TC's next redo pass starts fresh against the reverted state.
    std::lock_guard<std::mutex> guard(redo_mu_);
    redo_fresh_max_.clear();
  }
  ClearScanCursors();
}

void DataComponent::Restore() { crashed_.store(false); }

OperationReply DataComponent::Perform(const OperationRequest& req) {
  if (role_.load() == DcRole::kReplica) {
    // A replica is not in any TC's routing table; answer stray traffic
    // like a down DC so a misrouted TC resends rather than misbehaves.
    OperationReply reply;
    reply.tc_id = req.tc_id;
    reply.lsn = req.lsn;
    reply.status = Status::Crashed("dc is a replica");
    return reply;
  }
  return PerformImpl(req, /*record_redo=*/true, /*defer_redo_force=*/false);
}

OperationReply DataComponent::PerformImpl(const OperationRequest& req,
                                          bool record_redo,
                                          bool defer_redo_force) {
  OperationReply reply;
  reply.tc_id = req.tc_id;
  reply.lsn = req.lsn;
  if (crashed_.load()) {
    reply.status = Status::Crashed("dc is down");
    return reply;
  }
  active_ops_.fetch_add(1);
  struct OpGuard {
    DataComponent* dc;
    ~OpGuard() {
      if (dc->active_ops_.fetch_sub(1) == 1) dc->quiesce_cv_.notify_all();
    }
  } guard{this};

  stats_.ops.fetch_add(1);
  if (req.value.size() > options_.max_value_size) {
    reply.status = Status::InvalidArgument("value exceeds max_value_size");
    return reply;
  }

  // Redo must repeat history IN ORDER: serialize recovery executions so
  // a duplicated redo message can't interleave with the original on
  // another server thread (recursive: the batch path already holds it).
  std::unique_lock<std::recursive_mutex> recovery_serial;
  if (req.recovery_resend) {
    recovery_serial =
        std::unique_lock<std::recursive_mutex>(recovery_serial_mu_);
  }

  const bool is_write = IsWriteOp(req.op);
  if (is_write) {
    stats_.writes.fetch_add(1);
    // Fast idempotence path: a resend of an op whose reply we still have.
    //
    // NEVER for recovery resends: a redo stream re-establishes page
    // state after a regression (DC crash revert, TC-reset page
    // drop/merge), and the reply cache describes executions against the
    // PRE-regression state. Worse, LWM pruning erases a cache PREFIX,
    // so the cache can hold a CLR while the forward op it compensates
    // is gone — answering the CLR from the cache while the forward op
    // re-executes resurrects aborted writes. Redo is judged solely by
    // the page abLSN, which is causally tied to the page content.
    if (!req.recovery_resend && LookupReply(req.tc_id, req.lsn, &reply)) {
      stats_.reply_cache_hits.fetch_add(1);
      reply.was_duplicate = true;
      return reply;
    }
  } else {
    stats_.reads.fetch_add(1);
  }

  if (req.op == OpType::kCreateTable) {
    reply = DoCreateTable(req);
    MaybeAppendRedo(req, &reply, record_redo, defer_redo_force);
    CacheReply(reply);
    return reply;
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    if (crashed_.load()) {
      reply.status = Status::Crashed("dc went down mid-operation");
      return reply;
    }
    ApplyOutcome outcome;
    reply = ApplyOnce(req, &outcome);
    if (outcome.need_split) {
      Status s = btree_->SplitForInsert(
          req.table_id, req.key,
          req.key.size() + req.value.size() + 64);
      if (!s.ok() && !s.IsBusy()) {
        reply.status = s;
        break;
      }
      continue;
    }
    if (outcome.need_flush_wait || outcome.need_retry) {
      if (std::chrono::steady_clock::now() > deadline) {
        reply.status = Status::TimedOut("operation kept deferring");
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    if (outcome.maybe_consolidate && pool_->ConsolidationSafe()) {
      // Consolidation is deferred while any TC's redo resend is still
      // incomplete: replayed SMO images can be time-skewed (a split-
      // copied abLSN legitimately over-covers sibling-range keys), and
      // merging such pages mid-redo would fold that over-coverage into
      // the page the keys route to — making un-reapplied operations
      // look applied. Once every TC has re-armed (restart-end), each
      // page again covers exactly what redo has re-established, and the
      // Â§5.2.2 max/union rule is sound.
      btree_->TryConsolidate(req.table_id, outcome.consolidate_key);
    }
    break;
  }

  if (is_write && !reply.status.IsBusy() && !reply.status.IsCrashed()) {
    // Redo append + force BEFORE the reply escapes: every op the TC has
    // seen acked is in the durable redo log, so a replica promoted (or a
    // --recover restart) only ever misses ops the TC still counts as
    // in-flight and will resend.
    MaybeAppendRedo(req, &reply, record_redo, defer_redo_force);
    CacheReply(reply);
  }
  return reply;
}

void DataComponent::MaybeAppendRedo(const OperationRequest& req,
                                    OperationReply* reply, bool record,
                                    bool defer_force) {
  if (!record || redo_log_ == nullptr) return;
  if (!IsWriteOp(req.op) || reply->was_duplicate) return;
  // Only logical completions advance the abLSN (ok / NotFound /
  // AlreadyExists — see ApplyOnce); anything else did not apply and
  // must not replicate. An abLSN-covered duplicate (reply cache already
  // pruned) is NOT re-appended: its reply carries rlsn 0, so the TC
  // keeps no replication record for it and re-drives it on failover.
  if (!(reply->status.ok() || reply->status.IsNotFound() ||
        reply->status.IsAlreadyExists())) {
    return;
  }
  RedoEntry entry;
  entry.kind = RedoEntryKind::kOp;
  entry.tc = req.tc_id;
  entry.lsn = req.lsn;
  req.EncodeTo(&entry.payload);
  reply->rlsn = redo_log_->Append(std::move(entry));
  stats_.redo_entries_appended.fetch_add(1);
  if (!defer_force) redo_log_->Force();
}

void DataComponent::AppendRedoControl(RedoEntryKind kind, TcId tc,
                                      uint64_t lsn) {
  if (redo_log_ == nullptr || role_.load() != DcRole::kPrimary) return;
  RedoEntry entry;
  entry.kind = kind;
  entry.tc = tc;
  entry.lsn = lsn;
  redo_log_->Append(std::move(entry));
  redo_log_->Force();
}

OperationReply DataComponent::ApplyOnce(const OperationRequest& req,
                                        ApplyOutcome* out) {
  OperationReply reply;
  reply.tc_id = req.tc_id;
  reply.lsn = req.lsn;

  if (!IsWriteOp(req.op)) {
    switch (req.op) {
      case OpType::kRead:
        return DoRead(req);
      case OpType::kProbeNext:
      case OpType::kScanRange:
        return DoScan(req);
      default:
        reply.status = Status::InvalidArgument("unknown read op");
        return reply;
    }
  }

  // Write path. Sentinel first: detects conflicting concurrent sends
  // (a TC bug) and serializes duplicate resends of the same op.
  bool duplicate_in_flight = false;
  if (!EnterSentinel(req, &duplicate_in_flight)) {
    if (duplicate_in_flight) {
      out->need_retry = true;
      reply.status = Status::Busy("duplicate in flight");
    } else {
      stats_.conflicts_detected.fetch_add(1);
      reply.status = Status::Conflict(
          "concurrent conflicting operation — TC contract violation");
    }
    return reply;
  }

  Frame* leaf = nullptr;
  Status s = btree_->LocateLeaf(req.table_id, req.key, /*exclusive=*/true,
                                &leaf);
  if (!s.ok()) {
    ExitSentinel(req);
    reply.status = s;
    return reply;
  }

  // Idempotence test (§5.1.2): Operation LSN <= Page abLSN.
  bool covered = leaf->ablsn.Covers(req.tc_id, req.lsn);
  const bool redo_in_progress =
      req.recovery_resend && !pool_->LwmAllowed(req.tc_id);
  if (covered && redo_in_progress) {
    // Post-regression redo (the TC has not re-armed at this DC): page
    // state was reverted, and a STALE coverage claim can be a
    // split-copied / merge-unioned abLSN that legitimately over-covers
    // keys whose effects the revert just discarded — trusting it would
    // silently skip the re-establishment this redo exists for. Only
    // coverage created by the current pass itself (a duplicated redo
    // batch re-delivering lsns at or below the pass's high-water mark)
    // is trusted; everything else re-executes. Redo re-execution is
    // safe: the stream carries only logically-applied ops, in LSN
    // order, and record writes are value-idempotent.
    std::lock_guard<std::mutex> guard(redo_mu_);
    auto it = redo_fresh_max_.find(req.tc_id);
    if (it == redo_fresh_max_.end() || req.lsn > it->second) {
      covered = false;
      stats_.redo_stale_coverage_overrides.fetch_add(1);
      if (TraceEnabled()) {
        fprintf(stderr, "[dc] OVERRIDE tc=%u lsn=%llu t=%u key=%s pid=%u\n",
                req.tc_id, (unsigned long long)req.lsn, req.table_id,
                req.key.c_str(), leaf->pid);
      }
    }
  }
  if (covered) {
    if (req.recovery_resend && TraceEnabled()) {
      fprintf(stderr, "[dc] SKIP-COVERED tc=%u lsn=%llu t=%u key=%s pid=%u\n",
              req.tc_id, (unsigned long long)req.lsn, req.table_id,
              req.key.c_str(), leaf->pid);
    }
    stats_.duplicate_hits.fetch_add(1);
    leaf->latch.UnlockExclusive();
    pool_->Unpin(leaf);
    ExitSentinel(req);
    reply.status = Status::OK();
    reply.was_duplicate = true;
    return reply;
  }

  // Page-sync strategy 1 (§5.1.2): while a flush waits for the abLSN to
  // collapse, refuse operations with LSNs beyond the current in-set.
  if (leaf->flush_waiting &&
      req.lsn > leaf->ablsn.MaxCoveredAll()) {
    leaf->latch.UnlockExclusive();
    pool_->Unpin(leaf);
    ExitSentinel(req);
    out->need_flush_wait = true;
    reply.status = Status::Busy("page flush pending");
    return reply;
  }

  reply = ApplyWriteOnLeaf(req, leaf, out);

  // Record the operation in the abstract LSN on every LOGICAL completion
  // — including failures (NotFound / AlreadyExists). A failed op's
  // "effect" is no-effect, and that too must be exactly-once: if it were
  // re-executed during recovery against a state where APPLIED ops are
  // skipped by the abLSN test (e.g. after a consolidation whose merged
  // abLSN covers them), it could succeed the second time and resurrect
  // or clobber data. Transient refusals (Busy: page full, flush wait)
  // are NOT recorded — they retry with the same LSN.
  const bool logical_completion = reply.status.ok() ||
                                  reply.status.IsNotFound() ||
                                  reply.status.IsAlreadyExists();
  if (logical_completion) {
    leaf->ablsn.Add(req.tc_id, req.lsn);
    if (redo_in_progress) {
      // Advance the pass's high-water mark: lsns at or below it are now
      // re-established, so a duplicated redo batch must not re-apply
      // them over later re-executed ops.
      std::lock_guard<std::mutex> guard(redo_mu_);
      Lsn& fresh = redo_fresh_max_[req.tc_id];
      if (req.lsn > fresh) fresh = req.lsn;
    }
  }
  if (reply.status.ok()) {
    leaf->dirty = true;
    if (leaf->first_op_lsn == 0 || req.lsn < leaf->first_op_lsn) {
      leaf->first_op_lsn = req.lsn;
    }
  }
  leaf->latch.UnlockExclusive();
  pool_->Unpin(leaf);
  ExitSentinel(req);
  return reply;
}

OperationReply DataComponent::ApplyWriteOnLeaf(const OperationRequest& req,
                                               Frame* leaf,
                                               ApplyOutcome* out) {
  OperationReply reply;
  reply.tc_id = req.tc_id;
  reply.lsn = req.lsn;
  reply.status = Status::OK();

  SlottedPage page = leaf->Page(pool_->page_size(), pool_->trailer_capacity());
  bool found;
  const uint16_t slot = BTree::LeafLowerBound(page, req.key, &found);
  LeafRecord rec;
  if (found) {
    LeafRecord::Decode(page.PayloadAt(slot), &rec);
  }

  auto replace_or_split = [&](const LeafRecord& r) {
    Status s = page.ReplaceAt(slot, r.Encode());
    if (s.IsBusy()) {
      out->need_split = true;
      reply.status = Status::Busy("page full");
      return false;
    }
    reply.status = s;
    return s.ok();
  };

  switch (req.op) {
    case OpType::kInsert:
    case OpType::kUpsert: {
      if (found && !(rec.is_tombstone() && req.versioned &&
                     rec.last_writer_tc == req.tc_id)) {
        if (req.op == OpType::kInsert && !rec.is_tombstone()) {
          reply.status = Status::AlreadyExists("key present");
          return reply;
        }
        if (req.op == OpType::kInsert && rec.is_tombstone()) {
          // Non-versioned tombstone cannot exist; versioned tombstone of
          // another TC conflicts — surface as AlreadyExists.
          reply.status = Status::AlreadyExists("key tombstoned");
          return reply;
        }
        // Upsert over an existing record behaves as update.
        reply.value = rec.value;
        reply.has_before = true;
        if (req.versioned && !rec.has_before()) {
          rec.before = rec.value;
          rec.flags |= LeafRecord::kHasBefore;
        }
        rec.value = req.value;
        rec.flags &= ~LeafRecord::kCurrentIsTombstone;
        rec.last_writer_tc = req.tc_id;
        replace_or_split(rec);
        return reply;
      }
      if (found) {
        // Versioned insert over our own uncommitted delete: revive the
        // record, keeping the original committed before-version.
        rec.value = req.value;
        rec.flags &= ~LeafRecord::kCurrentIsTombstone;
        rec.last_writer_tc = req.tc_id;
        replace_or_split(rec);
        return reply;
      }
      LeafRecord fresh;
      fresh.key = req.key;
      fresh.last_writer_tc = req.tc_id;
      fresh.value = req.value;
      if (req.versioned) {
        // §6.2.2: an insert provides a "null" before version.
        fresh.flags = LeafRecord::kHasBefore | LeafRecord::kBeforeIsNull;
      }
      Status s = page.InsertAt(slot, fresh.Encode());
      if (s.IsBusy()) {
        out->need_split = true;
        reply.status = Status::Busy("page full");
        return reply;
      }
      reply.status = s;
      return reply;
    }

    case OpType::kUpdate: {
      if (!found || rec.is_tombstone()) {
        reply.status = Status::NotFound("update of missing key");
        return reply;
      }
      reply.value = rec.value;  // before-image: the TC's undo information
      reply.has_before = true;
      if (req.versioned && !rec.has_before()) {
        rec.before = rec.value;
        rec.flags |= LeafRecord::kHasBefore;
      }
      rec.value = req.value;
      rec.last_writer_tc = req.tc_id;
      replace_or_split(rec);
      return reply;
    }

    case OpType::kDelete: {
      if (!found || rec.is_tombstone()) {
        reply.status = Status::NotFound("delete of missing key");
        return reply;
      }
      reply.value = rec.value;
      reply.has_before = true;
      if (req.versioned) {
        if (!rec.has_before()) {
          rec.before = rec.value;
          rec.flags |= LeafRecord::kHasBefore;
        }
        rec.flags |= LeafRecord::kCurrentIsTombstone;
        rec.value.clear();
        rec.last_writer_tc = req.tc_id;
        replace_or_split(rec);
      } else {
        page.RemoveAt(slot);
      }
      if (page.FillFraction() < 0.2) {
        out->maybe_consolidate = true;
        out->consolidate_key = req.key;
      }
      return reply;
    }

    case OpType::kPromoteVersion: {
      // Commit-time cleanup (§6.2.2): drop the before version, making the
      // later version the committed one. Idempotent by construction.
      if (!found) return reply;
      if (rec.is_tombstone()) {
        page.RemoveAt(slot);
        if (page.FillFraction() < 0.2) {
          out->maybe_consolidate = true;
          out->consolidate_key = req.key;
        }
        return reply;
      }
      if (rec.has_before()) {
        rec.before.clear();
        rec.flags &=
            ~(LeafRecord::kHasBefore | LeafRecord::kBeforeIsNull);
        replace_or_split(rec);
      }
      return reply;
    }

    case OpType::kRollbackVersion: {
      // Abort-time cleanup (§6.2.2): remove the latest version.
      if (!found) return reply;
      if (rec.has_before()) {
        if (rec.before_is_null()) {
          page.RemoveAt(slot);  // undo an uncommitted insert
        } else {
          rec.value = rec.before;
          rec.before.clear();
          rec.flags &= ~(LeafRecord::kHasBefore | LeafRecord::kBeforeIsNull |
                         LeafRecord::kCurrentIsTombstone);
          replace_or_split(rec);
        }
      }
      return reply;
    }

    default:
      reply.status = Status::InvalidArgument("unknown write op");
      return reply;
  }
}

OperationReply DataComponent::DoRead(const OperationRequest& req) {
  OperationReply reply;
  reply.tc_id = req.tc_id;
  reply.lsn = req.lsn;
  Frame* leaf = nullptr;
  Status s =
      btree_->LocateLeaf(req.table_id, req.key, /*exclusive=*/false, &leaf);
  if (!s.ok()) {
    reply.status = s;
    return reply;
  }
  SlottedPage page = leaf->Page(pool_->page_size(), pool_->trailer_capacity());
  bool found;
  const uint16_t slot = BTree::LeafLowerBound(page, req.key, &found);
  if (!found) {
    reply.status = Status::NotFound("key absent");
  } else {
    LeafRecord rec;
    LeafRecord::Decode(page.PayloadAt(slot), &rec);
    std::string value;
    if (VisibleValue(rec, req.read_flavor, &value)) {
      reply.status = Status::OK();
      reply.value = std::move(value);
    } else {
      reply.status = Status::NotFound("no visible version");
    }
  }
  leaf->latch.UnlockShared();
  pool_->Unpin(leaf);
  return reply;
}

OperationReply DataComponent::DoScan(const OperationRequest& req) {
  OperationReply reply;
  reply.tc_id = req.tc_id;
  reply.lsn = req.lsn;
  reply.status = Status::OK();
  const uint32_t limit =
      req.limit == 0 ? options_.default_scan_limit : req.limit;
  const bool probe = (req.op == OpType::kProbeNext);

  std::string resume_key = req.key;
  // Streamed/windowed resumes exclude the start key itself; the flag is
  // also flipped internally after a retired page forces a restart.
  bool skip_equal = req.exclusive_start;

  for (int restart = 0; restart < 64; ++restart) {
    Frame* leaf = nullptr;
    Status s = btree_->LocateLeaf(req.table_id, resume_key,
                                  /*exclusive=*/false, &leaf);
    if (!s.ok()) {
      reply.status = s;
      return reply;
    }
    for (;;) {
      SlottedPage page =
          leaf->Page(pool_->page_size(), pool_->trailer_capacity());
      bool found;
      uint16_t slot = BTree::LeafLowerBound(page, resume_key, &found);
      if (found && skip_equal) ++slot;
      for (uint16_t i = slot; i < page.slot_count(); ++i) {
        LeafRecord rec;
        LeafRecord::Decode(page.PayloadAt(i), &rec);
        if (!req.end_key.empty() &&
            Slice(rec.key).compare(req.end_key) >= 0) {
          leaf->latch.UnlockShared();
          pool_->Unpin(leaf);
          return reply;
        }
        if (probe) {
          // Probes report every key (locking needs the full picture).
          reply.keys.push_back(rec.key);
        } else {
          std::string value;
          if (VisibleValue(rec, req.read_flavor, &value)) {
            reply.keys.push_back(rec.key);
            reply.values.push_back(std::move(value));
          }
        }
        resume_key = rec.key;
        skip_equal = true;
        if (reply.keys.size() >= limit) {
          leaf->latch.UnlockShared();
          pool_->Unpin(leaf);
          return reply;
        }
      }
      // Advance to the right sibling with latch coupling.
      const PageId next = page.next_page();
      if (next == kInvalidPageId) {
        leaf->latch.UnlockShared();
        pool_->Unpin(leaf);
        return reply;
      }
      Frame* next_frame = nullptr;
      s = pool_->Fetch(next, &next_frame);
      if (!s.ok()) {
        leaf->latch.UnlockShared();
        pool_->Unpin(leaf);
        break;  // structure changed; restart from resume_key
      }
      next_frame->latch.LockShared();
      leaf->latch.UnlockShared();
      pool_->Unpin(leaf);
      leaf = next_frame;
      if (leaf->retired) {
        leaf->latch.UnlockShared();
        pool_->Unpin(leaf);
        break;  // restart from resume_key
      }
    }
  }
  return reply;
}

OperationReply DataComponent::DoCreateTable(const OperationRequest& req) {
  OperationReply reply;
  reply.tc_id = req.tc_id;
  reply.lsn = req.lsn;
  Status s = btree_->CreateTable(req.table_id);
  if (s.IsAlreadyExists()) {
    reply.status = Status::OK();  // idempotent resend
    reply.was_duplicate = true;
  } else {
    reply.status = s;
  }
  return reply;
}

// ---- Credited scan streams with DC-side cursors (PR 4) -----------------------

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void DataComponent::ReadScanWindow(ScanCursor* cursor, std::string start,
                                   bool start_exclusive,
                                   const std::string& end_bound,
                                   uint32_t max_rows, bool peek_next,
                                   ScanStreamChunk* chunk, bool* exhausted) {
  *exhausted = false;
  chunk->status = Status::OK();
  const bool probe = cursor->req.probe_rows;
  const ReadFlavor flavor = cursor->req.base.read_flavor;
  const TableId table = cursor->req.base.table_id;
  // Probe windows read one extra physical key — the fencepost the TC
  // locks for phantom safety — folded into next_key below.
  const uint32_t target = max_rows + (probe && peek_next ? 1 : 0);
  std::string resume = start;
  bool skip_equal = start_exclusive;
  bool range_ended = false;
  bool complete = false;

  for (int restart = 0; restart < 64 && !complete; ++restart) {
    Frame* leaf = nullptr;
    // The cursor's leaf hint first: a still-valid hint resumes the scan
    // without the root-to-leaf descent PR 3 paid per chunk. An SMO
    // invalidates it via the retired flag (consolidation) or by moving
    // the resume position past the leaf (split — keys only move right,
    // so first_key <= resume keeps the forward chain correct).
    if (cursor->leaf_hint != kInvalidPageId) {
      Frame* f = nullptr;
      if (pool_->Fetch(cursor->leaf_hint, &f).ok()) {
        f->latch.LockShared();
        SlottedPage p =
            f->Page(pool_->page_size(), pool_->trailer_capacity());
        bool valid = !f->retired && p.type() == PageType::kLeaf &&
                     p.table_id() == table && p.slot_count() > 0;
        if (valid) {
          Slice first;
          LeafRecord::DecodeKey(p.PayloadAt(0), &first);
          valid = first.compare(resume) <= 0;
        }
        if (valid) {
          leaf = f;
          stats_.scan_cursor_hint_hits.fetch_add(1);
        } else {
          f->latch.UnlockShared();
          pool_->Unpin(f);
        }
      }
      if (leaf == nullptr) cursor->leaf_hint = kInvalidPageId;
    }
    if (leaf == nullptr) {
      Status s =
          btree_->LocateLeaf(table, resume, /*exclusive=*/false, &leaf);
      if (!s.ok()) {
        chunk->status = s;
        return;
      }
      stats_.scan_cursor_descends.fetch_add(1);
    }
    // Walk the leaf chain with latch coupling, collecting the window.
    while (leaf != nullptr) {
      SlottedPage page =
          leaf->Page(pool_->page_size(), pool_->trailer_capacity());
      bool found;
      uint16_t slot = BTree::LeafLowerBound(page, resume, &found);
      if (found && skip_equal) ++slot;
      for (uint16_t i = slot; i < page.slot_count(); ++i) {
        LeafRecord rec;
        LeafRecord::Decode(page.PayloadAt(i), &rec);
        if (!end_bound.empty() && Slice(rec.key).compare(end_bound) >= 0) {
          range_ended = true;
          break;
        }
        std::string value;
        const bool visible = VisibleValue(rec, flavor, &value);
        if (probe) {
          // Probe semantics (§3.1): every physical key is reported so
          // the TC can lock tombstoned records too; invisible rows are
          // marked and carry an empty value.
          if (!visible) {
            chunk->invisible.push_back(
                static_cast<uint32_t>(chunk->keys.size()));
            value.clear();
          }
          chunk->keys.push_back(rec.key);
          chunk->values.push_back(std::move(value));
        } else if (visible) {
          chunk->keys.push_back(rec.key);
          chunk->values.push_back(std::move(value));
        }
        resume = rec.key;
        skip_equal = true;
        if (chunk->keys.size() >= target) break;
      }
      if (range_ended || chunk->keys.size() >= target) {
        cursor->leaf_hint = leaf->pid;
        leaf->latch.UnlockShared();
        pool_->Unpin(leaf);
        leaf = nullptr;
        complete = true;
        break;
      }
      const PageId next = page.next_page();
      if (next == kInvalidPageId) {
        range_ended = true;
        cursor->leaf_hint = leaf->pid;
        leaf->latch.UnlockShared();
        pool_->Unpin(leaf);
        leaf = nullptr;
        complete = true;
        break;
      }
      Frame* next_frame = nullptr;
      Status s = pool_->Fetch(next, &next_frame);
      if (!s.ok()) {
        leaf->latch.UnlockShared();
        pool_->Unpin(leaf);
        leaf = nullptr;
        break;  // structure changed; restart from resume
      }
      next_frame->latch.LockShared();
      leaf->latch.UnlockShared();
      pool_->Unpin(leaf);
      leaf = next_frame;
      if (leaf->retired) {
        leaf->latch.UnlockShared();
        pool_->Unpin(leaf);
        leaf = nullptr;
        break;  // restart from resume
      }
    }
  }
  // 64 restarts without completing: return the partial window (the
  // stream resumes after it) rather than erroring, like DoScan.

  if (probe && peek_next && chunk->keys.size() == target) {
    // Fold the peeked row into the fencepost: the next window starts AT
    // it (inclusive), exactly the PR 3 fetch-ahead resume discipline.
    chunk->next_key = chunk->keys.back();
    chunk->keys.pop_back();
    chunk->values.pop_back();
    if (!chunk->invisible.empty() &&
        chunk->invisible.back() ==
            static_cast<uint32_t>(chunk->keys.size())) {
      chunk->invisible.pop_back();
    }
    cursor->resume_key = chunk->next_key;
    cursor->resume_exclusive = false;
  } else {
    cursor->resume_key = resume;
    cursor->resume_exclusive = skip_equal;
  }
  *exhausted = range_ended;
}

void DataComponent::ProduceScanChunks(
    const std::shared_ptr<ScanCursor>& cursor, const ScanChunkEmitter& emit,
    const ScanCreditRequest* credit) {
  std::lock_guard<std::mutex> cursor_guard(cursor->mu);
  active_ops_.fetch_add(1);
  struct OpGuard {
    DataComponent* dc;
    ~OpGuard() {
      if (dc->active_ops_.fetch_sub(1) == 1) dc->quiesce_cv_.notify_all();
    }
  } guard{this};

  cursor->last_active_ms.store(SteadyNowMs());
  if (credit != nullptr) {
    cursor->allowed = std::max(cursor->allowed, credit->allowed_chunks);
  }
  const uint32_t chunk_rows =
      cursor->req.chunk_rows == 0 ? 128 : cursor->req.chunk_rows;
  const uint64_t total = cursor->req.base.limit;  // 0 = unbounded

  auto make_chunk = [&](const std::string& from, bool exclusive) {
    ScanStreamChunk chunk;
    chunk.tc_id = cursor->req.base.tc_id;
    chunk.stream_id = cursor->req.base.lsn;
    chunk.chunk_index = cursor->next_chunk;
    chunk.resume_key = from;
    chunk.resume_exclusive = exclusive;
    return chunk;
  };

  // A rewind applies even to an exhausted cursor: the final window's
  // validated read re-reads [rewind_key, end) after the done chunk.
  if (credit != nullptr && credit->rewind &&
      credit->expect_chunk == cursor->next_chunk && !crashed_.load()) {
    // Validated-window rewind: serve window k's post-lock read from the
    // same cursor that probed it. The window is re-read in full — its
    // size is bounded by the locked key set plus whatever slipped in
    // before the locks, never by chunk_rows.
    stats_.scan_rewinds.fetch_add(1);
    const std::string& upto = credit->rewind_upto;
    const std::string& end_bound =
        upto.empty() ? cursor->req.base.end_key : upto;
    ScanStreamChunk chunk =
        make_chunk(credit->rewind_key, credit->rewind_exclusive);
    bool window_ended = false;
    ReadScanWindow(cursor.get(), credit->rewind_key,
                   credit->rewind_exclusive, end_bound,
                   /*max_rows=*/1u << 20, /*peek_next=*/false, &chunk,
                   &window_ended);
    if (chunk.status.ok() && !window_ended) {
      // The re-read gave up mid-window (64 SMO-race restarts): a
      // validated read MUST cover the whole locked window or rows
      // would silently vanish from a serializable scan. Surface a
      // retryable failure; the TC restarts the stream.
      chunk.status = Status::Busy("rewind window kept racing SMOs");
      chunk.keys.clear();
      chunk.values.clear();
      chunk.invisible.clear();
    }
    if (!chunk.status.ok()) {
      cursor->exhausted.store(true);
    } else if (upto.empty()) {
      // The re-read ran to the stream's end bound: nothing follows.
      cursor->exhausted.store(true);
      chunk.done = true;
    } else {
      cursor->resume_key = upto;
      cursor->resume_exclusive = false;
      cursor->exhausted.store(false);
    }
    ++cursor->next_chunk;
    stats_.scan_chunks_emitted.fetch_add(1);
    emit(chunk);
  }

  while (!cursor->exhausted.load() && cursor->next_chunk < cursor->allowed) {
    if (crashed_.load()) return;  // chunks die with the DC; TC restarts
    uint32_t want = chunk_rows;
    if (total != 0) {
      if (cursor->emitted_rows >= total) {
        cursor->exhausted.store(true);
        break;
      }
      want = static_cast<uint32_t>(
          std::min<uint64_t>(chunk_rows, total - cursor->emitted_rows));
    }
    ScanStreamChunk chunk =
        make_chunk(cursor->resume_key, cursor->resume_exclusive);
    bool window_ended = false;
    ReadScanWindow(cursor.get(), cursor->resume_key,
                   cursor->resume_exclusive, cursor->req.base.end_key, want,
                   /*peek_next=*/true, &chunk, &window_ended);
    cursor->emitted_rows += chunk.keys.size();
    const bool limit_hit = total != 0 && cursor->emitted_rows >= total;
    chunk.done = !chunk.status.ok() || window_ended || limit_hit;
    if (chunk.done) cursor->exhausted.store(true);
    ++cursor->next_chunk;
    stats_.scan_chunks_emitted.fetch_add(1);
    emit(chunk);
    if (!chunk.status.ok()) break;
  }
  if (!cursor->exhausted.load() && cursor->next_chunk >= cursor->allowed) {
    stats_.scan_stream_pauses.fetch_add(1);
  }
  cursor->last_active_ms.store(SteadyNowMs());
}

void DataComponent::PerformScanStream(const ScanStreamRequest& req,
                                      const ScanChunkEmitter& emit) {
  if (crashed_.load() || role_.load() == DcRole::kReplica) {
    ScanStreamChunk chunk;
    chunk.tc_id = req.base.tc_id;
    chunk.stream_id = req.base.lsn;
    chunk.done = true;
    chunk.status = crashed_.load() ? Status::Crashed("dc is down")
                                   : Status::Crashed("dc is a replica");
    emit(chunk);
    return;
  }
  EvictIdleScanCursors();
  stats_.scan_streams.fetch_add(1);
  auto cursor = std::make_shared<ScanCursor>();
  cursor->req = req;
  cursor->resume_key = req.base.key;
  cursor->resume_exclusive = req.base.exclusive_start;
  cursor->allowed = req.credit_chunks == 0
                        ? std::numeric_limits<uint32_t>::max()
                        : req.credit_chunks;
  cursor->last_active_ms.store(SteadyNowMs());
  const bool credited = req.credit_chunks != 0;
  if (credited) {
    std::lock_guard<std::mutex> guard(cursor_mu_);
    auto inserted = cursors_.try_emplace(
        std::make_pair(req.base.tc_id, req.base.lsn), cursor);
    // A duplicated stream request must not fork a second execution: the
    // first arrival owns the cursor; the duplicate's chunks would be
    // dropped by the TC's index dedup anyway.
    if (!inserted.second) return;
  }
  ProduceScanChunks(cursor, emit, nullptr);
  if (credited && cursor->exhausted.load() && !req.probe_rows) {
    std::lock_guard<std::mutex> guard(cursor_mu_);
    auto it = cursors_.find(std::make_pair(req.base.tc_id, req.base.lsn));
    if (it != cursors_.end() && it->second == cursor) cursors_.erase(it);
  }
}

void DataComponent::ScanCredit(const ScanCreditRequest& req,
                               const ScanChunkEmitter& emit) {
  if (crashed_.load() || role_.load() == DcRole::kReplica) return;
  EvictIdleScanCursors();
  std::shared_ptr<ScanCursor> cursor;
  {
    std::lock_guard<std::mutex> guard(cursor_mu_);
    auto it = cursors_.find(std::make_pair(req.tc_id, req.stream_id));
    if (it == cursors_.end()) return;  // unknown/stale stream: TC restarts
    if (req.close) {
      cursors_.erase(it);
      return;
    }
    cursor = it->second;
  }
  ProduceScanChunks(cursor, emit, &req);
  if (cursor->exhausted.load() && !cursor->req.probe_rows) {
    std::lock_guard<std::mutex> guard(cursor_mu_);
    auto it = cursors_.find(std::make_pair(req.tc_id, req.stream_id));
    if (it != cursors_.end() && it->second == cursor) cursors_.erase(it);
  }
}

size_t DataComponent::ScanCursorCount() const {
  std::lock_guard<std::mutex> guard(cursor_mu_);
  return cursors_.size();
}

size_t DataComponent::EvictIdleScanCursors() {
  const int64_t now = SteadyNowMs();
  const int64_t ttl = static_cast<int64_t>(options_.scan_cursor_ttl_ms);
  std::lock_guard<std::mutex> guard(cursor_mu_);
  size_t evicted = 0;
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (now - it->second->last_active_ms.load() > ttl) {
      it = cursors_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  stats_.scan_cursors_evicted.fetch_add(evicted);
  return evicted;
}

void DataComponent::EvictScanCursorsForTc(TcId tc) {
  std::lock_guard<std::mutex> guard(cursor_mu_);
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (it->first.first == tc) {
      it = cursors_.erase(it);
      stats_.scan_cursors_evicted.fetch_add(1);
    } else {
      ++it;
    }
  }
}

void DataComponent::OnTcDisconnect(TcId tc) { EvictScanCursorsForTc(tc); }

void DataComponent::ClearScanCursors() {
  std::lock_guard<std::mutex> guard(cursor_mu_);
  cursors_.clear();
}

ControlReply DataComponent::Control(const ControlRequest& req) {
  ControlReply reply;
  reply.type = req.type;
  reply.tc_id = req.tc_id;
  reply.seq = req.seq;
  if (crashed_.load()) {
    reply.status = Status::Crashed("dc is down");
    return reply;
  }
  if (role_.load() == DcRole::kReplica) {
    reply.status = Status::Crashed("dc is a replica");
    return reply;
  }
  switch (req.type) {
    case ControlType::kEndOfStableLog:
      pool_->OnEndOfStableLog(req.tc_id, req.lsn);
      AppendRedoControl(RedoEntryKind::kEosl, req.tc_id, req.lsn);
      reply.status = Status::OK();
      break;
    case ControlType::kLowWaterMark:
      pool_->OnLowWaterMark(req.tc_id, req.lsn);
      PruneReplies(req.tc_id, req.lsn);
      AppendRedoControl(RedoEntryKind::kLwm, req.tc_id, req.lsn);
      reply.status = Status::OK();
      break;
    case ControlType::kCheckpoint: {
      // Replica clamp: the TC may not truncate its log below an op the
      // slowest registered replica has not acked — after a failover to
      // that replica the TC must still be able to re-drive it.
      Lsn granted = req.lsn;
      if (redo_log_ != nullptr && redo_log_->replication_enabled()) {
        const uint64_t floor =
            redo_log_->MinOpLsnAfter(redo_log_->MinReplicaAck(), req.tc_id);
        if (floor < granted) granted = static_cast<Lsn>(floor);
      }
      reply.status = DoTcCheckpoint(req.tc_id, granted);
      reply.rlsn = granted;  // the GRANTED (possibly clamped) truncation point
      break;
    }
    case ControlType::kRestartBegin: {
      // The failed TC's open streams died with it: drop their cursors.
      EvictScanCursorsForTc(req.tc_id);
      std::vector<TcId> escalate;
      reply.status = DoReset(req.tc_id, req.lsn, &escalate);
      reply.escalate_tcs = std::move(escalate);
      if (reply.status.ok()) {
        // Replicas reproduce the page-reset semantics by cancel-filtered
        // replay keyed off this entry.
        AppendRedoControl(RedoEntryKind::kReset, req.tc_id, req.lsn);
        if (redo_log_ != nullptr) {
          // The reset reverted pages to OUR stable images, but on a
          // promoted standby those need not cover everything below the
          // TCs' RSSPs — the checkpoint clamp negotiated page stability
          // with the old primary, and escalation resends cannot reach
          // below a truncated TC log. Our own redo log holds the full
          // applied history (the kReset above cancel-filters the lost
          // tail), so re-derive the post-reset truth locally.
          uint64_t replayed = 0;
          Status rs = RecoverFromLocalLog(&replayed);
          if (TraceEnabled()) {
            fprintf(stderr,
                    "[dc %p] RESTART tc=%u stable_end=%llu esc=%zu replay=%s "
                    "ops=%llu end=%llu\n",
                    (void*)this, req.tc_id, (unsigned long long)req.lsn,
                    reply.escalate_tcs.size(), rs.ToString().c_str(),
                    (unsigned long long)replayed,
                    (unsigned long long)redo_log_->end());
          }
          if (!rs.ok()) reply.status = rs;
        }
      }
      break;
    }
    case ControlType::kRestartEnd: {
      // The TC finished its redo resend: its LWM is trustworthy again,
      // and the page abLSNs are once more the coverage authority.
      pool_->AllowLwm(req.tc_id);
      std::lock_guard<std::mutex> guard(redo_mu_);
      redo_fresh_max_.erase(req.tc_id);
      reply.status = Status::OK();
      break;
    }
    case ControlType::kDcCheckpoint:
      reply.status = DoDcCheckpoint();
      break;
    case ControlType::kQueryReplication:
      // "Can you recover locally / do you hold an applied-op log?" The
      // TC's restart path uses rlsn (our applied end) to resend only the
      // suffix its acked-rlsn records say we never durably applied.
      reply.replication_enabled = redo_log_ != nullptr;
      // rlsn 0 unless the state provably reflects the whole log (fresh
      // operation, a finished local replay, or replica apply) — a loaded
      // but unreplayed prefix must not suppress the TC's resend.
      reply.rlsn = redo_log_ != nullptr && redo_state_current_.load()
                       ? redo_log_->end()
                       : 0;
      reply.status = Status::OK();
      break;
    default:
      reply.status = Status::InvalidArgument("unknown control type");
      break;
  }
  return reply;
}

Status DataComponent::DoTcCheckpoint(TcId /*tc*/, Lsn new_rssp) {
  // "DC will reply once it has made stable all pages that contain
  // operations whose LSN is below newRSSP" (§4.2.1). The filter uses the
  // page-global first-op LSN: over-flushing other TCs' pages is harmless.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    pool_->FlushAllEligible();
    bool remaining = false;
    for (PageId pid : pool_->CachedPages()) {
      Frame* frame = nullptr;
      if (!pool_->Fetch(pid, &frame).ok()) continue;
      const bool blocking = frame->dirty && frame->first_op_lsn != 0 &&
                            frame->first_op_lsn < new_rssp;
      pool_->Unpin(frame);
      if (blocking) {
        remaining = true;
        break;
      }
    }
    if (!remaining) return Status::OK();
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::TimedOut("checkpoint could not flush all pages");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Status DataComponent::DoDcCheckpoint() {
  const uint64_t watermark = redo_log_ != nullptr ? redo_log_->end() : 0;
  pool_->FlushAllEligible();
  // The DC log can be truncated below the earliest system-transaction
  // record still needed by a dirty page.
  DLsn min_rec = dc_log_->stable_dlsn_end();
  for (PageId pid : pool_->CachedPages()) {
    Frame* frame = nullptr;
    if (!pool_->Fetch(pid, &frame).ok()) continue;
    if (frame->dirty && frame->rec_dlsn != 0 && frame->rec_dlsn < min_rec) {
      min_rec = frame->rec_dlsn;
    }
    pool_->Unpin(frame);
  }
  dc_log_->TruncateBelow(min_rec);
  // Checkpoint marker: advisory for local recovery (EOSL-ineligible
  // pages may hold back ops <= W, so replay still starts at rlsn 1 and
  // leans on abLSN duplicate skips), but it propagates the checkpoint
  // cadence to replicas, which flush their own pages on seeing it.
  if (redo_log_ != nullptr) {
    AppendRedoControl(RedoEntryKind::kWatermark, 0, watermark);
  }
  return Status::OK();
}

Status DataComponent::DoReset(TcId tc, Lsn stable_end,
                              std::vector<TcId>* escalate) {
  // §5.3.2 / §6.1.2: drop exactly the cached pages whose abLSN includes
  // operations beyond the failed TC's stable log; on shared pages, reset
  // only the failed TC's records.
  std::vector<TcId> escalate_set;

  // Pre-pass: settle the DC log. Batches whose causality floors are met
  // become stable (their structure survives the reset via replay); the
  // rest may embed operations the failed TC lost and can never be forced
  // — discard them AND every cached page they touched, reverting those
  // pages to their stable versions. Healthy TCs with data on such pages
  // must resend from their RSSP (escalation).
  pool_->ForceDcLog();
  pool_->DisallowLwm(tc);  // re-armed by the TC's restart-end
  const std::vector<DcLog::PendingBatchInfo> discarded =
      dc_log_->DiscardPending();
  for (const auto& batch : discarded) {
    for (const auto& [other_tc, floor_lsn] : batch.floor) {
      if (other_tc != tc) escalate_set.push_back(other_tc);
    }
    for (PageId pid : batch.pids) {
      Frame* frame = nullptr;
      if (!pool_->Fetch(pid, &frame).ok()) continue;
      frame->latch.LockExclusive();
      for (const auto& [other_tc, ab] : frame->ablsn.entries()) {
        if (other_tc != tc) escalate_set.push_back(other_tc);
      }
      frame->latch.UnlockExclusive();
      pool_->Unpin(frame);
      for (int i = 0; i < 1000 && !pool_->Drop(pid); ++i) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      stats_.pages_reset_dropped.fetch_add(1);
    }
  }
  for (PageId pid : pool_->CachedPages()) {
    Frame* frame = nullptr;
    if (!pool_->Fetch(pid, &frame).ok()) continue;
    frame->latch.LockExclusive();
    const Lsn max_for_tc = frame->ablsn.MaxCoveredFor(tc);
    if (max_for_tc <= stable_end) {
      frame->latch.UnlockExclusive();
      pool_->Unpin(frame);
      continue;
    }
    if (TraceEnabled()) {
      fprintf(stderr, "[dc] RESET pid=%u tc=%u maxfor=%llu stable_end=%llu tccount=%zu\n",
              pid, tc, (unsigned long long)max_for_tc,
              (unsigned long long)stable_end,
              (size_t)frame->ablsn.TcCount());
    }
    bool drop = false;
    if (frame->ablsn.TcCount() <= 1) {
      drop = true;
      stats_.pages_reset_dropped.fetch_add(1);
    } else {
      // Multi-TC page: try the per-record merge against the stable
      // version; fall back to dropping + escalation.
      std::vector<char> stable(store_->page_size());
      Status rs = store_->Read(pid, stable.data());
      bool merged = false;
      if (rs.ok()) {
        SlottedPage stable_page(stable.data(), pool_->page_size(),
                                pool_->trailer_capacity());
        SlottedPage cached = frame->Page(pool_->page_size(),
                                         pool_->trailer_capacity());
        if (stable_page.dlsn() == cached.dlsn()) {
          merged = MergeResetLocked(frame, tc, stable);
        }
      }
      if (merged) {
        if (TraceEnabled()) fprintf(stderr, "[dc] RESET-MERGED pid=%u\n", pid);
        stats_.pages_reset_merged.fetch_add(1);
      } else {
        drop = true;
        stats_.reset_escalations.fetch_add(1);
        for (const auto& [other_tc, ab] : frame->ablsn.entries()) {
          if (other_tc != tc) escalate_set.push_back(other_tc);
        }
      }
    }
    frame->latch.UnlockExclusive();
    pool_->Unpin(frame);
    if (drop) {
      // The frame may be briefly pinned by a racing read; retry.
      for (int i = 0; i < 1000 && !pool_->Drop(pid); ++i) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }
  // Evicted structure pages whose SMOs are on the stable DC log must be
  // brought back before the TC resends (§5.2.2 ordering).
  Status s = btree_->ReplayStableSmoBatches();
  if (!s.ok()) return s;

  std::sort(escalate_set.begin(), escalate_set.end());
  escalate_set.erase(std::unique(escalate_set.begin(), escalate_set.end()),
                     escalate_set.end());

  // Invalidate state that describes pre-reset executions: the failed
  // TC's reply cache (its log tail is gone) and, for every escalated TC,
  // both the reply cache and the LWM (their page effects were dropped —
  // stale replies or LWM folding would silently skip their resends).
  {
    std::lock_guard<std::mutex> guard(reply_mu_);
    reply_cache_.erase(tc);
    for (TcId victim : escalate_set) reply_cache_.erase(victim);
  }
  for (TcId victim : escalate_set) pool_->DisallowLwm(victim);
  {
    // A NEW regression: the failed TC's and every escalated TC's next
    // redo pass must re-establish state from scratch.
    std::lock_guard<std::mutex> guard(redo_mu_);
    redo_fresh_max_.erase(tc);
    for (TcId victim : escalate_set) redo_fresh_max_.erase(victim);
  }
  *escalate = std::move(escalate_set);
  return Status::OK();
}

bool DataComponent::MergeResetLocked(Frame* frame, TcId tc,
                                     const std::vector<char>& stable) {
  SlottedPage cached =
      frame->Page(pool_->page_size(), pool_->trailer_capacity());
  SlottedPage stable_page(const_cast<char*>(stable.data()),
                          pool_->page_size(), pool_->trailer_capacity());

  // Index the stable records.
  std::map<std::string, LeafRecord> stable_recs;
  for (uint16_t i = 0; i < stable_page.slot_count(); ++i) {
    LeafRecord rec;
    if (LeafRecord::Decode(stable_page.PayloadAt(i), &rec)) {
      stable_recs[rec.key] = std::move(rec);
    }
  }

  // Pass 1: records last written by the failed TC revert to (or vanish
  // into) their stable state.
  for (uint16_t i = 0; i < cached.slot_count();) {
    LeafRecord rec;
    LeafRecord::Decode(cached.PayloadAt(i), &rec);
    if (rec.last_writer_tc != tc) {
      ++i;
      continue;
    }
    auto it = stable_recs.find(rec.key);
    if (it == stable_recs.end()) {
      cached.RemoveAt(i);
      continue;  // same index now holds the next slot
    }
    if (!cached.ReplaceAt(i, it->second.Encode()).ok()) {
      return false;  // no space — caller escalates
    }
    ++i;
  }
  // Pass 2: stable records of the failed TC missing from the cache
  // (a delete whose log record was lost) come back.
  for (const auto& [key, rec] : stable_recs) {
    if (rec.last_writer_tc != tc) continue;
    bool found;
    const uint16_t slot = BTree::LeafLowerBound(cached, key, &found);
    if (!found) {
      if (!cached.InsertAt(slot, rec.Encode()).ok()) {
        return false;
      }
    }
  }

  // The failed TC's abstract LSN reverts to what the stable page records.
  Slice trailer = stable_page.ReadTrailer();
  PageAbLsn stable_ab;
  if (!trailer.empty()) PageAbLsn::DecodeFrom(&trailer, &stable_ab);
  const AbstractLsn* stable_entry = stable_ab.Find(tc);
  if (stable_entry != nullptr) {
    frame->ablsn.Set(tc, *stable_entry);
  } else {
    frame->ablsn.Erase(tc);
  }
  frame->dirty = true;
  return true;
}

std::vector<OperationReply> DataComponent::PerformBatch(
    const std::vector<OperationRequest>& reqs) {
  stats_.batches.fetch_add(1);
  stats_.batched_ops.fetch_add(reqs.size());
  std::vector<OperationReply> replies(reqs.size());
  if (crashed_.load() || role_.load() == DcRole::kReplica) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      replies[i].tc_id = reqs[i].tc_id;
      replies[i].lsn = reqs[i].lsn;
      replies[i].status = crashed_.load()
                              ? Status::Crashed("dc is down")
                              : Status::Crashed("dc is a replica");
    }
    return replies;
  }
  std::vector<bool> served(reqs.size(), false);
  // A batch carrying recovery resends executes as ONE serial unit (see
  // Perform): duplicated copies of the same redo message must not
  // interleave their re-executions across server threads.
  std::unique_lock<std::recursive_mutex> recovery_serial;
  for (const auto& req : reqs) {
    if (req.recovery_resend) {
      recovery_serial =
          std::unique_lock<std::recursive_mutex>(recovery_serial_mu_);
      break;
    }
  }
  // One reply-cache sweep for the whole batch: a duplicate batch (channel
  // duplication or a TC resend) is answered wholesale without touching
  // the tree or re-entering the idempotence machinery per op. Recovery
  // resends are exempt (see Perform): redo must be judged by the page
  // abLSN alone, never by replies describing pre-regression executions.
  {
    std::lock_guard<std::mutex> guard(reply_mu_);
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (!IsWriteOp(reqs[i].op) || reqs[i].recovery_resend) continue;
      auto tc_it = reply_cache_.find(reqs[i].tc_id);
      if (tc_it == reply_cache_.end()) continue;
      auto it = tc_it->second.find(reqs[i].lsn);
      if (it == tc_it->second.end()) continue;
      replies[i] = it->second;
      replies[i].was_duplicate = true;
      served[i] = true;
    }
  }
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (served[i]) {
      stats_.ops.fetch_add(1);
      stats_.writes.fetch_add(1);
      stats_.reply_cache_hits.fetch_add(1);
      continue;
    }
    replies[i] = PerformImpl(reqs[i], /*record_redo=*/true,
                             /*defer_redo_force=*/true);
  }
  // One redo force for the whole batch (group commit): no reply leaves
  // this message handler before its entry is durable.
  if (redo_log_ != nullptr) redo_log_->Force();
  return replies;
}

void DataComponent::CacheReply(const OperationReply& reply) {
  std::lock_guard<std::mutex> guard(reply_mu_);
  reply_cache_[reply.tc_id][reply.lsn] = reply;
}

bool DataComponent::LookupReply(TcId tc, Lsn lsn, OperationReply* out) {
  std::lock_guard<std::mutex> guard(reply_mu_);
  auto tc_it = reply_cache_.find(tc);
  if (tc_it == reply_cache_.end()) return false;
  auto it = tc_it->second.find(lsn);
  if (it == tc_it->second.end()) return false;
  *out = it->second;
  return true;
}

void DataComponent::PruneReplies(TcId tc, Lsn lwm) {
  std::lock_guard<std::mutex> guard(reply_mu_);
  auto tc_it = reply_cache_.find(tc);
  if (tc_it == reply_cache_.end()) return;
  auto& per_lsn = tc_it->second;
  per_lsn.erase(per_lsn.begin(), per_lsn.upper_bound(lwm));
}

bool DataComponent::EnterSentinel(const OperationRequest& req,
                                  bool* duplicate_in_flight) {
  *duplicate_in_flight = false;
  if (!options_.conflict_sentinel) return true;
  std::lock_guard<std::mutex> guard(sentinel_mu_);
  const std::string key = SentinelKey(req.table_id, req.key);
  auto [it, inserted] = in_flight_.try_emplace(key, req.tc_id, req.lsn);
  if (inserted) return true;
  if (it->second == std::make_pair(req.tc_id, req.lsn)) {
    *duplicate_in_flight = true;  // a resend racing the original
  }
  return false;
}

void DataComponent::ExitSentinel(const OperationRequest& req) {
  if (!options_.conflict_sentinel) return;
  std::lock_guard<std::mutex> guard(sentinel_mu_);
  in_flight_.erase(SentinelKey(req.table_id, req.key));
}

// -- Replication & local recovery (PR 8) --------------------------------------

void DataComponent::StartAsReplica() {
  if (redo_log_ == nullptr) {
    redo_log_ = std::make_unique<DcRedoLog>(options_.redo_log);
    if (redo_log_->end() > 0) redo_state_current_.store(false);
  }
  role_.store(DcRole::kReplica);
}

void DataComponent::Promote(uint64_t epoch) {
  if (TraceEnabled()) {
    fprintf(stderr, "[dc %p] PROMOTE epoch=%llu log_end=%llu\n", (void*)this,
            (unsigned long long)epoch,
            (unsigned long long)(redo_log_ ? redo_log_->end() : 0));
  }
  // Record the fence point BEFORE opening for traffic: anything a
  // rejoining ex-primary holds past this rlsn is divergent history.
  promotion_epoch_.store(epoch);
  promotion_base_.store(redo_log_ != nullptr ? redo_log_->end() : 0);
  role_.store(DcRole::kPrimary);
  stats_.promotions.fetch_add(1);
}

Status DataComponent::RejoinAsReplica(uint64_t promotion_base) {
  if (redo_log_ == nullptr) {
    return Status::InvalidArgument("dc has no redo log");
  }
  if (TraceEnabled()) {
    fprintf(stderr, "[dc %p] REJOIN promotion_base=%llu log_end=%llu\n",
            (void*)this, (unsigned long long)promotion_base,
            (unsigned long long)redo_log_->end());
  }
  // Replica role first: no TC traffic may append past the truncation.
  role_.store(DcRole::kReplica);
  redo_log_->set_replication_enabled(false);
  redo_log_->TruncateFrom(promotion_base + 1);
  // Pages may still hold effects of the dropped suffix. That is safe:
  // every such op is either re-shipped by the new primary (identical
  // content, absorbed as an abLSN duplicate) or cancelled by a TC reset
  // in the stream, which rebuilds this replica from scratch anyway.
  return Status::OK();
}

Status DataComponent::ApplyOneReplicated(const RedoEntry& entry) {
  switch (entry.kind) {
    case RedoEntryKind::kOp: {
      OperationRequest req;
      Slice in(entry.payload);
      if (!OperationRequest::DecodeFrom(&in, &req)) {
        return Status::Corruption("bad replicated op entry");
      }
      // A replayed op is recovery redo regardless of how it was first
      // delivered: the payload snapshots the ORIGINAL send's flag, but
      // here the op re-establishes page state after a regression. The
      // flag matters — a page the reset just reverted can still carry a
      // folded-LWM abLSN that over-covers this op (the fold only claimed
      // "the TC will never resend below here", which replay violates by
      // design), and only the recovery path distrusts such coverage.
      req.recovery_resend = true;
      OperationReply r = PerformImpl(req, /*record_redo=*/false,
                                     /*defer_redo_force=*/true);
      if (r.status.IsBusy()) {
        // The stream applies in strict rlsn order with no competing
        // traffic, so a parked strategy-1 flush can refuse this op
        // forever — the collapsing control may sit behind it in the
        // stream (cancel-filtered in-sets cover less than live history
        // did). Abandon the parked flushes and try again.
        pool_->AbandonParkedFlushes();
        r = PerformImpl(req, /*record_redo=*/false,
                        /*defer_redo_force=*/true);
      }
      if (r.status.IsBusy() || r.status.IsCrashed() ||
          r.status.IsTimedOut()) {
        if (TraceEnabled()) {
          fprintf(stderr, "[dc %p] REPLICA-DEFER %s op=%d tc=%u lsn=%llu\n",
                  (void*)this, r.status.ToString().c_str(), (int)req.op,
                  req.tc_id, (unsigned long long)req.lsn);
        }
        return Status::Busy("replica apply deferred");
      }
      return Status::OK();
    }
    case RedoEntryKind::kLwm:
      pool_->OnLowWaterMark(entry.tc, entry.lsn);
      PruneReplies(entry.tc, entry.lsn);
      return Status::OK();
    case RedoEntryKind::kEosl:
      pool_->OnEndOfStableLog(entry.tc, entry.lsn);
      return Status::OK();
    case RedoEntryKind::kWatermark:
      // The primary checkpointed here: flush our own eligible pages so
      // replica restarts replay a comparably short effective suffix and
      // the pool never jams on unflushable dirt during long catch-ups.
      pool_->FlushAllEligible();
      return Status::OK();
    case RedoEntryKind::kReset:
      return Status::OK();  // handled by the caller (reset-by-replay)
  }
  return Status::OK();
}

Status DataComponent::ReplayRedoEntries(const std::vector<RedoEntry>& entries,
                                        uint64_t* ops) {
  for (const RedoEntry& e : entries) {
    Status s = ApplyOneReplicated(e);
    // A replay runs with no competing traffic, so Busy here is a
    // transient flush/split window — retry briefly instead of failing
    // the whole recovery over it.
    for (int attempt = 0; s.IsBusy() && attempt < 200; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      s = ApplyOneReplicated(e);
    }
    if (!s.ok()) return s;
    if (e.kind == RedoEntryKind::kOp && ops != nullptr) ++*ops;
  }
  return Status::OK();
}

Status DataComponent::ApplyReplicated(const ReplicaEntriesMessage& msg) {
  if (redo_log_ == nullptr || role_.load() != DcRole::kReplica) {
    return Status::InvalidArgument("not an active replica");
  }
  if (crashed_.load()) return Status::Crashed("dc is down");
  // Serialized like recovery resends: the stream must apply in order.
  std::lock_guard<std::recursive_mutex> serial(recovery_serial_mu_);
  if (msg.from_rlsn > redo_log_->end() + 1) {
    return Status::InvalidArgument("replication gap; resubscribe");
  }
  for (size_t i = 0; i < msg.entries.size(); ++i) {
    const uint64_t rlsn = msg.from_rlsn + i;
    if (rlsn <= redo_log_->end()) continue;  // overlap: already applied
    const RedoEntry& e = msg.entries[i];
    if (e.kind == RedoEntryKind::kReset) {
      // Append BEFORE rebuilding: the rebuild's cancellation filter
      // keys off this entry's position in the retained log.
      redo_log_->Append(e);
      redo_log_->Force();
      Status s = ReplicaResetByReplay();
      if (!s.ok()) return s;
    } else {
      Status s = ApplyOneReplicated(e);
      if (!s.ok()) {
        // Transient (busy/flush-wait): force what we have; the link
        // retries from our end + 1.
        redo_log_->Force();
        return s;
      }
      redo_log_->Append(e);
    }
    stats_.replica_entries_applied.fetch_add(1);
  }
  redo_log_->Force();
  return Status::OK();
}

Status DataComponent::ReplicaResetByReplay() {
  stats_.replica_resets_replayed.fetch_add(1);
  // Snapshot the replay set first (the wipe never touches the redo log).
  std::vector<RedoEntry> survivors;
  redo_log_->SnapshotSurvivingOps(&survivors);
  // Full wipe: pool, caches, SMO log, store, tree format. Mirrors
  // Crash() + a store/SMO-log clear, then a fresh Bootstrap.
  crashed_.store(true);
  {
    std::unique_lock<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.wait(lock, [this] { return active_ops_.load() == 0; });
  }
  pool_->Clear();
  dc_log_->Clear();
  {
    std::lock_guard<std::mutex> guard(reply_mu_);
    reply_cache_.clear();
  }
  {
    std::lock_guard<std::mutex> guard(sentinel_mu_);
    in_flight_.clear();
  }
  {
    std::lock_guard<std::mutex> guard(redo_mu_);
    redo_fresh_max_.clear();
  }
  ClearScanCursors();
  store_->Reset();
  crashed_.store(false);
  Status s = btree_->Bootstrap();
  if (s.ok()) s = ReplayRedoEntries(survivors, nullptr);
  if (!s.ok()) {
    // A half-rebuilt replica must never be promoted.
    crashed_.store(true);
  } else {
    redo_state_current_.store(true);
  }
  return s;
}

Status DataComponent::RecoverFromLocalLog(uint64_t* replayed_out) {
  if (redo_log_ == nullptr) {
    return Status::InvalidArgument("dc has no redo log");
  }
  if (crashed_.load()) return Status::Crashed("dc is down");
  std::lock_guard<std::recursive_mutex> serial(recovery_serial_mu_);
  // Always the full cancel-filtered set from rlsn 1: checkpoint
  // watermarks cannot promise every op <= W reached a stable page
  // (EOSL-ineligible pages hold ops back), but abLSN duplicate
  // detection makes re-offering already-reflected ops cheap.
  std::vector<RedoEntry> entries;
  redo_log_->SnapshotSurvivingOps(&entries);
  uint64_t ops = 0;
  Status s = ReplayRedoEntries(entries, &ops);
  stats_.local_recovery_ops.fetch_add(ops);
  if (replayed_out != nullptr) *replayed_out = ops;
  if (s.ok()) redo_state_current_.store(true);
  return s;
}

}  // namespace untx
