// Abstract page LSNs (§5.1.2): the DC-side idempotence test under
// out-of-order operation arrival.
//
//   abLSN = <LSNlw, {LSNin}>
//   op with LSNi is reflected in the page  iff  LSNi <= LSNlw or LSNi ∈ {LSNin}
//
// LSNlw may only advance from the TC-supplied low-water mark (the TC has
// received replies for every operation at or below it); the DC cannot
// derive it locally because operations arrive out of LSN order.
//
// With multiple TCs per DC (§6.1.1), a page carries one abstract LSN per
// TC that has data on it; PageAbLsn is that collection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/types.h"

namespace untx {

/// One TC's abstract LSN for one page.
class AbstractLsn {
 public:
  /// True iff the operation's effects are already in the page state.
  bool Covers(Lsn lsn) const;

  /// Records that the operation with `lsn` was applied to the page.
  /// No-op if already covered.
  void Add(Lsn lsn);

  /// Advances the low-water component to `lwm` (if higher) and prunes
  /// {LSNin} entries at or below it — §5.1.2 "Establishing LSNlw".
  void AdvanceTo(Lsn lwm);

  /// Largest operation LSN reflected in the page. This is what the
  /// causality check compares against the end of the stable TC log, and
  /// what the TC-crash reset compares against LSNst (§5.3.2).
  Lsn MaxCovered() const;

  /// True when {LSNin} is empty, i.e. the abLSN collapses to a single
  /// LSN — the state page-sync strategy 1 waits for.
  bool Collapsed() const { return in_.empty(); }

  Lsn lw() const { return lw_; }
  size_t in_set_size() const { return in_.size(); }
  const std::vector<Lsn>& in_set() const { return in_; }

  /// Merge for page consolidation (§5.2.2): the surviving page reflects
  /// the union of both pages' applied operations; the low-water bound is
  /// the max of the two (an LWM of L guarantees every op <= L was applied
  /// to whichever page owned its key, so the merged page inherits it).
  void MergeFrom(const AbstractLsn& other);

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, AbstractLsn* out);

  /// Serialized size in bytes.
  size_t EncodedSize() const;

  bool operator==(const AbstractLsn& other) const {
    return lw_ == other.lw_ && in_ == other.in_;
  }

 private:
  Lsn lw_ = 0;
  std::vector<Lsn> in_;  // sorted ascending, unique, all > lw_
};

/// The per-page collection of abstract LSNs, one per TC with data on the
/// page. Pages touched by a single TC carry exactly one entry (§6.1.1).
class PageAbLsn {
 public:
  bool Covers(TcId tc, Lsn lsn) const;
  void Add(TcId tc, Lsn lsn);
  void AdvanceTo(TcId tc, Lsn lwm);

  /// Largest op LSN any TC has reflected in the page.
  Lsn MaxCoveredAll() const;
  /// Largest op LSN of one TC reflected in the page (0 if none).
  Lsn MaxCoveredFor(TcId tc) const;

  bool CollapsedAll() const;
  size_t TotalInSetSize() const;
  size_t TcCount() const { return entries_.size(); }
  bool HasTc(TcId tc) const;

  const AbstractLsn* Find(TcId tc) const;
  AbstractLsn* FindMutable(TcId tc);
  void Set(TcId tc, AbstractLsn ab);
  void Erase(TcId tc);
  void Clear() { entries_.clear(); }

  /// Merge for consolidation across all TCs present on either page.
  void MergeFrom(const PageAbLsn& other);

  const std::vector<std::pair<TcId, AbstractLsn>>& entries() const {
    return entries_;
  }

  /// Page-sync serialization (the page trailer, §5.1.2 "Page Sync").
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, PageAbLsn* out);
  size_t EncodedSize() const;

  bool operator==(const PageAbLsn& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<std::pair<TcId, AbstractLsn>> entries_;  // sorted by TcId
};

}  // namespace untx
