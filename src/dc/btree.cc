#include "dc/btree.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "storage/page.h"

namespace untx {

namespace {

// Catalog record in the meta page: fixed32 table id + fixed32 root pid.
std::string EncodeCatalogEntry(TableId table, PageId root) {
  std::string out;
  PutFixed32(&out, table);
  PutFixed32(&out, root);
  return out;
}

bool DecodeCatalogEntry(Slice payload, TableId* table, PageId* root) {
  if (!GetFixed32(&payload, table)) return false;
  if (!GetFixed32(&payload, root)) return false;
  return true;
}

// Lower bound over catalog entries by table id.
uint16_t CatalogLowerBound(const SlottedPage& page, TableId table,
                           bool* found) {
  uint16_t lo = 0, hi = page.slot_count();
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    TableId t;
    PageId r;
    DecodeCatalogEntry(page.PayloadAt(mid), &t, &r);
    if (t < table) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = false;
  if (lo < page.slot_count()) {
    TableId t;
    PageId r;
    DecodeCatalogEntry(page.PayloadAt(lo), &t, &r);
    *found = (t == table);
  }
  return lo;
}

// Stamps a frame's page dLSN and records the first-since-clean dLSN used
// to bound DC-log truncation. Caller holds the exclusive latch.
void StampDlsn(SlottedPage page, Frame* frame, DLsn dlsn) {
  page.set_dlsn(dlsn);
  if (frame->rec_dlsn == 0) frame->rec_dlsn = dlsn;
}

}  // namespace

BTree::BTree(StableStore* store, BufferPool* pool, DcLog* dc_log,
             BTreeOptions options)
    : store_(store), pool_(pool), dc_log_(dc_log), options_(options) {}

Status BTree::Bootstrap() {
  meta_pid_ = store_->Allocate();
  std::vector<char> buf(pool_->page_size(), 0);
  SlottedPage meta(buf.data(), pool_->page_size(), pool_->trailer_capacity());
  meta.Init(meta_pid_, PageType::kMeta, 0, kInvalidTableId);
  Status s = store_->Write(meta_pid_, buf.data());
  if (s.ok()) {
    // A bootstrap on a reset store (replica reset-by-replay) must not
    // leave roots of the wiped catalog behind: the replayed CreateTable
    // is idempotent and would trust them.
    std::lock_guard<std::mutex> guard(root_mu_);
    root_cache_.clear();
  }
  return s;
}

Status BTree::RebuildRootCache() {
  if (meta_pid_ == kInvalidPageId) {
    // Recovery path: the meta page is by convention the store's first
    // allocation.
    meta_pid_ = 1;
  }
  return LoadRootCache();
}

Status BTree::LoadRootCache() {
  Frame* meta = nullptr;
  Status s = pool_->Fetch(meta_pid_, &meta);
  if (!s.ok()) return s;
  PinGuard pin(pool_, meta);
  SharedLatchGuard latch(&meta->latch);
  SlottedPage page = PageOf(meta);
  std::lock_guard<std::mutex> guard(root_mu_);
  root_cache_.clear();
  for (uint16_t i = 0; i < page.slot_count(); ++i) {
    TableId table;
    PageId root;
    if (DecodeCatalogEntry(page.PayloadAt(i), &table, &root)) {
      root_cache_[table] = root;
    }
  }
  return Status::OK();
}

StatusOr<PageId> BTree::GetRoot(TableId table) const {
  std::lock_guard<std::mutex> guard(root_mu_);
  auto it = root_cache_.find(table);
  if (it == root_cache_.end()) {
    return Status::NotFound("table not in catalog");
  }
  return it->second;
}

uint16_t BTree::LeafLowerBound(const SlottedPage& page, Slice key,
                               bool* found) {
  uint16_t lo = 0, hi = page.slot_count();
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    Slice mid_key;
    LeafRecord::DecodeKey(page.PayloadAt(mid), &mid_key);
    if (mid_key.compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = false;
  if (lo < page.slot_count()) {
    Slice k;
    LeafRecord::DecodeKey(page.PayloadAt(lo), &k);
    *found = (k == key);
  }
  return lo;
}

uint16_t BTree::InternalChildIdx(const SlottedPage& page, Slice key) {
  // Last entry whose separator <= key. Entry 0 has the empty separator,
  // so the answer always exists.
  assert(page.slot_count() > 0);
  uint16_t lo = 0, hi = page.slot_count();
  while (lo + 1 < hi) {
    const uint16_t mid = (lo + hi) / 2;
    Slice sep;
    InternalEntry::DecodeKey(page.PayloadAt(mid), &sep);
    if (sep.compare(key) <= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status BTree::LocateLeaf(TableId table, Slice key, bool exclusive,
                         Frame** out) {
  bool root_leaf_hint = false;
  for (int attempt = 0; attempt < 256; ++attempt) {
    StatusOr<PageId> root = GetRoot(table);
    if (!root.ok()) return root.status();

    Frame* cur = nullptr;
    Status s = pool_->Fetch(*root, &cur);
    if (s.IsNotFound()) continue;  // root changed under us; retry
    if (!s.ok()) return s;

    bool cur_exclusive = exclusive && root_leaf_hint;
    if (cur_exclusive) {
      cur->latch.LockExclusive();
    } else {
      cur->latch.LockShared();
    }

    for (;;) {
      if (cur->retired) {
        if (cur_exclusive) {
          cur->latch.UnlockExclusive();
        } else {
          cur->latch.UnlockShared();
        }
        pool_->Unpin(cur);
        cur = nullptr;
        break;  // restart descend
      }
      SlottedPage page = PageOf(cur);
      if (page.type() == PageType::kLeaf) {
        if (exclusive && !cur_exclusive) {
          // We reached a leaf holding only a shared latch (the root was
          // a leaf and we had no hint). Restart with the exclusive hint;
          // upgrading in place could deadlock with a concurrent SMO.
          cur->latch.UnlockShared();
          pool_->Unpin(cur);
          cur = nullptr;
          root_leaf_hint = true;
          break;
        }
        *out = cur;
        return Status::OK();
      }
      // Internal node: crab down.
      const uint16_t idx = InternalChildIdx(page, key);
      InternalEntry entry;
      InternalEntry::Decode(page.PayloadAt(idx), &entry);
      const bool child_is_leaf = (page.level() == 1);

      Frame* child = nullptr;
      s = pool_->Fetch(entry.child, &child);
      if (!s.ok()) {
        // Should not happen under correct crabbing; retry defensively.
        if (cur_exclusive) {
          cur->latch.UnlockExclusive();
        } else {
          cur->latch.UnlockShared();
        }
        pool_->Unpin(cur);
        cur = nullptr;
        break;
      }
      const bool child_exclusive = exclusive && child_is_leaf;
      if (child_exclusive) {
        child->latch.LockExclusive();
      } else {
        child->latch.LockShared();
      }
      if (cur_exclusive) {
        cur->latch.UnlockExclusive();
      } else {
        cur->latch.UnlockShared();
      }
      pool_->Unpin(cur);
      cur = child;
      cur_exclusive = child_exclusive;
    }
    // fall through: retry
  }
  return Status::Busy("btree descend kept racing structure changes");
}

Status BTree::DescendExclusive(TableId table, Slice key,
                               std::vector<PathEntry>* path, Frame** leaf) {
  path->clear();
  StatusOr<PageId> root = GetRoot(table);
  if (!root.ok()) return root.status();

  Frame* cur = nullptr;
  Status s = pool_->Fetch(*root, &cur);
  if (!s.ok()) return s;
  cur->latch.LockExclusive();

  for (;;) {
    SlottedPage page = PageOf(cur);
    if (page.type() == PageType::kLeaf) {
      *leaf = cur;
      return Status::OK();
    }
    const uint16_t idx = InternalChildIdx(page, key);
    InternalEntry entry;
    InternalEntry::Decode(page.PayloadAt(idx), &entry);
    Frame* child = nullptr;
    s = pool_->Fetch(entry.child, &child);
    if (!s.ok()) {
      cur->latch.UnlockExclusive();
      pool_->Unpin(cur);
      ReleasePath(path);
      return s;
    }
    child->latch.LockExclusive();
    path->push_back({cur, idx});
    cur = child;
  }
}

void BTree::ReleasePath(std::vector<PathEntry>* path) {
  for (auto it = path->rbegin(); it != path->rend(); ++it) {
    it->frame->latch.UnlockExclusive();
    pool_->Unpin(it->frame);
  }
  path->clear();
}

DcLogRecord BTree::MakeImageRecord(Frame* frame) const {
  DcLogRecord rec;
  rec.type = DcLogRecordType::kPageImage;
  rec.pid = frame->pid;
  rec.body.assign(frame->data.data(), frame->data.size());
  rec.ablsn = frame->ablsn;
  return rec;
}

void BTree::FoldFloor(const PageAbLsn& ablsn, std::map<TcId, Lsn>* floor) {
  for (const auto& [tc, ab] : ablsn.entries()) {
    Lsn& f = (*floor)[tc];
    if (ab.MaxCovered() > f) f = ab.MaxCovered();
  }
}

Status BTree::SetRootInMeta(TableId table, PageId root,
                            std::vector<DcLogRecord>* recs,
                            std::map<TcId, Lsn>* floor) {
  Frame* meta = nullptr;
  Status s = pool_->Fetch(meta_pid_, &meta);
  if (!s.ok()) return s;
  ExclusiveLatchGuard latch(&meta->latch);
  SlottedPage page = PageOf(meta);
  bool found;
  const uint16_t slot = CatalogLowerBound(page, table, &found);
  const std::string entry = EncodeCatalogEntry(table, root);
  if (found) {
    s = page.ReplaceAt(slot, entry);
  } else {
    s = page.InsertAt(slot, entry);
  }
  if (!s.ok()) {
    pool_->Unpin(meta);
    return s;  // meta page full: ~500 tables at 8K pages
  }
  meta->dirty = true;
  recs->push_back(MakeImageRecord(meta));
  FoldFloor(meta->ablsn, floor);
  {
    std::lock_guard<std::mutex> guard(root_mu_);
    root_cache_[table] = root;
  }
  latch.Release();
  pool_->Unpin(meta);
  return Status::OK();
}

Status BTree::CreateTable(TableId table) {
  std::lock_guard<std::mutex> smo(smo_mu_);
  {
    std::lock_guard<std::mutex> guard(root_mu_);
    if (root_cache_.count(table) > 0) {
      return Status::AlreadyExists("table exists");
    }
  }
  const PageId root_pid = store_->Allocate();
  Frame* root = pool_->Create(root_pid);
  {
    ExclusiveLatchGuard latch(&root->latch);
    SlottedPage page = PageOf(root);
    page.Init(root_pid, PageType::kLeaf, 0, table);
  }

  std::vector<DcLogRecord> recs;
  std::map<TcId, Lsn> floor;
  recs.push_back(MakeImageRecord(root));
  Status s = SetRootInMeta(table, root_pid, &recs, &floor);
  if (!s.ok()) {
    pool_->Unpin(root);
    return s;
  }
  dc_log_->AppendBatch(&recs, floor);
  // Stamp dlsns: recs[0] is the root image, recs[1] the meta image.
  {
    ExclusiveLatchGuard latch(&root->latch);
    StampDlsn(PageOf(root), root, recs[0].dlsn);
  }
  Frame* meta = nullptr;
  if (pool_->Fetch(meta_pid_, &meta).ok()) {
    ExclusiveLatchGuard latch(&meta->latch);
    StampDlsn(PageOf(meta), meta, recs[1].dlsn);
    latch.Release();
    pool_->Unpin(meta);
  }
  pool_->Unpin(root);
  return Status::OK();
}

Status BTree::SplitForInsert(TableId table, Slice key, size_t needed) {
  std::lock_guard<std::mutex> smo(smo_mu_);
  std::vector<PathEntry> path;
  Frame* leaf = nullptr;
  Status s = DescendExclusive(table, key, &path, &leaf);
  if (!s.ok()) return s;

  SlottedPage leaf_page = PageOf(leaf);
  if (leaf_page.HasSpaceFor(static_cast<uint32_t>(needed))) {
    // A concurrent split (before we took the SMO mutex) made room.
    leaf->latch.UnlockExclusive();
    pool_->Unpin(leaf);
    ReleasePath(&path);
    return Status::OK();
  }
  if (leaf_page.slot_count() < 2) {
    leaf->latch.UnlockExclusive();
    pool_->Unpin(leaf);
    ReleasePath(&path);
    return Status::InvalidArgument("payload too large to ever fit");
  }

  ++stats_.splits;

  std::vector<DcLogRecord> recs;
  std::map<TcId, Lsn> floor;
  std::vector<Frame*> extra_frames;  // created/pinned beyond path+leaf

  // ---- Split the leaf -------------------------------------------------
  // Split point: first slot where the cumulative payload passes half.
  const uint16_t count = leaf_page.slot_count();
  uint32_t total = 0;
  for (uint16_t i = 0; i < count; ++i) {
    total += static_cast<uint32_t>(leaf_page.PayloadAt(i).size());
  }
  uint32_t acc = 0;
  uint16_t split_slot = 1;
  for (uint16_t i = 0; i < count - 1; ++i) {
    acc += static_cast<uint32_t>(leaf_page.PayloadAt(i).size());
    if (acc >= total / 2) {
      split_slot = i + 1;
      break;
    }
  }
  Slice split_key_slice;
  LeafRecord::DecodeKey(leaf_page.PayloadAt(split_slot), &split_key_slice);
  const std::string split_key = split_key_slice.ToString();

  const PageId new_pid = store_->Allocate();
  Frame* new_leaf = pool_->Create(new_pid);
  extra_frames.push_back(new_leaf);
  SlottedPage new_page = PageOf(new_leaf);
  new_page.Init(new_pid, PageType::kLeaf, 0, table);
  for (uint16_t i = split_slot; i < count; ++i) {
    Status ins = new_page.InsertAt(i - split_slot, leaf_page.PayloadAt(i));
    assert(ins.ok());
    (void)ins;
  }
  while (leaf_page.slot_count() > split_slot) {
    leaf_page.RemoveAt(leaf_page.slot_count() - 1);
  }
  new_page.set_next_page(leaf_page.next_page());
  leaf_page.set_next_page(new_pid);
  // §5.2.2(1): the new page's image captures the abLSN at split time.
  new_leaf->ablsn = leaf->ablsn;
  new_leaf->dirty = true;
  leaf->dirty = true;

  DcLogRecord split_old;
  split_old.type = DcLogRecordType::kSplitOld;
  split_old.pid = leaf->pid;
  split_old.split_key = split_key;
  split_old.aux_pid = new_pid;
  recs.push_back(std::move(split_old));
  const size_t split_old_idx = recs.size() - 1;

  // ---- Propagate the separator up the tree ----------------------------
  // Pages whose physical images must be logged (after all mutation).
  std::vector<Frame*> imaged = {new_leaf};

  std::string sep = split_key;
  PageId sep_child = new_pid;
  int level_idx = static_cast<int>(path.size()) - 1;
  bool root_changed = false;
  PageId new_root_pid = kInvalidPageId;

  for (;;) {
    if (level_idx < 0) {
      // Root split: the old root (leaf or internal) gains a new parent.
      const PageId old_root_pid =
          path.empty() ? leaf->pid : path.front().frame->pid;
      const uint16_t old_root_level =
          path.empty() ? 0 : PageOf(path.front().frame).level();
      new_root_pid = store_->Allocate();
      Frame* new_root = pool_->Create(new_root_pid);
      extra_frames.push_back(new_root);
      SlottedPage root_page = PageOf(new_root);
      root_page.Init(new_root_pid, PageType::kInternal,
                     static_cast<uint16_t>(old_root_level + 1), table);
      InternalEntry left_entry{"", old_root_pid};
      InternalEntry right_entry{sep, sep_child};
      Status i1 = root_page.InsertAt(0, left_entry.Encode());
      Status i2 = root_page.InsertAt(1, right_entry.Encode());
      assert(i1.ok() && i2.ok());
      (void)i1;
      (void)i2;
      new_root->dirty = true;
      imaged.push_back(new_root);
      root_changed = true;
      ++stats_.root_splits;
      break;
    }
    Frame* parent = path[level_idx].frame;
    SlottedPage parent_page = PageOf(parent);
    InternalEntry entry{sep, sep_child};
    const uint16_t at = path[level_idx].child_idx + 1;
    Status ins = parent_page.InsertAt(at, entry.Encode());
    if (ins.ok()) {
      parent->dirty = true;
      imaged.push_back(parent);
      break;
    }
    // Parent full: split it, then place the entry in the proper half.
    const uint16_t pcount = parent_page.slot_count();
    const uint16_t mid = pcount / 2;
    InternalEntry mid_entry;
    InternalEntry::Decode(parent_page.PayloadAt(mid), &mid_entry);
    const std::string promoted = mid_entry.separator;

    const PageId new_int_pid = store_->Allocate();
    Frame* new_int = pool_->Create(new_int_pid);
    extra_frames.push_back(new_int);
    SlottedPage new_int_page = PageOf(new_int);
    new_int_page.Init(new_int_pid, PageType::kInternal, parent_page.level(),
                      table);
    // Entry `mid` becomes the new page's leftmost entry (empty separator).
    InternalEntry first{"", mid_entry.child};
    Status i0 = new_int_page.InsertAt(0, first.Encode());
    assert(i0.ok());
    (void)i0;
    for (uint16_t i = mid + 1; i < pcount; ++i) {
      Status im = new_int_page.InsertAt(new_int_page.slot_count(),
                                        parent_page.PayloadAt(i));
      assert(im.ok());
      (void)im;
    }
    while (parent_page.slot_count() > mid) {
      parent_page.RemoveAt(parent_page.slot_count() - 1);
    }
    // Place the pending entry.
    SlottedPage* target =
        Slice(sep).compare(promoted) < 0 ? &parent_page : &new_int_page;
    const uint16_t tidx = InternalChildIdx(*target, sep);
    Status ip = target->InsertAt(tidx + 1, entry.Encode());
    assert(ip.ok());
    (void)ip;
    parent->dirty = true;
    new_int->dirty = true;
    imaged.push_back(parent);
    imaged.push_back(new_int);

    sep = promoted;
    sep_child = new_int_pid;
    --level_idx;
  }

  // ---- Log the batch ---------------------------------------------------
  // Dedup imaged frames, preserving order of final capture.
  std::vector<Frame*> unique_imaged;
  for (Frame* f : imaged) {
    bool seen = false;
    for (Frame* u : unique_imaged) {
      if (u == f) {
        seen = true;
        break;
      }
    }
    if (!seen) unique_imaged.push_back(f);
  }
  std::vector<size_t> image_rec_idx;
  for (Frame* f : unique_imaged) {
    recs.push_back(MakeImageRecord(f));
    image_rec_idx.push_back(recs.size() - 1);
    FoldFloor(f->ablsn, &floor);
  }
  Status meta_status = Status::OK();
  if (root_changed) {
    meta_status = SetRootInMeta(table, new_root_pid, &recs, &floor);
    assert(meta_status.ok());
  }
  dc_log_->AppendBatch(&recs, floor);

  // Stamp dlsns while still latched.
  StampDlsn(leaf_page, leaf, recs[split_old_idx].dlsn);
  for (size_t i = 0; i < unique_imaged.size(); ++i) {
    StampDlsn(PageOf(unique_imaged[i]), unique_imaged[i],
              recs[image_rec_idx[i]].dlsn);
  }
  if (root_changed) {
    Frame* meta = nullptr;
    if (pool_->Fetch(meta_pid_, &meta).ok()) {
      ExclusiveLatchGuard latch(&meta->latch);
      StampDlsn(PageOf(meta), meta, recs.back().dlsn);
      latch.Release();
      pool_->Unpin(meta);
    }
  }

  // ---- Release ----------------------------------------------------------
  leaf->latch.UnlockExclusive();
  pool_->Unpin(leaf);
  ReleasePath(&path);
  for (Frame* f : extra_frames) pool_->Unpin(f);
  return meta_status;
}

Status BTree::TryConsolidate(TableId table, Slice key) {
  std::lock_guard<std::mutex> smo(smo_mu_);
  std::vector<PathEntry> path;
  Frame* leaf = nullptr;
  Status s = DescendExclusive(table, key, &path, &leaf);
  if (!s.ok()) return s;

  auto release_all = [&]() {
    leaf->latch.UnlockExclusive();
    pool_->Unpin(leaf);
    ReleasePath(&path);
  };

  if (path.empty()) {
    // Leaf is the root: nothing to merge with.
    release_all();
    return Status::OK();
  }
  SlottedPage leaf_page = PageOf(leaf);
  if (leaf_page.FillFraction() >= options_.consolidate_threshold) {
    release_all();
    return Status::OK();
  }

  Frame* parent = path.back().frame;
  SlottedPage parent_page = PageOf(parent);
  const uint16_t idx = path.back().child_idx;

  // Height shrink: the root has a single child — promote the child.
  if (parent_page.slot_count() == 1 && path.size() == 1) {
    std::vector<DcLogRecord> recs;
    std::map<TcId, Lsn> floor;
    Status ms = SetRootInMeta(table, leaf->pid, &recs, &floor);
    if (!ms.ok()) {
      release_all();
      return ms;
    }
    DcLogRecord free_rec;
    free_rec.type = DcLogRecordType::kPageFree;
    free_rec.pid = parent->pid;
    recs.push_back(std::move(free_rec));
    dc_log_->AppendBatch(&recs, floor, {parent->pid});
    parent->retired = true;
    parent->dirty = false;
    ++stats_.height_shrinks;
    Frame* meta = nullptr;
    if (pool_->Fetch(meta_pid_, &meta).ok()) {
      ExclusiveLatchGuard latch(&meta->latch);
      StampDlsn(PageOf(meta), meta, recs[0].dlsn);
      latch.Release();
      pool_->Unpin(meta);
    }
    release_all();
    pool_->ForceDcLog();
    return Status::OK();
  }

  // Pick merge partners (left absorbs right).
  Frame* left = nullptr;
  Frame* right = nullptr;
  uint16_t right_idx = 0;  // slot of `right` in parent
  Frame* fetched_sibling = nullptr;
  bool sibling_latched = false;

  if (idx + 1 < parent_page.slot_count()) {
    InternalEntry e;
    InternalEntry::Decode(parent_page.PayloadAt(idx + 1), &e);
    if (pool_->Fetch(e.child, &fetched_sibling).ok()) {
      fetched_sibling->latch.LockExclusive();  // left-to-right order: safe
      sibling_latched = true;
      left = leaf;
      right = fetched_sibling;
      right_idx = idx + 1;
    }
  } else if (idx > 0) {
    InternalEntry e;
    InternalEntry::Decode(parent_page.PayloadAt(idx - 1), &e);
    if (pool_->Fetch(e.child, &fetched_sibling).ok()) {
      // Latching right-to-left can deadlock with forward scans; only try.
      if (fetched_sibling->latch.TryLockExclusive()) {
        sibling_latched = true;
        left = fetched_sibling;
        right = leaf;
        right_idx = idx;
      }
    }
  }
  if (left == nullptr || right == nullptr) {
    if (fetched_sibling != nullptr) {
      if (sibling_latched) fetched_sibling->latch.UnlockExclusive();
      pool_->Unpin(fetched_sibling);
    }
    release_all();
    return Status::OK();
  }

  SlottedPage left_page = PageOf(left);
  SlottedPage right_page = PageOf(right);

  // Does the merge fit?
  uint32_t right_bytes = 0;
  for (uint16_t i = 0; i < right_page.slot_count(); ++i) {
    right_bytes += static_cast<uint32_t>(right_page.PayloadAt(i).size()) +
                   kSlotEntrySize;
  }
  if (right_bytes > left_page.TotalFree()) {
    fetched_sibling->latch.UnlockExclusive();
    pool_->Unpin(fetched_sibling);
    release_all();
    return Status::OK();
  }

  ++stats_.consolidates;

  // Move records; all right keys sort after all left keys.
  for (uint16_t i = 0; i < right_page.slot_count(); ++i) {
    Status ins =
        left_page.InsertAt(left_page.slot_count(), right_page.PayloadAt(i));
    assert(ins.ok());
    (void)ins;
  }
  left_page.set_next_page(right_page.next_page());
  // §5.2.2 "Page Deletes": the survivor's abLSN is the max (union).
  left->ablsn.MergeFrom(right->ablsn);
  left->dirty = true;
  parent_page.RemoveAt(right_idx);
  parent->dirty = true;

  right->retired = true;
  right->dirty = false;
  const PageId right_pid = right->pid;

  std::vector<DcLogRecord> recs;
  std::map<TcId, Lsn> floor;
  recs.push_back(MakeImageRecord(left));
  FoldFloor(left->ablsn, &floor);
  recs.push_back(MakeImageRecord(parent));
  FoldFloor(parent->ablsn, &floor);
  DcLogRecord free_rec;
  free_rec.type = DcLogRecordType::kPageFree;
  free_rec.pid = right_pid;
  recs.push_back(std::move(free_rec));
  dc_log_->AppendBatch(&recs, floor, {right_pid});

  StampDlsn(left_page, left, recs[0].dlsn);
  StampDlsn(parent_page, parent, recs[1].dlsn);

  fetched_sibling->latch.UnlockExclusive();
  pool_->Unpin(fetched_sibling);
  release_all();
  // Try to make the free effective promptly.
  pool_->ForceDcLog();
  return Status::OK();
}

Status BTree::ReplayStableSmoBatches() {
  const std::vector<DcLogBatch> batches = dc_log_->ReadStableBatches();
  for (const DcLogBatch& batch : batches) {
    for (const DcLogRecord& rec : batch.records) {
      switch (rec.type) {
        case DcLogRecordType::kPageImage: {
          Frame* frame = nullptr;
          Status s = pool_->Fetch(rec.pid, &frame);
          if (s.ok()) {
            ExclusiveLatchGuard latch(&frame->latch);
            if (PageOf(frame).dlsn() < rec.dlsn) {
              memcpy(frame->data.data(), rec.body.data(),
                     frame->data.size());
              frame->ablsn = rec.ablsn;
              StampDlsn(PageOf(frame), frame, rec.dlsn);
              frame->dirty = true;
            }
            latch.Release();
            pool_->Unpin(frame);
          } else if (s.IsNotFound()) {
            Frame* created = pool_->Create(rec.pid);
            ExclusiveLatchGuard latch(&created->latch);
            memcpy(created->data.data(), rec.body.data(),
                   created->data.size());
            created->ablsn = rec.ablsn;
            StampDlsn(PageOf(created), created, rec.dlsn);
            created->dirty = true;
            latch.Release();
            pool_->Unpin(created);
          } else {
            return s;
          }
          break;
        }
        case DcLogRecordType::kSplitOld: {
          Frame* frame = nullptr;
          Status s = pool_->Fetch(rec.pid, &frame);
          if (s.IsNotFound()) break;  // re-created later in this replay
          if (!s.ok()) return s;
          ExclusiveLatchGuard latch(&frame->latch);
          SlottedPage page = PageOf(frame);
          if (page.dlsn() < rec.dlsn) {
            // Remove keys >= split_key; they belong to the new sibling.
            while (page.slot_count() > 0) {
              Slice last_key;
              LeafRecord::DecodeKey(page.PayloadAt(page.slot_count() - 1),
                                    &last_key);
              if (last_key.compare(rec.split_key) < 0) break;
              page.RemoveAt(page.slot_count() - 1);
            }
            page.set_next_page(rec.aux_pid);
            StampDlsn(page, frame, rec.dlsn);
            frame->dirty = true;
          }
          latch.Release();
          pool_->Unpin(frame);
          break;
        }
        case DcLogRecordType::kPageFree: {
          Frame* frame = nullptr;
          Status s = pool_->Fetch(rec.pid, &frame);
          if (s.ok()) {
            frame->latch.LockExclusive();
            const bool stale = PageOf(frame).dlsn() < rec.dlsn;
            if (stale) {
              frame->retired = true;
              frame->dirty = false;
            }
            frame->latch.UnlockExclusive();
            pool_->Unpin(frame);
            if (stale) {
              pool_->Drop(rec.pid);
              store_->Free(rec.pid);
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return RebuildRootCache();
}

Status BTree::CheckInvariants(TableId table) const {
  StatusOr<PageId> root = GetRoot(table);
  if (!root.ok()) return root.status();

  // Iterative DFS carrying (pid, lower_bound, upper_bound).
  struct Item {
    PageId pid;
    std::string lo;  // inclusive; "" = -inf
    std::string hi;  // exclusive; "" = +inf
  };
  std::vector<Item> stack{{*root, "", ""}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    Frame* frame = nullptr;
    Status s = pool_->Fetch(item.pid, &frame);
    if (!s.ok()) return Status::Corruption("unreachable page in tree");
    SharedLatchGuard latch(&frame->latch);
    SlottedPage page = const_cast<Frame*>(frame)->Page(
        pool_->page_size(), pool_->trailer_capacity());
    Status v = page.Validate();
    if (!v.ok()) {
      latch.Release();
      pool_->Unpin(frame);
      return v;
    }
    std::string prev;
    bool have_prev = false;
    for (uint16_t i = 0; i < page.slot_count(); ++i) {
      std::string k;
      if (page.type() == PageType::kLeaf) {
        Slice key;
        LeafRecord::DecodeKey(page.PayloadAt(i), &key);
        k = key.ToString();
      } else {
        Slice key;
        InternalEntry::DecodeKey(page.PayloadAt(i), &key);
        k = key.ToString();
      }
      if (have_prev && k <= prev && !(i == 0)) {
        latch.Release();
        pool_->Unpin(frame);
        return Status::Corruption("keys out of order in page");
      }
      // Range check (internal entry 0 has the empty separator and is
      // exempt from the lower-bound check).
      if (!(page.type() == PageType::kInternal && i == 0)) {
        if (!item.lo.empty() && k < item.lo) {
          latch.Release();
          pool_->Unpin(frame);
          return Status::Corruption("key below subtree lower bound");
        }
      }
      if (!item.hi.empty() && k >= item.hi && !k.empty()) {
        latch.Release();
        pool_->Unpin(frame);
        return Status::Corruption("key above subtree upper bound");
      }
      prev = k;
      have_prev = true;
    }
    if (page.type() == PageType::kInternal) {
      if (page.slot_count() == 0) {
        latch.Release();
        pool_->Unpin(frame);
        return Status::Corruption("empty internal node");
      }
      for (uint16_t i = 0; i < page.slot_count(); ++i) {
        InternalEntry e;
        InternalEntry::Decode(page.PayloadAt(i), &e);
        std::string lo = i == 0 ? item.lo : e.separator;
        std::string hi = item.hi;
        if (i + 1 < page.slot_count()) {
          InternalEntry next;
          InternalEntry::Decode(page.PayloadAt(i + 1), &next);
          hi = next.separator;
        }
        stack.push_back({e.child, std::move(lo), std::move(hi)});
      }
    }
    latch.Release();
    pool_->Unpin(frame);
  }
  return Status::OK();
}

}  // namespace untx
