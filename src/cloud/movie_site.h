// MovieSite: the online movie review scenario of §6.3 / Figure 2.
//
// Tables (and the paper's physical schema):
//   Movies    (primary key MId)       — partitioned by MId over DC0/DC1
//   Reviews   (primary key MId,UId)   — partitioned by MId over DC0/DC1,
//                                       clustered with the movie
//   Users     (primary key UId)       — partitioned by UId on DC2
//   MyReviews (primary key UId,MId)   — redundant copy on DC2, clustered
//                                       with the user (an "index in the
//                                       physical schema")
//
// TCs:
//   TC1: users with UId mod 2 == 0 (full write rights to their rows)
//   TC2: users with UId mod 2 == 1
//   TC3: read-only — retrieves all reviews of a movie via versioned
//        read-committed (or dirty) reads, never blocking and never
//        requiring two-phase commit (§6.2.2)
//
// Workloads:
//   W1: obtain all reviews for a movie          (TC3, one DC)
//   W2: add a movie review by a user            (owner TC; writes two DCs
//       in ONE local transaction — no distributed commit)
//   W3: update profile information for a user   (owner TC, one DC)
//   W4: obtain all reviews written by a user    (owner TC, one DC)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "kernel/cluster.h"

namespace untx {
namespace cloud {

inline constexpr TableId kMoviesTable = 1;
inline constexpr TableId kReviewsTable = 2;
inline constexpr TableId kUsersTable = 3;
inline constexpr TableId kMyReviewsTable = 4;

std::string MovieKey(uint32_t mid);
std::string ReviewKey(uint32_t mid, uint32_t uid);
std::string UserKey(uint32_t uid);
std::string MyReviewKey(uint32_t uid, uint32_t mid);

struct MovieSiteConfig {
  uint32_t num_users = 100;
  uint32_t num_movies = 50;
  /// Versioned writes => TC3 can use read committed; otherwise TC3 falls
  /// back to dirty reads (§6.2.1).
  bool versioning = true;
  /// Direct = multi-core wiring; channel = the paper's cloud deployment
  /// (per-(TC, DC) message channels with batch coalescing).
  TransportKind transport = TransportKind::kDirect;
  ChannelTransportOptions channel;
};

/// Builds the Figure 2 topology on Cluster: TC1/TC2 updaters + 3 DCs.
/// TC3 is realized as lock-free shared reads issued through TC1's client
/// stack (read flavors need no locks and no transaction, §6.2).
class MovieSite {
 public:
  static StatusOr<std::unique_ptr<MovieSite>> Open(MovieSiteConfig config);

  /// Creates tables on their DCs and loads users + movies.
  Status Setup();

  /// Owner TC for a user.
  TransactionComponent* OwnerTc(uint32_t uid) {
    return cluster_->tc(static_cast<int>(uid % 2));
  }

  // -- The four workloads -------------------------------------------------------
  /// W1: all reviews for a movie (read committed if versioning, else
  /// dirty). Runs lock-free, cannot block or be blocked.
  Status W1GetMovieReviews(uint32_t mid,
                           std::vector<std::pair<std::string, std::string>>*
                               reviews);

  /// W2: one transaction at the user's owner TC inserting into Reviews
  /// (movie DC) and MyReviews (user DC). No two-phase commit.
  Status W2AddReview(uint32_t uid, uint32_t mid, const std::string& text);

  /// W3: profile update at the owner TC.
  Status W3UpdateProfile(uint32_t uid, const std::string& profile);

  /// W4: all reviews by a user from the clustered MyReviews copy.
  Status W4GetUserReviews(uint32_t uid,
                          std::vector<std::pair<std::string, std::string>>*
                              reviews);

  /// W5: the movie-listing page — titles for a set of movies. The hot
  /// read path of a browse page: every title is submitted asynchronously
  /// and the reads coalesce into one batched message per DC partition
  /// (two round trips for the whole page instead of one per movie).
  Status W5MovieListing(const std::vector<uint32_t>& mids,
                        std::vector<std::string>* titles);

  /// Cross-checks Reviews against MyReviews (the redundancy invariant).
  Status VerifyConsistency();

  Cluster* cluster() { return cluster_.get(); }
  const MovieSiteConfig& config() const { return config_; }

 private:
  explicit MovieSite(MovieSiteConfig config) : config_(config) {}

  MovieSiteConfig config_;
  std::unique_ptr<Cluster> cluster_;
};

}  // namespace cloud
}  // namespace untx
