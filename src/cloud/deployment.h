// cloud::Deployment — multi-TC / multi-DC topologies (Figure 1 right
// side, Figure 2, §6).
//
// Several TCs share a set of DCs. Each TC gets its own DcClient per DC
// (reply routing is per-TC). Data is logically partitioned so that no two
// TCs ever issue conflicting writes (§6: "the invariant that no
// conflicting operations are active simultaneously can be enforced
// separately by each TC"); cross-TC reads use dirty / read-committed
// flavors, which never conflict (§6.2).
//
// The deployment also coordinates the §6.1.2 escalation: when a TC
// restart forces a DC to drop a shared page, the other TCs named in the
// reset reply resend from their RSSPs.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "dc/data_component.h"
#include "storage/stable_store.h"
#include "tc/dc_client.h"
#include "tc/transaction_component.h"

namespace untx {
namespace cloud {

struct TcSpec {
  TcOptions options;
  Router router;  ///< defaults to the deployment's default router
};

struct DeploymentOptions {
  int num_dcs = 1;
  StableStoreOptions store;
  DataComponentOptions dc;
  std::vector<TcSpec> tcs;
  /// Fallback router when a TcSpec has none: table_id % num_dcs.
  Router default_router;
};

class Deployment {
 public:
  static StatusOr<std::unique_ptr<Deployment>> Open(
      DeploymentOptions options);
  ~Deployment();

  int num_tcs() const { return static_cast<int>(tcs_.size()); }
  int num_dcs() const { return static_cast<int>(dcs_.size()); }
  TransactionComponent* tc(int i) { return tcs_[i].get(); }
  DataComponent* dc(int i) { return dcs_[i].get(); }
  StableStore* store(int i) { return stores_[i].get(); }

  /// Crashes TC i, restarts it, and runs any §6.1.2 escalation: other
  /// TCs the reset displaced resend from their RSSPs.
  Status CrashAndRestartTc(int i);

  /// DC crash + recovery: every TC redo-resends to it.
  Status CrashAndRecoverDc(int i);

 private:
  Deployment() = default;

  DeploymentOptions options_;
  std::vector<std::unique_ptr<StableStore>> stores_;
  std::vector<std::unique_ptr<DataComponent>> dcs_;
  // clients_[tc][dc]
  std::vector<std::vector<std::unique_ptr<DirectDcClient>>> clients_;
  std::vector<std::unique_ptr<TransactionComponent>> tcs_;
};

}  // namespace cloud
}  // namespace untx
