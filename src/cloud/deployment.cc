#include "cloud/deployment.h"

namespace untx {
namespace cloud {

StatusOr<std::unique_ptr<Deployment>> Deployment::Open(
    DeploymentOptions options) {
  if (options.tcs.empty() || options.num_dcs < 1) {
    return Status::InvalidArgument("need >=1 TC and >=1 DC");
  }
  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->options_ = options;

  for (int d = 0; d < options.num_dcs; ++d) {
    deployment->stores_.push_back(
        std::make_unique<StableStore>(options.store));
    deployment->dcs_.push_back(std::make_unique<DataComponent>(
        deployment->stores_.back().get(), options.dc));
    Status s = deployment->dcs_.back()->Initialize();
    if (!s.ok()) return s;
  }

  Router fallback = options.default_router;
  if (!fallback) {
    const int num_dcs = options.num_dcs;
    fallback = [num_dcs](TableId table, const std::string&) {
      return static_cast<DcId>(table % num_dcs);
    };
  }

  for (size_t t = 0; t < options.tcs.size(); ++t) {
    deployment->clients_.emplace_back();
    std::vector<DcBinding> bindings;
    for (int d = 0; d < options.num_dcs; ++d) {
      deployment->clients_.back().push_back(
          std::make_unique<DirectDcClient>(deployment->dcs_[d].get()));
      bindings.push_back(DcBinding{static_cast<DcId>(d),
                                   deployment->clients_.back()[d].get()});
    }
    Router router = options.tcs[t].router ? options.tcs[t].router : fallback;
    deployment->tcs_.push_back(std::make_unique<TransactionComponent>(
        options.tcs[t].options, bindings, router));
    Status s = deployment->tcs_.back()->Start();
    if (!s.ok()) return s;
  }
  return deployment;
}

Deployment::~Deployment() {
  for (auto& tc : tcs_) tc->Stop();
}

Status Deployment::CrashAndRestartTc(int i) {
  tcs_[i]->Crash();
  std::vector<TcId> escalate;
  Status s = tcs_[i]->Restart(&escalate);
  if (!s.ok()) return s;
  // §6.1.2 escalation: displaced TCs repopulate from their own logs.
  for (TcId victim : escalate) {
    for (auto& tc : tcs_) {
      if (tc->id() == victim) {
        Status rs = tc->ResendFromRssp();
        if (!rs.ok()) return rs;
      }
    }
  }
  return Status::OK();
}

Status Deployment::CrashAndRecoverDc(int i) {
  dcs_[i]->Crash();
  dcs_[i]->Restore();
  Status s = dcs_[i]->Recover();
  if (!s.ok()) return s;
  for (auto& tc : tcs_) {
    Status rs = tc->OnDcRestart(static_cast<DcId>(i));
    if (!rs.ok()) return rs;
  }
  return Status::OK();
}

}  // namespace cloud
}  // namespace untx
