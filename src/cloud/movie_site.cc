#include "cloud/movie_site.h"

#include <cstdio>
#include <map>

namespace untx {
namespace cloud {

std::string MovieKey(uint32_t mid) {
  char buf[16];
  snprintf(buf, sizeof(buf), "m%08u", mid);
  return buf;
}

std::string ReviewKey(uint32_t mid, uint32_t uid) {
  char buf[32];
  snprintf(buf, sizeof(buf), "m%08u:u%08u", mid, uid);
  return buf;
}

std::string UserKey(uint32_t uid) {
  char buf[16];
  snprintf(buf, sizeof(buf), "u%08u", uid);
  return buf;
}

std::string MyReviewKey(uint32_t uid, uint32_t mid) {
  char buf[32];
  snprintf(buf, sizeof(buf), "u%08u:m%08u", uid, mid);
  return buf;
}

namespace {

// Figure 2 routing: Movies/Reviews partitioned by MId across DC0/DC1;
// Users/MyReviews on DC2. The MId is recoverable from the key prefix.
DcId MovieSiteRouter(TableId table, const std::string& key) {
  switch (table) {
    case kMoviesTable:
    case kReviewsTable: {
      // Keys start with "m%08u".
      uint32_t mid = 0;
      if (key.size() >= 9) {
        mid = static_cast<uint32_t>(strtoul(key.substr(1, 8).c_str(),
                                            nullptr, 10));
      }
      return static_cast<DcId>(mid % 2);  // DC0 or DC1
    }
    case kUsersTable:
    case kMyReviewsTable:
    default:
      return 2;  // DC2
  }
}

}  // namespace

StatusOr<std::unique_ptr<MovieSite>> MovieSite::Open(MovieSiteConfig config) {
  auto site = std::unique_ptr<MovieSite>(new MovieSite(config));
  ClusterOptions options;
  options.num_dcs = 3;
  options.default_router = MovieSiteRouter;
  options.transport = config.transport;
  options.channel = config.channel;
  for (int t = 0; t < 2; ++t) {
    TcSpec spec;
    spec.options.tc_id = static_cast<TcId>(t + 1);
    spec.options.versioning = config.versioning;
    spec.options.control_interval_ms = 5;
    spec.options.resend_interval_ms = 50;
    options.tcs.push_back(spec);
  }
  auto cluster = Cluster::Open(std::move(options));
  if (!cluster.ok()) return cluster.status();
  site->cluster_ = std::move(cluster).ValueOrDie();
  return site;
}

Status MovieSite::Setup() {
  TransactionComponent* tc1 = cluster_->tc(0);
  // Partitioned tables exist on every DC that holds a slice: create with
  // a routing hint per partition.
  for (uint32_t part = 0; part < 2; ++part) {
    Status s = tc1->CreateTable(kMoviesTable, MovieKey(part));
    if (!s.ok()) return s;
    s = tc1->CreateTable(kReviewsTable, MovieKey(part));
    if (!s.ok()) return s;
  }
  Status s = tc1->CreateTable(kUsersTable);
  if (!s.ok()) return s;
  s = tc1->CreateTable(kMyReviewsTable);
  if (!s.ok()) return s;

  // Load movies (via TC1; any TC may load the shared catalog data).
  for (uint32_t mid = 0; mid < config_.num_movies; ++mid) {
    StatusOr<TxnId> txn = tc1->Begin();
    if (!txn.ok()) return txn.status();
    s = tc1->Insert(*txn, kMoviesTable, MovieKey(mid),
                    "title-" + std::to_string(mid));
    if (!s.ok()) {
      tc1->Abort(*txn);
      return s;
    }
    s = tc1->Commit(*txn);
    if (!s.ok()) return s;
  }
  // Load users at their owner TCs (the §6 partitioning discipline).
  for (uint32_t uid = 0; uid < config_.num_users; ++uid) {
    TransactionComponent* owner = OwnerTc(uid);
    StatusOr<TxnId> txn = owner->Begin();
    if (!txn.ok()) return txn.status();
    s = owner->Insert(*txn, kUsersTable, UserKey(uid),
                      "profile-" + std::to_string(uid));
    if (!s.ok()) {
      owner->Abort(*txn);
      return s;
    }
    s = owner->Commit(*txn);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status MovieSite::W1GetMovieReviews(
    uint32_t mid,
    std::vector<std::pair<std::string, std::string>>* reviews) {
  // TC3's read path: lock-free shared reads at read-committed (versioned
  // deployments) or dirty (plain) isolation — §6.2. We issue them through
  // TC1's client stack; the flavor, not the TC identity, is what matters
  // to the DC.
  const ReadFlavor flavor = config_.versioning
                                ? ReadFlavor::kReadCommitted
                                : ReadFlavor::kDirty;
  const std::string from = ReviewKey(mid, 0);
  const std::string to = ReviewKey(mid + 1, 0);
  return cluster_->tc(0)->ScanShared(kReviewsTable, from, to, 0, flavor,
                                        reviews);
}

Status MovieSite::W2AddReview(uint32_t uid, uint32_t mid,
                              const std::string& text) {
  // One local transaction at the owner TC touching two DCs (the Reviews
  // partition by movie, MyReviews by user): "the transaction is
  // completely local to TC1" — the commit is a single TC log force, no
  // distributed protocol.
  TransactionComponent* owner = OwnerTc(uid);
  StatusOr<TxnId> txn = owner->Begin();
  if (!txn.ok()) return txn.status();
  // Pipelined: both upserts (different DCs) are submitted before either
  // is awaited, so their round trips overlap instead of serializing —
  // Figure 2's write workload rides the batched wire protocol too.
  OpHandle reviews =
      owner->SubmitUpsert(*txn, kReviewsTable, ReviewKey(mid, uid), text);
  OpHandle mine =
      owner->SubmitUpsert(*txn, kMyReviewsTable, MyReviewKey(uid, mid), text);
  Status s = owner->Await(&reviews);
  Status s2 = owner->Await(&mine);
  if (s.ok()) s = s2;
  if (!s.ok()) {
    owner->Abort(*txn);
    return s;
  }
  return owner->Commit(*txn);
}

Status MovieSite::W3UpdateProfile(uint32_t uid, const std::string& profile) {
  TransactionComponent* owner = OwnerTc(uid);
  StatusOr<TxnId> txn = owner->Begin();
  if (!txn.ok()) return txn.status();
  Status s = owner->Update(*txn, kUsersTable, UserKey(uid), profile);
  if (!s.ok()) {
    owner->Abort(*txn);
    return s;
  }
  return owner->Commit(*txn);
}

Status MovieSite::W4GetUserReviews(
    uint32_t uid,
    std::vector<std::pair<std::string, std::string>>* reviews) {
  // A single clustered scan of the user's MyReviews partition, at the
  // owner TC with full transactional isolation.
  TransactionComponent* owner = OwnerTc(uid);
  StatusOr<TxnId> txn = owner->Begin();
  if (!txn.ok()) return txn.status();
  const std::string from = MyReviewKey(uid, 0);
  const std::string to = MyReviewKey(uid + 1, 0);
  Status s = owner->Scan(*txn, kMyReviewsTable, from, to, 0, reviews);
  if (!s.ok()) {
    owner->Abort(*txn);
    return s;
  }
  return owner->Commit(*txn);
}

Status MovieSite::W5MovieListing(const std::vector<uint32_t>& mids,
                                 std::vector<std::string>* titles) {
  titles->assign(mids.size(), "");
  TransactionComponent* tc = cluster_->tc(0);
  StatusOr<TxnId> txn = tc->Begin();
  if (!txn.ok()) return txn.status();
  // Pipelined multi-get: submit every title read up front, then await.
  std::vector<OpHandle> handles;
  handles.reserve(mids.size());
  for (uint32_t mid : mids) {
    handles.push_back(tc->SubmitRead(*txn, kMoviesTable, MovieKey(mid)));
  }
  Status first;
  for (size_t i = 0; i < handles.size(); ++i) {
    Status s = tc->Await(&handles[i], &(*titles)[i]);
    if (first.ok() && !s.ok()) first = s;
  }
  if (!first.ok()) {
    tc->Abort(*txn);
    return first;
  }
  return tc->Commit(*txn);
}

Status MovieSite::VerifyConsistency() {
  // Committed Reviews content must equal committed MyReviews content.
  // Reviews is hash-partitioned by MId across DC0/DC1, so a whole-table
  // range scan cannot see both partitions: scatter-gather per movie,
  // exactly how W1 accesses the table (the clustering the paper wants).
  std::map<std::string, std::string> by_pair;
  const ReadFlavor flavor = config_.versioning
                                ? ReadFlavor::kReadCommitted
                                : ReadFlavor::kDirty;
  for (uint32_t mid = 0; mid < config_.num_movies; ++mid) {
    std::vector<std::pair<std::string, std::string>> reviews;
    Status s = cluster_->tc(0)->ScanShared(
        kReviewsTable, ReviewKey(mid, 0), ReviewKey(mid + 1, 0), 0, flavor,
        &reviews);
    if (!s.ok()) return s;
    for (const auto& [key, value] : reviews) {
      // key = m%08u:u%08u
      if (key.size() < 19) return Status::Corruption("bad review key");
      const std::string m = key.substr(1, 8);
      const std::string uid = key.substr(11, 8);
      by_pair[uid + ":" + m] = value;
    }
  }
  std::vector<std::pair<std::string, std::string>> mine;
  Status s = cluster_->tc(0)->ScanShared(kMyReviewsTable, "", "", 0,
                                            flavor, &mine);
  if (!s.ok()) return s;
  if (mine.size() != by_pair.size()) {
    return Status::Corruption("Reviews/MyReviews cardinality mismatch: " +
                              std::to_string(by_pair.size()) + " vs " +
                              std::to_string(mine.size()));
  }
  for (const auto& [key, value] : mine) {
    // key = u%08u:m%08u
    const std::string uid = key.substr(1, 8);
    const std::string mid = key.substr(11, 8);
    auto it = by_pair.find(uid + ":" + mid);
    if (it == by_pair.end()) {
      return Status::Corruption("MyReviews row missing in Reviews");
    }
    if (it->second != value) {
      return Status::Corruption("review text mismatch");
    }
  }
  return Status::OK();
}

}  // namespace cloud
}  // namespace untx
