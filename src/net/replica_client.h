// ReplicaClient: the standby side of redo-log shipping over TCP — the
// real-network analog of kernel/ReplicationLink. A replica untx_dcd
// dials its primary's SocketServer, subscribes from its own redo end + 1
// (kReplicaSubscribe), applies each kReplicaEntries batch through
// DataComponent::ApplyReplicated, and acks its true log end after every
// batch (success or failure — the primary's stop-and-wait shipper rewinds
// to the latest ack). Disconnects self-heal: reconnect with jittered
// exponential backoff and re-subscribe from wherever the replica's log
// actually ends, so a batch lost on the wire is simply re-shipped.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "dc/data_component.h"

namespace untx {

struct ReplicaClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Identity at the primary's ack table; unique per standby.
  uint32_t replica_id = 1;
  /// Reconnect backoff: doubled per failed dial from min to max, with
  /// up to 50% random jitter so restarted standbys don't dial in step.
  int reconnect_backoff_min_ms = 50;
  int reconnect_backoff_max_ms = 1000;
};

/// Owns the dial/subscribe/apply/ack thread binding one replica DC to
/// its primary's socket server.
class ReplicaClient {
 public:
  ReplicaClient(DataComponent* dc, ReplicaClientOptions options);
  ~ReplicaClient();

  /// Starts the subscriber thread (idempotent).
  void Start();
  /// Stops and joins it; safe to call repeatedly. The subscription at
  /// the primary dies with the TCP session (ForgetReplica there).
  void Stop();

  bool connected() const { return connected_.load(); }
  uint64_t batches_applied() const { return batches_applied_.load(); }
  uint64_t reconnects() const { return reconnects_.load(); }

 private:
  void Run();

  DataComponent* dc_;
  ReplicaClientOptions options_;
  std::atomic<bool> stop_{true};
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::thread thread_;
};

}  // namespace untx
