// SocketTransport: the real-network binding of the TC:DC interface —
// one TCP connection per (TC, DC) binding, frames from net/frame.h
// (byte-identical to the simulated channels), nonblocking I/O driven by
// ONE reactor thread shared by every binding of the factory.
//
// Failure model: TCP delivers or the connection dies. A dead connection
// silently drops sends (counted), and the reactor redials with
// exponential backoff — the TC's existing resend-until-ack machinery is
// what re-issues the lost traffic once the dial succeeds, exactly the
// §4.2 contract. Each successful (re)connect bumps the binding's
// connect epoch so a deployment driver (untx_tcd) can treat a bumped
// epoch as "the DC may have restarted" and run the redo-resend
// protocol; redundant redo is idempotent via abLSNs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/cluster.h"
#include "kernel/op_coalescer.h"
#include "net/frame.h"
#include "tc/dc_client.h"

namespace untx {

struct SocketEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct SocketTransportOptions {
  /// How long Start() blocks for the initial dial before handing the
  /// connection to the background redial loop.
  uint32_t connect_timeout_ms = 2000;
  /// Redial backoff: doubles from min to the (configurable) max cap on
  /// consecutive failures, resets on success.
  uint32_t reconnect_backoff_min_ms = 20;
  uint32_t reconnect_backoff_max_ms = 1000;
  /// Random spread added on top of each backoff delay, as a fraction of
  /// it (0.25 → up to +25%). Keeps a fleet of TCs redialing a restarted
  /// DC from arriving in lockstep. 0 disables.
  double reconnect_backoff_jitter = 0.25;
  /// Client-side kOperationBatch coalescing (shared with channels).
  CoalesceOptions coalesce;
};

namespace internal {
class SocketReactor;
class SocketConnection;
}  // namespace internal

/// DcClient over one TCP connection. Reply dispatch runs on the
/// factory's reactor thread (the socket analog of ChannelTransport's
/// DispatchLoop thread).
class SocketDcClient : public DcClient {
 public:
  SocketDcClient(std::shared_ptr<internal::SocketConnection> conn,
                 const CoalesceOptions& coalesce);
  ~SocketDcClient() override;

  void SendOperation(const OperationRequest& req) override;
  void SendControl(const ControlRequest& req) override;
  void SendOperationBatch(const std::vector<OperationRequest>& reqs) override;
  void SendScanStream(const ScanStreamRequest& req) override;
  void SendScanCredit(const ScanCreditRequest& req) override;
  void QueueOperation(const OperationRequest& req) override;
  void FlushOperations() override;

  void Start();
  void Stop();

  void AddWireStats(WireTotals* totals) const;
  /// Frames that found no live connection and were dropped (recovered
  /// by the TC's resend machinery after the redial).
  uint64_t dropped_sends() const { return dropped_sends_.load(); }

 private:
  void SendFrame(uint8_t kind, const std::string& body);
  void OnFrame(uint8_t kind, const std::string& body);

  std::shared_ptr<internal::SocketConnection> conn_;
  OpCoalescer coalescer_;
  std::atomic<uint64_t> request_messages_{0};
  std::atomic<uint64_t> op_messages_{0};
  std::atomic<uint64_t> ops_carried_{0};
  std::atomic<uint64_t> scan_messages_{0};
  std::atomic<uint64_t> scan_chunks_{0};
  std::atomic<uint64_t> scan_rows_carried_{0};
  std::atomic<uint64_t> scan_credit_messages_{0};
  std::atomic<uint64_t> promote_messages_{0};
  std::atomic<uint64_t> promote_ops_carried_{0};
  std::atomic<uint64_t> dropped_sends_{0};
};

/// One (TC, DC) socket binding: a connection on the factory's shared
/// reactor plus the coalescing client in front of it.
class SocketBoundTransport : public BoundTransport {
 public:
  SocketBoundTransport(std::shared_ptr<internal::SocketReactor> reactor,
                       std::shared_ptr<internal::SocketConnection> conn,
                       const SocketTransportOptions& options);
  ~SocketBoundTransport() override;

  DcClient* client() override;
  void AddWireStats(WireTotals* totals) const override;
  void Start() override;
  void Stop() override;
  /// TCP has no inbox to clear: in-flight requests either reach the
  /// (crashed) DC, whose replies are suppressed, or die with the
  /// connection. Nothing to do.
  void OnDcCrash() override {}

  bool connected() const;
  /// Number of successful dials; bumps on every reconnect. A driver
  /// that observes an epoch bump after traffic was flowing should treat
  /// the DC as possibly restarted and run OnDcRestart.
  uint64_t connect_epoch() const;
  /// Blocks until connected or timeout; false on timeout.
  bool WaitConnected(uint32_t timeout_ms) const;

 private:
  std::shared_ptr<internal::SocketReactor> reactor_;
  std::shared_ptr<internal::SocketConnection> conn_;
  SocketDcClient client_;
  uint32_t connect_timeout_ms_;
};

/// Produces socket bindings to a fixed DC endpoint map. All bindings of
/// one factory share its reactor thread. A DC may list ALTERNATE
/// endpoints (primary first, standbys after): a failed dial rotates to
/// the next alternate, so after a hot-standby promotion the redial loop
/// lands on the new primary by itself.
class SocketTransportFactory : public TransportFactory {
 public:
  SocketTransportFactory(std::map<DcId, std::vector<SocketEndpoint>> targets,
                         SocketTransportOptions options);
  ~SocketTransportFactory() override;

  /// `target` (the in-process DataComponent) is ignored — the data
  /// lives behind the endpoint; nullptr is fine for remote DCs.
  std::unique_ptr<BoundTransport> Bind(TcId tc, DcId dc,
                                       DataComponent* target) override;

 private:
  std::map<DcId, std::vector<SocketEndpoint>> targets_;
  SocketTransportOptions options_;
  std::shared_ptr<internal::SocketReactor> reactor_;
};

std::shared_ptr<TransportFactory> MakeSocketTransportFactory(
    std::map<DcId, SocketEndpoint> targets,
    SocketTransportOptions options = {});

/// Alternate-aware variant: each DC's vector is tried in rotation.
std::shared_ptr<TransportFactory> MakeSocketTransportFactory(
    std::map<DcId, std::vector<SocketEndpoint>> targets,
    SocketTransportOptions options = {});

}  // namespace untx
