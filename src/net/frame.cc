#include "net/frame.h"

#include <cstdio>
#include <cstdlib>

#include "common/coding.h"
#include "common/crc32c.h"

namespace untx {

void AppendFrame(uint8_t kind, const Slice& body, std::string* dst) {
  // Enforce the frame bound at the sender. An oversize body would encode
  // fine here but the receiver's DecodeFrame declares the stream corrupt
  // and tears the session down — and since resend re-encodes the same
  // message, that becomes a silent kill-and-redial loop. Fail loudly
  // where the bug is instead.
  if (body.size() + 1 > kMaxFramePayload) {
    std::fprintf(stderr,
                 "untx: AppendFrame body of %zu bytes exceeds "
                 "kMaxFramePayload (%u)\n",
                 body.size(), kMaxFramePayload);
    std::abort();
  }
  const uint32_t length = static_cast<uint32_t>(body.size()) + 1;
  uint32_t crc = crc32c::Extend(0, reinterpret_cast<const char*>(&kind), 1);
  crc = crc32c::Extend(crc, body.data(), body.size());
  dst->reserve(dst->size() + kFrameHeaderSize + length);
  PutFixed32(dst, length);
  PutFixed32(dst, crc32c::Mask(crc));
  dst->push_back(static_cast<char>(kind));
  dst->append(body.data(), body.size());
}

std::string EncodeFrame(uint8_t kind, const Slice& body) {
  std::string out;
  AppendFrame(kind, body, &out);
  return out;
}

FrameDecode DecodeFrame(const char* data, size_t size, uint8_t* kind,
                        Slice* body, size_t* consumed) {
  *consumed = 0;
  if (size < kFrameHeaderSize) return FrameDecode::kNeedMore;
  Slice header(data, kFrameHeaderSize);
  uint32_t length = 0, masked_crc = 0;
  GetFixed32(&header, &length);
  GetFixed32(&header, &masked_crc);
  if (length == 0 || length > kMaxFramePayload) return FrameDecode::kCorrupt;
  if (size < kFrameHeaderSize + length) return FrameDecode::kNeedMore;
  const char* payload = data + kFrameHeaderSize;
  if (crc32c::Value(payload, length) != crc32c::Unmask(masked_crc)) {
    return FrameDecode::kCorrupt;
  }
  *kind = static_cast<uint8_t>(payload[0]);
  *body = Slice(payload + 1, length - 1);
  *consumed = kFrameHeaderSize + length;
  return FrameDecode::kOk;
}

void FrameReader::Feed(const char* data, size_t n) {
  if (corrupt_) return;
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecode FrameReader::Next(uint8_t* kind, std::string* body) {
  if (corrupt_) return FrameDecode::kCorrupt;
  Slice raw;
  size_t consumed = 0;
  const FrameDecode d =
      DecodeFrame(buf_.data() + pos_, buf_.size() - pos_, kind, &raw,
                  &consumed);
  if (d == FrameDecode::kCorrupt) {
    corrupt_ = true;
    return d;
  }
  if (d == FrameDecode::kOk) {
    body->assign(raw.data(), raw.size());
    pos_ += consumed;
  }
  return d;
}

}  // namespace untx
